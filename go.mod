module exacoll

go 1.22
