// Package simnet is a deterministic discrete-event simulator of an
// exascale machine that implements comm.Comm. Rank bodies are ordinary Go
// functions — the same collective algorithm code that runs on the real
// transports — but every communication call is sequenced through a
// conservative simulation kernel that advances per-rank virtual clocks
// against a resource model of the machine:
//
//   - per-message sender/receiver CPU overhead (o) — the cost of message
//     injection, which bounds useful message buffering (§II-B2);
//   - NIC ports as shared per-node resources with per-byte serialization
//     (β_port): concurrent messages on one port queue, so overlap is
//     capped by the physical port count;
//   - dedicated intranode links (Infinity Fabric / NVLink) with their own
//     α and β (§II-B3);
//   - wire latency α, with an extra hop penalty across dragonfly groups;
//   - per-byte reduction cost γ charged via ChargeCompute.
//
// Payload bytes move for real, so the simulator doubles as a correctness
// substrate. Execution is deterministic: the kernel admits exactly one
// pending operation at a time, chosen by minimum (virtual clock, rank).
package simnet

import (
	"fmt"
	"sync"

	"exacoll/internal/comm"
	"exacoll/internal/machine"
)

// Sim hosts p simulated ranks on a machine spec.
type Sim struct {
	spec machine.Spec
	p    int

	mu     sync.Mutex // guards kernel state while Run is active
	kern   *kernel
	closed bool
}

// New creates a simulation of p ranks on the given machine. It fails if
// the machine cannot host p ranks.
func New(spec machine.Spec, p int) (*Sim, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if p < 1 || p > spec.MaxRanks() {
		return nil, fmt.Errorf("simnet: p=%d outside [1, %d] for %s", p, spec.MaxRanks(), spec.Name)
	}
	return &Sim{spec: spec, p: p}, nil
}

// Size returns the number of simulated ranks.
func (s *Sim) Size() int { return s.p }

// Spec returns the machine model.
func (s *Sim) Spec() machine.Spec { return s.spec }

// Run executes fn once per rank under the simulation kernel and returns
// the first error. Virtual clocks start at 0 on every Run.
func (s *Sim) Run(fn func(c comm.Comm) error) error {
	k := newKernel(s.spec, s.p)
	s.mu.Lock()
	s.kern = k
	s.mu.Unlock()
	return k.run(fn)
}

// MaxTime returns the maximum virtual completion time across ranks from
// the most recent Run — the latency of the simulated program.
func (s *Sim) MaxTime() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.kern == nil {
		return 0
	}
	max := 0.0
	for _, rs := range s.kern.ranks {
		if rs.clock > max {
			max = rs.clock
		}
	}
	return max
}

// RankTime returns rank r's final virtual clock from the most recent Run.
func (s *Sim) RankTime(r int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.kern == nil || r < 0 || r >= s.p {
		return 0
	}
	return s.kern.ranks[r].clock
}

// Stats returns aggregate transfer statistics from the most recent Run.
func (s *Sim) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.kern == nil {
		return Stats{}
	}
	return s.kern.stats
}

// Stats aggregates what the simulation moved.
type Stats struct {
	// Messages is the total point-to-point message count.
	Messages int
	// Bytes is the total payload bytes sent.
	Bytes int64
	// IntraNodeMessages counts messages between ranks on the same node.
	IntraNodeMessages int
	// InterGroupMessages counts messages crossing dragonfly groups.
	InterGroupMessages int
}
