package simnet

import (
	"testing"

	"exacoll/internal/comm"
	"exacoll/internal/machine"
)

// oneTransfer runs a single internode send/recv and returns the receiver's
// completion time.
func oneTransfer(t *testing.T, spec machine.Spec) float64 {
	t.Helper()
	s, err := New(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(func(c comm.Comm) error {
		switch c.Rank() {
		case 0:
			return c.Send(4, 1, make([]byte, 4096))
		case 4:
			buf := make([]byte, 4096)
			_, err := c.Recv(0, 1, buf)
			return err
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return s.RankTime(4)
}

// TestJitterOffByDefault: no noise without opting in.
func TestJitterOffByDefault(t *testing.T) {
	spec := tiny()
	if a, b := oneTransfer(t, spec), oneTransfer(t, spec); a != b {
		t.Errorf("jitter-free runs differ: %g vs %g", a, b)
	}
}

// TestJitterDeterministicPerSeed: same seed → identical noise; different
// seed → (almost surely) different timing; all runs slower than or equal
// to the noise-free baseline and bounded by (1 + jitter).
func TestJitterDeterministicPerSeed(t *testing.T) {
	base := oneTransfer(t, tiny())
	j1a := oneTransfer(t, tiny().WithJitter(0.5, 7))
	j1b := oneTransfer(t, tiny().WithJitter(0.5, 7))
	j2 := oneTransfer(t, tiny().WithJitter(0.5, 8))
	if j1a != j1b {
		t.Errorf("same seed differs: %g vs %g", j1a, j1b)
	}
	if j1a == j2 {
		t.Errorf("different seeds produced identical timing %g", j1a)
	}
	if j1a < base {
		t.Errorf("jittered run %g faster than baseline %g", j1a, base)
	}
	// The noise only scales α, so the slowdown is bounded by 1.5x of the
	// α component — certainly under 1.5x of the whole transfer.
	if j1a > 1.5*base {
		t.Errorf("jittered run %g exceeds 1.5x baseline %g", j1a, base)
	}
}

// TestDragonflyGroupLatency: messages crossing dragonfly groups pay the
// extra global-link latency.
func TestDragonflyGroupLatency(t *testing.T) {
	spec := tiny() // 16 nodes per group, 4 PPN
	spec.Nodes = 64
	p := 40 * spec.PPN // spans 3 groups
	run := func(dst int) float64 {
		s, err := New(spec, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(func(c comm.Comm) error {
			switch c.Rank() {
			case 0:
				return c.Send(dst, 1, make([]byte, 64))
			case dst:
				buf := make([]byte, 64)
				_, err := c.Recv(0, 1, buf)
				return err
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return s.RankTime(dst)
	}
	sameGroup := run(1 * spec.PPN * 4) // node 4, group 0
	farGroup := run(20 * spec.PPN)     // node 20, group 1
	if want := sameGroup + spec.AlphaGlobal; !approx(farGroup, want) {
		t.Errorf("cross-group transfer = %g, want %g (+AlphaGlobal)", farGroup, want)
	}
}

func approx(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}

// TestPortPinnedPolicy: with 4 PPN and 2 ports under the auto policy,
// local ranks 0,1 share port 0 and 2,3 share port 1 — two concurrent
// sends from ranks sharing a port serialize; from ranks on different
// ports they do not.
func TestPortPinnedPolicy(t *testing.T) {
	spec := tiny() // PPN 4, ports 2, PortAuto -> pinned
	n := 1 << 20
	elapsed := func(srcA, srcB int) float64 {
		s, err := New(spec, 16)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(func(c comm.Comm) error {
			switch c.Rank() {
			case srcA:
				return c.Send(8, 1, make([]byte, n))
			case srcB:
				// Receivers sit on different ports of node 2 (local ranks
				// 0 and 2), so the receive side never serializes and the
				// measurement isolates the sender ports.
				return c.Send(10, 1, make([]byte, n))
			case 8:
				buf := make([]byte, n)
				_, err := c.Recv(srcA, 1, buf)
				return err
			case 10:
				buf := make([]byte, n)
				_, err := c.Recv(srcB, 1, buf)
				return err
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if s.RankTime(8) > s.RankTime(10) {
			return s.RankTime(8)
		}
		return s.RankTime(10)
	}
	shared := elapsed(0, 1)   // both pinned to port 0 of node 0
	separate := elapsed(0, 2) // ports 0 and 1
	if shared <= separate {
		t.Errorf("port-sharing senders (%g) should be slower than separate-port senders (%g)", shared, separate)
	}
}
