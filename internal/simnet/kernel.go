package simnet

import (
	"errors"
	"fmt"
	"sync"

	"exacoll/internal/comm"
	"exacoll/internal/machine"
	"exacoll/internal/model"
)

// The kernel is a conservative sequential discrete-event engine. Each rank
// runs its body on its own goroutine but is admitted to mutate simulation
// state only when every other rank is quiescent (parked on a pending
// operation, blocked in Wait, or finished); among pending operations the
// kernel always processes the minimum (virtual clock, rank) first, making
// resource allocation — and therefore all reported times — deterministic.

type actionKind int

const (
	actIsend actionKind = iota
	actIrecv
	actWait
	actTest
	actCharge
	actDone
)

type action struct {
	kind  actionKind
	rank  int
	peer  int
	tag   comm.Tag
	buf   []byte
	req   *simReq
	bytes int // ChargeCompute size
	reply chan error
}

// simReq is a nonblocking-operation handle inside the simulator.
type simReq struct {
	k      *kernel
	rank   int
	isSend bool

	resolved bool    // message matched (recv) / completed (send)
	arrival  float64 // virtual arrival time of the matched message
	n        int
	err      error
	consumed bool // Wait already charged its completion

	waiter    *rankState // rank parked in Wait on this request
	parkClock float64
	waitReply chan error
}

// Wait implements comm.Request.
func (r *simReq) Wait() error {
	rep := make(chan error, 1)
	r.k.actions <- &action{kind: actWait, rank: r.rank, req: r, reply: rep}
	return <-rep
}

// Len implements comm.Request.
func (r *simReq) Len() int { return r.n }

// errSimTestPending is the sentinel reply doTest sends when the request is
// not yet resolved; simReq.Test translates it to (done=false, nil).
var errSimTestPending = errors.New("simnet: test pending")

// Test implements comm.Tester. The poll is a kernel action so it respects
// the one-action-per-rank invariant and is charged virtual time
// (RecvOverhead) when the request is unresolved — a polling rank advances
// its clock instead of livelocking virtual time.
func (r *simReq) Test() (bool, error) {
	rep := make(chan error, 1)
	r.k.actions <- &action{kind: actTest, rank: r.rank, req: r, reply: rep}
	err := <-rep
	if errors.Is(err, errSimTestPending) {
		return false, nil
	}
	return true, err
}

type matchKey struct {
	src int
	tag comm.Tag
}

type simMessage struct {
	payload []byte
	arrival float64
}

type postedRecv struct {
	req *simReq
	buf []byte
}

type rankState struct {
	id         int
	clock      float64
	done       bool
	unexpected map[matchKey][]*simMessage
	posted     map[matchKey][]*postedRecv
}

type nodeState struct {
	ports []float64 // next-free time per NIC port
}

type kernel struct {
	spec  machine.Spec
	p     int
	ranks []*rankState
	nodes map[int]*nodeState
	intra map[[2]int]float64 // ordered-pair intranode link next-free time

	actions    chan *action
	deadlocked bool
	stats      Stats

	jitterState uint64 // xorshift state for the latency noise model
}

// jitterFactor draws the next deterministic noise factor in
// [1, 1+spec.Jitter] (1.0 when jitter is disabled).
func (k *kernel) jitterFactor() float64 {
	if k.spec.Jitter <= 0 {
		return 1
	}
	// xorshift64* — deterministic, seeded from the spec.
	x := k.jitterState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	k.jitterState = x
	u := float64(x*0x2545F4914F6CDD1D>>11) / float64(1<<53)
	return 1 + k.spec.Jitter*u
}

func newKernel(spec machine.Spec, p int) *kernel {
	k := &kernel{
		spec:    spec,
		p:       p,
		ranks:   make([]*rankState, p),
		nodes:   make(map[int]*nodeState),
		intra:   make(map[[2]int]float64),
		actions: make(chan *action, p),
	}
	k.jitterState = spec.JitterSeed | 1
	for r := range k.ranks {
		k.ranks[r] = &rankState{
			id:         r,
			unexpected: make(map[matchKey][]*simMessage),
			posted:     make(map[matchKey][]*postedRecv),
		}
	}
	return k
}

func (k *kernel) node(n int) *nodeState {
	ns, ok := k.nodes[n]
	if !ok {
		ns = &nodeState{ports: make([]float64, k.spec.Ports)}
		k.nodes[n] = ns
	}
	return ns
}

// run drives the simulation to completion.
func (k *kernel) run(fn func(c comm.Comm) error) error {
	errs := make([]error, k.p)
	var wg sync.WaitGroup
	for r := 0; r < k.p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(&simComm{k: k, rank: r})
			k.actions <- &action{kind: actDone, rank: r}
		}(r)
	}

	pending := make(map[int]*action)
	alive := k.p   // ranks that have not sent actDone
	running := k.p // ranks currently executing user code
	for alive > 0 {
		for running > 0 {
			a := <-k.actions
			running--
			if a.kind == actDone {
				k.ranks[a.rank].done = true
				alive--
				continue
			}
			pending[a.rank] = a
		}
		if alive == 0 {
			break
		}
		if len(pending) == 0 {
			// Every live rank is parked in Wait on a receive that can
			// never complete: deadlock. Release them all with an error.
			k.deadlocked = true
			released := 0
			for _, rs := range k.ranks {
				released += k.releaseParked(rs)
			}
			running += released
			if released == 0 {
				// No parked waiters either: nothing can make progress.
				return comm.ErrDeadlock
			}
			continue
		}
		a := k.pickMin(pending)
		delete(pending, a.rank)
		running += k.process(a)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("rank %d: %w", r, err)
		}
	}
	return nil
}

// releaseParked errors out any Wait parked on rank's posted receives and
// returns how many ranks it resumed.
func (k *kernel) releaseParked(rs *rankState) int {
	resumed := 0
	for key, prs := range rs.posted {
		for _, pr := range prs {
			if pr.req.waiter != nil {
				pr.req.err = comm.ErrDeadlock
				pr.req.resolved = true
				pr.req.consumed = true
				pr.req.waitReply <- pr.req.err
				pr.req.waiter = nil
				resumed++
			}
		}
		delete(rs.posted, key)
	}
	return resumed
}

// pickMin selects the pending action with the smallest (clock, rank).
func (k *kernel) pickMin(pending map[int]*action) *action {
	var best *action
	for _, a := range pending {
		if best == nil {
			best = a
			continue
		}
		cb, ca := k.ranks[best.rank].clock, k.ranks[a.rank].clock
		if ca < cb || (ca == cb && a.rank < best.rank) {
			best = a
		}
	}
	return best
}

// process executes one action and returns how many ranks it resumed.
func (k *kernel) process(a *action) int {
	if k.deadlocked {
		a.reply <- comm.ErrDeadlock
		return 1
	}
	switch a.kind {
	case actCharge:
		k.ranks[a.rank].clock += k.spec.Gamma * float64(a.bytes)
		a.reply <- nil
		return 1

	case actIsend:
		resumed := k.doIsend(a)
		return resumed

	case actIrecv:
		k.doIrecv(a)
		return 1

	case actWait:
		return k.doWait(a)

	case actTest:
		k.doTest(a)
		return 1
	}
	a.reply <- fmt.Errorf("simnet: unknown action %d", a.kind)
	return 1
}

// doIsend injects a message, routing it through the machine model, and
// delivers it to the destination's matching engine. Returns ranks resumed
// (the sender plus possibly a parked receiver).
func (k *kernel) doIsend(a *action) int {
	if err := comm.CheckPeer(a.rank, a.peer, k.p); err != nil {
		a.req.err = err
		a.req.resolved = true
		a.reply <- err
		return 1
	}
	payload := make([]byte, len(a.buf))
	copy(payload, a.buf)
	arrival := k.route(a.rank, a.peer, len(payload))

	k.stats.Messages++
	k.stats.Bytes += int64(len(payload))

	a.req.resolved = true
	a.req.n = len(payload)

	resumed := 1
	a.reply <- nil

	dst := k.ranks[a.peer]
	key := matchKey{src: a.rank, tag: a.tag}
	if prs := dst.posted[key]; len(prs) > 0 {
		pr := prs[0]
		if len(prs) == 1 {
			delete(dst.posted, key)
		} else {
			dst.posted[key] = prs[1:]
		}
		k.bind(pr, payload, arrival)
		if pr.req.waiter != nil {
			// The receiver is parked in Wait: resume it at the message's
			// arrival (or its own park time, whichever is later).
			w := pr.req.waiter
			pr.req.waiter = nil
			pr.req.consumed = true
			if !k.chargeRecvCompletion(w, pr.req) {
				pr.req.waitReply <- pr.req.err
				resumed++
			} else {
				pr.req.waitReply <- pr.req.err
				resumed++
			}
		}
	} else {
		dst.unexpected[key] = append(dst.unexpected[key], &simMessage{payload: payload, arrival: arrival})
	}
	return resumed
}

// bind matches a posted receive with a payload.
func (k *kernel) bind(pr *postedRecv, payload []byte, arrival float64) {
	if len(payload) > len(pr.buf) {
		pr.req.err = fmt.Errorf("%w: have %d bytes, message is %d",
			comm.ErrTruncated, len(pr.buf), len(payload))
	} else {
		copy(pr.buf, payload)
		pr.req.n = len(payload)
	}
	pr.req.arrival = arrival
	pr.req.resolved = true
}

// chargeRecvCompletion advances the waiter's clock to the receive
// completion time. Returns true always (signature symmetry).
func (k *kernel) chargeRecvCompletion(w *rankState, req *simReq) bool {
	t := req.parkClock
	if req.arrival > t {
		t = req.arrival
	}
	w.clock = t + k.spec.RecvOverhead
	return true
}

// doIrecv posts a receive, matching an already-arrived message if present.
func (k *kernel) doIrecv(a *action) {
	if err := comm.CheckPeer(a.rank, a.peer, k.p); err != nil {
		a.req.err = err
		a.req.resolved = true
		a.req.consumed = true
		a.reply <- err
		return
	}
	rs := k.ranks[a.rank]
	key := matchKey{src: a.peer, tag: a.tag}
	pr := &postedRecv{req: a.req, buf: a.buf}
	if msgs := rs.unexpected[key]; len(msgs) > 0 {
		m := msgs[0]
		if len(msgs) == 1 {
			delete(rs.unexpected, key)
		} else {
			rs.unexpected[key] = msgs[1:]
		}
		k.bind(pr, m.payload, m.arrival)
	} else {
		rs.posted[key] = append(rs.posted[key], pr)
	}
	a.reply <- nil
}

// doWait completes a request or parks the caller. Returns ranks resumed
// now (1 if the wait completed immediately, 0 if parked).
func (k *kernel) doWait(a *action) int {
	req := a.req
	rs := k.ranks[a.rank]
	if req.isSend || req.consumed {
		a.reply <- req.err
		return 1
	}
	if req.resolved {
		req.consumed = true
		t := rs.clock
		if req.arrival > t {
			t = req.arrival
		}
		rs.clock = t + k.spec.RecvOverhead
		a.reply <- req.err
		return 1
	}
	// Park until a matching send arrives.
	req.waiter = rs
	req.parkClock = rs.clock
	req.waitReply = a.reply
	return 0
}

// doTest polls a request without ever parking the caller. A completed test
// consumes the operation exactly as Wait would (same completion-time
// charge); an unresolved test still charges RecvOverhead so a rank that
// keeps polling moves its virtual clock forward.
func (k *kernel) doTest(a *action) {
	req := a.req
	rs := k.ranks[a.rank]
	if req.isSend || req.consumed {
		a.reply <- req.err
		return
	}
	if req.resolved {
		req.consumed = true
		t := rs.clock
		if req.arrival > t {
			t = req.arrival
		}
		rs.clock = t + k.spec.RecvOverhead
		a.reply <- req.err
		return
	}
	rs.clock += k.spec.RecvOverhead
	a.reply <- errSimTestPending
}

// route advances the sender's clock by the injection overhead and threads
// the message through the machine's resources, returning its arrival time
// at the receiver.
func (k *kernel) route(s, d, n int) float64 {
	spec := k.spec
	sr := k.ranks[s]
	sr.clock += spec.SendOverhead
	inject := sr.clock

	sn := spec.NodeOf(s, k.p)
	dn := spec.NodeOf(d, k.p)
	if sn == dn {
		// Dedicated intranode link per ordered rank pair.
		k.stats.IntraNodeMessages++
		key := [2]int{s, d}
		start := inject
		if f := k.intra[key]; f > start {
			start = f
		}
		done := start + float64(n)*spec.BetaIntra
		k.intra[key] = done
		return done + spec.AlphaIntra*k.jitterFactor()
	}

	// Sender-side NIC port serialization.
	sp, spi := k.pickPort(sn, s, inject)
	start := inject
	if sp > start {
		start = sp
	}
	sdone := start + float64(n)*spec.BetaPort
	k.node(sn).ports[spi] = sdone

	alpha := spec.AlphaInter
	if spec.GroupOf(sn) != spec.GroupOf(dn) {
		alpha += spec.AlphaGlobal
		k.stats.InterGroupMessages++
	}
	alpha *= k.jitterFactor()

	// Receiver-side NIC port serialization.
	earliest := sdone + alpha
	rp, rpi := k.pickPort(dn, d, earliest)
	rstart := earliest
	if rp > rstart {
		rstart = rp
	}
	arrival := rstart + float64(n)*spec.BetaPort
	k.node(dn).ports[rpi] = arrival
	return arrival
}

// pickPort returns the (next-free time, index) of the NIC port rank r uses
// on node n for a message ready at time ready.
func (k *kernel) pickPort(n, r int, ready float64) (float64, int) {
	ns := k.node(n)
	spec := k.spec
	pinned := false
	switch spec.PortMapping {
	case machine.PortPinned:
		pinned = true
	case machine.PortAuto:
		pinned = spec.PPN >= spec.Ports
	}
	if pinned {
		idx := spec.LocalRank(r, k.p) * spec.Ports / spec.PPN
		if idx >= spec.Ports {
			idx = spec.Ports - 1
		}
		return ns.ports[idx], idx
	}
	// Striped: least-loaded port (ties to the lowest index).
	best := 0
	for i := 1; i < len(ns.ports); i++ {
		if ns.ports[i] < ns.ports[best] {
			best = i
		}
	}
	return ns.ports[best], best
}

// simComm is one rank's comm.Comm view of the kernel.
type simComm struct {
	k    *kernel
	rank int
}

func (c *simComm) Rank() int { return c.rank }
func (c *simComm) Size() int { return c.k.p }

// Now implements comm.Clock: the rank's current virtual time. Safe to read
// from the owning rank's goroutine (the kernel only mutates it while the
// rank is blocked on a reply).
func (c *simComm) Now() float64 { return c.k.ranks[c.rank].clock }

// Locality implements comm.Locator from the machine spec and its placement
// policy — the same NodeOf/LocalRank mapping the kernel's resource model
// routes messages by, so topology-aware composition sees exactly the
// machine it is simulated on.
func (c *simComm) Locality(rank int) (comm.Locality, bool) {
	if rank < 0 || rank >= c.k.p {
		return comm.Locality{}, false
	}
	ppn := c.k.spec.PPN
	if ppn > c.k.p {
		ppn = c.k.p
	}
	return comm.Locality{
		Node:      c.k.spec.NodeOf(rank, c.k.p),
		LocalRank: c.k.spec.LocalRank(rank, c.k.p),
		PPN:       ppn,
		Ports:     c.k.spec.Ports,
	}, true
}

// ModelParams implements model.MachineLike with the internode (α, β, γ)
// derived from the simulated machine's spec, so segmented algorithms size
// their pipeline segments from the same parameters the simulator charges.
func (c *simComm) ModelParams() model.Params {
	inter, _ := model.FromSpec(c.k.spec)
	return inter
}

func (c *simComm) ChargeCompute(n int) {
	rep := make(chan error, 1)
	c.k.actions <- &action{kind: actCharge, rank: c.rank, bytes: n, reply: rep}
	<-rep
}

func (c *simComm) Isend(to int, tag comm.Tag, buf []byte) (comm.Request, error) {
	req := &simReq{k: c.k, rank: c.rank, isSend: true}
	rep := make(chan error, 1)
	c.k.actions <- &action{kind: actIsend, rank: c.rank, peer: to, tag: tag, buf: buf, req: req, reply: rep}
	if err := <-rep; err != nil {
		return nil, err
	}
	return req, nil
}

func (c *simComm) Send(to int, tag comm.Tag, buf []byte) error {
	_, err := c.Isend(to, tag, buf)
	return err
}

func (c *simComm) Irecv(from int, tag comm.Tag, buf []byte) (comm.Request, error) {
	req := &simReq{k: c.k, rank: c.rank}
	rep := make(chan error, 1)
	c.k.actions <- &action{kind: actIrecv, rank: c.rank, peer: from, tag: tag, buf: buf, req: req, reply: rep}
	if err := <-rep; err != nil {
		return nil, err
	}
	return req, nil
}

func (c *simComm) Recv(from int, tag comm.Tag, buf []byte) (int, error) {
	req, err := c.Irecv(from, tag, buf)
	if err != nil {
		return 0, err
	}
	if err := req.Wait(); err != nil {
		return 0, err
	}
	return req.Len(), nil
}
