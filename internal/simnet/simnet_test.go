package simnet

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"exacoll/internal/comm"
	"exacoll/internal/machine"
)

func tiny() machine.Spec {
	s := machine.Testbox()
	s.Nodes = 8
	return s
}

// TestPingPong checks basic data movement and that virtual time advances by
// the modelled costs.
func TestPingPong(t *testing.T) {
	s, err := New(tiny(), 8) // 2 nodes x 4 ppn
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello, virtual world")
	err = s.Run(func(c comm.Comm) error {
		switch c.Rank() {
		case 0:
			return c.Send(5, 7, msg) // internode (node 0 -> node 1)
		case 5:
			buf := make([]byte, len(msg))
			n, err := c.Recv(0, 7, buf)
			if err != nil {
				return err
			}
			if n != len(msg) || !bytes.Equal(buf, msg) {
				return fmt.Errorf("payload mismatch: %q", buf[:n])
			}
			return nil
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := tiny()
	want := spec.SendOverhead + float64(len(msg))*spec.BetaPort*2 + spec.AlphaInter + spec.RecvOverhead
	got := s.RankTime(5)
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("receiver time = %g, want %g", got, want)
	}
	if s.RankTime(0) != spec.SendOverhead {
		t.Errorf("sender time = %g, want o_send %g", s.RankTime(0), spec.SendOverhead)
	}
	st := s.Stats()
	if st.Messages != 1 || st.Bytes != int64(len(msg)) || st.IntraNodeMessages != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestIntranodeFaster verifies the link heterogeneity k-ring exploits:
// the same transfer is cheaper between ranks on one node.
func TestIntranodeFaster(t *testing.T) {
	spec := tiny()
	n := 1 << 20
	run := func(dst int) float64 {
		s, err := New(spec, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(func(c comm.Comm) error {
			switch c.Rank() {
			case 0:
				return c.Send(dst, 1, make([]byte, n))
			case dst:
				buf := make([]byte, n)
				_, err := c.Recv(0, 1, buf)
				return err
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return s.RankTime(dst)
	}
	intra := run(1) // same node
	inter := run(4) // next node
	if intra >= inter {
		t.Errorf("intranode %g should be faster than internode %g", intra, inter)
	}
}

// TestPortContention verifies that more simultaneous messages than NIC
// ports serialize: with 2 ports, 4 concurrent internode sends from one
// node take about twice as long as 2.
func TestPortContention(t *testing.T) {
	spec := tiny() // 2 ports, 4 ppn
	spec.PortMapping = machine.PortStriped
	n := 1 << 20
	elapsed := func(senders int) float64 {
		s, err := New(spec, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(func(c comm.Comm) error {
			r := c.Rank()
			if r == 0 {
				reqs := make([]comm.Request, 0, senders)
				for i := 0; i < senders; i++ {
					req, err := c.Isend(4+i, comm.Tag(i), make([]byte, n))
					if err != nil {
						return err
					}
					reqs = append(reqs, req)
				}
				return comm.WaitAll(reqs...)
			}
			if r >= 4 && r < 4+senders {
				buf := make([]byte, n)
				_, err := c.Recv(0, comm.Tag(r-4), buf)
				return err
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return s.MaxTime()
	}
	t2 := elapsed(2)
	t4 := elapsed(4)
	// With 2 ports, 2 messages pipeline through sender and receiver ports
	// in ~2nβ; 4 messages finish in ~3nβ (sender ports busy 2nβ, last
	// message's receiver-side serialization adds one more nβ).
	if t4 < 1.4*t2 {
		t.Errorf("4 sends over 2 ports took %g, want >=1.4x the 2-send time %g", t4, t2)
	}
	if t4 > 1.9*t2 {
		t.Errorf("4 sends over 2 ports took %g, want <1.9x the 2-send time %g (pipelining)", t4, t2)
	}
}

// TestDeterminism runs an irregular communication pattern twice and demands
// bit-identical timings.
func TestDeterminism(t *testing.T) {
	pattern := func() []float64 {
		s, err := New(tiny(), 16)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(func(c comm.Comm) error {
			r := c.Rank()
			p := c.Size()
			// Everyone exchanges with several pseudo-random peers.
			for i := 1; i <= 3; i++ {
				peer := (r*7 + i*5) % p
				if peer == r {
					continue
				}
				n := 100*i + r
				sreq, err := c.Isend(peer, comm.Tag(i), make([]byte, n))
				if err != nil {
					return err
				}
				// Receive from whoever targets us with this i.
				var from int
				for q := 0; q < p; q++ {
					if q != r && (q*7+i*5)%p == r {
						from = q
						buf := make([]byte, 100*i+q)
						if _, err := c.Recv(from, comm.Tag(i), buf); err != nil {
							return err
						}
					}
				}
				if err := sreq.Wait(); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 16)
		for r := range out {
			out[r] = s.RankTime(r)
		}
		return out
	}
	a, b := pattern(), pattern()
	for r := range a {
		if a[r] != b[r] {
			t.Fatalf("nondeterministic: rank %d time %g vs %g", r, a[r], b[r])
		}
	}
}

// TestDeadlockDetection ensures a never-matched receive is diagnosed
// rather than hanging.
func TestDeadlockDetection(t *testing.T) {
	s, err := New(tiny(), 2)
	if err != nil {
		t.Fatal(err)
	}
	err = s.Run(func(c comm.Comm) error {
		if c.Rank() == 0 {
			buf := make([]byte, 4)
			_, err := c.Recv(1, 9, buf) // rank 1 never sends
			return err
		}
		return nil
	})
	if !errors.Is(err, comm.ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
}

// TestChargeCompute verifies the γ term.
func TestChargeCompute(t *testing.T) {
	spec := tiny()
	s, err := New(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(func(c comm.Comm) error {
		c.ChargeCompute(1 << 20)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := spec.Gamma * float64(1<<20)
	if got := s.RankTime(0); got != want {
		t.Errorf("compute time %g, want %g", got, want)
	}
}

// TestTruncation checks the error path for short receive buffers.
func TestTruncation(t *testing.T) {
	s, err := New(tiny(), 2)
	if err != nil {
		t.Fatal(err)
	}
	err = s.Run(func(c comm.Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 3, make([]byte, 100))
		}
		buf := make([]byte, 10)
		_, err := c.Recv(0, 3, buf)
		if !errors.Is(err, comm.ErrTruncated) {
			return fmt.Errorf("want ErrTruncated, got %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMessageOrdering checks per-(source, tag) FIFO delivery in virtual
// time: two same-tag messages must arrive in send order.
func TestMessageOrdering(t *testing.T) {
	s, err := New(tiny(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(func(c comm.Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 3, []byte{1}); err != nil {
				return err
			}
			return c.Send(1, 3, []byte{2})
		}
		var a, b [1]byte
		if _, err := c.Recv(0, 3, a[:]); err != nil {
			return err
		}
		if _, err := c.Recv(0, 3, b[:]); err != nil {
			return err
		}
		if a[0] != 1 || b[0] != 2 {
			return fmt.Errorf("out of order: %d, %d", a[0], b[0])
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDispersedPlacement verifies the placement model: under dispersed
// placement, neighbor ranks land on different nodes.
func TestDispersedPlacement(t *testing.T) {
	spec := tiny().WithPlacement(machine.PlaceDispersed)
	p := 16 // 4 nodes x 4 ppn
	nodesSeen := map[int]bool{}
	for r := 0; r < 4; r++ {
		nodesSeen[spec.NodeOf(r, p)] = true
	}
	if len(nodesSeen) != 4 {
		t.Errorf("dispersed placement put first 4 ranks on %d nodes, want 4", len(nodesSeen))
	}
	cont := tiny()
	if cont.NodeOf(0, p) != cont.NodeOf(3, p) {
		t.Error("contiguous placement should co-locate ranks 0..3")
	}
}

// TestBadPeer checks peer validation through the simulator.
func TestBadPeer(t *testing.T) {
	s, err := New(tiny(), 2)
	if err != nil {
		t.Fatal(err)
	}
	err = s.Run(func(c comm.Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(5, 0, nil); !errors.Is(err, comm.ErrRankOutOfRange) {
				return fmt.Errorf("want ErrRankOutOfRange, got %v", err)
			}
			if err := c.Send(0, 0, nil); !errors.Is(err, comm.ErrSelfMessage) {
				return fmt.Errorf("want ErrSelfMessage, got %v", err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNewValidation checks Sim construction errors.
func TestNewValidation(t *testing.T) {
	if _, err := New(tiny(), 0); err == nil {
		t.Error("want error for p=0")
	}
	spec := tiny()
	if _, err := New(spec, spec.MaxRanks()+1); err == nil {
		t.Error("want error for oversubscription")
	}
	bad := spec
	bad.Ports = 0
	if _, err := New(bad, 1); err == nil {
		t.Error("want error for invalid spec")
	}
}
