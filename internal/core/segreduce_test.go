package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"exacoll/internal/comm"
	"exacoll/internal/datatype"
)

// roughVector is a rounding-prone float64 contribution: sums of its values
// depend on association order, so bit-comparing two reductions of it
// verifies they combine in the same order.
func roughVector(r, elems int) []byte {
	v := make([]float64, elems)
	for i := range v {
		v[i] = 1.0/float64(r+1) + float64(i%13)/7.0
	}
	return datatype.EncodeFloat64(v)
}

// TestReduceKnomialSegmentedBitIdentical checks that the segmented reduce
// produces bit-identical results to the unsegmented ReduceKnomial — the
// per-segment combine runs in the same descending-child order — including
// segment sizes that force many segments and ragged final segments.
func TestReduceKnomialSegmentedBitIdentical(t *testing.T) {
	t.Parallel()
	elems := 500 // 4000 bytes
	for _, p := range []int{1, 2, 3, 5, 8, 13} {
		for _, k := range []int{2, 3, 5} {
			for _, seg := range []int{8, 64, 1000, 4096} {
				roots := []int{0}
				if p > 1 {
					roots = append(roots, p-1)
				}
				for _, root := range roots {
					p, k, seg, root := p, k, seg, root
					name := fmt.Sprintf("p%d_k%d_seg%d_root%d", p, k, seg, root)
					t.Run(name, func(t *testing.T) {
						t.Parallel()
						var mu sync.Mutex
						want := make(map[int][]byte)
						runOnWorld(t, p, func(c comm.Comm) error {
							sendbuf := roughVector(c.Rank(), elems)
							ref := make([]byte, len(sendbuf))
							if err := ReduceKnomial(c, sendbuf, ref, datatype.Sum, datatype.Float64, root, k); err != nil {
								return err
							}
							mu.Lock()
							want[c.Rank()] = ref
							mu.Unlock()
							return nil
						})
						runOnWorld(t, p, func(c comm.Comm) error {
							sendbuf := roughVector(c.Rank(), elems)
							recvbuf := make([]byte, len(sendbuf))
							if err := ReduceKnomialSegmented(c, sendbuf, recvbuf, datatype.Sum, datatype.Float64, root, k, seg); err != nil {
								return err
							}
							if c.Rank() == root && !bytes.Equal(recvbuf, want[root]) {
								return fmt.Errorf("segmented reduce differs from ReduceKnomial at root %d", root)
							}
							return nil
						})
					})
				}
			}
		}
	}
}

// TestAllreduceRingPipelinedCorrect checks the pipelined ring allreduce
// against the locally computed exact sum over communicator sizes, payload
// sizes and segment sizes that exercise deep pipelines (many segments in
// flight), single-segment delegates, and ragged final segments.
func TestAllreduceRingPipelinedCorrect(t *testing.T) {
	t.Parallel()
	for _, p := range []int{1, 2, 3, 5, 8, 13} {
		for _, elems := range []int{1, 7, 100, 500} {
			for _, seg := range []int{8, 64, 1000, 1 << 20} {
				p, elems, seg := p, elems, seg
				t.Run(fmt.Sprintf("p%d_e%d_seg%d", p, elems, seg), func(t *testing.T) {
					t.Parallel()
					want := datatype.EncodeFloat64(expectedSum(p, elems))
					runOnWorld(t, p, func(c comm.Comm) error {
						sendbuf := datatype.EncodeFloat64(rankVector(c.Rank(), elems))
						recvbuf := make([]byte, len(sendbuf))
						if err := AllreduceRingPipelined(c, sendbuf, recvbuf, datatype.Sum, datatype.Float64, seg); err != nil {
							return err
						}
						if !bytes.Equal(recvbuf, want) {
							return fmt.Errorf("pipelined allreduce mismatch at rank %d", c.Rank())
						}
						return nil
					})
				})
			}
		}
	}
}

// TestAllreduceRingPipelinedDeterministic checks that all ranks agree bit
// for bit on rounding-prone input (the combine chain of each block is the
// same no matter which rank observes it).
func TestAllreduceRingPipelinedDeterministic(t *testing.T) {
	t.Parallel()
	const p, elems, seg = 7, 300, 128
	var mu sync.Mutex
	results := make(map[int][]byte)
	runOnWorld(t, p, func(c comm.Comm) error {
		sendbuf := roughVector(c.Rank(), elems)
		recvbuf := make([]byte, len(sendbuf))
		if err := AllreduceRingPipelined(c, sendbuf, recvbuf, datatype.Sum, datatype.Float64, seg); err != nil {
			return err
		}
		mu.Lock()
		results[c.Rank()] = recvbuf
		mu.Unlock()
		return nil
	})
	for r := 1; r < p; r++ {
		if !bytes.Equal(results[r], results[0]) {
			t.Fatalf("rank %d result differs from rank 0", r)
		}
	}
}

// TestSegmentedBadArgs checks segment-size validation: direct calls reject
// segSize < 1, and the registry adapters reject Args.SegSize < 0 for every
// segmented algorithm while deriving a sane default for SegSize = 0.
func TestSegmentedBadArgs(t *testing.T) {
	t.Parallel()
	runOnWorld(t, 2, func(c comm.Comm) error {
		buf := make([]byte, 64)
		out := make([]byte, 64)
		if err := ReduceKnomialSegmented(c, buf, out, datatype.Sum, datatype.Float64, 0, 2, 0); !errors.Is(err, ErrBadBuffer) {
			return fmt.Errorf("reduce segSize=0: want ErrBadBuffer, got %v", err)
		}
		if err := AllreduceRingPipelined(c, buf, out, datatype.Sum, datatype.Float64, -1); !errors.Is(err, ErrBadBuffer) {
			return fmt.Errorf("allreduce segSize=-1: want ErrBadBuffer, got %v", err)
		}
		return nil
	})
	for _, name := range []string{
		"bcast_knomial_pipelined", "bcast_chain",
		"reduce_knomial_segmented", "allreduce_ring_pipelined",
	} {
		alg, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		// Negative SegSize must be rejected before any communication, so a
		// single-rank world is enough.
		runOnWorld(t, 1, func(c comm.Comm) error {
			buf := make([]byte, 64)
			a := Args{SendBuf: buf, RecvBuf: make([]byte, 64),
				Op: datatype.Sum, Type: datatype.Float64, K: 2, SegSize: -1}
			if err := alg.Run(c, a); !errors.Is(err, ErrBadBuffer) {
				return fmt.Errorf("%s SegSize=-1: want ErrBadBuffer, got %v", name, err)
			}
			a.SegSize = 0
			if err := alg.Run(c, a); err != nil {
				return fmt.Errorf("%s SegSize=0: %v", name, err)
			}
			return nil
		})
	}
}

// TestSegSizeFor checks the segment-size derivation contract.
func TestSegSizeFor(t *testing.T) {
	t.Parallel()
	runOnWorld(t, 1, func(c comm.Comm) error {
		if _, err := SegSizeFor(c, 1<<20, 4, -7); !errors.Is(err, ErrBadBuffer) {
			return fmt.Errorf("negative request: want ErrBadBuffer, got %v", err)
		}
		if seg, err := SegSizeFor(c, 1<<20, 4, 4096); err != nil || seg != 4096 {
			return fmt.Errorf("explicit request: got (%d, %v)", seg, err)
		}
		// The mem transport exposes no cost model: derive the default.
		if seg, err := SegSizeFor(c, 1<<20, 4, 0); err != nil || seg != DefaultSegSize {
			return fmt.Errorf("derived: got (%d, %v), want %d", seg, err, DefaultSegSize)
		}
		return nil
	})
}
