package core

import (
	scratch "exacoll/internal/buf"
	"exacoll/internal/comm"
	"exacoll/internal/datatype"
)

// RingSchedule builds the classic ring allgather schedule (§V-A, Fig. 5):
// p−1 rounds in which every rank forwards to its right neighbor the block
// it received from its left neighbor in the previous round.
func RingSchedule(p int) *Schedule {
	s := &Schedule{P: p}
	for t := 0; t < p-1; t++ {
		round := make(Round, 0, p)
		for r := 0; r < p; r++ {
			round = append(round, Edge{
				From:  r,
				To:    (r + 1) % p,
				Block: ((r-t)%p + p) % p,
			})
		}
		s.Rounds = append(s.Rounds, round)
	}
	return s
}

// AllgatherRing is the bandwidth-optimal ring allgather (eq. (8)).
func AllgatherRing(c comm.Comm, sendbuf, recvbuf []byte) error {
	if err := checkAllgatherBufs(c, sendbuf, recvbuf); err != nil {
		return err
	}
	p := c.Size()
	n := len(sendbuf)
	copy(recvbuf[c.Rank()*n:], sendbuf)
	if p == 1 {
		return nil
	}
	return RingSchedule(p).RunAllgather(c, recvbuf, UniformLayout(n), tagSched)
}

// ReduceScatterRing reduce-scatters the full vector sendbuf (length n):
// every rank receives the fully reduced fair block FairLayout(n, p)(rank)
// in recvbuf. Implemented as the time-reversed ring allgather.
func ReduceScatterRing(c comm.Comm, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type) error {
	p := c.Size()
	n := len(sendbuf)
	layout := FairLayoutAligned(n, p, dt.Size())
	off, sz := layout(c.Rank())
	if len(recvbuf) != sz {
		return ErrBadBuffer
	}
	work := scratch.Get(n)
	copy(work, sendbuf)
	if p > 1 {
		if err := RingSchedule(p).RunReduceScatter(c, work, layout, op, dt, tagSched); err != nil {
			return err // posting-error paths may leave sends reading work: leak
		}
	}
	copy(recvbuf, work[off:off+sz])
	scratch.Put(work)
	return nil
}

// AllreduceRing is the ring allreduce (Patarasuk & Yuan): a ring
// reduce-scatter followed by a ring allgather over fair blocks of the
// vector (eq. (8), the Allreduce row).
func AllreduceRing(c comm.Comm, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type) error {
	if err := checkReduceBufs(sendbuf, recvbuf, dt); err != nil {
		return err
	}
	p := c.Size()
	n := len(sendbuf)
	copy(recvbuf, sendbuf)
	if p == 1 {
		return nil
	}
	s := RingSchedule(p)
	layout := FairLayoutAligned(n, p, dt.Size())
	if err := s.RunReduceScatter(c, recvbuf, layout, op, dt, tagSched); err != nil {
		return err
	}
	return s.RunAllgather(c, recvbuf, layout, tagSched+1)
}

// BcastRing broadcasts via a binomial scatter followed by a ring allgather
// over fair blocks (the large-message scatter-allgather bcast with a ring
// dissemination phase).
func BcastRing(c comm.Comm, buf []byte, root int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	p := c.Size()
	if p == 1 {
		return nil
	}
	if err := scatterFairForBcast(c, buf, root, 2); err != nil {
		return err
	}
	return RingSchedule(p).RunAllgather(c, buf, FairLayout(len(buf), p), tagSched)
}
