package core

import (
	"fmt"

	scratch "exacoll/internal/buf"
	"exacoll/internal/comm"
)

// Variable-count collectives (the MPI "v" variants). The k-nomial tree
// handles them naturally: subtrees span contiguous vrank ranges, so a
// variable-size gather/scatter still forwards one contiguous packed
// region per child, exactly like the fair-block scatter inside the
// scatter-allgather bcasts. These round out the library's MPI surface;
// the paper's evaluation does not cover them.

// checkCounts validates a per-rank byte-count vector.
func checkCounts(p int, counts []int) (total int, err error) {
	if len(counts) != p {
		return 0, fmt.Errorf("%w: %d counts for %d ranks", ErrBadBuffer, len(counts), p)
	}
	for r, n := range counts {
		if n < 0 {
			return 0, fmt.Errorf("%w: negative count %d for rank %d", ErrBadBuffer, n, r)
		}
		total += n
	}
	return total, nil
}

// GathervKnomial gathers counts[r] bytes from every rank r into recvbuf at
// root (rank blocks concatenated in rank order), over a radix-k tree.
// Every rank must pass the same counts vector; rank r's sendbuf must be
// counts[r] bytes.
func GathervKnomial(c comm.Comm, sendbuf []byte, counts []int, recvbuf []byte, root, k int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	if err := checkRadix(k); err != nil {
		return err
	}
	p := c.Size()
	me := c.Rank()
	total, err := checkCounts(p, counts)
	if err != nil {
		return err
	}
	if len(sendbuf) != counts[me] {
		return fmt.Errorf("%w: gatherv sendbuf=%d, counts[%d]=%d", ErrBadBuffer, len(sendbuf), me, counts[me])
	}
	if me == root && len(recvbuf) != total {
		return fmt.Errorf("%w: gatherv recvbuf=%d, want %d", ErrBadBuffer, len(recvbuf), total)
	}

	t := KnomialTree{P: p, K: k}
	v := vrank(me, root, p)

	// Packed layout: blocks ordered by vrank; packedOff is the prefix sum.
	packedOff := make([]int, p+1)
	for vr := 0; vr < p; vr++ {
		packedOff[vr+1] = packedOff[vr] + counts[absRank(vr, root, p)]
	}
	span := t.P - v
	if par := t.Parent(v); par >= 0 {
		span = t.SubtreeSize(v, t.lowestWeight(v))
	}
	packed := scratch.Get(packedOff[v+span] - packedOff[v])
	copy(packed, sendbuf)

	children := t.Children(v)
	reqs := make([]comm.Request, len(children))
	base := packedOff[v]
	for i, ch := range children {
		sz := t.SubtreeSize(ch.VRank, ch.Weight)
		lo := packedOff[ch.VRank] - base
		hi := packedOff[ch.VRank+sz] - base
		req, err := c.Irecv(absRank(ch.VRank, root, p), tagKnomial+2, packed[lo:hi])
		if err != nil {
			return err // earlier receives still target packed: leak it
		}
		reqs[i] = req
	}
	// WaitAll settles every request even on error, so packed is quiescent
	// from here on.
	if err := comm.WaitAll(reqs...); err != nil {
		scratch.Put(packed)
		return err
	}
	if par := t.Parent(v); par >= 0 {
		err := c.Send(absRank(par, root, p), tagKnomial+2, packed)
		scratch.Put(packed)
		return err
	}
	// Root: un-rotate from vrank order to rank order.
	rankOff := make([]int, p+1)
	for r := 0; r < p; r++ {
		rankOff[r+1] = rankOff[r] + counts[r]
	}
	for vr := 0; vr < p; vr++ {
		r := absRank(vr, root, p)
		copy(recvbuf[rankOff[r]:rankOff[r+1]], packed[packedOff[vr]:packedOff[vr+1]])
	}
	scratch.Put(packed)
	return nil
}

// ScattervKnomial distributes counts[r] bytes to each rank r from root's
// sendbuf (rank blocks concatenated in rank order), over a radix-k tree.
// Rank r's recvbuf must be counts[r] bytes.
func ScattervKnomial(c comm.Comm, sendbuf []byte, counts []int, recvbuf []byte, root, k int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	if err := checkRadix(k); err != nil {
		return err
	}
	p := c.Size()
	me := c.Rank()
	total, err := checkCounts(p, counts)
	if err != nil {
		return err
	}
	if len(recvbuf) != counts[me] {
		return fmt.Errorf("%w: scatterv recvbuf=%d, counts[%d]=%d", ErrBadBuffer, len(recvbuf), me, counts[me])
	}
	if me == root && len(sendbuf) != total {
		return fmt.Errorf("%w: scatterv sendbuf=%d, want %d", ErrBadBuffer, len(sendbuf), total)
	}

	t := KnomialTree{P: p, K: k}
	v := vrank(me, root, p)
	packedOff := make([]int, p+1)
	for vr := 0; vr < p; vr++ {
		packedOff[vr+1] = packedOff[vr] + counts[absRank(vr, root, p)]
	}

	var packed []byte
	if v == 0 {
		packed = scratch.Get(total)
		rankOff := make([]int, p+1)
		for r := 0; r < p; r++ {
			rankOff[r+1] = rankOff[r] + counts[r]
		}
		for vr := 0; vr < p; vr++ {
			r := absRank(vr, root, p)
			copy(packed[packedOff[vr]:packedOff[vr+1]], sendbuf[rankOff[r]:rankOff[r+1]])
		}
	} else {
		span := t.SubtreeSize(v, t.lowestWeight(v))
		packed = scratch.Get(packedOff[v+span] - packedOff[v])
		if _, err := c.Recv(absRank(t.Parent(v), root, p), tagScatter+2, packed); err != nil {
			scratch.Put(packed)
			return err
		}
	}
	base := packedOff[v]
	children := t.Children(v)
	reqs := make([]comm.Request, 0, len(children))
	for _, ch := range children {
		sz := t.SubtreeSize(ch.VRank, ch.Weight)
		lo := packedOff[ch.VRank] - base
		hi := packedOff[ch.VRank+sz] - base
		req, err := c.Isend(absRank(ch.VRank, root, p), tagScatter+2, packed[lo:hi])
		if err != nil {
			return err // earlier sends may still read packed: leak it
		}
		reqs = append(reqs, req)
	}
	copy(recvbuf, packed[:counts[me]])
	// WaitAll settles every request even on error.
	err = comm.WaitAll(reqs...)
	scratch.Put(packed)
	return err
}

// AllgathervRing gathers counts[r] bytes from every rank into every rank's
// recvbuf (rank order) with the ring schedule — the bandwidth-optimal "v"
// allgather.
func AllgathervRing(c comm.Comm, sendbuf []byte, counts []int, recvbuf []byte) error {
	p := c.Size()
	me := c.Rank()
	total, err := checkCounts(p, counts)
	if err != nil {
		return err
	}
	if len(sendbuf) != counts[me] {
		return fmt.Errorf("%w: allgatherv sendbuf=%d, counts[%d]=%d", ErrBadBuffer, len(sendbuf), me, counts[me])
	}
	if len(recvbuf) != total {
		return fmt.Errorf("%w: allgatherv recvbuf=%d, want %d", ErrBadBuffer, len(recvbuf), total)
	}
	off := make([]int, p+1)
	for r := 0; r < p; r++ {
		off[r+1] = off[r] + counts[r]
	}
	copy(recvbuf[off[me]:off[me+1]], sendbuf)
	if p == 1 {
		return nil
	}
	layout := func(b int) (int, int) { return off[b], counts[b] }
	return RingSchedule(p).RunAllgather(c, recvbuf, layout, tagSched+2)
}
