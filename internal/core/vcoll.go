package core

import (
	"fmt"
	"math"

	scratch "exacoll/internal/buf"
	"exacoll/internal/comm"
	"exacoll/internal/datatype"
)

// Variable-count collectives (the MPI "v" variants). The k-nomial tree
// handles them naturally: subtrees span contiguous vrank ranges, so a
// variable-size gather/scatter still forwards one contiguous packed
// region per child, exactly like the fair-block scatter inside the
// scatter-allgather bcasts. Allgatherv/Reduce_scatterv ride the same
// Schedule duality as their uniform cousins, and Alltoallv gets both the
// linear exchange and a packed Bruck-style dissemination (Jocksch et al.,
// arXiv:2006.13112, generalize these constructions; the paper's own
// evaluation does not cover them).

// checkCounts validates a per-rank byte-count vector: exactly p entries,
// none negative, and a total that fits in int (offsets are prefix sums, so
// an overflowing total would silently corrupt them).
func checkCounts(p int, counts []int) (total int, err error) {
	if len(counts) != p {
		return 0, fmt.Errorf("%w: %d counts for %d ranks", ErrBadBuffer, len(counts), p)
	}
	for r, n := range counts {
		if n < 0 {
			return 0, fmt.Errorf("%w: negative count %d for rank %d", ErrBadBuffer, n, r)
		}
		if n > math.MaxInt-total {
			return 0, fmt.Errorf("%w: count total overflows at rank %d", ErrBadBuffer, r)
		}
		total += n
	}
	return total, nil
}

// ScaleCounts converts a per-rank element-count vector into byte counts
// for a datatype, rejecting any entry (or total) that would overflow int.
// The gca-facing API takes element counts + datatype; offsets derived from
// a wrapped total would be corrupt, so this is validated up front.
func ScaleCounts(counts []int, t datatype.Type) ([]int, error) {
	size := t.Size()
	out := make([]int, len(counts))
	total := 0
	for i, n := range counts {
		if n < 0 {
			return nil, fmt.Errorf("%w: negative count %d for rank %d", ErrBadBuffer, n, i)
		}
		if n > math.MaxInt/size {
			return nil, fmt.Errorf("%w: count %d overflows when scaled by %v size %d",
				ErrBadBuffer, n, t, size)
		}
		b := n * size
		if b > math.MaxInt-total {
			return nil, fmt.Errorf("%w: count total overflows at rank %d", ErrBadBuffer, i)
		}
		total += b
		out[i] = b
	}
	return out, nil
}

// prefixOffsets returns the p+1 exclusive prefix sums of counts (offsets of
// rank blocks concatenated in index order).
func prefixOffsets(counts []int) []int {
	off := make([]int, len(counts)+1)
	for i, n := range counts {
		off[i+1] = off[i] + n
	}
	return off
}

// GathervKnomial gathers counts[r] bytes from every rank r into recvbuf at
// root (rank blocks concatenated in rank order), over a radix-k tree.
// Every rank must pass the same counts vector; rank r's sendbuf must be
// counts[r] bytes.
func GathervKnomial(c comm.Comm, sendbuf []byte, counts []int, recvbuf []byte, root, k int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	if err := checkRadix(k); err != nil {
		return err
	}
	p := c.Size()
	me := c.Rank()
	total, err := checkCounts(p, counts)
	if err != nil {
		return err
	}
	if len(sendbuf) != counts[me] {
		return fmt.Errorf("%w: gatherv sendbuf=%d, counts[%d]=%d", ErrBadBuffer, len(sendbuf), me, counts[me])
	}
	if me == root && len(recvbuf) != total {
		return fmt.Errorf("%w: gatherv recvbuf=%d, want %d", ErrBadBuffer, len(recvbuf), total)
	}

	t := KnomialTree{P: p, K: k}
	v := vrank(me, root, p)

	// Packed layout: blocks ordered by vrank; packedOff is the prefix sum.
	packedOff := make([]int, p+1)
	for vr := 0; vr < p; vr++ {
		packedOff[vr+1] = packedOff[vr] + counts[absRank(vr, root, p)]
	}
	span := t.P - v
	if par := t.Parent(v); par >= 0 {
		span = t.SubtreeSize(v, t.lowestWeight(v))
	}
	packed := scratch.Get(packedOff[v+span] - packedOff[v])
	copy(packed, sendbuf)

	children := t.Children(v)
	reqs := make([]comm.Request, len(children))
	base := packedOff[v]
	for i, ch := range children {
		sz := t.SubtreeSize(ch.VRank, ch.Weight)
		lo := packedOff[ch.VRank] - base
		hi := packedOff[ch.VRank+sz] - base
		req, err := c.Irecv(absRank(ch.VRank, root, p), tagKnomial+2, packed[lo:hi])
		if err != nil {
			// Settle the receives already posted (their errors are
			// subsumed by the post failure), after which packed is
			// quiescent and can go back to the pool.
			_ = comm.WaitAll(reqs[:i]...)
			scratch.Put(packed)
			return err
		}
		reqs[i] = req
	}
	// WaitAll settles every request even on error, so packed is quiescent
	// from here on.
	if err := comm.WaitAll(reqs...); err != nil {
		scratch.Put(packed)
		return err
	}
	if par := t.Parent(v); par >= 0 {
		err := c.Send(absRank(par, root, p), tagKnomial+2, packed)
		scratch.Put(packed)
		return err
	}
	// Root: un-rotate from vrank order to rank order.
	rankOff := make([]int, p+1)
	for r := 0; r < p; r++ {
		rankOff[r+1] = rankOff[r] + counts[r]
	}
	for vr := 0; vr < p; vr++ {
		r := absRank(vr, root, p)
		copy(recvbuf[rankOff[r]:rankOff[r+1]], packed[packedOff[vr]:packedOff[vr+1]])
	}
	scratch.Put(packed)
	return nil
}

// ScattervKnomial distributes counts[r] bytes to each rank r from root's
// sendbuf (rank blocks concatenated in rank order), over a radix-k tree.
// Rank r's recvbuf must be counts[r] bytes.
func ScattervKnomial(c comm.Comm, sendbuf []byte, counts []int, recvbuf []byte, root, k int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	if err := checkRadix(k); err != nil {
		return err
	}
	p := c.Size()
	me := c.Rank()
	total, err := checkCounts(p, counts)
	if err != nil {
		return err
	}
	if len(recvbuf) != counts[me] {
		return fmt.Errorf("%w: scatterv recvbuf=%d, counts[%d]=%d", ErrBadBuffer, len(recvbuf), me, counts[me])
	}
	if me == root && len(sendbuf) != total {
		return fmt.Errorf("%w: scatterv sendbuf=%d, want %d", ErrBadBuffer, len(sendbuf), total)
	}

	t := KnomialTree{P: p, K: k}
	v := vrank(me, root, p)
	packedOff := make([]int, p+1)
	for vr := 0; vr < p; vr++ {
		packedOff[vr+1] = packedOff[vr] + counts[absRank(vr, root, p)]
	}

	var packed []byte
	if v == 0 {
		packed = scratch.Get(total)
		rankOff := make([]int, p+1)
		for r := 0; r < p; r++ {
			rankOff[r+1] = rankOff[r] + counts[r]
		}
		for vr := 0; vr < p; vr++ {
			r := absRank(vr, root, p)
			copy(packed[packedOff[vr]:packedOff[vr+1]], sendbuf[rankOff[r]:rankOff[r+1]])
		}
	} else {
		span := t.SubtreeSize(v, t.lowestWeight(v))
		packed = scratch.Get(packedOff[v+span] - packedOff[v])
		if _, err := c.Recv(absRank(t.Parent(v), root, p), tagScatter+2, packed); err != nil {
			scratch.Put(packed)
			return err
		}
	}
	base := packedOff[v]
	children := t.Children(v)
	reqs := make([]comm.Request, 0, len(children))
	for _, ch := range children {
		sz := t.SubtreeSize(ch.VRank, ch.Weight)
		lo := packedOff[ch.VRank] - base
		hi := packedOff[ch.VRank+sz] - base
		req, err := c.Isend(absRank(ch.VRank, root, p), tagScatter+2, packed[lo:hi])
		if err != nil {
			// Settle the sends already posted (ignoring their errors),
			// after which nothing can still read packed and it can go
			// back to the pool instead of leaking to the GC.
			_ = comm.WaitAll(reqs...)
			scratch.Put(packed)
			return err
		}
		reqs = append(reqs, req)
	}
	copy(recvbuf, packed[:counts[me]])
	// WaitAll settles every request even on error.
	err = comm.WaitAll(reqs...)
	scratch.Put(packed)
	return err
}

// AllgathervRing gathers counts[r] bytes from every rank into every rank's
// recvbuf (rank order) with the ring schedule — the bandwidth-optimal "v"
// allgather.
func AllgathervRing(c comm.Comm, sendbuf []byte, counts []int, recvbuf []byte) error {
	p := c.Size()
	me := c.Rank()
	total, err := checkCounts(p, counts)
	if err != nil {
		return err
	}
	if len(sendbuf) != counts[me] {
		return fmt.Errorf("%w: allgatherv sendbuf=%d, counts[%d]=%d", ErrBadBuffer, len(sendbuf), me, counts[me])
	}
	if len(recvbuf) != total {
		return fmt.Errorf("%w: allgatherv recvbuf=%d, want %d", ErrBadBuffer, len(recvbuf), total)
	}
	off := prefixOffsets(counts)
	copy(recvbuf[off[me]:off[me+1]], sendbuf)
	if p == 1 {
		return nil
	}
	layout := func(b int) (int, int) { return off[b], counts[b] }
	return RingSchedule(p).RunAllgather(c, recvbuf, layout, tagSched+2)
}

// AllgathervKnomialBruck is the latency-oriented allgatherv: a radix-k
// Bruck dissemination in ⌈log_k p⌉ phases of k−1 concurrent exchanges.
// Every rank keeps the blocks it holds packed in vrank order (its own
// block first), so each exchange ships one contiguous prefix regardless of
// how skewed the counts are; a final local rotation restores rank order.
// The uniform-count k=2 case is Bruck's classic allgather.
func AllgathervKnomialBruck(c comm.Comm, sendbuf []byte, counts []int, recvbuf []byte, k int) error {
	if err := checkRadix(k); err != nil {
		return err
	}
	p := c.Size()
	me := c.Rank()
	total, err := checkCounts(p, counts)
	if err != nil {
		return err
	}
	if len(sendbuf) != counts[me] {
		return fmt.Errorf("%w: allgatherv sendbuf=%d, counts[%d]=%d", ErrBadBuffer, len(sendbuf), me, counts[me])
	}
	if len(recvbuf) != total {
		return fmt.Errorf("%w: allgatherv recvbuf=%d, want %d", ErrBadBuffer, len(recvbuf), total)
	}
	rankOff := prefixOffsets(counts)
	if p == 1 {
		copy(recvbuf, sendbuf)
		return nil
	}

	// relOff[j] is the packed offset of the block from rank (me + j) mod p
	// — the dissemination order. Any rank's packed layout is computable
	// from the shared counts vector, which is how senders and receivers
	// agree on message sizes without exchanging them.
	relOff := make([]int, p+1)
	for j := 0; j < p; j++ {
		relOff[j+1] = relOff[j] + counts[(me+j)%p]
	}
	acc := scratch.Get(total)
	copy(acc, sendbuf)

	reqs := make([]comm.Request, 0, 2*(k-1))
	for w := 1; w < p; w = minInt(p, w*k) {
		// Phase invariant: acc[:relOff[w]] holds blocks me..me+w−1. Each
		// sub-exchange j ships that prefix (truncated at p blocks total)
		// to the rank j·w behind; the symmetric receive lands at the
		// packed range for blocks me+j·w onward. Sends read the prefix
		// while receives fill disjoint later ranges of acc.
		reqs = reqs[:0]
		for j := 1; j < k; j++ {
			cnt := minInt(w, p-j*w)
			if cnt <= 0 {
				break
			}
			from := (me + j*w) % p
			peerOff := relOff[j*w]
			req, err := c.Irecv(from, tagVColl, acc[peerOff:relOff[j*w+cnt]])
			if err != nil {
				// Earlier posts may still target acc, and settling them here
				// can deadlock when every rank fails the same phase (nobody
				// has sent yet), so acc leaks to the GC — the convention of
				// the schedule executors.
				return err
			}
			reqs = append(reqs, req)
		}
		for j := 1; j < k; j++ {
			cnt := minInt(w, p-j*w)
			if cnt <= 0 {
				break
			}
			to := ((me-j*w)%p + p) % p
			// The receiver's packed range for my blocks has my relOff
			// prefix length: both sides derive it from counts.
			req, err := c.Isend(to, tagVColl, acc[:relOff[cnt]])
			if err != nil {
				// Posted receives may still target acc; settling them can
				// deadlock when every rank fails this phase's first send
				// (no phase message was ever posted), so acc leaks.
				return err
			}
			reqs = append(reqs, req)
		}
		if err := comm.WaitAll(reqs...); err != nil {
			scratch.Put(acc)
			return err
		}
	}

	// Rotate from dissemination order back to rank order.
	for j := 0; j < p; j++ {
		r := (me + j) % p
		copy(recvbuf[rankOff[r]:rankOff[r+1]], acc[relOff[j]:relOff[j+1]])
	}
	scratch.Put(acc)
	return nil
}

// ReduceScattervRing reduce-scatters the full vector sendbuf: rank r
// receives the fully reduced counts[r]-byte block (rank blocks
// concatenated in rank order) in recvbuf. It is the time-reversed
// AllgathervRing — the same ring schedule run backwards with accumulation
// — so the block layout is the caller's counts vector rather than the
// fair split, and every count must be element-aligned so reductions never
// split an element.
func ReduceScattervRing(c comm.Comm, sendbuf []byte, counts []int, recvbuf []byte, op datatype.Op, dt datatype.Type) error {
	p := c.Size()
	me := c.Rank()
	total, err := checkCounts(p, counts)
	if err != nil {
		return err
	}
	for r, n := range counts {
		if n%dt.Size() != 0 {
			return fmt.Errorf("%w: reduce-scatterv count %d for rank %d not a multiple of %v size %d",
				ErrBadBuffer, n, r, dt, dt.Size())
		}
	}
	if len(sendbuf) != total {
		return fmt.Errorf("%w: reduce-scatterv sendbuf=%d, want %d", ErrBadBuffer, len(sendbuf), total)
	}
	if len(recvbuf) != counts[me] {
		return fmt.Errorf("%w: reduce-scatterv recvbuf=%d, counts[%d]=%d", ErrBadBuffer, len(recvbuf), me, counts[me])
	}
	off := prefixOffsets(counts)
	work := scratch.Get(total)
	copy(work, sendbuf)
	if p > 1 {
		layout := func(b int) (int, int) { return off[b], counts[b] }
		if err := RingSchedule(p).RunReduceScatter(c, work, layout, op, dt, tagSched+3); err != nil {
			return err // posting-error paths may leave sends reading work: leak
		}
	}
	copy(recvbuf, work[off[me]:off[me+1]])
	scratch.Put(work)
	return nil
}

// checkCountMatrix validates a p×p row-major byte-count matrix (entry
// [i*p+j] is the bytes rank i sends to rank j) and returns its total.
func checkCountMatrix(p int, m []int) (total int, err error) {
	if len(m) != p*p {
		return 0, fmt.Errorf("%w: %d matrix entries for %d ranks", ErrBadBuffer, len(m), p)
	}
	for i, n := range m {
		if n < 0 {
			return 0, fmt.Errorf("%w: negative count %d at matrix entry %d", ErrBadBuffer, n, i)
		}
		if n > math.MaxInt-total {
			return 0, fmt.Errorf("%w: count total overflows at matrix entry %d", ErrBadBuffer, i)
		}
		total += n
	}
	return total, nil
}

// AlltoallvLinear posts every irregular send and receive at once, like
// AlltoallLinear. sendcounts[q] is what this rank sends to q (sendbuf is
// the dense rank-order concatenation); recvcounts[q] is what it receives
// from q. Counts are local views — rank r's sendcounts[q] must equal rank
// q's recvcounts[r].
func AlltoallvLinear(c comm.Comm, sendbuf []byte, sendcounts []int, recvbuf []byte, recvcounts []int) error {
	p := c.Size()
	me := c.Rank()
	sendTotal, err := checkCounts(p, sendcounts)
	if err != nil {
		return err
	}
	recvTotal, err := checkCounts(p, recvcounts)
	if err != nil {
		return err
	}
	if len(sendbuf) != sendTotal || len(recvbuf) != recvTotal {
		return fmt.Errorf("%w: alltoallv sendbuf=%d want %d, recvbuf=%d want %d",
			ErrBadBuffer, len(sendbuf), sendTotal, len(recvbuf), recvTotal)
	}
	soff := prefixOffsets(sendcounts)
	roff := prefixOffsets(recvcounts)
	copy(recvbuf[roff[me]:roff[me+1]], sendbuf[soff[me]:soff[me+1]])
	reqs := make([]comm.Request, 0, 2*(p-1))
	for q := 0; q < p; q++ {
		if q == me {
			continue
		}
		req, err := c.Irecv(q, tagVColl+1, recvbuf[roff[q]:roff[q+1]])
		if err != nil {
			// Earlier receives may still target recvbuf. Settling them here
			// can deadlock when every rank fails before sending (the posted
			// receives would wait on messages nobody posts), so the posts
			// are left dangling and the caller must not reuse the buffers —
			// the schedule executors' convention.
			return err
		}
		reqs = append(reqs, req)
	}
	for q := 0; q < p; q++ {
		if q == me {
			continue
		}
		req, err := c.Isend(q, tagVColl+1, sendbuf[soff[q]:soff[q+1]])
		if err != nil {
			return err // posted receives may still target recvbuf: see above
		}
		reqs = append(reqs, req)
	}
	return comm.WaitAll(reqs...)
}

// AlltoallvBruck is the packed Bruck-style alltoallv: ⌈log2 p⌉ store-and-
// forward rounds instead of p−1 direct exchanges, the small-message regime
// where per-message latency dominates. It needs the full p×p count matrix
// m (row-major, m[i*p+j] = bytes i sends to j): with variable sizes every
// rank must compute the evolving slot sizes of every other rank to pack
// and unpack the combined messages, which local count vectors cannot
// provide. sendbuf is the dense concatenation of row me; recvbuf of column
// me.
func AlltoallvBruck(c comm.Comm, sendbuf []byte, m []int, recvbuf []byte) error {
	p := c.Size()
	me := c.Rank()
	if _, err := checkCountMatrix(p, m); err != nil {
		return err
	}
	sendTotal, recvTotal := 0, 0
	for q := 0; q < p; q++ {
		sendTotal += m[me*p+q]
		recvTotal += m[q*p+me]
	}
	if len(sendbuf) != sendTotal || len(recvbuf) != recvTotal {
		return fmt.Errorf("%w: alltoallv sendbuf=%d want %d, recvbuf=%d want %d",
			ErrBadBuffer, len(sendbuf), sendTotal, len(recvbuf), recvTotal)
	}
	if p == 1 {
		copy(recvbuf, sendbuf)
		return nil
	}

	// Slot i holds the payload currently routed through this rank toward
	// rank (me + i) mod p. After processing the set B of distance bits,
	// slot i at rank r holds the payload (origin r − (i & B), destination
	// origin + i) — so its size is m[origin*p + origin+i], computable by
	// every rank at every round from the shared matrix.
	originOf := func(i, bits int) int { return ((me-(i&bits))%p + p) % p }
	slotSize := func(i, bits int) int {
		o := originOf(i, bits)
		return m[o*p+(o+i)%p]
	}

	srow := prefixOffsets(m[me*p : (me+1)*p])
	tmpLen := 0
	for i := 0; i < p; i++ {
		tmpLen += slotSize(i, 0)
	}
	tmp := scratch.Get(tmpLen)
	pos := 0
	for i := 0; i < p; i++ {
		dst := (me + i) % p
		copy(tmp[pos:pos+m[me*p+dst]], sendbuf[srow[dst]:srow[dst+1]])
		pos += m[me*p+dst]
	}

	bits := 0
	for dist := 1; dist < p; dist <<= 1 {
		// Slots with the dist bit set move to (me + dist); the incoming
		// combined message from (me − dist) replaces them. Slot sizes
		// change across the round, so the surviving slots are repacked
		// into a fresh buffer sized for the new layout.
		newBits := bits | dist
		oldOff := make([]int, p+1)
		newOff := make([]int, p+1)
		outLen, inLen := 0, 0
		for i := 0; i < p; i++ {
			oldOff[i+1] = oldOff[i] + slotSize(i, bits)
			newOff[i+1] = newOff[i] + slotSize(i, newBits)
			if i&dist != 0 {
				outLen += slotSize(i, bits)
				inLen += slotSize(i, newBits)
			}
		}
		out := scratch.Get(outLen)
		in := scratch.Get(inLen)
		next := scratch.Get(newOff[p])
		pos := 0
		for i := 0; i < p; i++ {
			if i&dist != 0 {
				copy(out[pos:], tmp[oldOff[i]:oldOff[i+1]])
				pos += oldOff[i+1] - oldOff[i]
			} else {
				copy(next[newOff[i]:newOff[i+1]], tmp[oldOff[i]:oldOff[i+1]])
			}
		}
		to := (me + dist) % p
		from := ((me-dist)%p + p) % p
		_, err := comm.SendRecv(c, to, out, from, in, tagVColl+2)
		scratch.Put(out)
		if err != nil {
			scratch.Put(in)
			scratch.Put(next)
			scratch.Put(tmp)
			return err
		}
		pos = 0
		for i := 0; i < p; i++ {
			if i&dist != 0 {
				copy(next[newOff[i]:newOff[i+1]], in[pos:])
				pos += newOff[i+1] - newOff[i]
			}
		}
		scratch.Put(in)
		scratch.Put(tmp)
		tmp = next
		bits = newBits
	}

	// Slot i now holds the payload from rank (me − i) destined to me.
	rcol := make([]int, p+1)
	for q := 0; q < p; q++ {
		rcol[q+1] = rcol[q] + m[q*p+me]
	}
	pos = 0
	for i := 0; i < p; i++ {
		src := ((me-i)%p + p) % p
		sz := m[src*p+me]
		copy(recvbuf[rcol[src]:rcol[src]+sz], tmp[pos:pos+sz])
		pos += sz
	}
	scratch.Put(tmp)
	return nil
}
