package core

import (
	scratch "exacoll/internal/buf"
	"exacoll/internal/comm"
	"exacoll/internal/datatype"
)

// Prefix reductions (MPI_Scan / MPI_Exscan). Not part of the paper's
// Table I, but part of the collective surface a drop-in library needs;
// both the O(p) chain and the O(log p) Hillis–Steele algorithms are
// provided, and the combine order is left-to-right so non-commutative
// operators would also be safe.

// ScanLinear computes the inclusive prefix reduction with a serial chain:
// rank r receives the prefix of 0..r−1 from r−1, combines its own
// contribution, and forwards to r+1. O(p) latency, minimal bandwidth.
func ScanLinear(c comm.Comm, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type) error {
	if err := checkReduceBufs(sendbuf, recvbuf, dt); err != nil {
		return err
	}
	p := c.Size()
	me := c.Rank()
	copy(recvbuf, sendbuf)
	if me > 0 {
		// prev is only ever a synchronous Recv target: safe to recycle on
		// any exit.
		prev := scratch.Get(len(sendbuf))
		defer scratch.Put(prev)
		if _, err := c.Recv(me-1, tagLinear+1, prev); err != nil {
			return err
		}
		// Left-to-right: prefix(0..r-1) OP own.
		if err := reduceInto(c, op, dt, prev, recvbuf); err != nil {
			return err
		}
		copy(recvbuf, prev)
	}
	if me < p-1 {
		return c.Send(me+1, tagLinear+1, recvbuf)
	}
	return nil
}

// ScanHillisSteele computes the inclusive prefix reduction in ⌈log2 p⌉
// rounds: in round i, rank r sends its running partial to r+2^i and
// combines the partial received from r−2^i on its left. Every rank is
// busy every round, trading p·log p total messages for logarithmic depth.
func ScanHillisSteele(c comm.Comm, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type) error {
	if err := checkReduceBufs(sendbuf, recvbuf, dt); err != nil {
		return err
	}
	p := c.Size()
	me := c.Rank()
	copy(recvbuf, sendbuf)
	// incoming is only ever a synchronous Recv target: safe to recycle on
	// any exit.
	incoming := scratch.Get(len(sendbuf))
	defer scratch.Put(incoming)
	for dist := 1; dist < p; dist <<= 1 {
		var sreq comm.Request
		var out []byte
		if me+dist < p {
			// Snapshot: the buffer must stay stable until the send
			// completes while we overwrite recvbuf below.
			out = scratch.Get(len(recvbuf))
			copy(out, recvbuf)
			req, err := c.Isend(me+dist, tagRecDbl+1, out)
			if err != nil {
				scratch.Put(out) // posting failed: never in flight
				return err
			}
			sreq = req
		}
		if me-dist >= 0 {
			if _, err := c.Recv(me-dist, tagRecDbl+1, incoming); err != nil {
				return err // sreq may still be reading out: leak it
			}
			// incoming covers ranks left of ours: combine left-to-right.
			if err := reduceInto(c, op, dt, incoming, recvbuf); err != nil {
				return err // sreq may still be reading out: leak it
			}
			copy(recvbuf, incoming)
		}
		if sreq != nil {
			err := sreq.Wait()
			scratch.Put(out) // settled by Wait
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Exscan computes the exclusive prefix reduction (rank r receives the
// combination of ranks 0..r−1; rank 0's recvbuf is left untouched, as in
// MPI): an inclusive Hillis–Steele scan followed by a one-position shift.
func Exscan(c comm.Comm, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type) error {
	if err := checkReduceBufs(sendbuf, recvbuf, dt); err != nil {
		return err
	}
	p := c.Size()
	me := c.Rank()
	if p == 1 {
		return nil
	}
	inclusive := scratch.Get(len(sendbuf))
	if err := ScanHillisSteele(c, sendbuf, inclusive, op, dt); err != nil {
		scratch.Put(inclusive)
		return err
	}
	var sreq comm.Request
	if me < p-1 {
		req, err := c.Isend(me+1, tagRecDbl+2, inclusive)
		if err != nil {
			scratch.Put(inclusive) // posting failed: never in flight
			return err
		}
		sreq = req
	}
	if me > 0 {
		if _, err := c.Recv(me-1, tagRecDbl+2, recvbuf); err != nil {
			return err // sreq may still be reading inclusive: leak it
		}
	}
	if sreq != nil {
		err := sreq.Wait()
		scratch.Put(inclusive) // settled by Wait
		return err
	}
	scratch.Put(inclusive)
	return nil
}

// BcastChain is the pipelined chain broadcast: segments flow down the
// linear chain root → root+1 → …, every hop forwarding segment s while
// receiving s+1. With m segments the last rank finishes after p−1+m−1
// segment steps — the classic large-message broadcast on systems where a
// chain maps well onto the physical topology, and the degenerate k=p
// endpoint of the ring family.
func BcastChain(c comm.Comm, buf []byte, root, segSize int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	if segSize < 1 {
		return ErrBadBuffer
	}
	p := c.Size()
	if p == 1 || len(buf) == 0 {
		return nil
	}
	v := vrank(c.Rank(), root, p)
	nseg := (len(buf) + segSize - 1) / segSize
	segment := func(s int) []byte {
		lo := s * segSize
		hi := minInt(lo+segSize, len(buf))
		return buf[lo:hi]
	}
	var recvReqs []comm.Request
	if v > 0 {
		src := absRank(v-1, root, p)
		recvReqs = make([]comm.Request, nseg)
		for s := 0; s < nseg; s++ {
			req, err := c.Irecv(src, tagLinear+2, segment(s))
			if err != nil {
				return err
			}
			recvReqs[s] = req
		}
	}
	var sendReqs []comm.Request
	for s := 0; s < nseg; s++ {
		if recvReqs != nil {
			if err := recvReqs[s].Wait(); err != nil {
				return err
			}
		}
		if v < p-1 {
			req, err := c.Isend(absRank(v+1, root, p), tagLinear+2, segment(s))
			if err != nil {
				return err
			}
			sendReqs = append(sendReqs, req)
		}
	}
	return comm.WaitAll(sendReqs...)
}
