package core

import (
	"fmt"

	"exacoll/internal/comm"
	"exacoll/internal/flight"
)

// BcastKnomialSegmented is the pipelined (segmented) k-nomial broadcast —
// the standard production refinement of tree broadcasts (MPICH and Open
// MPI both segment large messages): the payload is split into segments of
// segSize bytes, and every internal node forwards segment s to its
// children as soon as it arrives, overlapping its own receive of segment
// s+1. For a tree of depth d and m segments the pipeline completes in
// d + m − 1 segment steps instead of d full-message steps, converting the
// k-nomial bcast from latency-optimal-only into a competitive
// large-message algorithm.
func BcastKnomialSegmented(c comm.Comm, buf []byte, root, k, segSize int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	if err := checkRadix(k); err != nil {
		return err
	}
	if segSize < 1 {
		return fmt.Errorf("%w: segment size %d", ErrBadBuffer, segSize)
	}
	p := c.Size()
	if p == 1 || len(buf) == 0 {
		return nil
	}
	if len(buf) <= segSize {
		return BcastKnomial(c, buf, root, k)
	}

	t := KnomialTree{P: p, K: k}
	v := vrank(c.Rank(), root, p)
	children := t.Children(v)
	nseg := (len(buf) + segSize - 1) / segSize
	segment := func(s int) []byte {
		lo := s * segSize
		hi := minInt(lo+segSize, len(buf))
		return buf[lo:hi]
	}

	// Non-roots pre-post every segment receive; per-(source, tag) FIFO
	// keeps segments in order.
	var recvReqs []comm.Request
	if par := t.Parent(v); par >= 0 {
		recvReqs = make([]comm.Request, nseg)
		src := absRank(par, root, p)
		for s := 0; s < nseg; s++ {
			req, err := c.Irecv(src, tagKnomial+1, segment(s))
			if err != nil {
				return err
			}
			recvReqs[s] = req
		}
	}

	rec := flight.RecorderOf(c)
	sendReqs := make([]comm.Request, 0, nseg*len(children))
	for s := 0; s < nseg; s++ {
		if rec != nil {
			rec.Record(flight.EvSegment, -1, 0, len(segment(s)), uint64(s))
		}
		if recvReqs != nil {
			if err := recvReqs[s].Wait(); err != nil {
				return err
			}
		}
		for _, ch := range children {
			req, err := c.Isend(absRank(ch.VRank, root, p), tagKnomial+1, segment(s))
			if err != nil {
				return err
			}
			sendReqs = append(sendReqs, req)
		}
	}
	return comm.WaitAll(sendReqs...)
}

// PipelineSegments returns the segment count used for n bytes at segSize
// (exported for the analytical model and tests).
func PipelineSegments(n, segSize int) int {
	if n <= 0 || segSize < 1 {
		return 0
	}
	return (n + segSize - 1) / segSize
}
