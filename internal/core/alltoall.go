package core

import (
	"fmt"

	scratch "exacoll/internal/buf"
	"exacoll/internal/comm"
)

// Alltoall semantics: sendbuf holds p blocks of n bytes, block j destined
// for rank j; recvbuf receives p blocks, block j originating at rank j.
// Alltoall is not one of the paper's generalized targets (Table I), but it
// is the substrate of the related work the paper builds on (Bruck's
// algorithm [7], generalized by Fan et al. [12]), so the standard
// algorithm ladder is provided as baselines: linear for small worlds,
// pairwise exchange for large messages, and Bruck for small messages at
// scale.

func checkAlltoallBufs(c comm.Comm, sendbuf, recvbuf []byte) (n int, err error) {
	p := c.Size()
	if len(sendbuf) != len(recvbuf) {
		return 0, fmt.Errorf("%w: alltoall sendbuf=%d recvbuf=%d", ErrBadBuffer, len(sendbuf), len(recvbuf))
	}
	if len(sendbuf)%p != 0 {
		return 0, fmt.Errorf("%w: alltoall buffer %d not divisible by p=%d", ErrBadBuffer, len(sendbuf), p)
	}
	return len(sendbuf) / p, nil
}

// AlltoallLinear posts every send and receive at once — optimal when the
// network can buffer all p−1 messages (small worlds / multi-port nodes).
func AlltoallLinear(c comm.Comm, sendbuf, recvbuf []byte) error {
	n, err := checkAlltoallBufs(c, sendbuf, recvbuf)
	if err != nil {
		return err
	}
	p := c.Size()
	me := c.Rank()
	copy(recvbuf[me*n:(me+1)*n], sendbuf[me*n:(me+1)*n])
	reqs := make([]comm.Request, 0, 2*(p-1))
	for q := 0; q < p; q++ {
		if q == me {
			continue
		}
		req, err := c.Irecv(q, tagAlltoall, recvbuf[q*n:(q+1)*n])
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	for q := 0; q < p; q++ {
		if q == me {
			continue
		}
		req, err := c.Isend(q, tagAlltoall, sendbuf[q*n:(q+1)*n])
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return comm.WaitAll(reqs...)
}

// AlltoallPairwise runs p−1 exchange rounds (round s pairs rank r with
// r+s and r−s mod p) — MPICH's large-message alltoall, bounding the
// in-flight data to one block per rank.
func AlltoallPairwise(c comm.Comm, sendbuf, recvbuf []byte) error {
	n, err := checkAlltoallBufs(c, sendbuf, recvbuf)
	if err != nil {
		return err
	}
	p := c.Size()
	me := c.Rank()
	copy(recvbuf[me*n:(me+1)*n], sendbuf[me*n:(me+1)*n])
	for s := 1; s < p; s++ {
		to := (me + s) % p
		from := ((me-s)%p + p) % p
		if _, err := comm.SendRecv(c, to, sendbuf[to*n:(to+1)*n],
			from, recvbuf[from*n:(from+1)*n], tagAlltoall); err != nil {
			return err
		}
	}
	return nil
}

// AlltoallBruck is Bruck's ⌈log2 p⌉-round alltoall (the paper's reference
// [7]): blocks are locally rotated so every rank's outgoing data is
// indexed by distance, then round i forwards every block whose index has
// bit i set to the rank 2^i ahead, and a final inverse rotation restores
// rank order. Optimal message count for small blocks at large p.
func AlltoallBruck(c comm.Comm, sendbuf, recvbuf []byte) error {
	n, err := checkAlltoallBufs(c, sendbuf, recvbuf)
	if err != nil {
		return err
	}
	p := c.Size()
	me := c.Rank()
	if p == 1 {
		copy(recvbuf, sendbuf)
		return nil
	}

	// Phase 1: local rotation — tmp block i is the block destined for
	// rank (me + i) mod p. All scratch here is only ever touched by
	// SendRecv, which settles both sides before returning, so recycling on
	// any exit is safe.
	tmp := scratch.Get(n * p)
	defer scratch.Put(tmp)
	for i := 0; i < p; i++ {
		dst := (me + i) % p
		copy(tmp[i*n:(i+1)*n], sendbuf[dst*n:(dst+1)*n])
	}

	// Phase 2: log rounds; in round `dist` every block whose index has
	// that bit set moves 2^i ranks forward.
	for dist := 1; dist < p; dist <<= 1 {
		var idxs []int
		for i := 0; i < p; i++ {
			if i&dist != 0 {
				idxs = append(idxs, i)
			}
		}
		out := scratch.Get(len(idxs) * n)
		pos := 0
		for _, i := range idxs {
			copy(out[pos:pos+n], tmp[i*n:(i+1)*n])
			pos += n
		}
		in := scratch.Get(len(out))
		to := (me + dist) % p
		from := ((me-dist)%p + p) % p
		_, err := comm.SendRecv(c, to, out, from, in, tagBruck)
		scratch.Put(out)
		if err != nil {
			scratch.Put(in)
			return err
		}
		for bi, i := range idxs {
			copy(tmp[i*n:(i+1)*n], in[bi*n:(bi+1)*n])
		}
		scratch.Put(in)
	}

	// Phase 3: inverse rotation — after forwarding, tmp block i holds the
	// data sent BY rank (me - i) mod p.
	for i := 0; i < p; i++ {
		src := ((me-i)%p + p) % p
		copy(recvbuf[src*n:(src+1)*n], tmp[i*n:(i+1)*n])
	}
	return nil
}
