package core

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"exacoll/internal/comm"
	"exacoll/internal/datatype"
)

// prefixSum is the expected inclusive scan result at rank r.
func prefixSum(r, elems int) []float64 {
	out := make([]float64, elems)
	for q := 0; q <= r; q++ {
		for i, x := range rankVector(q, elems) {
			out[i] += x
		}
	}
	return out
}

// TestScanAlgorithms validates both scan implementations across sizes.
func TestScanAlgorithms(t *testing.T) {
	algs := map[string]func(c comm.Comm, s, r []byte, op datatype.Op, dt datatype.Type) error{
		"linear":        ScanLinear,
		"hillis-steele": ScanHillisSteele,
	}
	for name, fn := range algs {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) {
			for _, p := range []int{1, 2, 3, 5, 8, 13} {
				for _, elems := range []int{1, 16, 200} {
					p, elems := p, elems
					runOnWorld(t, p, func(c comm.Comm) error {
						sendbuf := datatype.EncodeFloat64(rankVector(c.Rank(), elems))
						recvbuf := make([]byte, len(sendbuf))
						if err := fn(c, sendbuf, recvbuf, datatype.Sum, datatype.Float64); err != nil {
							return err
						}
						want := datatype.EncodeFloat64(prefixSum(c.Rank(), elems))
						if !bytes.Equal(recvbuf, want) {
							return fmt.Errorf("%s p=%d elems=%d: scan wrong at rank %d", name, p, elems, c.Rank())
						}
						return nil
					})
				}
			}
		})
	}
}

// TestExscan validates the exclusive scan (rank 0's buffer untouched).
func TestExscan(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		p := p
		elems := 32
		runOnWorld(t, p, func(c comm.Comm) error {
			sendbuf := datatype.EncodeFloat64(rankVector(c.Rank(), elems))
			recvbuf := bytes.Repeat([]byte{0xAB}, len(sendbuf))
			if err := Exscan(c, sendbuf, recvbuf, datatype.Sum, datatype.Float64); err != nil {
				return err
			}
			if c.Rank() == 0 {
				if !bytes.Equal(recvbuf, bytes.Repeat([]byte{0xAB}, len(sendbuf))) {
					return fmt.Errorf("rank 0 exscan buffer was modified")
				}
				return nil
			}
			want := datatype.EncodeFloat64(prefixSum(c.Rank()-1, elems))
			if !bytes.Equal(recvbuf, want) {
				return fmt.Errorf("exscan wrong at rank %d", c.Rank())
			}
			return nil
		})
	}
}

// TestBcastChain validates the pipelined chain bcast across segment sizes.
func TestBcastChain(t *testing.T) {
	for _, p := range []int{1, 2, 4, 9} {
		for _, n := range []int{0, 1, 1000, 8192} {
			for _, seg := range []int{1, 100, 4096, 1 << 20} {
				p, n, seg := p, n, seg
				root := p / 3
				payload := rankPayload(root, n)
				runOnWorld(t, p, func(c comm.Comm) error {
					buf := make([]byte, n)
					if c.Rank() == root {
						copy(buf, payload)
					}
					if err := BcastChain(c, buf, root, seg); err != nil {
						return err
					}
					if !bytes.Equal(buf, payload) {
						return fmt.Errorf("p=%d n=%d seg=%d: chain bcast wrong at rank %d", p, n, seg, c.Rank())
					}
					return nil
				})
			}
		}
	}
	runOnWorld(t, 2, func(c comm.Comm) error {
		if err := BcastChain(c, make([]byte, 8), 0, 0); err == nil {
			return fmt.Errorf("want error for segSize=0")
		}
		return nil
	})
}

// TestQuickScanAgree: testing/quick — both scans agree with the locally
// computed prefix for random geometry.
func TestQuickScanAgree(t *testing.T) {
	prop := func(pRaw, nRaw uint32) bool {
		p := int(pRaw%10) + 1
		elems := int(nRaw%100) + 1
		for _, fn := range []func(c comm.Comm, s, r []byte, op datatype.Op, dt datatype.Type) error{
			ScanLinear, ScanHillisSteele,
		} {
			fn := fn
			err := runQuickWorld(p, func(c comm.Comm) error {
				sendbuf := datatype.EncodeFloat64(rankVector(c.Rank(), elems))
				recvbuf := make([]byte, len(sendbuf))
				if err := fn(c, sendbuf, recvbuf, datatype.Sum, datatype.Float64); err != nil {
					return err
				}
				if !bytes.Equal(recvbuf, datatype.EncodeFloat64(prefixSum(c.Rank(), elems))) {
					return fmt.Errorf("mismatch")
				}
				return nil
			})
			if err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}
