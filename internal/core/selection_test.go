package core

import "testing"

// TestSelectionSize pins the per-op selection size: len(SendBuf)
// everywhere except scatter, whose agreement-safe size is the per-rank
// block in RecvBuf (only the root holds the p·block send buffer).
func TestSelectionSize(t *testing.T) {
	send := make([]byte, 1024)
	recv := make([]byte, 256)
	rootScatter := Args{SendBuf: make([]byte, 4*256), RecvBuf: recv}
	leafScatter := Args{RecvBuf: recv} // non-roots may pass no sendbuf

	cases := []struct {
		op   CollOp
		a    Args
		want int
	}{
		{OpBcast, Args{SendBuf: send}, 1024},
		{OpReduce, Args{SendBuf: send, RecvBuf: send}, 1024},
		{OpAllreduce, Args{SendBuf: send, RecvBuf: send}, 1024},
		{OpGather, Args{SendBuf: recv, RecvBuf: send}, 256},
		{OpAllgather, Args{SendBuf: recv, RecvBuf: send}, 256},
		{OpAlltoall, Args{SendBuf: send, RecvBuf: send}, 1024},
		{OpReduceScatter, Args{SendBuf: send, RecvBuf: recv}, 1024},
		{OpScan, Args{SendBuf: send, RecvBuf: send}, 1024},
		{OpScatter, rootScatter, 256},
		{OpScatter, leafScatter, 256},
	}
	for _, c := range cases {
		if got := SelectionSize(c.op, c.a); got != c.want {
			t.Errorf("SelectionSize(%v) = %d, want %d", c.op, got, c.want)
		}
	}
	// The property that matters: root and non-root scatter args agree.
	if SelectionSize(OpScatter, rootScatter) != SelectionSize(OpScatter, leafScatter) {
		t.Error("scatter selection size differs between root and non-root")
	}
}
