package core

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"exacoll/internal/comm"
)

// vcounts builds a deterministic ragged count vector (including zeros).
func vcounts(p int) []int {
	counts := make([]int, p)
	for r := range counts {
		counts[r] = (r * 37 % 97) // some ranks contribute 0 bytes
	}
	return counts
}

// TestGathervScatterv checks the v-variants across sizes, roots and
// radices, including zero-byte contributors.
func TestGathervScatterv(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8, 13} {
		for _, k := range []int{2, 3, 4} {
			for _, root := range []int{0, p - 1} {
				p, k, root := p, k, root
				counts := vcounts(p)
				total := 0
				offs := make([]int, p+1)
				for r, n := range counts {
					offs[r+1] = offs[r] + n
					total += n
				}
				full := rankPayload(99, total)
				runOnWorld(t, p, func(c comm.Comm) error {
					me := c.Rank()
					// Scatterv then gatherv must round-trip root's buffer.
					var sendbuf []byte
					if me == root {
						sendbuf = append([]byte(nil), full...)
					}
					mine := make([]byte, counts[me])
					if err := ScattervKnomial(c, sendbuf, counts, mine, root, k); err != nil {
						return fmt.Errorf("scatterv: %w", err)
					}
					if !bytes.Equal(mine, full[offs[me]:offs[me+1]]) {
						return fmt.Errorf("scatterv block wrong at rank %d", me)
					}
					var back []byte
					if me == root {
						back = make([]byte, total)
					}
					if err := GathervKnomial(c, mine, counts, back, root, k); err != nil {
						return fmt.Errorf("gatherv: %w", err)
					}
					if me == root && !bytes.Equal(back, full) {
						return fmt.Errorf("gatherv != scatterv⁻¹")
					}
					return nil
				})
			}
		}
	}
}

// TestAllgathervRing checks the ragged ring allgather.
func TestAllgathervRing(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7, 12} {
		p := p
		counts := vcounts(p)
		total := 0
		offs := make([]int, p+1)
		for r, n := range counts {
			offs[r+1] = offs[r] + n
			total += n
		}
		runOnWorld(t, p, func(c comm.Comm) error {
			me := c.Rank()
			mine := rankPayload(me+40, counts[me])
			all := make([]byte, total)
			if err := AllgathervRing(c, mine, counts, all); err != nil {
				return err
			}
			for r := 0; r < p; r++ {
				if !bytes.Equal(all[offs[r]:offs[r+1]], rankPayload(r+40, counts[r])) {
					return fmt.Errorf("block %d wrong at rank %d", r, me)
				}
			}
			return nil
		})
	}
}

// TestVCollValidation covers the count-vector error paths.
func TestVCollValidation(t *testing.T) {
	runOnWorld(t, 2, func(c comm.Comm) error {
		if err := GathervKnomial(c, nil, []int{1}, nil, 0, 2); err == nil {
			return fmt.Errorf("want error for short counts")
		}
		if err := ScattervKnomial(c, nil, []int{-1, 1}, nil, 0, 2); err == nil {
			return fmt.Errorf("want error for negative count")
		}
		if err := AllgathervRing(c, make([]byte, 3), []int{1, 1}, make([]byte, 2)); err == nil {
			return fmt.Errorf("want error for sendbuf/count mismatch")
		}
		return nil
	})
}

// TestQuickAllgathervAgree: testing/quick over ragged geometries.
func TestQuickAllgathervAgree(t *testing.T) {
	prop := func(pRaw uint32, raw [6]uint16) bool {
		p := int(pRaw%6) + 1
		counts := make([]int, p)
		total := 0
		for r := range counts {
			counts[r] = int(raw[r] % 300)
			total += counts[r]
		}
		offs := make([]int, p+1)
		for r, n := range counts {
			offs[r+1] = offs[r] + n
		}
		err := runQuickWorld(p, func(c comm.Comm) error {
			me := c.Rank()
			mine := rankPayload(me, counts[me])
			all := make([]byte, total)
			if err := AllgathervRing(c, mine, counts, all); err != nil {
				return err
			}
			for r := 0; r < p; r++ {
				if !bytes.Equal(all[offs[r]:offs[r+1]], rankPayload(r, counts[r])) {
					return fmt.Errorf("block %d", r)
				}
			}
			return nil
		})
		return err == nil
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}
