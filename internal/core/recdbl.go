package core

import (
	"errors"
	"fmt"

	scratch "exacoll/internal/buf"
	"exacoll/internal/comm"
	"exacoll/internal/datatype"
)

// ErrPow2Only reports an algorithm restricted to power-of-two communicator
// sizes (matching MPICH, whose recursive-doubling allgather is only
// selected for power-of-two sizes; the generalized recursive-multiplying
// algorithms in recmul.go handle arbitrary sizes via folding).
var ErrPow2Only = errors.New("core: algorithm requires a power-of-two number of ranks")

func isPow2(p int) bool { return p > 0 && p&(p-1) == 0 }

// recdblAllgatherLayout runs classic recursive-doubling allgather over
// blocks keyed by absolute rank under the given layout. Each rank must
// already hold its own block in buf; blocks form contiguous regions under
// both supported layouts, so every exchange is a single contiguous
// sendrecv. Requires power-of-two p.
func recdblAllgatherLayout(c comm.Comm, buf []byte, layout BlockLayout, tag comm.Tag) error {
	p := c.Size()
	if !isPow2(p) {
		return fmt.Errorf("%w: p=%d", ErrPow2Only, p)
	}
	r := c.Rank()
	rangeOf := func(base, count int) (lo, hi int) {
		lo, _ = layout(base)
		off, sz := layout(base + count - 1)
		return lo, off + sz
	}
	for mask := 1; mask < p; mask <<= 1 {
		partner := r ^ mask
		myBase := r &^ (mask - 1)
		paBase := partner &^ (mask - 1)
		mlo, mhi := rangeOf(myBase, mask)
		plo, phi := rangeOf(paBase, mask)
		if _, err := comm.SendRecv(c, partner, buf[mlo:mhi], partner, buf[plo:phi], tag); err != nil {
			return err
		}
	}
	return nil
}

// AllgatherRecDbl is the classic recursive-doubling allgather (Fig. 3 of
// the paper, eq. (4)): log2(p) pairwise exchange rounds with the exchanged
// data doubling every round. Power-of-two p only, as in MPICH.
func AllgatherRecDbl(c comm.Comm, sendbuf, recvbuf []byte) error {
	if err := checkAllgatherBufs(c, sendbuf, recvbuf); err != nil {
		return err
	}
	n := len(sendbuf)
	copy(recvbuf[c.Rank()*n:], sendbuf)
	if c.Size() == 1 {
		return nil
	}
	return recdblAllgatherLayout(c, recvbuf, UniformLayout(n), tagRecDbl)
}

// BcastRecDbl broadcasts via binomial scatter followed by a
// recursive-doubling allgather over fair blocks (the "scatter-allgather"
// bcast modeled by eq. (4)). Power-of-two p only.
func BcastRecDbl(c comm.Comm, buf []byte, root int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	p := c.Size()
	if p == 1 {
		return nil
	}
	if !isPow2(p) {
		return fmt.Errorf("%w: p=%d", ErrPow2Only, p)
	}
	if err := scatterFairForBcast(c, buf, root, 2); err != nil {
		return err
	}
	return recdblAllgatherLayout(c, buf, FairLayout(len(buf), p), tagRecDbl)
}

// foldPre performs the pre-phase of MPICH's non-power-of-two handling for
// reductions: with rem = p - p2 excess ranks, each even rank r < 2·rem
// sends its accumulator to r+1, which reduces it. Returns the caller's rank
// in the power-of-two subgroup, or -1 if the caller folded out and must
// wait for foldPost.
func foldPre(c comm.Comm, acc []byte, op datatype.Op, dt datatype.Type, p2 int) (newrank int, err error) {
	p := c.Size()
	r := c.Rank()
	rem := p - p2
	switch {
	case r < 2*rem && r%2 == 0:
		if err := c.Send(r+1, tagFold, acc); err != nil {
			return 0, err
		}
		return -1, nil
	case r < 2*rem:
		tmp := scratch.Get(len(acc))
		defer scratch.Put(tmp)
		if _, err := c.Recv(r-1, tagFold, tmp); err != nil {
			return 0, err
		}
		if err := reduceInto(c, op, dt, acc, tmp); err != nil {
			return 0, err
		}
		return r / 2, nil
	default:
		return r - rem, nil
	}
}

// foldReal maps a power-of-two-subgroup rank back to its absolute rank.
func foldReal(newrank, p, p2 int) int {
	rem := p - p2
	if newrank < rem {
		return newrank*2 + 1
	}
	return newrank + rem
}

// foldPost completes non-power-of-two handling: each odd rank r < 2·rem
// sends the final result back to r-1.
func foldPost(c comm.Comm, result []byte, p2 int) error {
	p := c.Size()
	r := c.Rank()
	rem := p - p2
	switch {
	case r < 2*rem && r%2 == 0:
		_, err := c.Recv(r+1, tagFold, result)
		return err
	case r < 2*rem:
		return c.Send(r-1, tagFold, result)
	default:
		return nil
	}
}

// AllreduceRecDbl is the classic recursive-doubling allreduce (eq. (4)):
// log2(p) rounds, each exchanging and reducing the full vector with a
// partner 2^i away. Non-power-of-two sizes fold excess ranks first, as in
// MPICH.
func AllreduceRecDbl(c comm.Comm, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type) error {
	if err := checkReduceBufs(sendbuf, recvbuf, dt); err != nil {
		return err
	}
	p := c.Size()
	copy(recvbuf, sendbuf)
	if p == 1 {
		return nil
	}
	p2 := 1 << ilog(2, p)
	newrank, err := foldPre(c, recvbuf, op, dt, p2)
	if err != nil {
		return err
	}
	if newrank >= 0 {
		tmp := scratch.Get(len(sendbuf))
		defer scratch.Put(tmp)
		for mask := 1; mask < p2; mask <<= 1 {
			partner := foldReal(newrank^mask, p, p2)
			if _, err := comm.SendRecv(c, partner, recvbuf, partner, tmp, tagRecDbl); err != nil {
				return err
			}
			if err := reduceInto(c, op, dt, recvbuf, tmp); err != nil {
				return err
			}
		}
	}
	return foldPost(c, recvbuf, p2)
}

// AllreduceRabenseifner is MPICH's large-message allreduce: a
// recursive-halving reduce-scatter followed by a recursive-doubling
// allgather (the "reduce-scatter-allgather" algorithm the paper's §VI-C2
// notes usually wins for large allreduce). Non-power-of-two sizes fold.
func AllreduceRabenseifner(c comm.Comm, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type) error {
	if err := checkReduceBufs(sendbuf, recvbuf, dt); err != nil {
		return err
	}
	p := c.Size()
	n := len(sendbuf)
	copy(recvbuf, sendbuf)
	if p == 1 {
		return nil
	}
	p2 := 1 << ilog(2, p)
	newrank, err := foldPre(c, recvbuf, op, dt, p2)
	if err != nil {
		return err
	}
	if newrank >= 0 {
		layout := FairLayoutAligned(n, p2, dt.Size())
		rangeOf := func(base, count int) (lo, hi int) {
			lo, _ = layout(base)
			off, sz := layout(base + count - 1)
			return lo, off + sz
		}
		// Recursive-halving reduce-scatter: each round keeps the half of
		// the active block range containing our own block and sends the
		// other half to the partner.
		lo, hi := 0, p2
		tmp := scratch.Get(n)
		defer scratch.Put(tmp)
		for mask := p2 / 2; mask >= 1; mask >>= 1 {
			partner := foldReal(newrank^mask, p, p2)
			mid := (lo + hi) / 2
			var keepLo, keepHi, sendLo, sendHi int
			if newrank&mask == 0 {
				keepLo, keepHi, sendLo, sendHi = lo, mid, mid, hi
			} else {
				keepLo, keepHi, sendLo, sendHi = mid, hi, lo, mid
			}
			sByteLo, sByteHi := rangeOf(sendLo, sendHi-sendLo)
			kByteLo, kByteHi := rangeOf(keepLo, keepHi-keepLo)
			if _, err := comm.SendRecv(c, partner, recvbuf[sByteLo:sByteHi], partner, tmp[kByteLo:kByteHi], tagRabens); err != nil {
				return err
			}
			if err := reduceInto(c, op, dt, recvbuf[kByteLo:kByteHi], tmp[kByteLo:kByteHi]); err != nil {
				return err
			}
			lo, hi = keepLo, keepHi
		}
		// Recursive-doubling allgather over the reduced blocks. Blocks are
		// keyed by newrank; exchanges translate newranks to real ranks.
		for mask := 1; mask < p2; mask <<= 1 {
			partner := foldReal(newrank^mask, p, p2)
			myBase := newrank &^ (mask - 1)
			paBase := (newrank ^ mask) &^ (mask - 1)
			mByteLo, mByteHi := rangeOf(myBase, mask)
			pByteLo, pByteHi := rangeOf(paBase, mask)
			if _, err := comm.SendRecv(c, partner, recvbuf[mByteLo:mByteHi], partner, recvbuf[pByteLo:pByteHi], tagRabens); err != nil {
				return err
			}
		}
	}
	return foldPost(c, recvbuf, p2)
}

// ReduceScatterRecHalving performs a recursive-halving reduce-scatter:
// every rank contributes the full vector sendbuf (length n) and receives
// the fully reduced fair block FairLayout(n, p)(rank) in recvbuf. Requires
// power-of-two p.
func ReduceScatterRecHalving(c comm.Comm, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type) error {
	p := c.Size()
	if !isPow2(p) {
		return fmt.Errorf("%w: p=%d", ErrPow2Only, p)
	}
	n := len(sendbuf)
	r := c.Rank()
	layout := FairLayoutAligned(n, p, dt.Size())
	off, sz := layout(r)
	if len(recvbuf) != sz {
		return fmt.Errorf("%w: reduce-scatter recvbuf=%d want %d", ErrBadBuffer, len(recvbuf), sz)
	}
	work := scratch.Get(n)
	defer scratch.Put(work)
	copy(work, sendbuf)
	if p == 1 {
		copy(recvbuf, work)
		return nil
	}
	rangeOf := func(base, count int) (lo, hi int) {
		lo, _ = layout(base)
		boff, bsz := layout(base + count - 1)
		return lo, boff + bsz
	}
	tmp := scratch.Get(n)
	defer scratch.Put(tmp)
	lo, hi := 0, p
	for mask := p / 2; mask >= 1; mask >>= 1 {
		partner := r ^ mask
		mid := (lo + hi) / 2
		var keepLo, keepHi, sendLo, sendHi int
		if r&mask == 0 {
			keepLo, keepHi, sendLo, sendHi = lo, mid, mid, hi
		} else {
			keepLo, keepHi, sendLo, sendHi = mid, hi, lo, mid
		}
		sLo, sHi := rangeOf(sendLo, sendHi-sendLo)
		kLo, kHi := rangeOf(keepLo, keepHi-keepLo)
		if _, err := comm.SendRecv(c, partner, work[sLo:sHi], partner, tmp[kLo:kHi], tagRabens); err != nil {
			return err
		}
		if err := reduceInto(c, op, dt, work[kLo:kHi], tmp[kLo:kHi]); err != nil {
			return err
		}
		lo, hi = keepLo, keepHi
	}
	copy(recvbuf, work[off:off+sz])
	return nil
}
