package core

import (
	"sort"

	scratch "exacoll/internal/buf"
	"exacoll/internal/comm"
	"exacoll/internal/datatype"
)

// Recursive multiplying (§IV) generalizes recursive doubling: in round i,
// every process exchanges data with the other f_i−1 members of its group,
// where groups of size f_i are spaced w_i = f_1·…·f_{i−1} apart. With
// p = k^m all factors equal k, reproducing the paper exactly (Fig. 4:
// p=9, k=3 completes in 2 rounds); for other sizes we use a mixed-radix
// factor schedule over the largest k-smooth p′ ≤ p and fold the p−p′
// remainder ranks in a pre/post phase — the "non-uniform group sizes"
// corner case §VI-A describes.

// LargestKSmooth returns the largest q ≤ p all of whose prime factors are
// ≤ k. Since every power of two is k-smooth for k ≥ 2, q > p/2.
func LargestKSmooth(p, k int) int {
	for q := p; ; q-- {
		if isKSmooth(q, k) {
			return q
		}
	}
}

func isKSmooth(q, k int) bool {
	if q < 1 {
		return false
	}
	for d := 2; d <= k && q > 1; d++ {
		for q%d == 0 {
			q /= d
		}
	}
	return q == 1
}

// FactorSchedule greedily factors the k-smooth number q into round factors,
// largest-first within each step: each round's group size is the largest
// divisor of the remaining quotient that is ≤ k.
func FactorSchedule(q, k int) []int {
	var factors []int
	for q > 1 {
		f := 1
		for d := minInt(k, q); d >= 2; d-- {
			if q%d == 0 {
				f = d
				break
			}
		}
		factors = append(factors, f)
		q /= f
	}
	return factors
}

// RecMulPlan chooses the round structure for recursive multiplying with
// radix k on p ranks: the largest p′ ≤ p of the form k^m·r (1 ≤ r ≤ k)
// so that every round except at most one uses groups of exactly k — the
// paper's round structure, with one non-uniform round (§VI-A's corner
// case) — and the p−p′ remainder ranks fold. If that form would fold more
// than half the ranks (impossible for k ≤ p, kept as a guard), it falls
// back to the largest k-smooth p′ with a greedy factorization.
func RecMulPlan(p, k int) (pPrime int, factors []int) {
	if p <= 1 {
		return p, nil
	}
	if k >= p {
		return p, []int{p}
	}
	bestQ, bestM, bestR := 0, 0, 0
	for m, km := 0, 1; km <= p; m, km = m+1, km*k {
		r := p / km
		if r > k {
			r = k
		}
		if q := km * r; q > bestQ {
			bestQ, bestM, bestR = q, m, r
		}
	}
	if 2*bestQ < p {
		q := LargestKSmooth(p, k)
		return q, FactorSchedule(q, k)
	}
	for i := 0; i < bestM; i++ {
		factors = append(factors, k)
	}
	if bestR >= 2 {
		factors = append(factors, bestR)
	}
	return bestQ, factors
}

// groupMembers returns the members of slot's exchange group in the given
// round (slots differing only in mixed-radix digit `round`), in ascending
// order. weights[i] is the spacing of round i.
func groupMembers(slot int, factors, weights []int, round int) []int {
	w := weights[round]
	f := factors[round]
	d := (slot / w) % f
	base := slot - d*w
	members := make([]int, f)
	for j := 0; j < f; j++ {
		members[j] = base + j*w
	}
	return members
}

// roundWeights returns the spacing of each round: w_i = f_1·…·f_{i-1}.
func roundWeights(factors []int) []int {
	weights := make([]int, len(factors))
	w := 1
	for i, f := range factors {
		weights[i] = w
		w *= f
	}
	return weights
}

// gatheredSlots returns, in ascending order, the slots whose contributions
// `slot` has accumulated after `rounds` completed rounds: all slots that
// agree with `slot` in every digit ≥ rounds.
func gatheredSlots(slot int, factors, weights []int, rounds int) []int {
	combos := []int{0}
	base := slot
	for i := 0; i < rounds; i++ {
		w, f := weights[i], factors[i]
		d := (slot / w) % f
		base -= d * w
		next := make([]int, 0, len(combos)*f)
		for j := 0; j < f; j++ {
			for _, v := range combos {
				next = append(next, v+j*w)
			}
		}
		combos = next
	}
	out := make([]int, len(combos))
	for i, v := range combos {
		out[i] = base + v
	}
	sort.Ints(out)
	return out
}

// AllreduceRecMul is the generalized recursive-multiplying allreduce
// (eq. (6)): log_k(p) rounds, each exchanging and reducing the full vector
// among k-member groups, leaning on multi-port NICs to overlap the k−1
// simultaneous messages per rank per round (§II-B2).
func AllreduceRecMul(c comm.Comm, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type, k int) error {
	if err := checkRadix(k); err != nil {
		return err
	}
	if err := checkReduceBufs(sendbuf, recvbuf, dt); err != nil {
		return err
	}
	p := c.Size()
	copy(recvbuf, sendbuf)
	if p == 1 {
		return nil
	}
	pPrime, factors := RecMulPlan(p, k)
	weights := roundWeights(factors)

	newrank, err := foldPre(c, recvbuf, op, dt, pPrime)
	if err != nil {
		return err
	}
	if newrank >= 0 {
		for round := range factors {
			members := groupMembers(newrank, factors, weights, round)
			// Snapshot the accumulator: Isend buffers must stay unmodified
			// until the sends complete, and we reduce into recvbuf below.
			outgoing := scratch.Get(len(recvbuf))
			copy(outgoing, recvbuf)
			incoming := make([][]byte, 0, len(members)-1)
			reqs := make([]comm.Request, 0, 2*(len(members)-1))
			for _, m := range members {
				if m == newrank {
					continue
				}
				buf := scratch.Get(len(recvbuf))
				incoming = append(incoming, buf)
				req, err := c.Irecv(foldReal(m, p, pPrime), tagRecMul, buf)
				if err != nil {
					return err // earlier ops still target scratch: leak
				}
				reqs = append(reqs, req)
			}
			for _, m := range members {
				if m == newrank {
					continue
				}
				req, err := c.Isend(foldReal(m, p, pPrime), tagRecMul, outgoing)
				if err != nil {
					return err // earlier ops still target scratch: leak
				}
				reqs = append(reqs, req)
			}
			// WaitAll settles every request even on error, so all scratch
			// is quiescent from here on.
			err := comm.WaitAll(reqs...)
			if err == nil {
				for _, buf := range incoming {
					if err = reduceInto(c, op, dt, recvbuf, buf); err != nil {
						break
					}
				}
			}
			scratch.Put(outgoing)
			for _, buf := range incoming {
				scratch.Put(buf)
			}
			if err != nil {
				return err
			}
		}
	}
	return foldPost(c, recvbuf, pPrime)
}

// initialSlotBlocks returns the block ids (absolute ranks) that slot
// carries at the start of the multiplying rounds, accounting for folded
// ranks: slots below rem proxy for one folded rank each.
func initialSlotBlocks(slot, p, pPrime int) []int {
	rem := p - pPrime
	if slot < rem {
		return []int{2 * slot, 2*slot + 1}
	}
	return []int{slot + rem}
}

// slotOwnedBlocks returns, ascending, the block ids slot owns after
// `rounds` completed rounds.
func slotOwnedBlocks(slot int, factors, weights []int, rounds, p, pPrime int) []int {
	var out []int
	for _, s := range gatheredSlots(slot, factors, weights, rounds) {
		out = append(out, initialSlotBlocks(s, p, pPrime)...)
	}
	sort.Ints(out)
	return out
}

// recmulAllgatherLayout runs the recursive-multiplying allgather over
// blocks keyed by absolute rank under the given layout. Each rank must
// already hold its own block in buf at layout(rank); on success buf holds
// every block. Handles arbitrary p by folding onto the largest k-smooth
// p′ ≤ p.
func recmulAllgatherLayout(c comm.Comm, buf []byte, layout BlockLayout, k int, tag comm.Tag) error {
	p := c.Size()
	r := c.Rank()
	if p == 1 {
		return nil
	}
	pPrime, factors := RecMulPlan(p, k)
	weights := roundWeights(factors)
	rem := p - pPrime

	// Fold pre-phase: even ranks below 2·rem hand their block to the next
	// (odd) rank, which acts as their proxy slot.
	newrank := -1
	switch {
	case r < 2*rem && r%2 == 0:
		off, sz := layout(r)
		if err := c.Send(r+1, tagFold, buf[off:off+sz]); err != nil {
			return err
		}
	case r < 2*rem:
		off, sz := layout(r - 1)
		if _, err := c.Recv(r-1, tagFold, buf[off:off+sz]); err != nil {
			return err
		}
		newrank = r / 2
	default:
		newrank = r - rem
	}

	if newrank >= 0 {
		for round := range factors {
			members := groupMembers(newrank, factors, weights, round)
			myBlocks := slotOwnedBlocks(newrank, factors, weights, round, p, pPrime)
			outgoing := packBlocks(buf, myBlocks, layout)
			type rx struct {
				blocks  []int
				staging []byte
			}
			rxs := make([]rx, 0, len(members)-1)
			reqs := make([]comm.Request, 0, 2*(len(members)-1))
			for _, m := range members {
				if m == newrank {
					continue
				}
				blocks := slotOwnedBlocks(m, factors, weights, round, p, pPrime)
				size := 0
				for _, b := range blocks {
					_, sz := layout(b)
					size += sz
				}
				staging := scratch.Get(size)
				rxs = append(rxs, rx{blocks: blocks, staging: staging})
				req, err := c.Irecv(foldReal(m, p, pPrime), tag, staging)
				if err != nil {
					return err // earlier ops still target scratch: leak
				}
				reqs = append(reqs, req)
			}
			for _, m := range members {
				if m == newrank {
					continue
				}
				req, err := c.Isend(foldReal(m, p, pPrime), tag, outgoing)
				if err != nil {
					return err // earlier ops still target scratch: leak
				}
				reqs = append(reqs, req)
			}
			// WaitAll settles every request even on error, so all scratch
			// is quiescent from here on.
			err := comm.WaitAll(reqs...)
			if err == nil {
				for _, x := range rxs {
					if err = unpackBlocks(x.staging, buf, x.blocks, layout, nil); err != nil {
						break
					}
				}
			}
			scratch.Put(outgoing)
			for _, x := range rxs {
				scratch.Put(x.staging)
			}
			if err != nil {
				return err
			}
		}
	}

	// Fold post-phase: proxies return the complete result.
	switch {
	case r < 2*rem && r%2 == 0:
		_, err := c.Recv(r+1, tagFold, buf)
		return err
	case r < 2*rem:
		return c.Send(r-1, tagFold, buf)
	}
	return nil
}

// AllgatherRecMul is the generalized recursive-multiplying allgather
// (Fig. 4, eq. (6)): the gathered data multiplies by the group size every
// round, completing in log_k(p) rounds.
func AllgatherRecMul(c comm.Comm, sendbuf, recvbuf []byte, k int) error {
	if err := checkRadix(k); err != nil {
		return err
	}
	if err := checkAllgatherBufs(c, sendbuf, recvbuf); err != nil {
		return err
	}
	n := len(sendbuf)
	copy(recvbuf[c.Rank()*n:], sendbuf)
	return recmulAllgatherLayout(c, recvbuf, UniformLayout(n), k, tagRecMul)
}

// BcastRecMul broadcasts via a radix-k tree scatter followed by a
// recursive-multiplying allgather over fair blocks — the generalized
// scatter-allgather bcast, the paper's longest MPICH integration because of
// its multi-phase structure (§VI-A).
func BcastRecMul(c comm.Comm, buf []byte, root, k int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	if err := checkRadix(k); err != nil {
		return err
	}
	p := c.Size()
	if p == 1 {
		return nil
	}
	if err := scatterFairForBcast(c, buf, root, k); err != nil {
		return err
	}
	return recmulAllgatherLayout(c, buf, FairLayout(len(buf), p), k, tagRecMul)
}
