package core

import (
	"fmt"

	"exacoll/internal/comm"
	"exacoll/internal/datatype"
)

// AllreduceHierarchical is the two-level hierarchical allreduce of Hasanov
// et al. (the paper's reference [17], which inspired the k-ring
// generalization): ranks are split into contiguous groups of `group`
// (normally the node's PPN); each group reduces to its leader over the
// fast intranode links, leaders run a recursive-doubling allreduce across
// nodes, and each leader broadcasts the result back into its group. With
// group=1 it degenerates to the flat recursive-doubling allreduce.
func AllreduceHierarchical(c comm.Comm, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type, group int) error {
	if group < 1 {
		return fmt.Errorf("%w: hierarchical group %d", ErrBadRadix, group)
	}
	if err := checkReduceBufs(sendbuf, recvbuf, dt); err != nil {
		return err
	}
	p := c.Size()
	me := c.Rank()
	if group > p {
		group = p
	}
	base := (me / group) * group
	size := minInt(group, p-base)

	if size == 1 {
		// Singleton group: the rank is its own leader.
		copy(recvbuf, sendbuf)
	} else {
		members := make([]int, size)
		for i := range members {
			members[i] = base + i
		}
		sub, err := comm.NewSub(c, members)
		if err != nil {
			return err
		}
		// Phase 1: intra-group reduce to the leader (sub-rank 0).
		if err := ReduceKnomial(sub, sendbuf, recvbuf, op, dt, 0, 2); err != nil {
			return err
		}
	}

	// Phase 2: leaders allreduce across groups.
	if me == base {
		g := (p + group - 1) / group
		leaders := make([]int, g)
		for i := range leaders {
			leaders[i] = i * group
		}
		lsub, err := comm.NewSub(c, leaders)
		if err != nil {
			return err
		}
		if g > 1 {
			tmp := make([]byte, len(recvbuf))
			copy(tmp, recvbuf)
			if err := AllreduceRecDbl(lsub, tmp, recvbuf, op, dt); err != nil {
				return err
			}
		}
	}

	// Phase 3: leaders broadcast into their groups.
	if size > 1 {
		members := make([]int, size)
		for i := range members {
			members[i] = base + i
		}
		sub, err := comm.NewSub(c, members)
		if err != nil {
			return err
		}
		return BcastKnomial(sub, recvbuf, 0, 2)
	}
	return nil
}
