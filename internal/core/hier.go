package core

import (
	"fmt"

	scratch "exacoll/internal/buf"
	"exacoll/internal/comm"
	"exacoll/internal/datatype"
)

// AllreduceHierarchical is the two-level hierarchical allreduce of Hasanov
// et al. (the paper's reference [17], which inspired the k-ring
// generalization): ranks are split into contiguous groups of `group`
// (normally the node's PPN); each group reduces to its leader over the
// fast intranode links, leaders run a recursive-doubling allreduce across
// nodes, and each leader broadcasts the result back into its group. With
// group=1 it degenerates to the flat recursive-doubling allreduce.
//
// Both tiers run at radix 2, the paper's baseline shape; use
// AllreduceHierarchicalRadix to tune the tiers independently, or
// internal/topo for full per-level algorithm selection.
func AllreduceHierarchical(c comm.Comm, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type, group int) error {
	return AllreduceHierarchicalRadix(c, sendbuf, recvbuf, op, dt, group, 2, 2)
}

// AllreduceHierarchicalRadix is AllreduceHierarchical with per-phase
// radices: intraK is the k-nomial radix of the intra-group reduce and
// broadcast phases, and interK the recursive-multiplying radix of the
// leader phase (interK=2 selects the recursive-doubling baseline, which
// also handles non-power-of-two leader counts).
func AllreduceHierarchicalRadix(c comm.Comm, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type, group, intraK, interK int) error {
	if group < 1 {
		return fmt.Errorf("%w: hierarchical group %d", ErrBadRadix, group)
	}
	if intraK < 2 || interK < 2 {
		return fmt.Errorf("%w: hierarchical radices intra=%d inter=%d", ErrBadRadix, intraK, interK)
	}
	if err := checkReduceBufs(sendbuf, recvbuf, dt); err != nil {
		return err
	}
	p := c.Size()
	me := c.Rank()
	if group > p {
		group = p
	}
	base := (me / group) * group
	size := minInt(group, p-base)

	if size == 1 {
		// Singleton group: the rank is its own leader.
		copy(recvbuf, sendbuf)
	} else {
		members := make([]int, size)
		for i := range members {
			members[i] = base + i
		}
		sub, err := comm.NewSub(c, members)
		if err != nil {
			return err
		}
		// Phase 1: intra-group reduce to the leader (sub-rank 0).
		if err := ReduceKnomial(sub, sendbuf, recvbuf, op, dt, 0, intraK); err != nil {
			return err
		}
	}

	// Phase 2: leaders allreduce across groups.
	if me == base {
		g := (p + group - 1) / group
		leaders := make([]int, g)
		for i := range leaders {
			leaders[i] = i * group
		}
		lsub, err := comm.NewSub(c, leaders)
		if err != nil {
			return err
		}
		if g > 1 {
			// tmp is only the allreduce's sendbuf (read once at entry,
			// never a communication target): safe to recycle on any exit.
			tmp := scratch.Get(len(recvbuf))
			defer scratch.Put(tmp)
			copy(tmp, recvbuf)
			if interK == 2 {
				// Radix 2 keeps the recursive-doubling baseline (which
				// folds non-power-of-two leader counts itself).
				if err := AllreduceRecDbl(lsub, tmp, recvbuf, op, dt); err != nil {
					return err
				}
			} else if err := AllreduceRecMul(lsub, tmp, recvbuf, op, dt, interK); err != nil {
				return err
			}
		}
	}

	// Phase 3: leaders broadcast into their groups.
	if size > 1 {
		members := make([]int, size)
		for i := range members {
			members[i] = base + i
		}
		sub, err := comm.NewSub(c, members)
		if err != nil {
			return err
		}
		return BcastKnomial(sub, recvbuf, 0, intraK)
	}
	return nil
}
