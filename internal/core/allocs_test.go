package core

import (
	"testing"

	scratch "exacoll/internal/buf"
	"exacoll/internal/comm"
	"exacoll/internal/datatype"
	"exacoll/internal/transport/mem"
)

// Lockstep harness: p persistent rank goroutines; each iteration dispatches
// one closure per rank and joins, so per-iteration allocations are the
// collective's own (no goroutine spawns or world setup in the measured
// region).

type lockstepWorld struct {
	w    *mem.World
	work []chan func(c comm.Comm) error
	done chan error
}

func newLockstep(p int) *lockstepWorld {
	lw := &lockstepWorld{
		w:    mem.NewWorld(p),
		work: make([]chan func(c comm.Comm) error, p),
		done: make(chan error, p),
	}
	for r := 0; r < p; r++ {
		lw.work[r] = make(chan func(c comm.Comm) error)
		go func(r int) {
			c := lw.w.Comm(r)
			for fn := range lw.work[r] {
				lw.done <- fn(c)
			}
		}(r)
	}
	return lw
}

func (lw *lockstepWorld) run(fns []func(c comm.Comm) error) error {
	for r := range lw.work {
		lw.work[r] <- fns[r]
	}
	var first error
	for range lw.work {
		if err := <-lw.done; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// measureAllocs reports the average allocations of one whole-communicator
// collective iteration, after a warmup that fills the scratch pool's
// freelists and the transports' request caches.
func measureAllocs(t *testing.T, lw *lockstepWorld, fns []func(c comm.Comm) error) float64 {
	t.Helper()
	for i := 0; i < 10; i++ {
		if err := lw.run(fns); err != nil {
			t.Fatal(err)
		}
	}
	return testing.AllocsPerRun(50, func() {
		if err := lw.run(fns); err != nil {
			t.Fatal(err)
		}
	})
}

// skipIfPoisoning skips allocation pinning under the race detector: the
// pool poisons buffers there and AllocsPerRun is unreliable anyway.
func skipIfPoisoning(t *testing.T) {
	t.Helper()
	if scratch.Poisoning {
		t.Skip("scratch-pool poisoning active (race build): allocation counts not meaningful")
	}
}

// TestAllreduceSmallAllocs pins the steady-state allocation count of a
// small (4 KiB, p=8) allreduce on the mem transport. Before the
// scratch-pool work the recursive-doubling path allocated 164 times per
// call; pooled staging plus the transport's request freelists bring it to
// zero. The per-variant bounds pin what remains: the ring's bound is its
// per-call RingSchedule construction, recursive multiplying's is its
// per-round group bookkeeping — payload staging allocates in neither.
// Bounds leave a little slack so an incidental runtime allocation does
// not flake while still catching any regression of the pooling
// discipline.
func TestAllreduceSmallAllocs(t *testing.T) {
	skipIfPoisoning(t)
	const p, n = 8, 4 << 10
	for _, tc := range []struct {
		name  string
		bound float64
		run   func(c comm.Comm, sb, rb []byte) error
	}{
		{"recdbl", 8, func(c comm.Comm, sb, rb []byte) error {
			return AllreduceRecDbl(c, sb, rb, datatype.Sum, datatype.Float64)
		}},
		{"ring", 1400, func(c comm.Comm, sb, rb []byte) error {
			return AllreduceRing(c, sb, rb, datatype.Sum, datatype.Float64)
		}},
		{"recmul_k4", 160, func(c comm.Comm, sb, rb []byte) error {
			return AllreduceRecMul(c, sb, rb, datatype.Sum, datatype.Float64, 4)
		}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			lw := newLockstep(p)
			fns := make([]func(c comm.Comm) error, p)
			for r := 0; r < p; r++ {
				sb := make([]byte, n)
				rb := make([]byte, n)
				fns[r] = func(c comm.Comm) error { return tc.run(c, sb, rb) }
			}
			if avg := measureAllocs(t, lw, fns); avg > tc.bound {
				t.Errorf("allreduce %s: %.1f allocs per collective, want <= %.0f", tc.name, avg, tc.bound)
			}
		})
	}
}

// TestBcastSmallAllocs pins the steady-state allocation count of a small
// (4 KiB, p=8) bcast on the mem transport at zero: 59 allocations per
// call before the pooling work, 11 with pooled payloads (tree and
// request slices), 0 now that the tree scratch is stack-backed
// (AppendChildren into a fixed array) and requests ride the transport's
// caches.
func TestBcastSmallAllocs(t *testing.T) {
	skipIfPoisoning(t)
	const p, n = 8, 4 << 10
	lw := newLockstep(p)
	fns := make([]func(c comm.Comm) error, p)
	for r := 0; r < p; r++ {
		buf := make([]byte, n)
		fns[r] = func(c comm.Comm) error { return BcastKnomial(c, buf, 0, 2) }
	}
	if avg := measureAllocs(t, lw, fns); avg > 0 {
		t.Errorf("bcast: %.1f allocs per collective, want 0", avg)
	}
}

// TestSegmentedAllocsBounded checks that the segmented large-message path
// recycles its staging bytes: steady-state allocations stay at roughly one
// small request object per posted receive (the mem transport hands Irecv
// requests to the caller, so they cannot be recycled), with no per-segment
// payload allocations on top. With p=4 and 256 segments each rank posts
// 6x256 receives, so the all-rank bound of 7000 is ~1.1 objects per
// receive; unpooled staging would add 4x256x1 KiB buffer allocations and
// was measured well above this bound.
func TestSegmentedAllocsBounded(t *testing.T) {
	skipIfPoisoning(t)
	const p = 4
	const n = 1 << 20 // 256 segments of 4 KiB
	const seg = 4 << 10
	lw := newLockstep(p)
	fns := make([]func(c comm.Comm) error, p)
	for r := 0; r < p; r++ {
		sb := make([]byte, n)
		rb := make([]byte, n)
		fns[r] = func(c comm.Comm) error {
			return AllreduceRingPipelined(c, sb, rb, datatype.Sum, datatype.Float64, seg)
		}
	}
	if avg := measureAllocs(t, lw, fns); avg > 7000 {
		t.Errorf("pipelined allreduce: %.1f allocs per collective, want <= 7000", avg)
	}
}
