package core

import (
	"fmt"
	"sort"

	"exacoll/internal/comm"
	"exacoll/internal/datatype"
)

// CollOp identifies a collective operation.
type CollOp int

// The collective operations covered by the paper (Table I) plus the
// reduce-scatter building block and the vector ("v") variants.
const (
	OpBcast CollOp = iota
	OpReduce
	OpGather
	OpScatter
	OpAllgather
	OpAllreduce
	OpReduceScatter
	OpAlltoall
	OpScan
	OpAllgatherv
	OpReduceScatterv
	OpAlltoallv
)

// String returns the MPI-style name of the operation.
func (o CollOp) String() string {
	switch o {
	case OpBcast:
		return "MPI_Bcast"
	case OpReduce:
		return "MPI_Reduce"
	case OpGather:
		return "MPI_Gather"
	case OpScatter:
		return "MPI_Scatter"
	case OpAllgather:
		return "MPI_Allgather"
	case OpAllreduce:
		return "MPI_Allreduce"
	case OpReduceScatter:
		return "MPI_Reduce_scatter"
	case OpAlltoall:
		return "MPI_Alltoall"
	case OpScan:
		return "MPI_Scan"
	case OpAllgatherv:
		return "MPI_Allgatherv"
	case OpReduceScatterv:
		return "MPI_Reduce_scatterv"
	case OpAlltoallv:
		return "MPI_Alltoallv"
	default:
		return fmt.Sprintf("CollOp(%d)", int(o))
	}
}

// Kernel identifies the communication pattern family (Table I rows).
type Kernel int

// Communication kernels.
const (
	KernelLinear Kernel = iota
	KernelBinomial
	KernelKnomial
	KernelRecDbl
	KernelRecMul
	KernelRing
	KernelKRing
	KernelBruck
	KernelRabenseifner
	KernelHierarchical
)

// String returns the kernel name.
func (k Kernel) String() string {
	switch k {
	case KernelLinear:
		return "linear"
	case KernelBinomial:
		return "binomial"
	case KernelKnomial:
		return "k-nomial"
	case KernelRecDbl:
		return "recursive-doubling"
	case KernelRecMul:
		return "recursive-multiplying"
	case KernelRing:
		return "ring"
	case KernelKRing:
		return "k-ring"
	case KernelBruck:
		return "bruck"
	case KernelRabenseifner:
		return "reduce-scatter-allgather"
	case KernelHierarchical:
		return "hierarchical"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// Args is the uniform argument bundle for invoking any algorithm through
// the registry. Rooted collectives use Root; generalized algorithms use K.
type Args struct {
	// SendBuf is the caller's contribution (reductions, gather,
	// allgather); for bcast it is the in/out payload buffer.
	SendBuf []byte
	// RecvBuf is the result buffer (ignored where not applicable).
	RecvBuf []byte
	// Op and Type configure reductions.
	Op   datatype.Op
	Type datatype.Type
	// Root is the root rank for rooted collectives.
	Root int
	// Counts carries the shared per-rank byte counts of the vector ("v")
	// collectives: p entries for allgatherv (bytes contributed by each
	// rank) and reduce-scatterv (bytes received by each rank), p×p
	// row-major entries for alltoallv (Counts[i*p+j] = bytes rank i sends
	// rank j). Every rank must pass identical Counts — selection and
	// message sizing both derive from it.
	Counts []int
	// K is the radix/group-size parameter of generalized algorithms.
	K int
	// SegSize is the pipeline segment size in bytes for segmented
	// algorithms: > 0 uses the given size, 0 derives one (from the
	// substrate's cost model when it exposes model.MachineLike,
	// DefaultSegSize otherwise), < 0 is an error. Non-segmented
	// algorithms ignore it.
	SegSize int
}

// Algorithm is one registry entry: a named collective implementation with
// metadata (Table I) and a uniform Run adapter.
type Algorithm struct {
	// Name is the unique identifier, e.g. "allreduce_recmul".
	Name string
	// Op is the collective operation implemented.
	Op CollOp
	// Kernel is the communication pattern family.
	Kernel Kernel
	// Generalized reports whether the algorithm exposes the radix K.
	Generalized bool
	// TableI marks the paper's 10 generalized algorithms (Table I).
	// Extensions like the hierarchical allreduce and the pipelined bcast
	// are Generalized but not TableI.
	TableI bool
	// Baseline names the fixed-radix algorithm this generalizes ("" for
	// baselines themselves).
	Baseline string
	// DefaultK is the radix at which the generalized algorithm matches its
	// baseline (2 for k-nomial and recursive multiplying, 1 for k-ring).
	DefaultK int
	// Pow2Only restricts the algorithm to power-of-two sizes (as MPICH's
	// recursive-doubling allgather is).
	Pow2Only bool
	// Run invokes the algorithm.
	Run func(c comm.Comm, a Args) error
}

// registry holds all algorithms keyed by name.
var registry = map[string]*Algorithm{}

func register(a *Algorithm) {
	if _, dup := registry[a.Name]; dup {
		panic("core: duplicate algorithm " + a.Name)
	}
	registry[a.Name] = a
}

// Lookup returns the named algorithm.
func Lookup(name string) (*Algorithm, error) {
	a, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown algorithm %q", name)
	}
	return a, nil
}

// Algorithms returns all registered algorithms sorted by name. If op >= 0,
// only algorithms for that operation are returned.
func Algorithms(op CollOp) []*Algorithm {
	var out []*Algorithm
	for _, a := range registry {
		if op < 0 || a.Op == op {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// GeneralizedAlgorithms returns every algorithm exposing a tunable radix,
// sorted by name (the paper's 10 plus the extensions).
func GeneralizedAlgorithms() []*Algorithm {
	var out []*Algorithm
	for _, a := range registry {
		if a.Generalized {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TableIAlgorithms returns exactly the paper's 10 generalized algorithms
// (Table I), sorted by name.
func TableIAlgorithms() []*Algorithm {
	var out []*Algorithm
	for _, a := range registry {
		if a.TableI {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func init() {
	// --- Generalized algorithms: the 10 of Table I. ---
	register(&Algorithm{
		Name: "bcast_knomial", Op: OpBcast, Kernel: KernelKnomial,
		Generalized: true, TableI: true, Baseline: "bcast_binomial", DefaultK: 2,
		Run: func(c comm.Comm, a Args) error { return BcastKnomial(c, a.SendBuf, a.Root, a.K) },
	})
	register(&Algorithm{
		Name: "reduce_knomial", Op: OpReduce, Kernel: KernelKnomial,
		Generalized: true, TableI: true, Baseline: "reduce_binomial", DefaultK: 2,
		Run: func(c comm.Comm, a Args) error {
			return ReduceKnomial(c, a.SendBuf, a.RecvBuf, a.Op, a.Type, a.Root, a.K)
		},
	})
	register(&Algorithm{
		Name: "allgather_knomial", Op: OpAllgather, Kernel: KernelKnomial,
		Generalized: true, TableI: true, Baseline: "allgather_recdbl", DefaultK: 2,
		Run: func(c comm.Comm, a Args) error { return AllgatherKnomial(c, a.SendBuf, a.RecvBuf, a.K) },
	})
	register(&Algorithm{
		Name: "allreduce_knomial", Op: OpAllreduce, Kernel: KernelKnomial,
		Generalized: true, TableI: true, Baseline: "allreduce_recdbl", DefaultK: 2,
		Run: func(c comm.Comm, a Args) error {
			return AllreduceKnomial(c, a.SendBuf, a.RecvBuf, a.Op, a.Type, a.K)
		},
	})
	register(&Algorithm{
		Name: "bcast_recmul", Op: OpBcast, Kernel: KernelRecMul,
		Generalized: true, TableI: true, Baseline: "bcast_recdbl", DefaultK: 2,
		Run: func(c comm.Comm, a Args) error { return BcastRecMul(c, a.SendBuf, a.Root, a.K) },
	})
	register(&Algorithm{
		Name: "allgather_recmul", Op: OpAllgather, Kernel: KernelRecMul,
		Generalized: true, TableI: true, Baseline: "allgather_recdbl", DefaultK: 2,
		Run: func(c comm.Comm, a Args) error { return AllgatherRecMul(c, a.SendBuf, a.RecvBuf, a.K) },
	})
	register(&Algorithm{
		Name: "allreduce_recmul", Op: OpAllreduce, Kernel: KernelRecMul,
		Generalized: true, TableI: true, Baseline: "allreduce_recdbl", DefaultK: 2,
		Run: func(c comm.Comm, a Args) error {
			return AllreduceRecMul(c, a.SendBuf, a.RecvBuf, a.Op, a.Type, a.K)
		},
	})
	register(&Algorithm{
		Name: "bcast_kring", Op: OpBcast, Kernel: KernelKRing,
		Generalized: true, TableI: true, Baseline: "bcast_ring", DefaultK: 1,
		Run: func(c comm.Comm, a Args) error { return BcastKRing(c, a.SendBuf, a.Root, a.K) },
	})
	register(&Algorithm{
		Name: "allgather_kring", Op: OpAllgather, Kernel: KernelKRing,
		Generalized: true, TableI: true, Baseline: "allgather_ring", DefaultK: 1,
		Run: func(c comm.Comm, a Args) error { return AllgatherKRing(c, a.SendBuf, a.RecvBuf, a.K) },
	})
	register(&Algorithm{
		Name: "allreduce_kring", Op: OpAllreduce, Kernel: KernelKRing,
		Generalized: true, TableI: true, Baseline: "allreduce_ring", DefaultK: 1,
		Run: func(c comm.Comm, a Args) error {
			return AllreduceKRing(c, a.SendBuf, a.RecvBuf, a.Op, a.Type, a.K)
		},
	})
	register(&Algorithm{
		Name: "gather_knomial", Op: OpGather, Kernel: KernelKnomial,
		Generalized: true, Baseline: "gather_binomial", DefaultK: 2,
		Run: func(c comm.Comm, a Args) error {
			return GatherKnomial(c, a.SendBuf, a.RecvBuf, a.Root, a.K)
		},
	})
	register(&Algorithm{
		Name: "scatter_knomial", Op: OpScatter, Kernel: KernelKnomial,
		Generalized: true, Baseline: "scatter_binomial", DefaultK: 2,
		Run: func(c comm.Comm, a Args) error {
			return ScatterKnomial(c, a.SendBuf, a.RecvBuf, a.Root, a.K)
		},
	})

	// --- Fixed-radix baselines. ---
	register(&Algorithm{
		Name: "bcast_binomial", Op: OpBcast, Kernel: KernelBinomial,
		Run: func(c comm.Comm, a Args) error { return BcastBinomial(c, a.SendBuf, a.Root) },
	})
	register(&Algorithm{
		Name: "reduce_binomial", Op: OpReduce, Kernel: KernelBinomial,
		Run: func(c comm.Comm, a Args) error {
			return ReduceBinomial(c, a.SendBuf, a.RecvBuf, a.Op, a.Type, a.Root)
		},
	})
	register(&Algorithm{
		Name: "gather_binomial", Op: OpGather, Kernel: KernelBinomial,
		Run: func(c comm.Comm, a Args) error {
			return GatherBinomial(c, a.SendBuf, a.RecvBuf, a.Root)
		},
	})
	register(&Algorithm{
		Name: "scatter_binomial", Op: OpScatter, Kernel: KernelBinomial,
		Run: func(c comm.Comm, a Args) error {
			return ScatterBinomial(c, a.SendBuf, a.RecvBuf, a.Root)
		},
	})
	register(&Algorithm{
		Name: "bcast_recdbl", Op: OpBcast, Kernel: KernelRecDbl, Pow2Only: true,
		Run: func(c comm.Comm, a Args) error { return BcastRecDbl(c, a.SendBuf, a.Root) },
	})
	register(&Algorithm{
		Name: "allgather_recdbl", Op: OpAllgather, Kernel: KernelRecDbl, Pow2Only: true,
		Run: func(c comm.Comm, a Args) error { return AllgatherRecDbl(c, a.SendBuf, a.RecvBuf) },
	})
	register(&Algorithm{
		Name: "allreduce_recdbl", Op: OpAllreduce, Kernel: KernelRecDbl,
		Run: func(c comm.Comm, a Args) error {
			return AllreduceRecDbl(c, a.SendBuf, a.RecvBuf, a.Op, a.Type)
		},
	})
	register(&Algorithm{
		Name: "bcast_ring", Op: OpBcast, Kernel: KernelRing,
		Run: func(c comm.Comm, a Args) error { return BcastRing(c, a.SendBuf, a.Root) },
	})
	register(&Algorithm{
		Name: "allgather_ring", Op: OpAllgather, Kernel: KernelRing,
		Run: func(c comm.Comm, a Args) error { return AllgatherRing(c, a.SendBuf, a.RecvBuf) },
	})
	register(&Algorithm{
		Name: "allreduce_ring", Op: OpAllreduce, Kernel: KernelRing,
		Run: func(c comm.Comm, a Args) error {
			return AllreduceRing(c, a.SendBuf, a.RecvBuf, a.Op, a.Type)
		},
	})
	register(&Algorithm{
		Name: "allreduce_rabenseifner", Op: OpAllreduce, Kernel: KernelRabenseifner,
		Run: func(c comm.Comm, a Args) error {
			return AllreduceRabenseifner(c, a.SendBuf, a.RecvBuf, a.Op, a.Type)
		},
	})
	register(&Algorithm{
		Name: "allgather_bruck", Op: OpAllgather, Kernel: KernelBruck,
		Run: func(c comm.Comm, a Args) error { return AllgatherBruck(c, a.SendBuf, a.RecvBuf) },
	})
	register(&Algorithm{
		Name: "reducescatter_ring", Op: OpReduceScatter, Kernel: KernelRing,
		Run: func(c comm.Comm, a Args) error {
			return ReduceScatterRing(c, a.SendBuf, a.RecvBuf, a.Op, a.Type)
		},
	})
	register(&Algorithm{
		Name: "reducescatter_rechalving", Op: OpReduceScatter, Kernel: KernelRecDbl, Pow2Only: true,
		Run: func(c comm.Comm, a Args) error {
			return ReduceScatterRecHalving(c, a.SendBuf, a.RecvBuf, a.Op, a.Type)
		},
	})
	register(&Algorithm{
		Name: "reducescatter_kring", Op: OpReduceScatter, Kernel: KernelKRing,
		Generalized: true, Baseline: "reducescatter_ring", DefaultK: 1,
		Run: func(c comm.Comm, a Args) error {
			return ReduceScatterKRing(c, a.SendBuf, a.RecvBuf, a.Op, a.Type, a.K)
		},
	})
	register(&Algorithm{
		Name: "allreduce_hier", Op: OpAllreduce, Kernel: KernelHierarchical,
		Generalized: true, Baseline: "allreduce_recdbl", DefaultK: 1,
		Run: func(c comm.Comm, a Args) error {
			return AllreduceHierarchical(c, a.SendBuf, a.RecvBuf, a.Op, a.Type, a.K)
		},
	})
	register(&Algorithm{
		// Pipelined k-nomial bcast (the MPICH/Open MPI segmenting
		// refinement); segment size from Args.SegSize or the cost model.
		Name: "bcast_knomial_pipelined", Op: OpBcast, Kernel: KernelKnomial,
		Generalized: true, Baseline: "bcast_binomial", DefaultK: 2,
		Run: func(c comm.Comm, a Args) error {
			depth := KnomialDepth(c.Size(), a.K)
			seg, err := SegSizeFor(c, len(a.SendBuf), depth, a.SegSize)
			if err != nil {
				return err
			}
			return BcastKnomialSegmented(c, a.SendBuf, a.Root, a.K, seg)
		},
	})
	register(&Algorithm{
		// Pipelined k-nomial reduce: the segmented bcast's mirror image,
		// combining child segments in ReduceKnomial's order.
		Name: "reduce_knomial_segmented", Op: OpReduce, Kernel: KernelKnomial,
		Generalized: true, Baseline: "reduce_binomial", DefaultK: 2,
		Run: func(c comm.Comm, a Args) error {
			depth := KnomialDepth(c.Size(), a.K)
			seg, err := SegSizeFor(c, len(a.SendBuf), depth, a.SegSize)
			if err != nil {
				return err
			}
			return ReduceKnomialSegmented(c, a.SendBuf, a.RecvBuf, a.Op, a.Type, a.Root, a.K, seg)
		},
	})
	register(&Algorithm{
		// Segmented ring allreduce: reduce-scatter + allgather rounds
		// software-pipelined across segments.
		Name: "allreduce_ring_pipelined", Op: OpAllreduce, Kernel: KernelRing,
		Run: func(c comm.Comm, a Args) error {
			depth := 2 * (c.Size() - 1)
			seg, err := SegSizeFor(c, len(a.SendBuf), depth, a.SegSize)
			if err != nil {
				return err
			}
			return AllreduceRingPipelined(c, a.SendBuf, a.RecvBuf, a.Op, a.Type, seg)
		},
	})
	// --- Vector ("v") collectives. Counts carries the shared per-rank
	// byte counts (see Args.Counts); alltoallv takes the full matrix. The
	// Kolmakov–Zhang allreduce is Generalized but not TableI: it extends
	// the family past the paper's ten.
	register(&Algorithm{
		Name: "allgatherv_ring", Op: OpAllgatherv, Kernel: KernelRing,
		Run: func(c comm.Comm, a Args) error {
			return AllgathervRing(c, a.SendBuf, a.Counts, a.RecvBuf)
		},
	})
	register(&Algorithm{
		Name: "allgatherv_knomial_bruck", Op: OpAllgatherv, Kernel: KernelBruck,
		Generalized: true, Baseline: "allgatherv_ring", DefaultK: 2,
		Run: func(c comm.Comm, a Args) error {
			return AllgathervKnomialBruck(c, a.SendBuf, a.Counts, a.RecvBuf, a.K)
		},
	})
	register(&Algorithm{
		Name: "reducescatterv_ring", Op: OpReduceScatterv, Kernel: KernelRing,
		Run: func(c comm.Comm, a Args) error {
			return ReduceScattervRing(c, a.SendBuf, a.Counts, a.RecvBuf, a.Op, a.Type)
		},
	})
	register(&Algorithm{
		Name: "alltoallv_linear", Op: OpAlltoallv, Kernel: KernelLinear,
		Run: func(c comm.Comm, a Args) error {
			p := c.Size()
			me := c.Rank()
			if len(a.Counts) != p*p {
				return fmt.Errorf("%w: %d matrix entries for %d ranks", ErrBadBuffer, len(a.Counts), p)
			}
			sendcounts := a.Counts[me*p : (me+1)*p]
			recvcounts := make([]int, p)
			for q := 0; q < p; q++ {
				recvcounts[q] = a.Counts[q*p+me]
			}
			return AlltoallvLinear(c, a.SendBuf, sendcounts, a.RecvBuf, recvcounts)
		},
	})
	register(&Algorithm{
		Name: "alltoallv_bruck", Op: OpAlltoallv, Kernel: KernelBruck,
		Run: func(c comm.Comm, a Args) error {
			return AlltoallvBruck(c, a.SendBuf, a.Counts, a.RecvBuf)
		},
	})
	register(&Algorithm{
		Name: "allreduce_gkz", Op: OpAllreduce, Kernel: KernelRabenseifner,
		Generalized: true, Baseline: "allreduce_rabenseifner", DefaultK: 2,
		Run: func(c comm.Comm, a Args) error {
			return AllreduceGeneralizedKZ(c, a.SendBuf, a.RecvBuf, a.Op, a.Type, a.K)
		},
	})

	register(&Algorithm{
		Name: "alltoall_pairwise", Op: OpAlltoall, Kernel: KernelRing,
		Run: func(c comm.Comm, a Args) error { return AlltoallPairwise(c, a.SendBuf, a.RecvBuf) },
	})
	register(&Algorithm{
		Name: "alltoall_bruck", Op: OpAlltoall, Kernel: KernelBruck,
		Run: func(c comm.Comm, a Args) error { return AlltoallBruck(c, a.SendBuf, a.RecvBuf) },
	})

	// --- Linear references. ---
	register(&Algorithm{
		Name: "bcast_linear", Op: OpBcast, Kernel: KernelLinear,
		Run: func(c comm.Comm, a Args) error { return BcastLinear(c, a.SendBuf, a.Root) },
	})
	register(&Algorithm{
		Name: "reduce_linear", Op: OpReduce, Kernel: KernelLinear,
		Run: func(c comm.Comm, a Args) error {
			return ReduceLinear(c, a.SendBuf, a.RecvBuf, a.Op, a.Type, a.Root)
		},
	})
	register(&Algorithm{
		Name: "gather_linear", Op: OpGather, Kernel: KernelLinear,
		Run: func(c comm.Comm, a Args) error {
			return GatherLinear(c, a.SendBuf, a.RecvBuf, a.Root)
		},
	})
	register(&Algorithm{
		Name: "scatter_linear", Op: OpScatter, Kernel: KernelLinear,
		Run: func(c comm.Comm, a Args) error {
			return ScatterLinear(c, a.SendBuf, a.RecvBuf, a.Root)
		},
	})
	register(&Algorithm{
		Name: "allgather_linear", Op: OpAllgather, Kernel: KernelLinear,
		Run: func(c comm.Comm, a Args) error { return AllgatherLinear(c, a.SendBuf, a.RecvBuf) },
	})
	register(&Algorithm{
		Name: "allreduce_linear", Op: OpAllreduce, Kernel: KernelLinear,
		Run: func(c comm.Comm, a Args) error {
			return AllreduceLinear(c, a.SendBuf, a.RecvBuf, a.Op, a.Type)
		},
	})
	register(&Algorithm{
		Name: "alltoall_linear", Op: OpAlltoall, Kernel: KernelLinear,
		Run: func(c comm.Comm, a Args) error { return AlltoallLinear(c, a.SendBuf, a.RecvBuf) },
	})
	register(&Algorithm{
		Name: "scan_linear", Op: OpScan, Kernel: KernelLinear,
		Run: func(c comm.Comm, a Args) error {
			return ScanLinear(c, a.SendBuf, a.RecvBuf, a.Op, a.Type)
		},
	})
	register(&Algorithm{
		Name: "scan_hillissteele", Op: OpScan, Kernel: KernelRecDbl,
		Run: func(c comm.Comm, a Args) error {
			return ScanHillisSteele(c, a.SendBuf, a.RecvBuf, a.Op, a.Type)
		},
	})
	register(&Algorithm{
		// Pipelined chain bcast; segment size from Args.SegSize or the
		// cost model (chain depth is p − 1).
		Name: "bcast_chain", Op: OpBcast, Kernel: KernelRing,
		Run: func(c comm.Comm, a Args) error {
			seg, err := SegSizeFor(c, len(a.SendBuf), c.Size()-1, a.SegSize)
			if err != nil {
				return err
			}
			return BcastChain(c, a.SendBuf, a.Root, seg)
		},
	})
}
