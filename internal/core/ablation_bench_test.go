package core

// Ablation benchmarks for the implementation choices DESIGN.md §5 calls
// out. Each Benchmark*/variant pair isolates one choice; run with
//
//	go test ./internal/core -bench Ablation -benchtime 10x
//
// The interesting output is the ratio between the variants, measured on
// the in-memory transport (wall clock).

import (
	"fmt"
	"testing"

	"exacoll/internal/comm"
	"exacoll/internal/datatype"
	"exacoll/internal/transport/mem"
)

// reduceKnomialDescending is ReduceKnomial with the ablated child-wait
// order: deepest subtree first. This serializes every shallow child's
// per-message overhead and reduction behind the slowest arrival — the
// exact defect found (and fixed) during Fig. 7 calibration; kept here as
// the ablation baseline.
func reduceKnomialDescending(c comm.Comm, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type, root, k int) error {
	p := c.Size()
	me := c.Rank()
	var acc []byte
	if me == root {
		acc = recvbuf
	} else {
		acc = make([]byte, len(sendbuf))
	}
	copy(acc, sendbuf)
	if p == 1 {
		return nil
	}
	t := KnomialTree{P: p, K: k}
	v := vrank(me, root, p)
	children := t.Children(v)
	bufs := make([][]byte, len(children))
	reqs := make([]comm.Request, len(children))
	for i, ch := range children {
		bufs[i] = make([]byte, len(sendbuf))
		req, err := c.Irecv(absRank(ch.VRank, root, p), tagKnomial, bufs[i])
		if err != nil {
			return err
		}
		reqs[i] = req
	}
	for i := range children { // descending weight: the ablated order
		if err := reqs[i].Wait(); err != nil {
			return err
		}
		if err := reduceInto(c, op, dt, acc, bufs[i]); err != nil {
			return err
		}
	}
	if par := t.Parent(v); par >= 0 {
		return c.Send(absRank(par, root, p), tagKnomial, acc)
	}
	return nil
}

func benchReduceVariant(b *testing.B, fn func(c comm.Comm, s, r []byte, op datatype.Op, dt datatype.Type, root, k int) error) {
	const p, n, k = 16, 64 << 10, 4
	w := mem.NewWorld(p)
	defer w.Close()
	b.ResetTimer()
	err := w.Run(func(c comm.Comm) error {
		sendbuf := datatype.EncodeFloat64(rankVector(c.Rank(), n/8))
		recvbuf := make([]byte, n)
		for i := 0; i < b.N; i++ {
			if err := fn(c, sendbuf, recvbuf, datatype.Sum, datatype.Float64, 0, k); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAblationReduceWaitOrder compares ascending (shipped) vs
// descending (ablated) child-wait order in the k-nomial reduce.
func BenchmarkAblationReduceWaitOrder(b *testing.B) {
	b.Run("ascending", func(b *testing.B) { benchReduceVariant(b, ReduceKnomial) })
	b.Run("descending", func(b *testing.B) { benchReduceVariant(b, reduceKnomialDescending) })
}

// runAllgatherPerBlock executes a schedule without message coalescing: one
// message per edge even when several blocks move between the same pair in
// a round (the ablated executor).
func runAllgatherPerBlock(c comm.Comm, s *Schedule, buf []byte, layout BlockLayout, tag comm.Tag) error {
	me := c.Rank()
	for _, round := range s.Rounds {
		var reqs []comm.Request
		for _, e := range round {
			if e.To == me {
				off, sz := layout(e.Block)
				req, err := c.Irecv(e.From, tag+comm.Tag(e.Block), buf[off:off+sz])
				if err != nil {
					return err
				}
				reqs = append(reqs, req)
			}
		}
		for _, e := range round {
			if e.From == me {
				off, sz := layout(e.Block)
				req, err := c.Isend(e.To, tag+comm.Tag(e.Block), buf[off:off+sz])
				if err != nil {
					return err
				}
				reqs = append(reqs, req)
			}
		}
		if err := comm.WaitAll(reqs...); err != nil {
			return err
		}
	}
	return nil
}

// BenchmarkAblationScheduleCoalescing compares the shipped coalescing
// executor against per-block messages on a non-uniform k-ring schedule
// (where inter rounds bundle several blocks per pair).
func BenchmarkAblationScheduleCoalescing(b *testing.B) {
	const p, k, n = 24, 5, 4 << 10 // 5 does not divide 24: bundled transfers
	s, err := KRingSchedule(p, k)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, exec func(c comm.Comm, buf []byte) error) {
		w := mem.NewWorld(p)
		defer w.Close()
		b.ResetTimer()
		err := w.Run(func(c comm.Comm) error {
			for i := 0; i < b.N; i++ {
				buf := make([]byte, n*p)
				copy(buf[c.Rank()*n:], rankPayload(c.Rank(), n))
				if err := exec(c, buf); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Run("coalesced", func(b *testing.B) {
		run(b, func(c comm.Comm, buf []byte) error {
			return s.RunAllgather(c, buf, UniformLayout(n), tagSched)
		})
	})
	b.Run("per-block", func(b *testing.B) {
		run(b, func(c comm.Comm, buf []byte) error {
			return runAllgatherPerBlock(c, s, buf, UniformLayout(n), tagSched)
		})
	})
}

// TestAblationVariantsCorrect pins that both ablated variants still
// compute correct results (so the benchmarks compare equal work).
func TestAblationVariantsCorrect(t *testing.T) {
	const p, n, k = 9, 1024, 3
	want := datatype.EncodeFloat64(expectedSum(p, n/8))
	w := mem.NewWorld(p)
	err := w.Run(func(c comm.Comm) error {
		sendbuf := datatype.EncodeFloat64(rankVector(c.Rank(), n/8))
		recvbuf := make([]byte, n)
		if err := reduceKnomialDescending(c, sendbuf, recvbuf, datatype.Sum, datatype.Float64, 0, k); err != nil {
			return err
		}
		if c.Rank() == 0 {
			for i := range want {
				if recvbuf[i] != want[i] {
					return fmt.Errorf("descending reduce wrong at byte %d", i)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	s, err := KRingSchedule(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	w2 := mem.NewWorld(p)
	err = w2.Run(func(c comm.Comm) error {
		buf := make([]byte, 64*p)
		copy(buf[c.Rank()*64:], rankPayload(c.Rank(), 64))
		if err := runAllgatherPerBlock(c, s, buf, UniformLayout(64), tagSched); err != nil {
			return err
		}
		for r := 0; r < p; r++ {
			wantBlock := rankPayload(r, 64)
			for i := 0; i < 64; i++ {
				if buf[r*64+i] != wantBlock[i] {
					return fmt.Errorf("per-block allgather wrong at block %d", r)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
