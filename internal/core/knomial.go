package core

import (
	scratch "exacoll/internal/buf"
	"exacoll/internal/comm"
	"exacoll/internal/datatype"
)

// BcastKnomial broadcasts buf from root using a k-nomial tree (§III). Each
// internal node receives the message once from its parent and then issues
// nonblocking sends to all of its up to (k-1)·log_k(p) children
// simultaneously, relying on multi-port NICs and message buffering to
// overlap them (§II-B2). k = 2 is the binomial tree.
func BcastKnomial(c comm.Comm, buf []byte, root, k int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	if err := checkRadix(k); err != nil {
		return err
	}
	p := c.Size()
	if p == 1 {
		return nil
	}
	t := KnomialTree{P: p, K: k}
	v := vrank(c.Rank(), root, p)

	if par := t.Parent(v); par >= 0 {
		if _, err := c.Recv(absRank(par, root, p), tagKnomial, buf); err != nil {
			return err
		}
	}
	// Stack-backed scratch keeps the steady-state bcast at zero
	// allocations per call (32 covers (k-1)·log_k(p) children for every
	// realistic radix; append spills wider trees to the heap).
	var childArr [32]Child
	var reqArr [32]comm.Request
	children := t.AppendChildren(childArr[:0], v)
	reqs := reqArr[:0]
	for _, ch := range children {
		req, err := c.Isend(absRank(ch.VRank, root, p), tagKnomial, buf)
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return comm.WaitAll(reqs...)
}

// ReduceKnomial reduces every rank's sendbuf into recvbuf at root using a
// k-nomial tree. Each internal node posts receives from all children at
// once (the overlapped messages highlighted in Fig. 2), combines them, and
// forwards one partial result to its parent. Requires a commutative op.
func ReduceKnomial(c comm.Comm, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type, root, k int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	if err := checkRadix(k); err != nil {
		return err
	}
	p := c.Size()
	me := c.Rank()

	// Accumulator: the root reduces directly into recvbuf; other ranks use
	// scratch.
	var acc []byte
	if me == root {
		if err := checkReduceBufs(sendbuf, recvbuf, dt); err != nil {
			return err
		}
		acc = recvbuf
	} else {
		acc = scratch.Get(len(sendbuf))
		// acc is never the target of an in-flight receive, so recycling it
		// on any exit is safe.
		defer scratch.Put(acc)
	}
	copy(acc, sendbuf)
	if p == 1 {
		return nil
	}

	t := KnomialTree{P: p, K: k}
	v := vrank(me, root, p)
	children := t.Children(v)

	// Post all child receives simultaneously so the NIC ports can overlap
	// them; then combine in ascending subtree-weight order — shallow
	// subtrees finish first, so their reductions overlap with the deeper
	// children still in flight (as in MPICH's binomial reduce, which
	// processes small-mask children before the message from the large
	// subtree has arrived).
	bufs := make([][]byte, len(children))
	reqs := make([]comm.Request, len(children))
	for i, ch := range children {
		bufs[i] = scratch.Get(len(sendbuf))
		req, err := c.Irecv(absRank(ch.VRank, root, p), tagKnomial, bufs[i])
		if err != nil {
			// Earlier receives may still be in flight into their staging
			// buffers; leak those to the GC rather than recycle them.
			return err
		}
		reqs[i] = req
	}
	for i := len(children) - 1; i >= 0; i-- {
		if err := reqs[i].Wait(); err != nil {
			scratch.Put(bufs[i]) // settled by Wait; the rest stay in flight
			return err
		}
		err := reduceInto(c, op, dt, acc, bufs[i])
		scratch.Put(bufs[i])
		if err != nil {
			return err
		}
	}
	if par := t.Parent(v); par >= 0 {
		return c.Send(absRank(par, root, p), tagKnomial, acc)
	}
	return nil
}

// GatherKnomial gathers every rank's n-byte sendbuf into recvbuf (length
// n·p, rank order) at root using a k-nomial tree (Figs. 1 and 2 show the
// k=2 and k=3 trees). Subtrees span contiguous vrank ranges, so each node
// forwards a single contiguous buffer per child.
func GatherKnomial(c comm.Comm, sendbuf, recvbuf []byte, root, k int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	if err := checkRadix(k); err != nil {
		return err
	}
	p := c.Size()
	n := len(sendbuf)
	me := c.Rank()
	if me == root && len(recvbuf) != n*p {
		return checkAllgatherBufs(c, sendbuf, recvbuf)
	}
	t := KnomialTree{P: p, K: k}
	v := vrank(me, root, p)
	children := t.Children(v)

	// tmp holds this rank's subtree in vrank order: vrank v at offset 0.
	span := t.P - v
	if par := t.Parent(v); par >= 0 {
		span = t.SubtreeSize(v, t.lowestWeight(v))
	}
	tmp := scratch.Get(n * span)
	copy(tmp[:n], sendbuf)

	reqs := make([]comm.Request, len(children))
	for i, ch := range children {
		sz := t.SubtreeSize(ch.VRank, ch.Weight)
		off := (ch.VRank - v) * n
		req, err := c.Irecv(absRank(ch.VRank, root, p), tagKnomial, tmp[off:off+sz*n])
		if err != nil {
			return err // earlier receives still target tmp: leak it
		}
		reqs[i] = req
	}
	// WaitAll settles every request even on error, so tmp is quiescent
	// from here on.
	if err := comm.WaitAll(reqs...); err != nil {
		scratch.Put(tmp)
		return err
	}
	if par := t.Parent(v); par >= 0 {
		err := c.Send(absRank(par, root, p), tagKnomial, tmp)
		scratch.Put(tmp)
		return err
	}
	// Root: rotate from vrank order back to absolute rank order.
	for vr := 0; vr < p; vr++ {
		r := absRank(vr, root, p)
		copy(recvbuf[r*n:(r+1)*n], tmp[vr*n:(vr+1)*n])
	}
	scratch.Put(tmp)
	return nil
}

// ScatterKnomial distributes n-byte blocks from sendbuf (length n·p, rank
// order) at root so each rank receives its block in recvbuf (length n),
// using a k-nomial tree (the reverse of GatherKnomial).
func ScatterKnomial(c comm.Comm, sendbuf, recvbuf []byte, root, k int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	if err := checkRadix(k); err != nil {
		return err
	}
	p := c.Size()
	n := len(recvbuf)
	me := c.Rank()
	t := KnomialTree{P: p, K: k}
	v := vrank(me, root, p)

	var tmp []byte
	if v == 0 {
		if len(sendbuf) != n*p {
			return checkAllgatherBufs(c, recvbuf, sendbuf)
		}
		// Rotate into vrank order.
		tmp = scratch.Get(n * p)
		for vr := 0; vr < p; vr++ {
			r := absRank(vr, root, p)
			copy(tmp[vr*n:(vr+1)*n], sendbuf[r*n:(r+1)*n])
		}
	} else {
		span := t.SubtreeSize(v, t.lowestWeight(v))
		tmp = scratch.Get(n * span)
		if _, err := c.Recv(absRank(t.Parent(v), root, p), tagScatter, tmp); err != nil {
			scratch.Put(tmp)
			return err
		}
	}
	children := t.Children(v)
	reqs := make([]comm.Request, 0, len(children))
	for _, ch := range children {
		sz := t.SubtreeSize(ch.VRank, ch.Weight)
		off := (ch.VRank - v) * n
		req, err := c.Isend(absRank(ch.VRank, root, p), tagScatter, tmp[off:off+sz*n])
		if err != nil {
			return err // earlier sends may still read tmp: leak it
		}
		reqs = append(reqs, req)
	}
	copy(recvbuf, tmp[:n])
	err := comm.WaitAll(reqs...)
	scratch.Put(tmp)
	return err
}

// AllgatherKnomial implements allgather as a k-nomial gather to rank 0
// followed by a k-nomial bcast, matching the composition the paper's eq.
// (2)/(3) models.
func AllgatherKnomial(c comm.Comm, sendbuf, recvbuf []byte, k int) error {
	if err := checkAllgatherBufs(c, sendbuf, recvbuf); err != nil {
		return err
	}
	if err := GatherKnomial(c, sendbuf, recvbuf, 0, k); err != nil {
		return err
	}
	return BcastKnomial(c, recvbuf, 0, k)
}

// AllreduceKnomial implements allreduce as a k-nomial reduce to rank 0
// followed by a k-nomial bcast (paper eq. (3)).
func AllreduceKnomial(c comm.Comm, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type, k int) error {
	if err := checkReduceBufs(sendbuf, recvbuf, dt); err != nil {
		return err
	}
	if err := ReduceKnomial(c, sendbuf, recvbuf, op, dt, 0, k); err != nil {
		return err
	}
	return BcastKnomial(c, recvbuf, 0, k)
}

// scatterFairForBcast distributes root's buf across all ranks in fair
// blocks keyed by absolute rank, using a radix-k tree. On return, every
// rank's buf contains at least its own fair block at fairOffset(rank)
// (root's buf is of course complete). This is phase 1 of every
// "scatter-allgather" bcast (van de Geijn), shared by the ring, k-ring,
// recursive-doubling and recursive-multiplying bcast variants.
func scatterFairForBcast(c comm.Comm, buf []byte, root, k int) error {
	p := c.Size()
	n := len(buf)
	me := c.Rank()
	t := KnomialTree{P: p, K: k}
	v := vrank(me, root, p)

	// Packed layout: fair blocks of the absolute ranks, ordered by vrank.
	// packedOff(vr) = total size of blocks of vranks < vr.
	packedOff := make([]int, p+1)
	for vr := 0; vr < p; vr++ {
		_, sz := fairBlock(n, p, absRank(vr, root, p))
		packedOff[vr+1] = packedOff[vr] + sz
	}

	var packed []byte
	if v == 0 {
		packed = scratch.Get(n)
		for vr := 0; vr < p; vr++ {
			off, sz := fairBlock(n, p, absRank(vr, root, p))
			copy(packed[packedOff[vr]:packedOff[vr]+sz], buf[off:off+sz])
		}
	} else {
		span := t.SubtreeSize(v, t.lowestWeight(v))
		packed = scratch.Get(packedOff[v+span] - packedOff[v])
		if _, err := c.Recv(absRank(t.Parent(v), root, p), tagScatter, packed); err != nil {
			scratch.Put(packed)
			return err
		}
	}
	base := packedOff[v]
	children := t.Children(v)
	reqs := make([]comm.Request, 0, len(children))
	for _, ch := range children {
		sz := t.SubtreeSize(ch.VRank, ch.Weight)
		lo := packedOff[ch.VRank] - base
		hi := packedOff[ch.VRank+sz] - base
		req, err := c.Isend(absRank(ch.VRank, root, p), tagScatter, packed[lo:hi])
		if err != nil {
			return err // earlier sends may still read packed: leak it
		}
		reqs = append(reqs, req)
	}
	if v != 0 {
		off, sz := fairBlock(n, p, me)
		copy(buf[off:off+sz], packed[:sz])
	}
	err := comm.WaitAll(reqs...)
	scratch.Put(packed)
	return err
}
