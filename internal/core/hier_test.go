package core

import (
	"bytes"
	"fmt"
	"testing"

	"exacoll/internal/comm"
	"exacoll/internal/datatype"
)

// TestHierarchicalAllreduce validates the two-level allreduce across
// group sizes including non-divisible ones.
func TestHierarchicalAllreduce(t *testing.T) {
	for _, p := range []int{1, 2, 4, 6, 8, 12, 13} {
		for _, group := range []int{1, 2, 3, 4, 8, 20} {
			p, group := p, group
			elems := 64
			want := datatype.EncodeFloat64(expectedSum(p, elems))
			runOnWorld(t, p, func(c comm.Comm) error {
				sendbuf := datatype.EncodeFloat64(rankVector(c.Rank(), elems))
				recvbuf := make([]byte, len(sendbuf))
				if err := AllreduceHierarchical(c, sendbuf, recvbuf, datatype.Sum, datatype.Float64, group); err != nil {
					return err
				}
				if !bytes.Equal(recvbuf, want) {
					return fmt.Errorf("p=%d group=%d mismatch at rank %d", p, group, c.Rank())
				}
				return nil
			})
		}
	}
	runOnWorld(t, 2, func(c comm.Comm) error {
		err := AllreduceHierarchical(c, make([]byte, 8), make([]byte, 8), datatype.Sum, datatype.Float64, 0)
		if err == nil {
			return fmt.Errorf("want error for group=0")
		}
		return nil
	})
}

// TestSegmentedBcast validates the pipelined bcast across segment sizes,
// including segments larger than the message and non-dividing sizes.
func TestSegmentedBcast(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8, 13} {
		for _, n := range []int{0, 1, 100, 1000, 4096} {
			for _, seg := range []int{1, 7, 64, 512, 10000} {
				for _, k := range []int{2, 4} {
					p, n, seg, k := p, n, seg, k
					root := p / 2
					payload := rankPayload(root+5, n)
					runOnWorld(t, p, func(c comm.Comm) error {
						buf := make([]byte, n)
						if c.Rank() == root {
							copy(buf, payload)
						}
						if err := BcastKnomialSegmented(c, buf, root, k, seg); err != nil {
							return err
						}
						if !bytes.Equal(buf, payload) {
							return fmt.Errorf("p=%d n=%d seg=%d k=%d mismatch at rank %d", p, n, seg, k, c.Rank())
						}
						return nil
					})
				}
			}
		}
	}
	runOnWorld(t, 2, func(c comm.Comm) error {
		if err := BcastKnomialSegmented(c, make([]byte, 8), 0, 2, 0); err == nil {
			return fmt.Errorf("want error for segSize=0")
		}
		return nil
	})
}

// TestPipelineSegments pins the segment arithmetic.
func TestPipelineSegments(t *testing.T) {
	cases := []struct{ n, seg, want int }{
		{0, 8, 0}, {1, 8, 1}, {8, 8, 1}, {9, 8, 2}, {100, 7, 15}, {5, 0, 0},
	}
	for _, tc := range cases {
		if got := PipelineSegments(tc.n, tc.seg); got != tc.want {
			t.Errorf("PipelineSegments(%d,%d) = %d, want %d", tc.n, tc.seg, got, tc.want)
		}
	}
}

// TestSubCommValidation covers comm.NewSub error paths and translation.
func TestSubCommValidation(t *testing.T) {
	runOnWorld(t, 4, func(c comm.Comm) error {
		if _, err := comm.NewSub(c, nil); err == nil {
			return fmt.Errorf("want error for empty sub")
		}
		if _, err := comm.NewSub(c, []int{0, 0, 1, 2, 3}); err == nil {
			return fmt.Errorf("want error for duplicate ranks")
		}
		if _, err := comm.NewSub(c, []int{0, 9}); err == nil {
			return fmt.Errorf("want error for out-of-range rank")
		}
		if c.Rank() == 3 {
			if _, err := comm.NewSub(c, []int{0, 1}); err == nil {
				return fmt.Errorf("want error for non-member caller")
			}
			return nil
		}
		sub, err := comm.NewSub(c, []int{2, 0, 1}) // unsorted on purpose
		if err != nil {
			return err
		}
		if sub.Size() != 3 || sub.Rank() != c.Rank() {
			return fmt.Errorf("sub geometry %d/%d", sub.Rank(), sub.Size())
		}
		if sub.Parent(2) != 2 {
			return fmt.Errorf("Parent(2) = %d", sub.Parent(2))
		}
		// A collective over the sub-communicator.
		sendbuf := datatype.EncodeFloat64([]float64{float64(c.Rank())})
		recvbuf := make([]byte, 8)
		if err := AllreduceRecDbl(sub, sendbuf, recvbuf, datatype.Sum, datatype.Float64); err != nil {
			return err
		}
		if got := datatype.DecodeFloat64(recvbuf)[0]; got != 3 {
			return fmt.Errorf("sub allreduce = %v", got)
		}
		return nil
	})
}
