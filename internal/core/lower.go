package core

// Exported lowering helpers for the nonblocking schedule compiler
// (internal/nbc). The compiler reuses the exact round/partner/combine
// structure of the blocking algorithms in this package — the same trees,
// schedules, and recursive-multiplying plans — so a compiled nonblocking
// collective produces bit-identical buffers to its blocking counterpart.
// Nothing here introduces new communication structure; it only re-exposes
// what the blocking bodies compute internally.

// VRank maps an absolute rank to its rank relative to root (the MPI idiom
// for rooted trees): VRank(root) = 0.
func VRank(rank, root, p int) int { return vrank(rank, root, p) }

// AbsRank inverts VRank.
func AbsRank(vr, root, p int) int { return absRank(vr, root, p) }

// FairBlock returns (offset, size) of fair block i when n bytes are split
// across p blocks: block i spans [i*n/p, (i+1)*n/p).
func FairBlock(n, p, i int) (off, size int) { return fairBlock(n, p, i) }

// Span returns the number of vranks in the subtree rooted at v (all of P
// for the root) — the contiguous vrank range [v, v+Span(v)) that gather,
// scatter, and the fair-scatter bcast phase rely on.
func (t KnomialTree) Span(v int) int {
	if v == 0 {
		return t.P
	}
	return t.SubtreeSize(v, t.lowestWeight(v))
}

// RoundXfer is one coalesced per-round transfer with a single peer: the
// blocks move packed in ascending block-id order and Size is their total
// byte size under the layout used to build it.
type RoundXfer struct {
	Peer   int
	Blocks []int
	Size   int
}

// XfersFor extracts rank me's coalesced sends and receives for one
// schedule round — the same coalescing RunAllgather/RunReduceScatter use
// internally (peers ascending, blocks ascending within a peer).
func XfersFor(round Round, me int, layout BlockLayout) (sends, recvs []RoundXfer) {
	s, r := roundXfers(round, me, layout)
	conv := func(xs []xfer) []RoundXfer {
		out := make([]RoundXfer, len(xs))
		for i, x := range xs {
			out[i] = RoundXfer{Peer: x.peer, Blocks: x.blocks, Size: x.size}
		}
		return out
	}
	return conv(s), conv(r)
}

// RecMulStructure exposes the recursive-multiplying round structure
// (RecMulPlan plus the fold mapping) that AllreduceRecMul and the
// recursive-multiplying allgather execute.
type RecMulStructure struct {
	P       int
	PPrime  int
	Factors []int
	weights []int
}

// NewRecMulStructure plans recursive multiplying with radix k on p ranks.
func NewRecMulStructure(p, k int) *RecMulStructure {
	pPrime, factors := RecMulPlan(p, k)
	return &RecMulStructure{P: p, PPrime: pPrime, Factors: factors, weights: roundWeights(factors)}
}

// Rem returns the number of folded-out ranks (p − p′).
func (s *RecMulStructure) Rem() int { return s.P - s.PPrime }

// Rounds returns the number of multiplying rounds.
func (s *RecMulStructure) Rounds() int { return len(s.Factors) }

// Slot returns rank r's slot in the multiplying rounds, or −1 when r is a
// folded-out even rank that only participates in the fold pre/post phases.
func (s *RecMulStructure) Slot(r int) int {
	rem := s.Rem()
	switch {
	case r < 2*rem && r%2 == 0:
		return -1
	case r < 2*rem:
		return r / 2
	default:
		return r - rem
	}
}

// Real maps a slot back to its absolute rank.
func (s *RecMulStructure) Real(slot int) int { return foldReal(slot, s.P, s.PPrime) }

// GroupMembers returns the slots of slot's exchange group in the given
// round, in ascending order (slot itself included).
func (s *RecMulStructure) GroupMembers(slot, round int) []int {
	return groupMembers(slot, s.Factors, s.weights, round)
}

// OwnedBlocks returns, ascending, the block ids (absolute ranks) slot
// holds after `rounds` completed multiplying rounds, accounting for the
// fold (slots below Rem carry two initial blocks).
func (s *RecMulStructure) OwnedBlocks(slot, rounds int) []int {
	return slotOwnedBlocks(slot, s.Factors, s.weights, rounds, s.P, s.PPrime)
}
