package core

// SelectionSize returns the message size on which algorithm selection for
// (op, a) must be based. The invariant that matters is agreement: every
// rank of one collective call must compute the same size, or different
// ranks walk different rungs of a tuning ladder and run incompatible
// algorithms (a hang or corruption, not just a slow pick).
//
// len(SendBuf) is agreement-safe for most operations — bcast's payload,
// a reduction's contribution, and a gather/allgather/alltoall per-rank
// block are the same length everywhere. Scatter is the exception: only
// the root holds the p·block send buffer (non-roots may pass nil), so
// its per-rank block — len(RecvBuf), identical on every rank including
// the root — is the selection size.
// The vector collectives are the other exception: per-rank buffer lengths
// differ under skew, but the counts vector (or matrix) is shared, so its
// total is the agreement-safe size — and the right one to select on, since
// skewed traffic stresses bandwidth by total volume, not by any one rank's
// contribution.
func SelectionSize(op CollOp, a Args) int {
	switch op {
	case OpScatter:
		return len(a.RecvBuf)
	case OpAllgatherv, OpReduceScatterv, OpAlltoallv:
		total := 0
		for _, n := range a.Counts {
			total += n
		}
		return total
	}
	return len(a.SendBuf)
}
