package core

// SelectionSize returns the message size on which algorithm selection for
// (op, a) must be based. The invariant that matters is agreement: every
// rank of one collective call must compute the same size, or different
// ranks walk different rungs of a tuning ladder and run incompatible
// algorithms (a hang or corruption, not just a slow pick).
//
// len(SendBuf) is agreement-safe for most operations — bcast's payload,
// a reduction's contribution, and a gather/allgather/alltoall per-rank
// block are the same length everywhere. Scatter is the exception: only
// the root holds the p·block send buffer (non-roots may pass nil), so
// its per-rank block — len(RecvBuf), identical on every rank including
// the root — is the selection size.
func SelectionSize(op CollOp, a Args) int {
	if op == OpScatter {
		return len(a.RecvBuf)
	}
	return len(a.SendBuf)
}
