package core

import (
	"errors"
	"testing"

	"exacoll/internal/comm"
	"exacoll/internal/datatype"
	"exacoll/internal/transport/faulty"
	"exacoll/internal/transport/mem"
)

// TestFaultInjectionAllAlgorithms runs every registered algorithm with a
// shrinking world-wide send budget and demands that each run either
// completes successfully or surfaces an error — never hangs and never
// panics. This covers the error-propagation paths of every algorithm
// (a send failure mid-collective must unwind cleanly through WaitAll,
// schedule executors, fold phases, and composed sub-collectives).
func TestFaultInjectionAllAlgorithms(t *testing.T) {
	const p = 6
	const n = 256
	for _, alg := range Algorithms(-1) {
		alg := alg
		t.Run(alg.Name, func(t *testing.T) {
			t.Parallel()
			if alg.Pow2Only {
				t.Skip("pow2-only algorithm, p=6 grid")
			}
			// Budgets from "fails immediately" to "just enough to finish".
			for _, budget := range []int{0, 1, 2, 5, 9, 17, 40, 1 << 20} {
				w := mem.NewWorld(p)
				b := faulty.NewBudget(budget)
				err := w.Run(func(c comm.Comm) error {
					fc := faulty.Wrap(c, b)
					a := buildArgs(alg.Op, c.Rank(), p, n)
					a.K = 3
					return alg.Run(fc, a)
				})
				if budget >= 1<<20 && err != nil {
					t.Fatalf("budget %d: unexpected failure: %v", budget, err)
				}
				if err != nil && !errors.Is(err, faulty.ErrInjected) && !errors.Is(err, comm.ErrClosed) {
					t.Fatalf("budget %d: unexpected error type: %v", budget, err)
				}
				w.Close()
			}
		})
	}
}

// buildArgs mirrors the conformance argument construction for fault runs
// (values are irrelevant; shapes must be right).
func buildArgs(op CollOp, rank, p, n int) Args {
	a := Args{Op: datatype.Sum, Type: datatype.Float64, Root: 0}
	switch op {
	case OpBcast:
		a.SendBuf = make([]byte, n)
	case OpReduce, OpAllreduce:
		a.SendBuf = make([]byte, n)
		a.RecvBuf = make([]byte, n)
	case OpGather, OpAllgather:
		a.SendBuf = make([]byte, n)
		a.RecvBuf = make([]byte, n*p)
	case OpScatter:
		if rank == 0 {
			a.SendBuf = make([]byte, n*p)
		}
		a.RecvBuf = make([]byte, n)
	case OpReduceScatter:
		a.SendBuf = make([]byte, n)
		_, sz := FairLayoutAligned(n, p, 8)(rank)
		a.RecvBuf = make([]byte, sz)
	case OpAlltoall:
		a.SendBuf = make([]byte, n*p)
		a.RecvBuf = make([]byte, n*p)
	case OpScan:
		a.SendBuf = make([]byte, n)
		a.RecvBuf = make([]byte, n)
	case OpAllgatherv:
		counts := conformanceCounts(p, n)
		a.Counts = counts
		a.SendBuf = make([]byte, counts[rank])
		a.RecvBuf = make([]byte, prefixOffsets(counts)[p])
	case OpReduceScatterv:
		counts := conformanceCounts(p, n)
		a.Counts = counts
		a.SendBuf = make([]byte, prefixOffsets(counts)[p])
		a.RecvBuf = make([]byte, counts[rank])
	case OpAlltoallv:
		m := conformanceCountMatrix(p, n)
		a.Counts = m
		st, rt := 0, 0
		for q := 0; q < p; q++ {
			st += m[rank*p+q]
			rt += m[q*p+rank]
		}
		a.SendBuf = make([]byte, st)
		a.RecvBuf = make([]byte, rt)
	}
	return a
}
