package core

import (
	scratch "exacoll/internal/buf"
	"exacoll/internal/comm"
	"exacoll/internal/datatype"
)

// Linear (flat) algorithms: the root exchanges directly with every other
// rank. They model the naïve τ = p(α + βn) cost of §III-B, serve as the
// reference oracle for correctness tests, and stand in for the "linear"
// algorithms production MPIs select for some regimes (§VI-C3 notes Cray
// MPI's competitive "linear" reduce).

// BcastLinear sends buf from root directly to every rank.
func BcastLinear(c comm.Comm, buf []byte, root int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	if c.Rank() != root {
		_, err := c.Recv(root, tagLinear, buf)
		return err
	}
	reqs := make([]comm.Request, 0, c.Size()-1)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		req, err := c.Isend(r, tagLinear, buf)
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return comm.WaitAll(reqs...)
}

// ReduceLinear receives every rank's contribution at root and reduces them
// in rank order.
func ReduceLinear(c comm.Comm, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type, root int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	if c.Rank() != root {
		return c.Send(root, tagLinear, sendbuf)
	}
	if err := checkReduceBufs(sendbuf, recvbuf, dt); err != nil {
		return err
	}
	copy(recvbuf, sendbuf)
	bufs := make([][]byte, c.Size())
	reqs := make([]comm.Request, c.Size())
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		bufs[r] = scratch.Get(len(sendbuf))
		req, err := c.Irecv(r, tagLinear, bufs[r])
		if err != nil {
			// Earlier receives may still target their staging buffers:
			// leak them to the GC rather than recycle.
			return err
		}
		reqs[r] = req
	}
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		if err := reqs[r].Wait(); err != nil {
			scratch.Put(bufs[r]) // settled by Wait; the rest stay in flight
			return err
		}
		err := reduceInto(c, op, dt, recvbuf, bufs[r])
		scratch.Put(bufs[r])
		if err != nil {
			return err
		}
	}
	return nil
}

// GatherLinear receives every rank's n-byte block directly at root.
func GatherLinear(c comm.Comm, sendbuf, recvbuf []byte, root int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	n := len(sendbuf)
	if c.Rank() != root {
		return c.Send(root, tagLinear, sendbuf)
	}
	if len(recvbuf) != n*c.Size() {
		return checkAllgatherBufs(c, sendbuf, recvbuf)
	}
	copy(recvbuf[root*n:], sendbuf)
	reqs := make([]comm.Request, 0, c.Size()-1)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		req, err := c.Irecv(r, tagLinear, recvbuf[r*n:(r+1)*n])
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return comm.WaitAll(reqs...)
}

// ScatterLinear sends each rank its n-byte block directly from root.
func ScatterLinear(c comm.Comm, sendbuf, recvbuf []byte, root int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	n := len(recvbuf)
	if c.Rank() != root {
		_, err := c.Recv(root, tagLinear, recvbuf)
		return err
	}
	if len(sendbuf) != n*c.Size() {
		return checkAllgatherBufs(c, recvbuf, sendbuf)
	}
	copy(recvbuf, sendbuf[root*n:(root+1)*n])
	reqs := make([]comm.Request, 0, c.Size()-1)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		req, err := c.Isend(r, tagLinear, sendbuf[r*n:(r+1)*n])
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return comm.WaitAll(reqs...)
}

// AllgatherLinear gathers to rank 0 and broadcasts linearly (reference
// oracle only).
func AllgatherLinear(c comm.Comm, sendbuf, recvbuf []byte) error {
	if err := checkAllgatherBufs(c, sendbuf, recvbuf); err != nil {
		return err
	}
	if err := GatherLinear(c, sendbuf, recvbuf, 0); err != nil {
		return err
	}
	return BcastLinear(c, recvbuf, 0)
}

// AllreduceLinear reduces to rank 0 and broadcasts linearly (reference
// oracle only).
func AllreduceLinear(c comm.Comm, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type) error {
	if err := checkReduceBufs(sendbuf, recvbuf, dt); err != nil {
		return err
	}
	if err := ReduceLinear(c, sendbuf, recvbuf, op, dt, 0); err != nil {
		return err
	}
	return BcastLinear(c, recvbuf, 0)
}
