package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"exacoll/internal/comm"
	"exacoll/internal/datatype"
	"exacoll/internal/transport/mem"
)

// Property-based tests (testing/quick): the invariants of the generalized
// algorithms must hold for arbitrary (p, k, n, root) combinations, not
// just the hand-picked grid of the conformance tests.

// quickCfg bounds the random search so each property checks quickly but
// covers the corner cases (non-power sizes, k > p, tiny payloads).
var quickCfg = &quick.Config{
	MaxCount: 60,
	Rand:     rand.New(rand.NewSource(42)),
}

// clampParams maps arbitrary uints onto valid (p, k, n, root).
func clampParams(pRaw, kRaw, nRaw, rootRaw uint32) (p, k, n, root int) {
	p = int(pRaw%14) + 1     // 1..14
	k = int(kRaw%(14+4)) + 1 // 1..18, may exceed p
	n = int(nRaw % 2048)
	root = int(rootRaw) % p
	return
}

// TestQuickKnomialTreePartition: for any (p, k), the k-nomial tree's child
// lists partition 1..p-1 and parents are consistent.
func TestQuickKnomialTreePartition(t *testing.T) {
	prop := func(pRaw, kRaw uint32) bool {
		p := int(pRaw%200) + 1
		k := int(kRaw%16) + 2
		tr := KnomialTree{P: p, K: k}
		edges := 0
		for v := 0; v < p; v++ {
			for _, ch := range tr.Children(v) {
				if tr.Parent(ch.VRank) != v {
					return false
				}
				edges++
			}
		}
		return edges == p-1
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickKRingScheduleValid: any (p, k) k-ring schedule satisfies the
// exactly-once dissemination invariant.
func TestQuickKRingScheduleValid(t *testing.T) {
	prop := func(pRaw, kRaw uint32) bool {
		p := int(pRaw%40) + 1
		k := int(kRaw%45) + 1
		s, err := KRingSchedule(p, k)
		if err != nil {
			return false
		}
		return s.Validate() == nil
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickFactorSchedule: the mixed-radix schedule always multiplies back
// to the k-smooth size with every factor in [2, k].
func TestQuickFactorSchedule(t *testing.T) {
	prop := func(pRaw, kRaw uint32) bool {
		p := int(pRaw%5000) + 1
		k := int(kRaw%30) + 2
		q := LargestKSmooth(p, k)
		if q > p || 2*q < p {
			return false
		}
		prod := 1
		for _, f := range FactorSchedule(q, k) {
			if f < 2 || f > k {
				return false
			}
			prod *= f
		}
		return prod == q
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickRecMulPlan: the round plan always covers at least half the
// ranks (bounded fold), uses factors in [2, k], and multiplies to p'.
func TestQuickRecMulPlan(t *testing.T) {
	prop := func(pRaw, kRaw uint32) bool {
		p := int(pRaw%3000) + 1
		k := int(kRaw%40) + 2
		q, factors := RecMulPlan(p, k)
		if q < 1 || q > p || 2*q < p {
			return false
		}
		prod := 1
		smallRounds := 0
		for _, f := range factors {
			if f < 2 || (f > k && f != p) {
				return false
			}
			if f != k {
				smallRounds++
			}
			prod *= f
		}
		if prod != q {
			return false
		}
		// At most one non-k round unless the greedy fallback fired.
		if smallRounds > 1 && isKSmooth(q, k) && q != LargestKSmooth(p, k) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// runQuickWorld runs fn across p mem ranks and reports success.
func runQuickWorld(p int, fn func(c comm.Comm) error) error {
	return mem.NewWorld(p).Run(fn)
}

// TestQuickBcastAgree: for random (p, k, n, root), k-nomial, recursive-
// multiplying and k-ring bcast all deliver the root's exact payload.
func TestQuickBcastAgree(t *testing.T) {
	prop := func(pRaw, kRaw, nRaw, rootRaw uint32) bool {
		p, k, n, root := clampParams(pRaw, kRaw, nRaw, rootRaw)
		if k < 2 {
			k = 2
		}
		payload := rankPayload(root+100, n)
		run := func(bcast func(c comm.Comm, buf []byte) error) bool {
			err := runQuickWorld(p, func(c comm.Comm) error {
				buf := make([]byte, n)
				if c.Rank() == root {
					copy(buf, payload)
				}
				if err := bcast(c, buf); err != nil {
					return err
				}
				if !bytes.Equal(buf, payload) {
					return fmt.Errorf("mismatch at rank %d", c.Rank())
				}
				return nil
			})
			return err == nil
		}
		return run(func(c comm.Comm, buf []byte) error { return BcastKnomial(c, buf, root, k) }) &&
			run(func(c comm.Comm, buf []byte) error { return BcastRecMul(c, buf, root, k) }) &&
			run(func(c comm.Comm, buf []byte) error { return BcastKRing(c, buf, root, k) })
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickAllreduceAgree: for random (p, k, elems), all allreduce
// implementations produce the identical exact integer sum.
func TestQuickAllreduceAgree(t *testing.T) {
	prop := func(pRaw, kRaw, nRaw uint32) bool {
		p, k, n, _ := clampParams(pRaw, kRaw, nRaw, 0)
		if k < 2 {
			k = 2
		}
		elems := n / 8
		want := datatype.EncodeFloat64(expectedSum(p, elems))
		algs := []func(c comm.Comm, s, r []byte) error{
			func(c comm.Comm, s, r []byte) error {
				return AllreduceRecMul(c, s, r, datatype.Sum, datatype.Float64, k)
			},
			func(c comm.Comm, s, r []byte) error {
				return AllreduceKRing(c, s, r, datatype.Sum, datatype.Float64, k)
			},
			func(c comm.Comm, s, r []byte) error {
				return AllreduceKnomial(c, s, r, datatype.Sum, datatype.Float64, k)
			},
			func(c comm.Comm, s, r []byte) error {
				return AllreduceRabenseifner(c, s, r, datatype.Sum, datatype.Float64)
			},
		}
		for _, alg := range algs {
			err := runQuickWorld(p, func(c comm.Comm) error {
				sendbuf := datatype.EncodeFloat64(rankVector(c.Rank(), elems))
				recvbuf := make([]byte, len(sendbuf))
				if err := alg(c, sendbuf, recvbuf); err != nil {
					return err
				}
				if !bytes.Equal(recvbuf, want) {
					return fmt.Errorf("mismatch at rank %d", c.Rank())
				}
				return nil
			})
			if err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickGatherScatterInverse: scatter followed by gather over the same
// tree is the identity on the root's buffer.
func TestQuickGatherScatterInverse(t *testing.T) {
	prop := func(pRaw, kRaw, nRaw, rootRaw uint32) bool {
		p, k, n, root := clampParams(pRaw, kRaw, nRaw, rootRaw)
		if k < 2 {
			k = 2
		}
		n = n%128 + 1
		original := rankPayload(7, n*p)
		err := runQuickWorld(p, func(c comm.Comm) error {
			var sendbuf []byte
			if c.Rank() == root {
				sendbuf = append([]byte(nil), original...)
			}
			block := make([]byte, n)
			if err := ScatterKnomial(c, sendbuf, block, root, k); err != nil {
				return err
			}
			var back []byte
			if c.Rank() == root {
				back = make([]byte, n*p)
			}
			if err := GatherKnomial(c, block, back, root, k); err != nil {
				return err
			}
			if c.Rank() == root && !bytes.Equal(back, original) {
				return fmt.Errorf("scatter∘gather != id")
			}
			return nil
		})
		return err == nil
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickReduceScatterAllgatherIdentity: reduce-scatter + allgather over
// the same k-ring schedule equals allreduce (the §V-D composition).
func TestQuickReduceScatterAllgather(t *testing.T) {
	prop := func(pRaw, kRaw, nRaw uint32) bool {
		p, k, n, _ := clampParams(pRaw, kRaw, nRaw, 0)
		elems := n/8 + 1
		want := datatype.EncodeFloat64(expectedSum(p, elems))
		err := runQuickWorld(p, func(c comm.Comm) error {
			sendbuf := datatype.EncodeFloat64(rankVector(c.Rank(), elems))
			recvbuf := make([]byte, len(sendbuf))
			if err := AllreduceKRing(c, sendbuf, recvbuf, datatype.Sum, datatype.Float64, maxInt(k, 1)); err != nil {
				return err
			}
			if !bytes.Equal(recvbuf, want) {
				return fmt.Errorf("mismatch at rank %d", c.Rank())
			}
			return nil
		})
		return err == nil
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}
