package core

import (
	"testing"

	"exacoll/internal/comm"
	"exacoll/internal/datatype"
)

// TestVCollSmallAllocs extends the alloc-regression gate to the
// vector/irregular workload class: small skewed collectives on the mem
// transport must keep their steady-state allocation counts pinned, so a
// future change that drops the scratch-pool discipline (per-call staging
// in Bruck's rounds, ring staging, alltoallv round buffers) shows up as a
// gate failure, not a silent slowdown. The rings' bounds are dominated by
// per-call schedule construction (as with allreduce_ring in
// TestAllreduceSmallAllocs); the Bruck and linear variants stay an order
// of magnitude lower because their staging rides the pool. The count
// vectors are ragged with zeros — the shapes the pool actually has to
// absorb.
func TestVCollSmallAllocs(t *testing.T) {
	skipIfPoisoning(t)
	const p = 8
	counts := make([]int, p)
	for r := range counts {
		counts[r] = ((r * 3) % 5) * 256 // ragged, zeros at r=0 and r=5
	}
	total := prefixOffsets(counts)[p]
	m := make([]int, p*p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			m[i*p+j] = ((i*31 + j*17) % 5) * 64
		}
	}
	rowTotals := func(r int) (st, rt int) {
		for q := 0; q < p; q++ {
			st += m[r*p+q]
			rt += m[q*p+r]
		}
		return
	}
	for _, tc := range []struct {
		name  string
		bound float64
		fns   func(r int) func(c comm.Comm) error
	}{
		{"allgatherv_ring", 700, func(r int) func(c comm.Comm) error {
			sb, rb := make([]byte, counts[r]), make([]byte, total)
			return func(c comm.Comm) error { return AllgathervRing(c, sb, counts, rb) }
		}},
		{"allgatherv_knomial_bruck_k2", 80, func(r int) func(c comm.Comm) error {
			sb, rb := make([]byte, counts[r]), make([]byte, total)
			return func(c comm.Comm) error { return AllgathervKnomialBruck(c, sb, counts, rb, 2) }
		}},
		{"reducescatterv_ring", 750, func(r int) func(c comm.Comm) error {
			sb, rb := make([]byte, total), make([]byte, counts[r])
			return func(c comm.Comm) error {
				return ReduceScattervRing(c, sb, counts, rb, datatype.Sum, datatype.Float64)
			}
		}},
		{"alltoallv_linear", 120, func(r int) func(c comm.Comm) error {
			st, rt := rowTotals(r)
			sb, rb := make([]byte, st), make([]byte, rt)
			sc := m[r*p : (r+1)*p]
			rc := make([]int, p)
			for q := 0; q < p; q++ {
				rc[q] = m[q*p+r]
			}
			return func(c comm.Comm) error { return AlltoallvLinear(c, sb, sc, rb, rc) }
		}},
		{"alltoallv_bruck", 100, func(r int) func(c comm.Comm) error {
			st, rt := rowTotals(r)
			sb, rb := make([]byte, st), make([]byte, rt)
			return func(c comm.Comm) error { return AlltoallvBruck(c, sb, m, rb) }
		}},
		{"allreduce_gkz_k3", 60, func(r int) func(c comm.Comm) error {
			sb, rb := make([]byte, total), make([]byte, total)
			return func(c comm.Comm) error {
				return AllreduceGeneralizedKZ(c, sb, rb, datatype.Sum, datatype.Float64, 3)
			}
		}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			lw := newLockstep(p)
			fns := make([]func(c comm.Comm) error, p)
			for r := 0; r < p; r++ {
				fns[r] = tc.fns(r)
			}
			if avg := measureAllocs(t, lw, fns); avg > tc.bound {
				t.Errorf("%s: %.1f allocs per collective, want <= %.0f", tc.name, avg, tc.bound)
			}
		})
	}
}
