package core

import (
	"fmt"

	scratch "exacoll/internal/buf"
	"exacoll/internal/comm"
	"exacoll/internal/datatype"
	"exacoll/internal/flight"
	"exacoll/internal/model"
)

// Segmented (pipelined) reductions: the large-message refinement the
// segmented bcasts already apply, extended to reduce and allreduce. The
// payload is split into segments so every stage of the communication
// structure works on segment s while segment s+1 is still in flight,
// turning the depth-d full-message latency into d + m − 1 segment steps.
// Segment sizes come from model.PipelineSegSize when the substrate exposes
// its cost parameters, so the tuning table and the analytical model agree
// on where pipelining pays.

// DefaultSegSize is the segment size used when the substrate exposes no
// cost model to derive one from — the production-typical 64 KiB of MPICH
// and Open MPI tree segmentation.
const DefaultSegSize = 64 << 10

// KnomialDepth returns the depth of the radix-k k-nomial tree over p ranks
// (ceil(log_k p)) — the pipeline depth of the segmented tree algorithms.
func KnomialDepth(p, k int) int {
	if k < 2 {
		k = 2
	}
	d := 0
	for v := 1; v < p; v *= k {
		d++
	}
	return d
}

// SegSizeFor resolves a caller's requested segment size for pipelining n
// bytes through a depth-stage structure: positive values are used as
// given, 0 derives the size — from the substrate's cost model when c
// exposes one (model.MachineLike), DefaultSegSize otherwise — and
// negative values are rejected, matching the Args.SegSize contract.
func SegSizeFor(c comm.Comm, n, depth, req int) (int, error) {
	if req < 0 {
		return 0, fmt.Errorf("%w: segment size %d", ErrBadBuffer, req)
	}
	if req > 0 {
		return req, nil
	}
	seg := DefaultSegSize
	if m, ok := c.(model.MachineLike); ok {
		seg = m.ModelParams().PipelineSegSize(n, depth)
	}
	if seg < 1 {
		seg = 1
	}
	return seg, nil
}

// alignSeg floors segSize to a multiple of the element size so no segment
// splits an element, keeping at least one element per segment.
func alignSeg(segSize, elemSize int) int {
	segSize -= segSize % elemSize
	if segSize < elemSize {
		segSize = elemSize
	}
	return segSize
}

// ReduceKnomialSegmented is the pipelined k-nomial reduce: the reverse of
// BcastKnomialSegmented. Each internal node receives segment s from all of
// its children, combines them into its accumulator in the same descending
// child order as ReduceKnomial, and forwards the combined segment to its
// parent while the children's segment s+1 receives are already posted —
// so for a tree of depth d and m segments the reduction completes in
// d + m − 1 segment steps instead of d full-message steps.
func ReduceKnomialSegmented(c comm.Comm, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type, root, k, segSize int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	if err := checkRadix(k); err != nil {
		return err
	}
	if segSize < 1 {
		return fmt.Errorf("%w: segment size %d", ErrBadBuffer, segSize)
	}
	if len(sendbuf)%dt.Size() != 0 {
		return fmt.Errorf("%w: buffer length %d not a multiple of %v size %d",
			ErrBadBuffer, len(sendbuf), dt, dt.Size())
	}
	segSize = alignSeg(segSize, dt.Size())
	if len(sendbuf) <= segSize {
		return ReduceKnomial(c, sendbuf, recvbuf, op, dt, root, k)
	}
	p := c.Size()
	me := c.Rank()

	var acc []byte
	if me == root {
		if err := checkReduceBufs(sendbuf, recvbuf, dt); err != nil {
			return err
		}
		acc = recvbuf
	} else {
		acc = scratch.Get(len(sendbuf))
	}
	copy(acc, sendbuf)
	if p == 1 {
		return nil
	}

	t := KnomialTree{P: p, K: k}
	v := vrank(me, root, p)
	children := t.Children(v)
	nseg := (len(sendbuf) + segSize - 1) / segSize
	seg := func(s int) (int, int) {
		lo := s * segSize
		return lo, minInt(lo+segSize, len(sendbuf))
	}

	// Pre-post every (child, segment) receive; per-(source, tag) FIFO keeps
	// each child's segments in order. Staging is one full-length pool buffer
	// per child, exactly as in the unsegmented reduce.
	bufs := make([][]byte, len(children))
	recvReqs := make([][]comm.Request, len(children))
	for i, ch := range children {
		bufs[i] = scratch.Get(len(sendbuf))
		recvReqs[i] = make([]comm.Request, nseg)
		src := absRank(ch.VRank, root, p)
		for s := 0; s < nseg; s++ {
			lo, hi := seg(s)
			req, err := c.Irecv(src, tagPipe, bufs[i][lo:hi])
			if err != nil {
				return err // earlier receives still target scratch: leak
			}
			recvReqs[i][s] = req
		}
	}

	parent := t.Parent(v)
	rec := flight.RecorderOf(c)
	sendReqs := make([]comm.Request, 0, nseg)
	for s := 0; s < nseg; s++ {
		lo, hi := seg(s)
		if rec != nil {
			rec.Record(flight.EvSegment, -1, 0, hi-lo, uint64(s))
		}
		// Combine in descending child index, matching ReduceKnomial's
		// order so the segmented result is bit-identical.
		for i := len(children) - 1; i >= 0; i-- {
			if err := recvReqs[i][s].Wait(); err != nil {
				return err // later receives and sends still in flight: leak
			}
			if err := reduceInto(c, op, dt, acc[lo:hi], bufs[i][lo:hi]); err != nil {
				return err
			}
		}
		if parent >= 0 {
			req, err := c.Isend(absRank(parent, root, p), tagPipe, acc[lo:hi])
			if err != nil {
				return err // earlier sends may still read acc: leak
			}
			sendReqs = append(sendReqs, req)
		}
	}
	// WaitAll settles every request even on error, so acc and all staging
	// are quiescent from here on.
	err := comm.WaitAll(sendReqs...)
	for _, b := range bufs {
		scratch.Put(b)
	}
	if me != root {
		scratch.Put(acc)
	}
	return err
}

// AllreduceRingPipelined is the segmented ring allreduce: the
// reduce-scatter and allgather phases of the ring run per segment, and the
// segments are software-pipelined — while segment s runs ring round j,
// segment s+1 runs round j−1 — so the 2(p−1)-round ring latency is paid
// once instead of once per segment. All traffic flows rank → rank+1 in
// both phases, and every rank enumerates the active (segment, round) pairs
// of a step in the same order, so the per-(source, tag) FIFO matching
// lines up without per-segment tags. Each block's combine chain is
// deterministic and identical on every rank, but runs in the opposite ring
// direction from AllreduceRing's time-reversed schedule — exact for
// integer types, reassociated (not bit-identical) for floating point.
func AllreduceRingPipelined(c comm.Comm, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type, segSize int) error {
	if err := checkReduceBufs(sendbuf, recvbuf, dt); err != nil {
		return err
	}
	if segSize < 1 {
		return fmt.Errorf("%w: segment size %d", ErrBadBuffer, segSize)
	}
	p := c.Size()
	me := c.Rank()
	copy(recvbuf, sendbuf)
	n := len(recvbuf)
	if p == 1 || n == 0 {
		return nil
	}
	segSize = alignSeg(segSize, dt.Size())
	nseg := (n + segSize - 1) / segSize
	next := (me + 1) % p
	prev := (me - 1 + p) % p
	rounds := 2 * (p - 1)
	mod := func(x int) int { return ((x % p) + p) % p }

	// Every segment but the last has the same length, so two layouts cover
	// all of them (hoisted out of the step loop to keep it allocation-free).
	layoutFull := FairLayoutAligned(segSize, p, dt.Size())
	layoutTail := FairLayoutAligned(n-(nseg-1)*segSize, p, dt.Size())
	layoutOf := func(s int) BlockLayout {
		if s == nseg-1 {
			return layoutTail
		}
		return layoutFull
	}

	// One step per pipeline slot: segment s is at ring round j = t − s.
	// Rounds j < p−1 are reduce-scatter (receive into staging, combine);
	// the rest are allgather (receive in place).
	type rx struct {
		dst   []byte
		stage []byte
	}
	width := minInt(rounds, nseg)
	rec := flight.RecorderOf(c)
	pend := make([]rx, 0, width)
	reqs := make([]comm.Request, 0, 2*width)
	for t := 0; t < rounds+nseg-1; t++ {
		if rec != nil {
			// One boundary per pipeline step; Arg carries the step index
			// (each step advances every in-flight segment by one round).
			rec.Record(flight.EvSegment, -1, 0, 0, uint64(t))
		}
		sLo := maxInt(0, t-rounds+1)
		sHi := minInt(t, nseg-1)
		pend = pend[:0]
		reqs = reqs[:0]
		var err error
		for s := sLo; s <= sHi && err == nil; s++ {
			j := t - s
			segment := recvbuf[s*segSize : minInt(s*segSize+segSize, n)]
			layout := layoutOf(s)
			var req comm.Request
			if j < p-1 {
				roff, rsz := layout(mod(me - j - 1))
				stage := scratch.Get(rsz)
				req, err = c.Irecv(prev, tagPipe, stage)
				if err != nil {
					scratch.Put(stage) // never posted; earlier ones leak
					break
				}
				pend = append(pend, rx{dst: segment[roff : roff+rsz], stage: stage})
			} else {
				roff, rsz := layout(mod(me - (j - (p - 1))))
				req, err = c.Irecv(prev, tagPipe, segment[roff:roff+rsz])
				if err != nil {
					break
				}
			}
			reqs = append(reqs, req)
		}
		for s := sLo; s <= sHi && err == nil; s++ {
			j := t - s
			segment := recvbuf[s*segSize : minInt(s*segSize+segSize, n)]
			layout := layoutOf(s)
			var soff, ssz int
			if j < p-1 {
				soff, ssz = layout(mod(me - j))
			} else {
				soff, ssz = layout(mod(me + 1 - (j - (p - 1))))
			}
			var req comm.Request
			req, err = c.Isend(next, tagPipe, segment[soff:soff+ssz])
			if err != nil {
				break
			}
			reqs = append(reqs, req)
		}
		if err != nil {
			return err // posted ops may still target staging: leak
		}
		// WaitAll settles every request even on error, so staging and the
		// in-place blocks are quiescent from here on.
		err = comm.WaitAll(reqs...)
		if err == nil {
			for _, x := range pend {
				if err = reduceInto(c, op, dt, x.dst, x.stage); err != nil {
					break
				}
			}
		}
		for _, x := range pend {
			scratch.Put(x.stage)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
