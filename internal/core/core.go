// Package core implements the paper's contribution: generalized collective
// algorithms (k-nomial tree, recursive multiplying, k-ring) for Bcast,
// Reduce, Gather, Allgather and Allreduce, together with the fixed-radix
// baselines they generalize (binomial tree, recursive doubling, ring) and
// the standard MPICH composite algorithms used for comparison
// (scatter-allgather bcast, reduce-scatter-allgather allreduce, Bruck
// allgather, linear algorithms).
//
// Every algorithm is a plain function over comm.Comm, so the same body runs
// on the in-memory transport, the TCP transport, and the machine simulator.
package core

import (
	"errors"
	"fmt"

	"exacoll/internal/comm"
	"exacoll/internal/datatype"
	"exacoll/internal/flight"
)

// Tag bases, one per algorithm family. Rounds within one collective share a
// tag: per-(source, tag) FIFO ordering makes that safe, exactly as in MPICH.
const (
	tagLinear   comm.Tag = comm.TagCollBase + 0x000
	tagBinomial comm.Tag = comm.TagCollBase + 0x100
	tagKnomial  comm.Tag = comm.TagCollBase + 0x200
	tagRecDbl   comm.Tag = comm.TagCollBase + 0x300
	tagRecMul   comm.Tag = comm.TagCollBase + 0x400
	tagSched    comm.Tag = comm.TagCollBase + 0x500
	tagScatter  comm.Tag = comm.TagCollBase + 0x600
	tagFold     comm.Tag = comm.TagCollBase + 0x700
	tagBruck    comm.Tag = comm.TagCollBase + 0x800
	tagRabens   comm.Tag = comm.TagCollBase + 0x900
	tagBarrier  comm.Tag = comm.TagCollBase + 0xa00
	tagAlltoall comm.Tag = comm.TagCollBase + 0xb00
	tagPipe     comm.Tag = comm.TagCollBase + 0xd00
	tagVColl    comm.Tag = comm.TagCollBase + 0xe00
	tagGKZ      comm.Tag = comm.TagCollBase + 0xf00
)

// Validation errors shared by all algorithms.
var (
	// ErrBadRadix reports a radix k outside the algorithm's valid range.
	ErrBadRadix = errors.New("core: radix k must be >= 2 (k-ring: >= 1)")
	// ErrBadRoot reports a root rank outside [0, Size).
	ErrBadRoot = errors.New("core: root out of range")
	// ErrBadBuffer reports mismatched buffer lengths.
	ErrBadBuffer = errors.New("core: buffer length mismatch")
)

func checkRoot(c comm.Comm, root int) error {
	if root < 0 || root >= c.Size() {
		return fmt.Errorf("%w: root %d, size %d", ErrBadRoot, root, c.Size())
	}
	return nil
}

func checkRadix(k int) error {
	if k < 2 {
		return fmt.Errorf("%w: got %d", ErrBadRadix, k)
	}
	return nil
}

// checkAllgatherBufs validates the uniform-contribution allgather layout:
// every rank contributes len(sendbuf) bytes and recvbuf holds p such blocks.
func checkAllgatherBufs(c comm.Comm, sendbuf, recvbuf []byte) error {
	if len(recvbuf) != len(sendbuf)*c.Size() {
		return fmt.Errorf("%w: allgather recvbuf=%d, want sendbuf(%d) * p(%d)",
			ErrBadBuffer, len(recvbuf), len(sendbuf), c.Size())
	}
	return nil
}

// checkReduceBufs validates sendbuf/recvbuf for reductions: equal lengths,
// multiple of the element size.
func checkReduceBufs(sendbuf, recvbuf []byte, t datatype.Type) error {
	if len(sendbuf) != len(recvbuf) {
		return fmt.Errorf("%w: reduce sendbuf=%d recvbuf=%d", ErrBadBuffer, len(sendbuf), len(recvbuf))
	}
	if len(sendbuf)%t.Size() != 0 {
		return fmt.Errorf("%w: buffer length %d not a multiple of %v size %d",
			ErrBadBuffer, len(sendbuf), t, t.Size())
	}
	return nil
}

// fairOffset returns the start offset of fair block i when n bytes are
// split across p blocks: block i spans [i*n/p, (i+1)*n/p). Blocks differ in
// size by at most one "unit" and cover n exactly.
func fairOffset(n, p, i int) int { return i * n / p }

// fairBlock returns (offset, size) of fair block i of n bytes over p blocks.
func fairBlock(n, p, i int) (off, size int) {
	off = fairOffset(n, p, i)
	return off, fairOffset(n, p, i+1) - off
}

// vrank maps an absolute rank to its rank relative to root (MPI idiom for
// rooted trees): vrank(root) = 0.
func vrank(rank, root, p int) int { return (rank - root + p) % p }

// absRank inverts vrank.
func absRank(vr, root, p int) int { return (vr + root) % p }

// reduceInto applies dst = dst op src and charges the γ (computation) term
// to the communicator's clock. When a flight recorder rides on c and the
// kernel is large enough for its duration to matter
// (flight.MinReduceBracketBytes), the application is bracketed with
// EvReduceBegin/EvReduceEnd so the merged timeline can attribute compute
// time per round (recording is two ring stores — no allocations,
// preserving the zero-alloc hot path).
func reduceInto(c comm.Comm, op datatype.Op, t datatype.Type, dst, src []byte) error {
	rec := flight.RecorderOf(c)
	if rec != nil && len(dst) >= flight.MinReduceBracketBytes {
		rec.Record(flight.EvReduceBegin, -1, 0, len(dst), 0)
		err := datatype.Apply(op, t, dst, src)
		rec.Record(flight.EvReduceEnd, -1, 0, len(dst), 0)
		if err != nil {
			return err
		}
		c.ChargeCompute(len(dst))
		return nil
	}
	err := datatype.Apply(op, t, dst, src)
	if err != nil {
		return err
	}
	c.ChargeCompute(len(dst))
	return nil
}

// ilog returns floor(log_k(x)) for x >= 1, k >= 2.
func ilog(k, x int) int {
	n := 0
	for v := k; v <= x; v *= k {
		n++
	}
	return n
}

// ipow returns k^e for small non-negative e.
func ipow(k, e int) int {
	v := 1
	for i := 0; i < e; i++ {
		v *= k
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
