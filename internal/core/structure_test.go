package core

import (
	"reflect"
	"testing"
)

// TestFigure1BinomialTree reproduces the structure of Fig. 1: the binomial
// (k=2) gather tree on 6 processes, plus its growth to 8.
func TestFigure1BinomialTree(t *testing.T) {
	tr := KnomialTree{P: 6, K: 2}
	wantParents := map[int]int{1: 0, 2: 0, 3: 2, 4: 0, 5: 4}
	if got := tr.Parent(0); got != -1 {
		t.Errorf("root parent = %d, want -1", got)
	}
	for v, want := range wantParents {
		if got := tr.Parent(v); got != want {
			t.Errorf("parent(%d) = %d, want %d", v, got, want)
		}
	}
	// Root's children, largest subtree first: 4 (weight 4), 2 (weight 2),
	// 1 (weight 1).
	got := tr.Children(0)
	want := []Child{{VRank: 4, Weight: 4}, {VRank: 2, Weight: 2}, {VRank: 1, Weight: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("children(0) = %v, want %v", got, want)
	}
	// Adding processes 6 and 7 (Fig. 1's placeholders) does not change the
	// existing structure but deepens node 4's subtree.
	tr8 := KnomialTree{P: 8, K: 2}
	for v, want := range wantParents {
		if got := tr8.Parent(v); got != want {
			t.Errorf("p=8: parent(%d) = %d, want %d", v, got, want)
		}
	}
	if got := tr8.Parent(6); got != 4 {
		t.Errorf("p=8: parent(6) = %d, want 4", got)
	}
	if got := tr8.Parent(7); got != 6 {
		t.Errorf("p=8: parent(7) = %d, want 6", got)
	}
	if d := tr8.Depth(); d != 3 {
		t.Errorf("p=8 depth = %d, want 3", d)
	}
}

// TestFigure2TrinomialTree reproduces Fig. 2: the trinomial (k=3) tree on 6
// processes; nodes 1 and 2 are children of 0, nodes 4 and 5 of 3, and the
// tree holds up to 9 nodes without increasing its depth of 2.
func TestFigure2TrinomialTree(t *testing.T) {
	tr := KnomialTree{P: 6, K: 3}
	wantParents := map[int]int{1: 0, 2: 0, 3: 0, 4: 3, 5: 3}
	for v, want := range wantParents {
		if got := tr.Parent(v); got != want {
			t.Errorf("parent(%d) = %d, want %d", v, got, want)
		}
	}
	// Fig. 2's placeholders: in a complete 9-node trinomial tree, 6 is a
	// child of 0 and 7, 8 children of 6 — still depth 2.
	tr9 := KnomialTree{P: 9, K: 3}
	if got := tr9.Parent(6); got != 0 {
		t.Errorf("p=9: parent(6) = %d, want 0", got)
	}
	if got := tr9.Parent(7); got != 6 {
		t.Errorf("p=9: parent(7) = %d, want 6", got)
	}
	if got := tr9.Parent(8); got != 6 {
		t.Errorf("p=9: parent(8) = %d, want 6", got)
	}
	if d := tr9.Depth(); d != 2 {
		t.Errorf("p=9 trinomial depth = %d, want 2", d)
	}
	// The binomial tree cannot: 8 processes need depth 3 at k=2.
	if d := (KnomialTree{P: 8, K: 2}).Depth(); d != 3 {
		t.Errorf("p=8 binomial depth = %d, want 3", d)
	}
}

// TestKnomialTreeInvariants checks tree well-formedness across a grid.
func TestKnomialTreeInvariants(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 27, 30, 64, 100} {
		for _, k := range []int{2, 3, 4, 5, 8, 16} {
			tr := KnomialTree{P: p, K: k}
			seen := make([]int, p)
			for v := 1; v < p; v++ {
				par := tr.Parent(v)
				if par < 0 || par >= v {
					t.Fatalf("p=%d k=%d: parent(%d) = %d out of order", p, k, v, par)
				}
				// v must appear in parent's child list exactly once.
				count := 0
				for _, ch := range tr.Children(par) {
					if ch.VRank == v {
						count++
					}
				}
				if count != 1 {
					t.Fatalf("p=%d k=%d: %d appears %d times in children(%d)", p, k, v, count, par)
				}
				seen[v]++
			}
			// Children lists must partition 1..p-1.
			total := 0
			for v := 0; v < p; v++ {
				for _, ch := range tr.Children(v) {
					if ch.VRank <= v || ch.VRank >= p {
						t.Fatalf("p=%d k=%d: bad child %d of %d", p, k, ch.VRank, v)
					}
					total++
				}
			}
			if total != p-1 {
				t.Fatalf("p=%d k=%d: %d child edges, want %d", p, k, total, p-1)
			}
			// Depth bounds every node's level.
			d := tr.Depth()
			for v := 0; v < p; v++ {
				if l := tr.Level(v); l > d {
					t.Fatalf("p=%d k=%d: level(%d)=%d > depth %d", p, k, v, l, d)
				}
			}
		}
	}
}

// TestFigure4RecursiveMultiplying reproduces Fig. 4: p=9, k=3 completes in
// 2 rounds with groups spaced 1 apart, then 3 apart.
func TestFigure4RecursiveMultiplying(t *testing.T) {
	if got := LargestKSmooth(9, 3); got != 9 {
		t.Fatalf("LargestKSmooth(9,3) = %d, want 9", got)
	}
	factors := FactorSchedule(9, 3)
	if !reflect.DeepEqual(factors, []int{3, 3}) {
		t.Fatalf("factors = %v, want [3 3]", factors)
	}
	weights := roundWeights(factors)
	if !reflect.DeepEqual(weights, []int{1, 3}) {
		t.Fatalf("weights = %v, want [1 3]", weights)
	}
	// Round 1: rank 4's group is {3,4,5} (adjacent); round 2: {1,4,7}.
	if got := groupMembers(4, factors, weights, 0); !reflect.DeepEqual(got, []int{3, 4, 5}) {
		t.Errorf("round-1 group of 4 = %v, want [3 4 5]", got)
	}
	if got := groupMembers(4, factors, weights, 1); !reflect.DeepEqual(got, []int{1, 4, 7}) {
		t.Errorf("round-2 group of 4 = %v, want [1 4 7]", got)
	}
	// Recursive doubling (Fig. 3): p=4 takes 2 rounds with spacing 1, 2.
	f2 := FactorSchedule(4, 2)
	if !reflect.DeepEqual(f2, []int{2, 2}) {
		t.Fatalf("FactorSchedule(4,2) = %v, want [2 2]", f2)
	}
}

// TestFactorScheduleProperties checks the mixed-radix schedule across a
// grid: factors multiply to the k-smooth size and never exceed k.
func TestFactorScheduleProperties(t *testing.T) {
	for p := 1; p <= 200; p++ {
		for _, k := range []int{2, 3, 4, 5, 8, 16} {
			q := LargestKSmooth(p, k)
			if q > p || q < 1 {
				t.Fatalf("LargestKSmooth(%d,%d) = %d out of range", p, k, q)
			}
			if 2*q < p {
				t.Fatalf("LargestKSmooth(%d,%d) = %d below p/2 (fold too large)", p, k, q)
			}
			prod := 1
			for _, f := range FactorSchedule(q, k) {
				if f < 2 || f > k {
					t.Fatalf("FactorSchedule(%d,%d) has bad factor %d", q, k, f)
				}
				prod *= f
			}
			if prod != q {
				t.Fatalf("FactorSchedule(%d,%d) product %d != %d", q, k, prod, q)
			}
		}
	}
}

// TestRingScheduleProperties validates ring schedules (Fig. 5): p−1 rounds
// and the exactly-once dissemination invariant.
func TestRingScheduleProperties(t *testing.T) {
	for _, p := range []int{2, 3, 4, 5, 8, 13, 16, 32} {
		s := RingSchedule(p)
		if err := s.Validate(); err != nil {
			t.Fatalf("ring p=%d: %v", p, err)
		}
		if got := s.NumRounds(); got != p-1 {
			t.Fatalf("ring p=%d: %d rounds, want %d", p, got, p-1)
		}
		// Every edge connects ring neighbors.
		for _, round := range s.Rounds {
			for _, e := range round {
				if e.To != (e.From+1)%p {
					t.Fatalf("ring p=%d: edge %+v is not neighbor-only", p, e)
				}
			}
		}
	}
}

// TestFigure6KRing reproduces Fig. 6: p=6, k=3 has 4 intra-group rounds and
// 1 inter-group round (5 total), and Group 0's inter-group traffic is 6
// partitions (eq. 13) versus the classic ring's 10 (eq. 14).
func TestFigure6KRing(t *testing.T) {
	s, err := KRingSchedule(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.NumRounds(); got != 5 {
		t.Fatalf("k-ring p=6 k=3: %d rounds, want 5", got)
	}
	intra, inter := KRingRoundCounts(6, 3)
	if intra != 4 || inter != 1 {
		t.Fatalf("round counts = (%d intra, %d inter), want (4, 1)", intra, inter)
	}
	// Inter-group data per group, in units of the partition size φ = n/6:
	// k-ring sends+receives 6φ, ring 10φ.
	n := 6 // one byte per partition
	if got := InterGroupBytes(n, 6, 3); got != 6 {
		t.Errorf("k-ring inter-group bytes = %v, want 6", got)
	}
	if got := InterGroupBytes(n, 6, 1); got != 10 {
		t.Errorf("ring inter-group bytes = %v, want 10", got)
	}
	// Count inter-group block crossings in the schedule itself: edges
	// between groups carry 3 blocks out of group 0 and 3 in (6 total).
	group := func(r int) int { return r / 3 }
	crossings := 0
	for _, round := range s.Rounds {
		for _, e := range round {
			if group(e.From) != group(e.To) && (group(e.From) == 0 || group(e.To) == 0) {
				crossings++
			}
		}
	}
	if crossings != 6 {
		t.Errorf("schedule inter-group block crossings for group 0 = %d, want 6", crossings)
	}
}

// TestKRingScheduleProperties validates k-ring schedules across a grid,
// including non-uniform group sizes (p % k != 0) and the degenerate cases
// k=1 and k>=p, which must match the classic ring round count.
func TestKRingScheduleProperties(t *testing.T) {
	for _, p := range []int{2, 3, 4, 5, 6, 7, 8, 9, 12, 13, 16, 24, 30} {
		for _, k := range []int{1, 2, 3, 4, 5, 8, 16, 40} {
			s, err := KRingSchedule(p, k)
			if err != nil {
				t.Fatalf("p=%d k=%d: %v", p, k, err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("p=%d k=%d: %v", p, k, err)
			}
			if k == 1 || k >= p {
				if got := s.NumRounds(); got != p-1 {
					t.Fatalf("degenerate p=%d k=%d: %d rounds, want %d", p, k, got, p-1)
				}
			}
			if p%k == 0 && k <= p {
				intra, inter := KRingRoundCounts(p, k)
				g := p / k
				if intra != g*(k-1) || inter != g-1 {
					t.Fatalf("p=%d k=%d: counts (%d,%d), want (%d,%d) per eq. 11",
						p, k, intra, inter, g*(k-1), g-1)
				}
			}
		}
	}
}

// TestScheduleValidateRejectsBad ensures Validate catches broken schedules.
func TestScheduleValidateRejectsBad(t *testing.T) {
	// Missing delivery: rank 2 never gets block 0.
	s := &Schedule{P: 3, Rounds: []Round{
		{{From: 0, To: 1, Block: 0}, {From: 1, To: 2, Block: 1}, {From: 2, To: 0, Block: 2}},
		{{From: 0, To: 1, Block: 2}, {From: 1, To: 2, Block: 1}},
	}}
	if err := s.Validate(); err == nil {
		t.Error("want error for duplicate/missing deliveries")
	}
	// Sending a block not yet owned.
	s2 := &Schedule{P: 2, Rounds: []Round{{{From: 0, To: 1, Block: 1}}}}
	if err := s2.Validate(); err == nil {
		t.Error("want error for unowned block send")
	}
	// Self edge.
	s3 := &Schedule{P: 2, Rounds: []Round{{{From: 0, To: 0, Block: 0}}}}
	if err := s3.Validate(); err == nil {
		t.Error("want error for self edge")
	}
}
