package core

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"exacoll/internal/comm"
)

// alltoallBlock is rank src's block destined for rank dst.
func alltoallBlock(src, dst, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte((src*67 + dst*31 + i*13 + 3) % 251)
	}
	return b
}

// checkAlltoall runs one alltoall implementation over a grid and verifies
// every (src, dst) block.
func checkAlltoall(t *testing.T, name string, fn func(c comm.Comm, s, r []byte) error, p, n int) {
	t.Helper()
	runOnWorld(t, p, func(c comm.Comm) error {
		me := c.Rank()
		sendbuf := make([]byte, 0, n*p)
		for dst := 0; dst < p; dst++ {
			sendbuf = append(sendbuf, alltoallBlock(me, dst, n)...)
		}
		recvbuf := make([]byte, n*p)
		if err := fn(c, sendbuf, recvbuf); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		for src := 0; src < p; src++ {
			if !bytes.Equal(recvbuf[src*n:(src+1)*n], alltoallBlock(src, me, n)) {
				return fmt.Errorf("%s: p=%d n=%d block from %d wrong at rank %d", name, p, n, src, me)
			}
		}
		return nil
	})
}

// TestAlltoallConformance runs all three algorithms over a (p, n) grid.
func TestAlltoallConformance(t *testing.T) {
	algs := map[string]func(c comm.Comm, s, r []byte) error{
		"linear":   AlltoallLinear,
		"pairwise": AlltoallPairwise,
		"bruck":    AlltoallBruck,
	}
	for name, fn := range algs {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, p := range []int{1, 2, 3, 4, 5, 7, 8, 13, 16} {
				for _, n := range []int{1, 8, 100, 1000} {
					checkAlltoall(t, name, fn, p, n)
				}
			}
		})
	}
}

// TestAlltoallBadArgs checks buffer validation.
func TestAlltoallBadArgs(t *testing.T) {
	runOnWorld(t, 2, func(c comm.Comm) error {
		if err := AlltoallLinear(c, make([]byte, 4), make([]byte, 8)); err == nil {
			return fmt.Errorf("want length-mismatch error")
		}
		if err := AlltoallBruck(c, make([]byte, 3), make([]byte, 3)); err == nil {
			return fmt.Errorf("want divisibility error")
		}
		return nil
	})
}

// TestQuickAlltoallAgree: testing/quick — Bruck and pairwise agree with
// linear for random geometry.
func TestQuickAlltoallAgree(t *testing.T) {
	prop := func(pRaw, nRaw uint32) bool {
		p := int(pRaw%10) + 1
		n := int(nRaw%257) + 1
		for _, fn := range []func(c comm.Comm, s, r []byte) error{AlltoallPairwise, AlltoallBruck} {
			fn := fn
			err := runQuickWorld(p, func(c comm.Comm) error {
				me := c.Rank()
				sendbuf := make([]byte, 0, n*p)
				for dst := 0; dst < p; dst++ {
					sendbuf = append(sendbuf, alltoallBlock(me, dst, n)...)
				}
				recvbuf := make([]byte, n*p)
				if err := fn(c, sendbuf, recvbuf); err != nil {
					return err
				}
				for src := 0; src < p; src++ {
					if !bytes.Equal(recvbuf[src*n:(src+1)*n], alltoallBlock(src, me, n)) {
						return fmt.Errorf("block %d wrong", src)
					}
				}
				return nil
			})
			if err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestBarrierKDissemination checks the generalized barrier's
// synchronization property on the simulator-free substrate: all ranks
// complete, across radices and sizes (the timing property is tested in
// internal/bench on the simulator).
func TestBarrierKDissemination(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 16, 17} {
		for _, k := range []int{2, 3, 4, 8} {
			p, k := p, k
			runOnWorld(t, p, func(c comm.Comm) error {
				for iter := 0; iter < 3; iter++ {
					if err := BarrierKDissemination(c, k); err != nil {
						return err
					}
				}
				return nil
			})
		}
	}
	runOnWorld(t, 4, func(c comm.Comm) error {
		if err := BarrierKDissemination(c, 1); err == nil {
			return fmt.Errorf("want ErrBadRadix for k=1")
		}
		return nil
	})
}
