package core

import (
	"fmt"
	"testing"

	"exacoll/internal/comm"
	"exacoll/internal/datatype"
	"exacoll/internal/machine"
	"exacoll/internal/simnet"
	"exacoll/internal/transport/mem"
)

// TestZeroCountTableI runs every Table I algorithm with zero-length
// buffers — the MPI count=0 conformance case — on both the in-memory
// transport and the machine simulator. A zero-count collective must
// complete successfully (and trivially) on every rank; it must not hang,
// error, or index out of range on empty fair blocks.
func TestZeroCountTableI(t *testing.T) {
	t.Parallel()
	substrates := []struct {
		name string
		run  func(t *testing.T, p int, fn func(c comm.Comm) error)
	}{
		{"mem", func(t *testing.T, p int, fn func(c comm.Comm) error) {
			t.Helper()
			if err := mem.NewWorld(p).Run(fn); err != nil {
				t.Fatalf("mem: %v", err)
			}
		}},
		{"simnet", func(t *testing.T, p int, fn func(c comm.Comm) error) {
			t.Helper()
			sim, err := simnet.New(machine.Testbox(), p)
			if err != nil {
				t.Fatal(err)
			}
			if err := sim.Run(fn); err != nil {
				t.Fatalf("simnet: %v", err)
			}
		}},
	}
	for _, alg := range TableIAlgorithms() {
		alg := alg
		t.Run(alg.Name, func(t *testing.T) {
			t.Parallel()
			for _, sub := range substrates {
				for _, p := range []int{1, 2, 3, 5, 8} {
					if alg.Pow2Only && !isPow2(p) {
						continue
					}
					for _, k := range []int{alg.DefaultK, 3} {
						sub.run(t, p, func(c comm.Comm) error {
							a := zeroArgs(alg, k)
							if err := alg.Run(c, a); err != nil {
								return fmt.Errorf("%s p=%d k=%d on %s: %w", alg.Name, p, k, sub.name, err)
							}
							return nil
						})
					}
				}
			}
		})
	}
}

// zeroArgs builds a zero-count argument bundle for the algorithm's op.
func zeroArgs(alg *Algorithm, k int) Args {
	return Args{SendBuf: []byte{}, RecvBuf: []byte{},
		Op: datatype.Sum, Type: datatype.Float64, Root: 0, K: k}
}

// TestZeroCountSegmented covers the segmented algorithms' zero-count path
// (segment derivation must not divide by zero or reject n=0).
func TestZeroCountSegmented(t *testing.T) {
	t.Parallel()
	for _, name := range []string{
		"bcast_knomial_pipelined", "bcast_chain",
		"reduce_knomial_segmented", "allreduce_ring_pipelined",
	} {
		alg, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 2, 5} {
			runOnWorld(t, p, func(c comm.Comm) error {
				return alg.Run(c, zeroArgs(alg, 2))
			})
		}
	}
}
