package core

import (
	"exacoll/internal/comm"
)

// BarrierDissemination synchronizes all ranks with the classic
// dissemination barrier (Hensgen/Finkel/Manber): ⌈log2 p⌉ rounds in which
// rank r sends a zero-byte token to (r + 2^i) mod p and receives one from
// (r − 2^i) mod p. The benchmark harness inserts it between timed
// iterations, mirroring the OSU microbenchmarks.
func BarrierDissemination(c comm.Comm) error {
	return BarrierKDissemination(c, 2)
}

// BarrierKDissemination is the n-way (radix-k) dissemination barrier of
// Hoefler et al. (the paper's reference [19]) — the same generalization
// idea applied to synchronization: in round i every rank exchanges tokens
// with the k−1 ranks at distances j·k^i (j = 1..k−1), completing in
// ⌈log_k p⌉ rounds. Like the k-nomial tree, larger k trades messages per
// round (overlapped across NIC ports) for rounds.
func BarrierKDissemination(c comm.Comm, k int) error {
	if err := checkRadix(k); err != nil {
		return err
	}
	p := c.Size()
	if p == 1 {
		return nil
	}
	r := c.Rank()
	var token [1]byte
	for dist := 1; dist < p; dist *= k {
		reqs := make([]comm.Request, 0, 2*(k-1))
		ins := make([][1]byte, 0, k-1)
		for j := 1; j < k && j*dist < p; j++ {
			from := ((r-j*dist)%p + p) % p
			ins = append(ins, [1]byte{})
			req, err := c.Irecv(from, tagBarrier, ins[len(ins)-1][:])
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		for j := 1; j < k && j*dist < p; j++ {
			to := (r + j*dist) % p
			req, err := c.Isend(to, tagBarrier, token[:])
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		if err := comm.WaitAll(reqs...); err != nil {
			return err
		}
	}
	return nil
}
