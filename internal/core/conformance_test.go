package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"testing"

	"exacoll/internal/comm"
	"exacoll/internal/datatype"
	"exacoll/internal/transport/mem"
)

// rankPayload is rank r's deterministic n-byte contribution.
func rankPayload(r, n int) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte((r*131 + i*7 + 11) % 251)
	}
	return buf
}

// rankVector is rank r's deterministic float64 contribution (elems values
// are small integers so sums are exact).
func rankVector(r, elems int) []float64 {
	v := make([]float64, elems)
	for i := range v {
		v[i] = float64((r+1)*(i%17+1) - i%5)
	}
	return v
}

// expectedSum is the element-wise sum of all ranks' vectors.
func expectedSum(p, elems int) []float64 {
	sum := make([]float64, elems)
	for r := 0; r < p; r++ {
		for i, x := range rankVector(r, elems) {
			sum[i] += x
		}
	}
	return sum
}

// runOnWorld executes fn once per rank on a fresh mem world.
func runOnWorld(t *testing.T, p int, fn func(c comm.Comm) error) {
	t.Helper()
	w := mem.NewWorld(p)
	if err := w.Run(fn); err != nil {
		t.Fatalf("collective failed: %v", err)
	}
}

// checkCollective runs algorithm alg on p ranks with the given parameters
// and verifies the result of the collective's semantics.
func checkCollective(t *testing.T, alg *Algorithm, p, n, root, k int) {
	t.Helper()
	if alg.Pow2Only && !isPow2(p) {
		return
	}
	switch alg.Op {
	case OpBcast:
		payload := rankPayload(root, n)
		runOnWorld(t, p, func(c comm.Comm) error {
			buf := make([]byte, n)
			if c.Rank() == root {
				copy(buf, payload)
			}
			if err := alg.Run(c, Args{SendBuf: buf, Root: root, K: k}); err != nil {
				return err
			}
			if !bytes.Equal(buf, payload) {
				return fmt.Errorf("bcast result mismatch at rank %d", c.Rank())
			}
			return nil
		})

	case OpReduce, OpAllreduce:
		elems := n / 8
		want := datatype.EncodeFloat64(expectedSum(p, elems))
		runOnWorld(t, p, func(c comm.Comm) error {
			sendbuf := datatype.EncodeFloat64(rankVector(c.Rank(), elems))
			recvbuf := make([]byte, len(sendbuf))
			a := Args{SendBuf: sendbuf, RecvBuf: recvbuf,
				Op: datatype.Sum, Type: datatype.Float64, Root: root, K: k}
			if err := alg.Run(c, a); err != nil {
				return err
			}
			if alg.Op == OpAllreduce || c.Rank() == root {
				if !bytes.Equal(recvbuf, want) {
					return fmt.Errorf("%v result mismatch at rank %d", alg.Op, c.Rank())
				}
			}
			return nil
		})

	case OpGather, OpAllgather:
		want := make([]byte, 0, n*p)
		for r := 0; r < p; r++ {
			want = append(want, rankPayload(r, n)...)
		}
		runOnWorld(t, p, func(c comm.Comm) error {
			sendbuf := rankPayload(c.Rank(), n)
			var recvbuf []byte
			if alg.Op == OpAllgather || c.Rank() == root {
				recvbuf = make([]byte, n*p)
			}
			if err := alg.Run(c, Args{SendBuf: sendbuf, RecvBuf: recvbuf, Root: root, K: k}); err != nil {
				return err
			}
			if alg.Op == OpAllgather || c.Rank() == root {
				if !bytes.Equal(recvbuf, want) {
					return fmt.Errorf("%v result mismatch at rank %d", alg.Op, c.Rank())
				}
			}
			return nil
		})

	case OpScatter:
		runOnWorld(t, p, func(c comm.Comm) error {
			var sendbuf []byte
			if c.Rank() == root {
				sendbuf = make([]byte, 0, n*p)
				for r := 0; r < p; r++ {
					sendbuf = append(sendbuf, rankPayload(r, n)...)
				}
			}
			recvbuf := make([]byte, n)
			if err := alg.Run(c, Args{SendBuf: sendbuf, RecvBuf: recvbuf, Root: root, K: k}); err != nil {
				return err
			}
			if !bytes.Equal(recvbuf, rankPayload(c.Rank(), n)) {
				return fmt.Errorf("scatter result mismatch at rank %d", c.Rank())
			}
			return nil
		})

	case OpReduceScatter:
		elems := n / 8
		nn := elems * 8
		sum := expectedSum(p, elems)
		runOnWorld(t, p, func(c comm.Comm) error {
			sendbuf := datatype.EncodeFloat64(rankVector(c.Rank(), elems))
			layout := FairLayoutAligned(nn, p, 8)
			off, sz := layout(c.Rank())
			recvbuf := make([]byte, sz)
			a := Args{SendBuf: sendbuf, RecvBuf: recvbuf,
				Op: datatype.Sum, Type: datatype.Float64, K: k}
			if err := alg.Run(c, a); err != nil {
				return err
			}
			want := datatype.EncodeFloat64(sum)[off : off+sz]
			if !bytes.Equal(recvbuf, want) {
				return fmt.Errorf("reduce-scatter block mismatch at rank %d", c.Rank())
			}
			return nil
		})

	case OpScan:
		elems := n / 8
		runOnWorld(t, p, func(c comm.Comm) error {
			sendbuf := datatype.EncodeFloat64(rankVector(c.Rank(), elems))
			recvbuf := make([]byte, len(sendbuf))
			a := Args{SendBuf: sendbuf, RecvBuf: recvbuf,
				Op: datatype.Sum, Type: datatype.Float64, K: k}
			if err := alg.Run(c, a); err != nil {
				return err
			}
			if !bytes.Equal(recvbuf, datatype.EncodeFloat64(prefixSum(c.Rank(), elems))) {
				return fmt.Errorf("scan mismatch at rank %d", c.Rank())
			}
			return nil
		})

	case OpAlltoall:
		runOnWorld(t, p, func(c comm.Comm) error {
			me := c.Rank()
			sendbuf := make([]byte, 0, n*p)
			for dst := 0; dst < p; dst++ {
				sendbuf = append(sendbuf, rankPayload(me*1000+dst, n)...)
			}
			recvbuf := make([]byte, n*p)
			if err := alg.Run(c, Args{SendBuf: sendbuf, RecvBuf: recvbuf, K: k}); err != nil {
				return err
			}
			for src := 0; src < p; src++ {
				if !bytes.Equal(recvbuf[src*n:(src+1)*n], rankPayload(src*1000+me, n)) {
					return fmt.Errorf("alltoall block from %d wrong at rank %d", src, me)
				}
			}
			return nil
		})

	case OpAllgatherv:
		counts := conformanceCounts(p, n)
		off := prefixOffsets(counts)
		want := make([]byte, 0, off[p])
		for r := 0; r < p; r++ {
			want = append(want, rankPayload(r, counts[r])...)
		}
		runOnWorld(t, p, func(c comm.Comm) error {
			me := c.Rank()
			recvbuf := make([]byte, off[p])
			a := Args{SendBuf: rankPayload(me, counts[me]), RecvBuf: recvbuf, Counts: counts, K: k}
			if err := alg.Run(c, a); err != nil {
				return err
			}
			if !bytes.Equal(recvbuf, want) {
				return fmt.Errorf("allgatherv result mismatch at rank %d", me)
			}
			return nil
		})

	case OpReduceScatterv:
		counts := conformanceCounts(p, n)
		off := prefixOffsets(counts)
		sum := expectedSum(p, off[p]/8)
		runOnWorld(t, p, func(c comm.Comm) error {
			me := c.Rank()
			sendbuf := datatype.EncodeFloat64(rankVector(me, off[p]/8))
			recvbuf := make([]byte, counts[me])
			a := Args{SendBuf: sendbuf, RecvBuf: recvbuf, Counts: counts,
				Op: datatype.Sum, Type: datatype.Float64, K: k}
			if err := alg.Run(c, a); err != nil {
				return err
			}
			want := datatype.EncodeFloat64(sum)[off[me]:off[me+1]]
			if !bytes.Equal(recvbuf, want) {
				return fmt.Errorf("reduce-scatterv block mismatch at rank %d", me)
			}
			return nil
		})

	case OpAlltoallv:
		m := conformanceCountMatrix(p, n)
		runOnWorld(t, p, func(c comm.Comm) error {
			me := c.Rank()
			var sendbuf []byte
			for dst := 0; dst < p; dst++ {
				sendbuf = append(sendbuf, rankPayload(me*1000+dst, m[me*p+dst])...)
			}
			recvTotal := 0
			for src := 0; src < p; src++ {
				recvTotal += m[src*p+me]
			}
			recvbuf := make([]byte, recvTotal)
			if err := alg.Run(c, Args{SendBuf: sendbuf, RecvBuf: recvbuf, Counts: m, K: k}); err != nil {
				return err
			}
			pos := 0
			for src := 0; src < p; src++ {
				sz := m[src*p+me]
				if !bytes.Equal(recvbuf[pos:pos+sz], rankPayload(src*1000+me, sz)) {
					return fmt.Errorf("alltoallv block from %d wrong at rank %d", src, me)
				}
				pos += sz
			}
			return nil
		})

	default:
		t.Fatalf("unhandled op %v", alg.Op)
	}
}

// conformanceCounts is the deterministic ragged per-rank byte-count vector
// for the v-collective cases: multiples of 8 (element-aligned for float64
// reductions) scaled with n, with genuine zero counts sprinkled in.
func conformanceCounts(p, n int) []int {
	unit := 8 * (n/32 + 1)
	counts := make([]int, p)
	for r := range counts {
		counts[r] = ((r * 37) % 5) * unit
	}
	return counts
}

// conformanceCountMatrix is the ragged p×p alltoallv byte-count matrix,
// zeros included.
func conformanceCountMatrix(p, n int) []int {
	unit := 8 * (n/32 + 1)
	m := make([]int, p*p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			m[i*p+j] = ((i*31 + j*17) % 5) * unit
		}
	}
	return m
}

var conformanceSizes = []int{8, 64, 1024, 8192}

var conformanceP = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 16, 17, 24, 32}

// TestConformanceAllAlgorithms runs every registered algorithm over a grid
// of communicator sizes, message sizes, radices and roots, checking the
// collective's result against a locally computed expectation.
func TestConformanceAllAlgorithms(t *testing.T) {
	for _, alg := range Algorithms(-1) {
		alg := alg
		t.Run(alg.Name, func(t *testing.T) {
			t.Parallel()
			ks := []int{0}
			if alg.Generalized {
				ks = []int{2, 3, 4, 5, 8}
				if alg.Kernel == KernelKRing {
					ks = append(ks, 1)
				}
			}
			for _, p := range conformanceP {
				for _, n := range conformanceSizes {
					for _, k := range ks {
						if k > p && k != 0 && alg.Kernel != KernelKRing {
							// k-nomial and rec-mul accept k > p, but skip
							// most of the redundant grid; keep one case.
							if k != 8 || p > 8 {
								continue
							}
						}
						roots := []int{0}
						if p > 1 && (alg.Op == OpBcast || alg.Op == OpReduce || alg.Op == OpGather || alg.Op == OpScatter) {
							roots = []int{0, p - 1, p / 2}
						}
						for _, root := range roots {
							checkCollective(t, alg, p, n, root, k)
						}
					}
				}
			}
		})
	}
}

// TestConformanceOddSizes exercises message sizes that do not divide evenly
// into fair blocks (n mod p != 0) and tiny messages (n < p), which stress
// zero-size fair blocks in the scatter-allgather compositions.
func TestConformanceOddSizes(t *testing.T) {
	odd := []int{16, 24, 88, 104, 1000}
	for _, alg := range Algorithms(-1) {
		alg := alg
		t.Run(alg.Name, func(t *testing.T) {
			t.Parallel()
			k := 3
			if alg.Kernel == KernelKRing {
				k = 2
			}
			if !alg.Generalized {
				k = 0
			}
			for _, p := range []int{5, 6, 8, 13} {
				for _, n := range odd {
					checkCollective(t, alg, p, n, p-1, k)
				}
			}
		})
	}
}

// TestReduceOps checks every (op, type) pair through one tree and one ring
// reduction.
func TestReduceOps(t *testing.T) {
	const p = 6
	cases := []struct {
		op datatype.Op
		dt datatype.Type
	}{
		{datatype.Sum, datatype.Float64},
		{datatype.Prod, datatype.Float32},
		{datatype.Max, datatype.Int64},
		{datatype.Min, datatype.Int32},
		{datatype.BAnd, datatype.Uint8},
		{datatype.BOr, datatype.Uint8},
		{datatype.Sum, datatype.Int32},
		{datatype.Max, datatype.Float64},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%v_%v", tc.op, tc.dt), func(t *testing.T) {
			elems := 50
			es := tc.dt.Size()
			input := func(r int) []byte {
				buf := make([]byte, elems*es)
				for i := range buf {
					buf[i] = byte((r*37 + i*13 + 5) % 200)
				}
				if tc.dt == datatype.Float64 {
					// Build well-behaved floats instead of raw bit patterns.
					v := make([]float64, elems)
					for i := range v {
						v[i] = 1 + float64((r+i)%3)/4 // keeps products small
					}
					return datatype.EncodeFloat64(v)
				}
				if tc.dt == datatype.Float32 {
					b := make([]byte, elems*4)
					for i := 0; i < elems; i++ {
						binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(1+float32((r+i)%3)/4))
					}
					return b
				}
				return buf
			}
			want := input(0)
			for r := 1; r < p; r++ {
				if err := datatype.Apply(tc.op, tc.dt, want, input(r)); err != nil {
					t.Fatal(err)
				}
			}
			algs := []string{"allreduce_recdbl", "allreduce_ring", "allreduce_recmul", "allreduce_rabenseifner", "allreduce_kring"}
			for _, name := range algs {
				alg, err := Lookup(name)
				if err != nil {
					t.Fatal(err)
				}
				runOnWorld(t, p, func(c comm.Comm) error {
					sendbuf := input(c.Rank())
					recvbuf := make([]byte, len(sendbuf))
					a := Args{SendBuf: sendbuf, RecvBuf: recvbuf, Op: tc.op, Type: tc.dt, K: 3}
					if err := alg.Run(c, a); err != nil {
						return err
					}
					if !bytes.Equal(recvbuf, want) {
						return fmt.Errorf("%s: op %v/%v mismatch at rank %d", name, tc.op, tc.dt, c.Rank())
					}
					return nil
				})
			}
		})
	}
}

// TestBadArgs checks argument validation paths.
func TestBadArgs(t *testing.T) {
	runOnWorld(t, 2, func(c comm.Comm) error {
		if err := BcastKnomial(c, nil, 5, 2); !errors.Is(err, ErrBadRoot) {
			return fmt.Errorf("want ErrBadRoot, got %v", err)
		}
		if err := BcastKnomial(c, nil, 0, 1); !errors.Is(err, ErrBadRadix) {
			return fmt.Errorf("want ErrBadRadix, got %v", err)
		}
		if err := AllgatherRing(c, make([]byte, 8), make([]byte, 8)); !errors.Is(err, ErrBadBuffer) {
			return fmt.Errorf("want ErrBadBuffer, got %v", err)
		}
		return nil
	})
}
