package core

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"exacoll/internal/buf"
	"exacoll/internal/comm"
	"exacoll/internal/datatype"
	"exacoll/internal/transport/faulty"
	"exacoll/internal/transport/mem"
)

// TestVCollCountOverflow covers the arithmetic guard rails: count vectors
// and matrices whose totals (or datatype-scaled totals) overflow int must
// be rejected with ErrBadBuffer before any offset is computed.
func TestVCollCountOverflow(t *testing.T) {
	huge := math.MaxInt/2 + 1
	if _, err := checkCounts(2, []int{huge, huge}); !errors.Is(err, ErrBadBuffer) {
		t.Errorf("checkCounts overflow: got %v, want ErrBadBuffer", err)
	}
	if _, err := checkCountMatrix(2, []int{1, huge, huge, 1}); !errors.Is(err, ErrBadBuffer) {
		t.Errorf("checkCountMatrix overflow: got %v, want ErrBadBuffer", err)
	}
	// Element counts that fit in int but overflow when scaled by the
	// datatype size — the gca-facing hazard.
	if _, err := ScaleCounts([]int{math.MaxInt/8 + 1}, datatype.Float64); !errors.Is(err, ErrBadBuffer) {
		t.Errorf("ScaleCounts per-entry overflow: got %v, want ErrBadBuffer", err)
	}
	if _, err := ScaleCounts([]int{math.MaxInt / 8, math.MaxInt / 8}, datatype.Float64); !errors.Is(err, ErrBadBuffer) {
		t.Errorf("ScaleCounts total overflow: got %v, want ErrBadBuffer", err)
	}
	if out, err := ScaleCounts([]int{3, 0, 5}, datatype.Float64); err != nil ||
		out[0] != 24 || out[1] != 0 || out[2] != 40 {
		t.Errorf("ScaleCounts(3,0,5 × 8) = %v, %v", out, err)
	}
	// And through an algorithm entry point: the run must fail cleanly, not
	// corrupt offsets.
	w := mem.NewWorld(2)
	defer w.Close()
	err := w.Run(func(c comm.Comm) error {
		if err := AllgathervRing(c, nil, []int{huge, huge}, nil); !errors.Is(err, ErrBadBuffer) {
			return fmt.Errorf("allgatherv overflow: got %v, want ErrBadBuffer", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// errPostInjected marks a failure injected at Irecv post time — the path
// the faulty transport cannot reach (it fails receives at completion).
var errPostInjected = errors.New("vcoll_leak_test: injected Irecv post failure")

// irecvPostFail fails every Irecv after the first n with an immediate post
// error, the failure mode of a transport that cannot allocate or route the
// receive (faulty injects receive errors only at completion, so this path
// needs its own wrapper).
type irecvPostFail struct {
	comm.Comm
	allowed atomic.Int64
}

func (f *irecvPostFail) Irecv(from int, tag comm.Tag, b []byte) (comm.Request, error) {
	if f.allowed.Add(-1) < 0 {
		return nil, errPostInjected
	}
	return f.Comm.Irecv(from, tag, b)
}

// leakStats runs fn and returns the scratch pool's outstanding-buffer
// growth across it. The pool counters are process-global, so callers must
// have quiesced every world before reading (tests here close their worlds
// inside fn).
func leakStats(fn func()) uint64 {
	before := buf.Stats()
	fn()
	return buf.Stats().Outstanding() - before.Outstanding()
}

// TestGathervLeakOnIrecvPostError is the scratch-leak regression test for
// GathervKnomial's receive-posting error path: when the i-th child Irecv
// fails at post, the already-posted receives must be settled and the
// packed staging buffer returned to the pool. Before the settle-then-Put
// fix the buffer leaked (and with pool poisoning on, an unsettled receive
// completing into a recycled buffer corrupts an unrelated collective).
func TestGathervLeakOnIrecvPostError(t *testing.T) {
	const p = 8
	const root = 0
	counts := vcounts(p)
	total := prefixOffsets(counts)[p]
	// Fail the root's 1st, 2nd, ... Irecv post: with k=2 the root has
	// three children, so the sweep covers empty, partial, and full settle
	// sets (the last budget succeeds outright).
	for _, allow := range []int{0, 1, 2, 99} {
		allow := allow
		leaked := leakStats(func() {
			w := mem.NewWorld(p)
			defer w.Close()
			err := w.Run(func(c comm.Comm) error {
				if c.Rank() == root {
					f := &irecvPostFail{Comm: c}
					f.allowed.Store(int64(allow))
					c = f
				}
				var recvbuf []byte
				if c.Rank() == root {
					recvbuf = make([]byte, total)
				}
				return GathervKnomial(c, rankPayload(c.Rank(), counts[c.Rank()]), counts, recvbuf, root, 2)
			})
			if allow >= 99 {
				if err != nil {
					t.Errorf("allow=%d: unexpected failure: %v", allow, err)
				}
			} else if !errors.Is(err, errPostInjected) && !errors.Is(err, comm.ErrClosed) {
				t.Errorf("allow=%d: got %v, want injected post error", allow, err)
			}
		})
		if leaked != 0 {
			t.Errorf("allow=%d: %d scratch buffers leaked on Gatherv error path", allow, leaked)
		}
	}
}

// TestScattervLeakOnSendError is the matching regression for
// ScattervKnomial's send-posting error path, driven by the faulty
// transport's world-wide send budget: whichever rank's Isend post fails
// must settle its posted sends and return the packed buffer. The sweep
// moves the failure point across the tree; every world must come back
// with zero outstanding pool buffers.
func TestScattervLeakOnSendError(t *testing.T) {
	const p = 8
	const root = 0
	counts := vcounts(p)
	total := prefixOffsets(counts)[p]
	for _, budget := range []int{0, 1, 2, 3, 5, 1 << 20} {
		budget := budget
		leaked := leakStats(func() {
			w := mem.NewWorld(p)
			defer w.Close()
			b := faulty.NewBudget(budget)
			err := w.Run(func(c comm.Comm) error {
				fc := faulty.Wrap(c, b)
				var sendbuf []byte
				if c.Rank() == root {
					sendbuf = rankPayload(99, total)
				}
				return ScattervKnomial(fc, sendbuf, counts, make([]byte, counts[c.Rank()]), root, 3)
			})
			if budget >= 1<<20 {
				if err != nil {
					t.Errorf("budget=%d: unexpected failure: %v", budget, err)
				}
			} else if err != nil && !errors.Is(err, faulty.ErrInjected) && !errors.Is(err, comm.ErrClosed) {
				t.Errorf("budget=%d: unexpected error type: %v", budget, err)
			}
		})
		if leaked != 0 {
			t.Errorf("budget=%d: %d scratch buffers leaked on Scatterv error path", budget, leaked)
		}
	}
}

// TestAlltoallvBruckLeakOnError sweeps a send budget across the packed
// Bruck alltoallv, asserting the same pool invariant: its rounds move
// data with blocking SendRecv (quiescent on return by contract), so
// unlike the nonblocking symmetric algorithms — which must leak on a
// post error to avoid the all-ranks-settling deadlock — every one of its
// error paths can and must hand all four round buffers back.
func TestAlltoallvBruckLeakOnError(t *testing.T) {
	const p = 6
	m := make([]int, p*p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			m[i*p+j] = (i*31 + j*17) % 41
		}
	}
	for _, budget := range []int{0, 1, 3, 7, 1 << 20} {
		budget := budget
		leaked := leakStats(func() {
			w := mem.NewWorld(p)
			defer w.Close()
			b := faulty.NewBudget(budget)
			err := w.Run(func(c comm.Comm) error {
				me := c.Rank()
				sendTotal, recvTotal := 0, 0
				for q := 0; q < p; q++ {
					sendTotal += m[me*p+q]
					recvTotal += m[q*p+me]
				}
				return AlltoallvBruck(faulty.Wrap(c, b), rankPayload(me, sendTotal), m, make([]byte, recvTotal))
			})
			if budget >= 1<<20 && err != nil {
				t.Errorf("budget=%d: unexpected failure: %v", budget, err)
			}
			if err != nil && !errors.Is(err, faulty.ErrInjected) && !errors.Is(err, comm.ErrClosed) {
				t.Errorf("budget=%d: unexpected error type: %v", budget, err)
			}
		})
		if leaked != 0 {
			t.Errorf("budget=%d: %d scratch buffers leaked", budget, leaked)
		}
	}
}
