package core

import (
	scratch "exacoll/internal/buf"
	"exacoll/internal/comm"
	"exacoll/internal/datatype"
)

// The binomial algorithms below are deliberately independent, mask-based
// transcriptions of the classic MPICH implementations (Thakur et al.),
// rather than calls into the k-nomial code with k=2. They serve two roles:
// the fixed-radix baseline the paper's Figs. 7 and 9 compare against, and a
// cross-validation oracle for the generalized k-nomial implementation.

// BcastBinomial broadcasts buf from root using the classic binomial tree.
func BcastBinomial(c comm.Comm, buf []byte, root int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	p := c.Size()
	if p == 1 {
		return nil
	}
	me := c.Rank()
	v := vrank(me, root, p)

	// Receive from parent: the parent differs at v's lowest set bit.
	mask := 1
	for mask < p {
		if v&mask != 0 {
			src := absRank(v-mask, root, p)
			if _, err := c.Recv(src, tagBinomial, buf); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	// Forward down, largest subtree first.
	mask >>= 1
	var reqs []comm.Request
	for mask > 0 {
		if v+mask < p {
			req, err := c.Isend(absRank(v+mask, root, p), tagBinomial, buf)
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		mask >>= 1
	}
	return comm.WaitAll(reqs...)
}

// ReduceBinomial reduces sendbuf from all ranks into recvbuf at root using
// the classic binomial tree (commutative op).
func ReduceBinomial(c comm.Comm, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type, root int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	p := c.Size()
	me := c.Rank()
	var acc []byte
	if me == root {
		if err := checkReduceBufs(sendbuf, recvbuf, dt); err != nil {
			return err
		}
		acc = recvbuf
	} else {
		// acc and tmp are only ever synchronous Recv/Send targets: safe to
		// recycle on any exit.
		acc = scratch.Get(len(sendbuf))
		defer scratch.Put(acc)
	}
	copy(acc, sendbuf)
	if p == 1 {
		return nil
	}

	v := vrank(me, root, p)
	tmp := scratch.Get(len(sendbuf))
	defer scratch.Put(tmp)
	mask := 1
	for mask < p {
		if v&mask == 0 {
			src := v | mask
			if src < p {
				if _, err := c.Recv(absRank(src, root, p), tagBinomial, tmp); err != nil {
					return err
				}
				if err := reduceInto(c, op, dt, acc, tmp); err != nil {
					return err
				}
			}
		} else {
			dst := v &^ mask
			return c.Send(absRank(dst, root, p), tagBinomial, acc)
		}
		mask <<= 1
	}
	return nil
}

// GatherBinomial gathers every rank's n-byte sendbuf into recvbuf at root
// using the classic binomial tree. Subtrees are contiguous vrank ranges, so
// each hop forwards one contiguous region.
func GatherBinomial(c comm.Comm, sendbuf, recvbuf []byte, root int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	p := c.Size()
	n := len(sendbuf)
	me := c.Rank()
	if me == root && len(recvbuf) != n*p {
		return checkAllgatherBufs(c, sendbuf, recvbuf)
	}
	v := vrank(me, root, p)

	// Subtree span of v: up to its lowest set bit (the whole tree for v=0).
	span := p - v
	if v != 0 {
		low := v & (-v)
		span = minInt(low, p-v)
	}
	// tmp is only ever a synchronous Recv target / Send source: safe to
	// recycle on any exit.
	tmp := scratch.Get(n * span)
	defer scratch.Put(tmp)
	copy(tmp[:n], sendbuf)

	mask := 1
	for mask < p {
		if v&mask == 0 {
			src := v | mask
			if src < p {
				sz := minInt(mask, p-src)
				if _, err := c.Recv(absRank(src, root, p), tagBinomial, tmp[(src-v)*n:(src-v+sz)*n]); err != nil {
					return err
				}
			}
		} else {
			dst := v &^ mask
			return c.Send(absRank(dst, root, p), tagBinomial, tmp)
		}
		mask <<= 1
	}
	// Root: rotate vrank order to absolute order.
	for vr := 0; vr < p; vr++ {
		r := absRank(vr, root, p)
		copy(recvbuf[r*n:(r+1)*n], tmp[vr*n:(vr+1)*n])
	}
	return nil
}

// ScatterBinomial distributes n-byte blocks from root's sendbuf (n·p) into
// each rank's recvbuf (n) using the classic binomial tree.
func ScatterBinomial(c comm.Comm, sendbuf, recvbuf []byte, root int) error {
	return ScatterKnomial(c, sendbuf, recvbuf, root, 2)
}
