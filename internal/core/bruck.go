package core

import (
	scratch "exacoll/internal/buf"
	"exacoll/internal/comm"
)

// AllgatherBruck is Bruck's allgather (referenced in §VII): ⌈log2 p⌉
// rounds for any p, at the price of a local rotation. In round i each rank
// sends its first min(2^i, p−2^i) accumulated blocks to rank−2^i and
// receives as many from rank+2^i; blocks are kept in "own-first" rotated
// order and rotated back at the end. MPICH selects it for small messages
// and non-power-of-two sizes, making it the natural baseline partner of
// recursive doubling.
func AllgatherBruck(c comm.Comm, sendbuf, recvbuf []byte) error {
	if err := checkAllgatherBufs(c, sendbuf, recvbuf); err != nil {
		return err
	}
	p := c.Size()
	n := len(sendbuf)
	me := c.Rank()
	if p == 1 {
		copy(recvbuf, sendbuf)
		return nil
	}

	// tmp holds blocks in rotated order: tmp[i] is the block of rank
	// (me + i) mod p once received. SendRecv settles both sides before
	// returning, so recycling tmp on any exit is safe.
	tmp := scratch.Get(n * p)
	defer scratch.Put(tmp)
	copy(tmp[:n], sendbuf)
	have := 1
	for dist := 1; dist < p; dist *= 2 {
		count := minInt(have, p-have)
		to := ((me-dist)%p + p) % p
		from := (me + dist) % p
		if _, err := comm.SendRecv(c, to, tmp[:count*n], from, tmp[have*n:(have+count)*n], tagBruck); err != nil {
			return err
		}
		have += count
	}

	// Rotate back: tmp[i] is block (me+i) mod p.
	for i := 0; i < p; i++ {
		r := (me + i) % p
		copy(recvbuf[r*n:(r+1)*n], tmp[i*n:(i+1)*n])
	}
	return nil
}
