package core

import (
	"fmt"
	"sort"

	scratch "exacoll/internal/buf"
	"exacoll/internal/comm"
	"exacoll/internal/datatype"
)

// Edge is one block transfer inside a schedule round: rank From sends the
// data block that originated at rank Block to rank To.
type Edge struct {
	From, To, Block int
}

// Round is the set of transfers that may proceed concurrently. Rounds are a
// logical ordering only — ranks never barrier between rounds; data
// dependencies (a rank can only forward a block after receiving it) provide
// all necessary synchronization.
type Round []Edge

// Schedule is an explicit allgather communication plan over p ranks: after
// executing all rounds, every rank holds every rank's block. Ring and
// k-ring algorithms are built as schedules; reduce-scatter runs the same
// schedule in reverse with accumulation (the standard time-reversal duality
// between allgather and reduce-scatter).
type Schedule struct {
	P      int
	Rounds []Round
}

// Validate checks the structural invariants the executors rely on:
//   - every rank receives every block other than its own exactly once;
//   - no rank receives its own block;
//   - a rank only sends blocks it owns at the start of the round (its own,
//     or one received in a strictly earlier round);
//   - edges reference valid ranks and blocks and have From != To.
func (s *Schedule) Validate() error {
	p := s.P
	// owned[r] tracks which blocks rank r holds; initially its own.
	owned := make([][]bool, p)
	recvCount := make([][]int, p)
	for r := 0; r < p; r++ {
		owned[r] = make([]bool, p)
		owned[r][r] = true
		recvCount[r] = make([]int, p)
	}
	for t, round := range s.Rounds {
		// Ownership updates apply only after the whole round.
		type gain struct{ rank, block int }
		var gains []gain
		for _, e := range round {
			if e.From < 0 || e.From >= p || e.To < 0 || e.To >= p || e.Block < 0 || e.Block >= p {
				return fmt.Errorf("core: schedule round %d: edge %+v out of range (p=%d)", t, e, p)
			}
			if e.From == e.To {
				return fmt.Errorf("core: schedule round %d: self edge %+v", t, e)
			}
			if !owned[e.From][e.Block] {
				return fmt.Errorf("core: schedule round %d: rank %d sends block %d it does not own", t, e.From, e.Block)
			}
			if e.To == e.Block {
				return fmt.Errorf("core: schedule round %d: rank %d receives its own block", t, e.To)
			}
			recvCount[e.To][e.Block]++
			gains = append(gains, gain{e.To, e.Block})
		}
		for _, g := range gains {
			owned[g.rank][g.block] = true
		}
	}
	for r := 0; r < p; r++ {
		for b := 0; b < p; b++ {
			if b == r {
				continue
			}
			if recvCount[r][b] != 1 {
				return fmt.Errorf("core: rank %d receives block %d %d times (want 1)", r, b, recvCount[r][b])
			}
		}
	}
	return nil
}

// NumRounds returns the number of logical rounds.
func (s *Schedule) NumRounds() int { return len(s.Rounds) }

// TotalEdges returns the total number of block transfers.
func (s *Schedule) TotalEdges() int {
	n := 0
	for _, r := range s.Rounds {
		n += len(r)
	}
	return n
}

// BlockLayout maps a block id to its (offset, size) inside the result
// buffer.
type BlockLayout func(block int) (off, size int)

// UniformLayout lays out p blocks of n bytes each: block i at offset i*n.
// This is the allgather layout (every rank contributes n bytes).
func UniformLayout(n int) BlockLayout {
	return func(i int) (int, int) { return i * n, n }
}

// FairLayout splits total bytes into p nearly-equal blocks (block i spans
// [i*total/p, (i+1)*total/p)). This is the layout used by scatter-allgather
// bcast over a single vector.
func FairLayout(total, p int) BlockLayout {
	return func(i int) (int, int) { return fairBlock(total, p, i) }
}

// FairLayoutAligned splits total bytes into p nearly-equal blocks whose
// boundaries fall on multiples of elemSize, so reductions never split an
// element across blocks. Reduce-scatter paths must use this layout.
func FairLayoutAligned(total, p, elemSize int) BlockLayout {
	elems := total / elemSize
	return func(i int) (int, int) {
		lo := fairOffset(elems, p, i) * elemSize
		hi := fairOffset(elems, p, i+1) * elemSize
		if i == p-1 {
			hi = total // absorb any trailing remainder bytes
		}
		return lo, hi - lo
	}
}

// xfer is a coalesced per-round message: all blocks moving between one
// (peer → me) or (me → peer) pair, packed in ascending block id order.
type xfer struct {
	peer   int
	blocks []int
	size   int
}

// roundXfers extracts this rank's coalesced sends and receives for a round.
func roundXfers(round Round, me int, layout BlockLayout) (sends, recvs []xfer) {
	sm := map[int][]int{}
	rm := map[int][]int{}
	for _, e := range round {
		if e.From == me {
			sm[e.To] = append(sm[e.To], e.Block)
		}
		if e.To == me {
			rm[e.From] = append(rm[e.From], e.Block)
		}
	}
	build := func(m map[int][]int) []xfer {
		peers := make([]int, 0, len(m))
		for pr := range m {
			peers = append(peers, pr)
		}
		sort.Ints(peers)
		out := make([]xfer, 0, len(peers))
		for _, pr := range peers {
			blocks := m[pr]
			sort.Ints(blocks)
			size := 0
			for _, b := range blocks {
				_, s := layout(b)
				size += s
			}
			out = append(out, xfer{peer: pr, blocks: blocks, size: size})
		}
		return out
	}
	return build(sm), build(rm)
}

// packBlocks copies blocks (ascending id) from buf into a packed message.
// The message comes from the scratch pool: the caller owns it and must
// scratch.Put it once no send can still be reading it.
func packBlocks(buf []byte, blocks []int, layout BlockLayout) []byte {
	size := 0
	for _, b := range blocks {
		_, s := layout(b)
		size += s
	}
	msg := scratch.Get(size)
	pos := 0
	for _, b := range blocks {
		off, s := layout(b)
		copy(msg[pos:pos+s], buf[off:off+s])
		pos += s
	}
	return msg
}

// unpackBlocks scatters a packed message into buf at block positions. If
// combine is non-nil it is used instead of copy (for reductions).
func unpackBlocks(msg, buf []byte, blocks []int, layout BlockLayout, combine func(dst, src []byte) error) error {
	pos := 0
	for _, b := range blocks {
		off, s := layout(b)
		if pos+s > len(msg) {
			return fmt.Errorf("%w: packed message too short", ErrBadBuffer)
		}
		if combine != nil {
			if err := combine(buf[off:off+s], msg[pos:pos+s]); err != nil {
				return err
			}
		} else {
			copy(buf[off:off+s], msg[pos:pos+s])
		}
		pos += s
	}
	return nil
}

// RunAllgather executes the schedule as an allgather. buf must already
// contain the caller's own block at layout(rank); on success it contains
// every block. tag selects the message stream (callers composing multiple
// schedule executions back-to-back pass distinct tags).
func (s *Schedule) RunAllgather(c comm.Comm, buf []byte, layout BlockLayout, tag comm.Tag) error {
	me := c.Rank()
	for _, round := range s.Rounds {
		sends, recvs := roundXfers(round, me, layout)
		reqs := make([]comm.Request, 0, len(sends)+len(recvs))
		staging := make([][]byte, len(recvs))
		var packed [][]byte
		// Post receives first so the eager path can complete in place.
		for i, rx := range recvs {
			var dst []byte
			if len(rx.blocks) == 1 {
				off, sz := layout(rx.blocks[0])
				dst = buf[off : off+sz]
			} else {
				staging[i] = scratch.Get(rx.size)
				dst = staging[i]
			}
			req, err := c.Irecv(rx.peer, tag, dst)
			if err != nil {
				return err // earlier ops may still target staging/buf: leak
			}
			reqs = append(reqs, req)
		}
		for _, tx := range sends {
			var src []byte
			if len(tx.blocks) == 1 {
				off, sz := layout(tx.blocks[0])
				src = buf[off : off+sz]
			} else {
				src = packBlocks(buf, tx.blocks, layout)
				packed = append(packed, src)
			}
			req, err := c.Isend(tx.peer, tag, src)
			if err != nil {
				return err // earlier sends may still read packed: leak
			}
			reqs = append(reqs, req)
		}
		// WaitAll settles every request even on error, so staging and packed
		// buffers are quiescent from here on.
		err := comm.WaitAll(reqs...)
		for _, b := range packed {
			scratch.Put(b)
		}
		if err != nil {
			for _, b := range staging {
				scratch.Put(b)
			}
			return err
		}
		for i, rx := range recvs {
			if len(rx.blocks) > 1 {
				if err == nil {
					err = unpackBlocks(staging[i], buf, rx.blocks, layout, nil)
				}
				scratch.Put(staging[i])
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// RunReduceScatter executes the schedule in reverse as a reduce-scatter
// (time-reversal duality: reversing every edge of an allgather schedule
// turns each block's dissemination tree into an aggregation tree rooted at
// the block's owner).
//
// work must contain the caller's full input vector; on success,
// work[layout(rank)] holds the fully reduced block owned by the caller and
// the rest of work is scratch. tag selects the message stream.
func (s *Schedule) RunReduceScatter(c comm.Comm, work []byte, layout BlockLayout, op datatype.Op, t datatype.Type, tag comm.Tag) error {
	me := c.Rank()
	combine := func(dst, src []byte) error { return reduceInto(c, op, t, dst, src) }
	for ri := len(s.Rounds) - 1; ri >= 0; ri-- {
		// Reversed edges: allgather (From→To, Block) becomes To sending its
		// partial of Block back to From, which accumulates it.
		round := s.Rounds[ri]
		rev := make(Round, len(round))
		for i, e := range round {
			rev[i] = Edge{From: e.To, To: e.From, Block: e.Block}
		}
		sends, recvs := roundXfers(rev, me, layout)
		reqs := make([]comm.Request, 0, len(sends)+len(recvs))
		staging := make([][]byte, len(recvs))
		var packed [][]byte
		for i, rx := range recvs {
			staging[i] = scratch.Get(rx.size)
			req, err := c.Irecv(rx.peer, tag, staging[i])
			if err != nil {
				return err // earlier receives may still target staging: leak
			}
			reqs = append(reqs, req)
		}
		for _, tx := range sends {
			var src []byte
			if len(tx.blocks) == 1 {
				off, sz := layout(tx.blocks[0])
				src = work[off : off+sz]
			} else {
				src = packBlocks(work, tx.blocks, layout)
				packed = append(packed, src)
			}
			req, err := c.Isend(tx.peer, tag, src)
			if err != nil {
				return err // earlier sends may still read packed: leak
			}
			reqs = append(reqs, req)
		}
		// WaitAll settles every request even on error, so staging and packed
		// buffers are quiescent from here on.
		err := comm.WaitAll(reqs...)
		for _, b := range packed {
			scratch.Put(b)
		}
		for i, rx := range recvs {
			if err == nil {
				err = unpackBlocks(staging[i], work, rx.blocks, layout, combine)
			}
			scratch.Put(staging[i])
		}
		if err != nil {
			return err
		}
	}
	return nil
}
