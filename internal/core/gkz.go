package core

import (
	scratch "exacoll/internal/buf"
	"exacoll/internal/comm"
	"exacoll/internal/datatype"
)

// AllreduceGeneralizedKZ is the Kolmakov–Zhang generalized allreduce
// (arXiv:2004.09362): Rabenseifner's reduce-scatter-allgather composite
// re-parameterized by a group size k. The vector is split into k^m blocks
// (k^m the largest power of k ≤ p); m rounds of k-way exchange reduce-
// scatter it by base-k digit, and m mirrored rounds allgather the reduced
// blocks back. k=2 recovers Rabenseifner's algorithm; larger k trades
// fewer, fatter rounds against more concurrent messages per round —
// exactly the radix knob of the paper's Table I family, applied to the
// composite rather than a single kernel.
//
// Ranks beyond k^m fold their vectors onto rank mod k^m before the rounds
// and receive the finished result after, generalizing MPICH's pairwise
// pre/post phases to the up-to-(k−1) extras a power-of-k subgroup can
// leave behind.
func AllreduceGeneralizedKZ(c comm.Comm, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type, k int) error {
	if err := checkReduceBufs(sendbuf, recvbuf, dt); err != nil {
		return err
	}
	if err := checkRadix(k); err != nil {
		return err
	}
	p := c.Size()
	r := c.Rank()
	n := len(sendbuf)
	copy(recvbuf, sendbuf)
	if p == 1 {
		return nil
	}
	p2 := ipow(k, ilog(k, p))

	// Fold: extras ship their whole vector to their base rank and wait for
	// the result; base ranks absorb up to k−1 extras each.
	if r >= p2 {
		if err := c.Send(r%p2, tagGKZ, recvbuf); err != nil {
			return err
		}
		_, err := c.Recv(r%p2, tagGKZ+2, recvbuf)
		return err
	}
	if p2 < p {
		tmp := scratch.Get(n)
		for e := r + p2; e < p; e += p2 {
			if _, err := c.Recv(e, tagGKZ, tmp); err != nil {
				scratch.Put(tmp)
				return err
			}
			if err := reduceInto(c, op, dt, recvbuf, tmp); err != nil {
				scratch.Put(tmp)
				return err
			}
		}
		scratch.Put(tmp)
	}

	if p2 > 1 {
		layout := FairLayoutAligned(n, p2, dt.Size())
		rangeOf := func(base, count int) (lo, hi int) {
			lo, _ = layout(base)
			off, sz := layout(base + count - 1)
			return lo, off + sz
		}
		// Reduce-scatter by base-k digit, most significant first: each
		// round narrows the active block range [lo, lo+k·dist) to the
		// sub-range holding our own block, sending our partials of the
		// other k−1 sub-ranges to the ranks that keep them.
		lo := 0
		reqs := make([]comm.Request, 0, 2*(k-1))
		staging := make([][]byte, 0, k-1)
		for dist := p2 / k; dist >= 1; dist /= k {
			d := (r - lo) / dist // my digit: which sub-range I keep
			keepLo, keepHi := rangeOf(lo+d*dist, dist)
			keepSz := keepHi - keepLo
			reqs = reqs[:0]
			staging = staging[:0]
			for j := 0; j < k; j++ {
				if j == d {
					continue
				}
				partner := lo + j*dist + (r-lo)%dist
				st := scratch.Get(keepSz)
				req, err := c.Irecv(partner, tagGKZ+1, st)
				if err != nil {
					// The fresh staging buffer saw no request yet and can be
					// recycled; earlier posts may still target their staging
					// buffers, and settling them can deadlock when every
					// rank fails the same round, so those leak to the GC.
					scratch.Put(st)
					return err
				}
				staging = append(staging, st)
				reqs = append(reqs, req)
			}
			for j := 0; j < k; j++ {
				if j == d {
					continue
				}
				partner := lo + j*dist + (r-lo)%dist
				sLo, sHi := rangeOf(lo+j*dist, dist)
				req, err := c.Isend(partner, tagGKZ+1, recvbuf[sLo:sHi])
				if err != nil {
					return err // posted receives still target staging: leak
				}
				reqs = append(reqs, req)
			}
			err := comm.WaitAll(reqs...)
			for _, st := range staging {
				if err == nil {
					err = reduceInto(c, op, dt, recvbuf[keepLo:keepHi], st)
				}
				scratch.Put(st)
			}
			if err != nil {
				return err
			}
			lo += d * dist
		}
		// Allgather mirror: rounds widen the held range k-fold, every
		// group member broadcasting its range to the k−1 others. Receives
		// land directly in recvbuf — the ranges are disjoint.
		for dist := 1; dist < p2; dist *= k {
			glo := r - r%(dist*k)
			base := r - r%dist
			myLo, myHi := rangeOf(base, dist)
			reqs = reqs[:0]
			for j := 0; j < k; j++ {
				peerBase := glo + j*dist
				if peerBase == base {
					continue
				}
				partner := peerBase + r%dist
				pLo, pHi := rangeOf(peerBase, dist)
				req, err := c.Irecv(partner, tagGKZ+1, recvbuf[pLo:pHi])
				if err != nil {
					// Earlier posts still target recvbuf; settling can
					// deadlock when every rank fails the round, so the
					// posts are left dangling (caller must not reuse the
					// buffer after an error).
					return err
				}
				reqs = append(reqs, req)
			}
			for j := 0; j < k; j++ {
				peerBase := glo + j*dist
				if peerBase == base {
					continue
				}
				partner := peerBase + r%dist
				req, err := c.Isend(partner, tagGKZ+1, recvbuf[myLo:myHi])
				if err != nil {
					return err // posted receives still target recvbuf: leak
				}
				reqs = append(reqs, req)
			}
			if err := comm.WaitAll(reqs...); err != nil {
				return err
			}
		}
	}

	// Unfold: hand the finished vector back to the extras.
	for e := r + p2; e < p; e += p2 {
		if err := c.Send(e, tagGKZ+2, recvbuf); err != nil {
			return err
		}
	}
	return nil
}
