package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"exacoll/internal/comm"
	"exacoll/internal/datatype"
	"exacoll/internal/transport/mem"
)

// TestCollectiveSoak runs a long, seeded-random sequence of different
// collectives back-to-back on one communicator — the usage pattern of a
// real application — and validates every result. This is the test that
// catches cross-collective tag interference: a message from collective i
// must never match a receive posted by collective i+1, even though no
// barrier separates them and fast ranks race ahead.
func TestCollectiveSoak(t *testing.T) {
	const p = 8
	steps := 120
	if testing.Short() {
		steps = 30 // CI's -short knob: same coverage shape, bounded time
	}
	rng := rand.New(rand.NewSource(20230704))

	type step struct {
		alg  *Algorithm
		n    int
		k    int
		root int
	}
	var algs []*Algorithm
	for _, a := range Algorithms(-1) {
		if a.Pow2Only && !isPow2(p) {
			continue
		}
		algs = append(algs, a)
	}
	seq := make([]step, steps)
	for i := range seq {
		alg := algs[rng.Intn(len(algs))]
		n := []int{8, 64, 512, 4096}[rng.Intn(4)]
		k := []int{1, 2, 3, 4, 5, 8}[rng.Intn(6)]
		if k < 2 && alg.Kernel != KernelKRing && alg.Kernel != KernelHierarchical {
			k = 2
		}
		seq[i] = step{alg: alg, n: n, k: k, root: rng.Intn(p)}
	}

	w := mem.NewWorld(p)
	defer w.Close()
	err := w.Run(func(c comm.Comm) error {
		for i, st := range seq {
			if err := runAndVerify(c, st.alg, st.n, st.root, st.k); err != nil {
				return fmt.Errorf("step %d (%s n=%d k=%d root=%d): %w",
					i, st.alg.Name, st.n, st.k, st.root, err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// runAndVerify executes one collective on a live communicator and checks
// its result (a goroutine-local variant of checkCollective that does not
// create a fresh world).
func runAndVerify(c comm.Comm, alg *Algorithm, n, root, k int) error {
	p := c.Size()
	me := c.Rank()
	switch alg.Op {
	case OpBcast:
		payload := rankPayload(root, n)
		buf := make([]byte, n)
		if me == root {
			copy(buf, payload)
		}
		if err := alg.Run(c, Args{SendBuf: buf, Root: root, K: k}); err != nil {
			return err
		}
		if !bytes.Equal(buf, payload) {
			return fmt.Errorf("bcast mismatch")
		}
	case OpReduce, OpAllreduce:
		elems := n / 8
		sendbuf := datatype.EncodeFloat64(rankVector(me, elems))
		recvbuf := make([]byte, len(sendbuf))
		if err := alg.Run(c, Args{SendBuf: sendbuf, RecvBuf: recvbuf,
			Op: datatype.Sum, Type: datatype.Float64, Root: root, K: k}); err != nil {
			return err
		}
		if alg.Op == OpAllreduce || me == root {
			if !bytes.Equal(recvbuf, datatype.EncodeFloat64(expectedSum(p, elems))) {
				return fmt.Errorf("%v mismatch", alg.Op)
			}
		}
	case OpGather, OpAllgather:
		sendbuf := rankPayload(me, n)
		recvbuf := make([]byte, n*p)
		if err := alg.Run(c, Args{SendBuf: sendbuf, RecvBuf: recvbuf, Root: root, K: k}); err != nil {
			return err
		}
		if alg.Op == OpAllgather || me == root {
			for r := 0; r < p; r++ {
				if !bytes.Equal(recvbuf[r*n:(r+1)*n], rankPayload(r, n)) {
					return fmt.Errorf("%v block %d mismatch", alg.Op, r)
				}
			}
		}
	case OpScatter:
		var sendbuf []byte
		if me == root {
			sendbuf = make([]byte, 0, n*p)
			for r := 0; r < p; r++ {
				sendbuf = append(sendbuf, rankPayload(r, n)...)
			}
		}
		recvbuf := make([]byte, n)
		if err := alg.Run(c, Args{SendBuf: sendbuf, RecvBuf: recvbuf, Root: root, K: k}); err != nil {
			return err
		}
		if !bytes.Equal(recvbuf, rankPayload(me, n)) {
			return fmt.Errorf("scatter mismatch")
		}
	case OpReduceScatter:
		elems := n / 8
		sendbuf := datatype.EncodeFloat64(rankVector(me, elems))
		off, sz := FairLayoutAligned(len(sendbuf), p, 8)(me)
		recvbuf := make([]byte, sz)
		if err := alg.Run(c, Args{SendBuf: sendbuf, RecvBuf: recvbuf,
			Op: datatype.Sum, Type: datatype.Float64, K: k}); err != nil {
			return err
		}
		want := datatype.EncodeFloat64(expectedSum(p, elems))[off : off+sz]
		if !bytes.Equal(recvbuf, want) {
			return fmt.Errorf("reduce-scatter mismatch")
		}
	case OpScan:
		elems := n / 8
		sendbuf := datatype.EncodeFloat64(rankVector(me, elems))
		recvbuf := make([]byte, len(sendbuf))
		if err := alg.Run(c, Args{SendBuf: sendbuf, RecvBuf: recvbuf,
			Op: datatype.Sum, Type: datatype.Float64, K: k}); err != nil {
			return err
		}
		if !bytes.Equal(recvbuf, datatype.EncodeFloat64(prefixSum(me, elems))) {
			return fmt.Errorf("scan mismatch")
		}
	case OpAlltoall:
		sendbuf := make([]byte, 0, n*p)
		for dst := 0; dst < p; dst++ {
			sendbuf = append(sendbuf, rankPayload(me*1000+dst, n)...)
		}
		recvbuf := make([]byte, n*p)
		if err := alg.Run(c, Args{SendBuf: sendbuf, RecvBuf: recvbuf, K: k}); err != nil {
			return err
		}
		for src := 0; src < p; src++ {
			if !bytes.Equal(recvbuf[src*n:(src+1)*n], rankPayload(src*1000+me, n)) {
				return fmt.Errorf("alltoall block %d mismatch", src)
			}
		}
	case OpAllgatherv:
		counts := conformanceCounts(p, n)
		off := prefixOffsets(counts)
		recvbuf := make([]byte, off[p])
		if err := alg.Run(c, Args{SendBuf: rankPayload(me, counts[me]), RecvBuf: recvbuf,
			Counts: counts, K: k}); err != nil {
			return err
		}
		for r := 0; r < p; r++ {
			if !bytes.Equal(recvbuf[off[r]:off[r+1]], rankPayload(r, counts[r])) {
				return fmt.Errorf("allgatherv block %d mismatch", r)
			}
		}
	case OpReduceScatterv:
		counts := conformanceCounts(p, n)
		off := prefixOffsets(counts)
		sendbuf := datatype.EncodeFloat64(rankVector(me, off[p]/8))
		recvbuf := make([]byte, counts[me])
		if err := alg.Run(c, Args{SendBuf: sendbuf, RecvBuf: recvbuf, Counts: counts,
			Op: datatype.Sum, Type: datatype.Float64, K: k}); err != nil {
			return err
		}
		want := datatype.EncodeFloat64(expectedSum(p, off[p]/8))[off[me]:off[me+1]]
		if !bytes.Equal(recvbuf, want) {
			return fmt.Errorf("reduce-scatterv mismatch")
		}
	case OpAlltoallv:
		m := conformanceCountMatrix(p, n)
		var sendbuf []byte
		recvTotal := 0
		for q := 0; q < p; q++ {
			sendbuf = append(sendbuf, rankPayload(me*1000+q, m[me*p+q])...)
			recvTotal += m[q*p+me]
		}
		recvbuf := make([]byte, recvTotal)
		if err := alg.Run(c, Args{SendBuf: sendbuf, RecvBuf: recvbuf, Counts: m, K: k}); err != nil {
			return err
		}
		pos := 0
		for src := 0; src < p; src++ {
			sz := m[src*p+me]
			if !bytes.Equal(recvbuf[pos:pos+sz], rankPayload(src*1000+me, sz)) {
				return fmt.Errorf("alltoallv block %d mismatch", src)
			}
			pos += sz
		}
	}
	return nil
}
