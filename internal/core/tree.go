package core

// KnomialTree describes the k-nomial tree over p virtual ranks rooted at
// vrank 0 (§III of the paper). A binomial tree is the k=2 special case.
//
// The tree is defined by base-k digit decomposition: the parent of vrank v
// is v with its lowest nonzero base-k digit cleared, and the children of v
// are v + j·k^d for every digit position d below v's lowest nonzero digit
// and j in 1..k-1 (bounded by p). The subtree rooted at child v + j·k^d
// spans the contiguous vrank range [v+j·k^d, min(v+j·k^d + k^d, p)) — the
// property gather/scatter rely on to keep payloads contiguous.
type KnomialTree struct {
	P int // number of ranks
	K int // radix (>= 2)
}

// Child is one tree edge: the child's vrank and its subtree weight k^d.
// The subtree spans [VRank, min(VRank+Weight, P)).
type Child struct {
	VRank  int
	Weight int
}

// lowestWeight returns k^d for v's lowest nonzero base-k digit; for the
// root (v=0) it returns the smallest power of k strictly greater than P-1,
// i.e. the bound under which all digit positions belong to the root.
func (t KnomialTree) lowestWeight(v int) int {
	if v == 0 {
		w := 1
		for w < t.P {
			w *= t.K
		}
		return w
	}
	w := 1
	for (v/w)%t.K == 0 {
		w *= t.K
	}
	return w
}

// Parent returns the parent vrank of v, or -1 for the root.
func (t KnomialTree) Parent(v int) int {
	if v == 0 {
		return -1
	}
	w := t.lowestWeight(v)
	d := (v / w) % t.K
	return v - d*w
}

// Children returns v's children in decreasing subtree-weight order (largest
// subtree first, matching MPICH's binomial send order), ascending j within
// a weight.
func (t KnomialTree) Children(v int) []Child {
	return t.AppendChildren(nil, v)
}

// AppendChildren appends v's children to dst in the Children order and
// returns the extended slice. Passing a stack-backed dst with enough
// capacity makes the hot path allocation-free; append falls back to the
// heap transparently for very wide trees (large k).
func (t KnomialTree) AppendChildren(dst []Child, v int) []Child {
	for w := t.lowestWeight(v) / t.K; w >= 1; w /= t.K {
		for j := 1; j < t.K; j++ {
			c := v + j*w
			if c < t.P {
				dst = append(dst, Child{VRank: c, Weight: w})
			}
		}
	}
	return dst
}

// SubtreeSize returns the number of vranks in the subtree rooted at v,
// where weight is v's subtree weight (use SpanOf for children; the root's
// subtree is all of P).
func (t KnomialTree) SubtreeSize(v, weight int) int {
	end := v + weight
	if end > t.P {
		end = t.P
	}
	return end - v
}

// Depth returns the tree depth: ceil(log_k p), the number of overlapped
// communication rounds.
func (t KnomialTree) Depth() int {
	d, w := 0, 1
	for w < t.P {
		w *= t.K
		d++
	}
	return d
}

// Level returns the depth of vrank v (root = 0): the number of nonzero
// base-k digits of v.
func (t KnomialTree) Level(v int) int {
	n := 0
	for v > 0 {
		if v%t.K != 0 {
			n++
		}
		v /= t.K
	}
	return n
}
