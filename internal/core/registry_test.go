package core

import (
	"strings"
	"testing"
)

// TestLookup covers hit and miss.
func TestLookup(t *testing.T) {
	a, err := Lookup("allreduce_recmul")
	if err != nil {
		t.Fatal(err)
	}
	if a.Op != OpAllreduce || a.Kernel != KernelRecMul || !a.Generalized || a.DefaultK != 2 {
		t.Errorf("allreduce_recmul metadata = %+v", a)
	}
	if _, err := Lookup("no_such"); err == nil {
		t.Error("want error for unknown algorithm")
	}
}

// TestAlgorithmsFilter checks per-op filtering and global ordering.
func TestAlgorithmsFilter(t *testing.T) {
	all := Algorithms(-1)
	if len(all) < 25 {
		t.Errorf("only %d algorithms registered", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Errorf("registry not sorted: %s >= %s", all[i-1].Name, all[i].Name)
		}
	}
	for _, a := range Algorithms(OpBcast) {
		if a.Op != OpBcast {
			t.Errorf("%s leaked into bcast list", a.Name)
		}
	}
}

// TestTableIExact pins the paper's Table I: exactly which generalized
// algorithm exists for each (kernel, op) pair.
func TestTableIExact(t *testing.T) {
	want := map[string]bool{
		"k-nomial/MPI_Bcast":                  true,
		"k-nomial/MPI_Reduce":                 true,
		"k-nomial/MPI_Allgather":              true,
		"k-nomial/MPI_Allreduce":              true,
		"recursive-multiplying/MPI_Bcast":     true,
		"recursive-multiplying/MPI_Allgather": true,
		"recursive-multiplying/MPI_Allreduce": true,
		"k-ring/MPI_Bcast":                    true,
		"k-ring/MPI_Allgather":                true,
		"k-ring/MPI_Allreduce":                true,
	}
	got := map[string]bool{}
	for _, a := range TableIAlgorithms() {
		switch a.Op {
		case OpBcast, OpReduce, OpAllgather, OpAllreduce:
			got[a.Kernel.String()+"/"+a.Op.String()] = true
		}
	}
	for k := range want {
		if !got[k] {
			t.Errorf("Table I entry missing: %s", k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("unexpected Table I entry: %s", k)
		}
	}
}

// TestBaselinesResolve: every Baseline reference names a registered
// algorithm of the same operation.
func TestBaselinesResolve(t *testing.T) {
	for _, a := range Algorithms(-1) {
		if a.Baseline == "" {
			continue
		}
		base, err := Lookup(a.Baseline)
		if err != nil {
			t.Errorf("%s baseline: %v", a.Name, err)
			continue
		}
		if base.Op != a.Op {
			t.Errorf("%s baseline %s implements %v", a.Name, base.Name, base.Op)
		}
		if base.Generalized {
			t.Errorf("%s baseline %s is itself generalized", a.Name, base.Name)
		}
	}
}

// TestKernelAndOpStrings covers the Stringers (used in config files and
// figure titles, so their exact values matter).
func TestKernelAndOpStrings(t *testing.T) {
	if OpAllreduce.String() != "MPI_Allreduce" || OpReduceScatter.String() != "MPI_Reduce_scatter" {
		t.Error("CollOp strings changed")
	}
	for k := KernelLinear; k <= KernelHierarchical; k++ {
		if strings.HasPrefix(k.String(), "Kernel(") {
			t.Errorf("kernel %d has no name", int(k))
		}
	}
	if !strings.HasPrefix(Kernel(99).String(), "Kernel(") || !strings.HasPrefix(CollOp(99).String(), "CollOp(") {
		t.Error("unknown enums must format distinctly")
	}
}
