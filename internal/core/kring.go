package core

import (
	"fmt"

	scratch "exacoll/internal/buf"
	"exacoll/internal/comm"
	"exacoll/internal/datatype"
)

// The k-ring algorithm (§V-C) splits the p ranks into g = ⌈p/k⌉ contiguous
// groups and alternates fast intra-group ring rounds with a single
// inter-group round per phase. With contiguous rank placement and k equal
// to the number of processes per node, "intra-group" becomes "intranode",
// letting most rounds run over the high-bandwidth intranode links without
// synchronizing against slower internode messages (§II-B3). k=1 and k≥p
// both degenerate to the classic ring.
//
// Structure for p=6, k=3 (Fig. 6): two intra rounds completing each
// group's internal allgather, one inter round in which each process passes
// one block to its inter-group neighbor, and two more intra rounds
// circulating the received foreign blocks: g(k−1) intra + (g−1) inter
// rounds, p−1 total (eq. (11)/(12)).

// KRingSchedule builds the k-ring allgather schedule for any p ≥ 1 and
// group size k ≥ 1. If k does not divide p the last group is smaller (the
// non-uniform corner case of §VI-A): inter-round transfers then map block
// q of the source group to sender index q mod |senders| and receiver index
// (q mod |senders|) mod |receivers|, and circulation forwards whatever a
// member received in the previous round.
func KRingSchedule(p, k int) (*Schedule, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: k-ring group size %d", ErrBadRadix, k)
	}
	if k > p {
		k = p
	}
	g := (p + k - 1) / k
	base := func(j int) int { return j * k }
	size := func(j int) int { return minInt(k, p-j*k) }
	maxSize := k
	s := &Schedule{P: p}

	// Phase A: intra-group ring allgather, size(j)-1 rounds per group,
	// aligned on global round indices (smaller groups idle in later
	// rounds; rounds are logical only — there is no barrier).
	for t := 0; t < maxSize-1; t++ {
		var round Round
		for j := 0; j < g; j++ {
			sj := size(j)
			if t >= sj-1 {
				continue
			}
			for idx := 0; idx < sj; idx++ {
				round = append(round, Edge{
					From:  base(j) + idx,
					To:    base(j) + (idx+1)%sj,
					Block: base(j) + ((idx-t)%sj+sj)%sj,
				})
			}
		}
		if len(round) > 0 {
			s.Rounds = append(s.Rounds, round)
		}
	}

	// Phases x = 1..g-1: one inter-group round, then circulation rounds
	// spreading the received foreign blocks within each group.
	for x := 1; x < g; x++ {
		// startIdx[j][q]: the member of group j that receives block q of
		// the foreign group during this phase's inter round.
		inter := make(Round, 0, p)
		startIdx := make([][]int, g)
		for j := 0; j < g; j++ {
			jr := (j + 1) % g
			// Group j sends the blocks of group sgs to group jr.
			sgs := ((j-x+1)%g + g) % g
			srcSize := size(sgs)
			if startIdx[jr] == nil {
				startIdx[jr] = make([]int, srcSize)
			}
			for q := 0; q < srcSize; q++ {
				senderIdx := q % size(j)
				recvIdx := senderIdx % size(jr)
				inter = append(inter, Edge{
					From:  base(j) + senderIdx,
					To:    base(jr) + recvIdx,
					Block: base(sgs) + q,
				})
				startIdx[jr][q] = recvIdx
			}
		}
		s.Rounds = append(s.Rounds, inter)

		// Circulation: in round c, member m forwards the blocks that
		// entered the group at member (m-(c-1)) mod size and have been
		// forwarded c-1 times, stopping after size-1 rounds per group.
		for c := 1; c < maxSize; c++ {
			var round Round
			for jr := 0; jr < g; jr++ {
				sj := size(jr)
				if c >= sj {
					continue
				}
				sgr := ((jr-x)%g + g) % g // source group of jr's foreign blocks
				for q := range startIdx[jr] {
					m := (startIdx[jr][q] + c - 1) % sj
					round = append(round, Edge{
						From:  base(jr) + m,
						To:    base(jr) + (m+1)%sj,
						Block: base(sgr) + q,
					})
				}
			}
			if len(round) > 0 {
				s.Rounds = append(s.Rounds, round)
			}
		}
	}
	return s, nil
}

// KRingRoundCounts reports the number of intra-group and inter-group
// communication rounds of the schedule, matching eq. (11): g(k−1) intra
// and (g−1) inter rounds in the uniform case (rounds are global steps, as
// in Fig. 6 where both groups communicate within the same intra round).
func KRingRoundCounts(p, k int) (intra, inter int) {
	s, err := KRingSchedule(p, k)
	if err != nil {
		return 0, 0
	}
	if k > p {
		k = p
	}
	group := func(r int) int { return r / k }
	for _, round := range s.Rounds {
		if len(round) == 0 {
			continue
		}
		if group(round[0].From) != group(round[0].To) {
			inter++
		} else {
			intra++
		}
	}
	return intra, inter
}

// InterGroupBytes returns the total bytes a group sends plus receives
// across all inter-group rounds for total message size n, eq. (13):
// D = 2n(p−k)/p for uniform groups (k=1 reduces to the classic ring's
// 2n(p−1)/p, eq. (14)).
func InterGroupBytes(n, p, k int) float64 {
	if k > p {
		k = p
	}
	return 2 * float64(n) * float64(p-k) / float64(p)
}

// AllgatherKRing is the generalized k-ring allgather.
func AllgatherKRing(c comm.Comm, sendbuf, recvbuf []byte, k int) error {
	if err := checkAllgatherBufs(c, sendbuf, recvbuf); err != nil {
		return err
	}
	p := c.Size()
	n := len(sendbuf)
	copy(recvbuf[c.Rank()*n:], sendbuf)
	if p == 1 {
		return nil
	}
	s, err := KRingSchedule(p, k)
	if err != nil {
		return err
	}
	return s.RunAllgather(c, recvbuf, UniformLayout(n), tagSched)
}

// BcastKRing broadcasts via a radix-k tree scatter followed by a k-ring
// allgather over fair blocks; identical dissemination to AllgatherKRing,
// as §V-D notes ("bcast uses a scatter-allgather algorithm").
func BcastKRing(c comm.Comm, buf []byte, root, k int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	p := c.Size()
	if p == 1 {
		return nil
	}
	if err := scatterFairForBcast(c, buf, root, maxInt(k, 2)); err != nil {
		return err
	}
	s, err := KRingSchedule(p, k)
	if err != nil {
		return err
	}
	return s.RunAllgather(c, buf, FairLayout(len(buf), p), tagSched)
}

// AllreduceKRing is the k-ring allreduce: a k-ring reduce-scatter (the
// time-reversed k-ring allgather, giving the offset-partition behaviour
// §V-D describes) followed by a k-ring allgather.
func AllreduceKRing(c comm.Comm, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type, k int) error {
	if err := checkReduceBufs(sendbuf, recvbuf, dt); err != nil {
		return err
	}
	p := c.Size()
	n := len(sendbuf)
	copy(recvbuf, sendbuf)
	if p == 1 {
		return nil
	}
	s, err := KRingSchedule(p, k)
	if err != nil {
		return err
	}
	layout := FairLayoutAligned(n, p, dt.Size())
	if err := s.RunReduceScatter(c, recvbuf, layout, op, dt, tagSched); err != nil {
		return err
	}
	return s.RunAllgather(c, recvbuf, layout, tagSched+1)
}

// ReduceScatterKRing reduce-scatters the full vector sendbuf: every rank
// receives its fully reduced fair block in recvbuf, using the
// time-reversed k-ring schedule.
func ReduceScatterKRing(c comm.Comm, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type, k int) error {
	p := c.Size()
	n := len(sendbuf)
	layout := FairLayoutAligned(n, p, dt.Size())
	off, sz := layout(c.Rank())
	if len(recvbuf) != sz {
		return ErrBadBuffer
	}
	work := scratch.Get(n)
	copy(work, sendbuf)
	if p > 1 {
		s, err := KRingSchedule(p, k)
		if err != nil {
			scratch.Put(work)
			return err
		}
		if err := s.RunReduceScatter(c, work, layout, op, dt, tagSched); err != nil {
			return err // posting-error paths may leave sends reading work: leak
		}
	}
	copy(recvbuf, work[off:off+sz])
	scratch.Put(work)
	return nil
}
