package flight

import (
	"sort"
	"strconv"
)

// MergedEvent is one event on the global timeline: the recording rank,
// the event with T rebased into rank 0's clock, and the event's position
// in its rank's stream (ties on T break by rank then Seq, keeping each
// rank's stream order — alignment adds a constant per rank, so per-rank
// order is preserved exactly).
type MergedEvent struct {
	Event
	Rank int `json:"rank"`
	Seq  int `json:"seq"`
}

// AlignedRank returns rank r's events with timestamps rebased into rank
// 0's time base (T + OffsetNs[r]).
func (d *Dump) AlignedRank(r int) []Event {
	src := d.Ranks[r].Events
	out := make([]Event, len(src))
	off := d.OffsetNs[r]
	for i, e := range src {
		e.T += off
		out[i] = e
	}
	return out
}

// Merged returns the global timeline: every rank's aligned events,
// sorted by rebased time.
func (d *Dump) Merged() []MergedEvent {
	var out []MergedEvent
	for r := range d.Ranks {
		for i, e := range d.AlignedRank(r) {
			out = append(out, MergedEvent{Event: e, Rank: r, Seq: i})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.Seq < b.Seq
	})
	return out
}

// BeginOf maps the End kind of a Begin/End pair to its Begin (EvNone for
// non-End kinds). Pairs nest per rank (stack discipline), except
// concurrent nonblocking collectives, which may interleave — renderers
// tolerate that by matching the nearest unmatched Begin of the same kind.
func BeginOf(k Kind) Kind {
	switch k {
	case EvWaitEnd:
		return EvWaitBegin
	case EvReduceEnd:
		return EvReduceBegin
	case EvCollEnd:
		return EvCollBegin
	case EvPhaseEnd:
		return EvPhaseBegin
	case EvAgreeEnd:
		return EvAgreeBegin
	}
	return EvNone
}

// SpanLabel names the interval a Begin/End pair brackets from its End
// event, resolving interned labels against the rank's dump. Renderers
// (internal/trace's flight adapter, the text report) share it.
func SpanLabel(rd *RankDump, end Event) string {
	switch end.Kind {
	case EvWaitEnd:
		return "wait"
	case EvReduceEnd:
		return "reduce"
	case EvAgreeEnd:
		return "ft agree"
	case EvPhaseEnd:
		if l := rd.Label(LabelOf(end.Arg)); l != "" {
			return l
		}
		return "phase"
	case EvCollEnd:
		label, _, k, _ := UnpackColl(end.Arg)
		name := rd.Label(label)
		if name == "" {
			name = "collective"
		}
		if k > 0 {
			return name + " k=" + strconv.Itoa(k)
		}
		return name
	}
	return end.Kind.String()
}
