package flight_test

import (
	"net"
	"sync"
	"testing"
	"time"

	"exacoll/internal/comm"
	"exacoll/internal/elastic"
	"exacoll/internal/flight"
	"exacoll/internal/transport/mem"
	"exacoll/internal/transport/tcp"
)

// These tests pin the capability-probe contract for the multi-tenant and
// elastic wrappers: flight.RecorderOf must walk through comm.Namespace,
// tcp.Shared (pooled link handles), and elastic.Member exactly like it
// walks SubComm and the metrics wrapper — each exposes Unwrap, and a
// recorder anywhere beneath stays discoverable.

// TestRecorderOfThroughNamespace: a service world recorded at the shared
// layer keeps its recorder reachable from every tenant's namespaced view.
func TestRecorderOfThroughNamespace(t *testing.T) {
	w := mem.NewWorld(1)
	defer w.Close()

	rec := flight.NewRecorder(flight.Options{}).Wrap(w.Comm(0))
	ns, err := comm.NewNamespace(rec, 7)
	if err != nil {
		t.Fatal(err)
	}
	if flight.RecorderOf(ns) == nil {
		t.Fatal("RecorderOf did not walk through comm.Namespace")
	}

	// Stacked namespaces (a tenant re-namespacing its slice) still reach it.
	ns2, err := comm.NewNamespace(ns, 3)
	if err != nil {
		t.Fatal(err)
	}
	if flight.RecorderOf(ns2) == nil {
		t.Fatal("RecorderOf did not walk a namespace stack")
	}

	// An unrecorded namespace terminates cleanly at the substrate.
	bare, err := comm.NewNamespace(w.Comm(0), 9)
	if err != nil {
		t.Fatal(err)
	}
	if flight.RecorderOf(bare) != nil {
		t.Fatal("RecorderOf invented a recorder under an unrecorded namespace")
	}
}

func flightFreeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestRecorderOfThroughShared: pooled TCP handles expose the proc beneath;
// a recorder wrapped over a Shared handle is found through a namespace on
// top, and an unrecorded Shared terminates the walk without a recorder.
func TestRecorderOfThroughShared(t *testing.T) {
	addr := flightFreeAddr(t)
	var procs [2]*tcp.Proc
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			procs[r], errs[r] = tcp.Rendezvous(r, 2, addr, tcp.Options{Timeout: 10 * time.Second})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	pool := tcp.NewPool(procs[0])
	defer pool.Close()
	defer procs[1].Close()

	sh, err := pool.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Release()
	if flight.RecorderOf(sh) != nil {
		t.Fatal("RecorderOf invented a recorder under a bare Shared handle")
	}

	rec := flight.NewRecorder(flight.Options{}).Wrap(sh)
	ns, err := comm.NewNamespace(rec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if flight.RecorderOf(ns) == nil {
		t.Fatal("RecorderOf did not walk namespace -> recorder -> tcp.Shared")
	}
}

// TestRecorderOfThroughMember: the elastic membership wrapper is
// transparent to the probe walk in both directions — no recorder beneath
// a bare Member, and a recorder above one found through a namespace.
func TestRecorderOfThroughMember(t *testing.T) {
	addr := flightFreeAddr(t)
	var members [2]*elastic.Member
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		members[0], errs[0] = elastic.Host(addr, 2, 4, tcp.Options{Timeout: 10 * time.Second})
	}()
	go func() {
		defer wg.Done()
		members[1], errs[1] = elastic.Dial(addr, 1, 2, tcp.Options{Timeout: 10 * time.Second})
	}()
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("member %d: %v", r, err)
		}
	}
	defer members[0].Close()
	defer members[1].Close()

	if flight.RecorderOf(members[0]) != nil {
		t.Fatal("RecorderOf invented a recorder under a bare Member")
	}
	rec := flight.NewRecorder(flight.Options{}).Wrap(members[0])
	ns, err := comm.NewNamespace(rec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if flight.RecorderOf(ns) == nil {
		t.Fatal("RecorderOf did not walk namespace -> recorder -> elastic.Member")
	}
}
