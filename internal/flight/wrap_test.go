package flight

import (
	"testing"

	"exacoll/internal/comm"
)

// stubComm is a minimal in-goroutine substrate: sends vanish, receives
// return the buffer length immediately. It lets the wrapper's hot paths
// run under testing.AllocsPerRun without coordinating rank goroutines.
type stubComm struct{ rank, size int }

func (s *stubComm) Rank() int                        { return s.rank }
func (s *stubComm) Size() int                        { return s.size }
func (s *stubComm) ChargeCompute(int)                {}
func (s *stubComm) Send(int, comm.Tag, []byte) error { return nil }
func (s *stubComm) Recv(_ int, _ comm.Tag, buf []byte) (int, error) {
	return len(buf), nil
}
func (s *stubComm) Isend(int, comm.Tag, []byte) (comm.Request, error) {
	return stubReq{}, nil
}
func (s *stubComm) Irecv(_ int, _ comm.Tag, buf []byte) (comm.Request, error) {
	return lenReq(len(buf)), nil
}

type stubReq struct{}

func (stubReq) Wait() error { return nil }
func (stubReq) Len() int    { return 0 }

type lenReq int

func (lenReq) Wait() error { return nil }
func (r lenReq) Len() int  { return int(r) }

// TestWrapZeroAllocs enforces the overhead discipline documented on Wrap:
// the blocking paths, Isend and the SendRecv exchange add no allocations.
// (Irecv allocates its one recvRequest wrapper by design and is excluded.)
func TestWrapZeroAllocs(t *testing.T) {
	fc := NewRecorder(Options{}).Wrap(&stubComm{rank: 0, size: 2})
	buf := make([]byte, 4096)
	rb := make([]byte, 4096)
	cases := map[string]func(){
		"Send": func() {
			if err := fc.Send(1, comm.TagCollBase, buf); err != nil {
				t.Fatal(err)
			}
		},
		"Recv": func() {
			if _, err := fc.Recv(1, comm.TagCollBase, rb); err != nil {
				t.Fatal(err)
			}
		},
		"Isend": func() {
			if _, err := fc.Isend(1, comm.TagCollBase, buf); err != nil {
				t.Fatal(err)
			}
		},
		"SendRecv": func() {
			if _, err := comm.SendRecv(fc, 1, buf, 1, rb, comm.TagCollBase); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, fn := range cases {
		if n := testing.AllocsPerRun(500, fn); n != 0 {
			t.Errorf("%s allocates %.1f/op through the flight wrapper, want 0", name, n)
		}
	}
}

// TestWrapEventStream checks each wrapped operation records the events
// the analysis passes depend on, with the right peers, tags and sizes.
func TestWrapEventStream(t *testing.T) {
	rec := NewRecorder(Options{})
	fc := rec.Wrap(&stubComm{rank: 0, size: 4})
	rr := RecorderOf(fc)
	if rr == nil {
		t.Fatal("RecorderOf(wrapped) = nil")
	}

	buf := make([]byte, 100)
	if err := fc.Send(2, 7, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Recv(3, 8, buf); err != nil {
		t.Fatal(err)
	}
	req, err := fc.Irecv(1, 9, buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := req.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := comm.SendRecv(fc, 2, buf, 2, buf, 10); err != nil {
		t.Fatal(err)
	}

	type want struct {
		kind  Kind
		peer  int32
		tag   int32
		bytes int32
	}
	wants := []want{
		{EvSendPost, 2, 7, 100},
		{EvSendComplete, 2, 7, 100},
		{EvRecvPost, 3, 8, 100},
		{EvRecvComplete, 3, 8, 100},
		{EvRecvPost, 1, 9, 100}, // Irecv post
		{EvWaitBegin, 1, 9, 0},
		{EvWaitEnd, 1, 9, 0},
		{EvRecvComplete, 1, 9, 100},
		{EvSendPost, 2, 10, 100}, // SendRecv exchange
		{EvRecvPost, 2, 10, 100},
		{EvRecvComplete, 2, 10, 100},
	}
	evs := rr.Snapshot().Events
	if len(evs) != len(wants) {
		t.Fatalf("recorded %d events, want %d: %+v", len(evs), len(wants), evs)
	}
	for i, w := range wants {
		e := evs[i]
		if e.Kind != w.kind || e.Peer != w.peer || e.Tag != w.tag || e.Bytes != w.bytes {
			t.Errorf("event %d = {%s peer %d tag %d bytes %d}, want {%s peer %d tag %d bytes %d}",
				i, e.Kind, e.Peer, e.Tag, e.Bytes, w.kind, w.peer, w.tag, w.bytes)
		}
		if i > 0 && e.T < evs[i-1].T {
			t.Errorf("event %d timestamp %d precedes event %d timestamp %d", i, e.T, i-1, evs[i-1].T)
		}
	}
	// The SendRecv fast path stamps both posts with one clock read.
	if evs[8].T != evs[9].T {
		t.Errorf("SendRecv post events have distinct timestamps %d, %d", evs[8].T, evs[9].T)
	}
}

// chainComm is an anonymous wrapper exposing only Unwrap, standing in for
// SubComm / the FT epoch comm / the metrics comm in the probe walk.
type chainComm struct {
	comm.Comm
	inner comm.Comm
}

func (c *chainComm) Unwrap() comm.Comm { return c.inner }

func TestRecorderOfWalksChains(t *testing.T) {
	base := &stubComm{rank: 1, size: 2}
	if RecorderOf(base) != nil {
		t.Fatal("RecorderOf(bare comm) != nil")
	}
	wrapped := NewRecorder(Options{}).Wrap(base)
	outer := &chainComm{Comm: wrapped, inner: wrapped}
	outer2 := &chainComm{Comm: outer, inner: outer}
	rr := RecorderOf(outer2)
	if rr == nil {
		t.Fatal("RecorderOf did not walk the wrapper chain")
	}
	if rr.WorldRank() != 1 {
		t.Fatalf("recorder rank %d, want 1", rr.WorldRank())
	}
	if RecorderOf(&chainComm{Comm: base, inner: base}) != nil {
		t.Fatal("RecorderOf found a recorder on an unrecorded chain")
	}
}
