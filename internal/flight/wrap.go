package flight

import (
	"sync"

	"exacoll/internal/comm"
)

// Recorded is implemented by communicators that carry a flight recorder
// for their rank. Probe with RecorderOf, which also walks wrapper chains.
type Recorded interface {
	FlightRecorder() *RankRecorder
}

// Unwrapper is implemented by communicator wrappers that can reveal the
// communicator they wrap (the errors.Unwrap convention). SubComm, the FT
// epoch comm, the metrics comm and the topo level comm all implement it
// so capability probes that cannot be forwarded method-by-method — like
// RecorderOf — can walk the stack.
type Unwrapper interface {
	Unwrap() comm.Comm
}

// RecorderOf returns the flight recorder reachable from c: c itself if it
// is the flight wrapper, or the first Recorded communicator found by
// unwrapping the wrapper chain. Nil when no recorder is attached —
// callers emitting optional events must nil-check.
func RecorderOf(c comm.Comm) *RankRecorder {
	for c != nil {
		if rc, ok := c.(Recorded); ok {
			return rc.FlightRecorder()
		}
		u, ok := c.(Unwrapper)
		if !ok {
			return nil
		}
		c = u.Unwrap()
	}
	return nil
}

// Wrap returns a comm.Comm recording every point-to-point operation of
// c's rank into the recorder's ring. The wrapper preserves the virtual
// clock (comm.Clock) of the communicator it wraps and forwards locality
// queries; metrics instrumentation beneath it stays discoverable through
// Unwrap (metrics.InstrumentedOf walks the chain), so flight must stay
// the outermost wrapper.
//
// Overhead discipline: the blocking Send/Recv paths and Isend add only a
// clock read and a ring-slot store per event — no allocations (enforced
// by TestWrapZeroAllocs and the gcabench flight gate). Irecv allocates
// one small request wrapper so the completion event can be recorded,
// matching what the substrate itself allocates per posted receive.
//
// Isend records only the post: wrapping the send request to observe its
// completion would allocate on the comm.SendRecv hot path, and eager
// semantics make a send's local completion uninformative (the transfer
// interval the analysis needs is send post → recv complete).
func (f *Recorder) Wrap(c comm.Comm) comm.Comm {
	rr := f.Rank(c.Rank())
	clk, clocked := comm.VirtualClock(c)
	if clocked {
		rr.clk = clk
	}
	base := &Comm{inner: c, rec: rr}
	if clocked {
		return &clockComm{base, clk}
	}
	return base
}

// Comm is the flight-recording communicator wrapper. Construct with
// Recorder.Wrap.
type Comm struct {
	inner comm.Comm
	rec   *RankRecorder
}

// FlightRecorder implements Recorded.
func (fc *Comm) FlightRecorder() *RankRecorder { return fc.rec }

// Unwrap implements Unwrapper.
func (fc *Comm) Unwrap() comm.Comm { return fc.inner }

// Rank implements comm.Comm.
func (fc *Comm) Rank() int { return fc.inner.Rank() }

// Size implements comm.Comm.
func (fc *Comm) Size() int { return fc.inner.Size() }

// ChargeCompute implements comm.Comm. The γ charge itself is not an
// event: reduction kernels bracket their work with EvReduceBegin/End
// explicitly (internal/core), which carries strictly more information.
func (fc *Comm) ChargeCompute(n int) { fc.inner.ChargeCompute(n) }

// Locality forwards comm.Locator to the substrate.
func (fc *Comm) Locality(rank int) (comm.Locality, bool) {
	return comm.LocalityOf(fc.inner, rank)
}

// Send implements comm.Comm: EvSendPost at entry, EvSendComplete when the
// eager buffering accepts the payload. Failed sends record no completion.
func (fc *Comm) Send(to int, tag comm.Tag, buf []byte) error {
	fc.rec.Record(EvSendPost, to, tag, len(buf), 0)
	err := fc.inner.Send(to, tag, buf)
	if err == nil {
		fc.rec.Record(EvSendComplete, to, tag, len(buf), 0)
	}
	return err
}

// Recv implements comm.Comm: EvRecvPost at entry, EvRecvComplete with the
// matched length on success. The interval between the two is the rank's
// blocked-or-transfer window for the message.
func (fc *Comm) Recv(from int, tag comm.Tag, buf []byte) (int, error) {
	fc.rec.Record(EvRecvPost, from, tag, len(buf), 0)
	n, err := fc.inner.Recv(from, tag, buf)
	if err == nil {
		fc.rec.Record(EvRecvComplete, from, tag, n, 0)
	}
	return n, err
}

// Isend implements comm.Comm, recording the post only (see Wrap) and
// returning the substrate's request as-is — zero per-call allocations.
func (fc *Comm) Isend(to int, tag comm.Tag, buf []byte) (comm.Request, error) {
	fc.rec.Record(EvSendPost, to, tag, len(buf), 0)
	req, err := fc.inner.Isend(to, tag, buf)
	if err != nil {
		return nil, err
	}
	return req, nil
}

// Irecv implements comm.Comm: EvRecvPost at the post, EvRecvComplete when
// Wait or Test observes completion, and EvWaitBegin/EvWaitEnd bracketing
// each blocking Wait on the request.
func (fc *Comm) Irecv(from int, tag comm.Tag, buf []byte) (comm.Request, error) {
	fc.rec.Record(EvRecvPost, from, tag, len(buf), 0)
	req, err := fc.inner.Irecv(from, tag, buf)
	if err != nil {
		return nil, err
	}
	return &recvRequest{Request: req, rec: fc.rec, from: int32(from), tag: tag}, nil
}

// SendRecv implements comm.SendRecver: the exchange's post events share
// one clock read, and only the receive completion pays a second — two
// clock reads instead of five for the equivalent Isend+Recv+Wait
// sequence. On the recursive-doubling hot path, where SendRecv is every
// round's only primitive, this is most of the recorder's overhead budget.
// The inner exchange goes through comm.SendRecv, so an inner communicator
// with its own fast path keeps it.
func (fc *Comm) SendRecv(to int, sendBuf []byte, from int, recvBuf []byte, tag comm.Tag) (int, error) {
	t0 := fc.rec.nowNs()
	fc.rec.RecordAt(t0, EvSendPost, to, tag, len(sendBuf), 0)
	fc.rec.RecordAt(t0, EvRecvPost, from, tag, len(recvBuf), 0)
	n, err := comm.SendRecv(fc.inner, to, sendBuf, from, recvBuf, tag)
	if err == nil {
		fc.rec.Record(EvRecvComplete, from, tag, n, 0)
	}
	return n, err
}

// recvRequest records a nonblocking receive's completion exactly once.
// Like the request itself, it must be driven by the rank's goroutine.
type recvRequest struct {
	comm.Request
	rec  *RankRecorder
	from int32
	tag  comm.Tag
	once sync.Once
}

// Wait implements comm.Request.
func (r *recvRequest) Wait() error {
	r.rec.Record(EvWaitBegin, int(r.from), r.tag, 0, 0)
	err := r.Request.Wait()
	r.rec.Record(EvWaitEnd, int(r.from), r.tag, 0, 0)
	if err == nil {
		r.once.Do(func() {
			r.rec.Record(EvRecvComplete, int(r.from), r.tag, r.Request.Len(), 0)
		})
	}
	return err
}

// Test implements comm.Tester when the wrapped request does, recording
// the completion event once on success (a successful poll never blocked,
// so no wait events). A non-polling inner request reports not-done so
// callers fall back to Wait.
func (r *recvRequest) Test() (bool, error) {
	done, err, ok := comm.TryTest(r.Request)
	if !ok || !done {
		return false, nil
	}
	if err == nil {
		r.once.Do(func() {
			r.rec.Record(EvRecvComplete, int(r.from), r.tag, r.Request.Len(), 0)
		})
	}
	return true, err
}

// clockComm re-exposes comm.Clock for clocked substrates.
type clockComm struct {
	*Comm
	clk comm.Clock
}

// Now implements comm.Clock.
func (c *clockComm) Now() float64 { return c.clk.Now() }
