package flight_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
	"exacoll/internal/flight"
	"exacoll/internal/machine"
	"exacoll/internal/simnet"
	"exacoll/internal/transport/faulty"
	"exacoll/internal/transport/mem"
)

// collectWorld runs recorded traffic and the collection protocol on a mem
// world, with an optional per-rank fault layer between the substrate and
// the recorder, and returns rank 0's dump.
func collectWorld(t *testing.T, p int, wrapFault func(comm.Comm) comm.Comm) *flight.Dump {
	t.Helper()
	w := mem.NewWorld(p)
	defer w.Close()
	rec := flight.NewRecorder(flight.Options{})
	var (
		mu   sync.Mutex
		dump *flight.Dump
	)
	err := w.Run(func(c comm.Comm) error {
		if wrapFault != nil {
			c = wrapFault(c)
		}
		fc := rec.Wrap(c)
		sb := make([]byte, 512)
		rb := make([]byte, 512)
		for i := 0; i < 3; i++ {
			if err := core.AllreduceRecDbl(fc, sb, rb, datatype.Sum, datatype.Float64); err != nil {
				return err
			}
		}
		d, err := flight.Collect(fc, flight.RecorderOf(fc), flight.CollectOptions{})
		if err != nil {
			return err
		}
		if d != nil {
			mu.Lock()
			dump = d
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("recorded world run: %v", err)
	}
	if dump == nil {
		t.Fatal("rank 0 returned no dump")
	}
	return dump
}

// checkMerged asserts the global timeline is sound: non-decreasing
// rebased time, and each rank's own stream order preserved exactly
// (alignment adds a per-rank constant, so it must not reorder a stream).
func checkMerged(t *testing.T, d *flight.Dump) {
	t.Helper()
	merged := d.Merged()
	if len(merged) == 0 {
		t.Fatal("merged timeline is empty")
	}
	lastSeq := make(map[int]int, d.P)
	for r := 0; r < d.P; r++ {
		lastSeq[r] = -1
	}
	for i, e := range merged {
		if i > 0 && e.T < merged[i-1].T {
			t.Fatalf("merged[%d].T = %d precedes merged[%d].T = %d", i, e.T, i-1, merged[i-1].T)
		}
		if e.Seq <= lastSeq[e.Rank] {
			t.Fatalf("merged[%d] breaks rank %d stream order: seq %d after %d",
				i, e.Rank, e.Seq, lastSeq[e.Rank])
		}
		lastSeq[e.Rank] = e.Seq
	}
}

// TestCollectMem covers the wall-clock path: every rank's rings gathered,
// probe offsets within their own error bound (all ranks share one process
// clock and one recorder epoch, so the true offset is zero), and a
// monotonic merged timeline.
func TestCollectMem(t *testing.T) {
	const p = 4
	d := collectWorld(t, p, nil)
	if d.P != p || len(d.Ranks) != p || len(d.OffsetNs) != p || len(d.BoundNs) != p {
		t.Fatalf("dump shape: P=%d ranks=%d offsets=%d bounds=%d, want %d each",
			d.P, len(d.Ranks), len(d.OffsetNs), len(d.BoundNs), p)
	}
	if d.Clocked {
		t.Fatal("mem transport reported a virtual clock")
	}
	for r := 0; r < p; r++ {
		if d.Ranks[r] == nil || d.Ranks[r].Rank != r {
			t.Fatalf("rank %d snapshot missing or misnumbered", r)
		}
		if len(d.Ranks[r].Events) == 0 {
			t.Fatalf("rank %d snapshot has no events", r)
		}
		off, bound := d.OffsetNs[r], d.BoundNs[r]
		if off < 0 {
			off = -off
		}
		if r == 0 && (off != 0 || bound != 0) {
			t.Fatalf("root's own offset %d±%d, want 0±0", d.OffsetNs[r], bound)
		}
		if off > bound {
			t.Fatalf("rank %d offset %d exceeds probe bound %d (true offset is 0: shared clock)",
				r, d.OffsetNs[r], bound)
		}
	}
	checkMerged(t, d)
}

// TestCollectFaultyJitter re-runs collection with random per-operation
// jitter under the recorder: probe RTTs inflate, so the Cristian bound
// must widen to keep covering the true (zero) offset, and the merge must
// stay ordered.
func TestCollectFaultyJitter(t *testing.T) {
	const p = 4
	d := collectWorld(t, p, func(c comm.Comm) comm.Comm {
		return faulty.New(c, faulty.Options{
			Seed:   int64(1000 + c.Rank()),
			Jitter: 200 * time.Microsecond,
		})
	})
	for r := 1; r < p; r++ {
		off, bound := d.OffsetNs[r], d.BoundNs[r]
		if off < 0 {
			off = -off
		}
		if off > bound {
			t.Fatalf("rank %d offset %d exceeds probe bound %d under jitter", r, d.OffsetNs[r], bound)
		}
	}
	checkMerged(t, d)
}

// TestCollectSimnet covers the virtual-clock path: the shared simulated
// clock is globally comparable as recorded, so collection must skip the
// probes and report exact alignment.
func TestCollectSimnet(t *testing.T) {
	const p = 4
	sim, err := simnet.New(machine.Testbox(), p)
	if err != nil {
		t.Fatal(err)
	}
	rec := flight.NewRecorder(flight.Options{})
	var (
		mu   sync.Mutex
		dump *flight.Dump
	)
	err = sim.Run(func(c comm.Comm) error {
		fc := rec.Wrap(c)
		sb := make([]byte, 512)
		rb := make([]byte, 512)
		if err := core.AllreduceRecDbl(fc, sb, rb, datatype.Sum, datatype.Float64); err != nil {
			return err
		}
		d, err := flight.Collect(fc, flight.RecorderOf(fc), flight.CollectOptions{})
		if err != nil {
			return err
		}
		if d != nil {
			mu.Lock()
			dump = d
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("simnet run: %v", err)
	}
	if dump == nil {
		t.Fatal("rank 0 returned no dump")
	}
	if !dump.Clocked {
		t.Fatal("simnet dump not marked clocked")
	}
	for r := 0; r < p; r++ {
		if dump.OffsetNs[r] != 0 || dump.BoundNs[r] != 0 {
			t.Fatalf("clocked rank %d aligned %d±%d, want exactly 0±0",
				r, dump.OffsetNs[r], dump.BoundNs[r])
		}
		if !dump.Ranks[r].Clocked {
			t.Fatalf("rank %d snapshot not marked clocked", r)
		}
	}
	checkMerged(t, dump)
}

// TestDumpJSONRoundTrip pins the `gcaviz flight` interchange format.
func TestDumpJSONRoundTrip(t *testing.T) {
	d := collectWorld(t, 2, nil)
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := flight.ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.P != d.P || got.Clocked != d.Clocked {
		t.Fatalf("round trip changed header: %+v vs %+v", got, d)
	}
	for r := range d.Ranks {
		if got.OffsetNs[r] != d.OffsetNs[r] || got.BoundNs[r] != d.BoundNs[r] {
			t.Fatalf("rank %d alignment changed in round trip", r)
		}
		if len(got.Ranks[r].Events) != len(d.Ranks[r].Events) {
			t.Fatalf("rank %d event count changed: %d vs %d",
				r, len(got.Ranks[r].Events), len(d.Ranks[r].Events))
		}
		for i, e := range d.Ranks[r].Events {
			if got.Ranks[r].Events[i] != e {
				t.Fatalf("rank %d event %d changed: %+v vs %+v", r, i, got.Ranks[r].Events[i], e)
			}
		}
	}
}

// TestReadDumpRejectsMalformed checks the validation flight.ReadDump applies to
// untrusted files.
func TestReadDumpRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not-json":      "{",
		"p-mismatch":    `{"p":3,"ranks":[{"rank":0,"events":[]}],"offset_ns":[0],"bound_ns":[0]}`,
		"rank-renumber": `{"p":1,"ranks":[{"rank":5,"events":[]}],"offset_ns":[0],"bound_ns":[0]}`,
		"no-offsets":    `{"p":1,"ranks":[{"rank":0,"events":[]}],"offset_ns":[],"bound_ns":[]}`,
	}
	for name, raw := range cases {
		if _, err := flight.ReadDump(bytes.NewReader([]byte(raw))); err == nil {
			t.Errorf("%s: flight.ReadDump accepted malformed input", name)
		}
	}
}
