package flight

import (
	"fmt"
	"io"
	"sort"
)

// Category classifies one critical-path segment.
type Category uint8

// Path segment categories. The walk keeps segments contiguous from the
// instance's global start to its global end, so the per-category sums
// attribute the full wall time of the collective.
const (
	// CatTransfer is wire-plus-matching time: from the matched send's
	// post (or the receive's post, whichever is later) to the receive's
	// completion — the α/β term of the hop.
	CatTransfer Category = iota
	// CatCompute is reduction-kernel time (the γ term).
	CatCompute
	// CatBlocked is time inside a Request.Wait not explained by a
	// matched transfer.
	CatBlocked
	// CatLocal is everything else on the owning rank: copies, schedule
	// bookkeeping, inter-event gaps (the per-message α overhead lands
	// here when the transport is not the bottleneck).
	CatLocal
	// CatSkew is arrival skew: the interval between the instance's
	// global start and the moment the path-origin rank entered the
	// collective — a late origin rank is a straggler.
	CatSkew
	numCategories
)

// String names the category for reports.
func (c Category) String() string {
	switch c {
	case CatTransfer:
		return "transfer"
	case CatCompute:
		return "compute"
	case CatBlocked:
		return "blocked"
	case CatLocal:
		return "local"
	case CatSkew:
		return "skew"
	}
	return "?"
}

// PathSeg is one contiguous interval of an instance's critical path.
type PathSeg struct {
	Rank    int      `json:"rank"`
	Cat     Category `json:"cat"`
	StartNs int64    `json:"start_ns"`
	EndNs   int64    `json:"end_ns"`
	Peer    int      `json:"peer,omitempty"` // transfer: the sending rank
}

// Hop is one send→recv edge on the critical path.
type Hop struct {
	// Round is the hop's 1-based position along the path, counted from
	// the collective's start.
	Round int   `json:"round"`
	From  int   `json:"from"`
	To    int   `json:"to"`
	Tag   int32 `json:"tag"`
	Bytes int32 `json:"bytes"`
	DurNs int64 `json:"dur_ns"`
}

// Instance is one analyzed collective call: the outermost
// EvCollBegin/EvCollEnd bracket, matched across ranks by position.
type Instance struct {
	// Index numbers the instance within the analyzed tail, oldest first.
	Index int `json:"index"`
	// Label is the outermost bracket's label (the session-level operation
	// name); Alg is the innermost selection's algorithm label when the
	// dispatch layer recorded one.
	Label string `json:"label"`
	Alg   string `json:"alg,omitempty"`
	K     int    `json:"k,omitempty"`
	// Bytes is the selection size recorded on the bracket.
	Bytes int `json:"bytes"`
	// StartNs/EndNs bound the instance globally (earliest begin, latest
	// end across ranks, aligned time); EndRank finished last.
	StartNs int64 `json:"start_ns"`
	EndNs   int64 `json:"end_ns"`
	EndRank int   `json:"end_rank"`
	// BeginNs[r] is rank r's aligned entry time (-1 if its bracket was
	// dropped from the ring).
	BeginNs []int64 `json:"begin_ns"`
	// Segs is the critical path, latest segment first (walk order).
	Segs []PathSeg `json:"segs"`
	// Hops are the path's send→recv edges in collective order.
	Hops []Hop `json:"hops,omitempty"`
	// ByCat[c] sums path time per Category; ByRank sums per rank
	// (transfer segments charge the receiving rank).
	ByCat  []int64 `json:"by_cat"`
	ByRank []int64 `json:"by_rank"`
}

// WallNs is the instance's global wall time.
func (in *Instance) WallNs() int64 { return in.EndNs - in.StartNs }

// AttributedNs sums the path segments; by construction it equals WallNs
// unless ring drops truncated the walk.
func (in *Instance) AttributedNs() int64 {
	var sum int64
	for _, s := range in.Segs {
		sum += s.EndNs - s.StartNs
	}
	return sum
}

// DominantHop returns the longest transfer edge (zero Hop, false when the
// path has no hops — e.g. p=1).
func (in *Instance) DominantHop() (Hop, bool) {
	best, ok := Hop{}, false
	for _, h := range in.Hops {
		if !ok || h.DurNs > best.DurNs {
			best, ok = h, true
		}
	}
	return best, ok
}

// Straggler returns the rank with the latest entry into the collective
// and its lateness relative to the earliest entry.
func (in *Instance) Straggler() (rank int, lateNs int64) {
	rank, lateNs = -1, 0
	for r, b := range in.BeginNs {
		if b < 0 {
			continue
		}
		if late := b - in.StartNs; rank < 0 || late > lateNs {
			rank, lateNs = r, late
		}
	}
	return rank, lateNs
}

// Analysis is the result of analyzing a dump.
type Analysis struct {
	Dump      *Dump       `json:"-"`
	Instances []*Instance `json:"instances"`
	// Skipped counts per-rank outermost brackets dropped because other
	// ranks' rings no longer held the matching instance.
	Skipped int `json:"skipped,omitempty"`
}

// instSpan is one outermost bracket in a rank's stream (indices into the
// aligned event slice).
type instSpan struct{ begin, end int }

// outermostSpans extracts the outermost EvCollBegin/EvCollEnd pairs of a
// rank stream. Nested brackets (per-level selections under a topo
// session call) stay inside their parent; an EvCollEnd whose begin was
// overwritten by the ring is discarded.
func outermostSpans(events []Event) []instSpan {
	depth, cur := 0, -1
	var spans []instSpan
	for i, e := range events {
		switch e.Kind {
		case EvCollBegin:
			if depth == 0 {
				cur = i
			}
			depth++
		case EvCollEnd:
			if depth == 0 {
				continue // dropped begin
			}
			depth--
			if depth == 0 && cur >= 0 {
				spans = append(spans, instSpan{cur, i})
				cur = -1
			}
		}
	}
	return spans
}

// ref addresses one event of one rank.
type ref struct{ rank, idx int }

// pkey identifies a matched message stream within one instance.
type pkey struct {
	from, to int32
	tag      int32
}

// Analyze groups the dump into collective instances and extracts each
// one's critical path. Instances are matched across ranks by position
// from the end of each rank's stream (every rank runs the same session
// collectives in the same order; matching from the end tolerates rings
// that dropped different amounts of history).
func (d *Dump) Analyze() *Analysis {
	a := &Analysis{Dump: d}
	p := len(d.Ranks)
	if p == 0 {
		return a
	}
	aligned := make([][]Event, p)
	spans := make([][]instSpan, p)
	n := -1
	total := 0
	for r := 0; r < p; r++ {
		aligned[r] = d.AlignedRank(r)
		spans[r] = outermostSpans(aligned[r])
		if n < 0 || len(spans[r]) < n {
			n = len(spans[r])
		}
		if len(spans[r]) > total {
			total = len(spans[r])
		}
	}
	if n <= 0 {
		return a
	}
	a.Skipped = total - n
	for i := 0; i < n; i++ {
		per := make([]instSpan, p)
		for r := 0; r < p; r++ {
			per[r] = spans[r][len(spans[r])-n+i]
		}
		a.Instances = append(a.Instances, d.analyzeInstance(i, aligned, per))
	}
	return a
}

// analyzeInstance runs the per-instance passes: cross-rank send/recv
// matching, then the backward critical-path walk from the last rank to
// finish.
func (d *Dump) analyzeInstance(index int, aligned [][]Event, per []instSpan) *Instance {
	p := len(per)
	in := &Instance{
		Index:   index,
		BeginNs: make([]int64, p),
		ByCat:   make([]int64, numCategories),
		ByRank:  make([]int64, p),
	}
	in.EndRank = 0
	first := true
	for r := 0; r < p; r++ {
		b, e := per[r].begin, per[r].end
		bt, et := aligned[r][b].T, aligned[r][e].T
		in.BeginNs[r] = bt
		if first || bt < in.StartNs {
			in.StartNs = bt
		}
		if first || et > in.EndNs {
			in.EndNs, in.EndRank = et, r
		}
		first = false
	}
	// Identity: label/size from the end rank's outermost begin; algorithm
	// detail from the first nested bracket recorded beneath it.
	er := in.EndRank
	begin := aligned[er][per[er].begin]
	label, _, k, _ := UnpackColl(begin.Arg)
	in.Label = d.Ranks[er].Label(label)
	in.K = k
	in.Bytes = int(begin.Bytes)
	for i := per[er].begin + 1; i <= per[er].end; i++ {
		if aligned[er][i].Kind == EvCollBegin {
			al, _, ak, _ := UnpackColl(aligned[er][i].Arg)
			in.Alg = d.Ranks[er].Label(al)
			if ak > 0 {
				in.K = ak
			}
			if in.Bytes == 0 {
				in.Bytes = int(aligned[er][i].Bytes)
			}
			break
		}
	}

	// Cross-rank matching: per (sender, receiver, tag) stream, the j-th
	// send post from the end pairs with the j-th receive completion from
	// the end (FIFO per (source, tag); end-anchored so partial rings
	// drop the oldest pairs, not the pairing).
	sends := map[pkey][]ref{}
	posts := map[pkey][]ref{}
	compl := map[pkey][]ref{}
	for r := 0; r < p; r++ {
		for i := per[r].begin; i <= per[r].end; i++ {
			e := aligned[r][i]
			switch e.Kind {
			case EvSendPost:
				k := pkey{int32(r), e.Peer, e.Tag}
				sends[k] = append(sends[k], ref{r, i})
			case EvRecvPost:
				k := pkey{e.Peer, int32(r), e.Tag}
				posts[k] = append(posts[k], ref{r, i})
			case EvRecvComplete:
				k := pkey{e.Peer, int32(r), e.Tag}
				compl[k] = append(compl[k], ref{r, i})
			}
		}
	}
	matchSend := map[ref]ref{} // recv completion -> send post
	matchPost := map[ref]ref{} // recv completion -> recv post
	for k, cs := range compl {
		ss := sends[k]
		ps := posts[k]
		for j := 0; j < len(cs); j++ {
			c := cs[len(cs)-1-j]
			if j < len(ss) {
				matchSend[c] = ss[len(ss)-1-j]
			}
			if j < len(ps) {
				matchPost[c] = ps[len(ps)-1-j]
			}
		}
	}

	// Backward walk from the global end. Each step attributes a
	// contiguous interval [x, t) and moves t down to x, so the segments
	// tile [StartNs, EndNs] exactly; a matched send posted after the
	// receive was ready jumps the walk to the sending rank.
	seg := func(rank int, cat Category, start, end int64, peer int) {
		if end <= start {
			return
		}
		in.Segs = append(in.Segs, PathSeg{Rank: rank, Cat: cat, StartNs: start, EndNs: end, Peer: peer})
		in.ByCat[cat] += end - start
		in.ByRank[rank] += end - start
	}
	// nearestBefore finds the closest event of kind k before index i on
	// rank r within the instance window (-1 if none).
	nearestBefore := func(r, i int, k Kind) int {
		for j := i - 1; j >= per[r].begin; j-- {
			if aligned[r][j].Kind == k {
				return j
			}
		}
		return -1
	}
	cur := in.EndRank
	t := in.EndNs
	i := per[cur].end - 1
	var hops []Hop
	for steps := 0; ; steps++ {
		if steps > 1<<22 { // defensive bound; cannot trigger on well-formed dumps
			break
		}
		if i <= per[cur].begin {
			bt := aligned[cur][per[cur].begin].T
			seg(cur, CatLocal, bt, t, -1)
			seg(cur, CatSkew, in.StartNs, bt, -1)
			break
		}
		e := aligned[cur][i]
		if e.T > t {
			i--
			continue
		}
		switch e.Kind {
		case EvRecvComplete:
			seg(cur, CatLocal, e.T, t, -1)
			t = e.T
			lower := t
			if pr, ok := matchPost[ref{cur, i}]; ok {
				lower = aligned[pr.rank][pr.idx].T
			}
			if sr, ok := matchSend[ref{cur, i}]; ok {
				st := aligned[sr.rank][sr.idx].T
				if st > lower {
					// Sender-limited: the wire interval starts at the send
					// post; follow the path onto the sending rank.
					seg(cur, CatTransfer, st, t, sr.rank)
					hops = append(hops, Hop{From: sr.rank, To: cur, Tag: int32(e.Tag), Bytes: e.Bytes, DurNs: t - st})
					cur, t = sr.rank, st
					i = sr.idx
					continue
				}
			}
			// Receiver-limited (or unmatched): the transfer window is
			// bounded by the receive post; stay on this rank.
			seg(cur, CatTransfer, lower, t, int(e.Peer))
			hops = append(hops, Hop{From: int(e.Peer), To: cur, Tag: int32(e.Tag), Bytes: e.Bytes, DurNs: t - lower})
			t = lower
			i--
		case EvReduceEnd:
			seg(cur, CatLocal, e.T, t, -1)
			t = e.T
			if j := nearestBefore(cur, i, EvReduceBegin); j >= 0 {
				seg(cur, CatCompute, aligned[cur][j].T, t, -1)
				t = aligned[cur][j].T
				i = j
			}
			i--
		case EvWaitEnd:
			seg(cur, CatLocal, e.T, t, -1)
			t = e.T
			if j := nearestBefore(cur, i, EvWaitBegin); j >= 0 {
				seg(cur, CatBlocked, aligned[cur][j].T, t, -1)
				t = aligned[cur][j].T
				i = j
			}
			i--
		default:
			seg(cur, CatLocal, e.T, t, -1)
			t = e.T
			i--
		}
	}
	// Hops were collected walking backward; number them in collective
	// order.
	for j := len(hops) - 1; j >= 0; j-- {
		h := hops[j]
		h.Round = len(hops) - j
		in.Hops = append(in.Hops, h)
	}
	return in
}

// fmtNs renders nanoseconds as microseconds with 0.1 us resolution.
func fmtNs(ns int64) string { return fmt.Sprintf("%.1fus", float64(ns)/1e3) }

// pct renders part/whole as a percentage.
func pct(part, whole int64) string {
	if whole <= 0 {
		return "0%"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(part)/float64(whole))
}

// WriteReport renders the plain-text per-collective report: one block per
// instance with wall time, critical-path attribution by category, the
// dominant hop (rank and round), per-rank path residency and straggler.
func (a *Analysis) WriteReport(w io.Writer) error {
	d := a.Dump
	var dropped uint64
	for _, rd := range d.Ranks {
		dropped += rd.Dropped
	}
	clock := "wall clocks aligned by probe"
	if d.Clocked {
		clock = "shared virtual clock"
	}
	fmt.Fprintf(w, "flight: %d ranks, %s, %d collective instance(s)", d.P, clock, len(a.Instances))
	if dropped > 0 {
		fmt.Fprintf(w, ", %d events dropped by ring wrap", dropped)
	}
	if a.Skipped > 0 {
		fmt.Fprintf(w, ", %d older instance(s) incomplete across ranks", a.Skipped)
	}
	fmt.Fprintln(w)
	if !d.Clocked {
		worst := int64(0)
		for _, b := range d.BoundNs {
			if b > worst {
				worst = b
			}
		}
		fmt.Fprintf(w, "clock offsets: worst probe bound ±%s\n", fmtNs(worst))
	}
	for _, in := range a.Instances {
		wall := in.WallNs()
		name := in.Label
		if name == "" {
			name = "collective"
		}
		if in.Alg != "" && in.Alg != name {
			name += "/" + in.Alg
		}
		if in.K > 0 {
			name += fmt.Sprintf(" k=%d", in.K)
		}
		fmt.Fprintf(w, "\n#%d %s %dB  p=%d  wall %s  finished on rank %d\n",
			in.Index, name, in.Bytes, d.P, fmtNs(wall), in.EndRank)
		fmt.Fprintf(w, "  path:")
		for c := Category(0); c < numCategories; c++ {
			if v := in.ByCat[c]; v > 0 {
				fmt.Fprintf(w, "  %s %s (%s)", c, fmtNs(v), pct(v, wall))
			}
		}
		fmt.Fprintf(w, "\n  attributed %s of wall\n", pct(in.AttributedNs(), wall))
		if h, ok := in.DominantHop(); ok {
			fmt.Fprintf(w, "  dominant hop: round %d/%d  rank %d -> rank %d  tag %d  %dB  %s (%s of wall)\n",
				h.Round, len(in.Hops), h.From, h.To, h.Tag, h.Bytes, fmtNs(h.DurNs), pct(h.DurNs, wall))
		}
		type rload struct {
			rank int
			ns   int64
		}
		loads := make([]rload, 0, len(in.ByRank))
		for r, v := range in.ByRank {
			if v > 0 {
				loads = append(loads, rload{r, v})
			}
		}
		sort.Slice(loads, func(i, j int) bool { return loads[i].ns > loads[j].ns })
		if len(loads) > 0 {
			fmt.Fprintf(w, "  path residency:")
			for i, l := range loads {
				if i == 4 {
					fmt.Fprintf(w, "  ...")
					break
				}
				fmt.Fprintf(w, "  rank %d %s (%s)", l.rank, fmtNs(l.ns), pct(l.ns, wall))
			}
			fmt.Fprintln(w)
		}
		if r, late := in.Straggler(); r >= 0 && late > 0 {
			fmt.Fprintf(w, "  straggler: rank %d entered %s after the first rank\n", r, fmtNs(late))
		}
	}
	return nil
}
