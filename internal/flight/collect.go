package flight

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"exacoll/internal/comm"
)

// Collection-window tags (see comm.TagFlightBase).
const (
	tagProbePing = comm.TagFlightBase + 0 // root -> rank: 8-byte nonce
	tagProbePong = comm.TagFlightBase + 1 // rank -> root: 8-byte local time
	tagDumpSize  = comm.TagFlightBase + 2 // rank -> root: 8-byte payload size
	tagDumpData  = comm.TagFlightBase + 3 // rank -> root: marshalled ring
)

// DefaultProbes is the number of clock-offset probe round trips per rank
// when CollectOptions leaves it zero. The minimum-RTT probe wins, so a
// handful of trips suppresses scheduling-noise outliers.
const DefaultProbes = 8

// CollectOptions configures a collection.
type CollectOptions struct {
	// Probes is the number of offset probe round trips per rank (0 means
	// DefaultProbes). Ignored on virtual-clock substrates, whose ranks
	// already share one global clock.
	Probes int
}

// Dump is the cross-rank collection result: every rank's ring snapshot
// plus the clock alignment that maps each rank's local timestamps into
// rank 0's time base. It serializes as JSON (WriteJSON / ReadDump) for
// `gcaviz flight`.
type Dump struct {
	// P is the communicator size the dump was collected from.
	P int `json:"p"`
	// Clocked reports virtual-clock timestamps (globally comparable as
	// recorded; offsets are zero).
	Clocked bool `json:"clocked"`
	// Ranks holds one snapshot per rank, indexed by rank.
	Ranks []*RankDump `json:"ranks"`
	// OffsetNs[r] added to rank r's local timestamps yields rank 0's time
	// base (Cristian's algorithm, minimum-RTT probe).
	OffsetNs []int64 `json:"offset_ns"`
	// BoundNs[r] is the probe's half-RTT error bound on OffsetNs[r]: the
	// true offset lies within OffsetNs[r] ± BoundNs[r].
	BoundNs []int64 `json:"bound_ns"`
}

// Collect gathers every rank's flight ring over the communicator itself
// and aligns the per-rank clocks: each rank snapshots its own ring
// (single-writer discipline — c and rec must belong to the calling
// goroutine's rank), the root runs offset probes against every rank, and
// the rings stream to rank 0. Collective: every rank of c must call it.
// The merged Dump returns on rank 0; other ranks return (nil, nil).
//
// Collection traffic itself is recorded when c is the flight wrapper —
// the snapshot is taken first, so the dump never contains its own
// collection.
func Collect(c comm.Comm, rec *RankRecorder, opts CollectOptions) (*Dump, error) {
	if rec == nil {
		return nil, fmt.Errorf("flight: collect without a recorder")
	}
	probes := opts.Probes
	if probes <= 0 {
		probes = DefaultProbes
	}
	snap := rec.Snapshot()
	p := c.Size()
	if c.Rank() != 0 {
		return nil, serveCollect(c, rec, snap, probes)
	}

	d := &Dump{
		P:        p,
		Clocked:  snap.Clocked,
		Ranks:    make([]*RankDump, p),
		OffsetNs: make([]int64, p),
		BoundNs:  make([]int64, p),
	}
	d.Ranks[0] = snap
	var buf8 [8]byte
	for r := 1; r < p; r++ {
		// Clock alignment: Cristian's algorithm, best-of-N probes. On a
		// virtual-clock substrate all ranks read one global clock, so the
		// offset is exactly zero — but the probe exchange still runs (the
		// remote rank always serves it) to keep the protocol uniform.
		bestOff, bestBound := int64(0), int64(math.MaxInt64)
		for i := 0; i < probes; i++ {
			t0 := rec.nowNs()
			if err := c.Send(r, tagProbePing, buf8[:]); err != nil {
				return nil, fmt.Errorf("flight: probe ping rank %d: %w", r, err)
			}
			if _, err := c.Recv(r, tagProbePong, buf8[:]); err != nil {
				return nil, fmt.Errorf("flight: probe pong rank %d: %w", r, err)
			}
			t1 := rec.nowNs()
			remote := int64(binary.LittleEndian.Uint64(buf8[:]))
			rtt := t1 - t0
			if rtt < 0 {
				rtt = 0
			}
			bound := rtt/2 + 1 // +1 ns: clock granularity floor
			if bound < bestBound {
				// offset maps remote time into the root base: the pong was
				// stamped near the probe midpoint (t0+t1)/2 of root time.
				bestOff = t0 + rtt/2 - remote
				bestBound = bound
			}
		}
		if snap.Clocked {
			bestOff, bestBound = 0, 0
		}
		d.OffsetNs[r] = bestOff
		d.BoundNs[r] = bestBound

		if _, err := c.Recv(r, tagDumpSize, buf8[:]); err != nil {
			return nil, fmt.Errorf("flight: dump size rank %d: %w", r, err)
		}
		payload := make([]byte, binary.LittleEndian.Uint64(buf8[:]))
		if _, err := c.Recv(r, tagDumpData, payload); err != nil {
			return nil, fmt.Errorf("flight: dump data rank %d: %w", r, err)
		}
		rd, err := unmarshalRankDump(payload)
		if err != nil {
			return nil, fmt.Errorf("flight: rank %d: %w", r, err)
		}
		if rd.Rank != r {
			return nil, fmt.Errorf("flight: dump from rank %d claims rank %d", r, rd.Rank)
		}
		d.Ranks[r] = rd
	}
	return d, nil
}

// serveCollect is the non-root side: answer the root's probes, then
// stream the snapshot.
func serveCollect(c comm.Comm, rec *RankRecorder, snap *RankDump, probes int) error {
	var buf8 [8]byte
	for i := 0; i < probes; i++ {
		if _, err := c.Recv(0, tagProbePing, buf8[:]); err != nil {
			return fmt.Errorf("flight: probe ping: %w", err)
		}
		binary.LittleEndian.PutUint64(buf8[:], uint64(rec.nowNs()))
		if err := c.Send(0, tagProbePong, buf8[:]); err != nil {
			return fmt.Errorf("flight: probe pong: %w", err)
		}
	}
	payload := marshalRankDump(snap)
	binary.LittleEndian.PutUint64(buf8[:], uint64(len(payload)))
	if err := c.Send(0, tagDumpSize, buf8[:]); err != nil {
		return fmt.Errorf("flight: dump size: %w", err)
	}
	if err := c.Send(0, tagDumpData, payload); err != nil {
		return fmt.Errorf("flight: dump data: %w", err)
	}
	return nil
}

// rankDumpMagic guards the wire/file format of one marshalled ring.
const rankDumpMagic = 0x464c5431 // "FLT1"

// marshalRankDump encodes a snapshot in the fixed little-endian layout:
// magic, rank, flags, dropped, label table, then 29 bytes per event.
func marshalRankDump(d *RankDump) []byte {
	var b bytes.Buffer
	w := func(v any) { binary.Write(&b, binary.LittleEndian, v) }
	w(uint32(rankDumpMagic))
	w(int32(d.Rank))
	flags := uint32(0)
	if d.Clocked {
		flags = 1
	}
	w(flags)
	w(d.Dropped)
	w(uint32(len(d.Labels)))
	for _, s := range d.Labels {
		w(uint32(len(s)))
		b.WriteString(s)
	}
	w(uint32(len(d.Events)))
	for _, e := range d.Events {
		w(e.T)
		w(e.Arg)
		w(e.Peer)
		w(e.Tag)
		w(e.Bytes)
		w(uint8(e.Kind))
	}
	return b.Bytes()
}

// unmarshalRankDump reverses marshalRankDump.
func unmarshalRankDump(p []byte) (*RankDump, error) {
	b := bytes.NewReader(p)
	rd := func(v any) error { return binary.Read(b, binary.LittleEndian, v) }
	var magic, flags, n uint32
	var rank int32
	d := &RankDump{}
	if err := rd(&magic); err != nil {
		return nil, err
	}
	if magic != rankDumpMagic {
		return nil, fmt.Errorf("bad dump magic %#x", magic)
	}
	if err := rd(&rank); err != nil {
		return nil, err
	}
	if err := rd(&flags); err != nil {
		return nil, err
	}
	d.Rank, d.Clocked = int(rank), flags&1 != 0
	if err := rd(&d.Dropped); err != nil {
		return nil, err
	}
	if err := rd(&n); err != nil {
		return nil, err
	}
	if int(n) > len(p) {
		return nil, fmt.Errorf("label count %d exceeds payload", n)
	}
	d.Labels = make([]string, n)
	for i := range d.Labels {
		var ln uint32
		if err := rd(&ln); err != nil {
			return nil, err
		}
		s := make([]byte, ln)
		if _, err := io.ReadFull(b, s); err != nil {
			return nil, err
		}
		d.Labels[i] = string(s)
	}
	if err := rd(&n); err != nil {
		return nil, err
	}
	if int(n) > len(p)/29+1 {
		return nil, fmt.Errorf("event count %d exceeds payload", n)
	}
	d.Events = make([]Event, n)
	for i := range d.Events {
		e := &d.Events[i]
		var kind uint8
		if err := rd(&e.T); err != nil {
			return nil, err
		}
		if err := rd(&e.Arg); err != nil {
			return nil, err
		}
		if err := rd(&e.Peer); err != nil {
			return nil, err
		}
		if err := rd(&e.Tag); err != nil {
			return nil, err
		}
		if err := rd(&e.Bytes); err != nil {
			return nil, err
		}
		if err := rd(&kind); err != nil {
			return nil, err
		}
		e.Kind = Kind(kind)
	}
	return d, nil
}

// WriteJSON writes the dump as indented JSON — the on-disk format
// `gcaviz flight` reads.
func (d *Dump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// ReadDump parses a JSON dump.
func ReadDump(r io.Reader) (*Dump, error) {
	var d Dump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("flight: reading dump: %w", err)
	}
	if d.P != len(d.Ranks) || len(d.OffsetNs) != d.P || len(d.BoundNs) != d.P {
		return nil, fmt.Errorf("flight: dump inconsistent: p=%d ranks=%d offsets=%d bounds=%d",
			d.P, len(d.Ranks), len(d.OffsetNs), len(d.BoundNs))
	}
	for r, rd := range d.Ranks {
		if rd == nil {
			return nil, fmt.Errorf("flight: dump missing rank %d", r)
		}
		if rd.Rank != r {
			return nil, fmt.Errorf("flight: dump rank %d claims rank %d", r, rd.Rank)
		}
	}
	return &d, nil
}
