// Package flight is the always-on flight recorder: a fixed-size,
// allocation-free ring buffer of binary trace events per rank, recorded
// from the communicator wrapper stack (send/recv post and completion),
// the collective dispatch layer (collective begin/end with the chosen
// algorithm and radix), the reduction kernels (compute begin/end and
// segment boundaries), the fault-tolerance agreement rounds, and the
// hierarchical composition engine's per-level phases.
//
// Unlike internal/trace — an opt-in, unbounded, lock-guarded event log
// used by the simulator harnesses — the flight recorder is built to stay
// enabled on production hot paths: recording one event is a clock read
// and a struct store into a preallocated ring slot (zero allocations,
// enforced by an AllocsPerRun test and a gcabench overhead gate), and a
// full ring silently overwrites the oldest events, so the recorder's
// cost is constant no matter how long the run.
//
// After a run (or at any collective point), Collect gathers every rank's
// ring over the communicator itself, aligns the per-rank clocks with
// offset probes (Cristian's algorithm on wall-clock transports; exact on
// virtual-clock substrates), and produces a merged Timeline that renders
// as Chrome trace-event JSON and supports critical-path extraction,
// per-hop latency attribution, and straggler detection (see analysis.go
// and `gcaviz flight`).
//
// Ownership discipline (mirrors the communicator's): one RankRecorder is
// owned by the goroutine driving that rank's communicator handle.
// Recording and Snapshot are single-writer operations on that goroutine;
// cross-goroutine readers use Published (an atomically swapped immutable
// copy) or the happens-before edge of joining the world's Run.
package flight

import (
	"sync"
	"sync/atomic"
	"time"

	"exacoll/internal/comm"
)

// Kind labels one binary trace event.
type Kind uint8

// Event kinds. Post/complete pairs bracket an operation on one rank's
// timeline; Begin/End pairs bracket labeled intervals.
const (
	EvNone Kind = iota
	// EvSendPost marks a send handed to the transport (blocking Send entry,
	// or Isend post). Peer/Tag/Bytes describe the message.
	EvSendPost
	// EvSendComplete marks the send's local completion (eager buffering
	// accepted the payload; the buffer is reusable).
	EvSendComplete
	// EvRecvPost marks a receive posted (blocking Recv entry, or Irecv).
	EvRecvPost
	// EvRecvComplete marks a receive matched and copied out; Bytes is the
	// matched length. The interval since the matching EvRecvPost is the
	// rank's blocked-or-transfer window for that message.
	EvRecvComplete
	// EvWaitBegin marks entry into a blocking Request.Wait.
	EvWaitBegin
	// EvWaitEnd marks the wait returning (successful waits on receives are
	// followed by the EvRecvComplete carrying the byte count).
	EvWaitEnd
	// EvReduceBegin/EvReduceEnd bracket one reduction-kernel application of
	// Bytes bytes (the γ term).
	EvReduceBegin
	EvReduceEnd
	// EvSegment marks a pipeline segment boundary: Arg is the segment
	// index, Bytes the segment size.
	EvSegment
	// EvCollBegin/EvCollEnd bracket one collective call. Arg packs the
	// label id of the algorithm (or op) name, the op code, the radix and
	// the low bits of the collective epoch — see PackColl. Bytes is the
	// selection size.
	EvCollBegin
	EvCollEnd
	// EvPhaseBegin/EvPhaseEnd bracket one hierarchical-composition phase
	// (node phase, leader phase, root hop); Arg carries the phase label id.
	EvPhaseBegin
	EvPhaseEnd
	// EvAgreeBegin/EvAgreeEnd bracket one fault-tolerance error-agreement
	// exchange; Arg is the agreement sequence number.
	EvAgreeBegin
	EvAgreeEnd
	// EvMark is a free-form point event labeled by Arg's label id.
	EvMark
)

// String names the kind for reports and dumps.
func (k Kind) String() string {
	switch k {
	case EvSendPost:
		return "send_post"
	case EvSendComplete:
		return "send_done"
	case EvRecvPost:
		return "recv_post"
	case EvRecvComplete:
		return "recv_done"
	case EvWaitBegin:
		return "wait_begin"
	case EvWaitEnd:
		return "wait_end"
	case EvReduceBegin:
		return "reduce_begin"
	case EvReduceEnd:
		return "reduce_end"
	case EvSegment:
		return "segment"
	case EvCollBegin:
		return "coll_begin"
	case EvCollEnd:
		return "coll_end"
	case EvPhaseBegin:
		return "phase_begin"
	case EvPhaseEnd:
		return "phase_end"
	case EvAgreeBegin:
		return "agree_begin"
	case EvAgreeEnd:
		return "agree_end"
	case EvMark:
		return "mark"
	}
	return "none"
}

// Event is one fixed-size binary trace record. The struct is 32 bytes;
// a ring slot is written in place, never allocated per event.
type Event struct {
	// T is the recording rank's local timestamp in nanoseconds: virtual
	// time on clocked substrates, monotonic nanoseconds since the
	// recorder's epoch otherwise. Cross-rank comparison requires the
	// merge-time clock alignment (Timeline.Aligned).
	T int64 `json:"t"`
	// Arg is kind-specific payload (see the Kind docs and PackColl).
	Arg uint64 `json:"arg,omitempty"`
	// Peer is the other rank of a point-to-point event (-1 otherwise),
	// in the recorder's world numbering.
	Peer int32 `json:"peer"`
	// Tag is the message tag of a point-to-point event.
	Tag int32 `json:"tag,omitempty"`
	// Bytes is the payload size of the event, where meaningful.
	Bytes int32 `json:"bytes,omitempty"`
	// Kind labels the event.
	Kind Kind `json:"kind"`
}

// PackColl packs an EvCollBegin/EvCollEnd Arg: label id (the interned
// algorithm or op name), op code (core.CollOp), radix and the low 16 bits
// of the collective epoch.
func PackColl(label uint32, op int, k int, epoch int64) uint64 {
	return uint64(label)<<40 | uint64(uint8(op))<<32 | uint64(uint16(k))<<16 | uint64(uint16(epoch))
}

// UnpackColl reverses PackColl.
func UnpackColl(arg uint64) (label uint32, op int, k int, epoch int) {
	return uint32(arg >> 40), int(uint8(arg >> 32)), int(uint16(arg >> 16)), int(uint16(arg))
}

// PackLabel packs a bare label id into an Arg (phases, marks).
func PackLabel(label uint32) uint64 { return uint64(label) << 40 }

// LabelOf extracts the label id of a packed Arg.
func LabelOf(arg uint64) uint32 { return uint32(arg >> 40) }

// DefaultRingSize is the per-rank ring capacity in events when Options
// leaves it zero: 64Ki events x 32 bytes = 2 MiB per rank, roughly the
// last few thousand collective calls of a small-message workload.
const DefaultRingSize = 1 << 16

// MinReduceBracketBytes is the reduction-kernel size below which emitters
// skip the EvReduceBegin/EvReduceEnd bracket. A small kernel (a 4 KiB f64
// sum runs in a few hundred nanoseconds) costs less than the two clock
// reads that would time it, and the always-on overhead budget is spent
// where attribution matters: on large payloads, where the γ term can
// dominate a round. Sub-threshold compute folds into the critical path's
// "local" category.
const MinReduceBracketBytes = 16 << 10

// Options configures a Recorder.
type Options struct {
	// RingSize is the per-rank ring capacity in events; it is rounded up
	// to a power of two. 0 means DefaultRingSize.
	RingSize int
}

// Recorder owns the per-rank flight rings of one world — share one
// Recorder across all ranks of a process, exactly like metrics.Registry.
// Rank recorders are created lazily and never freed.
type Recorder struct {
	ringSize int
	epoch    time.Time // shared wall base for all in-process ranks

	mu    sync.Mutex
	ranks map[int]*RankRecorder
}

// NewRecorder returns an empty recorder.
func NewRecorder(opts Options) *Recorder {
	size := opts.RingSize
	if size <= 0 {
		size = DefaultRingSize
	}
	// Round up to a power of two so the ring mask is a single AND.
	n := 1
	for n < size {
		n <<= 1
	}
	return &Recorder{ringSize: n, epoch: time.Now(), ranks: map[int]*RankRecorder{}}
}

// RingSize returns the per-rank ring capacity in events.
func (f *Recorder) RingSize() int { return f.ringSize }

// Rank returns (creating on first use) the recorder for one rank. The
// returned RankRecorder must only be driven by the goroutine that drives
// that rank's communicator handle.
func (f *Recorder) Rank(rank int) *RankRecorder {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.ranks[rank]
	if !ok {
		r = &RankRecorder{
			rank:     rank,
			epoch:    f.epoch,
			buf:      make([]Event, f.ringSize),
			mask:     uint64(f.ringSize - 1),
			labelIdx: map[string]uint32{},
		}
		f.ranks[rank] = r
	}
	return r
}

// RankRecorder is one rank's flight ring. Single-writer: only the rank's
// driving goroutine records, snapshots, or publishes.
type RankRecorder struct {
	rank  int
	clk   comm.Clock // non-nil iff the substrate tracks virtual time
	epoch time.Time

	buf  []Event
	mask uint64
	next uint64 // events ever recorded; next & mask is the write slot

	labels   []string
	labelIdx map[string]uint32

	published atomic.Pointer[RankDump]
}

// WorldRank returns the rank this recorder records for.
func (r *RankRecorder) WorldRank() int { return r.rank }

// nowNs returns the rank's local timestamp: virtual seconds scaled to
// nanoseconds on clocked substrates, monotonic wall nanoseconds since the
// recorder's epoch otherwise.
func (r *RankRecorder) nowNs() int64 {
	if r.clk != nil {
		return int64(r.clk.Now() * 1e9)
	}
	return int64(time.Since(r.epoch))
}

// Record appends one event to the ring, overwriting the oldest when full.
// Zero allocations; safe only on the owning goroutine.
func (r *RankRecorder) Record(k Kind, peer int, tag comm.Tag, bytes int, arg uint64) {
	i := r.next & r.mask
	r.buf[i] = Event{
		T: r.nowNs(), Arg: arg,
		Peer: int32(peer), Tag: int32(tag), Bytes: int32(bytes), Kind: k,
	}
	r.next++
}

// RecordAt is Record with a caller-supplied timestamp (already in the
// rank's local time base) — used when one clock read brackets two events.
func (r *RankRecorder) RecordAt(t int64, k Kind, peer int, tag comm.Tag, bytes int, arg uint64) {
	i := r.next & r.mask
	r.buf[i] = Event{
		T: t, Arg: arg,
		Peer: int32(peer), Tag: int32(tag), Bytes: int32(bytes), Kind: k,
	}
	r.next++
}

// Mark records a labeled point event.
func (r *RankRecorder) Mark(label string) {
	r.Record(EvMark, -1, 0, 0, PackLabel(r.LabelID(label)))
}

// LabelID interns a label string and returns its id for Arg packing.
// A hit is a map lookup (no allocation); only the first use of a new
// label allocates. Ids are stable for the life of the recorder.
func (r *RankRecorder) LabelID(s string) uint32 {
	if id, ok := r.labelIdx[s]; ok {
		return id
	}
	id := uint32(len(r.labels))
	r.labels = append(r.labels, s)
	r.labelIdx[s] = id
	return id
}

// Label resolves an interned id ("" when out of range).
func (r *RankRecorder) Label(id uint32) string {
	if int(id) < len(r.labels) {
		return r.labels[id]
	}
	return ""
}

// Events returns the count of events ever recorded (including overwritten
// ones).
func (r *RankRecorder) Events() uint64 { return r.next }

// Dropped returns how many events the ring has overwritten.
func (r *RankRecorder) Dropped() uint64 {
	if r.next <= uint64(len(r.buf)) {
		return 0
	}
	return r.next - uint64(len(r.buf))
}

// RankDump is an immutable copy of one rank's ring: events oldest-first,
// plus the label table that resolves their Arg label ids.
type RankDump struct {
	Rank int `json:"rank"`
	// Clocked reports whether T values are virtual time (a shared global
	// clock) rather than per-process wall time.
	Clocked bool `json:"clocked"`
	// Dropped counts ring overwrites: the dump holds only the newest
	// ring-size events.
	Dropped uint64   `json:"dropped"`
	Labels  []string `json:"labels,omitempty"`
	Events  []Event  `json:"events"`
}

// Label resolves an interned label id in this dump.
func (d *RankDump) Label(id uint32) string {
	if int(id) < len(d.Labels) {
		return d.Labels[id]
	}
	return ""
}

// Snapshot copies the ring (oldest event first). Owning goroutine only,
// or after a happens-before edge with it (e.g. the world Run join).
func (r *RankRecorder) Snapshot() *RankDump {
	d := &RankDump{
		Rank:    r.rank,
		Clocked: r.clk != nil,
		Dropped: r.Dropped(),
		Labels:  append([]string(nil), r.labels...),
	}
	n := r.next
	size := uint64(len(r.buf))
	if n <= size {
		d.Events = append([]Event(nil), r.buf[:n]...)
		return d
	}
	// Ring wrapped: unroll from the oldest surviving slot.
	start := n & r.mask
	d.Events = make([]Event, 0, size)
	d.Events = append(d.Events, r.buf[start:]...)
	d.Events = append(d.Events, r.buf[:start]...)
	return d
}

// Publish snapshots the ring and installs the copy for cross-goroutine
// readers (Published). Owning goroutine only.
func (r *RankRecorder) Publish() *RankDump {
	d := r.Snapshot()
	r.published.Store(d)
	return d
}

// Published returns the most recently published snapshot (nil if none).
// Safe from any goroutine.
func (r *RankRecorder) Published() *RankDump { return r.published.Load() }
