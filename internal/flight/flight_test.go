package flight

import (
	"testing"

	"exacoll/internal/comm"
)

func TestPackCollRoundTrip(t *testing.T) {
	cases := []struct {
		label uint32
		op, k int
		epoch int64
	}{
		{0, 0, 0, 0},
		{1, 3, 4, 7},
		{0xffff, 255, 65535, 65535},
		{42, 7, 2, 1<<16 + 5}, // epoch truncates to low 16 bits
	}
	for _, c := range cases {
		arg := PackColl(c.label, c.op, c.k, c.epoch)
		label, op, k, epoch := UnpackColl(arg)
		if label != c.label || op != c.op || k != c.k || epoch != int(uint16(c.epoch)) {
			t.Errorf("PackColl(%d,%d,%d,%d) round-tripped to (%d,%d,%d,%d)",
				c.label, c.op, c.k, c.epoch, label, op, k, epoch)
		}
		if LabelOf(arg) != c.label {
			t.Errorf("LabelOf(PackColl label=%d) = %d", c.label, LabelOf(arg))
		}
	}
	if got := LabelOf(PackLabel(123)); got != 123 {
		t.Errorf("LabelOf(PackLabel(123)) = %d", got)
	}
}

func TestRingSizeRounding(t *testing.T) {
	cases := map[int]int{0: DefaultRingSize, 1: 1, 2: 2, 3: 4, 100: 128, 1 << 10: 1 << 10}
	for in, want := range cases {
		if got := NewRecorder(Options{RingSize: in}).RingSize(); got != want {
			t.Errorf("RingSize %d rounded to %d, want %d", in, got, want)
		}
	}
}

// TestRingWrap fills a small ring past capacity and checks the snapshot
// keeps only the newest events, oldest first, with an accurate drop count.
func TestRingWrap(t *testing.T) {
	const size, total = 8, 21
	rr := NewRecorder(Options{RingSize: size}).Rank(0)
	for i := 0; i < total; i++ {
		rr.RecordAt(int64(i), EvMark, -1, 0, i, 0)
	}
	if rr.Events() != total {
		t.Fatalf("Events() = %d, want %d", rr.Events(), total)
	}
	if rr.Dropped() != total-size {
		t.Fatalf("Dropped() = %d, want %d", rr.Dropped(), total-size)
	}
	snap := rr.Snapshot()
	if snap.Dropped != total-size || len(snap.Events) != size {
		t.Fatalf("snapshot: %d events, %d dropped; want %d, %d",
			len(snap.Events), snap.Dropped, size, total-size)
	}
	for i, e := range snap.Events {
		want := int64(total - size + i)
		if e.T != want || int64(e.Bytes) != want {
			t.Fatalf("snapshot[%d] = T %d Bytes %d, want %d (oldest-first order)",
				i, e.T, e.Bytes, want)
		}
	}
}

func TestLabelInterning(t *testing.T) {
	rr := NewRecorder(Options{}).Rank(0)
	a := rr.LabelID("allreduce")
	b := rr.LabelID("bcast")
	if a2 := rr.LabelID("allreduce"); a2 != a {
		t.Fatalf("re-interning returned %d, want %d", a2, a)
	}
	if a == b {
		t.Fatalf("distinct labels share id %d", a)
	}
	if rr.Label(a) != "allreduce" || rr.Label(b) != "bcast" {
		t.Fatalf("Label() does not resolve interned ids")
	}
	snap := rr.Snapshot()
	if snap.Label(a) != "allreduce" || snap.Label(b) != "bcast" {
		t.Fatalf("snapshot label table does not resolve interned ids")
	}
	if snap.Label(99) != "" {
		t.Fatalf("out-of-range label id resolved to %q", snap.Label(99))
	}
}

func TestKindStrings(t *testing.T) {
	seen := map[string]Kind{}
	for k := EvNone; k <= EvMark; k++ {
		s := k.String()
		if s == "" {
			t.Fatalf("Kind(%d) has empty String", k)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("Kind %d and %d share String %q", prev, k, s)
		}
		seen[s] = k
	}
}

// TestRecordZeroAllocs pins the hot-path contract: recording into the
// ring never allocates (label interning is done once at setup, outside
// the measured loop).
func TestRecordZeroAllocs(t *testing.T) {
	rr := NewRecorder(Options{}).Rank(0)
	arg := PackColl(rr.LabelID("allreduce"), 2, 2, 0)
	if n := testing.AllocsPerRun(1000, func() {
		rr.Record(EvSendPost, 1, comm.TagCollBase, 4096, arg)
	}); n != 0 {
		t.Fatalf("Record allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		rr.RecordAt(42, EvRecvPost, 1, comm.TagCollBase, 4096, arg)
	}); n != 0 {
		t.Fatalf("RecordAt allocates %.1f/op, want 0", n)
	}
}
