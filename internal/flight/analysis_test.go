package flight

import (
	"strings"
	"testing"
)

// syntheticDump builds a two-rank dump of one allreduce-like exchange
// with known structure, exercising clock alignment on rank 1 (its raw
// timestamps are shifted by -100 and re-based by OffsetNs):
//
//	rank 0: begin t=0,  send post t=10 -> rank 1,          end t=50
//	rank 1: begin t=5,  recv post t=8, recv done t=40,
//	        reduce 40..48,                                  end t=60
//
// The critical path (backward from rank 1's end at t=60) is:
// local 48-60, compute 40-48, transfer 10-40 (the send post is after the
// receive post, so the hop charges the wire from the sender's post and
// jumps to rank 0), local 0-10 — tiling the full 60 ns wall.
func syntheticDump() *Dump {
	arg := PackColl(0, 2, 0, 0) // label 0 = "allreduce"
	const shift = int64(100)
	r0 := &RankDump{
		Rank:   0,
		Labels: []string{"allreduce"},
		Events: []Event{
			{T: 0, Kind: EvCollBegin, Peer: -1, Bytes: 512, Arg: arg},
			{T: 10, Kind: EvSendPost, Peer: 1, Tag: 5, Bytes: 512},
			{T: 50, Kind: EvCollEnd, Peer: -1, Bytes: 512, Arg: arg},
		},
	}
	r1 := &RankDump{
		Rank:   1,
		Labels: []string{"allreduce"},
		Events: []Event{
			{T: 5 - shift, Kind: EvCollBegin, Peer: -1, Bytes: 512, Arg: arg},
			{T: 8 - shift, Kind: EvRecvPost, Peer: 0, Tag: 5, Bytes: 512},
			{T: 40 - shift, Kind: EvRecvComplete, Peer: 0, Tag: 5, Bytes: 512},
			{T: 40 - shift, Kind: EvReduceBegin, Peer: -1, Bytes: 512},
			{T: 48 - shift, Kind: EvReduceEnd, Peer: -1, Bytes: 512},
			{T: 60 - shift, Kind: EvCollEnd, Peer: -1, Bytes: 512, Arg: arg},
		},
	}
	return &Dump{
		P:        2,
		Ranks:    []*RankDump{r0, r1},
		OffsetNs: []int64{0, shift},
		BoundNs:  []int64{0, 3},
	}
}

func TestAnalyzeCriticalPath(t *testing.T) {
	a := syntheticDump().Analyze()
	if len(a.Instances) != 1 || a.Skipped != 0 {
		t.Fatalf("got %d instances, %d skipped; want 1, 0", len(a.Instances), a.Skipped)
	}
	in := a.Instances[0]

	if in.Label != "allreduce" {
		t.Errorf("Label = %q, want allreduce", in.Label)
	}
	if in.Bytes != 512 {
		t.Errorf("Bytes = %d, want 512", in.Bytes)
	}
	if in.StartNs != 0 || in.EndNs != 60 || in.EndRank != 1 {
		t.Errorf("bounds start=%d end=%d endRank=%d, want 0, 60, 1", in.StartNs, in.EndNs, in.EndRank)
	}
	if in.WallNs() != 60 {
		t.Errorf("WallNs = %d, want 60", in.WallNs())
	}
	// The contiguous walk must attribute the entire wall time.
	if in.AttributedNs() != in.WallNs() {
		t.Errorf("attributed %d of %d ns wall", in.AttributedNs(), in.WallNs())
	}
	if got := in.ByCat[CatTransfer]; got != 30 {
		t.Errorf("transfer time %d, want 30 (send post t=10 to recv done t=40)", got)
	}
	if got := in.ByCat[CatCompute]; got != 8 {
		t.Errorf("compute time %d, want 8 (reduce 40..48)", got)
	}
	if got := in.ByCat[CatLocal]; got != 22 {
		t.Errorf("local time %d, want 22 (rank1 48..60 + rank0 0..10)", got)
	}
	// Transfer and compute land on rank 1, the path's receiving side.
	if in.ByRank[1] != 30+8+12 || in.ByRank[0] != 10 {
		t.Errorf("path residency rank0=%d rank1=%d, want 10, 50", in.ByRank[0], in.ByRank[1])
	}

	h, ok := in.DominantHop()
	if !ok {
		t.Fatal("no dominant hop on a path with a transfer")
	}
	if h.From != 0 || h.To != 1 || h.DurNs != 30 || h.Round != 1 || h.Tag != 5 {
		t.Errorf("dominant hop %+v, want round 1: rank 0 -> 1, tag 5, 30 ns", h)
	}

	r, late := in.Straggler()
	if r != 1 || late != 5 {
		t.Errorf("straggler rank %d late %d, want rank 1 late 5", r, late)
	}
}

// TestAnalyzeTailAlignment drops the oldest instance from one rank (a
// ring overwrite) and checks matching anchors to the end of each stream.
func TestAnalyzeTailAlignment(t *testing.T) {
	arg := PackColl(0, 2, 0, 0)
	mk := func(base int64) []Event {
		return []Event{
			{T: base, Kind: EvCollBegin, Peer: -1, Bytes: 64, Arg: arg},
			{T: base + 10, Kind: EvCollEnd, Peer: -1, Bytes: 64, Arg: arg},
		}
	}
	full := append(append(mk(0), mk(100)...), mk(200)...)
	trunc := append(mk(100), mk(200)...) // ring dropped the oldest
	d := &Dump{
		P: 2,
		Ranks: []*RankDump{
			{Rank: 0, Labels: []string{"bcast"}, Events: full, Dropped: 2},
			{Rank: 1, Labels: []string{"bcast"}, Events: trunc},
		},
		OffsetNs: []int64{0, 0},
		BoundNs:  []int64{0, 0},
	}
	a := d.Analyze()
	if len(a.Instances) != 2 || a.Skipped != 1 {
		t.Fatalf("got %d instances, %d skipped; want 2 matched from the tail, 1 skipped",
			len(a.Instances), a.Skipped)
	}
	if a.Instances[0].StartNs != 100 || a.Instances[1].StartNs != 200 {
		t.Fatalf("instances start at %d, %d; want 100, 200",
			a.Instances[0].StartNs, a.Instances[1].StartNs)
	}
}

func TestAnalyzeEmptyDump(t *testing.T) {
	a := (&Dump{}).Analyze()
	if len(a.Instances) != 0 {
		t.Fatalf("empty dump produced %d instances", len(a.Instances))
	}
	d := &Dump{P: 1, Ranks: []*RankDump{{Rank: 0}}, OffsetNs: []int64{0}, BoundNs: []int64{0}}
	if a := d.Analyze(); len(a.Instances) != 0 {
		t.Fatalf("event-free dump produced %d instances", len(a.Instances))
	}
}

func TestWriteReport(t *testing.T) {
	var b strings.Builder
	if err := syntheticDump().Analyze().WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"flight: 2 ranks",
		"allreduce",
		"attributed 100% of wall",
		"dominant hop: round 1/1  rank 0 -> rank 1",
		"straggler: rank 1",
		"transfer",
		"compute",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
