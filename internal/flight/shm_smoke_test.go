package flight_test

import (
	"sync"
	"testing"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
	"exacoll/internal/flight"
	"exacoll/internal/transport/shm"
	"exacoll/internal/tuning"
)

// TestCollectShm is the end-to-end smoke test for flight over the
// shared-memory transport: RecorderOf finds the recorder through the
// wrapper over a shm comm, the collection protocol itself runs over shm
// rings, the merged timeline is sound, and critical-path analysis
// attributes 100% of every instance's wall time — the flight recorder
// composes over the new substrate exactly as it does over mem and tcp.
func TestCollectShm(t *testing.T) {
	const p = 2
	const rounds = 3
	w := shm.NewWorld(p)
	defer w.Close()
	rec := flight.NewRecorder(flight.Options{})
	tab := &tuning.Table{Machine: "shm-smoke", Ops: map[string][]tuning.Entry{
		core.OpAllreduce.String(): {{Alg: "allreduce_recmul", K: 2}},
	}}
	var (
		mu   sync.Mutex
		dump *flight.Dump
	)
	err := w.Run(func(c comm.Comm) error {
		fc := rec.Wrap(c)
		if flight.RecorderOf(fc) == nil {
			t.Error("RecorderOf found no recorder over the shm comm")
		}
		sb := datatype.EncodeFloat64(make([]float64, 256))
		rb := make([]byte, len(sb))
		for i := 0; i < rounds; i++ {
			a := core.Args{SendBuf: sb, RecvBuf: rb, Op: datatype.Sum, Type: datatype.Float64}
			if err := tab.Run(fc, core.OpAllreduce, a); err != nil {
				return err
			}
		}
		d, err := flight.Collect(fc, flight.RecorderOf(fc), flight.CollectOptions{})
		if err != nil {
			return err
		}
		if d != nil {
			mu.Lock()
			dump = d
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("shm recorded run: %v", err)
	}
	if dump == nil {
		t.Fatal("rank 0 returned no dump")
	}
	if dump.P != p || len(dump.Ranks) != p {
		t.Fatalf("dump shape: P=%d ranks=%d, want %d", dump.P, len(dump.Ranks), p)
	}
	for r := 0; r < p; r++ {
		if dump.Ranks[r] == nil || len(dump.Ranks[r].Events) == 0 {
			t.Fatalf("rank %d snapshot missing or empty", r)
		}
	}
	// The merged timeline is monotone and preserves each rank's order.
	merged := dump.Merged()
	if len(merged) == 0 {
		t.Fatal("merged timeline is empty")
	}
	lastSeq := map[int]int{0: -1, 1: -1}
	for i, e := range merged {
		if i > 0 && e.T < merged[i-1].T {
			t.Fatalf("merged[%d] out of order", i)
		}
		if e.Seq <= lastSeq[e.Rank] {
			t.Fatalf("merged[%d] breaks rank %d stream order", i, e.Rank)
		}
		lastSeq[e.Rank] = e.Seq
	}
	// Critical-path analysis sees every instance and attributes all of
	// each one's wall time — a contiguous path with no gaps.
	a := dump.Analyze()
	if len(a.Instances) != rounds {
		t.Fatalf("analysis found %d instances, want %d", len(a.Instances), rounds)
	}
	for i, in := range a.Instances {
		if in.WallNs() <= 0 {
			t.Fatalf("instance %d: non-positive wall %d", i, in.WallNs())
		}
		if in.AttributedNs() != in.WallNs() {
			t.Fatalf("instance %d: attributed %d of %d ns wall", i, in.AttributedNs(), in.WallNs())
		}
	}
}
