// Package mlsel prototypes the paper's proposed future direction (§VII):
// treating collective algorithms as black boxes and letting a learned
// model pick the algorithm AND radix for unseen configurations, instead
// of hand-built ladders. The model here is deliberately simple — a
// distance-weighted k-nearest-neighbor vote in (log₂ msgsize, log₂ p)
// feature space over benchmark samples — but it exercises the full loop
// the paper sketches: sweep → train → predict (algorithm, k) → run.
package mlsel

import (
	"fmt"
	"math"
	"sort"

	"exacoll/internal/comm"
	"exacoll/internal/core"
)

// Sample is one training observation: the best-measured configuration for
// a benchmark point.
type Sample struct {
	// Op is the collective operation.
	Op core.CollOp
	// Bytes is the message size of the point.
	Bytes int
	// P is the communicator size of the point.
	P int
	// Alg and K are the winning configuration.
	Alg string
	K   int
}

// Model is a trained selector.
type Model struct {
	// Neighbors is the k of k-NN (default 3).
	Neighbors int
	samples   map[core.CollOp][]Sample
}

// Train builds a model from winner samples (e.g. produced by sweeping the
// simulator with bench.SimLatency and keeping the argmin per point).
func Train(samples []Sample) (*Model, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("mlsel: no training samples")
	}
	m := &Model{Neighbors: 3, samples: map[core.CollOp][]Sample{}}
	for _, s := range samples {
		if _, err := core.Lookup(s.Alg); err != nil {
			return nil, fmt.Errorf("mlsel: sample references %q: %w", s.Alg, err)
		}
		if s.Bytes < 1 || s.P < 1 {
			return nil, fmt.Errorf("mlsel: bad sample %+v", s)
		}
		m.samples[s.Op] = append(m.samples[s.Op], s)
	}
	return m, nil
}

// features maps a configuration into the model's metric space. Log scales
// put equal weight on "4KB vs 8KB" and "4MB vs 8MB", matching how
// algorithm crossovers behave.
func features(bytes, p int) (float64, float64) {
	return math.Log2(float64(bytes)), math.Log2(float64(p))
}

// Predict returns the (algorithm, k) for an unseen (op, bytes, p) point by
// distance-weighted vote among the nearest training samples. The radix is
// the weighted median of the voting samples' radices, snapped to the
// nearest radix seen in training for that algorithm (so it never invents
// untested values).
func (m *Model) Predict(op core.CollOp, bytes, p int) (string, int, error) {
	pool := m.samples[op]
	if len(pool) == 0 {
		return "", 0, fmt.Errorf("mlsel: no samples for %v", op)
	}
	fx, fy := features(bytes, p)
	type scored struct {
		s Sample
		d float64
	}
	all := make([]scored, len(pool))
	for i, s := range pool {
		sx, sy := features(s.Bytes, s.P)
		all[i] = scored{s: s, d: math.Hypot(fx-sx, fy-sy)}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
	k := m.Neighbors
	if k < 1 {
		k = 3
	}
	if k > len(all) {
		k = len(all)
	}

	// Weighted vote per algorithm name.
	votes := map[string]float64{}
	for _, sc := range all[:k] {
		votes[sc.s.Alg] += 1 / (sc.d + 1e-9)
	}
	bestAlg, bestV := "", -1.0
	for alg, v := range votes {
		if v > bestV || (v == bestV && alg < bestAlg) {
			bestAlg, bestV = alg, v
		}
	}

	// Radix: weighted geometric mean of the winning algorithm's voting
	// radices, snapped to a seen value.
	var logSum, wSum float64
	seen := map[int]bool{}
	for _, sc := range all[:k] {
		if sc.s.Alg != bestAlg || sc.s.K < 1 {
			continue
		}
		w := 1 / (sc.d + 1e-9)
		logSum += w * math.Log(float64(sc.s.K))
		wSum += w
		seen[sc.s.K] = true
	}
	for _, s := range pool {
		if s.Alg == bestAlg && s.K >= 1 {
			seen[s.K] = true
		}
	}
	kOut := 0
	if wSum > 0 {
		target := math.Exp(logSum / wSum)
		bestDist := math.Inf(1)
		for cand := range seen {
			if d := math.Abs(math.Log(float64(cand)) - math.Log(target)); d < bestDist {
				bestDist, kOut = d, cand
			}
		}
	}
	return bestAlg, kOut, nil
}

// Run predicts and executes the collective for the live arguments.
func (m *Model) Run(c comm.Comm, op core.CollOp, a core.Args) error {
	name, k, err := m.Predict(op, sizeOf(op, a), c.Size())
	if err != nil {
		return err
	}
	alg, err := core.Lookup(name)
	if err != nil {
		return err
	}
	if alg.Generalized {
		if k < 1 {
			k = alg.DefaultK
		}
		a.K = k
	}
	return alg.Run(c, a)
}

func sizeOf(op core.CollOp, a core.Args) int {
	if op == core.OpScatter {
		return len(a.RecvBuf)
	}
	n := len(a.SendBuf)
	if n == 0 {
		n = 1
	}
	return n
}

// WinnersFromSweep converts a latency table — lat[point][candidate] — into
// training samples by taking the argmin per point. Points and candidates
// describe the table's axes.
type Point struct {
	Op    core.CollOp
	Bytes int
	P     int
}

// Candidate is a sweep column.
type Candidate struct {
	Alg string
	K   int
}

// WinnersFromSweep picks the per-point argmin into samples.
func WinnersFromSweep(points []Point, cands []Candidate, lat [][]float64) ([]Sample, error) {
	if len(lat) != len(points) {
		return nil, fmt.Errorf("mlsel: %d rows for %d points", len(lat), len(points))
	}
	out := make([]Sample, 0, len(points))
	for i, pt := range points {
		if len(lat[i]) != len(cands) {
			return nil, fmt.Errorf("mlsel: row %d has %d cols for %d candidates", i, len(lat[i]), len(cands))
		}
		best, bestT := 0, math.Inf(1)
		for j, t := range lat[i] {
			if t < bestT {
				best, bestT = j, t
			}
		}
		out = append(out, Sample{
			Op: pt.Op, Bytes: pt.Bytes, P: pt.P,
			Alg: cands[best].Alg, K: cands[best].K,
		})
	}
	return out, nil
}
