package mlsel

import (
	"testing"

	"exacoll/internal/bench"
	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
	"exacoll/internal/machine"
	"exacoll/internal/transport/mem"
)

// sweepSamples trains on a simulator sweep of allreduce candidates over a
// (bytes, p) grid.
func sweepSamples(t *testing.T) []Sample {
	t.Helper()
	spec := machine.Frontier()
	cands := []Candidate{
		{Alg: "allreduce_recmul", K: 2},
		{Alg: "allreduce_recmul", K: 4},
		{Alg: "allreduce_recmul", K: 8},
		{Alg: "allreduce_rabenseifner"},
	}
	var points []Point
	var lat [][]float64
	for _, p := range []int{8, 16, 32} {
		for _, n := range []int{8, 1 << 10, 64 << 10, 1 << 20} {
			points = append(points, Point{Op: core.OpAllreduce, Bytes: n, P: p})
			row := make([]float64, len(cands))
			for j, cand := range cands {
				alg, err := core.Lookup(cand.Alg)
				if err != nil {
					t.Fatal(err)
				}
				v, err := bench.SimLatency(spec, p, alg.Op, alg.Run, n, 0, cand.K)
				if err != nil {
					t.Fatal(err)
				}
				row[j] = v
			}
			lat = append(lat, row)
		}
	}
	samples, err := WinnersFromSweep(points, cands, lat)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestPredictInterpolates trains on p ∈ {8,16,32} and asks about p=24 and
// intermediate sizes: the prediction must be a trained candidate, and for
// tiny messages it must be a low-latency configuration (never the
// bandwidth algorithm).
func TestPredictInterpolates(t *testing.T) {
	m, err := Train(sweepSamples(t))
	if err != nil {
		t.Fatal(err)
	}
	alg, k, err := m.Predict(core.OpAllreduce, 8, 24)
	if err != nil {
		t.Fatal(err)
	}
	if alg == "allreduce_rabenseifner" {
		t.Errorf("tiny-message prediction = %s (bandwidth algorithm)", alg)
	}
	if alg == "allreduce_recmul" && (k < 2 || k > 8) {
		t.Errorf("predicted untrained radix %d", k)
	}
	// Far-out extrapolation still answers with a trained candidate.
	alg2, _, err := m.Predict(core.OpAllreduce, 32<<20, 64)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range sweepSamples(t) {
		if s.Alg == alg2 {
			found = true
		}
	}
	if !found {
		t.Errorf("prediction %q not among training winners", alg2)
	}
}

// TestModelAccuracy does leave-one-p-out validation: train on p ∈ {8,32},
// predict p=16, and demand the predicted configuration is within 25% of
// the true best latency at every size — the "treat algorithms as a black
// box and learn their trends" bar from §VII.
func TestModelAccuracy(t *testing.T) {
	all := sweepSamples(t)
	var train []Sample
	for _, s := range all {
		if s.P != 16 {
			train = append(train, s)
		}
	}
	m, err := Train(train)
	if err != nil {
		t.Fatal(err)
	}
	spec := machine.Frontier()
	for _, n := range []int{8, 1 << 10, 64 << 10, 1 << 20} {
		alg, k, err := m.Predict(core.OpAllreduce, n, 16)
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.Lookup(alg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := bench.SimLatency(spec, 16, a.Op, a.Run, n, 0, k)
		if err != nil {
			t.Fatal(err)
		}
		// True best among the full candidate set.
		best := got
		for _, s := range all {
			if s.P != 16 || s.Bytes != n {
				continue
			}
			ba, err := core.Lookup(s.Alg)
			if err != nil {
				t.Fatal(err)
			}
			v, err := bench.SimLatency(spec, 16, ba.Op, ba.Run, n, 0, s.K)
			if err != nil {
				t.Fatal(err)
			}
			if v < best {
				best = v
			}
		}
		if got > 1.25*best {
			t.Errorf("n=%d: predicted %s k=%d is %.2fx the best", n, alg, k, got/best)
		}
	}
}

// TestRunExecutesPrediction drives Model.Run end to end on the mem
// transport.
func TestRunExecutesPrediction(t *testing.T) {
	m, err := Train(sweepSamples(t))
	if err != nil {
		t.Fatal(err)
	}
	const p = 8
	w := mem.NewWorld(p)
	defer w.Close()
	err = w.Run(func(c comm.Comm) error {
		sendbuf := datatype.EncodeFloat64([]float64{float64(c.Rank() + 1)})
		recvbuf := make([]byte, 8)
		a := core.Args{SendBuf: sendbuf, RecvBuf: recvbuf, Op: datatype.Sum, Type: datatype.Float64}
		if err := m.Run(c, core.OpAllreduce, a); err != nil {
			return err
		}
		if got := datatype.DecodeFloat64(recvbuf)[0]; got != 36 {
			t.Errorf("allreduce = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTrainValidation covers error paths.
func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil); err == nil {
		t.Error("want error for empty training set")
	}
	if _, err := Train([]Sample{{Op: core.OpAllreduce, Bytes: 8, P: 4, Alg: "nope"}}); err == nil {
		t.Error("want error for unknown algorithm")
	}
	if _, err := Train([]Sample{{Op: core.OpAllreduce, Bytes: 0, P: 4, Alg: "allreduce_ring"}}); err == nil {
		t.Error("want error for bad sample")
	}
	m, err := Train([]Sample{{Op: core.OpAllreduce, Bytes: 8, P: 4, Alg: "allreduce_ring"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Predict(core.OpBcast, 8, 4); err == nil {
		t.Error("want error for untrained op")
	}
	if _, err := WinnersFromSweep([]Point{{}}, nil, nil); err == nil {
		t.Error("want error for shape mismatch")
	}
}
