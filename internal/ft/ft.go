// Package ft is the fault-tolerance layer for blocking collectives — the
// ULFM-inspired state machine behind gca.WithFaultTolerance.
//
// The problem: a collective is a distributed computation, so one rank's
// failure surfaces asymmetrically — some ranks get an error from a dead
// link, others complete their part and return success, and without
// coordination the world splits between ranks that think the collective
// happened and ranks that know it did not. ULFM (MPIX_Comm_agree +
// MPIX_Comm_shrink) resolves this with user-level error agreement; this
// package is that design point for exacoll:
//
//  1. After every collective, all ranks run a two-round flood agreement
//     exchanging (local-failure bit, dead-rank bitmask) with every peer
//     they believe alive. The verdict — OR of all failure bits, OR of all
//     masks — makes the group fail or succeed together.
//  2. On an agreed failure the collective epoch advances: subsequent
//     collectives use a fresh tag window (EpochComm) and the retired
//     window is purged (comm.Purger), so stragglers from the failed
//     collective can never corrupt a later one.
//  3. Idempotent collectives may then be retried transparently
//     (Config.Retries) when the failure was transient — no rank died.
//  4. When ranks did die, Survivors returns the agreed survivor set for a
//     communicator shrink; a rank that the group declared dead is fenced
//     (ErrFenced) and must leave.
//
// Honest limits: the verdict is computed from flooded information only —
// a death observed during the final round is excluded from the current
// verdict and flooded by the next agreement instead (see agree) — which
// makes the 2-round flood uniform under at most ONE failure per agreement.
// Two or more ranks failing inside the same agreement window, or an
// asymmetric false suspicion (extreme network delay crossing the op
// deadline on one link only), can still split the verdict: that is the
// price of not running a full f+1-round consensus per collective. The
// split is bounded by deadlines (nobody hangs), surfaces as further
// aborted collectives, and is resolved by Shrink.
package ft

import (
	"errors"
	"fmt"
	"time"

	"exacoll/internal/comm"
	"exacoll/internal/flight"
	"exacoll/internal/metrics"
)

// ErrAborted is wrapped by every collective error after the world agreed
// the collective failed (use errors.Is).
var ErrAborted = errors.New("ft: collective aborted by group agreement")

// ErrFenced means the group declared this rank failed (a false suspicion
// under extreme delay, or a partition). The rank must stop using the
// communicator; it is excluded from Survivors on every other rank.
var ErrFenced = errors.New("ft: this rank was declared failed by the group")

// agreementRounds is the number of flood rounds per agreement. Two rounds
// propagate any failure observed before or during round one to every
// survivor when detection is prompt and symmetric.
const agreementRounds = 2

// Config parameterizes a State. Every rank of a world must use identical
// Retries/Backoff/Epoch/SeqBase so retry decisions stay in lockstep.
type Config struct {
	// Timeout is the per-operation deadline applied to the transport
	// (comm.Deadliner) — the bound that turns a dead peer into an error
	// instead of a hang. Zero leaves the transport's setting untouched.
	Timeout time.Duration
	// Retries is how many times an idempotent collective is transparently
	// re-run after a transient (no-deaths) agreed failure.
	Retries int
	// Backoff is slept between retries.
	Backoff time.Duration
	// Epoch is the starting collective epoch (non-zero when inheriting a
	// parent session's tag-space position across a Shrink).
	Epoch int64
	// SeqBase is the starting agreement sequence (inherited across a
	// Shrink so agreement tags are never reused against parent stragglers).
	SeqBase int64
	// Metrics, when non-nil, receives the FT counters.
	Metrics *metrics.Registry
}

// State is one rank's fault-tolerance state machine. Not safe for
// concurrent use — drive it from the rank's collective-calling goroutine
// (the same discipline as the communicator itself).
type State struct {
	base comm.Comm // capability-bearing transport the epoch comm wraps
	ec   *EpochComm
	out  comm.Comm // outermost comm for agreement traffic (metrics-wrapped)
	cfg  Config

	seq    int64  // next agreement sequence
	dead   []bool // cumulative dead set (agreed + locally observed), by rank
	fenced bool   // the group declared this rank dead
	// deadVerdict is the last agreement's flooded death verdict — true when
	// the agreed (not merely locally observed) dead set was non-empty. The
	// lockstep retry decision keys off this, never off local observations.
	deadVerdict bool
}

// New builds the FT state over base, applying cfg.Timeout to the
// transport when it supports deadlines. Comm returns the epoch-translating
// communicator to run collectives through (wrap it with metrics and hand
// the result to SetOuter so agreement traffic is counted too).
func New(base comm.Comm, cfg Config) *State {
	if cfg.Timeout > 0 {
		if dl, ok := base.(comm.Deadliner); ok {
			dl.SetOpTimeout(cfg.Timeout)
		}
	}
	s := &State{
		base: base,
		ec:   NewEpochComm(base, cfg.Epoch),
		cfg:  cfg,
		seq:  cfg.SeqBase,
		dead: make([]bool, base.Size()),
	}
	s.out = s.ec
	return s
}

// Comm returns the epoch-translating communicator.
func (s *State) Comm() *EpochComm { return s.ec }

// SetOuter routes agreement traffic through c (the fully wrapped
// communicator) instead of the bare epoch comm.
func (s *State) SetOuter(c comm.Comm) { s.out = c }

// Epoch returns the current collective epoch.
func (s *State) Epoch() int64 { return s.ec.Epoch() }

// Seq returns the next agreement sequence (pass as SeqBase to a shrunken
// session's Config).
func (s *State) Seq() int64 { return s.seq }

// Fenced reports whether the group has declared this rank dead.
func (s *State) Fenced() bool { return s.fenced }

func setBit(mask []byte, i int)      { mask[i/8] |= 1 << (i % 8) }
func getBit(mask []byte, i int) bool { return mask[i/8]&(1<<(i%8)) != 0 }

// agree runs one flood agreement. It returns the group verdict: aborted
// is true when any participant reported failure or any rank is agreed
// dead. The cumulative dead set is updated as a side effect.
//
// Uniformity rule: the verdict is computed from flooded information only —
// the local fail bit (sent in round 0), fail bits and dead masks received
// in any round, and deaths observed before the final round (re-flooded in
// the next round's payload). A death observed during the FINAL round cannot
// be propagated to peers anymore, so it is excluded from this verdict and
// only remembered in s.dead: the next agreement floods it in its round 0.
// Without this rule a rank dying mid-final-round after sending to a subset
// of peers splits the verdict — the subset sees a clean exchange while the
// rest see a death (the classic last-round asymmetry of early-stopping
// crash consensus). With at most one failure per agreement the rule makes
// every live rank compute the identical verdict.
func (s *State) agree(localFail bool) (aborted bool) {
	p, me := s.base.Size(), s.base.Rank()
	rec := flight.RecorderOf(s.out)
	if rec != nil {
		rec.Record(flight.EvAgreeBegin, -1, 0, 0, uint64(s.seq))
	}
	defer func() {
		if rec != nil {
			rec.Record(flight.EvAgreeEnd, -1, 0, 0, uint64(s.seq))
		}
		s.seq++
		if s.cfg.Metrics != nil {
			s.cfg.Metrics.FTAgreement(me, aborted)
		}
	}()
	if p == 1 {
		s.deadVerdict = false
		return localFail
	}
	// A peer may enter the agreement up to one op-timeout later than we do
	// (it was still blocking inside the collective when ours failed fast).
	// Raise the deadline for the agreement exchange so that skew is not
	// mistaken for a death, and restore it for the next collective.
	if dl, ok := s.base.(comm.Deadliner); ok && s.cfg.Timeout > 0 {
		dl.SetOpTimeout(2*s.cfg.Timeout + 500*time.Millisecond)
		defer dl.SetOpTimeout(s.cfg.Timeout)
	}
	nb := (p + 7) / 8
	mask := make([]byte, nb) // flooded dead set: enters the verdict
	late := make([]byte, nb) // final-round local observations: next verdict
	for r, d := range s.dead {
		if d {
			setBit(mask, r)
		}
	}
	if fd, ok := s.base.(comm.FailureDetector); ok {
		for _, r := range fd.Failed() {
			setBit(mask, r)
		}
	}
	fail := localFail

	for round := 0; round < agreementRounds; round++ {
		last := round == agreementRounds-1
		suspect := func(j int) {
			if last {
				setBit(late, j)
			} else {
				setBit(mask, j)
			}
		}
		tag := comm.TagFTBase + comm.Tag((s.seq*agreementRounds+int64(round))%comm.FTTagSeqs)
		var peers []int
		for j := 0; j < p; j++ {
			if j != me && !getBit(mask, j) {
				peers = append(peers, j)
			}
		}
		payload := make([]byte, 1+nb)
		if fail {
			payload[0] = 1
		}
		copy(payload[1:], mask)

		// Post every receive first so they progress concurrently, then
		// send; a dead peer surfaces on its own exchange only.
		reqs := make([]comm.Request, len(peers))
		bufs := make([][]byte, len(peers))
		for i, j := range peers {
			bufs[i] = make([]byte, 1+nb)
			req, err := s.out.Irecv(j, tag, bufs[i])
			if err != nil {
				suspect(j)
				continue
			}
			reqs[i] = req
		}
		for i, j := range peers {
			if reqs[i] == nil {
				continue
			}
			if err := s.out.Send(j, tag, payload); err != nil {
				suspect(j)
			}
		}
		for i, j := range peers {
			if reqs[i] == nil {
				continue
			}
			if err := reqs[i].Wait(); err != nil {
				suspect(j)
				if errors.Is(err, comm.ErrTimeout) && s.cfg.Metrics != nil {
					s.cfg.Metrics.FTTimeout(me)
				}
				continue
			}
			if bufs[i][0] != 0 {
				fail = true
			}
			for b := 0; b < nb; b++ {
				mask[b] |= bufs[i][1+b]
			}
		}
	}

	newDead, anyDead := 0, false
	for j := 0; j < p; j++ {
		if getBit(mask, j) {
			anyDead = true
			if !s.dead[j] {
				s.dead[j] = true
				newDead++
			}
		} else if getBit(late, j) && !s.dead[j] {
			// Observed too late to flood: carried into the next agreement.
			s.dead[j] = true
			newDead++
		}
	}
	if getBit(mask, me) {
		s.fenced = true
	}
	s.deadVerdict = anyDead
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.FTFailuresDetected(me, newDead)
	}
	return fail || anyDead
}

// advanceEpoch retires the current collective tag window — purging any
// stragglers buffered or posted in it — and moves to the next.
func (s *State) advanceEpoch() {
	e := s.ec.Epoch()
	lo, hi := EpochWindow(e)
	if p, ok := s.base.(comm.Purger); ok {
		p.PurgeTags(lo, hi)
	}
	s.ec.SetEpoch(e + 1)
}

// RunCollective executes one collective (run must issue it through Comm or
// a wrapper of it) under the FT protocol: run, agree on the outcome,
// quiesce and retry or abort. On success every rank returns nil; on an
// agreed failure every rank returns an error wrapping ErrAborted (also
// wrapping the local cause when there was one). Idempotent collectives
// are retried in lockstep up to Config.Retries times while no rank died.
func (s *State) RunCollective(idempotent bool, run func() error) error {
	if s.fenced {
		return fmt.Errorf("%w", ErrFenced)
	}
	for attempt := 0; ; attempt++ {
		err := run()
		if err != nil && errors.Is(err, comm.ErrTimeout) && s.cfg.Metrics != nil {
			s.cfg.Metrics.FTTimeout(s.base.Rank())
		}
		aborted := s.agree(err != nil)
		if !aborted {
			// A local error with a clean group verdict cannot happen
			// (localFail forces aborted); err is nil here.
			return nil
		}
		s.advanceEpoch()
		if s.fenced {
			return fmt.Errorf("%w (after agreement %d)", ErrFenced, s.seq-1)
		}
		if idempotent && attempt < s.cfg.Retries && !s.deadVerdict {
			if s.cfg.Metrics != nil {
				s.cfg.Metrics.FTRetry(s.base.Rank())
			}
			if s.cfg.Backoff > 0 {
				time.Sleep(s.cfg.Backoff)
			}
			continue
		}
		if err == nil {
			return fmt.Errorf("%w (epoch %d): a peer reported failure", ErrAborted, s.ec.Epoch()-1)
		}
		return fmt.Errorf("%w (epoch %d): %w", ErrAborted, s.ec.Epoch()-1, err)
	}
}

// Survivors runs one agreement dedicated to membership and returns the
// agreed survivor list (base-communicator ranks, ascending). Every member
// must call it collectively. A fenced rank gets ErrFenced — it is not in
// any other rank's survivor list and must not join the shrunken world.
func (s *State) Survivors() ([]int, error) {
	s.agree(false)
	if s.fenced {
		return nil, fmt.Errorf("%w", ErrFenced)
	}
	var out []int
	for j, d := range s.dead {
		if !d {
			out = append(out, j)
		}
	}
	return out, nil
}

// Expand is the grow-side membership step: one agreement on the survivor
// set, then an epoch advance that retires (and purges) the current
// collective tag window. It returns the survivors and the fresh epoch,
// whose virgin window (EpochWindow) the caller may use for
// membership-change control traffic — e.g. broadcasting the joiner count —
// without colliding with stragglers of a failed collective. Every
// surviving member must call it collectively.
func (s *State) Expand() ([]int, int64, error) {
	survivors, err := s.Survivors()
	if err != nil {
		return nil, 0, err
	}
	s.advanceEpoch()
	return survivors, s.ec.Epoch(), nil
}
