package ft

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"exacoll/internal/comm"
	"exacoll/internal/metrics"
	"exacoll/internal/transport/mem"
)

// ringOnce is a stand-in collective: every rank sends one byte to its
// right neighbour on a family tag and receives from its left.
func ringOnce(c comm.Comm) error {
	p, me := c.Size(), c.Rank()
	right, left := (me+1)%p, (me+p-1)%p
	req, err := c.Irecv(left, comm.TagCollBase, make([]byte, 1))
	if err != nil {
		return err
	}
	if err := c.Send(right, comm.TagCollBase, []byte{byte(me)}); err != nil {
		return err
	}
	return req.Wait()
}

// TestFaultFree: with no faults, RunCollective returns nil everywhere, the
// epoch never moves, and exactly one agreement per collective is counted.
func TestFaultFree(t *testing.T) {
	const p = 4
	w := mem.NewWorld(p)
	defer w.Close()
	reg := metrics.NewRegistry()
	errs := w.RunAll(func(c comm.Comm) error {
		st := New(c, Config{Timeout: 2 * time.Second, Metrics: reg})
		for i := 0; i < 3; i++ {
			if err := st.RunCollective(true, func() error { return ringOnce(st.Comm()) }); err != nil {
				return err
			}
		}
		if st.Epoch() != 0 {
			return fmt.Errorf("epoch moved to %d with no faults", st.Epoch())
		}
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	tot := reg.Snapshot().Totals()
	if tot.FTAgreements != 3*p {
		t.Fatalf("agreements = %d, want %d", tot.FTAgreements, 3*p)
	}
	if tot.FTAborted != 0 || tot.FTRetries != 0 || tot.FTFailures != 0 {
		t.Fatalf("unexpected FT activity: %+v", tot)
	}
}

// TestLocalErrorAbortsEverywhere: one rank's local failure makes every
// rank abort with ErrAborted and advance the epoch in lockstep.
func TestLocalErrorAbortsEverywhere(t *testing.T) {
	const p = 4
	w := mem.NewWorld(p)
	defer w.Close()
	injected := errors.New("synthetic transport fault")
	errs := w.RunAll(func(c comm.Comm) error {
		st := New(c, Config{Timeout: 2 * time.Second})
		err := st.RunCollective(false, func() error {
			if c.Rank() == 2 {
				return injected
			}
			return nil
		})
		if !errors.Is(err, ErrAborted) {
			return fmt.Errorf("want ErrAborted, got %v", err)
		}
		if c.Rank() == 2 && !errors.Is(err, injected) {
			return fmt.Errorf("local cause not wrapped: %v", err)
		}
		if st.Epoch() != 1 {
			return fmt.Errorf("epoch = %d, want 1", st.Epoch())
		}
		// The world recovers: the next collective runs in the new epoch.
		return st.RunCollective(false, func() error { return ringOnce(st.Comm()) })
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestTransparentRetry: a transient failure (one rank, first attempt only)
// is retried in lockstep on every rank and the collective succeeds.
func TestTransparentRetry(t *testing.T) {
	const p = 4
	w := mem.NewWorld(p)
	defer w.Close()
	reg := metrics.NewRegistry()
	errs := w.RunAll(func(c comm.Comm) error {
		st := New(c, Config{Timeout: 500 * time.Millisecond, Retries: 2, Metrics: reg})
		attempt := 0
		err := st.RunCollective(true, func() error {
			attempt++
			if c.Rank() == 1 && attempt == 1 {
				return errors.New("transient hiccup")
			}
			return ringOnce(st.Comm())
		})
		if err != nil {
			return fmt.Errorf("retry did not recover: %v", err)
		}
		if attempt != 2 {
			return fmt.Errorf("attempts = %d, want 2 (lockstep retry)", attempt)
		}
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if tot := reg.Snapshot().Totals(); tot.FTRetries != p {
		t.Fatalf("retries = %d, want %d", tot.FTRetries, p)
	}
}

// TestKillAgreesAndShrinks: killing a rank mid-collective aborts the
// collective on every survivor with ErrAborted, all survivors agree on
// the same survivor set, and a sub-communicator over it completes a
// collective correctly.
func TestKillAgreesAndShrinks(t *testing.T) {
	const p, victim = 4, 2
	w := mem.NewWorld(p)
	defer w.Close()
	reg := metrics.NewRegistry()
	errs := w.RunAll(func(c comm.Comm) error {
		me := c.Rank()
		if me == victim {
			w.Kill(victim) // crash before participating
			return nil
		}
		st := New(c, Config{Timeout: 2 * time.Second, Retries: 3, Metrics: reg})
		err := st.RunCollective(true, func() error { return ringOnce(st.Comm()) })
		if !errors.Is(err, ErrAborted) {
			return fmt.Errorf("want ErrAborted, got %v", err)
		}
		survivors, err := st.Survivors()
		if err != nil {
			return err
		}
		want := []int{0, 1, 3}
		if len(survivors) != len(want) {
			return fmt.Errorf("survivors = %v, want %v", survivors, want)
		}
		for i := range want {
			if survivors[i] != want[i] {
				return fmt.Errorf("survivors = %v, want %v", survivors, want)
			}
		}
		sub, err := comm.NewSub(c, survivors)
		if err != nil {
			return err
		}
		// The shrunken world inherits the tag-space position and runs a
		// clean collective.
		st2 := New(sub, Config{Timeout: 2 * time.Second, Epoch: st.Epoch(), SeqBase: st.Seq()})
		return st2.RunCollective(false, func() error { return ringOnce(st2.Comm()) })
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if tot := reg.Snapshot().Totals(); tot.FTRetries != 0 {
		t.Fatalf("retried despite a death: %d retries", tot.FTRetries)
	}
}

// TestEpochQuiesce: a straggler sent in the aborted epoch's window never
// matches a receive posted by the next epoch's collective.
func TestEpochQuiesce(t *testing.T) {
	w := mem.NewWorld(2)
	defer w.Close()
	errs := w.RunAll(func(c comm.Comm) error {
		st := New(c, Config{Timeout: time.Second})
		me := c.Rank()
		err := st.RunCollective(false, func() error {
			if me == 1 {
				// Rank 1's half of the collective completed: its message
				// is already "on the wire" when the abort is agreed.
				return st.Comm().Send(0, comm.TagCollBase, []byte{0xEE})
			}
			return errors.New("rank 0 failed before receiving")
		})
		if !errors.Is(err, ErrAborted) {
			return fmt.Errorf("want ErrAborted, got %v", err)
		}
		// Next collective, same family tag, new epoch: rank 0's receive
		// must match rank 1's NEW message, not the purged straggler.
		return st.RunCollective(false, func() error {
			if me == 1 {
				return st.Comm().Send(0, comm.TagCollBase, []byte{0x11})
			}
			buf := make([]byte, 1)
			if _, err := st.Comm().Recv(1, comm.TagCollBase, buf); err != nil {
				return err
			}
			if buf[0] != 0x11 {
				return fmt.Errorf("epoch leak: received %#x from aborted epoch", buf[0])
			}
			return nil
		})
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestEpochWindowDisjoint: windows of successive epochs never overlap the
// family range or each other until the FTEpochs ring wraps.
func TestEpochWindowDisjoint(t *testing.T) {
	lo0, hi0 := EpochWindow(0)
	if lo0 != comm.TagCollBase || hi0 <= lo0 {
		t.Fatalf("epoch 0 window [%d, %d)", lo0, hi0)
	}
	seen := map[comm.Tag]int64{}
	for e := int64(1); e <= int64(comm.FTEpochs); e++ {
		lo, hi := EpochWindow(e)
		if lo < comm.TagFTEpochBase || hi-lo != comm.FTEpochStride {
			t.Fatalf("epoch %d window [%d, %d)", e, lo, hi)
		}
		if prev, dup := seen[lo]; dup && e-prev < comm.FTEpochs {
			t.Fatalf("epochs %d and %d share window base %d", prev, e, lo)
		}
		seen[lo] = e
	}
}
