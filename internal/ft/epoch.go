package ft

import (
	"sync/atomic"
	"time"

	"exacoll/internal/comm"
)

// EpochComm translates blocking-collective tags into the current epoch's
// tag window. Epoch 0 is the native family range [TagCollBase,
// TagCollBase+FTEpochStride); after each agreed-failed collective the
// epoch advances and family tag t re-homes to
//
//	TagFTEpochBase + ((e-1) mod FTEpochs)·FTEpochStride + (t − TagCollBase)
//
// so stragglers of the failed collective — messages already sent when the
// world agreed to abort — can never match the receives of a later
// collective. Tags outside the family range (user point-to-point,
// nonblocking-collective epochs, FT agreement traffic) pass through
// unchanged.
type EpochComm struct {
	inner comm.Comm
	epoch atomic.Int64
}

// NewEpochComm wraps c starting at the given epoch (non-zero when a
// shrunken session inherits its parent's tag-space position).
func NewEpochComm(c comm.Comm, epoch int64) *EpochComm {
	ec := &EpochComm{inner: c}
	ec.epoch.Store(epoch)
	return ec
}

// Epoch returns the current collective epoch.
func (ec *EpochComm) Epoch() int64 { return ec.epoch.Load() }

// Unwrap reveals the wrapped communicator (the errors.Unwrap convention),
// letting capability probes like the flight recorder's walk the chain.
func (ec *EpochComm) Unwrap() comm.Comm { return ec.inner }

// SetEpoch moves the collective tag window (called between collectives by
// the FT state machine; concurrent in-flight nonblocking traffic is
// unaffected because nbc tags are never translated).
func (ec *EpochComm) SetEpoch(e int64) { ec.epoch.Store(e) }

// EpochWindow returns the tag window [lo, hi) used by epoch e.
func EpochWindow(e int64) (lo, hi comm.Tag) {
	if e == 0 {
		return comm.TagCollBase, comm.TagCollBase + comm.FTEpochStride
	}
	lo = comm.TagFTEpochBase + comm.Tag((e-1)%comm.FTEpochs)*comm.FTEpochStride
	return lo, lo + comm.FTEpochStride
}

func (ec *EpochComm) xlate(t comm.Tag) comm.Tag {
	e := ec.epoch.Load()
	if e == 0 || t < comm.TagCollBase || t >= comm.TagCollBase+comm.FTEpochStride {
		return t
	}
	lo, _ := EpochWindow(e)
	return lo + (t - comm.TagCollBase)
}

// Rank implements comm.Comm.
func (ec *EpochComm) Rank() int { return ec.inner.Rank() }

// Size implements comm.Comm.
func (ec *EpochComm) Size() int { return ec.inner.Size() }

// ChargeCompute implements comm.Comm.
func (ec *EpochComm) ChargeCompute(n int) { ec.inner.ChargeCompute(n) }

// Send implements comm.Comm.
func (ec *EpochComm) Send(to int, tag comm.Tag, buf []byte) error {
	return ec.inner.Send(to, ec.xlate(tag), buf)
}

// Recv implements comm.Comm.
func (ec *EpochComm) Recv(from int, tag comm.Tag, buf []byte) (int, error) {
	return ec.inner.Recv(from, ec.xlate(tag), buf)
}

// Isend implements comm.Comm.
func (ec *EpochComm) Isend(to int, tag comm.Tag, buf []byte) (comm.Request, error) {
	return ec.inner.Isend(to, ec.xlate(tag), buf)
}

// Irecv implements comm.Comm.
func (ec *EpochComm) Irecv(from int, tag comm.Tag, buf []byte) (comm.Request, error) {
	return ec.inner.Irecv(from, ec.xlate(tag), buf)
}

// Now forwards Clock when the substrate tracks virtual time.
func (ec *EpochComm) Now() float64 {
	if cl, ok := ec.inner.(comm.Clock); ok {
		return cl.Now()
	}
	return 0
}

// HasClock implements comm.ClockProber.
func (ec *EpochComm) HasClock() bool {
	_, ok := comm.VirtualClock(ec.inner)
	return ok
}

// SetOpTimeout forwards Deadliner (no-op otherwise).
func (ec *EpochComm) SetOpTimeout(d time.Duration) {
	if dl, ok := ec.inner.(comm.Deadliner); ok {
		dl.SetOpTimeout(d)
	}
}

// Failed forwards FailureDetector (nil otherwise).
func (ec *EpochComm) Failed() []int {
	if fd, ok := ec.inner.(comm.FailureDetector); ok {
		return fd.Failed()
	}
	return nil
}

// Locality forwards comm.Locator (false otherwise): tag re-homing does
// not move ranks between nodes.
func (ec *EpochComm) Locality(rank int) (comm.Locality, bool) {
	return comm.LocalityOf(ec.inner, rank)
}

// PurgeTags forwards Purger (no-op otherwise). The range is not
// translated: callers purge concrete windows from EpochWindow.
func (ec *EpochComm) PurgeTags(lo, hi comm.Tag) {
	if p, ok := ec.inner.(comm.Purger); ok {
		p.PurgeTags(lo, hi)
	}
}
