package osu

import (
	"math"
	"testing"

	"exacoll/internal/comm"
	"exacoll/internal/transport/mem"
)

// TestPingPong measures 0<->1 latency on the mem transport.
func TestPingPong(t *testing.T) {
	w := mem.NewWorld(4)
	defer w.Close()
	stats := make([]Stats, 4)
	err := w.Run(func(c comm.Comm) error {
		s, err := PingPong(c, 4096, Options{Warmup: 2, Iters: 10})
		if err != nil {
			return err
		}
		stats[c.Rank()] = s
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].AvgRank <= 0 || stats[1].AvgRank <= 0 {
		t.Errorf("participants reported %+v %+v", stats[0], stats[1])
	}
	if stats[2].AvgRank != 0 {
		t.Errorf("bystander reported %+v", stats[2])
	}
}

// TestCollectiveStats checks the cross-rank aggregation invariants:
// min <= avg <= max, identical on every rank.
func TestCollectiveStats(t *testing.T) {
	const p = 6
	w := mem.NewWorld(p)
	defer w.Close()
	stats := make([]Stats, p)
	err := w.Run(func(c comm.Comm) error {
		s, err := Algorithm(c, "allreduce_recmul", 4096, 0, 3, Options{Warmup: 2, Iters: 8})
		if err != nil {
			return err
		}
		stats[c.Rank()] = s
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	first := stats[0]
	if !(first.MinRank <= first.AvgRank && first.AvgRank <= first.MaxRank) {
		t.Errorf("stats not ordered: %+v", first)
	}
	if first.MinRank <= 0 {
		t.Errorf("non-positive latency: %+v", first)
	}
	for r := 1; r < p; r++ {
		if math.Abs(stats[r].AvgRank-first.AvgRank) > 1e-12 {
			t.Errorf("rank %d got different stats: %+v vs %+v", r, stats[r], first)
		}
	}
	if first.String() == "" {
		t.Error("empty String()")
	}
}

// TestAlgorithmErrors covers the failure paths.
func TestAlgorithmErrors(t *testing.T) {
	w := mem.NewWorld(2)
	defer w.Close()
	err := w.Run(func(c comm.Comm) error {
		if _, err := Algorithm(c, "no_such_alg", 8, 0, 2, Options{}); err == nil {
			t.Error("want lookup error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	w1 := mem.NewWorld(1)
	defer w1.Close()
	err = w1.Run(func(c comm.Comm) error {
		if _, err := PingPong(c, 8, Options{}); err == nil {
			t.Error("want error for 1-rank ping-pong")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
