// Package osu is a library-form port of the OSU microbenchmark protocol
// the paper's evaluation uses (§VI-B): warmup iterations, barrier-
// separated timed loops, per-rank averaging, and a cross-rank reduction of
// the statistics. It measures wall-clock time, so it applies to the real
// transports (mem, tcp); simulated latencies come from bench.SimLatency,
// which needs no repetition because the simulator is deterministic.
package osu

import (
	"fmt"
	"time"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
)

// Options configures a measurement.
type Options struct {
	// Warmup iterations are run and discarded (default 5).
	Warmup int
	// Iters timed iterations (default 20).
	Iters int
}

func (o Options) warmup() int {
	if o.Warmup == 0 {
		return 5
	}
	return o.Warmup
}

func (o Options) iters() int {
	if o.Iters == 0 {
		return 20
	}
	return o.Iters
}

// Stats summarizes a measurement across ranks, in seconds per operation.
type Stats struct {
	// MinRank/AvgRank/MaxRank aggregate the per-rank mean latencies.
	MinRank float64
	AvgRank float64
	MaxRank float64
	// Iters is the number of timed iterations.
	Iters int
}

func (s Stats) String() string {
	return fmt.Sprintf("min %.2fus avg %.2fus max %.2fus (%d iters)",
		s.MinRank*1e6, s.AvgRank*1e6, s.MaxRank*1e6, s.Iters)
}

// PingPong measures the round-trip/2 latency between ranks 0 and 1 (the
// osu_latency benchmark). Other ranks return zero Stats and participate in
// nothing.
func PingPong(c comm.Comm, n int, opts Options) (Stats, error) {
	if c.Size() < 2 {
		return Stats{}, fmt.Errorf("osu: ping-pong needs 2 ranks")
	}
	me := c.Rank()
	if me > 1 {
		return Stats{}, nil
	}
	peer := 1 - me
	buf := make([]byte, n)
	in := make([]byte, n)
	const tag comm.Tag = comm.TagUser + 101
	total := opts.warmup() + opts.iters()
	var start time.Time
	for i := 0; i < total; i++ {
		if i == opts.warmup() {
			start = time.Now()
		}
		if me == 0 {
			if err := c.Send(peer, tag, buf); err != nil {
				return Stats{}, err
			}
			if _, err := c.Recv(peer, tag, in); err != nil {
				return Stats{}, err
			}
		} else {
			if _, err := c.Recv(peer, tag, in); err != nil {
				return Stats{}, err
			}
			if err := c.Send(peer, tag, buf); err != nil {
				return Stats{}, err
			}
		}
	}
	lat := time.Since(start).Seconds() / float64(opts.iters()) / 2
	return Stats{MinRank: lat, AvgRank: lat, MaxRank: lat, Iters: opts.iters()}, nil
}

// Collective measures one collective (invoked through fn, which must run
// the same operation on every rank) with the OSU protocol: a barrier, then
// timed iterations, then min/avg/max of the per-rank means reduced across
// all ranks. Every rank receives the same Stats.
func Collective(c comm.Comm, fn func() error, opts Options) (Stats, error) {
	for i := 0; i < opts.warmup(); i++ {
		if err := fn(); err != nil {
			return Stats{}, fmt.Errorf("osu: warmup: %w", err)
		}
	}
	if err := core.BarrierDissemination(c); err != nil {
		return Stats{}, err
	}
	start := time.Now()
	for i := 0; i < opts.iters(); i++ {
		if err := fn(); err != nil {
			return Stats{}, fmt.Errorf("osu: iteration %d: %w", i, err)
		}
	}
	local := time.Since(start).Seconds() / float64(opts.iters())

	// Reduce (min, sum, max) across ranks in one 3-element allreduce each.
	stats := []float64{local}
	agg := func(op datatype.Op) (float64, error) {
		sendbuf := datatype.EncodeFloat64(stats)
		recvbuf := make([]byte, len(sendbuf))
		if err := core.AllreduceRecDbl(c, sendbuf, recvbuf, op, datatype.Float64); err != nil {
			return 0, err
		}
		return datatype.DecodeFloat64(recvbuf)[0], nil
	}
	min, err := agg(datatype.Min)
	if err != nil {
		return Stats{}, err
	}
	max, err := agg(datatype.Max)
	if err != nil {
		return Stats{}, err
	}
	sum, err := agg(datatype.Sum)
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		MinRank: min,
		AvgRank: sum / float64(c.Size()),
		MaxRank: max,
		Iters:   opts.iters(),
	}, nil
}

// Algorithm measures a registry algorithm at one message size with fresh
// per-iteration arguments (mirroring how osu_allreduce et al. reuse
// buffers but revalidate sizes).
func Algorithm(c comm.Comm, algName string, n, root, k int, opts Options) (Stats, error) {
	alg, err := core.Lookup(algName)
	if err != nil {
		return Stats{}, err
	}
	args := makeArgs(alg.Op, c.Rank(), c.Size(), n, root, k)
	return Collective(c, func() error { return alg.Run(c, args) }, opts)
}

// makeArgs builds per-rank arguments (kept local to avoid importing
// bench, which would create an import cycle through the figure harness).
func makeArgs(op core.CollOp, rank, p, n, root, k int) core.Args {
	pattern := func(seed, n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte((seed*31 + i) % 251)
		}
		return b
	}
	a := core.Args{Root: root, K: k, Op: datatype.Sum, Type: datatype.Float64}
	switch op {
	case core.OpBcast:
		a.SendBuf = pattern(root, n)
	case core.OpReduce, core.OpAllreduce:
		a.SendBuf = pattern(rank, n)
		a.RecvBuf = make([]byte, n)
	case core.OpGather, core.OpAllgather:
		a.SendBuf = pattern(rank, n)
		a.RecvBuf = make([]byte, n*p)
	case core.OpScatter:
		if rank == root {
			a.SendBuf = pattern(root, n*p)
		}
		a.RecvBuf = make([]byte, n)
	case core.OpReduceScatter:
		a.SendBuf = pattern(rank, n)
		_, sz := core.FairLayoutAligned(n, p, 8)(rank)
		a.RecvBuf = make([]byte, sz)
	case core.OpAlltoall:
		a.SendBuf = pattern(rank, n*p)
		a.RecvBuf = make([]byte, n*p)
	case core.OpScan:
		a.SendBuf = pattern(rank, n)
		a.RecvBuf = make([]byte, n)
	}
	return a
}
