package topo

import (
	"fmt"

	"exacoll/internal/comm"
)

// Hierarchy is a communicator factored into its level tree: the world, a
// dense per-node sub-communicator, and (on leaders) a dense
// sub-communicator of all node leaders. Construction is purely local —
// comm.NewSub exchanges no messages — so every rank can factor
// independently from the same Map and agree.
type Hierarchy struct {
	// World is the communicator the hierarchy factors.
	World comm.Comm
	// Map is the locality map the factoring used.
	Map *Map
	// Node spans the caller's node (size 1 when the caller is alone).
	// The node leader is always sub-index 0 (lowest world rank).
	Node *comm.SubComm
	// Leaders spans every node's leader; nil on non-leader ranks. By the
	// Map invariant, a node's index in Leaders equals its node id.
	Leaders *comm.SubComm
	// IsLeader reports whether the caller leads its node.
	IsLeader bool
}

// Factor builds the caller's view of the level tree. Leader election
// picks each node's lowest rank, which tolerates any placement the Map
// encodes (contiguous blocks, dispersed round-robin, ragged last node).
func Factor(c comm.Comm, m *Map) (*Hierarchy, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(m.NodeOf) != c.Size() {
		return nil, fmt.Errorf("topo: map covers %d ranks, communicator has %d", len(m.NodeOf), c.Size())
	}
	me := c.Rank()
	members := m.Nodes[m.NodeOf[me]]
	node, err := comm.NewSub(c, members)
	if err != nil {
		return nil, err
	}
	h := &Hierarchy{World: c, Map: m, Node: node, IsLeader: me == members[0]}
	if h.IsLeader {
		leaders, err := comm.NewSub(c, m.Leaders())
		if err != nil {
			return nil, err
		}
		h.Leaders = leaders
	}
	return h, nil
}
