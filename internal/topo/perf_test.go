package topo

import (
	"fmt"
	"testing"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
	"exacoll/internal/machine"
	"exacoll/internal/simnet"
	"exacoll/internal/tuning"
)

// simFlat measures the flat tuned selection for one collective on the
// simulator (virtual seconds).
func simFlat(t *testing.T, spec machine.Spec, p int, op core.CollOp, n int) float64 {
	t.Helper()
	sim, err := simnet.New(spec, p)
	if err != nil {
		t.Fatal(err)
	}
	tab := tuning.Recommended(spec, p)
	if err := sim.Run(func(c comm.Comm) error {
		return tab.Run(c, op, perfArgs(c, op, n))
	}); err != nil {
		t.Fatal(err)
	}
	return sim.MaxTime()
}

// simHier measures the topology engine's lowering of the same collective.
func simHier(t *testing.T, spec machine.Spec, p int, op core.CollOp, n int) float64 {
	t.Helper()
	sim, err := simnet.New(spec, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(func(c comm.Comm) error {
		m, ok := Discover(c)
		if !ok {
			return fmt.Errorf("no locality on simnet")
		}
		e, err := NewEngine(c, m, Config{Spec: &spec})
		if err != nil {
			return err
		}
		a := perfArgs(c, op, n)
		switch op {
		case core.OpAllreduce:
			return e.Allreduce(a.SendBuf, a.RecvBuf, a.Op, a.Type)
		case core.OpBcast:
			return e.Bcast(a.SendBuf, a.Root)
		default:
			return fmt.Errorf("unsupported perf op %v", op)
		}
	}); err != nil {
		t.Fatal(err)
	}
	return sim.MaxTime()
}

func perfArgs(c comm.Comm, op core.CollOp, n int) core.Args {
	switch op {
	case core.OpAllreduce:
		return core.Args{
			SendBuf: make([]byte, n), RecvBuf: make([]byte, n),
			Op: datatype.Sum, Type: datatype.Float64,
		}
	case core.OpBcast:
		return core.Args{SendBuf: make([]byte, n), Root: 0}
	}
	panic("unsupported perf op")
}

// TestHierBeatsFlatLargeAllreduce pins the acceptance criterion: on
// simulated Frontier at 8 PPN, hierarchical allreduce outperforms the
// flat tuned selection for messages >= 256 KiB. The full 128-node world
// runs unless -short trims it to 16 nodes.
func TestHierBeatsFlatLargeAllreduce(t *testing.T) {
	nodes := 128
	if testing.Short() {
		nodes = 16
	}
	spec := machine.Frontier().WithPPN(8)
	p := nodes * 8
	for _, n := range []int{256 << 10, 1 << 20} {
		flat := simFlat(t, spec, p, core.OpAllreduce, n)
		hier := simHier(t, spec, p, core.OpAllreduce, n)
		t.Logf("allreduce n=%d KiB p=%d: flat %.3e s, hier %.3e s (%.2fx)",
			n>>10, p, flat, hier, flat/hier)
		if hier >= flat {
			t.Errorf("hierarchical allreduce (%.3e s) not faster than flat (%.3e s) at n=%d", hier, flat, n)
		}
	}
}
