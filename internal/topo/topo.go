// Package topo is the locality subsystem behind topology-aware
// hierarchical collectives: it discovers which ranks share a node
// (comm.Locator), factors a communicator into a level tree (node groups +
// a leader group), and lowers collectives into per-level phases where each
// level independently selects its (algorithm, radix) from a tuning table.
//
// The paper's cost model (§III) splits every machine into a fast intranode
// fabric and a slower multi-port NIC tier; its hierarchical baseline
// ([17], core.AllreduceHierarchical) hardcodes radix-2 trees at both
// tiers. This package generalizes that: the node tier and the leader tier
// each get the full Table I algorithm menu and their own tuned radices, so
// e.g. a 8-PPN Frontier node reduces over a flat k=8 tree while 128
// leaders run recursive multiplying with k = the port count.
package topo

import (
	"fmt"

	"exacoll/internal/comm"
	"exacoll/internal/machine"
)

// Map records which node hosts each rank of one communicator. Node ids
// are dense and assigned in first-appearance order by ascending rank, so
// the leader (lowest rank) of node v is also the v-th leader in ascending
// rank order — leader sub-communicator index == node id.
type Map struct {
	// NodeOf maps rank -> dense node id.
	NodeOf []int
	// Local maps rank -> its index among the ranks of its node, in
	// ascending rank order.
	Local []int
	// Nodes maps node id -> member ranks in ascending order.
	Nodes [][]int
	// PPN is the maximum number of ranks on any node.
	PPN int
	// Ports is the NIC port count per node (0 when unknown).
	Ports int
}

// New builds a Map from a rank -> node assignment. The input ids need not
// be dense or ordered; they are re-keyed by first appearance so the Map
// invariants hold for any comm.Locator's raw output.
func New(nodeOf []int, ports int) (*Map, error) {
	if len(nodeOf) == 0 {
		return nil, fmt.Errorf("topo: empty node assignment")
	}
	dense := make(map[int]int)
	m := &Map{
		NodeOf: make([]int, len(nodeOf)),
		Local:  make([]int, len(nodeOf)),
		Ports:  ports,
	}
	for r, raw := range nodeOf {
		id, ok := dense[raw]
		if !ok {
			id = len(dense)
			dense[raw] = id
			m.Nodes = append(m.Nodes, nil)
		}
		m.NodeOf[r] = id
		m.Local[r] = len(m.Nodes[id])
		m.Nodes[id] = append(m.Nodes[id], r)
		if len(m.Nodes[id]) > m.PPN {
			m.PPN = len(m.Nodes[id])
		}
	}
	return m, nil
}

// Uniform builds the contiguous-blocks map: ranks [i*ppn, (i+1)*ppn)
// share node i. The last node may be short when p % ppn != 0.
func Uniform(p, ppn, ports int) (*Map, error) {
	if p < 1 || ppn < 1 {
		return nil, fmt.Errorf("topo: bad uniform geometry p=%d ppn=%d", p, ppn)
	}
	nodeOf := make([]int, p)
	for r := range nodeOf {
		nodeOf[r] = r / ppn
	}
	return New(nodeOf, ports)
}

// FromSpec builds the map a machine spec induces for a p-rank job,
// honouring its placement policy (contiguous or dispersed).
func FromSpec(spec machine.Spec, p int) (*Map, error) {
	if p < 1 {
		return nil, fmt.Errorf("topo: bad rank count %d", p)
	}
	nodeOf := make([]int, p)
	for r := range nodeOf {
		nodeOf[r] = spec.NodeOf(r, p)
	}
	return New(nodeOf, spec.Ports)
}

// Discover queries the communicator's comm.Locator for every rank and
// builds the map, reporting false when the substrate (or any wrapper in
// between) cannot answer for some rank. Only the Node and Ports fields of
// each answer are used; Local and PPN are recomputed so the map is
// consistent even when a wrapper reports parent-relative values.
func Discover(c comm.Comm) (*Map, bool) {
	p := c.Size()
	nodeOf := make([]int, p)
	ports := 0
	for r := 0; r < p; r++ {
		loc, ok := comm.LocalityOf(c, r)
		if !ok {
			return nil, false
		}
		nodeOf[r] = loc.Node
		if r == 0 {
			ports = loc.Ports
		}
	}
	m, err := New(nodeOf, ports)
	if err != nil {
		return nil, false
	}
	return m, true
}

// NumNodes returns the number of distinct nodes.
func (m *Map) NumNodes() int { return len(m.Nodes) }

// Leaders returns the leader (lowest rank) of every node, ascending —
// by the first-appearance invariant, Leaders()[v] == Nodes[v][0] and the
// list is already sorted.
func (m *Map) Leaders() []int {
	out := make([]int, len(m.Nodes))
	for v, members := range m.Nodes {
		out[v] = members[0]
	}
	return out
}

// LeaderOf returns the leader rank of the node hosting rank r.
func (m *Map) LeaderOf(r int) int { return m.Nodes[m.NodeOf[r]][0] }

// Flat reports whether the map offers no hierarchy to exploit: every rank
// on one node, or every node holding one rank.
func (m *Map) Flat() bool { return m.NumNodes() < 2 || m.PPN < 2 }

// Validate checks internal consistency (useful after JSON round-trips or
// hand-built maps).
func (m *Map) Validate() error {
	p := len(m.NodeOf)
	if p == 0 || len(m.Local) != p {
		return fmt.Errorf("topo: map tables sized %d/%d", len(m.NodeOf), len(m.Local))
	}
	seen := 0
	for v, members := range m.Nodes {
		if len(members) == 0 {
			return fmt.Errorf("topo: node %d empty", v)
		}
		prev := -1
		for i, r := range members {
			if r < 0 || r >= p || r <= prev {
				return fmt.Errorf("topo: node %d members not ascending ranks", v)
			}
			prev = r
			if m.NodeOf[r] != v || m.Local[r] != i {
				return fmt.Errorf("topo: rank %d tables disagree with node %d membership", r, v)
			}
			seen++
		}
	}
	if seen != p {
		return fmt.Errorf("topo: %d ranks assigned, world is %d", seen, p)
	}
	return nil
}
