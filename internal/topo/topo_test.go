package topo

import (
	"bytes"
	"fmt"
	"testing"

	"exacoll/internal/comm"
	"exacoll/internal/datatype"
	"exacoll/internal/machine"
	"exacoll/internal/metrics"
	"exacoll/internal/simnet"
	"exacoll/internal/transport/mem"
)

func TestMapNormalization(t *testing.T) {
	// Non-dense, out-of-order node ids: first appearance re-keys them.
	m, err := New([]int{7, 3, 7, 3, 9}, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantNode := []int{0, 1, 0, 1, 2}
	wantLocal := []int{0, 0, 1, 1, 0}
	for r := range wantNode {
		if m.NodeOf[r] != wantNode[r] || m.Local[r] != wantLocal[r] {
			t.Errorf("rank %d: got node %d local %d, want %d %d",
				r, m.NodeOf[r], m.Local[r], wantNode[r], wantLocal[r])
		}
	}
	if m.PPN != 2 || m.Ports != 4 || m.NumNodes() != 3 {
		t.Errorf("PPN=%d Ports=%d nodes=%d, want 2 4 3", m.PPN, m.Ports, m.NumNodes())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestLeaderIndexInvariant pins the property the engine's rooted phases
// rely on: a node's id equals its leader's index in the sorted leader
// list, for dispersed placements too.
func TestLeaderIndexInvariant(t *testing.T) {
	for _, place := range []machine.Placement{machine.PlaceContiguous, machine.PlaceDispersed} {
		for _, geom := range []struct{ p, ppn int }{{16, 4}, {17, 8}, {5, 2}, {9, 4}} {
			spec := machine.Testbox().WithPPN(geom.ppn).WithPlacement(place)
			m, err := FromSpec(spec, geom.p)
			if err != nil {
				t.Fatal(err)
			}
			leaders := m.Leaders()
			for v, members := range m.Nodes {
				if leaders[v] != members[0] {
					t.Fatalf("place=%v p=%d ppn=%d: node %d leader %d != first member %d",
						place, geom.p, geom.ppn, v, leaders[v], members[0])
				}
				if v > 0 && leaders[v] <= leaders[v-1] {
					t.Fatalf("place=%v p=%d ppn=%d: leaders not ascending: %v",
						place, geom.p, geom.ppn, leaders)
				}
			}
		}
	}
}

func TestDiscoverMem(t *testing.T) {
	w := mem.NewWorld(6)
	defer w.Close()
	if _, ok := Discover(w.Comm(0)); ok {
		t.Fatal("Discover succeeded before SetLocality")
	}
	w.SetLocality(4, 2)
	m, ok := Discover(w.Comm(0))
	if !ok {
		t.Fatal("Discover failed after SetLocality")
	}
	if m.NumNodes() != 2 || m.PPN != 4 || m.Ports != 2 {
		t.Fatalf("nodes=%d ppn=%d ports=%d, want 2 4 2", m.NumNodes(), m.PPN, m.Ports)
	}
	// Discovery through a wrapper: instrumentation forwards Locator.
	reg := metrics.NewRegistry()
	if _, ok := Discover(reg.Instrument(w.Comm(1))); !ok {
		t.Fatal("Discover failed through metrics wrapper")
	}
}

func TestDiscoverSimnet(t *testing.T) {
	spec := machine.Testbox().WithPPN(4).WithPlacement(machine.PlaceDispersed)
	sim, err := simnet.New(spec, 10)
	if err != nil {
		t.Fatal(err)
	}
	err = sim.Run(func(c comm.Comm) error {
		m, ok := Discover(c)
		if !ok {
			return fmt.Errorf("rank %d: no locality", c.Rank())
		}
		want, err := FromSpec(spec, 10)
		if err != nil {
			return err
		}
		for r := range want.NodeOf {
			if m.NodeOf[r] != want.NodeOf[r] {
				return fmt.Errorf("rank %d maps to node %d, spec says %d", r, m.NodeOf[r], want.NodeOf[r])
			}
		}
		if m.Ports != spec.Ports {
			return fmt.Errorf("ports %d, want %d", m.Ports, spec.Ports)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// intsF64 encodes rank-distinct small integers: any reduction order sums
// them exactly in float64, so hierarchical results bit-match flat ones.
func intsF64(rank, nElems int) []byte {
	vals := make([]float64, nElems)
	for i := range vals {
		vals[i] = float64(rank*nElems + i + 1)
	}
	return datatype.EncodeFloat64(vals)
}

// checkConformance runs all four lowered collectives through an engine on
// every rank and verifies them against locally computed references.
func checkConformance(c comm.Comm, m *Map, nElems int) error {
	e, err := NewEngine(c, m, Config{})
	if err != nil {
		return err
	}
	p, me := c.Size(), c.Rank()
	b := nElems * 8
	root := p - 1 // worst case: root is rarely a leader

	// Bcast: every rank ends with the root's payload.
	buf := make([]byte, b)
	if me == root {
		copy(buf, intsF64(root, nElems))
	}
	if err := e.Bcast(buf, root); err != nil {
		return fmt.Errorf("bcast: %w", err)
	}
	if !bytes.Equal(buf, intsF64(root, nElems)) {
		return fmt.Errorf("rank %d: bcast payload mismatch", me)
	}

	// Expected sum of every rank's contribution, element-wise.
	sum := make([]float64, nElems)
	for r := 0; r < p; r++ {
		for i := range sum {
			sum[i] += float64(r*nElems + i + 1)
		}
	}
	wantSum := datatype.EncodeFloat64(sum)

	// Reduce: bit-exact at the root (integer-valued float64 sums are exact
	// in any association, so this matches the flat references bitwise).
	send := intsF64(me, nElems)
	recv := make([]byte, b)
	if err := e.Reduce(send, recv, datatype.Sum, datatype.Float64, root); err != nil {
		return fmt.Errorf("reduce: %w", err)
	}
	if me == root && !bytes.Equal(recv, wantSum) {
		return fmt.Errorf("rank %d: reduce result mismatch", me)
	}

	// Allreduce: bit-exact everywhere.
	recv2 := make([]byte, b)
	if err := e.Allreduce(send, recv2, datatype.Sum, datatype.Float64); err != nil {
		return fmt.Errorf("allreduce: %w", err)
	}
	if !bytes.Equal(recv2, wantSum) {
		return fmt.Errorf("rank %d: allreduce result mismatch", me)
	}

	// Allgather: world-rank order even under dispersed placement.
	all := make([]byte, p*b)
	if err := e.Allgather(send, all); err != nil {
		return fmt.Errorf("allgather: %w", err)
	}
	for r := 0; r < p; r++ {
		if !bytes.Equal(all[r*b:(r+1)*b], intsF64(r, nElems)) {
			return fmt.Errorf("rank %d: allgather block %d mismatch", me, r)
		}
	}
	return nil
}

// TestEngineConformance sweeps substrate × PPN × placement × world size,
// including flat layouts (PPN 1), singleton worlds, non-divisible worlds
// (p % ppn != 0), and worlds smaller than one node.
func TestEngineConformance(t *testing.T) {
	ppns := []int{1, 2, 8}
	sizes := []int{1, 5, 8, 16, 17}
	places := []machine.Placement{machine.PlaceContiguous, machine.PlaceDispersed}
	for _, ppn := range ppns {
		for _, p := range sizes {
			for _, place := range places {
				spec := machine.Testbox().WithPPN(ppn).WithPlacement(place)
				m, err := FromSpec(spec, p)
				if err != nil {
					t.Fatal(err)
				}
				name := fmt.Sprintf("ppn%d_p%d_place%d", ppn, p, place)
				t.Run("mem_"+name, func(t *testing.T) {
					t.Parallel()
					w := mem.NewWorld(p)
					defer w.Close()
					if err := w.Run(func(c comm.Comm) error {
						return checkConformance(c, m, 3)
					}); err != nil {
						t.Fatal(err)
					}
				})
				t.Run("sim_"+name, func(t *testing.T) {
					t.Parallel()
					sim, err := simnet.New(spec, p)
					if err != nil {
						t.Fatal(err)
					}
					if err := sim.Run(func(c comm.Comm) error {
						m2, ok := Discover(c)
						if !ok {
							return fmt.Errorf("no locality on simnet")
						}
						return checkConformance(c, m2, 3)
					}); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestEngineConformanceLarge exercises multi-rung table selection: large
// payloads flip the node tables onto their bandwidth algorithms.
func TestEngineConformanceLarge(t *testing.T) {
	spec := machine.Testbox().WithPPN(4)
	const p = 12
	m, err := FromSpec(spec, p)
	if err != nil {
		t.Fatal(err)
	}
	w := mem.NewWorld(p)
	defer w.Close()
	if err := w.Run(func(c comm.Comm) error {
		return checkConformance(c, m, 16<<10) // 128 KiB payloads
	}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineDiscoveredOnMem runs the full Locator path end to end: the
// synthetic mem layout is discovered (not handed over), then lowered.
func TestEngineDiscoveredOnMem(t *testing.T) {
	const p, ppn = 10, 4
	w := mem.NewWorld(p)
	defer w.Close()
	w.SetLocality(ppn, 2)
	if err := w.Run(func(c comm.Comm) error {
		m, ok := Discover(c)
		if !ok {
			return fmt.Errorf("no locality on mem")
		}
		return checkConformance(c, m, 5)
	}); err != nil {
		t.Fatal(err)
	}
}

// TestPerLevelMetrics verifies the intra/inter split: node phases and
// hops count as intranode, leader phases as internode.
func TestPerLevelMetrics(t *testing.T) {
	const p, ppn = 8, 4
	reg := metrics.NewRegistry()
	w := mem.NewWorld(p)
	defer w.Close()
	m, err := Uniform(p, ppn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(c comm.Comm) error {
		// Instrumented world comm: the engine discovers the registry via
		// metrics.Instrumented and meters each level on top of it.
		e, err := NewEngine(reg.Instrument(c), m, Config{})
		if err != nil {
			return err
		}
		send := intsF64(c.Rank(), 4)
		recv := make([]byte, len(send))
		if err := e.Allreduce(send, recv, datatype.Sum, datatype.Float64); err != nil {
			return err
		}
		return e.Bcast(recv, p-1) // root p-1 exercises the hop path
	}); err != nil {
		t.Fatal(err)
	}
	tot := reg.Snapshot().Totals()
	if tot.HierIntraSends == 0 || tot.HierIntraBytes == 0 {
		t.Errorf("no intranode traffic recorded: %+v", tot)
	}
	if tot.HierInterSends == 0 || tot.HierInterBytes == 0 {
		t.Errorf("no internode traffic recorded: %+v", tot)
	}
	if tot.HierIntraSends <= tot.HierInterSends {
		t.Errorf("expected intranode sends (%d) to dominate internode (%d) at ppn=%d",
			tot.HierIntraSends, tot.HierInterSends, ppn)
	}
	// Per-level selection decisions were recorded through the levelComm.
	if tot.Sends == 0 {
		t.Errorf("base send counters empty — engine bypassed instrumentation")
	}
}
