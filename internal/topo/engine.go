package topo

import (
	"fmt"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
	"exacoll/internal/flight"
	"exacoll/internal/machine"
	"exacoll/internal/metrics"
	"exacoll/internal/tuning"
)

// tagTopo is the tag family of the engine's inter-level point-to-point
// hops (root <-> leader handoffs). It sits above every blocking family
// base in internal/core (+0x000 .. +0xb00) and below TagNBCBase, and —
// like those families — all hops of one call share it: a rank runs at
// most one blocking collective at a time and per-(source, tag) FIFO
// ordering keeps sequential phases from cross-matching.
const tagTopo = comm.TagCollBase + 0xc00

// Config parameterizes an Engine. The zero value selects recommended
// defaults for everything.
type Config struct {
	// NodeTable selects (algorithm, k) per message size for the intranode
	// phases. Nil selects tuning.RecommendedIntra for Spec and the map's
	// PPN.
	NodeTable *tuning.Table
	// LeaderTable selects for the internode (leader) phases. Nil selects
	// tuning.Recommended for Spec at one rank per node.
	LeaderTable *tuning.Table
	// Spec is the machine the default tables are derived for; nil means
	// machine.Testbox(). Ignored when both tables are given.
	Spec *machine.Spec
	// Metrics receives per-level traffic accounting (intra- vs internode
	// sends and bytes) and per-level selection decisions. Nil disables
	// both; when nil and the communicator is metrics-instrumented, its
	// registry is used instead.
	Metrics *metrics.Registry
}

// Engine lowers collectives onto a factored communicator: one phase per
// hierarchy level, each phase running the (algorithm, radix) its level's
// tuning table selects for the phase's message size. This replaces the
// hardcoded radix-2 phases of core.AllreduceHierarchical with the full
// generalized-algorithm menu at every level.
type Engine struct {
	h    *Hierarchy
	node comm.Comm // node-level channel (levelComm-wrapped when metered)
	lead comm.Comm // leader-level channel; nil on non-leaders

	nodeTab *tuning.Table
	leadTab *tuning.Table
	reg     *metrics.Registry
	rec     *flight.RankRecorder // nil when the world carries no recorder
}

// phase brackets one hierarchy phase (node-level run, leader-level run,
// root<->leader hop) on the flight timeline; the returned func records
// the end. A no-op when no recorder rides on the communicator.
func (e *Engine) phase(label string) func() {
	if e.rec == nil {
		return func() {}
	}
	arg := flight.PackLabel(e.rec.LabelID(label))
	e.rec.Record(flight.EvPhaseBegin, -1, 0, 0, arg)
	return func() { e.rec.Record(flight.EvPhaseEnd, -1, 0, 0, arg) }
}

// NewEngine factors c by m and prepares the per-level selection state.
// Every rank of c must call NewEngine with an identical map.
func NewEngine(c comm.Comm, m *Map, cfg Config) (*Engine, error) {
	h, err := Factor(c, m)
	if err != nil {
		return nil, err
	}
	spec := machine.Testbox()
	if cfg.Spec != nil {
		spec = *cfg.Spec
	}
	e := &Engine{h: h, reg: cfg.Metrics, rec: flight.RecorderOf(c)}
	if e.reg == nil {
		e.reg = metrics.InstrumentedOf(c)
	}
	e.nodeTab = cfg.NodeTable
	if e.nodeTab == nil {
		e.nodeTab = tuning.RecommendedIntra(spec, m.PPN)
	}
	e.leadTab = cfg.LeaderTable
	if e.leadTab == nil {
		e.leadTab = tuning.Recommended(spec.WithPPN(1), m.NumNodes())
	}
	e.node = e.meter(h.Node, true)
	if h.Leaders != nil {
		e.lead = e.meter(h.Leaders, false)
	}
	return e, nil
}

// meter wraps a level sub-communicator so its sends feed the per-level
// counters and its tuned runs record decisions. Without a registry the
// sub-communicator is used bare.
func (e *Engine) meter(sub comm.Comm, intra bool) comm.Comm {
	if e.reg == nil {
		return sub
	}
	return &levelComm{inner: sub, reg: e.reg, rank: e.h.World.Rank(), intra: intra}
}

// Hierarchy exposes the level tree the engine runs on.
func (e *Engine) Hierarchy() *Hierarchy { return e.h }

// hop moves a buffer between the root of a rooted collective and its
// node's leader over the world communicator (always intranode).
func (e *Engine) hopSend(to int, buf []byte) error {
	if err := e.h.World.Send(to, tagTopo, buf); err != nil {
		return err
	}
	if e.reg != nil {
		e.reg.HierSend(e.h.World.Rank(), true, len(buf))
	}
	return nil
}

func (e *Engine) hopRecv(from int, buf []byte) error {
	n, err := e.h.World.Recv(from, tagTopo, buf)
	if err != nil {
		return err
	}
	if n != len(buf) {
		return fmt.Errorf("topo: hop from %d carried %d bytes, want %d", from, n, len(buf))
	}
	return nil
}

// Bcast lowers a broadcast: the root hands the payload to its node's
// leader (if it is not one itself), the leaders broadcast across nodes,
// and each leader broadcasts into its node.
func (e *Engine) Bcast(buf []byte, root int) error {
	m, me := e.h.Map, e.h.World.Rank()
	if root < 0 || root >= e.h.World.Size() {
		return fmt.Errorf("%w: bcast root %d", comm.ErrRankOutOfRange, root)
	}
	rootNode := m.NodeOf[root]
	rootLeader := m.Nodes[rootNode][0]
	if root != rootLeader {
		if me == root || me == rootLeader {
			end := e.phase("bcast root hop")
			var err error
			if me == root {
				err = e.hopSend(rootLeader, buf)
			} else {
				err = e.hopRecv(root, buf)
			}
			end()
			if err != nil {
				return err
			}
		}
	}
	if e.lead != nil && m.NumNodes() > 1 {
		// Leaders()[v] == Nodes[v][0], so the root node's id is also the
		// root's index in the leader sub-communicator.
		end := e.phase("bcast internode")
		err := e.leadTab.Run(e.lead, core.OpBcast, core.Args{SendBuf: buf, Root: rootNode})
		end()
		if err != nil {
			return err
		}
	}
	if e.node.Size() > 1 {
		end := e.phase("bcast intranode")
		err := e.nodeTab.Run(e.node, core.OpBcast, core.Args{SendBuf: buf, Root: 0})
		end()
		return err
	}
	return nil
}

// Reduce lowers a reduction: each node reduces onto its leader, the
// leaders reduce onto the root node's leader, and that leader hands the
// result to the root. Every rank must pass a recvbuf of sendbuf's length
// (it is working storage off-root, as in the flat core algorithms).
func (e *Engine) Reduce(sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type, root int) error {
	m, me := e.h.Map, e.h.World.Rank()
	if root < 0 || root >= e.h.World.Size() {
		return fmt.Errorf("%w: reduce root %d", comm.ErrRankOutOfRange, root)
	}
	if err := checkReduceArgs(sendbuf, recvbuf, dt); err != nil {
		return err
	}
	if e.node.Size() > 1 {
		end := e.phase("reduce intranode")
		err := e.nodeTab.Run(e.node, core.OpReduce, core.Args{
			SendBuf: sendbuf, RecvBuf: recvbuf, Op: op, Type: dt, Root: 0,
		})
		end()
		if err != nil {
			return err
		}
	} else {
		copy(recvbuf, sendbuf)
	}
	rootNode := m.NodeOf[root]
	rootLeader := m.Nodes[rootNode][0]
	if e.lead != nil && m.NumNodes() > 1 {
		end := e.phase("reduce internode")
		tmp := append([]byte(nil), recvbuf...)
		err := e.leadTab.Run(e.lead, core.OpReduce, core.Args{
			SendBuf: tmp, RecvBuf: recvbuf, Op: op, Type: dt, Root: rootNode,
		})
		end()
		if err != nil {
			return err
		}
	}
	if root != rootLeader && (me == rootLeader || me == root) {
		end := e.phase("reduce root hop")
		var err error
		if me == rootLeader {
			err = e.hopSend(root, recvbuf)
		} else {
			err = e.hopRecv(rootLeader, recvbuf)
		}
		end()
		return err
	}
	return nil
}

// Allreduce lowers an allreduce into reduce-to-leader, leader allreduce,
// and leader-to-node broadcast — the classic hierarchical shape, but with
// every phase's (algorithm, k) independently tuned.
func (e *Engine) Allreduce(sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type) error {
	if err := checkReduceArgs(sendbuf, recvbuf, dt); err != nil {
		return err
	}
	if e.node.Size() > 1 {
		end := e.phase("allreduce reduce intranode")
		err := e.nodeTab.Run(e.node, core.OpReduce, core.Args{
			SendBuf: sendbuf, RecvBuf: recvbuf, Op: op, Type: dt, Root: 0,
		})
		end()
		if err != nil {
			return err
		}
	} else {
		copy(recvbuf, sendbuf)
	}
	if e.lead != nil && e.h.Map.NumNodes() > 1 {
		end := e.phase("allreduce internode")
		tmp := append([]byte(nil), recvbuf...)
		err := e.leadTab.Run(e.lead, core.OpAllreduce, core.Args{
			SendBuf: tmp, RecvBuf: recvbuf, Op: op, Type: dt,
		})
		end()
		if err != nil {
			return err
		}
	}
	if e.node.Size() > 1 {
		end := e.phase("allreduce bcast intranode")
		err := e.nodeTab.Run(e.node, core.OpBcast, core.Args{SendBuf: recvbuf, Root: 0})
		end()
		return err
	}
	return nil
}

// Allgather lowers an allgather: each node gathers onto its leader, the
// leaders allgather node blocks (zero-padded to PPN blocks so uneven
// nodes exchange fixed-size slots), every leader scatters the blocks into
// world-rank order, and each node broadcasts the assembled result. The
// reassembly honours arbitrary placements: recvbuf ends up in world-rank
// order even when nodes interleave ranks (dispersed placement).
func (e *Engine) Allgather(sendbuf, recvbuf []byte) error {
	m := e.h.Map
	p := e.h.World.Size()
	b := len(sendbuf)
	if len(recvbuf) != p*b {
		return fmt.Errorf("topo: allgather recvbuf %d bytes, want %d", len(recvbuf), p*b)
	}
	if b == 0 {
		return nil
	}
	nodeSize := e.node.Size()
	gathered := make([]byte, nodeSize*b)
	if nodeSize > 1 {
		end := e.phase("allgather gather intranode")
		err := e.nodeTab.Run(e.node, core.OpGather, core.Args{
			SendBuf: sendbuf, RecvBuf: gathered, Root: 0,
		})
		end()
		if err != nil {
			return err
		}
	} else {
		copy(gathered, sendbuf)
	}
	if e.lead != nil && m.NumNodes() > 1 {
		end := e.phase("allgather internode")
		padded := make([]byte, m.PPN*b)
		copy(padded, gathered)
		all := make([]byte, m.NumNodes()*m.PPN*b)
		err := e.leadTab.Run(e.lead, core.OpAllgather, core.Args{
			SendBuf: padded, RecvBuf: all,
		})
		end()
		if err != nil {
			return err
		}
		for v, members := range m.Nodes {
			for i, r := range members {
				src := (v*m.PPN + i) * b
				copy(recvbuf[r*b:(r+1)*b], all[src:src+b])
			}
		}
	} else if e.h.IsLeader {
		for i, r := range m.Nodes[m.NodeOf[e.h.World.Rank()]] {
			copy(recvbuf[r*b:(r+1)*b], gathered[i*b:(i+1)*b])
		}
	}
	if nodeSize > 1 {
		end := e.phase("allgather bcast intranode")
		err := e.nodeTab.Run(e.node, core.OpBcast, core.Args{SendBuf: recvbuf, Root: 0})
		end()
		return err
	}
	return nil
}

// checkReduceArgs mirrors the buffer contract of the flat core reductions.
func checkReduceArgs(sendbuf, recvbuf []byte, dt datatype.Type) error {
	if len(sendbuf) != len(recvbuf) {
		return fmt.Errorf("topo: sendbuf %d bytes, recvbuf %d", len(sendbuf), len(recvbuf))
	}
	if dt.Size() > 0 && len(sendbuf)%dt.Size() != 0 {
		return fmt.Errorf("topo: buffer %d bytes not a multiple of %s", len(sendbuf), dt)
	}
	return nil
}

// levelComm meters one hierarchy level: every send is attributed to the
// level (intra- or internode) in the registry, and tuning.Table.Run sees
// the registry through metrics.Instrumented so per-level selection
// decisions are recorded. Receives, clocks, and everything else forward
// to the level's sub-communicator.
type levelComm struct {
	inner comm.Comm
	reg   *metrics.Registry
	rank  int // world rank, the registry's accounting key
	intra bool
}

// Metrics implements metrics.Instrumented.
func (l *levelComm) Metrics() *metrics.Registry { return l.reg }

// Unwrap implements flight.Unwrapper, so the reduction kernels running on
// a level find the world's flight recorder through the wrapper chain.
func (l *levelComm) Unwrap() comm.Comm { return l.inner }

// Rank implements comm.Comm.
func (l *levelComm) Rank() int { return l.inner.Rank() }

// Size implements comm.Comm.
func (l *levelComm) Size() int { return l.inner.Size() }

// ChargeCompute implements comm.Comm.
func (l *levelComm) ChargeCompute(n int) { l.inner.ChargeCompute(n) }

// Send implements comm.Comm.
func (l *levelComm) Send(to int, tag comm.Tag, buf []byte) error {
	if err := l.inner.Send(to, tag, buf); err != nil {
		return err
	}
	l.reg.HierSend(l.rank, l.intra, len(buf))
	return nil
}

// Isend implements comm.Comm.
func (l *levelComm) Isend(to int, tag comm.Tag, buf []byte) (comm.Request, error) {
	req, err := l.inner.Isend(to, tag, buf)
	if err != nil {
		return nil, err
	}
	l.reg.HierSend(l.rank, l.intra, len(buf))
	return req, nil
}

// Recv implements comm.Comm.
func (l *levelComm) Recv(from int, tag comm.Tag, buf []byte) (int, error) {
	return l.inner.Recv(from, tag, buf)
}

// Irecv implements comm.Comm.
func (l *levelComm) Irecv(from int, tag comm.Tag, buf []byte) (comm.Request, error) {
	return l.inner.Irecv(from, tag, buf)
}

// Now implements comm.Clock when the level's substrate tracks virtual
// time (tuning.Table.Run stamps decisions with it).
func (l *levelComm) Now() float64 {
	if cl, ok := l.inner.(comm.Clock); ok {
		return cl.Now()
	}
	return 0
}

// HasClock implements comm.ClockProber.
func (l *levelComm) HasClock() bool {
	_, ok := comm.VirtualClock(l.inner)
	return ok
}

// Locality forwards comm.Locator to the level's sub-communicator.
func (l *levelComm) Locality(rank int) (comm.Locality, bool) {
	return comm.LocalityOf(l.inner, rank)
}
