package nbc

import (
	"exacoll/internal/core"
	"exacoll/internal/datatype"
)

// Tree-family lowerings: the k-nomial bcast/reduce/gather bodies of
// internal/core/knomial.go translated op for op into program DAGs. Combine
// chains mirror the blocking loops exactly (same order, same accumulator)
// so reductions are bit-identical.
//
// Tag slots within one composed program: slot 0 carries the first phase
// (reduce/gather/scatter), slot 1 the bcast phase of allgather/allreduce
// compositions. A rooted bcast or reduce alone uses slot 0.

// lowerBcastKnomial lowers BcastKnomial: recv once from the parent, then
// send to every child. after gates the parent recv (and, for the root, the
// child sends) on a previous phase's final op (-1 for none).
func lowerBcastKnomial(b *progBuilder, p, me int, buf []byte, root, k, slot, after int) {
	if p == 1 {
		return
	}
	t := core.KnomialTree{P: p, K: k}
	v := core.VRank(me, root, p)

	got := after
	if par := t.Parent(v); par >= 0 {
		got = b.recv(core.AbsRank(par, root, p), slot, buf, after)
	}
	for _, ch := range t.Children(v) {
		b.send(core.AbsRank(ch.VRank, root, p), slot, buf, got)
	}
}

// lowerReduceKnomial lowers ReduceKnomial into b and returns the index of
// the final op touching the accumulator (-1 when the program is empty so
// far and p == 1 leaves nothing to do). acc is recvbuf at the root and
// fresh scratch elsewhere, exactly as in the blocking body; the combine
// chain runs in the blocking order (descending child index) regardless of
// message arrival order.
func lowerReduceKnomial(b *progBuilder, p, me int, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type, root, k, slot int) (acc []byte, last int) {
	if me == root {
		acc = recvbuf
	} else {
		acc = b.scratchBuf(len(sendbuf))
	}
	last = b.copyOp([]Move{{Dst: acc, Src: sendbuf}})
	if p == 1 {
		return acc, last
	}
	t := core.KnomialTree{P: p, K: k}
	v := core.VRank(me, root, p)
	children := t.Children(v)

	recvs := make([]int, len(children))
	bufs := make([][]byte, len(children))
	for i, ch := range children {
		bufs[i] = b.scratchBuf(len(sendbuf))
		recvs[i] = b.recv(core.AbsRank(ch.VRank, root, p), slot, bufs[i])
	}
	for i := len(children) - 1; i >= 0; i-- {
		last = b.reduce(op, dt, acc, bufs[i], recvs[i], last)
	}
	if par := t.Parent(v); par >= 0 {
		last = b.send(core.AbsRank(par, root, p), slot, acc, last)
	}
	return acc, last
}

// lowerGatherKnomial lowers GatherKnomial to root and returns the index of
// the op that completes this rank's part (-1 if none). At the root that op
// is the rotate copy into recvbuf, and rotated gates any following phase.
func lowerGatherKnomial(b *progBuilder, p, me int, sendbuf, recvbuf []byte, root, k, slot int) (last int) {
	n := len(sendbuf)
	t := core.KnomialTree{P: p, K: k}
	v := core.VRank(me, root, p)
	children := t.Children(v)

	span := t.Span(v)
	tmp := b.scratchBuf(n * span)
	own := b.copyOp([]Move{{Dst: tmp[:n], Src: sendbuf}})

	deps := []int{own}
	for _, ch := range children {
		sz := t.SubtreeSize(ch.VRank, ch.Weight)
		off := (ch.VRank - v) * n
		deps = append(deps, b.recv(core.AbsRank(ch.VRank, root, p), slot, tmp[off:off+sz*n]))
	}
	if par := t.Parent(v); par >= 0 {
		return b.send(core.AbsRank(par, root, p), slot, tmp, deps...)
	}
	// Root: rotate from vrank order back to absolute rank order.
	moves := make([]Move, p)
	for vr := 0; vr < p; vr++ {
		r := core.AbsRank(vr, root, p)
		moves[vr] = Move{Dst: recvbuf[r*n : (r+1)*n], Src: tmp[vr*n : (vr+1)*n]}
	}
	return b.copyOp(moves, deps...)
}

// lowerScatterFairForBcast lowers scatterFairForBcast: distribute root's
// buf across all ranks in fair blocks keyed by absolute rank down a
// radix-k tree. It returns ownReady, the op after which this rank's own
// fair block of buf is valid (the pack at the root, the block copy
// elsewhere), and notes the phase's buf accesses in tr (block ids are
// absolute ranks): the root's pack reads every block, a non-root writes
// its own block.
func lowerScatterFairForBcast(b *progBuilder, tr *blockTracker, p, me int, buf []byte, root, k, slot int) (ownReady int) {
	n := len(buf)
	t := core.KnomialTree{P: p, K: k}
	v := core.VRank(me, root, p)

	packedOff := make([]int, p+1)
	for vr := 0; vr < p; vr++ {
		_, sz := core.FairBlock(n, p, core.AbsRank(vr, root, p))
		packedOff[vr+1] = packedOff[vr] + sz
	}

	var packed []byte
	var got int
	if v == 0 {
		packed = b.scratchBuf(n)
		moves := make([]Move, 0, p)
		for vr := 0; vr < p; vr++ {
			off, sz := core.FairBlock(n, p, core.AbsRank(vr, root, p))
			moves = append(moves, Move{Dst: packed[packedOff[vr] : packedOff[vr]+sz], Src: buf[off : off+sz]})
		}
		got = b.copyOp(moves)
		// The pack reads the whole buffer: the allgather phase must not
		// overwrite any block before it runs.
		for blk := 0; blk < p; blk++ {
			tr.noteRead(blk, got)
		}
	} else {
		span := t.Span(v)
		packed = b.scratchBuf(packedOff[v+span] - packedOff[v])
		got = b.recv(core.AbsRank(t.Parent(v), root, p), slot, packed)
	}
	base := packedOff[v]
	for _, ch := range t.Children(v) {
		sz := t.SubtreeSize(ch.VRank, ch.Weight)
		lo := packedOff[ch.VRank] - base
		hi := packedOff[ch.VRank+sz] - base
		b.send(core.AbsRank(ch.VRank, root, p), slot, packed[lo:hi], got)
	}
	ownReady = got
	if v != 0 {
		off, sz := core.FairBlock(n, p, me)
		ownReady = b.copyOp([]Move{{Dst: buf[off : off+sz], Src: packed[:sz]}}, got)
		tr.noteWrite(me, ownReady)
	}
	return ownReady
}

// lowerAllgatherKnomial composes gather to rank 0 (slot 0) with a k-nomial
// bcast of the gathered buffer (slot 1), matching AllgatherKnomial.
func lowerAllgatherKnomial(b *progBuilder, p, me int, sendbuf, recvbuf []byte, k int) {
	gathered := lowerGatherKnomial(b, p, me, sendbuf, recvbuf, 0, k, 0)
	after := -1
	if me == 0 {
		after = gathered
	}
	// Non-roots gate nothing on the gather phase: their bcast recv writes
	// recvbuf, which the gather phase never touches on a non-root, and the
	// distinct tag slot prevents cross-matching.
	lowerBcastKnomial(b, p, me, recvbuf, 0, k, 1, after)
}

// lowerAllreduceKnomial composes reduce to rank 0 (slot 0) with a k-nomial
// bcast of the result (slot 1), matching AllreduceKnomial.
func lowerAllreduceKnomial(b *progBuilder, p, me int, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type, k int) {
	_, last := lowerReduceKnomial(b, p, me, sendbuf, recvbuf, op, dt, 0, k, 0)
	if me != 0 {
		// The reduce phase left the result in rank 0's recvbuf only; other
		// ranks receive it fresh. Their bcast recv overwrites recvbuf, which
		// the reduce phase never wrote on a non-root — but the reduce
		// phase's copy/send ops read the scratch accumulator, not recvbuf,
		// so no hazard edge is needed; ordering comes from rank 0's sends.
		last = -1
	}
	lowerBcastKnomial(b, p, me, recvbuf, 0, k, 1, last)
}
