package nbc

import (
	"exacoll/internal/core"
	"exacoll/internal/datatype"
)

// Schedule-family lowerings: core.Schedule executions (the k-ring
// algorithms and anything else expressed as an explicit allgather plan)
// translated into program DAGs.
//
// The blocking executors barrier between rounds with WaitAll; the
// lowerings replace that barrier with per-block hazard edges from a
// blockTracker, so independent blocks flow without synchronization while
// every reduce chain still runs in the blocking order. FIFO safety for
// the single shared tag slot comes from the engine's per-(peer, tag)
// issue ordering: ops appear in round order in the program, and the
// engine never posts a later same-key op before an earlier one.

// lowerSchedAllgather lowers Schedule.RunAllgather over buf: after all
// ops complete, buf holds every block. tr carries buf's block hazards
// (block ids are schedule block ids) across composed phases.
func lowerSchedAllgather(b *progBuilder, tr *blockTracker, s *core.Schedule, me int, buf []byte, layout core.BlockLayout, slot int) {
	for _, round := range s.Rounds {
		sends, recvs := core.XfersFor(round, me, layout)
		for _, rx := range recvs {
			if len(rx.Blocks) == 1 {
				blk := rx.Blocks[0]
				off, sz := layout(blk)
				idx := b.recv(rx.Peer, slot, buf[off:off+sz], tr.writeDeps(blk)...)
				tr.noteWrite(blk, idx)
				continue
			}
			staging := b.scratchBuf(rx.Size)
			got := b.recv(rx.Peer, slot, staging)
			moves := make([]Move, 0, len(rx.Blocks))
			deps := []int{got}
			pos := 0
			for _, blk := range rx.Blocks {
				off, sz := layout(blk)
				moves = append(moves, Move{Dst: buf[off : off+sz], Src: staging[pos : pos+sz]})
				deps = append(deps, tr.writeDeps(blk)...)
				pos += sz
			}
			idx := b.copyOp(moves, deps...)
			for _, blk := range rx.Blocks {
				tr.noteWrite(blk, idx)
			}
		}
		for _, tx := range sends {
			if len(tx.Blocks) == 1 {
				blk := tx.Blocks[0]
				off, sz := layout(blk)
				idx := b.send(tx.Peer, slot, buf[off:off+sz], tr.readDeps(blk)...)
				tr.noteRead(blk, idx)
				continue
			}
			// Pack into staging, then send the packed message.
			staging := b.scratchBuf(tx.Size)
			moves := make([]Move, 0, len(tx.Blocks))
			var deps []int
			pos := 0
			for _, blk := range tx.Blocks {
				off, sz := layout(blk)
				moves = append(moves, Move{Dst: staging[pos : pos+sz], Src: buf[off : off+sz]})
				deps = append(deps, tr.readDeps(blk)...)
				pos += sz
			}
			packed := b.copyOp(moves, deps...)
			for _, blk := range tx.Blocks {
				tr.noteRead(blk, packed)
			}
			b.send(tx.Peer, slot, staging, packed)
		}
	}
}

// lowerSchedReduceScatter lowers Schedule.RunReduceScatter over work (the
// caller's full vector): the schedule runs in reverse with every edge
// reversed, accumulating partials toward each block's owner. Receives are
// always staged; each staged message's reduce chains behind the block's
// previous accumulation, preserving the blocking combine order
// (rounds reversed, receives in ascending-peer order, blocks ascending
// within a message) bit for bit.
func lowerSchedReduceScatter(b *progBuilder, tr *blockTracker, s *core.Schedule, me int, work []byte, layout core.BlockLayout, op datatype.Op, dt datatype.Type, slot int) {
	for ri := len(s.Rounds) - 1; ri >= 0; ri-- {
		round := s.Rounds[ri]
		rev := make(core.Round, len(round))
		for i, e := range round {
			rev[i] = core.Edge{From: e.To, To: e.From, Block: e.Block}
		}
		sends, recvs := core.XfersFor(rev, me, layout)
		for _, rx := range recvs {
			staging := b.scratchBuf(rx.Size)
			got := b.recv(rx.Peer, slot, staging)
			pos := 0
			for _, blk := range rx.Blocks {
				off, sz := layout(blk)
				deps := append([]int{got}, tr.writeDeps(blk)...)
				idx := b.reduce(op, dt, work[off:off+sz], staging[pos:pos+sz], deps...)
				tr.noteWrite(blk, idx)
				pos += sz
			}
		}
		for _, tx := range sends {
			if len(tx.Blocks) == 1 {
				blk := tx.Blocks[0]
				off, sz := layout(blk)
				idx := b.send(tx.Peer, slot, work[off:off+sz], tr.readDeps(blk)...)
				tr.noteRead(blk, idx)
				continue
			}
			staging := b.scratchBuf(tx.Size)
			moves := make([]Move, 0, len(tx.Blocks))
			var deps []int
			pos := 0
			for _, blk := range tx.Blocks {
				off, sz := layout(blk)
				moves = append(moves, Move{Dst: staging[pos : pos+sz], Src: work[off : off+sz]})
				deps = append(deps, tr.readDeps(blk)...)
				pos += sz
			}
			packed := b.copyOp(moves, deps...)
			for _, blk := range tx.Blocks {
				tr.noteRead(blk, packed)
			}
			b.send(tx.Peer, slot, staging, packed)
		}
	}
}

// lowerAllgatherKRing mirrors AllgatherKRing: copy the own block into
// place, then run the k-ring schedule as an allgather on slot 0.
func lowerAllgatherKRing(b *progBuilder, p, me int, sendbuf, recvbuf []byte, k int) error {
	n := len(sendbuf)
	tr := newBlockTracker()
	own := b.copyOp([]Move{{Dst: recvbuf[me*n : (me+1)*n], Src: sendbuf}})
	tr.noteWrite(me, own)
	if p == 1 {
		return nil
	}
	s, err := core.KRingSchedule(p, k)
	if err != nil {
		return err
	}
	lowerSchedAllgather(b, tr, s, me, recvbuf, core.UniformLayout(n), 0)
	return nil
}

// lowerBcastKRing mirrors BcastKRing: radix-max(k,2) tree scatter of fair
// blocks (slot 0) followed by the k-ring allgather over them (slot 1).
func lowerBcastKRing(b *progBuilder, p, me int, buf []byte, root, k int) error {
	if p == 1 {
		return nil
	}
	tr := newBlockTracker()
	lowerScatterFairForBcast(b, tr, p, me, buf, root, maxInt(k, 2), 0)
	s, err := core.KRingSchedule(p, k)
	if err != nil {
		return err
	}
	lowerSchedAllgather(b, tr, s, me, buf, core.FairLayout(len(buf), p), 1)
	return nil
}

// lowerAllreduceKRing mirrors AllreduceKRing: copy sendbuf into recvbuf,
// reduce-scatter over the reversed k-ring schedule (slot 0), then
// allgather the reduced blocks (slot 1). The shared blockTracker makes
// every allgather access of a block wait for the straggling
// reduce-scatter ops still touching it.
func lowerAllreduceKRing(b *progBuilder, p, me int, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type, k int) error {
	tr := newBlockTracker()
	init := b.copyOp([]Move{{Dst: recvbuf, Src: sendbuf}})
	for blk := 0; blk < p; blk++ {
		tr.noteWrite(blk, init)
	}
	if p == 1 {
		return nil
	}
	s, err := core.KRingSchedule(p, k)
	if err != nil {
		return err
	}
	layout := core.FairLayoutAligned(len(sendbuf), p, dt.Size())
	lowerSchedReduceScatter(b, tr, s, me, recvbuf, layout, op, dt, 0)
	lowerSchedAllgather(b, tr, s, me, recvbuf, layout, 1)
	return nil
}

// lowerReduceScatterKRing mirrors ReduceScatterKRing: reduce-scatter over
// scratch (slot 0), then copy the caller's aligned fair block out.
func lowerReduceScatterKRing(b *progBuilder, p, me int, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type, k int) error {
	n := len(sendbuf)
	layout := core.FairLayoutAligned(n, p, dt.Size())
	off, sz := layout(me)
	tr := newBlockTracker()
	work := b.scratchBuf(n)
	init := b.copyOp([]Move{{Dst: work, Src: sendbuf}})
	for blk := 0; blk < p; blk++ {
		tr.noteWrite(blk, init)
	}
	if p > 1 {
		s, err := core.KRingSchedule(p, k)
		if err != nil {
			return err
		}
		lowerSchedReduceScatter(b, tr, s, me, work, layout, op, dt, 0)
	}
	b.copyOp([]Move{{Dst: recvbuf, Src: work[off : off+sz]}}, tr.readDeps(me)...)
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
