package nbc_test

import (
	"bytes"
	"fmt"
	"testing"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/nbc"
	"exacoll/internal/transport/mem"
)

// TestUserTrafficNeverCrossMatches is the tag-space audit regression: a
// user point-to-point message at TagUser posted BEFORE a collective and
// received AFTER it must come through byte-exact, and the collectives run
// across it must still be correct — i.e. application traffic, blocking
// collectives (TagCollBase range), and nonblocking collectives (TagNBCBase
// epoch windows) never cross-match even while all three are in flight.
func TestUserTrafficNeverCrossMatches(t *testing.T) {
	const p, elems = 4, 16
	tab := pinnedTable(core.OpAllreduce, "allreduce_kring", 2)

	want := runBlocking(t, tab, core.OpAllreduce, p, elems, 0, false)
	want2 := make([][]byte, p)
	{
		w := mem.NewWorld(p)
		if err := w.Run(func(c comm.Comm) error {
			a, res := buildCollArgs(core.OpAllreduce, c.Rank()+p, p, elems, 0, false)
			if err := tab.Run(c, core.OpAllreduce, a); err != nil {
				return err
			}
			want2[c.Rank()] = res
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		w.Close()
	}

	got := make([][]byte, p)
	got2 := make([][]byte, p)
	w := mem.NewWorld(p)
	defer w.Close()
	err := w.Run(func(c comm.Comm) error {
		me := c.Rank()
		next, prev := (me+1)%p, (me+p-1)%p

		// User message in flight across everything below.
		userOut := []byte{0xA0, byte(me), 0xC0, 0xD0}
		sreq, err := c.Isend(next, comm.TagUser, userOut)
		if err != nil {
			return err
		}

		// A nonblocking collective outstanding...
		a, res := buildCollArgs(core.OpAllreduce, me, p, elems, 0, false)
		prog, err := nbc.Compile(c, tab, core.OpAllreduce, a)
		if err != nil {
			return err
		}
		req, err := nbc.NewEngine(c).Start(prog)
		if err != nil {
			return err
		}
		// ... a blocking collective running to completion across it ...
		a2, res2 := buildCollArgs(core.OpAllreduce, me+p, p, elems, 0, false)
		if err := tab.Run(c, core.OpAllreduce, a2); err != nil {
			return err
		}
		if err := req.Wait(); err != nil {
			return err
		}
		if err := sreq.Wait(); err != nil {
			return err
		}

		// ... and the user message arrives intact afterwards.
		userIn := make([]byte, len(userOut))
		if _, err := c.Recv(prev, comm.TagUser, userIn); err != nil {
			return err
		}
		if want := []byte{0xA0, byte(prev), 0xC0, 0xD0}; !bytes.Equal(userIn, want) {
			return fmt.Errorf("rank %d: user message %x, want %x (cross-matched with collective traffic)", me, userIn, want)
		}
		got[me], got2[me] = res, res2
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		if !bytes.Equal(got[r], want[r]) {
			t.Errorf("rank %d: nonblocking allreduce corrupted by concurrent user/blocking traffic", r)
		}
		if !bytes.Equal(got2[r], want2[r]) {
			t.Errorf("rank %d: blocking allreduce corrupted by concurrent user/nonblocking traffic", r)
		}
	}
}
