package nbc

import (
	"errors"
	"fmt"
	"testing"

	"exacoll/internal/comm"
)

// fakeComm is a scripted single-rank communicator for white-box engine
// tests: the engine drives rank 0, and the test plays every peer by
// injecting messages. Sends complete eagerly and are logged in posting
// order; receives match injected messages in FIFO order per (peer, tag).
type fakeComm struct {
	size int
	// inbox holds injected not-yet-matched messages per matching stream.
	inbox map[fakeKey][]fakeMsg
	// sent logs posted sends in issue order — the engine's per-key
	// ordering assertions read this.
	sent []fakeSent
	// tested requests that don't implement comm.Tester force the engine
	// onto its canonical blocking fallback.
	noTester bool
}

type fakeKey struct {
	peer int
	tag  comm.Tag
}

type fakeMsg struct {
	data []byte
	err  error
}

type fakeSent struct {
	peer int
	tag  comm.Tag
	data []byte
}

func newFakeComm() *fakeComm {
	return &fakeComm{size: 2, inbox: map[fakeKey][]fakeMsg{}}
}

// inject queues a message from peer on tag for a future receive.
func (f *fakeComm) inject(peer int, tag comm.Tag, data []byte) {
	k := fakeKey{peer, tag}
	f.inbox[k] = append(f.inbox[k], fakeMsg{data: data})
}

// injectErr queues a failed delivery: the matching receive completes with err.
func (f *fakeComm) injectErr(peer int, tag comm.Tag, err error) {
	k := fakeKey{peer, tag}
	f.inbox[k] = append(f.inbox[k], fakeMsg{err: err})
}

func (f *fakeComm) Rank() int { return 0 }
func (f *fakeComm) Size() int { return f.size }

func (f *fakeComm) Send(to int, tag comm.Tag, buf []byte) error {
	f.sent = append(f.sent, fakeSent{to, tag, append([]byte(nil), buf...)})
	return nil
}

func (f *fakeComm) Recv(from int, tag comm.Tag, buf []byte) (int, error) {
	req, err := f.Irecv(from, tag, buf)
	if err != nil {
		return 0, err
	}
	if err := req.Wait(); err != nil {
		return 0, err
	}
	return req.Len(), nil
}

func (f *fakeComm) Isend(to int, tag comm.Tag, buf []byte) (comm.Request, error) {
	if err := f.Send(to, tag, buf); err != nil {
		return nil, err
	}
	r := &fakeReq{done: true, n: len(buf)}
	if f.noTester {
		return noTesterReq{r}, nil
	}
	return r, nil
}

func (f *fakeComm) Irecv(from int, tag comm.Tag, buf []byte) (comm.Request, error) {
	r := &fakeReq{c: f, key: fakeKey{from, tag}, buf: buf}
	if f.noTester {
		return noTesterReq{r}, nil
	}
	return r, nil
}

func (f *fakeComm) ChargeCompute(int) {}

// fakeReq resolves lazily: a receive completes when a matching message
// has been injected by the time Test or Wait runs.
type fakeReq struct {
	c    *fakeComm
	key  fakeKey
	buf  []byte
	done bool
	err  error
	n    int
}

func (r *fakeReq) resolve() {
	if r.done {
		return
	}
	q := r.c.inbox[r.key]
	if len(q) == 0 {
		return
	}
	m := q[0]
	r.c.inbox[r.key] = q[1:]
	r.done = true
	if m.err != nil {
		r.err = m.err
		return
	}
	r.n = copy(r.buf, m.data)
}

func (r *fakeReq) Test() (bool, error) {
	r.resolve()
	return r.done, r.err
}

func (r *fakeReq) Wait() error {
	r.resolve()
	if !r.done {
		// A Wait with no injected message would block forever; surface it
		// as an error so a mis-scheduled test fails instead of hanging.
		r.done = true
		r.err = errors.New("fakeComm: Wait would block (no message injected)")
	}
	return r.err
}

func (r *fakeReq) Len() int { return r.n }

// noTesterReq strips the Tester interface, modeling a third-party
// transport that only supports blocking Wait.
type noTesterReq struct{ r *fakeReq }

func (n noTesterReq) Wait() error { return n.r.Wait() }
func (n noTesterReq) Len() int    { return n.r.Len() }

// absTag computes the tag the engine should use for (epoch, slot).
func absTag(epoch uint64, slot int) comm.Tag {
	return comm.TagNBCBase + comm.Tag((epoch%comm.NBCTagEpochs)*comm.NBCTagStride) + comm.Tag(slot)
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		prog Program
	}{
		{"forward dep", Program{Ops: []Op{
			{Kind: OpCopy, Deps: []int{1}},
			{Kind: OpCopy},
		}}},
		{"self dep", Program{Ops: []Op{{Kind: OpCopy, Deps: []int{0}}}}},
		{"negative dep", Program{Ops: []Op{{Kind: OpCopy, Deps: []int{-1}}}}},
		{"tag slot too large", Program{Ops: []Op{
			{Kind: OpSend, Peer: 1, TagSlot: comm.NBCTagStride},
		}}},
		{"negative tag slot", Program{Ops: []Op{
			{Kind: OpRecv, Peer: 1, TagSlot: -1},
		}}},
		{"moves on comm op", Program{Ops: []Op{
			{Kind: OpSend, Peer: 1, Moves: []Move{{Dst: make([]byte, 1), Src: make([]byte, 1)}}},
		}}},
		{"move length mismatch", Program{Ops: []Op{
			{Kind: OpCopy, Moves: []Move{{Dst: make([]byte, 2), Src: make([]byte, 3)}}},
		}}},
		{"unknown kind", Program{Ops: []Op{{Kind: OpKind(9)}}}},
	}
	for _, tc := range cases {
		if err := tc.prog.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid program", tc.name)
		}
	}
}

// TestPerKeyIssueOrder checks the FIFO-preservation rule: a later send on
// the same (peer, tag) stream must not be posted while an earlier one is
// still held back by an unmet dependency, even though the later one has
// no dependencies of its own.
func TestPerKeyIssueOrder(t *testing.T) {
	fc := newFakeComm()
	eng := NewEngine(fc)

	first := []byte{1}
	second := []byte{2}
	prog := &Program{OpName: "test", Alg: "test", Ops: []Op{
		{Kind: OpRecv, Peer: 1, TagSlot: 0, Buf: make([]byte, 1)},
		{Kind: OpSend, Peer: 1, TagSlot: 0, Buf: first, Deps: []int{0}},
		{Kind: OpSend, Peer: 1, TagSlot: 0, Buf: second},
	}}
	req, err := eng.Start(prog)
	if err != nil {
		t.Fatal(err)
	}
	// The recv has no message yet: send #1 is dep-blocked, so send #2
	// (same key) must be held back too.
	if len(fc.sent) != 0 {
		t.Fatalf("posted %d sends while the earlier same-key send was blocked", len(fc.sent))
	}
	fc.inject(1, absTag(0, 0), []byte{9})
	if err := req.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(fc.sent) != 2 || fc.sent[0].data[0] != 1 || fc.sent[1].data[0] != 2 {
		t.Fatalf("sends posted out of program order: %+v", fc.sent)
	}
}

// TestIndependentKeysNotBlocked is the counterpart: a send on a different
// tag slot is not held back by another key's blocked op.
func TestIndependentKeysNotBlocked(t *testing.T) {
	fc := newFakeComm()
	eng := NewEngine(fc)
	prog := &Program{OpName: "test", Alg: "test", Ops: []Op{
		{Kind: OpRecv, Peer: 1, TagSlot: 0, Buf: make([]byte, 1)},
		{Kind: OpSend, Peer: 1, TagSlot: 0, Buf: []byte{1}, Deps: []int{0}},
		{Kind: OpSend, Peer: 1, TagSlot: 1, Buf: []byte{2}},
	}}
	req, err := eng.Start(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc.sent) != 1 || fc.sent[0].tag != absTag(0, 1) {
		t.Fatalf("independent-key send not posted immediately: %+v", fc.sent)
	}
	fc.inject(1, absTag(0, 0), []byte{9})
	if err := req.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestTagEpochAssignment checks that consecutive Starts get consecutive
// disjoint tag windows and the absolute tags offset by slot.
func TestTagEpochAssignment(t *testing.T) {
	fc := newFakeComm()
	eng := NewEngine(fc)

	mkProg := func(slot int) *Program {
		return &Program{OpName: "test", Alg: "test", Ops: []Op{
			{Kind: OpSend, Peer: 1, TagSlot: slot, Buf: []byte{0}},
		}}
	}
	for epoch, slot := range []int{0, 3, 15} {
		req, err := eng.Start(mkProg(slot))
		if err != nil {
			t.Fatal(err)
		}
		if err := req.Wait(); err != nil {
			t.Fatal(err)
		}
		want := absTag(uint64(epoch), slot)
		if got := fc.sent[epoch].tag; got != want {
			t.Fatalf("epoch %d slot %d: posted tag %d, want %d", epoch, slot, got, want)
		}
	}
}

// TestEpochWraparound floods the epoch counter: once nextEpoch laps the
// oldest in-flight request by NBCTagEpochs, Start must force-complete it
// before its tag window is reused.
func TestEpochWraparound(t *testing.T) {
	fc := newFakeComm()
	eng := NewEngine(fc)

	old, err := eng.Start(&Program{OpName: "test", Alg: "test", Ops: []Op{
		{Kind: OpRecv, Peer: 1, TagSlot: 0, Buf: make([]byte, 1)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Empty programs complete at Start but still consume an epoch each.
	for i := uint64(1); i < comm.NBCTagEpochs; i++ {
		if _, err := eng.Start(&Program{OpName: "test", Alg: "test"}); err != nil {
			t.Fatal(err)
		}
	}
	if old.done {
		t.Fatal("old request completed with no message injected")
	}
	// The next Start reuses epoch 0's window; the injected message lets
	// the guard's forced wait drain the old request instead of hanging.
	fc.inject(1, absTag(0, 0), []byte{7})
	req, err := eng.Start(&Program{OpName: "test", Alg: "test", Ops: []Op{
		{Kind: OpSend, Peer: 1, TagSlot: 0, Buf: []byte{1}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !old.done {
		t.Fatal("wraparound Start did not force-complete the oldest request")
	}
	if err := old.Wait(); err != nil {
		t.Fatalf("old request: %v", err)
	}
	if err := req.Wait(); err != nil {
		t.Fatal(err)
	}
	if req.epoch != comm.NBCTagEpochs || req.base != absTag(comm.NBCTagEpochs, 0) {
		t.Fatalf("wrapped request epoch %d base %d", req.epoch, req.base)
	}
}

// TestTransportErrorSurfacesInWait checks that an injected delivery error
// terminates the request and comes back from Wait (and from later Waits,
// idempotently), never as a panic or a hang.
func TestTransportErrorSurfacesInWait(t *testing.T) {
	boom := fmt.Errorf("link down")
	fc := newFakeComm()
	eng := NewEngine(fc)
	prog := &Program{OpName: "test", Alg: "test", Ops: []Op{
		{Kind: OpRecv, Peer: 1, TagSlot: 0, Buf: make([]byte, 1)},
		{Kind: OpSend, Peer: 1, TagSlot: 1, Buf: []byte{1}, Deps: []int{0}},
	}}
	req, err := eng.Start(prog)
	if err != nil {
		t.Fatal(err)
	}
	fc.injectErr(1, absTag(0, 0), boom)
	if err := req.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait returned %v, want %v", err, boom)
	}
	if err := req.Wait(); !errors.Is(err, boom) {
		t.Fatalf("second Wait returned %v, want %v", err, boom)
	}
	if len(eng.inflight) != 0 {
		t.Fatal("failed request still in flight")
	}
}

// TestMidDAGFailureIsolated: an op failure mid-DAG terminates its request
// without issuing the failed op's dependents, repeated Wait and Test
// return the same terminal status, and a concurrent request on the same
// engine completes untouched.
func TestMidDAGFailureIsolated(t *testing.T) {
	boom := fmt.Errorf("link down mid-DAG")
	fc := newFakeComm()
	eng := NewEngine(fc)

	bad, err := eng.Start(&Program{OpName: "bad", Alg: "test", Ops: []Op{
		{Kind: OpRecv, Peer: 1, TagSlot: 0, Buf: make([]byte, 1)},
		{Kind: OpSend, Peer: 1, TagSlot: 1, Buf: []byte{1}, Deps: []int{0}},
		{Kind: OpSend, Peer: 1, TagSlot: 2, Buf: []byte{2}, Deps: []int{1}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	good, err := eng.Start(&Program{OpName: "good", Alg: "test", Ops: []Op{
		{Kind: OpRecv, Peer: 1, TagSlot: 0, Buf: buf},
		{Kind: OpSend, Peer: 1, TagSlot: 1, Buf: buf, Deps: []int{0}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	fc.injectErr(1, absTag(0, 0), boom)
	fc.inject(1, absTag(1, 0), []byte{42})

	// Driving the healthy request also retires the poisoned one; the
	// failure must not leak across requests.
	if err := good.Wait(); err != nil {
		t.Fatalf("concurrent request failed: %v", err)
	}
	// Exactly one send posted: the healthy echo. The failed op's dependent
	// chain (slots 1 and 2 of epoch 0) must never have issued.
	if len(fc.sent) != 1 || fc.sent[0].tag != absTag(1, 1) || fc.sent[0].data[0] != 42 {
		t.Fatalf("sends after mid-DAG failure: %+v, want only the healthy echo", fc.sent)
	}
	for i := 0; i < 3; i++ {
		if err := bad.Wait(); !errors.Is(err, boom) {
			t.Fatalf("Wait #%d returned %v, want %v", i, err, boom)
		}
		fin, terr := bad.Test()
		if !fin || !errors.Is(terr, boom) {
			t.Fatalf("Test #%d = (%v, %v), want (true, %v)", i, fin, terr, boom)
		}
	}
	if len(eng.inflight) != 0 {
		t.Fatalf("%d requests still in flight after failure", len(eng.inflight))
	}
}

// TestWaitFallbackWithoutTester drives a request whose transport does not
// implement comm.Tester: the engine must degrade to blocking on the
// oldest issued op instead of spinning or crashing.
func TestWaitFallbackWithoutTester(t *testing.T) {
	fc := newFakeComm()
	fc.noTester = true
	eng := NewEngine(fc)

	buf := make([]byte, 1)
	prog := &Program{OpName: "test", Alg: "test", Ops: []Op{
		{Kind: OpRecv, Peer: 1, TagSlot: 0, Buf: buf},
		{Kind: OpSend, Peer: 1, TagSlot: 0, Buf: buf, Deps: []int{0}},
	}}
	fc.inject(1, absTag(0, 0), []byte{42})
	req, err := eng.Start(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := req.Wait(); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 42 || len(fc.sent) != 1 || fc.sent[0].data[0] != 42 {
		t.Fatalf("echo through blocking fallback failed: buf=%v sent=%+v", buf, fc.sent)
	}
}

// TestTestDoesNotBlock: Test on an unsatisfiable request reports not-done
// without blocking or erroring.
func TestTestDoesNotBlock(t *testing.T) {
	fc := newFakeComm()
	eng := NewEngine(fc)
	req, err := eng.Start(&Program{OpName: "test", Alg: "test", Ops: []Op{
		{Kind: OpRecv, Peer: 1, TagSlot: 0, Buf: make([]byte, 1)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		done, err := req.Test()
		if done || err != nil {
			t.Fatalf("Test on pending request: done=%v err=%v", done, err)
		}
	}
	fc.inject(1, absTag(0, 0), []byte{1})
	done, err := req.Test()
	if !done || err != nil {
		t.Fatalf("Test after injection: done=%v err=%v", done, err)
	}
}

// TestStalledScheduleSurfaces: a request with an op whose dependency can
// never run (its peer op is missing) must fail with errStalled rather
// than hang. The only way to build one past Validate is a comm op that
// depends on an issued-but-never-completable op while nothing else is in
// flight — here, a lone recv driven by a Wait after the engine's blocking
// fallback consumed it with an error.
func TestStalledScheduleSurfaces(t *testing.T) {
	fc := newFakeComm()
	eng := NewEngine(fc)
	// A recv with no message and no Tester fallback: Wait resolves it as a
	// would-block error, which must surface, not stall.
	fc.noTester = true
	req, err := eng.Start(&Program{OpName: "test", Alg: "test", Ops: []Op{
		{Kind: OpRecv, Peer: 1, TagSlot: 0, Buf: make([]byte, 1)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := req.Wait(); err == nil {
		t.Fatal("Wait succeeded on an unsatisfiable receive")
	}
}

// TestWaitAll joins errors across requests.
func TestWaitAll(t *testing.T) {
	boom := fmt.Errorf("injected")
	fc := newFakeComm()
	eng := NewEngine(fc)
	ok, err := eng.Start(&Program{OpName: "test", Alg: "test", Ops: []Op{
		{Kind: OpSend, Peer: 1, TagSlot: 0, Buf: []byte{1}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := eng.Start(&Program{OpName: "test", Alg: "test", Ops: []Op{
		{Kind: OpRecv, Peer: 1, TagSlot: 1, Buf: make([]byte, 1)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	fc.injectErr(1, absTag(1, 1), boom)
	if err := WaitAll(ok, nil, bad); !errors.Is(err, boom) {
		t.Fatalf("WaitAll returned %v, want %v", err, boom)
	}
}
