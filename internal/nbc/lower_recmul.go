package nbc

import (
	"exacoll/internal/core"
	"exacoll/internal/datatype"
)

// Recursive-multiplying lowerings, mirroring internal/core/recmul.go: in
// round i every slot exchanges with the other f_i−1 members of its group;
// non-k-smooth sizes fold the remainder ranks in a pre/post phase.
//
// Tag slots: the fold pre/post phases use slotFold; every multiplying
// round shares slotRounds. One slot suffices for all rounds because group
// partners never repeat across rounds: round i partners differ by
// j·w_i < w_{i+1} ≤ any later round's spacing, so each (peer, direction)
// pair occurs in exactly one round and FIFO order is trivially per-round.
// The fold traffic is directionally distinct from the rounds (even↔odd
// neighbor pairs only) and keeps its own slot anyway.

// lowerAllreduceRecMul mirrors AllreduceRecMul: full-vector group
// exchanges with the combine chain in ascending-member order each round.
// The accumulator ops form a linear chain (last), exactly like the
// blocking body's sequential statements.
func lowerAllreduceRecMul(b *progBuilder, p, me int, sendbuf, recvbuf []byte, op datatype.Op, dt datatype.Type, k, slotFold, slotRounds int) {
	last := b.copyOp([]Move{{Dst: recvbuf, Src: sendbuf}})
	if p == 1 {
		return
	}
	st := core.NewRecMulStructure(p, k)
	rem := st.Rem()

	// Fold pre-phase.
	newrank := -1
	switch {
	case me < 2*rem && me%2 == 0:
		last = b.send(me+1, slotFold, recvbuf, last)
	case me < 2*rem:
		tmp := b.scratchBuf(len(sendbuf))
		got := b.recv(me-1, slotFold, tmp)
		last = b.reduce(op, dt, recvbuf, tmp, got, last)
		newrank = me / 2
	default:
		newrank = me - rem
	}

	if newrank >= 0 {
		for round := 0; round < st.Rounds(); round++ {
			members := st.GroupMembers(newrank, round)
			// Snapshot the accumulator so the sends read a stable buffer
			// while this round's reduces run.
			outgoing := b.scratchBuf(len(recvbuf))
			snap := b.copyOp([]Move{{Dst: outgoing, Src: recvbuf}}, last)
			recvs := make([]int, 0, len(members)-1)
			incoming := make([][]byte, 0, len(members)-1)
			for _, m := range members {
				if m == newrank {
					continue
				}
				buf := b.scratchBuf(len(recvbuf))
				incoming = append(incoming, buf)
				recvs = append(recvs, b.recv(st.Real(m), slotRounds, buf))
			}
			for _, m := range members {
				if m == newrank {
					continue
				}
				b.send(st.Real(m), slotRounds, outgoing, snap)
			}
			last = snap
			for i, got := range recvs {
				last = b.reduce(op, dt, recvbuf, incoming[i], got, last)
			}
		}
	}

	// Fold post-phase: proxies return the final result.
	switch {
	case me < 2*rem && me%2 == 0:
		b.recv(me+1, slotFold, recvbuf, last)
	case me < 2*rem:
		b.send(me-1, slotFold, recvbuf, last)
	}
}

// lowerRecMulAllgather mirrors recmulAllgatherLayout over blocks keyed by
// absolute rank: fold, log_k rounds of packed group exchanges, unfold.
// tr carries buf's block hazards from any preceding phase (the fair
// scatter of bcast).
func lowerRecMulAllgather(b *progBuilder, tr *blockTracker, p, me int, buf []byte, layout core.BlockLayout, k, slotFold, slotRounds int) {
	if p == 1 {
		return
	}
	st := core.NewRecMulStructure(p, k)
	rem := st.Rem()

	// Fold pre-phase: even ranks below 2·rem hand their block to the next
	// (odd) rank, which acts as their proxy slot.
	newrank := -1
	switch {
	case me < 2*rem && me%2 == 0:
		off, sz := layout(me)
		idx := b.send(me+1, slotFold, buf[off:off+sz], tr.readDeps(me)...)
		tr.noteRead(me, idx)
	case me < 2*rem:
		off, sz := layout(me - 1)
		idx := b.recv(me-1, slotFold, buf[off:off+sz], tr.writeDeps(me-1)...)
		tr.noteWrite(me-1, idx)
		newrank = me / 2
	default:
		newrank = me - rem
	}

	if newrank >= 0 {
		for round := 0; round < st.Rounds(); round++ {
			members := st.GroupMembers(newrank, round)
			myBlocks := st.OwnedBlocks(newrank, round)
			// Pack owned blocks into a per-round outgoing message.
			size := 0
			for _, blk := range myBlocks {
				_, sz := layout(blk)
				size += sz
			}
			outgoing := b.scratchBuf(size)
			moves := make([]Move, 0, len(myBlocks))
			var packDeps []int
			pos := 0
			for _, blk := range myBlocks {
				off, sz := layout(blk)
				moves = append(moves, Move{Dst: outgoing[pos : pos+sz], Src: buf[off : off+sz]})
				packDeps = append(packDeps, tr.readDeps(blk)...)
				pos += sz
			}
			packed := b.copyOp(moves, packDeps...)
			for _, blk := range myBlocks {
				tr.noteRead(blk, packed)
			}

			type rx struct {
				blocks []int
				got    int
				buf    []byte
			}
			rxs := make([]rx, 0, len(members)-1)
			for _, m := range members {
				if m == newrank {
					continue
				}
				blocks := st.OwnedBlocks(m, round)
				sz := 0
				for _, blk := range blocks {
					_, s := layout(blk)
					sz += s
				}
				staging := b.scratchBuf(sz)
				got := b.recv(st.Real(m), slotRounds, staging)
				rxs = append(rxs, rx{blocks: blocks, got: got, buf: staging})
			}
			for _, m := range members {
				if m == newrank {
					continue
				}
				b.send(st.Real(m), slotRounds, outgoing, packed)
			}
			for _, x := range rxs {
				unpack := make([]Move, 0, len(x.blocks))
				deps := []int{x.got}
				pos := 0
				for _, blk := range x.blocks {
					off, sz := layout(blk)
					unpack = append(unpack, Move{Dst: buf[off : off+sz], Src: x.buf[pos : pos+sz]})
					deps = append(deps, tr.writeDeps(blk)...)
					pos += sz
				}
				idx := b.copyOp(unpack, deps...)
				for _, blk := range x.blocks {
					tr.noteWrite(blk, idx)
				}
			}
		}
	}

	// Fold post-phase: proxies return the complete result (whole buffer).
	switch {
	case me < 2*rem && me%2 == 0:
		var deps []int
		for blk := 0; blk < p; blk++ {
			deps = append(deps, tr.writeDeps(blk)...)
		}
		idx := b.recv(me+1, slotFold, buf, deps...)
		for blk := 0; blk < p; blk++ {
			tr.noteWrite(blk, idx)
		}
	case me < 2*rem:
		var deps []int
		for blk := 0; blk < p; blk++ {
			deps = append(deps, tr.readDeps(blk)...)
		}
		idx := b.send(me-1, slotFold, buf, deps...)
		for blk := 0; blk < p; blk++ {
			tr.noteRead(blk, idx)
		}
	}
}

// lowerAllgatherRecMul mirrors AllgatherRecMul: own block into place, then
// the recursive-multiplying allgather (fold slot 0, rounds slot 1).
func lowerAllgatherRecMul(b *progBuilder, p, me int, sendbuf, recvbuf []byte, k int) {
	n := len(sendbuf)
	tr := newBlockTracker()
	own := b.copyOp([]Move{{Dst: recvbuf[me*n : (me+1)*n], Src: sendbuf}})
	tr.noteWrite(me, own)
	lowerRecMulAllgather(b, tr, p, me, recvbuf, core.UniformLayout(n), k, 0, 1)
}

// lowerBcastRecMul mirrors BcastRecMul: radix-k tree scatter of fair
// blocks (slot 0), then the recursive-multiplying allgather over them
// (fold slot 1, rounds slot 2).
func lowerBcastRecMul(b *progBuilder, p, me int, buf []byte, root, k int) {
	if p == 1 {
		return
	}
	tr := newBlockTracker()
	lowerScatterFairForBcast(b, tr, p, me, buf, root, k, 0)
	lowerRecMulAllgather(b, tr, p, me, buf, core.FairLayout(len(buf), p), k, 1, 2)
}
