package nbc_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/nbc"
	"exacoll/internal/transport/mem"
	"exacoll/internal/tuning"
)

// errPoison is the injected transport failure for the black-box error-path
// test below.
var errPoison = errors.New("errorpath: injected receive failure")

// recvFaultComm fails every completed receive whose tag falls in [lo, hi)
// — after the message has been consumed, the way a real transport reports
// a link error at completion time. Sends and out-of-window receives pass
// through untouched, so peers of the poisoned schedule are perturbed only
// by the ops the failed request never issues.
type recvFaultComm struct {
	comm.Comm
	lo, hi comm.Tag
}

func (f *recvFaultComm) hit(tag comm.Tag) bool { return tag >= f.lo && tag < f.hi }

func (f *recvFaultComm) Recv(from int, tag comm.Tag, buf []byte) (int, error) {
	n, err := f.Comm.Recv(from, tag, buf)
	if err == nil && f.hit(tag) {
		return n, errPoison
	}
	return n, err
}

func (f *recvFaultComm) Irecv(from int, tag comm.Tag, buf []byte) (comm.Request, error) {
	req, err := f.Comm.Irecv(from, tag, buf)
	if err != nil || !f.hit(tag) {
		return req, err
	}
	return &poisonReq{Request: req}, nil
}

// poisonReq resolves the inner receive and then reports errPoison,
// memoizing the terminal status so Wait and Test stay idempotent.
type poisonReq struct {
	comm.Request
	done bool
	err  error
}

func (r *poisonReq) settle(err error) error {
	if err == nil {
		err = errPoison
	}
	r.done, r.err = true, err
	return err
}

func (r *poisonReq) Wait() error {
	if r.done {
		return r.err
	}
	return r.settle(r.Request.Wait())
}

func (r *poisonReq) Test() (bool, error) {
	if r.done {
		return true, r.err
	}
	done, err, ok := comm.TryTest(r.Request)
	if !ok || !done {
		return false, nil
	}
	return true, r.settle(err)
}

// TestFailedRequestDoesNotPoisonEngine is the black-box error-path check
// over a real substrate: on a 4-rank mem world, rank 1's receives fail for
// the first collective's tag epoch only. Three allreduces are issued on
// one engine per rank (MPI-3 issue order): the poisoned one, a concurrent
// healthy one, and — after the failure has surfaced — a third on the same
// engine. The concurrent collective must complete bit-identical to its
// blocking reference on every rank while the poisoned request fails on
// rank 1 with the injected error (idempotently across Wait and Test), and
// the third collective must prove the engine outlives the failure.
func TestFailedRequestDoesNotPoisonEngine(t *testing.T) {
	const p, elems, victim = 4, 17, 1
	tab := pinnedTable(core.OpAllreduce, "allreduce_recmul", 2)

	// Blocking references for the two healthy payload sets (seeds r+p and
	// r+2p; the poisoned collective's seed r is never checked).
	want1 := runBlockingSeeded(t, tab, p, elems, p)
	want2 := runBlockingSeeded(t, tab, p, elems, 2*p)

	got1 := make([][]byte, p)
	got2 := make([][]byte, p)
	req0Errs := make([]error, p)

	w := mem.NewWorld(p)
	defer w.Close()
	done := make(chan []error, 1)
	go func() {
		done <- w.RunAll(func(c comm.Comm) error {
			// The deadline exists only to resolve the poisoned request's
			// dangling receives; it is lifted again before the healthy
			// post-failure collective, whose ranks reach it with up to one
			// deadline of mutual skew (the outer watchdog still bounds a
			// genuine hang there).
			c.(comm.Deadliner).SetOpTimeout(time.Second)
			ec := c
			if c.Rank() == victim {
				ec = &recvFaultComm{
					Comm: c,
					lo:   comm.TagNBCBase,
					hi:   comm.TagNBCBase + comm.NBCTagStride,
				}
			}
			eng := nbc.NewEngine(ec)

			start := func(seed int) (*nbc.Request, []byte, error) {
				a, out := buildCollArgs(core.OpAllreduce, c.Rank()+seed, p, elems, 0, false)
				prog, err := nbc.Compile(ec, tab, core.OpAllreduce, a)
				if err != nil {
					return nil, nil, err
				}
				req, err := eng.Start(prog)
				return req, out, err
			}

			req0, _, err := start(0)
			if err != nil {
				return fmt.Errorf("start poisoned: %w", err)
			}
			req1, out1, err := start(p)
			if err != nil {
				return fmt.Errorf("start concurrent: %w", err)
			}

			// Drive the healthy collective with Test polls: progress passes
			// never block, so the poisoned request's dangling receives
			// cannot stall it.
			for {
				fin, err := req1.Test()
				if err != nil {
					return fmt.Errorf("concurrent collective: %w", err)
				}
				if fin {
					break
				}
			}
			got1[c.Rank()] = out1

			// Now resolve the poisoned request. On the victim it already
			// failed with the injection; elsewhere it either completed
			// before the victim aborted or times out on a receive the
			// victim never served.
			err0 := req0.Wait()
			req0Errs[c.Rank()] = err0
			if again := req0.Wait(); !errors.Is(again, err0) && again != err0 {
				return fmt.Errorf("Wait not idempotent: %v then %v", err0, again)
			}
			fin, terr := req0.Test()
			if !fin {
				return fmt.Errorf("Test reports not-done after Wait returned")
			}
			if !errors.Is(terr, err0) && terr != err0 {
				return fmt.Errorf("Test status %v differs from Wait status %v", terr, err0)
			}

			// The engine must outlive the failure: a third collective on
			// the same engine completes correctly. Receives posted from
			// here on are unbounded — the poisoned request is fully
			// resolved, so nothing left can stall.
			c.(comm.Deadliner).SetOpTimeout(0)
			req2, out2, err := start(2 * p)
			if err != nil {
				return fmt.Errorf("start post-failure: %w", err)
			}
			if err := req2.Wait(); err != nil {
				return fmt.Errorf("post-failure collective: %w", err)
			}
			got2[c.Rank()] = out2
			return nil
		})
	}()
	select {
	case errs := <-done:
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d: %v", r, err)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatal("error-path run hung")
	}

	if err := req0Errs[victim]; !errors.Is(err, errPoison) {
		t.Errorf("victim's poisoned request returned %v, want errPoison", err)
	}
	for r := 0; r < p; r++ {
		if r == victim {
			continue
		}
		if err := req0Errs[r]; err != nil && !errors.Is(err, comm.ErrTimeout) {
			t.Errorf("rank %d poisoned request: %v, want nil or ErrTimeout", r, err)
		}
	}
	for r := 0; r < p; r++ {
		if !bytes.Equal(got1[r], want1[r]) {
			t.Errorf("rank %d: concurrent collective differs from blocking reference", r)
		}
		if !bytes.Equal(got2[r], want2[r]) {
			t.Errorf("rank %d: post-failure collective differs from blocking reference", r)
		}
	}
}

// runBlockingSeeded runs the pinned blocking allreduce with payload seed
// rank+seed on a fresh mem world and returns every rank's result.
func runBlockingSeeded(t *testing.T, tab *tuning.Table, p, elems, seed int) [][]byte {
	t.Helper()
	out := make([][]byte, p)
	w := mem.NewWorld(p)
	defer w.Close()
	if err := w.Run(func(c comm.Comm) error {
		a, res := buildCollArgs(core.OpAllreduce, c.Rank()+seed, p, elems, 0, false)
		if err := tab.Run(c, core.OpAllreduce, a); err != nil {
			return err
		}
		out[c.Rank()] = res
		return nil
	}); err != nil {
		t.Fatalf("blocking reference (seed %d): %v", seed, err)
	}
	return out
}
