package nbc_test

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
	"exacoll/internal/machine"
	"exacoll/internal/nbc"
	"exacoll/internal/simnet"
	"exacoll/internal/transport/mem"
	"exacoll/internal/transport/tcp"
	"exacoll/internal/tuning"
)

// pinnedTable returns a one-rung table that always selects (alg, k), so a
// blocking tab.Run and a nonblocking Compile make the identical choice.
func pinnedTable(op core.CollOp, alg string, k int) *tuning.Table {
	return &tuning.Table{Machine: "test", Ops: map[string][]tuning.Entry{
		op.String(): {{Alg: alg, K: k}},
	}}
}

// messyVector is rank r's float64 contribution with rounding-sensitive
// values: summing in a different order produces different bits, so the
// bit-identity comparison below really checks the combine order.
func messyVector(r, elems int) []byte {
	v := make([]float64, elems)
	for i := range v {
		v[i] = 0.1*float64(r+1) + 0.3*float64(i) + float64(i%7)/3.0
	}
	return datatype.EncodeFloat64(v)
}

// intVector is rank r's int64 contribution for lowerings that are only
// order-equivalent (integer sums are exact under any association).
func intVector(r, elems int) []byte {
	v := make([]int64, elems)
	for i := range v {
		v[i] = int64(r+1)*1000 + int64(i) - 37
	}
	return datatype.EncodeInt64(v)
}

// collCase describes one (op, algorithm) conformance case.
type collCase struct {
	op       core.CollOp
	alg      string
	k        int
	pow2Only bool
	// ints selects int64 payloads: the lowering maps this algorithm to a
	// different communication structure, so floating-point results are
	// only reassociation-equivalent, not bit-identical.
	ints bool
}

var collCases = []collCase{
	// Bcast (any correct lowering is byte-identical).
	{op: core.OpBcast, alg: "bcast_knomial", k: 2},
	{op: core.OpBcast, alg: "bcast_knomial", k: 3},
	{op: core.OpBcast, alg: "bcast_knomial", k: 4},
	{op: core.OpBcast, alg: "bcast_binomial"},
	{op: core.OpBcast, alg: "bcast_linear"},
	{op: core.OpBcast, alg: "bcast_recmul", k: 2},
	{op: core.OpBcast, alg: "bcast_recmul", k: 3},
	{op: core.OpBcast, alg: "bcast_recdbl", pow2Only: true},
	{op: core.OpBcast, alg: "bcast_kring", k: 1},
	{op: core.OpBcast, alg: "bcast_kring", k: 2},
	{op: core.OpBcast, alg: "bcast_kring", k: 3},
	{op: core.OpBcast, alg: "bcast_ring"},

	// Reduce.
	{op: core.OpReduce, alg: "reduce_knomial", k: 2},
	{op: core.OpReduce, alg: "reduce_knomial", k: 3},
	{op: core.OpReduce, alg: "reduce_binomial"},
	{op: core.OpReduce, alg: "reduce_linear", ints: true},

	// Allgather (byte-identical regardless of lowering).
	{op: core.OpAllgather, alg: "allgather_knomial", k: 3},
	{op: core.OpAllgather, alg: "allgather_recmul", k: 2},
	{op: core.OpAllgather, alg: "allgather_recmul", k: 3},
	{op: core.OpAllgather, alg: "allgather_recdbl", pow2Only: true},
	{op: core.OpAllgather, alg: "allgather_kring", k: 2},
	{op: core.OpAllgather, alg: "allgather_ring"},
	{op: core.OpAllgather, alg: "allgather_bruck"},

	// Allreduce.
	{op: core.OpAllreduce, alg: "allreduce_knomial", k: 2},
	{op: core.OpAllreduce, alg: "allreduce_knomial", k: 3},
	{op: core.OpAllreduce, alg: "allreduce_recmul", k: 2},
	{op: core.OpAllreduce, alg: "allreduce_recmul", k: 3},
	// recursive doubling lowers to recursive multiplying at k=2, which is
	// the same exchange/fold/combine order — bit-identical even off pow2.
	{op: core.OpAllreduce, alg: "allreduce_recdbl"},
	{op: core.OpAllreduce, alg: "allreduce_kring", k: 2},
	{op: core.OpAllreduce, alg: "allreduce_kring", k: 3},
	{op: core.OpAllreduce, alg: "allreduce_ring", ints: true},
	{op: core.OpAllreduce, alg: "allreduce_rabenseifner", ints: true},
	{op: core.OpAllreduce, alg: "allreduce_linear", ints: true},

	// Reduce-scatter.
	{op: core.OpReduceScatter, alg: "reducescatter_kring", k: 2},
	{op: core.OpReduceScatter, alg: "reducescatter_kring", k: 3},
	{op: core.OpReduceScatter, alg: "reducescatter_ring", ints: true},
	{op: core.OpReduceScatter, alg: "reducescatter_rechalving", pow2Only: true, ints: true},
}

// buildCollArgs returns rank's Args for (op, elems·8 bytes) plus the
// output buffer the collective's result lands in.
func buildCollArgs(op core.CollOp, rank, p, elems, root int, ints bool) (core.Args, []byte) {
	payload := messyVector
	dt := datatype.Float64
	if ints {
		payload = intVector
		dt = datatype.Int64
	}
	a := core.Args{Op: datatype.Sum, Type: dt, Root: root}
	n := elems * 8
	switch op {
	case core.OpBcast:
		a.SendBuf = make([]byte, n)
		if rank == root {
			copy(a.SendBuf, payload(root, elems))
		}
		return a, a.SendBuf
	case core.OpReduce:
		a.SendBuf = payload(rank, elems)
		if rank == root {
			a.RecvBuf = make([]byte, n)
		}
		return a, a.RecvBuf
	case core.OpAllgather:
		a.SendBuf = payload(rank, elems)
		a.RecvBuf = make([]byte, n*p)
		return a, a.RecvBuf
	case core.OpAllreduce:
		a.SendBuf = payload(rank, elems)
		a.RecvBuf = make([]byte, n)
		return a, a.RecvBuf
	case core.OpReduceScatter:
		a.SendBuf = payload(rank, elems)
		_, sz := core.FairLayoutAligned(n, p, dt.Size())(rank)
		a.RecvBuf = make([]byte, sz)
		return a, a.RecvBuf
	}
	panic("unhandled op")
}

func isPow2(p int) bool { return p > 0 && p&(p-1) == 0 }

// runBlocking runs the pinned blocking collective on a fresh mem world
// and returns every rank's output buffer.
func runBlocking(t *testing.T, tab *tuning.Table, op core.CollOp, p, elems, root int, ints bool) [][]byte {
	t.Helper()
	out := make([][]byte, p)
	w := mem.NewWorld(p)
	defer w.Close()
	err := w.Run(func(c comm.Comm) error {
		a, res := buildCollArgs(op, c.Rank(), p, elems, root, ints)
		if err := tab.Run(c, op, a); err != nil {
			return err
		}
		out[c.Rank()] = res
		return nil
	})
	if err != nil {
		t.Fatalf("blocking %s p=%d: %v", op, p, err)
	}
	return out
}

// runNonblocking compiles and runs the same collective through the nbc
// engine on a fresh mem world. useTest drives completion with Test polls
// instead of Wait.
func runNonblocking(t *testing.T, tab *tuning.Table, op core.CollOp, p, elems, root int, ints, useTest bool) [][]byte {
	t.Helper()
	out := make([][]byte, p)
	w := mem.NewWorld(p)
	defer w.Close()
	err := w.Run(func(c comm.Comm) error {
		a, res := buildCollArgs(op, c.Rank(), p, elems, root, ints)
		prog, err := nbc.Compile(c, tab, op, a)
		if err != nil {
			return err
		}
		req, err := nbc.NewEngine(c).Start(prog)
		if err != nil {
			return err
		}
		if useTest {
			for {
				done, err := req.Test()
				if err != nil {
					return err
				}
				if done {
					break
				}
			}
		} else if err := req.Wait(); err != nil {
			return err
		}
		out[c.Rank()] = res
		return nil
	})
	if err != nil {
		t.Fatalf("nonblocking %s p=%d: %v", op, p, err)
	}
	return out
}

// TestConformanceMem checks that I<op>+Wait produces bit-identical
// buffers to the blocking counterpart for every lowering, across odd,
// prime, and power-of-two communicator sizes and awkward payload sizes.
func TestConformanceMem(t *testing.T) {
	ps := []int{1, 2, 3, 5, 8}
	if testing.Short() {
		ps = []int{1, 3, 8}
	}
	for _, tc := range collCases {
		tc := tc
		t.Run(fmt.Sprintf("%s_k%d", tc.alg, tc.k), func(t *testing.T) {
			t.Parallel()
			tab := pinnedTable(tc.op, tc.alg, tc.k)
			for _, p := range ps {
				if tc.pow2Only && !isPow2(p) {
					continue
				}
				for _, elems := range []int{1, 33} {
					roots := []int{0}
					if (tc.op == core.OpBcast || tc.op == core.OpReduce) && p > 1 {
						roots = []int{0, p - 1}
					}
					for _, root := range roots {
						want := runBlocking(t, tab, tc.op, p, elems, root, tc.ints)
						got := runNonblocking(t, tab, tc.op, p, elems, root, tc.ints, false)
						for r := 0; r < p; r++ {
							if !bytes.Equal(want[r], got[r]) {
								t.Fatalf("p=%d elems=%d root=%d rank %d: nonblocking differs from blocking", p, elems, root, r)
							}
						}
					}
				}
			}
		})
	}
}

// TestConformanceTestDriven drives completion with Test polls (MPI_Test
// spinning) instead of Wait on a representative subset.
func TestConformanceTestDriven(t *testing.T) {
	for _, tc := range []collCase{
		{op: core.OpAllreduce, alg: "allreduce_kring", k: 2},
		{op: core.OpBcast, alg: "bcast_recmul", k: 3},
		{op: core.OpAllgather, alg: "allgather_knomial", k: 3},
	} {
		tab := pinnedTable(tc.op, tc.alg, tc.k)
		for _, p := range []int{3, 6} {
			want := runBlocking(t, tab, tc.op, p, 17, 0, tc.ints)
			got := runNonblocking(t, tab, tc.op, p, 17, 0, tc.ints, true)
			for r := 0; r < p; r++ {
				if !bytes.Equal(want[r], got[r]) {
					t.Fatalf("%s p=%d rank %d: Test-driven result differs", tc.alg, p, r)
				}
			}
		}
	}
}

// concurrentSpec is the fixed four-collective batch used by the
// concurrency tests: four different operations outstanding on one
// communicator at once (the acceptance bar is ≥ 3).
type concurrentSpec struct {
	tabs  map[core.CollOp]*tuning.Table
	elems int
	root  int
}

func newConcurrentSpec() concurrentSpec {
	return concurrentSpec{
		tabs: map[core.CollOp]*tuning.Table{
			core.OpAllreduce:     pinnedTable(core.OpAllreduce, "allreduce_kring", 2),
			core.OpBcast:         pinnedTable(core.OpBcast, "bcast_knomial", 3),
			core.OpAllgather:     pinnedTable(core.OpAllgather, "allgather_recmul", 3),
			core.OpReduceScatter: pinnedTable(core.OpReduceScatter, "reducescatter_kring", 3),
		},
		elems: 24,
		root:  1,
	}
}

// order fixes the issue order (identical on every rank, per MPI-3).
var concurrentOrder = []core.CollOp{core.OpAllreduce, core.OpBcast, core.OpAllgather, core.OpReduceScatter}

// runConcurrent runs the four collectives on c — blocking sequentially
// when eng is nil, otherwise all outstanding simultaneously with waits in
// reverse issue order — and returns the four result buffers.
func (s concurrentSpec) run(c comm.Comm, eng *nbc.Engine) (map[core.CollOp][]byte, error) {
	p := c.Size()
	root := s.root % p
	args := map[core.CollOp]core.Args{}
	res := map[core.CollOp][]byte{}
	for _, op := range concurrentOrder {
		a, out := buildCollArgs(op, c.Rank(), p, s.elems, root, false)
		args[op], res[op] = a, out
	}
	if eng == nil {
		for _, op := range concurrentOrder {
			if err := s.tabs[op].Run(c, op, args[op]); err != nil {
				return nil, err
			}
		}
		return res, nil
	}
	reqs := make([]*nbc.Request, 0, len(concurrentOrder))
	for _, op := range concurrentOrder {
		prog, err := nbc.Compile(c, s.tabs[op], op, args[op])
		if err != nil {
			return nil, err
		}
		req, err := eng.Start(prog)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, req)
	}
	// Wait in reverse issue order: completing the youngest first forces
	// the engine to drive all four schedules interleaved.
	for i := len(reqs) - 1; i >= 0; i-- {
		if err := reqs[i].Wait(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// TestConcurrentCollectives checks four collectives outstanding at once
// on one communicator against their blocking counterparts, bit for bit.
func TestConcurrentCollectives(t *testing.T) {
	for _, p := range []int{2, 3, 5, 8} {
		spec := newConcurrentSpec()
		want := make([]map[core.CollOp][]byte, p)
		w := mem.NewWorld(p)
		if err := w.Run(func(c comm.Comm) error {
			out, err := spec.run(c, nil)
			want[c.Rank()] = out
			return err
		}); err != nil {
			t.Fatalf("blocking batch p=%d: %v", p, err)
		}
		w.Close()

		got := make([]map[core.CollOp][]byte, p)
		w2 := mem.NewWorld(p)
		if err := w2.Run(func(c comm.Comm) error {
			out, err := spec.run(c, nbc.NewEngine(c))
			got[c.Rank()] = out
			return err
		}); err != nil {
			t.Fatalf("concurrent batch p=%d: %v", p, err)
		}
		w2.Close()

		for r := 0; r < p; r++ {
			for _, op := range concurrentOrder {
				if !bytes.Equal(want[r][op], got[r][op]) {
					t.Fatalf("p=%d rank %d %s: concurrent result differs from blocking", p, r, op)
				}
			}
		}
	}
}

// TestConcurrentSameOp keeps three allreduces with different payloads
// outstanding simultaneously, waited out of issue order, and checks each
// against its own blocking run — the tag-epoch separation test.
func TestConcurrentSameOp(t *testing.T) {
	const p, elems = 4, 19
	tab := pinnedTable(core.OpAllreduce, "allreduce_recmul", 2)
	const rounds = 3

	want := make([][][]byte, rounds)
	for i := range want {
		want[i] = make([][]byte, p)
	}
	w := mem.NewWorld(p)
	if err := w.Run(func(c comm.Comm) error {
		for i := 0; i < rounds; i++ {
			a, out := buildCollArgs(core.OpAllreduce, c.Rank()+i*p, p, elems, 0, false)
			if err := tab.Run(c, core.OpAllreduce, a); err != nil {
				return err
			}
			want[i][c.Rank()] = out
		}
		return nil
	}); err != nil {
		t.Fatalf("blocking: %v", err)
	}
	w.Close()

	got := make([][][]byte, rounds)
	for i := range got {
		got[i] = make([][]byte, p)
	}
	w2 := mem.NewWorld(p)
	if err := w2.Run(func(c comm.Comm) error {
		eng := nbc.NewEngine(c)
		reqs := make([]*nbc.Request, rounds)
		for i := 0; i < rounds; i++ {
			a, out := buildCollArgs(core.OpAllreduce, c.Rank()+i*p, p, elems, 0, false)
			prog, err := nbc.Compile(c, tab, core.OpAllreduce, a)
			if err != nil {
				return err
			}
			if reqs[i], err = eng.Start(prog); err != nil {
				return err
			}
			got[i][c.Rank()] = out
		}
		// Wait out of order: middle, first, last.
		for _, i := range []int{1, 0, 2} {
			if err := reqs[i].Wait(); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatalf("concurrent: %v", err)
	}
	w2.Close()

	for i := 0; i < rounds; i++ {
		for r := 0; r < p; r++ {
			if !bytes.Equal(want[i][r], got[i][r]) {
				t.Fatalf("allreduce #%d rank %d: result differs", i, r)
			}
		}
	}
}

// TestConformanceSimnet repeats the conformance check on the simulator:
// virtual time, one kernel action per rank, cooperative progress only.
func TestConformanceSimnet(t *testing.T) {
	cases := []collCase{
		{op: core.OpAllreduce, alg: "allreduce_kring", k: 2},
		{op: core.OpAllreduce, alg: "allreduce_recmul", k: 3},
		{op: core.OpBcast, alg: "bcast_kring", k: 2},
		{op: core.OpAllgather, alg: "allgather_recmul", k: 2},
		{op: core.OpReduceScatter, alg: "reducescatter_kring", k: 2},
	}
	for _, p := range []int{3, 8} {
		for _, tc := range cases {
			tab := pinnedTable(tc.op, tc.alg, tc.k)

			want := make([][]byte, p)
			sim, err := simnet.New(machine.Testbox(), p)
			if err != nil {
				t.Fatal(err)
			}
			if err := sim.Run(func(c comm.Comm) error {
				a, out := buildCollArgs(tc.op, c.Rank(), p, 16, 0, false)
				if err := tab.Run(c, tc.op, a); err != nil {
					return err
				}
				want[c.Rank()] = out
				return nil
			}); err != nil {
				t.Fatalf("%s p=%d blocking on simnet: %v", tc.alg, p, err)
			}

			got := make([][]byte, p)
			sim2, err := simnet.New(machine.Testbox(), p)
			if err != nil {
				t.Fatal(err)
			}
			if err := sim2.Run(func(c comm.Comm) error {
				a, out := buildCollArgs(tc.op, c.Rank(), p, 16, 0, false)
				prog, err := nbc.Compile(c, tab, tc.op, a)
				if err != nil {
					return err
				}
				req, err := nbc.NewEngine(c).Start(prog)
				if err != nil {
					return err
				}
				if err := req.Wait(); err != nil {
					return err
				}
				got[c.Rank()] = out
				return nil
			}); err != nil {
				t.Fatalf("%s p=%d nonblocking on simnet: %v", tc.alg, p, err)
			}
			for r := 0; r < p; r++ {
				if !bytes.Equal(want[r], got[r]) {
					t.Fatalf("%s p=%d rank %d: simnet nonblocking differs", tc.alg, p, r)
				}
			}
		}
	}
}

// TestConcurrentCollectivesSimnet keeps the four-op batch outstanding on
// the simulator, where any engine that breaks the cooperative-progress
// discipline (issuing from a helper goroutine) or the canonical blocking
// order would deadlock the kernel deterministically.
func TestConcurrentCollectivesSimnet(t *testing.T) {
	const p = 6
	spec := newConcurrentSpec()

	want := make([]map[core.CollOp][]byte, p)
	sim, err := simnet.New(machine.Testbox(), p)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(func(c comm.Comm) error {
		out, err := spec.run(c, nil)
		want[c.Rank()] = out
		return err
	}); err != nil {
		t.Fatalf("blocking batch: %v", err)
	}

	got := make([]map[core.CollOp][]byte, p)
	sim2, err := simnet.New(machine.Testbox(), p)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim2.Run(func(c comm.Comm) error {
		out, err := spec.run(c, nbc.NewEngine(c))
		got[c.Rank()] = out
		return err
	}); err != nil {
		t.Fatalf("concurrent batch: %v", err)
	}
	for r := 0; r < p; r++ {
		for _, op := range concurrentOrder {
			if !bytes.Equal(want[r][op], got[r][op]) {
				t.Fatalf("rank %d %s: simnet concurrent differs from blocking", r, op)
			}
		}
	}
}

// tcpWorld spins up p ranks over loopback sockets.
func tcpWorld(t *testing.T, p int, fn func(c comm.Comm) error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	errs := make([]error, p)
	procs := make([]*tcp.Proc, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			proc, err := tcp.Rendezvous(r, p, addr, tcp.Options{Timeout: 10 * time.Second})
			if err != nil {
				errs[r] = fmt.Errorf("rendezvous: %w", err)
				return
			}
			procs[r] = proc
			errs[r] = fn(proc)
		}(r)
	}
	wg.Wait()
	for _, proc := range procs {
		if proc != nil {
			proc.Close()
		}
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestConcurrentCollectivesTCP runs the four-op concurrent batch over
// real sockets and checks it against the blocking batch.
func TestConcurrentCollectivesTCP(t *testing.T) {
	const p = 4
	spec := newConcurrentSpec()

	want := make([]map[core.CollOp][]byte, p)
	tcpWorld(t, p, func(c comm.Comm) error {
		out, err := spec.run(c, nil)
		want[c.Rank()] = out
		return err
	})

	got := make([]map[core.CollOp][]byte, p)
	tcpWorld(t, p, func(c comm.Comm) error {
		out, err := spec.run(c, nbc.NewEngine(c))
		got[c.Rank()] = out
		return err
	})

	for r := 0; r < p; r++ {
		for _, op := range concurrentOrder {
			if !bytes.Equal(want[r][op], got[r][op]) {
				t.Fatalf("rank %d %s: tcp concurrent differs from blocking", r, op)
			}
		}
	}
}
