package nbc

import (
	"fmt"

	scratch "exacoll/internal/buf"
	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
	"exacoll/internal/tuning"
)

// The compiler: Compile picks the algorithm and radix for (op, size) from
// the tuning table — the same selection the blocking path makes — and
// lowers it into a per-rank Program.
//
// Three lowering families cover every registered algorithm:
//
//	knomial — k-nomial trees (bcast, reduce, gather+bcast, reduce+bcast)
//	recmul  — recursive multiplying with folding (k=2 is recursive doubling)
//	kring   — explicit k-ring schedules (k=1 is the plain ring)
//
// Algorithms outside the three generalized families (linear, bruck,
// rabenseifner, hierarchical, ...) map to the nearest family at an
// equivalent fixed radix. For bcast and allgather any correct lowering is
// byte-identical, so the substitution is exact. For the reduction ops the
// generalized families reproduce the blocking combine order bit for bit
// (and recursive doubling is recursive multiplying at k=2, fold included);
// the remaining fallbacks (allreduce_rabenseifner, *_linear, *_ring
// reductions, reducescatter_rechalving, allreduce_hier) are numerically
// equivalent only up to floating-point reassociation — exact for integer
// types and commutative-associative ops.

// family selects a lowering family at a fixed radix.
type family struct {
	kind lowerKind
	k    int // 0: use the table's k (clamped to the family minimum)
}

type lowerKind uint8

const (
	lowKnomial lowerKind = iota
	lowRecMul
	lowKRing
)

// families maps every registered algorithm of the five nonblocking ops to
// its lowering family.
var families = map[string]family{
	// Bcast.
	"bcast_knomial":           {lowKnomial, 0},
	"bcast_knomial_pipelined": {lowKnomial, 0}, // unsegmented: one tree pass
	"bcast_binomial":          {lowKnomial, 2},
	"bcast_linear":            {lowKnomial, 2},
	"bcast_recmul":            {lowRecMul, 0},
	"bcast_recdbl":            {lowRecMul, 2},
	"bcast_kring":             {lowKRing, 0},
	"bcast_ring":              {lowKRing, 1},
	"bcast_chain":             {lowKRing, 1},

	// Reduce.
	"reduce_knomial":           {lowKnomial, 0},
	"reduce_knomial_segmented": {lowKnomial, 0}, // unsegmented: one tree pass
	"reduce_binomial":          {lowKnomial, 2},
	"reduce_linear":            {lowKnomial, 2},

	// Allgather.
	"allgather_knomial": {lowKnomial, 0},
	"allgather_recmul":  {lowRecMul, 0},
	"allgather_recdbl":  {lowRecMul, 2},
	"allgather_kring":   {lowKRing, 0},
	"allgather_ring":    {lowKRing, 1},
	"allgather_bruck":   {lowKRing, 1},
	"allgather_linear":  {lowKRing, 1},

	// Allreduce.
	"allreduce_knomial":        {lowKnomial, 0},
	"allreduce_recmul":         {lowRecMul, 0},
	"allreduce_recdbl":         {lowRecMul, 2},
	"allreduce_kring":          {lowKRing, 0},
	"allreduce_ring":           {lowKRing, 1},
	"allreduce_ring_pipelined": {lowKRing, 1}, // unsegmented: one ring pass
	"allreduce_rabenseifner":   {lowKRing, 1},
	"allreduce_linear":         {lowKnomial, 2},
	"allreduce_hier":           {lowKnomial, 2},

	// Reduce-scatter.
	"reducescatter_kring":      {lowKRing, 0},
	"reducescatter_ring":       {lowKRing, 1},
	"reducescatter_rechalving": {lowKRing, 2},
}

// iname renames the blocking op name to its nonblocking form:
// "MPI_Bcast" → "MPI_Ibcast".
func iname(op core.CollOp) string {
	s := op.String()
	const pfx = "MPI_"
	if len(s) > len(pfx) && s[:len(pfx)] == pfx {
		head := s[len(pfx):]
		return pfx + "I" + string(head[0]|0x20) + head[1:]
	}
	return "I" + s
}

// Compile lowers one collective call into rank c.Rank()'s program,
// choosing (algorithm, radix) from tab at a's selection size. The returned
// program references a's buffers directly; they must stay untouched (sends)
// and unread (receives) until the request completes, like any MPI
// nonblocking buffer.
func Compile(c comm.Comm, tab *tuning.Table, op core.CollOp, a core.Args) (*Program, error) {
	nbytes := core.SelectionSize(op, a)
	alg, k, err := tab.Choose(op, nbytes)
	if err != nil {
		return nil, err
	}
	fam, ok := families[alg.Name]
	if !ok {
		return nil, fmt.Errorf("nbc: no nonblocking lowering for %s", alg.Name)
	}
	if fam.k != 0 {
		k = fam.k
	}
	// Clamp to the family's minimum radix (tree and recmul families need
	// k ≥ 2; the k-ring degenerates to the plain ring at k = 1).
	min := 2
	if fam.kind == lowKRing {
		min = 1
	}
	if k < min {
		k = min
	}

	p, me := c.Size(), c.Rank()
	b := &progBuilder{}
	// Until the program is handed off, its staging buffers are private to
	// the compiler: any error return recycles them (nothing is in flight).
	compiled := false
	defer func() {
		if !compiled {
			for _, s := range b.scratch {
				scratch.Put(s)
			}
		}
	}()
	switch op {
	case core.OpBcast:
		if err := checkRoot(p, a.Root); err != nil {
			return nil, err
		}
		switch fam.kind {
		case lowKnomial:
			lowerBcastKnomial(b, p, me, a.SendBuf, a.Root, k, 0, -1)
		case lowRecMul:
			lowerBcastRecMul(b, p, me, a.SendBuf, a.Root, k)
		case lowKRing:
			if err := lowerBcastKRing(b, p, me, a.SendBuf, a.Root, k); err != nil {
				return nil, err
			}
		}
	case core.OpReduce:
		if err := checkRoot(p, a.Root); err != nil {
			return nil, err
		}
		if err := checkReduceBufs(me == a.Root, a.SendBuf, a.RecvBuf, a.Type); err != nil {
			return nil, err
		}
		lowerReduceKnomial(b, p, me, a.SendBuf, a.RecvBuf, a.Op, a.Type, a.Root, k, 0)
	case core.OpAllgather:
		if len(a.RecvBuf) != len(a.SendBuf)*p {
			return nil, fmt.Errorf("nbc: allgather recvbuf %d bytes, want %d", len(a.RecvBuf), len(a.SendBuf)*p)
		}
		switch fam.kind {
		case lowKnomial:
			lowerAllgatherKnomial(b, p, me, a.SendBuf, a.RecvBuf, k)
		case lowRecMul:
			lowerAllgatherRecMul(b, p, me, a.SendBuf, a.RecvBuf, k)
		case lowKRing:
			if err := lowerAllgatherKRing(b, p, me, a.SendBuf, a.RecvBuf, k); err != nil {
				return nil, err
			}
		}
	case core.OpAllreduce:
		if err := checkReduceBufs(true, a.SendBuf, a.RecvBuf, a.Type); err != nil {
			return nil, err
		}
		switch fam.kind {
		case lowKnomial:
			lowerAllreduceKnomial(b, p, me, a.SendBuf, a.RecvBuf, a.Op, a.Type, k)
		case lowRecMul:
			lowerAllreduceRecMul(b, p, me, a.SendBuf, a.RecvBuf, a.Op, a.Type, k, 0, 1)
		case lowKRing:
			if err := lowerAllreduceKRing(b, p, me, a.SendBuf, a.RecvBuf, a.Op, a.Type, k); err != nil {
				return nil, err
			}
		}
	case core.OpReduceScatter:
		layout := core.FairLayoutAligned(len(a.SendBuf), p, a.Type.Size())
		_, sz := layout(me)
		if len(a.RecvBuf) != sz {
			return nil, fmt.Errorf("nbc: reduce-scatter recvbuf %d bytes, want %d", len(a.RecvBuf), sz)
		}
		if err := lowerReduceScatterKRing(b, p, me, a.SendBuf, a.RecvBuf, a.Op, a.Type, k); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("nbc: %s has no nonblocking form", op)
	}

	prog := &Program{
		Ops:     b.ops,
		OpName:  iname(op),
		Alg:     "nbc:" + alg.Name,
		K:       k,
		Bytes:   nbytes,
		Scratch: b.scratch,
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	compiled = true
	return prog, nil
}

// checkRoot mirrors core's root validation.
func checkRoot(p, root int) error {
	if root < 0 || root >= p {
		return fmt.Errorf("nbc: root %d out of range (p=%d)", root, p)
	}
	return nil
}

// checkReduceBufs mirrors core's reduction buffer validation. recvMatters
// is false when recvbuf is only significant at the root and the caller is
// not the root (MPI_Reduce at non-roots).
func checkReduceBufs(recvMatters bool, sendbuf, recvbuf []byte, t datatype.Type) error {
	if len(sendbuf)%t.Size() != 0 {
		return fmt.Errorf("nbc: sendbuf %d bytes not a multiple of %s (%d bytes)", len(sendbuf), t, t.Size())
	}
	if recvMatters && len(recvbuf) != len(sendbuf) {
		return fmt.Errorf("nbc: recvbuf %d bytes, want %d", len(recvbuf), len(sendbuf))
	}
	return nil
}
