package nbc

import (
	"errors"

	scratch "exacoll/internal/buf"
	"exacoll/internal/comm"
	"exacoll/internal/datatype"
	"exacoll/internal/flight"
	"exacoll/internal/metrics"
)

// errStalled is the backstop against a miscompiled schedule: a progress
// pass made no headway and no communication is in flight anywhere, so the
// remaining ops' dependencies can never resolve. Program.Validate rules
// out cycles, so reaching this indicates an engine or compiler bug — it is
// reported as an error instead of hanging the caller.
var errStalled = errors.New("nbc: schedule stalled with no communication in flight")

// opState tracks one op through the engine.
type opState uint8

const (
	opPending opState = iota
	opIssued
	opDone
)

// issueKey identifies a point-to-point matching stream: messages between
// this rank and peer in one direction on one absolute tag. The engine
// never posts a later op of a key while an earlier op of the same key is
// still unissued, which preserves the per-(source, tag) FIFO matching the
// lowerings rely on across schedule rounds. The absolute tag includes the
// request's epoch base, so concurrent collectives never block each other.
type issueKey struct {
	send bool
	peer int
	tag  comm.Tag
}

// Engine drives any number of compiled programs over one communicator for
// one rank. All progress happens cooperatively on the caller's goroutine
// inside Start, Wait, and Test — the engine never spawns goroutines and
// never touches the communicator from anywhere else, which makes it safe
// on the simulator's one-kernel-action-per-rank discipline and adds no
// per-collective thread cost (the MPI no-progress-thread model).
//
// An Engine belongs to a single rank and, like a comm.Comm rank, must be
// driven from one goroutine at a time.
type Engine struct {
	c   comm.Comm
	reg *metrics.Registry    // nil when c is not instrumented
	rec *flight.RankRecorder // nil when c carries no flight recorder
	clk comm.Clock           // nil on wall-clock substrates

	// nextEpoch numbers collectives in issue order. MPI-3 requires every
	// rank to issue nonblocking collectives on a communicator in the same
	// order, so this counter is identical across ranks and selects the
	// tag epoch.
	nextEpoch uint64
	// inflight holds unfinished requests in ascending epoch order.
	inflight []*Request
}

// NewEngine returns an engine for rank c.Rank(). When c is instrumented
// (metrics.Registry.Instrument), nonblocking starts, in-flight gauges,
// overlap windows, and per-call decision records are reported to its
// registry.
func NewEngine(c comm.Comm) *Engine {
	e := &Engine{c: c, rec: flight.RecorderOf(c), reg: metrics.InstrumentedOf(c)}
	if clk, ok := comm.VirtualClock(c); ok {
		e.clk = clk
	}
	return e
}

// now returns the engine's time base in seconds: virtual time on clocked
// substrates, registry-relative wall time otherwise.
func (e *Engine) now() float64 {
	if e.clk != nil {
		return e.clk.Now()
	}
	if e.reg != nil {
		return e.reg.Elapsed()
	}
	return 0
}

// Request is the handle of one in-flight nonblocking collective — the
// MPI_Request of an I<op> call. Exactly one of Wait or repeated Test
// drives it to completion; both make progress on every outstanding
// collective of the engine, not just this one.
type Request struct {
	eng   *Engine
	prog  *Program
	epoch uint64
	base  comm.Tag

	state     []opState
	reqs      []comm.Request
	remaining int

	done        bool
	err         error
	start       float64
	overlapSeen bool
	collArg     uint64 // flight bracket Arg; 0 when unrecorded
}

// Start begins executing prog. The returned request completes through
// Wait or Test; any execution error (including transport failures)
// surfaces there, never as a panic or a hang.
//
// Start must be called in the same order on every rank of the
// communicator (the MPI-3 issue-order rule); the shared issue counter is
// what keeps concurrent collectives' tag epochs aligned across ranks.
func (e *Engine) Start(prog *Program) (*Request, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	// Tag wraparound guard: an epoch's tag window repeats every
	// NBCTagEpochs issues. Force-complete the oldest request before its
	// window is reused; its own Wait later returns the recorded result.
	for len(e.inflight) > 0 && e.nextEpoch-e.inflight[0].epoch >= comm.NBCTagEpochs {
		e.inflight[0].waitDone()
	}

	epoch := e.nextEpoch
	e.nextEpoch++
	r := &Request{
		eng:       e,
		prog:      prog,
		epoch:     epoch,
		base:      comm.TagNBCBase + comm.Tag((epoch%comm.NBCTagEpochs)*comm.NBCTagStride),
		state:     make([]opState, len(prog.Ops)),
		reqs:      make([]comm.Request, len(prog.Ops)),
		remaining: len(prog.Ops),
	}
	if e.reg != nil {
		e.reg.NBCStart(e.c.Rank())
		r.start = e.now()
	}
	if e.rec != nil {
		// Concurrent collectives' brackets may interleave on the rank's
		// timeline; the packed epoch pairs each End with its Begin.
		r.collArg = flight.PackColl(e.rec.LabelID(prog.Alg), 0, prog.K, int64(epoch))
		e.rec.Record(flight.EvCollBegin, -1, r.base, prog.Bytes, r.collArg)
	}
	e.inflight = append(e.inflight, r)
	if r.remaining == 0 {
		r.finish(nil)
		return r, nil
	}
	// Launch: drain ready work so the schedule's first sends and receives
	// are posted before control returns to the caller's compute.
	for e.progress() {
	}
	return r, nil
}

// progress runs one nonblocking pass over every in-flight request, oldest
// epoch first: completed operations are retired, and every op whose
// dependencies are met is issued or executed. It reports whether anything
// advanced. blocked carries the per-key issue ordering across the whole
// pass: once a key's earliest unissued op is seen, no later op of that key
// may issue, even from a younger request — posting order per matching
// stream is program order.
func (e *Engine) progress() bool {
	advanced := false
	blocked := map[issueKey]bool{}
	snapshot := append([]*Request(nil), e.inflight...)
	for _, r := range snapshot {
		if r.done {
			continue
		}
		for i := range r.prog.Ops {
			if r.done {
				break
			}
			op := &r.prog.Ops[i]
			switch r.state[i] {
			case opDone:
			case opIssued:
				if done, err, ok := comm.TryTest(r.reqs[i]); ok && done {
					r.completeOp(i, err)
					advanced = true
				}
			case opPending:
				ready := true
				for _, d := range op.Deps {
					if r.state[d] != opDone {
						ready = false
						break
					}
				}
				if op.Kind == OpReduce || op.Kind == OpCopy {
					if ready {
						r.execLocal(i)
						advanced = true
					}
					continue
				}
				key := issueKey{send: op.Kind == OpSend, peer: op.Peer, tag: r.base + comm.Tag(op.TagSlot)}
				if !ready || blocked[key] {
					blocked[key] = true
					continue
				}
				var req comm.Request
				var err error
				if op.Kind == OpSend {
					req, err = e.c.Isend(op.Peer, key.tag, op.Buf)
				} else {
					req, err = e.c.Irecv(op.Peer, key.tag, op.Buf)
				}
				advanced = true
				if err != nil {
					r.fail(err)
					continue
				}
				r.reqs[i] = req
				r.state[i] = opIssued
				// Eager substrates complete sends at post time; retire
				// immediately so dependents unlock within this pass.
				if done, terr, ok := comm.TryTest(req); ok && done {
					r.completeOp(i, terr)
				}
			}
		}
	}
	return advanced
}

// blockOldest blocks on the globally oldest issued-but-incomplete
// operation — lexicographically first by (epoch, op index) — and retires
// it. This is the canonical blocking order: every rank that runs out of
// pollable progress blocks on the same frontier, which (with eager sends
// and MPI-3 issue order) cannot deadlock. Called only when a progress
// pass advanced nothing; if nothing is in flight either, the schedule is
// stalled (a compiler bug, surfaced as errStalled rather than a hang).
func (e *Engine) blockOldest() error {
	for _, r := range e.inflight {
		if r.done {
			continue
		}
		for i := range r.prog.Ops {
			if r.state[i] == opIssued {
				err := r.reqs[i].Wait()
				r.completeOp(i, err)
				return nil
			}
		}
	}
	return errStalled
}

// execLocal runs a reduce or copy op, charging compute for reductions
// exactly like the blocking reduceInto.
func (r *Request) execLocal(i int) {
	op := &r.prog.Ops[i]
	if op.Kind == OpCopy {
		for _, m := range op.Moves {
			copy(m.Dst, m.Src)
		}
		r.completeOp(i, nil)
		return
	}
	for _, m := range op.Moves {
		if err := datatype.Apply(op.RedOp, op.RedType, m.Dst, m.Src); err != nil {
			r.fail(err)
			return
		}
		r.eng.c.ChargeCompute(len(m.Dst))
	}
	r.completeOp(i, nil)
}

// completeOp retires op i with its terminal status.
func (r *Request) completeOp(i int, err error) {
	if r.done || r.state[i] == opDone {
		return
	}
	if err != nil {
		r.fail(err)
		return
	}
	r.state[i] = opDone
	r.remaining--
	if r.remaining == 0 {
		r.finish(nil)
	}
}

// fail terminates the request with err. Operations still in flight are
// abandoned — their buffers may still be written by the substrate, but
// the caller has been told the collective failed, so the result buffer
// carries no guarantee anyway (matching the blocking algorithms, which
// return on first error with requests outstanding).
func (r *Request) fail(err error) {
	if r.done {
		return
	}
	r.finish(err)
}

// finish retires the request: records telemetry and removes it from the
// engine's in-flight list. On success every op completed, so all
// communication targeting the program's scratch has settled and the
// buffers can be recycled; on error abandoned operations may still
// target them (see fail), so they are left to the GC.
func (r *Request) finish(err error) {
	r.err = err
	r.done = true
	if err == nil {
		for _, s := range r.prog.Scratch {
			scratch.Put(s)
		}
		r.prog.Scratch = nil
	}
	e := r.eng
	for i, q := range e.inflight {
		if q == r {
			e.inflight = append(e.inflight[:i], e.inflight[i+1:]...)
			break
		}
	}
	if e.rec != nil {
		e.rec.Record(flight.EvCollEnd, -1, r.base, r.prog.Bytes, r.collArg)
	}
	if e.reg != nil {
		e.reg.NBCFinish(e.c.Rank())
		end := e.now()
		e.reg.RecordDecision(metrics.Decision{
			Rank: e.c.Rank(), Op: r.prog.OpName, Bytes: r.prog.Bytes,
			Alg: r.prog.Alg, K: r.prog.K,
			Start: r.start, Seconds: end - r.start, Err: err != nil,
		})
	}
}

// waitDone drives the engine until this request completes, without
// recording an overlap sample (used by the wraparound guard; the owner's
// Wait still observes its own overlap window and result).
func (r *Request) waitDone() {
	e := r.eng
	for !r.done {
		if e.progress() {
			continue
		}
		if r.done {
			break
		}
		if err := e.blockOldest(); err != nil {
			r.fail(err)
		}
	}
}

// Wait blocks until the collective completes and returns its terminal
// status — MPI_Wait. While blocked it drives every outstanding collective
// of the engine. Wait is idempotent: further calls return the same result.
func (r *Request) Wait() error {
	r.observeOverlap()
	r.waitDone()
	return r.err
}

// Test polls for completion without blocking — MPI_Test. It runs one
// nonblocking progress pass over the engine and reports whether this
// collective has completed, with its terminal status once done.
func (r *Request) Test() (bool, error) {
	if !r.done {
		r.eng.progress()
	}
	if r.done {
		r.observeOverlap()
	}
	return r.done, r.err
}

// observeOverlap records the overlap window — time between Start and the
// first Wait (or completing Test) — once per request.
func (r *Request) observeOverlap() {
	if r.overlapSeen || r.eng.reg == nil {
		return
	}
	r.overlapSeen = true
	ns := (r.eng.now() - r.start) * 1e9
	if ns < 0 {
		ns = 0
	}
	r.eng.reg.ObserveOverlap(r.eng.c.Rank(), uint64(ns))
}

// WaitAll waits on every request and returns the joined errors — the
// MPI_Waitall of nonblocking collectives, mirroring comm.WaitAll.
func WaitAll(reqs ...*Request) error {
	var errs []error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if err := r.Wait(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
