// Package nbc implements nonblocking collectives (the MPI-3 I<op> family)
// as a schedule compiler plus a cooperative progress engine.
//
// Rather than parking a goroutine per call on the blocking algorithms, a
// nonblocking collective is compiled once into a per-rank program: a DAG
// of primitive operations (send, recv, reduce, copy) over concrete buffer
// slices, with dependency edges that encode both the data flow and the
// buffer hazards of the corresponding blocking algorithm. The compiler
// (Compile) reuses the exact round/partner/combine structure of
// internal/core — the same k-nomial trees, k-ring schedules, and
// recursive-multiplying plans — so a compiled collective produces
// bit-identical buffers to its blocking counterpart when the same
// generalized algorithm is selected.
//
// Programs are driven by a per-rank Engine that keeps any number of
// schedules in flight simultaneously. Progress is made cooperatively
// inside Start/Wait/Test on the caller's own goroutine (the MPI
// no-progress-thread model): the engine polls issued operations via
// comm.Tester where the substrate supports it, and falls back to blocking
// on the globally oldest issued operation in a canonical order when a
// pass makes no progress. No background goroutine ever touches the
// communicator, which keeps the engine compatible with the simulator's
// one-kernel-action-per-rank discipline.
//
// Concurrent collectives get disjoint tag sub-ranges via issue epochs
// (see the tag-space layout in internal/comm): MPI-3 requires every rank
// to issue nonblocking collectives on a communicator in the same order,
// so a per-engine issue counter is identical on all ranks and selects the
// epoch's tag window above comm.TagNBCBase.
package nbc

import (
	"fmt"

	scratch "exacoll/internal/buf"
	"exacoll/internal/comm"
	"exacoll/internal/datatype"
)

// OpKind classifies a primitive operation.
type OpKind uint8

// The four primitive operations a program is lowered to.
const (
	// OpSend posts a nonblocking send of Buf to Peer on TagSlot.
	OpSend OpKind = iota
	// OpRecv posts a nonblocking receive into Buf from Peer on TagSlot.
	OpRecv
	// OpReduce folds each Move's Src into its Dst with (RedOp, RedType),
	// charging compute like the blocking reduceInto.
	OpReduce
	// OpCopy copies each Move's Src into its Dst.
	OpCopy
)

// String names the kind for diagnostics.
func (k OpKind) String() string {
	switch k {
	case OpSend:
		return "send"
	case OpRecv:
		return "recv"
	case OpReduce:
		return "reduce"
	case OpCopy:
		return "copy"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Move is one local data movement: Src flows into Dst (copied for OpCopy,
// reduced element-wise for OpReduce). Dst and Src are equal-length views
// into the program's buffers.
type Move struct {
	Dst, Src []byte
}

// Op is one node of a compiled program. Deps lists the indices of ops that
// must complete before this op may start — data dependencies and buffer
// hazards alike. Comm ops (OpSend/OpRecv) use Peer and TagSlot, a relative
// tag in [0, comm.NBCTagStride) that the engine offsets by the request's
// epoch base at issue time.
type Op struct {
	Kind    OpKind
	Peer    int
	TagSlot int
	Buf     []byte
	Moves   []Move
	RedOp   datatype.Op
	RedType datatype.Type
	Deps    []int
}

// Program is one rank's compiled schedule for one collective call. Ops are
// topologically ordered (every dependency precedes its dependent), and the
// engine issues ready ops in index order, which reproduces the posting
// order of the blocking algorithm the program was lowered from.
type Program struct {
	Ops []Op
	// OpName is the MPI-style operation name ("MPI_Iallreduce", ...).
	OpName string
	// Alg names the lowering ("nbc:" + the blocking algorithm compiled from).
	Alg string
	// K is the radix the lowering was compiled with (0 if not generalized).
	K int
	// Bytes is the selection size the algorithm was chosen at.
	Bytes int
	// Scratch lists pool-owned staging buffers private to this program's
	// ops. The engine recycles them when the program completes successfully;
	// on error, abandoned operations may still target them, so they are
	// left to the GC instead. A program is single-use once its scratch has
	// been released.
	Scratch [][]byte
}

// Validate checks the structural invariants the engine relies on:
// backward-pointing dependencies (topological index order) and tag slots
// inside the epoch stride. Compile validates every program it returns;
// exported so tests can check hand-built programs.
func (p *Program) Validate() error {
	for i, op := range p.Ops {
		for _, d := range op.Deps {
			if d < 0 || d >= i {
				return fmt.Errorf("nbc: op %d (%s) depends on %d (must be in [0,%d))", i, op.Kind, d, i)
			}
		}
		switch op.Kind {
		case OpSend, OpRecv:
			if op.TagSlot < 0 || op.TagSlot >= comm.NBCTagStride {
				return fmt.Errorf("nbc: op %d (%s) tag slot %d outside [0,%d)", i, op.Kind, op.TagSlot, comm.NBCTagStride)
			}
			if len(op.Moves) != 0 {
				return fmt.Errorf("nbc: op %d (%s) has local moves", i, op.Kind)
			}
		case OpReduce, OpCopy:
			for _, m := range op.Moves {
				if len(m.Dst) != len(m.Src) {
					return fmt.Errorf("nbc: op %d (%s) move length mismatch (%d vs %d)", i, op.Kind, len(m.Dst), len(m.Src))
				}
			}
		default:
			return fmt.Errorf("nbc: op %d has unknown kind %d", i, op.Kind)
		}
	}
	return nil
}

// progBuilder accumulates a program's ops during lowering. The helpers
// return the new op's index so lowerings can wire dependencies.
type progBuilder struct {
	ops     []Op
	scratch [][]byte
}

// scratchBuf allocates an n-byte staging buffer from the scratch pool and
// records it as program-owned, so the engine can recycle it when the
// program completes.
func (b *progBuilder) scratchBuf(n int) []byte {
	s := scratch.Get(n)
	b.scratch = append(b.scratch, s)
	return s
}

// add appends op with deduplicated, valid deps.
func (b *progBuilder) add(op Op, deps []int) int {
	idx := len(b.ops)
	seen := map[int]bool{}
	var clean []int
	for _, d := range deps {
		if d < 0 || seen[d] {
			continue
		}
		seen[d] = true
		clean = append(clean, d)
	}
	op.Deps = clean
	b.ops = append(b.ops, op)
	return idx
}

func (b *progBuilder) send(peer, slot int, buf []byte, deps ...int) int {
	return b.add(Op{Kind: OpSend, Peer: peer, TagSlot: slot, Buf: buf}, deps)
}

func (b *progBuilder) recv(peer, slot int, buf []byte, deps ...int) int {
	return b.add(Op{Kind: OpRecv, Peer: peer, TagSlot: slot, Buf: buf}, deps)
}

// reduce folds src into dst (dst ← dst ⊕ src).
func (b *progBuilder) reduce(op datatype.Op, t datatype.Type, dst, src []byte, deps ...int) int {
	return b.add(Op{Kind: OpReduce, RedOp: op, RedType: t, Moves: []Move{{Dst: dst, Src: src}}}, deps)
}

// copyOp performs the given moves (dst ← src each).
func (b *progBuilder) copyOp(moves []Move, deps ...int) int {
	return b.add(Op{Kind: OpCopy, Moves: moves}, deps)
}

// blockTracker tracks read/write hazards over abstract block ids during
// lowering, turning the implicit ordering of a blocking algorithm's
// program text into explicit dependency edges:
//
//   - an op that reads block b must run after b's last writer (RAW);
//   - an op that writes block b must run after b's last writer (WAW) and
//     after every reader since that writer (WAR).
//
// Block ids are whatever granularity the lowering chooses (schedule block
// ids for the k-ring/recursive-multiplying families).
type blockTracker struct {
	lastWrite map[int]int
	readers   map[int][]int
}

func newBlockTracker() *blockTracker {
	return &blockTracker{lastWrite: map[int]int{}, readers: map[int][]int{}}
}

// readDeps returns the deps an op reading block b needs.
func (t *blockTracker) readDeps(b int) []int {
	if w, ok := t.lastWrite[b]; ok {
		return []int{w}
	}
	return nil
}

// writeDeps returns the deps an op writing block b needs.
func (t *blockTracker) writeDeps(b int) []int {
	var deps []int
	if w, ok := t.lastWrite[b]; ok {
		deps = append(deps, w)
	}
	return append(deps, t.readers[b]...)
}

// noteRead records op idx as a reader of block b.
func (t *blockTracker) noteRead(b, idx int) {
	t.readers[b] = append(t.readers[b], idx)
}

// noteWrite records op idx as block b's last writer, clearing readers.
func (t *blockTracker) noteWrite(b, idx int) {
	t.lastWrite[b] = idx
	t.readers[b] = nil
}
