package bench

import (
	"fmt"

	"exacoll/internal/core"
)

// Fig10 reproduces the 1024-node scale study: latency vs. message size for
// the most promising configurations identified at smaller scale, with the
// k=2 default and the vendor selection as reference lines. Expected
// shapes: (a) large k wins small-message Reduce but k = p (1024) is worse
// than k = 128 — the parameter has an upper bound at scale; (b)/(c) k=4
// and k=8 recursive multiplying keep their advantage until large sizes.
func (cfg Config) Fig10() (*Figure, error) {
	p := cfg.LargeNodes
	spec := cfg.Frontier.WithPPN(1)
	fig := &Figure{
		ID:      "fig10",
		Caption: fmt.Sprintf("Large-scale latency vs. message size, %s, p=%d, 1 PPN", spec.Name, p),
		Notes: []string{
			"Allgather per-rank sizes capped (result buffers are p·n per rank on a single host).",
		},
	}

	mk := func(names []string, ks []int, withVendor bool, op core.CollOp) ([]sizedSeries, error) {
		var out []sizedSeries
		for i, name := range names {
			s, err := algSeries(name, ks[i])
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
		if withVendor {
			out = append(out, vendorSeries(op))
		}
		return out, nil
	}

	// (a) k-nomial reduce: k = 2 (baseline), 8, 128, p.
	ksA := cfg.ksweep(p, []int{2, 8, 128, p})
	names := make([]string, len(ksA))
	for i := range ksA {
		names[i] = "reduce_knomial"
	}
	sA, err := mk(names, ksA, true, core.OpReduce)
	if err != nil {
		return nil, err
	}
	ga, err := latencyOverSize(spec, p, sA, cfg.sizes(8, 128<<10))
	if err != nil {
		return nil, err
	}
	ga.Title = fmt.Sprintf("fig10a: reduce_knomial at scale, %s p=%d", spec.Name, p)

	// (b) recursive-multiplying allgather: k = 2, 4, 8.
	ksB := cfg.ksweep(p, []int{2, 4, 8})
	names = make([]string, len(ksB))
	for i := range ksB {
		names[i] = "allgather_recmul"
	}
	sB, err := mk(names, ksB, true, core.OpAllgather)
	if err != nil {
		return nil, err
	}
	gb, err := latencyOverSize(spec, p, sB, cfg.sizes(8, 1<<10))
	if err != nil {
		return nil, err
	}
	gb.Title = fmt.Sprintf("fig10b: allgather_recmul at scale, %s p=%d", spec.Name, p)

	// (c) recursive-multiplying allreduce: k = 2, 4, 8.
	sC, err := mk(names2("allreduce_recmul", len(ksB)), ksB, true, core.OpAllreduce)
	if err != nil {
		return nil, err
	}
	gc, err := latencyOverSize(spec, p, sC, cfg.sizes(8, 128<<10))
	if err != nil {
		return nil, err
	}
	gc.Title = fmt.Sprintf("fig10c: allreduce_recmul at scale, %s p=%d", spec.Name, p)

	fig.Grids = []*Grid{ga, gb, gc}
	return fig, nil
}

func names2(name string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = name
	}
	return out
}

// Fig11 reproduces the Polaris comparison (Fig. 8's layout on the other
// machine): (a) k-nomial MPI_Reduce and (b) recursive-multiplying
// MPI_Allreduce should match the Frontier trends, with the best
// recursive-multiplying k a small multiple of Polaris' two NIC ports;
// (c) the k-ring sweep, where the paper reports minimal parameter effect.
func (cfg Config) Fig11() (*Figure, error) {
	p := cfg.Nodes
	fig := &Figure{
		ID:      "fig11",
		Caption: fmt.Sprintf("Parameter value k vs. latency on Polaris (sim), p=%d", p),
		Notes: []string{
			fmt.Sprintf("(c) uses 1 rank per GPU: 4 PPN on %d nodes (p=%d).", cfg.PPNNodes, cfg.PPNNodes*4),
			"See EXPERIMENTS.md for the k-ring discussion: the resource simulator models dedicated per-pair intranode links, so some k-ring benefit persists on simulated Polaris where the paper measured none.",
		},
	}

	ga, err := latencyOverK(cfg.Polaris.WithPPN(1), p, "reduce_knomial",
		cfg.ksweep(p, []int{2, 4, 8, 16, 32, 64, 128}),
		[]int{8, 1 << 10, 64 << 10, 1 << 20})
	if err != nil {
		return nil, err
	}
	ga.Title = "fig11a: " + ga.Title

	gb, err := latencyOverK(cfg.Polaris.WithPPN(1), p, "allreduce_recmul",
		cfg.ksweep(p, []int{2, 3, 4, 5, 6, 8, 12, 16}),
		[]int{8, 1 << 10, 64 << 10, 1 << 20})
	if err != nil {
		return nil, err
	}
	gb.Title = "fig11b: " + gb.Title

	p4 := cfg.PPNNodes * 4
	gc, err := latencyOverK(cfg.Polaris.WithPPN(4), p4, "bcast_kring",
		cfg.ksweep(p4, []int{1, 2, 4, 8, 16}),
		[]int{64 << 10, 512 << 10, 4 << 20})
	if err != nil {
		return nil, err
	}
	gc.Title = "fig11c: " + gc.Title

	fig.Grids = []*Grid{ga, gb, gc}
	return fig, nil
}

// Table1 renders Table I: the kernels, their generalizations, and the
// collective operations each implements, straight from the registry.
func Table1() string {
	type row struct{ base, gen string }
	rows := []row{
		{"binomial", "k-nomial"},
		{"recursive-doubling", "recursive-multiplying"},
		{"ring", "k-ring"},
	}
	out := "Base Kernel\tGeneralized Kernel\tCollective Operations\n"
	for _, r := range rows {
		ops := ""
		for _, alg := range core.TableIAlgorithms() {
			if alg.Kernel.String() != r.gen {
				continue
			}
			switch alg.Op {
			case core.OpBcast, core.OpReduce, core.OpAllgather, core.OpAllreduce:
				if ops != "" {
					ops += ", "
				}
				ops += alg.Op.String()
			}
		}
		out += fmt.Sprintf("%s\t%s\t%s\n", r.base, r.gen, ops)
	}
	return out
}
