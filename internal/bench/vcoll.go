package bench

import (
	"fmt"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
	"exacoll/internal/simnet"
)

// vcollUniform is the degenerate regular distribution: every rank
// contributes exactly unit bytes.
func vcollUniform(p, unit int) []int {
	c := make([]int, p)
	for r := range c {
		c[r] = unit
	}
	return c
}

func vcollUniformMatrix(p, unit int) []int {
	m := make([]int, p*p)
	for i := range m {
		m[i] = unit
	}
	return m
}

// vcollOneHot is the hardest skew: one rank holds the whole p·unit
// payload, everyone else contributes nothing.
func vcollOneHot(p, unit int) []int {
	c := make([]int, p)
	c[p/2] = unit * p
	return c
}

func vcollOneHotMatrix(p, unit int) []int {
	m := make([]int, p*p)
	for i := 0; i < p; i++ {
		m[i*p+(i+1)%p] = unit * p
	}
	return m
}

// vcollArgs builds one rank's argument bundle from explicit count
// shapes — the distribution-parameterized sibling of MakeArgs (which
// bakes in the single skewed shape the conformance suite uses).
func vcollArgs(op core.CollOp, rank, p, k int, counts, m []int) core.Args {
	pattern := func(seed, n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte((seed*31 + i) % 251)
		}
		return b
	}
	total := 0
	for _, cn := range counts {
		total += cn
	}
	a := core.Args{K: k, Op: datatype.Sum, Type: datatype.Float64}
	switch op {
	case core.OpAllgatherv:
		a.Counts = counts
		a.SendBuf = pattern(rank, counts[rank])
		a.RecvBuf = make([]byte, total)
	case core.OpReduceScatterv:
		a.Counts = counts
		a.SendBuf = pattern(rank, total)
		a.RecvBuf = make([]byte, counts[rank])
	case core.OpAlltoallv:
		a.Counts = m
		sendTotal, recvTotal := 0, 0
		for q := 0; q < p; q++ {
			sendTotal += m[rank*p+q]
			recvTotal += m[q*p+rank]
		}
		a.SendBuf = pattern(rank, sendTotal)
		a.RecvBuf = make([]byte, recvTotal)
	case core.OpAllreduce:
		a.SendBuf = pattern(rank, total)
		a.RecvBuf = make([]byte, total)
	}
	return a
}

// VColl is the vector/irregular-collective study (not a paper figure):
// latency of every vcoll algorithm — both allgathervs, the ring
// reduce-scatterv, both alltoallvs, and the Kolmakov–Zhang generalized
// allreduce over the same total bytes — swept over unit block sizes, one
// grid per count distribution. Uniform is the regular baseline; the
// skewed grid uses the conformance suite's ragged-with-zeros shape; the
// one-hot grid concentrates the whole payload on a single rank, the skew
// that separates algorithms whose critical path follows the largest
// contribution (rings) from those that amortize it over rounds (Bruck).
func (cfg Config) VColl() (*Figure, error) {
	p := cfg.Nodes
	sizes := cfg.sizes(8, 64<<10)
	type series struct {
		name string
		alg  string
		k    int
	}
	allSeries := []series{
		{"allgatherv_ring", "allgatherv_ring", 0},
		{"allgatherv_knomial_bruck k=2", "allgatherv_knomial_bruck", 2},
		{"allgatherv_knomial_bruck k=8", "allgatherv_knomial_bruck", 8},
		{"reducescatterv_ring", "reducescatterv_ring", 0},
		{"alltoallv_linear", "alltoallv_linear", 0},
		{"alltoallv_bruck", "alltoallv_bruck", 0},
		{"allreduce_gkz k=2", "allreduce_gkz", 2},
		{"allreduce_gkz k=4", "allreduce_gkz", 4},
	}
	if cfg.Quick {
		allSeries = []series{
			{"allgatherv_ring", "allgatherv_ring", 0},
			{"allgatherv_knomial_bruck k=2", "allgatherv_knomial_bruck", 2},
			{"reducescatterv_ring", "reducescatterv_ring", 0},
			{"alltoallv_bruck", "alltoallv_bruck", 0},
			{"allreduce_gkz k=2", "allreduce_gkz", 2},
		}
	}
	dists := []struct {
		name   string
		counts func(p, unit int) []int
		matrix func(p, unit int) []int
	}{
		{"uniform", vcollUniform, vcollUniformMatrix},
		{"skewed", vcollCounts, vcollMatrix},
		{"onehot", vcollOneHot, vcollOneHotMatrix},
	}
	fig := &Figure{
		ID: "vcoll",
		Caption: fmt.Sprintf("vector/irregular collectives on %s, p=%d: latency vs unit block size under uniform, skewed, and one-hot count distributions",
			cfg.Frontier.Name, p),
		Notes: []string{
			"not a paper figure: extends the Table I radix study to the vector workload class (allgatherv/reduce-scatterv/alltoallv) plus the generalized Kolmakov-Zhang allreduce over matching total bytes",
			"x axis is the unit block size; per-rank counts are the distribution's multiples of it, so total bytes grow with p and skew",
		},
	}
	for _, d := range dists {
		g := &Grid{
			Title: fmt.Sprintf("%s counts on %s, p=%d", d.name, cfg.Frontier.Name, p),
			XName: "unit_bytes", YName: "latency_us",
		}
		for _, n := range sizes {
			g.Xs = append(g.Xs, RoundSize(n))
		}
		for _, s := range allSeries {
			fn, op, err := AlgFn(s.alg)
			if err != nil {
				return nil, err
			}
			ys := make([]float64, len(g.Xs))
			for i, unit := range g.Xs {
				counts := d.counts(p, unit)
				m := d.matrix(p, unit)
				sim, err := simnet.New(cfg.Frontier, p)
				if err != nil {
					return nil, err
				}
				if err := sim.Run(func(c comm.Comm) error {
					return fn(c, vcollArgs(op, c.Rank(), p, s.k, counts, m))
				}); err != nil {
					return nil, fmt.Errorf("vcoll %s dist=%s unit=%d: %w", s.name, d.name, unit, err)
				}
				ys[i] = sim.MaxTime() * 1e6
			}
			if err := g.AddSeries(s.name, ys); err != nil {
				return nil, err
			}
		}
		fig.Grids = append(fig.Grids, g)
	}
	return fig, nil
}
