package bench

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
	"exacoll/internal/transport/mem"
)

// The measured collectives: the same variants the baseline captured
// (recursive-doubling allreduce and the k=2 k-nomial bcast at 4 KiB).
func hotpathAllreduce(c comm.Comm, sb, rb []byte) error {
	return core.AllreduceRecDbl(c, sb, rb, datatype.Sum, datatype.Float64)
}

func hotpathBcast(c comm.Comm, buf []byte) error {
	return core.BcastKnomial(c, buf, 0, 2)
}

// The hot-path microbenchmark: reducer kernel throughput and small-message
// collective cost on the mem transport, the paths the scratch-pool and
// specialized-reducer work optimized. Unlike the paper figures this is a
// wall-clock regression harness, not a simulation study: it writes
// BENCH_hotpath.json and gates CI on the machine-independent metrics
// (allocations per op, reducer speedup over a live generic baseline) so a
// slow CI runner cannot flake the gate while a pooling or kernel
// regression still fails it.

// HotpathMetrics are the measured values, keyed to match the committed
// baseline file (results/BENCH_hotpath_baseline.json).
type HotpathMetrics struct {
	ReducerSumF64MBps float64 `json:"reducer_sum_f64_mbps"`
	ReducerSumI32MBps float64 `json:"reducer_sum_i32_mbps"`
	// ReducerGenericF64MBps is a live closure-over-elements sum measured on
	// the same machine, so the specialization speedup is machine-relative.
	ReducerGenericF64MBps float64 `json:"reducer_generic_f64_mbps"`
	AllreduceSmallNsOp    float64 `json:"allreduce_small_ns_op"`
	AllreduceSmallAllocs  float64 `json:"allreduce_small_allocs_op"`
	BcastSmallNsOp        float64 `json:"bcast_small_ns_op"`
	BcastSmallAllocs      float64 `json:"bcast_small_allocs_op"`
	// Transport point-to-point streaming bandwidth (p=2, best-of-N): the
	// mem/shm/tcp/striped-tcp ladder and the multi-port striping evidence.
	MemBW1MiBMBps          float64 `json:"mem_bw_1mib_mbps"`
	ShmBW1MiBMBps          float64 `json:"shm_bw_1mib_mbps"`
	TCPBW256KiBMBps        float64 `json:"tcp_bw_256kib_mbps"`
	TCPBW1MiBMBps          float64 `json:"tcp_bw_1mib_mbps"`
	TCPStripedBW256KiBMBps float64 `json:"tcp_striped_bw_256kib_mbps"`
	TCPStripedBW1MiBMBps   float64 `json:"tcp_striped_bw_1mib_mbps"`
}

// HotpathReport is the machine-readable result (BENCH_hotpath.json).
type HotpathReport struct {
	ID      string         `json:"id"`
	Caption string         `json:"caption"`
	P       int            `json:"p"`
	Metrics HotpathMetrics `json:"metrics"`
	// Baseline echoes the committed pre-optimization numbers when the
	// baseline file was readable.
	Baseline map[string]float64 `json:"baseline,omitempty"`
	// SpeedupVsGeneric is the specialized/generic f64-sum throughput ratio
	// measured live (gated at >= 2x).
	SpeedupVsGeneric float64 `json:"speedup_vs_generic"`
	// StripeCount is the connection count of the striped TCP mesh under
	// test; StripeSpeedup* are striped/single bandwidth ratios measured
	// live on loopback (the 1 MiB point is gated: striping must win once
	// a single connection's copy path saturates a core). NumCPU records
	// the cores available: loopback striping parallelizes the kernel's
	// copy path across cores, so the speedup gates only apply when the
	// machine can express that parallelism (NumCPU >= StripeCount).
	NumCPU              int     `json:"num_cpu"`
	StripeCount         int     `json:"stripe_count"`
	StripeSpeedup256KiB float64 `json:"stripe_speedup_256kib"`
	StripeSpeedup1MiB   float64 `json:"stripe_speedup_1mib"`
	// TunedKAtStripes is the allreduce radix tuning.Recommended derives
	// from the striped mesh's advertised Locality.Ports (gated == stripe
	// count: the port count flows into the selection guidelines).
	TunedKAtStripes int `json:"tuned_k_at_stripes"`
	// Failures lists gate violations; empty means the gate passed.
	Failures []string `json:"failures,omitempty"`
	Pass     bool     `json:"pass"`
}

// hotpathLockstep dispatches one closure per rank per iteration onto
// persistent rank goroutines, so per-iteration costs are the collective's
// own.
type hotpathLockstep struct {
	work []chan func(c comm.Comm) error
	done chan error
}

func newHotpathLockstep(w *mem.World, p int) *hotpathLockstep {
	lw := &hotpathLockstep{
		work: make([]chan func(c comm.Comm) error, p),
		done: make(chan error, p),
	}
	for r := 0; r < p; r++ {
		lw.work[r] = make(chan func(c comm.Comm) error)
		go func(r int) {
			c := w.Comm(r)
			for fn := range lw.work[r] {
				lw.done <- fn(c)
			}
		}(r)
	}
	return lw
}

func (lw *hotpathLockstep) run(fns []func(c comm.Comm) error) error {
	for r := range lw.work {
		lw.work[r] <- fns[r]
	}
	var first error
	for range lw.work {
		if err := <-lw.done; err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (lw *hotpathLockstep) close() {
	for _, ch := range lw.work {
		close(ch)
	}
}

// measureCollective returns (ns/op, allocs/op) for iters whole-communicator
// iterations after a warmup, using global allocation counters as
// testing.AllocsPerRun does.
func measureCollective(lw *hotpathLockstep, fns []func(c comm.Comm) error, iters int) (float64, float64, error) {
	for i := 0; i < 10; i++ {
		if err := lw.run(fns); err != nil {
			return 0, 0, err
		}
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if err := lw.run(fns); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&after)
	nsOp := float64(elapsed.Nanoseconds()) / float64(iters)
	allocsOp := math.Round(float64(after.Mallocs-before.Mallocs) / float64(iters))
	return nsOp, allocsOp, nil
}

// genericSumF64 is the pre-specialization reduction idiom: decode, add,
// re-encode one element at a time through encoding/binary.
func genericSumF64(dst, src []byte) {
	for i := 0; i+8 <= len(dst); i += 8 {
		d := math.Float64frombits(binary.LittleEndian.Uint64(dst[i:]))
		s := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
		binary.LittleEndian.PutUint64(dst[i:], math.Float64bits(d+s))
	}
}

// measureReducer returns MB/s for repeatedly applying fn to n-byte buffers.
func measureReducer(n, iters int, fn func(dst, src []byte)) float64 {
	dst := make([]byte, n)
	src := make([]byte, n)
	fn(dst, src) // warmup
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		fn(dst, src)
	}
	sec := time.Since(t0).Seconds()
	return float64(n) * float64(iters) / sec / 1e6
}

// Hotpath runs the hot-path microbenchmarks and applies the regression
// gate against the committed baseline at baselinePath ("" skips the
// baseline comparison but still gates the live ratios).
func (cfg Config) Hotpath(baselinePath string) (*HotpathReport, error) {
	const p, collBytes, reducerBytes = 8, 4 << 10, 1 << 20
	collIters, redIters := 2000, 300
	if cfg.Quick {
		collIters, redIters = 200, 50
	}

	rep := &HotpathReport{
		ID: "hotpath",
		Caption: fmt.Sprintf("hot-path wall-clock microbenchmarks: %d B reducer kernels, %d B collectives on mem, p=%d; transport streaming bandwidth mem/shm/tcp/striped-tcp",
			reducerBytes, collBytes, p),
		P: p,
	}

	rep.Metrics.ReducerSumF64MBps = measureReducer(reducerBytes, redIters, func(dst, src []byte) {
		if err := datatype.Apply(datatype.Sum, datatype.Float64, dst, src); err != nil {
			panic(err)
		}
	})
	rep.Metrics.ReducerSumI32MBps = measureReducer(reducerBytes, redIters, func(dst, src []byte) {
		if err := datatype.Apply(datatype.Sum, datatype.Int32, dst, src); err != nil {
			panic(err)
		}
	})
	rep.Metrics.ReducerGenericF64MBps = measureReducer(reducerBytes, redIters, genericSumF64)
	rep.SpeedupVsGeneric = rep.Metrics.ReducerSumF64MBps / rep.Metrics.ReducerGenericF64MBps

	w := mem.NewWorld(p)
	lw := newHotpathLockstep(w, p)
	defer lw.close()

	arFns := make([]func(c comm.Comm) error, p)
	for r := 0; r < p; r++ {
		sb := make([]byte, collBytes)
		rb := make([]byte, collBytes)
		arFns[r] = func(c comm.Comm) error {
			return hotpathAllreduce(c, sb, rb)
		}
	}
	ns, allocs, err := measureCollective(lw, arFns, collIters)
	if err != nil {
		return nil, fmt.Errorf("hotpath allreduce: %w", err)
	}
	rep.Metrics.AllreduceSmallNsOp = ns
	rep.Metrics.AllreduceSmallAllocs = allocs

	bcFns := make([]func(c comm.Comm) error, p)
	for r := 0; r < p; r++ {
		buf := make([]byte, collBytes)
		bcFns[r] = func(c comm.Comm) error {
			return hotpathBcast(c, buf)
		}
	}
	ns, allocs, err = measureCollective(lw, bcFns, collIters)
	if err != nil {
		return nil, fmt.Errorf("hotpath bcast: %w", err)
	}
	rep.Metrics.BcastSmallNsOp = ns
	rep.Metrics.BcastSmallAllocs = allocs

	if err := cfg.measureTransportBW(rep); err != nil {
		return nil, fmt.Errorf("hotpath transport bw: %w", err)
	}

	rep.Baseline = loadHotpathBaseline(baselinePath)
	rep.Failures = hotpathGate(rep)
	rep.Pass = len(rep.Failures) == 0
	return rep, nil
}

// hotpathGate checks the machine-independent regression conditions.
// Wall-clock metrics (ns/op, absolute MB/s) are reported but not gated:
// CI runners vary too much for absolute thresholds to hold.
func hotpathGate(rep *HotpathReport) []string {
	var fails []string
	if rep.SpeedupVsGeneric < 2.0 {
		fails = append(fails, fmt.Sprintf(
			"specialized f64 sum only %.2fx the generic per-element baseline (want >= 2x)",
			rep.SpeedupVsGeneric))
	}
	if base, ok := rep.Baseline["allreduce_small_allocs_op"]; ok {
		// The acceptance bar is a >= 5x reduction; steady state is zero.
		if limit := base / 5; rep.Metrics.AllreduceSmallAllocs > limit {
			fails = append(fails, fmt.Sprintf(
				"small allreduce at %.0f allocs/op, want <= %.0f (baseline %.0f / 5)",
				rep.Metrics.AllreduceSmallAllocs, limit, base))
		}
	}
	// The bcast hot path is allocation-free (stack-backed tree scratch,
	// cached requests): gate it at zero absolutely, not baseline-relative.
	if rep.Metrics.BcastSmallAllocs > 0 {
		fails = append(fails, fmt.Sprintf(
			"small bcast at %.0f allocs/op, want 0 (baseline %.0f)",
			rep.Metrics.BcastSmallAllocs, rep.Baseline["bcast_small_allocs_op"]))
	}
	// Striping gates: once payloads are large enough that a single
	// loopback connection saturates one core's copy path (>= 256 KiB),
	// striping across connections must beat it, decisively at 1 MiB.
	// Ratios of two measurements on the same machine, so CI-speed-proof —
	// but only meaningful when the machine has cores to parallelize the
	// copies across; on fewer cores than stripes the numbers are reported
	// ungated (striping is a multi-port play, and a one-core box has one
	// port's worth of copy engine no matter how many connections exist).
	if rep.StripeCount > 1 && rep.NumCPU >= rep.StripeCount {
		if rep.StripeSpeedup256KiB < 1.0 {
			fails = append(fails, fmt.Sprintf(
				"striped tcp at 256 KiB only %.2fx single-connection (want >= 1x)",
				rep.StripeSpeedup256KiB))
		}
		if rep.StripeSpeedup1MiB < 1.2 {
			fails = append(fails, fmt.Sprintf(
				"striped tcp at 1 MiB only %.2fx single-connection (want >= 1.2x)",
				rep.StripeSpeedup1MiB))
		}
	}
	if rep.StripeCount > 1 && rep.TunedKAtStripes != rep.StripeCount {
		fails = append(fails, fmt.Sprintf(
			"tuned allreduce radix %d does not track the stripe count %d",
			rep.TunedKAtStripes, rep.StripeCount))
	}
	return fails
}

// loadHotpathBaseline reads the committed baseline's metrics map; a
// missing or malformed file just disables the baseline-relative gates.
func loadHotpathBaseline(path string) map[string]float64 {
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var doc struct {
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil
	}
	return doc.Metrics
}
