package bench

import "testing"

// TestChaosFigure runs the quick chaos benchmark and checks its shape:
// both loops (fault-free FT and bare) and the full recovery arc complete
// and report positive wall times. The overhead_pct value itself is NOT
// asserted — the ~ms quick loops are meaningless under the test suite's
// own CPU contention; the <5% target is watched on the full-size
// `gcabench chaos` run in CI's chaos job.
func TestChaosFigure(t *testing.T) {
	fig, err := QuickConfig().Chaos()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Grids) != 2 {
		t.Fatalf("unexpected figure shape: %+v", fig)
	}
	overhead, recovery := fig.Grids[0], fig.Grids[1]
	if len(overhead.Series) != 3 || overhead.Series[2].Name != "overhead_pct" {
		t.Fatalf("unexpected overhead series: %+v", overhead.Series)
	}
	for _, s := range overhead.Series[:2] {
		for i, ms := range s.Ys {
			if ms <= 0 {
				t.Errorf("%d bytes: %s = %.2fms", overhead.Xs[i], s.Name, ms)
			}
		}
	}
	if len(recovery.Series) != 1 || recovery.Series[0].Name != "recover_ms" {
		t.Fatalf("unexpected recovery series: %+v", recovery.Series)
	}
	for i, ms := range recovery.Series[0].Ys {
		if ms <= 0 {
			t.Errorf("%d bytes: recovery latency %.2fms", recovery.Xs[i], ms)
		}
	}
}
