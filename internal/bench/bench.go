// Package bench is the measurement harness that regenerates the paper's
// evaluation (Figs. 7–11, Table I): OSU-microbenchmark-style latency
// sweeps over message sizes and radix values, run on the deterministic
// machine simulator, plus speedup computation against the fixed-radix and
// vendor baselines.
package bench

import (
	"fmt"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
	"exacoll/internal/machine"
	"exacoll/internal/simnet"
)

// CollFn abstracts "run one collective with these arguments" so the same
// harness times registry algorithms, the vendor selection, and the tuned
// selection.
type CollFn func(c comm.Comm, a core.Args) error

// MakeArgs builds a valid, deterministic argument bundle for an operation
// on one rank. Reduction payloads are float64 sums; n is the per-rank
// contribution in bytes and is rounded up to a multiple of 8 for
// reductions by RoundSize before calling.
func MakeArgs(op core.CollOp, rank, p, n, root, k int) core.Args {
	pattern := func(seed, n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte((seed*31 + i) % 251)
		}
		return b
	}
	a := core.Args{Root: root, K: k, Op: datatype.Sum, Type: datatype.Float64}
	switch op {
	case core.OpBcast:
		a.SendBuf = pattern(root, n)
	case core.OpReduce, core.OpAllreduce:
		a.SendBuf = pattern(rank, n)
		a.RecvBuf = make([]byte, n)
	case core.OpGather, core.OpAllgather:
		a.SendBuf = pattern(rank, n)
		a.RecvBuf = make([]byte, n*p)
	case core.OpScatter:
		if rank == root {
			a.SendBuf = pattern(root, n*p)
		}
		a.RecvBuf = make([]byte, n)
	case core.OpReduceScatter:
		a.SendBuf = pattern(rank, n)
		_, sz := core.FairLayoutAligned(n, p, 8)(rank)
		a.RecvBuf = make([]byte, sz)
	case core.OpAlltoall:
		a.SendBuf = pattern(rank, n*p)
		a.RecvBuf = make([]byte, n*p)
	case core.OpScan:
		a.SendBuf = pattern(rank, n)
		a.RecvBuf = make([]byte, n)
	case core.OpAllgatherv:
		counts := vcollCounts(p, n)
		total := 0
		for _, cn := range counts {
			total += cn
		}
		a.Counts = counts
		a.SendBuf = pattern(rank, counts[rank])
		a.RecvBuf = make([]byte, total)
	case core.OpReduceScatterv:
		counts := vcollCounts(p, n)
		total := 0
		for _, cn := range counts {
			total += cn
		}
		a.Counts = counts
		a.SendBuf = pattern(rank, total)
		a.RecvBuf = make([]byte, counts[rank])
	case core.OpAlltoallv:
		m := vcollMatrix(p, n)
		a.Counts = m
		sendTotal, recvTotal := 0, 0
		for q := 0; q < p; q++ {
			sendTotal += m[rank*p+q]
			recvTotal += m[q*p+rank]
		}
		a.SendBuf = pattern(rank, sendTotal)
		a.RecvBuf = make([]byte, recvTotal)
	}
	return a
}

// vcollCounts is the deterministic skewed per-rank byte-count vector used
// for the vector collectives: multiples of 8 (element-aligned for float64
// reduce-scatterv) scaling with n, zeros included.
func vcollCounts(p, n int) []int {
	unit := RoundSize(n)
	counts := make([]int, p)
	for r := range counts {
		counts[r] = ((r*37 + 1) % 5) * unit
	}
	return counts
}

// vcollMatrix is the deterministic skewed p×p alltoallv byte-count matrix
// (row-major, entry [i*p+j] = bytes i sends j), zeros included.
func vcollMatrix(p, n int) []int {
	unit := RoundSize(n)
	m := make([]int, p*p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			m[i*p+j] = ((i*31 + j*17 + 1) % 5) * unit
		}
	}
	return m
}

// RoundSize rounds a message size up to a multiple of 8 bytes so float64
// reductions are well-formed (OSU sizes are already powers of two >= 8;
// this guards the tiny end of sweeps).
func RoundSize(n int) int {
	if n < 8 {
		return 8
	}
	return (n + 7) &^ 7
}

// SimLatency runs one collective once on a fresh simulator and returns its
// latency: the maximum virtual completion time across ranks. The simulator
// is deterministic, so a single shot is exact — the warmup/repetition
// protocol real systems need (§VI-H) is only used by the wall-clock
// benchmarks in bench_test.go.
func SimLatency(spec machine.Spec, p int, op core.CollOp, fn CollFn, n, root, k int) (float64, error) {
	sim, err := simnet.New(spec, p)
	if err != nil {
		return 0, err
	}
	if err := sim.Run(func(c comm.Comm) error {
		return fn(c, MakeArgs(op, c.Rank(), p, n, root, k))
	}); err != nil {
		return 0, err
	}
	return sim.MaxTime(), nil
}

// AlgFn returns the CollFn for a registry algorithm name.
func AlgFn(name string) (CollFn, core.CollOp, error) {
	alg, err := core.Lookup(name)
	if err != nil {
		return nil, 0, err
	}
	return alg.Run, alg.Op, nil
}

// Seconds formats a latency in microseconds for figure output (the paper's
// y axes are μs).
func Seconds(t float64) string { return fmt.Sprintf("%.3f", t*1e6) }

// OSUSizes returns the standard power-of-two message-size sweep from lo to
// hi inclusive (bytes).
func OSUSizes(lo, hi int) []int {
	var out []int
	for n := lo; n <= hi; n *= 2 {
		out = append(out, n)
	}
	return out
}
