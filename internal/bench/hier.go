package bench

import (
	"fmt"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/machine"
	"exacoll/internal/model"
	"exacoll/internal/simnet"
	"exacoll/internal/topo"
	"exacoll/internal/tuning"
)

// HierLatency runs one collective through the topology composition engine
// on a fresh simulator and returns its latency (maximum virtual completion
// time across ranks). The locality map is discovered from the simulator's
// machine spec on every rank, exactly as a gca.WithTopology session would.
func HierLatency(spec machine.Spec, p int, op core.CollOp, n int) (float64, error) {
	sim, err := simnet.New(spec, p)
	if err != nil {
		return 0, err
	}
	if err := sim.Run(func(c comm.Comm) error {
		m, ok := topo.Discover(c)
		if !ok {
			return fmt.Errorf("simnet rank %d exposes no locality", c.Rank())
		}
		e, err := topo.NewEngine(c, m, topo.Config{Spec: &spec})
		if err != nil {
			return err
		}
		a := MakeArgs(op, c.Rank(), p, n, 0, 0)
		switch op {
		case core.OpBcast:
			return e.Bcast(a.SendBuf, a.Root)
		case core.OpReduce:
			return e.Reduce(a.SendBuf, a.RecvBuf, a.Op, a.Type, a.Root)
		case core.OpAllgather:
			return e.Allgather(a.SendBuf, a.RecvBuf)
		case core.OpAllreduce:
			return e.Allreduce(a.SendBuf, a.RecvBuf, a.Op, a.Type)
		}
		return fmt.Errorf("no hierarchical lowering for %v", op)
	}); err != nil {
		return 0, err
	}
	return sim.MaxTime(), nil
}

// hierOpName maps a CollOp to the flat-collective name model.Hier keys
// its predictions by.
func hierOpName(op core.CollOp) string {
	switch op {
	case core.OpBcast:
		return "bcast"
	case core.OpReduce:
		return "reduce"
	case core.OpAllgather:
		return "allgather"
	case core.OpAllreduce:
		return "allreduce"
	}
	return op.String()
}

// Hier compares the flat tuned selection against the hierarchical
// composition engine on Frontier at 8 PPN: one grid per collective
// (allreduce, bcast) over the OSU size sweep, with the analytical
// two-level prediction (model.Hier) as a third series. The paper's
// hierarchy argument (§V) is that above the eager threshold the
// reduce→leader-allreduce→bcast shape moves 1/ppn of the bytes over the
// NIC tier; the crossover this figure shows is the point the tuner should
// switch a topology-aware session from flat to multi-level lowering.
func (cfg Config) Hier() (*Figure, error) {
	const ppn = 8
	spec := cfg.Frontier.WithPPN(ppn).WithPlacement(cfg.Place)
	nodes := cfg.Nodes
	p := nodes * ppn
	sizes := cfg.sizes(8, 1<<20)
	flatTab := tuning.Recommended(spec, p)
	inter, intra := model.FromSpec(spec)
	pred := model.Hier{Inter: inter, Intra: intra}

	fig := &Figure{
		ID: "hier",
		Caption: fmt.Sprintf("flat tuned selection vs hierarchical composition, %s %d nodes x %d PPN (p=%d)",
			spec.Name, nodes, ppn, p),
		Notes: []string{
			"hierarchical = per-level (algorithm,k) selection: intranode phases + internode leader phase (internal/topo)",
			fmt.Sprintf("placement=%v", cfg.Place),
		},
	}
	for _, op := range []core.CollOp{core.OpAllreduce, core.OpBcast} {
		g := &Grid{
			Title: fmt.Sprintf("%v on %s, %d nodes x %d PPN", op, spec.Name, nodes, ppn),
			XName: "bytes", YName: "latency_us",
		}
		for _, n := range sizes {
			g.Xs = append(g.Xs, RoundSize(n))
		}
		flat := make([]float64, len(g.Xs))
		hier := make([]float64, len(g.Xs))
		modelYs := make([]float64, len(g.Xs))
		for i, n := range g.Xs {
			tf, err := SimLatency(spec, p, op,
				func(c comm.Comm, a core.Args) error { return flatTab.Run(c, op, a) },
				n, 0, 0)
			if err != nil {
				return nil, fmt.Errorf("flat %v n=%d: %w", op, n, err)
			}
			flat[i] = tf * 1e6
			th, err := HierLatency(spec, p, op, n)
			if err != nil {
				return nil, fmt.Errorf("hier %v n=%d: %w", op, n, err)
			}
			hier[i] = th * 1e6
			// Model series at the engine's default shape: full-fan intranode
			// trees, the recommended internode radix ladder collapsed to 4.
			tm, err := pred.Predict(hierOpName(op), n, nodes, ppn, ppn, 4)
			if err != nil {
				return nil, err
			}
			modelYs[i] = tm * 1e6
		}
		if err := g.AddSeries("flat tuned", flat); err != nil {
			return nil, err
		}
		if err := g.AddSeries("hierarchical", hier); err != nil {
			return nil, err
		}
		if err := g.AddSeries("model hier", modelYs); err != nil {
			return nil, err
		}
		fig.Grids = append(fig.Grids, g)
	}
	return fig, nil
}
