package bench

import (
	"testing"

	"exacoll/internal/machine"
	"exacoll/internal/model"
)

// TestModelAccuracyKnomial reproduces §VI-F's first finding: the (α, β, γ)
// analytical model tracks the simulator well for the k-nomial kernel —
// within a factor-2 band across sizes and radices, and, more importantly,
// RANKING radices correctly for small messages (model and sim agree that
// moderate k beats k=2 for tiny reduces).
func TestModelAccuracyKnomial(t *testing.T) {
	spec := machine.Frontier()
	inter, _ := model.FromSpec(spec)
	p := 64
	fn, op, err := AlgFn("reduce_knomial")
	if err != nil {
		t.Fatal(err)
	}
	// The accuracy claim is for the latency-bound regime the k-nomial
	// kernel targets (<16KB, §III); at bandwidth-bound sizes the model's
	// serialized (k-1)nβ term ignores multi-port overlap, which is
	// exactly the §III-D caveat ("we assume ... perfect overlapping").
	for _, n := range []int{8, 1 << 10, 8 << 10} {
		for _, k := range []int{2, 4, 8} {
			sim, err := SimLatency(spec, p, op, fn, n, 0, k)
			if err != nil {
				t.Fatal(err)
			}
			pred := inter.ReduceKnomial(n, p, k)
			if ratio := sim / pred; ratio < 0.4 || ratio > 2.5 {
				t.Errorf("knomial n=%d k=%d: sim/model = %.2f (sim %.1fus, model %.1fus)",
					n, k, ratio, sim*1e6, pred*1e6)
			}
		}
	}
	// At k=2 (no overlap assumption in play) the band holds even for
	// bandwidth-bound sizes.
	simBig, err := SimLatency(spec, p, op, fn, 256<<10, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pred := inter.ReduceKnomial(256<<10, p, 2); simBig/pred < 0.4 || simBig/pred > 2.5 {
		t.Errorf("knomial 256KB k=2: sim/model = %.2f", simBig/pred)
	}
	// Ranking agreement at 8 bytes: both prefer k=4 over k=2.
	sim2, _ := SimLatency(spec, p, op, fn, 8, 0, 2)
	sim4, _ := SimLatency(spec, p, op, fn, 8, 0, 4)
	if (inter.ReduceKnomial(8, p, 4) < inter.ReduceKnomial(8, p, 2)) != (sim4 < sim2) {
		t.Error("model and sim disagree on k=4 vs k=2 for tiny reduce")
	}
}

// TestModelDivergesForRecMul reproduces §VI-F's second finding: for
// recursive multiplying, hardware effects (the NIC port cap) overtake the
// analytical intuition. The pure model says very small messages keep
// improving with k well beyond the port count; the simulator caps the
// benefit near k = ports — so at k = 16 the model UNDERESTIMATES the cost
// relative to k = 4 while the simulator shows k = 16 clearly worse.
func TestModelDivergesForRecMul(t *testing.T) {
	spec := machine.Frontier() // 4 ports
	inter, _ := model.FromSpec(spec)
	p := 64
	fn, op, err := AlgFn("allreduce_recmul")
	if err != nil {
		t.Fatal(err)
	}
	n := 8
	sim4, err := SimLatency(spec, p, op, fn, n, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	sim16, err := SimLatency(spec, p, op, fn, n, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	mod4 := inter.AllreduceRecMul(n, p, 4)
	mod16 := inter.AllreduceRecMul(n, p, 16)
	// The model thinks k=16 is at least as good as k=4 for 8-byte
	// messages (fewer rounds, negligible bandwidth term)...
	if mod16 > mod4*1.05 {
		t.Skipf("model already penalizes k=16 (%.2fus vs %.2fus); divergence premise gone", mod16*1e6, mod4*1e6)
	}
	// ...but the simulator's port serialization makes k=16 measurably
	// worse — the empirical contradiction §VI-C2 reports.
	if sim16 <= sim4 {
		t.Errorf("sim should penalize k=16 (%.2fus) vs k=4 (%.2fus) via the port cap", sim16*1e6, sim4*1e6)
	}
}

// TestModelDivergesForKRing reproduces §VI-F's third finding: the uniform
// eq. (12) model sees no benefit in k-ring ((p−1)·Ti regardless of k),
// while the simulator's heterogeneous links reward k = PPN. The refined
// heterogeneous model (AllgatherKRing with intranode parameters) agrees
// with the simulator's direction.
func TestModelDivergesForKRing(t *testing.T) {
	spec := machine.Frontier().WithPPN(8)
	inter, intra := model.FromSpec(spec)
	p := 64
	n := 1 << 20 // the Fig. 8c experiment is a large-message MPI_Bcast
	fn, op, err := AlgFn("bcast_kring")
	if err != nil {
		t.Fatal(err)
	}
	simRing, err := SimLatency(spec, p, op, fn, n, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	simK8, err := SimLatency(spec, p, op, fn, n, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform model: identical for any k.
	uniformRing := inter.AllgatherKRing(n, p, 1, inter)
	uniformK8 := inter.AllgatherKRing(n, p, 8, inter)
	if diff := uniformK8 - uniformRing; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("uniform eq.12 model should be k-independent: %g vs %g", uniformK8, uniformRing)
	}
	// Simulator: k=8 wins.
	if simK8 >= simRing {
		t.Errorf("sim: k=8 (%.1fus) should beat ring (%.1fus)", simK8*1e6, simRing*1e6)
	}
	// Heterogeneous model agrees in direction with the simulator.
	hetRing := inter.AllgatherKRing(n, p, 1, intra)
	hetK8 := inter.AllgatherKRing(n, p, 8, intra)
	if hetK8 >= hetRing {
		t.Errorf("heterogeneous model: k=8 (%g) should beat ring (%g)", hetK8, hetRing)
	}
}
