package bench

import (
	"fmt"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/machine"
	"exacoll/internal/vendorsel"
)

// Config parameterizes the figure reproductions. The defaults mirror the
// paper's setups scaled to a single-host simulation: the paper's 128-node
// results use Nodes, its 1024-node results LargeNodes, and its
// 8-process-per-node runs PPNNodes nodes × 8 ranks (the paper reports
// 32-node and 128-node results are "very similar" (§VI-B), which is what
// makes the smaller PPN grids faithful).
type Config struct {
	// Frontier and Polaris are the machine models.
	Frontier machine.Spec
	Polaris  machine.Spec
	// Nodes is the main evaluation size (paper: 128).
	Nodes int
	// LargeNodes is the scale study size (paper: 1024).
	LargeNodes int
	// PPNNodes is the node count for 8-PPN (1 rank per GPU) runs; ring
	// schedules cost O(p²) simulated messages, so this defaults to the
	// paper's 32-node configuration.
	PPNNodes int
	// Place is the rank-to-node placement applied to multi-PPN grids
	// (contiguous by default; dispersed models fragmented allocations).
	Place machine.Placement
	// Quick shrinks every sweep for smoke tests.
	Quick bool
}

// DefaultConfig returns the paper-scale configuration.
func DefaultConfig() Config {
	return Config{
		Frontier:   machine.Frontier(),
		Polaris:    machine.Polaris(),
		Nodes:      128,
		LargeNodes: 1024,
		PPNNodes:   32,
	}
}

// QuickConfig returns a configuration small enough for unit tests.
func QuickConfig() Config {
	return Config{
		Frontier:   machine.Frontier(),
		Polaris:    machine.Polaris(),
		Nodes:      16,
		LargeNodes: 64,
		PPNNodes:   4,
		Quick:      true,
	}
}

// Figure is one reproduced figure: a set of grids plus notes recording
// deviations from the paper's exact setup.
type Figure struct {
	ID      string
	Caption string
	Grids   []*Grid
	Notes   []string
}

func (cfg Config) sizes(lo, hi int) []int {
	if cfg.Quick {
		if hi > lo*64 {
			hi = lo * 64
		}
		var out []int
		for n := lo; n <= hi; n *= 8 {
			out = append(out, n)
		}
		return out
	}
	return OSUSizes(lo, hi)
}

func (cfg Config) ksweep(max int, ks []int) []int {
	var out []int
	for _, k := range ks {
		if k <= max {
			out = append(out, k)
		}
	}
	if cfg.Quick && len(out) > 4 {
		out = out[:4]
	}
	return out
}

// latencyOverK builds a k-versus-latency grid (the Fig. 8/11 style): one
// series per message size.
func latencyOverK(spec machine.Spec, p int, algName string, ks, sizes []int) (*Grid, error) {
	fn, op, err := AlgFn(algName)
	if err != nil {
		return nil, err
	}
	g := &Grid{
		Title: fmt.Sprintf("%s on %s, p=%d", algName, spec.Name, p),
		XName: "k", YName: "latency_us", Xs: ks,
	}
	for _, n := range sizes {
		n := RoundSize(n)
		ys := make([]float64, len(ks))
		for i, k := range ks {
			t, err := SimLatency(spec, p, op, fn, n, 0, k)
			if err != nil {
				return nil, fmt.Errorf("%s n=%d k=%d: %w", algName, n, k, err)
			}
			ys[i] = t * 1e6
		}
		if err := g.AddSeries(fmt.Sprintf("%dB", n), ys); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// latencyOverSize builds a size-versus-latency grid (the Fig. 10 style):
// one series per (algorithm, k) plus optional vendor baseline.
type sizedSeries struct {
	Name string
	Fn   CollFn
	Op   core.CollOp
	K    int
}

func latencyOverSize(spec machine.Spec, p int, series []sizedSeries, sizes []int) (*Grid, error) {
	g := &Grid{
		Title: fmt.Sprintf("latency on %s, p=%d", spec.Name, p),
		XName: "bytes", YName: "latency_us",
	}
	for _, n := range sizes {
		g.Xs = append(g.Xs, RoundSize(n))
	}
	for _, s := range series {
		ys := make([]float64, len(g.Xs))
		for i, n := range g.Xs {
			t, err := SimLatency(spec, p, s.Op, s.Fn, n, 0, s.K)
			if err != nil {
				return nil, fmt.Errorf("%s n=%d: %w", s.Name, n, err)
			}
			ys[i] = t * 1e6
		}
		if err := g.AddSeries(s.Name, ys); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// vendorSeries wraps the vendor selection as a timed series.
func vendorSeries(op core.CollOp) sizedSeries {
	return sizedSeries{
		Name: "vendor",
		Op:   op,
		Fn:   func(c comm.Comm, a core.Args) error { return vendorsel.Run(c, op, a) },
	}
}

// algSeries wraps a registry algorithm at a fixed radix as a timed series.
func algSeries(name string, k int) (sizedSeries, error) {
	fn, op, err := AlgFn(name)
	if err != nil {
		return sizedSeries{}, err
	}
	label := name
	if k > 0 {
		label = fmt.Sprintf("%s k=%d", name, k)
	}
	return sizedSeries{Name: label, Fn: fn, Op: op, K: k}, nil
}
