package bench

import (
	"errors"
	"fmt"
	"time"

	"exacoll/gca"
	"exacoll/internal/core"
	"exacoll/internal/tuning"
)

// Chaos measures the two costs of the fault-tolerance layer on the
// wall-clock mem transport: what it charges when nothing fails, and what
// recovery costs when something does.
//
// Grid 1 (fault-free overhead): the same pinned allreduce loop through a
// bare session and a fault-tolerant one. The FT layer adds one O(p)
// 1-byte two-round agreement per collective, so at the benchmarked sizes
// (≥ 256 KiB) the overhead must stay in the low single digits — the
// overhead_pct series is the number CI watches across PRs.
//
// Grid 2 (recovery latency): one rank is dead before the collective
// starts; the series times the survivors' full recovery arc — aborted
// allreduce (detection + error agreement), Shrink (agreement on the
// survivor set + sub-communicator rebuild), and a completed allreduce on
// the shrunken session.
func (cfg Config) Chaos() (*Figure, error) {
	p, iters := 6, 16
	sizes := []int{256 << 10, 1 << 20}
	if cfg.Quick {
		p, iters = 4, 8
		sizes = []int{256 << 10}
	}
	tab := &tuning.Table{Machine: "bench", Ops: map[string][]tuning.Entry{
		core.OpAllreduce.String(): {{Alg: "allreduce_kring", K: 2}},
	}}

	overhead := &Grid{
		Title: fmt.Sprintf("fault-free FT overhead on mem, p=%d, %d allreduce_kring k=2 iterations", p, iters),
		XName: "bytes", YName: "wall_ms", Xs: sizes,
	}
	bare := make([]float64, len(sizes))
	ft := make([]float64, len(sizes))
	pct := make([]float64, len(sizes))
	for i, n := range sizes {
		// Warm-up run keeps scheduler/allocator jitter out of the numbers.
		if _, err := chaosLoop(tab, p, iters, n, false); err != nil {
			return nil, err
		}
		tb, err := chaosLoop(tab, p, iters, n, false)
		if err != nil {
			return nil, err
		}
		tf, err := chaosLoop(tab, p, iters, n, true)
		if err != nil {
			return nil, err
		}
		bare[i] = tb * 1e3
		ft[i] = tf * 1e3
		pct[i] = (tf - tb) / tb * 100
	}
	if err := overhead.AddSeries("bare_ms", bare); err != nil {
		return nil, err
	}
	if err := overhead.AddSeries("ft_ms", ft); err != nil {
		return nil, err
	}
	if err := overhead.AddSeries("overhead_pct", pct); err != nil {
		return nil, err
	}

	recovery := &Grid{
		Title: fmt.Sprintf("recovery latency on mem, p=%d: abort + Shrink + allreduce over survivors", p),
		XName: "bytes", YName: "wall_ms", Xs: sizes,
	}
	rec := make([]float64, len(sizes))
	for i, n := range sizes {
		tr, err := chaosRecover(tab, p, n)
		if err != nil {
			return nil, err
		}
		rec[i] = tr * 1e3
	}
	if err := recovery.AddSeries("recover_ms", rec); err != nil {
		return nil, err
	}

	return &Figure{
		ID:      "chaos",
		Caption: "fault-tolerance cost: fault-free session overhead and dead-rank recovery latency",
		Grids:   []*Grid{overhead, recovery},
		Notes: []string{
			"fault-free FT adds one O(p) 1-byte two-round agreement per collective; at >=256KiB payloads overhead_pct should stay under 5",
			"recovery arc: allreduce aborts via error agreement, Shrink agrees on survivors and rebuilds the communicator, survivors complete a correct allreduce",
		},
	}, nil
}

// chaosLoop times iters fault-free allreduces through a gca.Session —
// bare, or wrapped in the fault-tolerance layer.
func chaosLoop(tab *tuning.Table, p, iters, n int, ft bool) (float64, error) {
	w := gca.NewLocalWorld(p)
	defer w.Close()
	start := time.Now()
	err := w.Run(func(c gca.Comm) error {
		opts := []gca.SessionOption{gca.WithTable(tab)}
		if ft {
			opts = append(opts, gca.WithFaultTolerance(), gca.WithTimeout(10*time.Second))
		}
		s := gca.NewSession(c, opts...)
		send := make([]byte, n)
		recv := make([]byte, n)
		for it := 0; it < iters; it++ {
			if err := s.Allreduce(send, recv, gca.Sum, gca.Float64); err != nil {
				return err
			}
		}
		return nil
	})
	return time.Since(start).Seconds(), err
}

// chaosRecover times the survivors' recovery arc with one rank dead from
// the start: aborted allreduce, Shrink, completed allreduce at p-1.
func chaosRecover(tab *tuning.Table, p, n int) (float64, error) {
	w := gca.NewLocalWorld(p)
	defer w.Close()
	victim := p - 1
	start := time.Now()
	errs := w.RunAll(func(c gca.Comm) error {
		if c.Rank() == victim {
			w.Kill(victim)
			return nil
		}
		// Recovery latency is dominated by the op deadline: a survivor whose
		// first exchange partner is another (already aborted) survivor only
		// unblocks when its receive times out. 500ms keeps the arc honest
		// without padding the benchmark.
		s := gca.NewSession(c, gca.WithTable(tab),
			gca.WithFaultTolerance(), gca.WithTimeout(500*time.Millisecond))
		send := make([]byte, n)
		recv := make([]byte, n)
		if err := s.Allreduce(send, recv, gca.Sum, gca.Float64); !errors.Is(err, gca.ErrAborted) {
			return fmt.Errorf("allreduce with dead rank: %v, want ErrAborted", err)
		}
		sub, err := s.Shrink()
		if err != nil {
			return fmt.Errorf("shrink: %w", err)
		}
		if sub.Size() != p-1 {
			return fmt.Errorf("shrunk size = %d, want %d", sub.Size(), p-1)
		}
		if err := sub.Allreduce(send, recv, gca.Sum, gca.Float64); err != nil {
			return fmt.Errorf("post-shrink allreduce: %w", err)
		}
		return nil
	})
	elapsed := time.Since(start).Seconds()
	for r, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("rank %d: %w", r, err)
		}
	}
	return elapsed, nil
}
