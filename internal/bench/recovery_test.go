package bench

import "testing"

// TestRecoveryFigure runs the quick recovery benchmark and checks its
// shape: all three elastic transitions (grow, dead-rank compaction,
// rejoin) complete over real TCP and report positive wall times. The
// values themselves are not asserted — latency under the test suite's CPU
// contention is noise; trends are watched on CI's `gcabench recovery` run.
func TestRecoveryFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("real-TCP lifecycle benchmark skipped in -short mode")
	}
	fig, err := QuickConfig().Recovery()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Grids) != 1 {
		t.Fatalf("unexpected figure shape: %+v", fig)
	}
	g := fig.Grids[0]
	if len(g.Series) != 3 {
		t.Fatalf("unexpected series: %+v", g.Series)
	}
	for _, s := range g.Series {
		for i, ms := range s.Ys {
			if ms <= 0 {
				t.Errorf("p=%d: %s = %.2fms", g.Xs[i], s.Name, ms)
			}
		}
	}
}
