package bench

import (
	"fmt"
	"net"
	"runtime"
	"time"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/machine"
	"exacoll/internal/transport/mem"
	"exacoll/internal/transport/shm"
	"exacoll/internal/transport/tcp"
	"exacoll/internal/tuning"
)

// Transport point-to-point streaming bandwidth: the measurement behind the
// README's mem/shm/tcp/striped-tcp table and the multi-port striping gate.
// A p=2 pair streams fixed-size messages one way; bandwidth is payload
// bytes over the wall time of the whole stream, best of several runs so a
// scheduler hiccup cannot sink a CI gate. Loopback TCP is CPU-bound on the
// kernel's copy path, so striping across connections recovers bandwidth
// the same way multi-port NICs do (§II-B2): the stripes' copies run on
// separate cores.

const bwTag = 7701

// streamBW streams iters msgBytes-sized messages from c1 to c0 and returns
// MB/s. One warmup message each way settles connection setup and ring
// paging before the clock starts.
func streamBW(c0, c1 comm.Comm, msgBytes, iters int) (float64, error) {
	sbuf := make([]byte, msgBytes)
	rbuf := make([]byte, msgBytes)
	errc := make(chan error, 1)
	go func() {
		if err := c1.Send(0, bwTag, sbuf); err != nil {
			errc <- err
			return
		}
		if _, err := c1.Recv(0, bwTag, rbuf[:1]); err != nil {
			errc <- err
			return
		}
		for i := 0; i < iters; i++ {
			if err := c1.Send(0, bwTag, sbuf); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	if _, err := c0.Recv(1, bwTag, rbuf); err != nil {
		return 0, err
	}
	if err := c0.Send(1, bwTag, sbuf[:1]); err != nil {
		return 0, err
	}
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := c0.Recv(1, bwTag, rbuf); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(t0)
	if err := <-errc; err != nil {
		return 0, err
	}
	return float64(msgBytes) * float64(iters) / elapsed.Seconds() / 1e6, nil
}

// bestOf returns the maximum bandwidth over runs invocations of measure.
func bestOf(runs int, measure func() (float64, error)) (float64, error) {
	best := 0.0
	for i := 0; i < runs; i++ {
		bw, err := measure()
		if err != nil {
			return 0, err
		}
		if bw > best {
			best = bw
		}
	}
	return best, nil
}

// loopbackAddr reserves a rendezvous anchor on 127.0.0.1.
func loopbackAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// tcpPairBW builds a fresh p=2 loopback mesh with opts, measures the
// stream, and reports the sender's advertised port count alongside.
func tcpPairBW(opts tcp.Options, msgBytes, iters int) (float64, int, error) {
	addr, err := loopbackAddr()
	if err != nil {
		return 0, 0, err
	}
	procs := make([]*tcp.Proc, 2)
	errs := make([]error, 2)
	done := make(chan int, 2)
	for r := 0; r < 2; r++ {
		go func(r int) {
			procs[r], errs[r] = tcp.Rendezvous(r, 2, addr, opts)
			done <- r
		}(r)
	}
	<-done
	<-done
	defer func() {
		for _, pr := range procs {
			if pr != nil {
				pr.Close()
			}
		}
	}()
	for r, err := range errs {
		if err != nil {
			return 0, 0, fmt.Errorf("rank %d rendezvous: %w", r, err)
		}
	}
	bw, err := streamBW(procs[0], procs[1], msgBytes, iters)
	if err != nil {
		return 0, 0, err
	}
	loc, _ := procs[1].Locality(procs[1].Rank())
	return bw, loc.Ports, nil
}

// shmPairBW measures the shared-memory transport with rings sized so the
// payload streams through the big ring in a few refills.
func shmPairBW(msgBytes, iters int) (float64, error) {
	w := shm.NewWorldOpts(2, shm.Options{RingBytes: 256 << 10, BigBytes: 4 << 20})
	defer w.Close()
	return streamBW(w.Comm(0), w.Comm(1), msgBytes, iters)
}

// memPairBW measures the in-process reference transport (an upper bound:
// one copy, no wire format).
func memPairBW(msgBytes, iters int) (float64, error) {
	w := mem.NewWorld(2)
	defer w.Close()
	return streamBW(w.Comm(0), w.Comm(1), msgBytes, iters)
}

// measureTransportBW fills the transport-bandwidth metrics and the
// striping derivatives (speedups, tuned radix) on rep.
func (cfg Config) measureTransportBW(rep *HotpathReport) error {
	const stripes = 4
	const big, mid = 1 << 20, 256 << 10
	runs, bigIters, midIters := 3, 48, 96
	if cfg.Quick {
		runs, bigIters, midIters = 2, 12, 24
	}
	single := tcp.Options{Timeout: 30 * time.Second}
	striped := tcp.Options{Timeout: 30 * time.Second, Stripes: stripes, StripeThreshold: 64 << 10}

	var err error
	rep.Metrics.MemBW1MiBMBps, err = bestOf(runs, func() (float64, error) { return memPairBW(big, bigIters) })
	if err != nil {
		return fmt.Errorf("mem bw: %w", err)
	}
	rep.Metrics.ShmBW1MiBMBps, err = bestOf(runs, func() (float64, error) { return shmPairBW(big, bigIters) })
	if err != nil {
		return fmt.Errorf("shm bw: %w", err)
	}
	rep.Metrics.TCPBW256KiBMBps, err = bestOf(runs, func() (float64, error) {
		bw, _, err := tcpPairBW(single, mid, midIters)
		return bw, err
	})
	if err != nil {
		return fmt.Errorf("tcp bw 256KiB: %w", err)
	}
	rep.Metrics.TCPBW1MiBMBps, err = bestOf(runs, func() (float64, error) {
		bw, _, err := tcpPairBW(single, big, bigIters)
		return bw, err
	})
	if err != nil {
		return fmt.Errorf("tcp bw 1MiB: %w", err)
	}
	ports := 0
	rep.Metrics.TCPStripedBW256KiBMBps, err = bestOf(runs, func() (float64, error) {
		bw, pp, err := tcpPairBW(striped, mid, midIters)
		ports = pp
		return bw, err
	})
	if err != nil {
		return fmt.Errorf("striped tcp bw 256KiB: %w", err)
	}
	rep.Metrics.TCPStripedBW1MiBMBps, err = bestOf(runs, func() (float64, error) {
		bw, _, err := tcpPairBW(striped, big, bigIters)
		return bw, err
	})
	if err != nil {
		return fmt.Errorf("striped tcp bw 1MiB: %w", err)
	}

	rep.NumCPU = runtime.NumCPU()
	rep.StripeCount = stripes
	if rep.Metrics.TCPBW256KiBMBps > 0 {
		rep.StripeSpeedup256KiB = rep.Metrics.TCPStripedBW256KiBMBps / rep.Metrics.TCPBW256KiBMBps
	}
	if rep.Metrics.TCPBW1MiBMBps > 0 {
		rep.StripeSpeedup1MiB = rep.Metrics.TCPStripedBW1MiBMBps / rep.Metrics.TCPBW1MiBMBps
	}

	// The striped mesh advertises its connection count as Locality.Ports;
	// fed through the paper's guidelines (§VI-F) that port count becomes
	// the recursive-multiplying radix — tuned k tracks the stripe count.
	rep.TunedKAtStripes = recommendedAllreduceK(ports)
	return nil
}

// recommendedAllreduceK returns the allreduce radix the turnkey tuning
// table picks for a machine with the given NIC port count.
func recommendedAllreduceK(ports int) int {
	spec := machine.Spec{Name: "loopback-striped", Nodes: 2, PPN: 1, Ports: ports}
	tab := tuning.Recommended(spec, 8)
	for _, e := range tab.Ops[core.OpAllreduce.String()] {
		if e.Alg == "allreduce_recmul" {
			return e.K
		}
	}
	return 0
}
