package bench

import (
	"fmt"
	"net"
	"sync"
	"time"

	"exacoll/gca"
)

// Recovery measures the elastic lifecycle's end-to-end transition
// latencies over real loopback TCP — the wall-clock cost of each recovery
// primitive the chaos suite proves correct:
//
//   - grow_ms: admit one parked joiner into a p-rank world (journaled
//     transition open, ticket, plan broadcast, re-rendezvous, old-mesh
//     fence) until every rank holds the new session.
//   - compact_ms: one rank of the grown world dies without ceremony; the
//     series times the survivors' full arc — failure detection,
//     agreement, and a zero-joiner Grow that compacts the dead rank out
//     of a fresh epoch.
//   - rejoin_ms: a fresh incarnation re-enters through the anchor and the
//     world grows back to p+1.
//
// These are latency measurements over real sockets: run without -race,
// and read trends rather than absolute numbers.
func (cfg Config) Recovery() (*Figure, error) {
	ps := []int{2, 4, 8}
	iters := 3
	if cfg.Quick {
		ps = []int{2, 4}
		iters = 1
	}
	grid := &Grid{
		Title: "elastic recovery latency over loopback TCP: grow, dead-rank compaction, rejoin",
		XName: "ranks", YName: "wall_ms", Xs: ps,
	}
	grow := make([]float64, len(ps))
	compact := make([]float64, len(ps))
	rejoin := make([]float64, len(ps))
	for i, p := range ps {
		var bg, bc, br float64
		for it := 0; it < iters; it++ {
			g, c, r, err := recoveryLifecycle(p)
			if err != nil {
				return nil, fmt.Errorf("recovery p=%d: %w", p, err)
			}
			if it == 0 || g < bg {
				bg = g
			}
			if it == 0 || c < bc {
				bc = c
			}
			if it == 0 || r < br {
				br = r
			}
		}
		grow[i] = bg * 1e3
		compact[i] = bc * 1e3
		rejoin[i] = br * 1e3
	}
	if err := grid.AddSeries("grow_ms", grow); err != nil {
		return nil, err
	}
	if err := grid.AddSeries("compact_ms", compact); err != nil {
		return nil, err
	}
	if err := grid.AddSeries("rejoin_ms", rejoin); err != nil {
		return nil, err
	}
	return &Figure{
		ID:      "recovery",
		Caption: "elastic recovery latency: grow admission, dead-rank compaction, rejoin after death",
		Grids:   []*Grid{grid},
		Notes: []string{
			"real loopback TCP, best of repeated runs; each transition forms a brand-new mesh and fences the old epoch",
			"compact_ms includes failure detection (connection death) plus the survivors' agreement and zero-joiner Grow",
		},
	}, nil
}

// recoveryLifecycle drives one p-rank elastic world through grow -> kill ->
// compact -> rejoin and returns the three transition wall times in seconds.
func recoveryLifecycle(p int) (grow, compact, rejoin float64, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, 0, err
	}
	addr := ln.Addr().String()
	ln.Close()
	const timeout = 10 * time.Second

	comms := make([]*gca.ElasticComm, p)
	{
		errs := make([]error, p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				comms[r], errs[r] = gca.ConnectElastic(r, p, addr, 8, timeout)
			}(r)
		}
		wg.Wait()
		for r, e := range errs {
			if e != nil {
				return 0, 0, 0, fmt.Errorf("connect rank %d: %w", r, e)
			}
		}
	}
	var live []*gca.ElasticComm
	live = append(live, comms...)
	defer func() {
		for _, c := range live {
			c.Close()
		}
	}()
	opts := []gca.SessionOption{gca.WithFaultTolerance(), gca.WithTimeout(5 * time.Second)}
	sessions := make([]*gca.Session, p)
	for r := range sessions {
		sessions[r] = gca.NewSession(comms[r], opts...)
	}
	anchor := comms[0]

	// startJoin parks one outsider; waitPending blocks until it is queued
	// so the timed window measures the transition, not the joiner's dial.
	startJoin := func() chan *gca.ElasticComm {
		ch := make(chan *gca.ElasticComm, 1)
		go func() {
			m, e := gca.JoinElastic(addr, 30*time.Second)
			if e != nil {
				ch <- nil
				return
			}
			ch <- m
		}()
		return ch
	}
	waitPending := func(n int) error {
		for i := 0; i < 2000; i++ {
			if anchor.PendingJoins() >= n {
				return nil
			}
			time.Sleep(5 * time.Millisecond)
		}
		return fmt.Errorf("joiner never parked")
	}
	// growAll runs Grow collectively and returns the new world's sessions
	// (joiners collected from ch), indexed by rank.
	growAll := func(cur []*gca.Session, ch chan *gca.ElasticComm, want int) ([]*gca.Session, error) {
		next := make([]*gca.Session, want)
		errs := make([]error, len(cur))
		var mu sync.Mutex
		var wg sync.WaitGroup
		for i, s := range cur {
			wg.Add(1)
			go func(i int, s *gca.Session) {
				defer wg.Done()
				ns, e := s.Grow()
				if e != nil {
					errs[i] = e
					return
				}
				mu.Lock()
				next[ns.Rank()] = ns
				mu.Unlock()
			}(i, s)
		}
		for k := 0; k < want-len(cur); k++ {
			m := <-ch
			if m == nil {
				wg.Wait()
				return nil, fmt.Errorf("join failed")
			}
			live = append(live, m)
			next[m.Rank()] = gca.NewSession(m, opts...)
		}
		wg.Wait()
		for i, e := range errs {
			if e != nil {
				return nil, fmt.Errorf("grow rank %d: %w", i, e)
			}
		}
		return next, nil
	}

	// Transition 1: grow p -> p+1.
	ch := startJoin()
	if err := waitPending(1); err != nil {
		return 0, 0, 0, err
	}
	t0 := time.Now()
	grown, err := growAll(sessions, ch, p+1)
	if err != nil {
		return 0, 0, 0, err
	}
	grow = time.Since(t0).Seconds()

	// Transition 2: kill the grown rank, compact the world back to p. The
	// clock starts at the kill, so failure detection is part of the cost;
	// every survivor must have seen the death before the collective Grow,
	// or the agreement could plan a world containing the corpse.
	t1 := time.Now()
	gca.ElasticCommOf(grown[p]).Close()
	for _, s := range grown[:p] {
		m := gca.ElasticCommOf(s)
		for detected := false; !detected; {
			for _, f := range m.Failed() {
				if f == p {
					detected = true
					break
				}
			}
			if !detected {
				if time.Since(t1) > 10*time.Second {
					return 0, 0, 0, fmt.Errorf("death of rank %d never detected", p)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	compacted, err := growAll(grown[:p], nil, p)
	if err != nil {
		return 0, 0, 0, err
	}
	compact = time.Since(t1).Seconds()

	// Transition 3: a fresh incarnation rejoins, back to p+1.
	ch = startJoin()
	if err := waitPending(1); err != nil {
		return 0, 0, 0, err
	}
	t2 := time.Now()
	if _, err = growAll(compacted, ch, p+1); err != nil {
		return 0, 0, 0, err
	}
	rejoin = time.Since(t2).Seconds()
	return grow, compact, rejoin, nil
}
