package bench

import (
	"fmt"

	"exacoll/internal/core"
	"exacoll/internal/machine"
)

// Fig7 reproduces "Message Size vs. Slowdown, 128 Nodes w/ 1 or 8
// Process(es) Per Node on Frontier. Generalization does not result in
// slowdown": every generalized algorithm at its default radix (k=2 for
// k-nomial and recursive multiplying, k=1 for k-ring) is timed against the
// fixed-radix baseline it generalizes, and the ratio generalized/baseline
// is reported. Values ≈ 1.0 everywhere are the expected result.
func (cfg Config) Fig7() (*Figure, error) {
	fig := &Figure{
		ID: "fig7",
		Caption: "Message size vs. slowdown of generalized algorithms at " +
			"default radix (1.0 = no slowdown)",
		Notes: []string{
			fmt.Sprintf("1-PPN pairs at p=%d (1 rank/node); k-ring pairs at p=%d (8 PPN on %d nodes).",
				cfg.Nodes, cfg.PPNNodes*8, cfg.PPNNodes),
			"Allgather sweeps cap the per-rank size so p²·n fits single-host memory (see EXPERIMENTS.md).",
		},
	}

	type pair struct{ gen, base string }
	onePPN := []pair{
		{"bcast_knomial", "bcast_binomial"},
		{"reduce_knomial", "reduce_binomial"},
		{"bcast_recmul", "bcast_recdbl"},
		{"allgather_recmul", "allgather_recdbl"},
		{"allreduce_recmul", "allreduce_recdbl"},
	}
	eightPPN := []pair{
		{"bcast_kring", "bcast_ring"},
		{"allgather_kring", "allgather_ring"},
		{"allreduce_kring", "allreduce_ring"},
	}

	build := func(title string, spec machine.Spec, p int, pairs []pair, bigSizes, agSizes []int) (*Grid, error) {
		g := &Grid{Title: title, XName: "bytes", YName: "slowdown"}
		for _, n := range bigSizes {
			g.Xs = append(g.Xs, RoundSize(n))
		}
		agCap := agSizes[len(agSizes)-1]
		for _, pr := range pairs {
			genAlg, err := core.Lookup(pr.gen)
			if err != nil {
				return nil, err
			}
			genFn, op, err := AlgFn(pr.gen)
			if err != nil {
				return nil, err
			}
			baseFn, _, err := AlgFn(pr.base)
			if err != nil {
				return nil, err
			}
			ys := make([]float64, len(g.Xs))
			for i, n := range g.Xs {
				if op == core.OpAllgather && n > agCap {
					// Allgather result buffers are p·n per rank; hold the
					// last in-budget ratio rather than exceed memory.
					ys[i] = ys[i-1]
					continue
				}
				tg, err := SimLatency(spec, p, op, genFn, n, 0, genAlg.DefaultK)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", pr.gen, err)
				}
				tb, err := SimLatency(spec, p, op, baseFn, n, 0, 0)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", pr.base, err)
				}
				ys[i] = tg / tb
			}
			if err := g.AddSeries(pr.gen, ys); err != nil {
				return nil, err
			}
		}
		return g, nil
	}

	g1, err := build(
		fmt.Sprintf("fig7a: slowdown at default radix, %s, p=%d, 1 PPN", cfg.Frontier.Name, cfg.Nodes),
		cfg.Frontier.WithPPN(1), cfg.Nodes,
		onePPN, cfg.sizes(8, 4<<20), cfg.sizes(8, 8<<10))
	if err != nil {
		return nil, err
	}
	p8 := cfg.PPNNodes * 8
	g2, err := build(
		fmt.Sprintf("fig7b: slowdown at default radix, %s, p=%d, 8 PPN", cfg.Frontier.Name, p8),
		cfg.Frontier.WithPPN(8), p8,
		eightPPN, cfg.sizes(8, 1<<20), cfg.sizes(8, 4<<10))
	if err != nil {
		return nil, err
	}
	fig.Grids = []*Grid{g1, g2}
	return fig, nil
}

// Fig8 reproduces "Parameter Value (K) vs. Latency, 128 Nodes on
// Frontier": (a) k-nomial MPI_Reduce, (b) recursive multiplying
// MPI_Allreduce, (c) k-ring MPI_Bcast with 8 PPN. The expected shapes:
// (a) larger k wins for small messages, with the advantage eroding as the
// message grows; (b) k at or near 4 — the NIC port count — wins across
// sizes; (c) k = 8 — the PPN — wins for large messages.
func (cfg Config) Fig8() (*Figure, error) {
	p := cfg.Nodes
	fig := &Figure{
		ID:      "fig8",
		Caption: "Parameter value k vs. latency on Frontier (sim)",
		Notes: []string{
			fmt.Sprintf("(a)/(b): p=%d, 1 PPN. (c): p=%d (8 PPN on %d nodes).", p, cfg.PPNNodes*8, cfg.PPNNodes),
		},
	}

	ga, err := latencyOverK(cfg.Frontier.WithPPN(1), p, "reduce_knomial",
		cfg.ksweep(p, []int{2, 4, 8, 16, 32, 64, 128}),
		[]int{8, 1 << 10, 64 << 10, 1 << 20})
	if err != nil {
		return nil, err
	}
	ga.Title = "fig8a: " + ga.Title

	gb, err := latencyOverK(cfg.Frontier.WithPPN(1), p, "allreduce_recmul",
		cfg.ksweep(p, []int{2, 3, 4, 5, 6, 8, 12, 16}),
		[]int{8, 1 << 10, 64 << 10, 1 << 20})
	if err != nil {
		return nil, err
	}
	gb.Title = "fig8b: " + gb.Title

	p8 := cfg.PPNNodes * 8
	gc, err := latencyOverK(cfg.Frontier.WithPPN(8), p8, "bcast_kring",
		cfg.ksweep(p8, []int{1, 2, 4, 8, 16, 32}),
		[]int{64 << 10, 512 << 10, 4 << 20})
	if err != nil {
		return nil, err
	}
	gc.Title = "fig8c: " + gc.Title

	fig.Grids = []*Grid{ga, gb, gc}
	return fig, nil
}
