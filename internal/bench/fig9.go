package bench

import (
	"fmt"
	"math"

	"exacoll/internal/core"
)

// kCandidates returns the radix sweep per kernel used when searching for
// the optimal generalized configuration (Fig. 9's "optimal algorithm for
// each message size").
func (cfg Config) kCandidates(kernel core.Kernel, p int) []int {
	switch kernel {
	case core.KernelKnomial:
		return cfg.ksweep(p, []int{2, 4, 8, 16, 32, 64, 128})
	case core.KernelRecMul:
		return cfg.ksweep(p, []int{2, 3, 4, 5, 8, 16})
	case core.KernelKRing:
		return cfg.ksweep(p, []int{2, 4, 8, 16})
	}
	return []int{2}
}

// Fig9 reproduces "Message Size vs. Speedup": for each collective, the
// best generalized (algorithm, k) per message size against two baselines —
// the default-radix version of the winning kernel (the "generalization
// alone" speedup, the paper's dark green line) and the vendor selection
// (the red line). Expected shapes: Reduce starts >2× and erodes, with the
// vendor line spiking >4.5× at large sizes; Bcast shows modest small-size
// speedups and recursive-multiplying wins for large; Allgather sustains
// 1.4–2×; Allreduce sustains 1.2–1.8× with k≈4 winning.
func (cfg Config) Fig9() (*Figure, error) {
	p := cfg.Nodes
	spec := cfg.Frontier.WithPPN(1)
	fig := &Figure{
		ID:      "fig9",
		Caption: fmt.Sprintf("Message size vs. speedup of best generalized algorithm, %s, p=%d, 1 PPN", spec.Name, p),
		Notes: []string{
			"speedup_vs_default = default-radix latency / best generalized latency (generalization alone).",
			"speedup_vs_vendor = vendor-selection latency / best generalized latency.",
			"winner series encodes the chosen algorithm: see the companion .winners.tsv.",
		},
	}

	sub := []struct {
		id    string
		op    core.CollOp
		sizes []int
	}{
		{"fig9a_reduce", core.OpReduce, cfg.sizes(8, 4<<20)},
		{"fig9b_bcast", core.OpBcast, cfg.sizes(8, 4<<20)},
		{"fig9c_allgather", core.OpAllgather, cfg.sizes(8, 16<<10)},
		{"fig9d_allreduce", core.OpAllreduce, cfg.sizes(8, 4<<20)},
	}

	for _, s := range sub {
		g := &Grid{
			Title: fmt.Sprintf("%s: speedup over baselines, %s p=%d", s.id, spec.Name, p),
			XName: "bytes", YName: "speedup",
		}
		for _, n := range s.sizes {
			g.Xs = append(g.Xs, RoundSize(n))
		}
		vsDefault := make([]float64, len(g.Xs))
		vsVendor := make([]float64, len(g.Xs))
		winners := make([]string, len(g.Xs))

		for i, n := range g.Xs {
			bestT := math.Inf(1)
			var bestAlg *core.Algorithm
			bestK := 0
			for _, alg := range core.TableIAlgorithms() {
				if alg.Op != s.op {
					continue
				}
				for _, k := range cfg.kCandidates(alg.Kernel, p) {
					t, err := SimLatency(spec, p, s.op, alg.Run, n, 0, k)
					if err != nil {
						return nil, fmt.Errorf("%s %s k=%d n=%d: %w", s.id, alg.Name, k, n, err)
					}
					if t < bestT {
						bestT, bestAlg, bestK = t, alg, k
					}
				}
			}
			winners[i] = fmt.Sprintf("%s k=%d", bestAlg.Name, bestK)

			// Default-radix baseline: the winning kernel's fixed-radix
			// ancestor, or the winner itself at its default k.
			var defT float64
			if bestAlg.Baseline != "" {
				base, err := core.Lookup(bestAlg.Baseline)
				if err != nil {
					return nil, err
				}
				if !base.Pow2Only || isPow2(p) {
					t, err := SimLatency(spec, p, s.op, base.Run, n, 0, 0)
					if err != nil {
						return nil, fmt.Errorf("%s baseline %s: %w", s.id, base.Name, err)
					}
					defT = t
				}
			}
			if defT == 0 {
				t, err := SimLatency(spec, p, s.op, bestAlg.Run, n, 0, bestAlg.DefaultK)
				if err != nil {
					return nil, err
				}
				defT = t
			}

			vend := vendorSeries(s.op)
			venT, err := SimLatency(spec, p, s.op, vend.Fn, n, 0, 0)
			if err != nil {
				return nil, fmt.Errorf("%s vendor: %w", s.id, err)
			}
			vsDefault[i] = defT / bestT
			vsVendor[i] = venT / bestT
		}
		if err := g.AddSeries("speedup_vs_default", vsDefault); err != nil {
			return nil, err
		}
		if err := g.AddSeries("speedup_vs_vendor", vsVendor); err != nil {
			return nil, err
		}
		for i, w := range winners {
			fig.Notes = append(fig.Notes, fmt.Sprintf("%s %dB winner: %s", s.id, g.Xs[i], w))
		}
		fig.Grids = append(fig.Grids, g)
	}
	return fig, nil
}

func isPow2(p int) bool { return p > 0 && p&(p-1) == 0 }
