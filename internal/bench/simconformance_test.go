package bench

import (
	"bytes"
	"fmt"
	"testing"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
	"exacoll/internal/machine"
	"exacoll/internal/simnet"
)

// TestSimConformance runs every registered algorithm on the simulator
// substrate and verifies the collective's *data* result — the simulator
// moves real payloads, so it must be exactly as correct as the real
// transports (DESIGN.md §5.1's "one algorithm body, three substrates").
func TestSimConformance(t *testing.T) {
	spec := machine.Testbox() // 4 PPN, heterogeneous links
	for _, alg := range core.Algorithms(-1) {
		alg := alg
		t.Run(alg.Name, func(t *testing.T) {
			for _, p := range []int{3, 8, 13} {
				if alg.Pow2Only && p&(p-1) != 0 {
					continue
				}
				for _, k := range []int{2, 3, 5} {
					if !alg.Generalized && k != 2 {
						continue
					}
					p, k := p, k
					n := 96
					root := p - 1
					sim, err := simnet.New(spec, p)
					if err != nil {
						t.Fatal(err)
					}
					err = sim.Run(func(c comm.Comm) error {
						return checkSimCollective(c, alg, n, root, k)
					})
					if err != nil {
						t.Fatalf("p=%d k=%d: %v", p, k, err)
					}
					if sim.MaxTime() <= 0 {
						t.Fatalf("p=%d k=%d: no virtual time elapsed", p, k)
					}
				}
			}
		})
	}
}

// checkSimCollective runs one collective with MakeArgs inputs and checks
// the result against a locally computed expectation.
func checkSimCollective(c comm.Comm, alg *core.Algorithm, n, root, k int) error {
	p := c.Size()
	me := c.Rank()
	a := MakeArgs(alg.Op, me, p, n, root, k)
	if err := alg.Run(c, a); err != nil {
		return err
	}
	switch alg.Op {
	case core.OpBcast:
		want := MakeArgs(alg.Op, root, p, n, root, k).SendBuf
		if !bytes.Equal(a.SendBuf, want) {
			return fmt.Errorf("bcast mismatch at rank %d", me)
		}
	case core.OpReduce, core.OpAllreduce:
		if alg.Op == core.OpReduce && me != root {
			return nil
		}
		want := make([]float64, n/8)
		for r := 0; r < p; r++ {
			in := datatype.DecodeFloat64(MakeArgs(alg.Op, r, p, n, root, k).SendBuf)
			for i := range want {
				want[i] += in[i]
			}
		}
		got := datatype.DecodeFloat64(a.RecvBuf)
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("%v elem %d = %g, want %g (rank %d)", alg.Op, i, got[i], want[i], me)
			}
		}
	case core.OpGather, core.OpAllgather:
		if alg.Op == core.OpGather && me != root {
			return nil
		}
		for r := 0; r < p; r++ {
			want := MakeArgs(alg.Op, r, p, n, root, k).SendBuf
			if !bytes.Equal(a.RecvBuf[r*n:(r+1)*n], want) {
				return fmt.Errorf("%v block %d mismatch at rank %d", alg.Op, r, me)
			}
		}
	case core.OpScatter:
		want := MakeArgs(alg.Op, root, p, n, root, k).SendBuf[me*n : (me+1)*n]
		if !bytes.Equal(a.RecvBuf, want) {
			return fmt.Errorf("scatter mismatch at rank %d", me)
		}
	case core.OpReduceScatter:
		sum := make([]float64, n/8)
		for r := 0; r < p; r++ {
			in := datatype.DecodeFloat64(MakeArgs(alg.Op, r, p, n, root, k).SendBuf)
			for i := range sum {
				sum[i] += in[i]
			}
		}
		off, sz := core.FairLayoutAligned(n, p, 8)(me)
		want := datatype.EncodeFloat64(sum)[off : off+sz]
		if !bytes.Equal(a.RecvBuf, want) {
			return fmt.Errorf("reduce-scatter mismatch at rank %d", me)
		}
	case core.OpAlltoall:
		for src := 0; src < p; src++ {
			want := MakeArgs(alg.Op, src, p, n, root, k).SendBuf[me*n : (me+1)*n]
			if !bytes.Equal(a.RecvBuf[src*n:(src+1)*n], want) {
				return fmt.Errorf("alltoall block from %d wrong at rank %d", src, me)
			}
		}
	case core.OpScan:
		want := make([]float64, n/8)
		for r := 0; r <= me; r++ {
			in := datatype.DecodeFloat64(MakeArgs(alg.Op, r, p, n, root, k).SendBuf)
			for i := range want {
				want[i] += in[i]
			}
		}
		if !bytes.Equal(a.RecvBuf, datatype.EncodeFloat64(want)) {
			return fmt.Errorf("scan mismatch at rank %d", me)
		}
	case core.OpAllgatherv:
		pos := 0
		for r := 0; r < p; r++ {
			want := MakeArgs(alg.Op, r, p, n, root, k).SendBuf
			if !bytes.Equal(a.RecvBuf[pos:pos+len(want)], want) {
				return fmt.Errorf("allgatherv block %d mismatch at rank %d", r, me)
			}
			pos += len(want)
		}
	case core.OpReduceScatterv:
		// MakeArgs payloads are raw byte patterns reinterpreted as float64,
		// so their sums round — the expectation must reproduce the ring's
		// association, not natural rank order: block r accumulates along
		// the reversed ring chain r-1, r-2, ..., r+1, owner folded in last
		// (IEEE addition is commutative, so local-vs-incoming operand order
		// doesn't matter, but the grouping does). The mem/shm/tcp suites
		// use exactly-summing integer-valued vectors instead.
		inputs := make([][]float64, p)
		for r := 0; r < p; r++ {
			inputs[r] = datatype.DecodeFloat64(MakeArgs(alg.Op, r, p, n, root, k).SendBuf)
		}
		off := 0
		for r := 0; r < me; r++ {
			off += a.Counts[r]
		}
		offE, elems := off/8, a.Counts[me]/8
		want := make([]float64, elems)
		copy(want, inputs[(me-1+p)%p][offE:offE+elems])
		for j := 2; j <= p; j++ {
			q := (me - j + p) % p
			for i := range want {
				want[i] = inputs[q][offE+i] + want[i]
			}
		}
		if !bytes.Equal(a.RecvBuf, datatype.EncodeFloat64(want)) {
			return fmt.Errorf("reduce-scatterv mismatch at rank %d", me)
		}
	case core.OpAlltoallv:
		pos := 0
		for src := 0; src < p; src++ {
			srcSend := MakeArgs(alg.Op, src, p, n, root, k).SendBuf
			srcOff := 0
			for q := 0; q < me; q++ {
				srcOff += a.Counts[src*p+q]
			}
			sz := a.Counts[src*p+me]
			if !bytes.Equal(a.RecvBuf[pos:pos+sz], srcSend[srcOff:srcOff+sz]) {
				return fmt.Errorf("alltoallv block from %d wrong at rank %d", src, me)
			}
			pos += sz
		}
	}
	return nil
}

// TestSimDispersedConformance repeats a slice of the conformance suite
// under dispersed placement — timing must change but data must not.
func TestSimDispersedConformance(t *testing.T) {
	spec := machine.Testbox().WithPlacement(machine.PlaceDispersed)
	names := []string{"allreduce_kring", "bcast_kring", "allgather_recmul", "reduce_knomial"}
	for _, name := range names {
		alg, err := core.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := simnet.New(spec, 12)
		if err != nil {
			t.Fatal(err)
		}
		err = sim.Run(func(c comm.Comm) error {
			return checkSimCollective(c, alg, 64, 0, 3)
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestVendorSimLatencyOrdering checks the calibrated vendor behaviour
// Fig. 9a depends on: for large-message Reduce at the paper's 128-rank
// configuration, the vendor's flat algorithm is clearly slower than the
// generalized k-nomial tree (~2.2x on the simulator at p=128, growing
// with p; the paper measured >4.5x — see EXPERIMENTS.md on magnitude).
func TestVendorSimLatencyOrdering(t *testing.T) {
	spec := machine.Frontier()
	p := 128
	n := 1 << 20
	knomial, op, err := AlgFn("reduce_knomial")
	if err != nil {
		t.Fatal(err)
	}
	best, err := SimLatency(spec, p, op, knomial, n, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	vend := vendorSeries(op)
	vt, err := SimLatency(spec, p, op, vend.Fn, n, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := vt / best; ratio < 1.8 {
		t.Errorf("vendor large reduce only %.2fx slower than k-nomial; Fig 9a needs a clear spike", ratio)
	}
	// And for small messages the vendor matches binomial (no spike),
	// per the paper's small-message observation.
	vSmall, err := SimLatency(spec, p, op, vend.Fn, 64, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	bin, _, err := AlgFn("reduce_binomial")
	if err != nil {
		t.Fatal(err)
	}
	bSmall, err := SimLatency(spec, p, op, bin, 64, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if vSmall != bSmall {
		t.Errorf("small-message vendor reduce (%g) should equal binomial (%g)", vSmall, bSmall)
	}
}
