package bench

import (
	"bytes"
	"strings"
	"testing"

	"exacoll/internal/core"
	"exacoll/internal/machine"
)

// TestSimLatencyBasics checks the harness end to end on a small machine.
func TestSimLatencyBasics(t *testing.T) {
	fn, op, err := AlgFn("bcast_binomial")
	if err != nil {
		t.Fatal(err)
	}
	spec := machine.Frontier()
	t1, err := SimLatency(spec, 16, op, fn, 1024, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if t1 <= 0 {
		t.Fatalf("latency = %g", t1)
	}
	// Determinism through the harness.
	t2, err := SimLatency(spec, 16, op, fn, 1024, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatalf("nondeterministic harness: %g vs %g", t1, t2)
	}
	// More ranks cannot be faster for the same bcast.
	t3, err := SimLatency(spec, 64, op, fn, 1024, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if t3 < t1 {
		t.Errorf("p=64 bcast (%g) faster than p=16 (%g)", t3, t1)
	}
}

// TestShapeKnomialSmallMessages asserts §VI-C2's k-nomial finding on the
// simulator: for small-message Reduce, a large radix beats the binomial
// radix, and for large messages the advantage erodes (§III-D).
func TestShapeKnomialSmallMessages(t *testing.T) {
	spec := machine.Frontier() // 1 PPN
	p := 64
	fn, op, err := AlgFn("reduce_knomial")
	if err != nil {
		t.Fatal(err)
	}
	lat := func(n, k int) float64 {
		v, err := SimLatency(spec, p, op, fn, n, 0, k)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", n, k, err)
		}
		return v
	}
	if k2, k16 := lat(8, 2), lat(8, 16); k16 >= k2 {
		t.Errorf("small reduce: k=16 (%g) should beat k=2 (%g)", k16, k2)
	}
	// Large messages: the advantage of the maximal radix (k=p, the
	// flattest tree) must shrink relative to tiny messages — the paper's
	// eroding speedup as bandwidth terms take over.
	small := lat(8, 2) / lat(8, p)
	large := lat(1<<20, 2) / lat(1<<20, p)
	if large >= small {
		t.Errorf("k=p advantage should erode with size: small ratio %g, large ratio %g", small, large)
	}
}

// TestShapeRecMulPortBound asserts §VI-C2's recursive multiplying finding:
// on a 4-port machine, k near the port count beats both k=2 and very
// large k for allreduce.
func TestShapeRecMulPortBound(t *testing.T) {
	spec := machine.Frontier() // 4 ports, 1 PPN
	p := 64
	fn, op, err := AlgFn("allreduce_recmul")
	if err != nil {
		t.Fatal(err)
	}
	lat := func(n, k int) float64 {
		v, err := SimLatency(spec, p, op, fn, n, 0, k)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", n, k, err)
		}
		return v
	}
	n := 64 << 10
	k4 := lat(n, 4)
	if k2 := lat(n, 2); k4 >= k2 {
		t.Errorf("allreduce 64KB: k=4 (%g) should beat k=2 (%g)", k4, k2)
	}
	if k16 := lat(n, 16); k4 >= k16 {
		t.Errorf("allreduce 64KB: k=4 (%g) should beat k=16 (%g) — ports cap overlap", k4, k16)
	}
}

// TestShapeKRingPPN asserts §VI-C2's k-ring finding: with 8 PPN and
// contiguous placement, k = PPN makes intra-group rounds intranode and
// beats the classic ring (k=1) for large bcast; and under dispersed
// placement the advantage collapses (§VI-C3's explanation for k-ring
// losing at system scale).
func TestShapeKRingPPN(t *testing.T) {
	spec := machine.Frontier().WithPPN(8)
	p := 64 // 8 nodes x 8 PPN
	fn, op, err := AlgFn("bcast_kring")
	if err != nil {
		t.Fatal(err)
	}
	n := 1 << 20
	lat := func(s machine.Spec, k int) float64 {
		v, err := SimLatency(s, p, op, fn, n, 0, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		return v
	}
	ring := lat(spec, 1)
	k8 := lat(spec, 8)
	if k8 >= ring {
		t.Errorf("large bcast, 8 PPN: k-ring k=8 (%g) should beat ring (%g)", k8, ring)
	}
	// Dispersed placement: intra-groups span nodes, advantage collapses.
	disp := spec.WithPlacement(machine.PlaceDispersed)
	ringD := lat(disp, 1)
	k8D := lat(disp, 8)
	if k8D < 0.8*ringD {
		t.Errorf("dispersed placement: k-ring k=8 (%g) should not retain a large advantage over ring (%g)", k8D, ringD)
	}
}

// TestShapeGeneralizationNoSlowdown asserts Fig. 7's claim: generalized
// algorithms at default radix are within a few percent of their baselines.
func TestShapeGeneralizationNoSlowdown(t *testing.T) {
	spec := machine.Frontier()
	p := 32
	pairs := [][2]string{
		{"bcast_knomial", "bcast_binomial"},
		{"reduce_knomial", "reduce_binomial"},
		{"allreduce_recmul", "allreduce_recdbl"},
		{"allgather_recmul", "allgather_recdbl"},
	}
	for _, pr := range pairs {
		genAlg, err := core.Lookup(pr[0])
		if err != nil {
			t.Fatal(err)
		}
		genFn, op, err := AlgFn(pr[0])
		if err != nil {
			t.Fatal(err)
		}
		baseFn, _, err := AlgFn(pr[1])
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{8, 4096, 1 << 18} {
			tg, err := SimLatency(spec, p, op, genFn, n, 0, genAlg.DefaultK)
			if err != nil {
				t.Fatalf("%s: %v", pr[0], err)
			}
			tb, err := SimLatency(spec, p, op, baseFn, n, 0, 0)
			if err != nil {
				t.Fatalf("%s: %v", pr[1], err)
			}
			if ratio := tg / tb; ratio > 1.10 {
				t.Errorf("%s at n=%d: slowdown %.3f over %s (want <= 1.10)", pr[0], n, ratio, pr[1])
			}
		}
	}
}

// TestQuickFigures smoke-tests every figure builder end to end at reduced
// scale and checks the emitted TSV is well formed.
func TestQuickFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test is not short")
	}
	cfg := QuickConfig()
	figs := []func() (*Figure, error){cfg.Fig7, cfg.Fig8, cfg.Fig9, cfg.Fig10, cfg.Fig11, cfg.VColl}
	for _, f := range figs {
		fig, err := f()
		if err != nil {
			t.Fatal(err)
		}
		if len(fig.Grids) == 0 {
			t.Fatalf("%s: no grids", fig.ID)
		}
		for _, g := range fig.Grids {
			var buf bytes.Buffer
			if err := g.WriteTSV(&buf); err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
			if len(lines) != len(g.Xs)+2 {
				t.Errorf("%s: TSV has %d lines, want %d", g.Title, len(lines), len(g.Xs)+2)
			}
			var ascii bytes.Buffer
			if err := g.RenderASCII(&ascii); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestTable1 checks the Table I rendering covers the paper's 10
// generalized algorithms.
func TestTable1(t *testing.T) {
	got := Table1()
	for _, want := range []string{
		"k-nomial", "recursive-multiplying", "k-ring",
		"MPI_Bcast", "MPI_Reduce", "MPI_Allgather", "MPI_Allreduce",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Table1 missing %q:\n%s", want, got)
		}
	}
	count := 0
	for _, alg := range core.TableIAlgorithms() {
		switch alg.Op {
		case core.OpBcast, core.OpReduce, core.OpAllgather, core.OpAllreduce:
			count++
		}
	}
	if count != 10 {
		t.Errorf("Table I inventory: %d generalized algorithms, want the paper's 10", count)
	}
}

// TestGridBestSeries checks the per-size winner extraction.
func TestGridBestSeries(t *testing.T) {
	g := &Grid{Xs: []int{1, 2}}
	if err := g.AddSeries("a", []float64{1.0, 5.0}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddSeries("b", []float64{2.0, 3.0}); err != nil {
		t.Fatal(err)
	}
	names, vals := g.BestSeries()
	if names[0] != "a" || names[1] != "b" || vals[0] != 1.0 || vals[1] != 3.0 {
		t.Errorf("BestSeries = %v %v", names, vals)
	}
	if err := g.AddSeries("short", []float64{1}); err == nil {
		t.Error("want length-mismatch error")
	}
}
