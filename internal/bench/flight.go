package bench

import (
	"fmt"
	"os"

	"exacoll/internal/comm"
	"exacoll/internal/flight"
	"exacoll/internal/transport/mem"
)

// The flight-recorder overhead gate: the recorder claims to be cheap
// enough to leave on in production, so this benchmark measures the 4 KiB
// recursive-doubling allreduce on the mem transport bare and wrapped, and
// fails when recording costs more than a few percent of latency or any
// allocations. Bare and recorded runs interleave round-robin and the
// minimum per-variant wins, so ambient machine noise (which inflates both
// variants alike) cannot flake the ratio.
//
// The harness (measureCollective) pins GOMAXPROCS to 1, so all p rank
// goroutines timeshare one scheduler proc and the recorded−bare delta is
// the SUM of every rank's recording cost — deterministic, but p times
// what any single rank pays. The deployment model is one rank per core
// (the MPI process model every substrate mimics), where ranks record in
// parallel and the latency a rank observes grows by its own share only.
// The gated ratio therefore charges the per-rank share, delta/p, against
// the bare latency; the raw serialized delta is reported alongside.

// FlightMetrics are the measured values (BENCH_flight.json).
type FlightMetrics struct {
	BareNsOp     float64 `json:"bare_ns_op"`
	RecordedNsOp float64 `json:"recorded_ns_op"`
	// SerialOverheadNs is recorded − bare on the single-proc harness: the
	// summed recording cost of all p ranks for one whole-communicator op.
	SerialOverheadNs float64 `json:"serial_overhead_ns"`
	// PerRankOverheadNs is SerialOverheadNs / p — what one rank adds to
	// the op's latency when ranks run on their own cores.
	PerRankOverheadNs float64 `json:"per_rank_overhead_ns"`
	// OverheadRatio is (bare + per-rank overhead) / bare, the gated value.
	OverheadRatio    float64 `json:"overhead_ratio"`
	BareAllocsOp     float64 `json:"bare_allocs_op"`
	RecordedAllocsOp float64 `json:"recorded_allocs_op"`
	AllocDeltaOp     float64 `json:"alloc_delta_op"`
	// DumpEvents counts the events in the sample dump's rings (all ranks).
	DumpEvents int `json:"dump_events"`
}

// FlightReport is the machine-readable gate result.
type FlightReport struct {
	ID       string        `json:"id"`
	Caption  string        `json:"caption"`
	P        int           `json:"p"`
	Metrics  FlightMetrics `json:"metrics"`
	Failures []string      `json:"failures,omitempty"`
	Pass     bool          `json:"pass"`
}

// maxFlightOverheadRatio is the acceptance bar: recording adds under 3%
// latency on the 4 KiB allreduce hot path.
const maxFlightOverheadRatio = 1.03

// FlightOverhead measures the recorder's hot-path cost and writes a
// sample dump (collected from the recorded world) to dumpPath ("" skips
// it) — the artifact CI uploads so a gate failure ships its evidence.
func (cfg Config) FlightOverhead(dumpPath string) (*FlightReport, error) {
	const p, collBytes = 8, 4 << 10
	iters, rounds := 1000, 5
	if cfg.Quick {
		iters, rounds = 200, 3
	}

	rep := &FlightReport{
		ID: "flight",
		Caption: fmt.Sprintf(
			"flight-recorder overhead: %d B recursive-doubling allreduce on mem, p=%d, best of %d interleaved rounds",
			collBytes, p, rounds),
		P: p,
	}

	w := mem.NewWorld(p)
	lw := newHotpathLockstep(w, p)
	defer lw.close()

	rec := flight.NewRecorder(flight.Options{})
	wrapped := make([]comm.Comm, p)
	for r := 0; r < p; r++ {
		wrapped[r] = rec.Wrap(w.Comm(r))
	}

	mkFns := func(use func(r int) comm.Comm) []func(c comm.Comm) error {
		fns := make([]func(c comm.Comm) error, p)
		for r := 0; r < p; r++ {
			cc := use(r)
			sb := make([]byte, collBytes)
			rb := make([]byte, collBytes)
			fns[r] = func(comm.Comm) error { return hotpathAllreduce(cc, sb, rb) }
		}
		return fns
	}
	bareFns := mkFns(func(r int) comm.Comm { return w.Comm(r) })
	recFns := mkFns(func(r int) comm.Comm { return wrapped[r] })

	best := func(cur, ns float64) float64 {
		if cur == 0 || ns < cur {
			return ns
		}
		return cur
	}
	for i := 0; i < rounds; i++ {
		ns, allocs, err := measureCollective(lw, bareFns, iters)
		if err != nil {
			return nil, fmt.Errorf("flight bare allreduce: %w", err)
		}
		rep.Metrics.BareNsOp = best(rep.Metrics.BareNsOp, ns)
		if i == 0 || allocs < rep.Metrics.BareAllocsOp {
			rep.Metrics.BareAllocsOp = allocs
		}
		ns, allocs, err = measureCollective(lw, recFns, iters)
		if err != nil {
			return nil, fmt.Errorf("flight recorded allreduce: %w", err)
		}
		rep.Metrics.RecordedNsOp = best(rep.Metrics.RecordedNsOp, ns)
		if i == 0 || allocs < rep.Metrics.RecordedAllocsOp {
			rep.Metrics.RecordedAllocsOp = allocs
		}
	}
	rep.Metrics.SerialOverheadNs = rep.Metrics.RecordedNsOp - rep.Metrics.BareNsOp
	if rep.Metrics.SerialOverheadNs < 0 {
		rep.Metrics.SerialOverheadNs = 0
	}
	rep.Metrics.PerRankOverheadNs = rep.Metrics.SerialOverheadNs / p
	rep.Metrics.OverheadRatio = 1 + rep.Metrics.PerRankOverheadNs/rep.Metrics.BareNsOp
	rep.Metrics.AllocDeltaOp = rep.Metrics.RecordedAllocsOp - rep.Metrics.BareAllocsOp

	// Collect the rings the recorded runs filled — both the sample
	// artifact and proof the recorder captured the traffic it claims to.
	dump, err := collectFlightDump(lw, wrapped)
	if err != nil {
		return nil, err
	}
	for _, rd := range dump.Ranks {
		rep.Metrics.DumpEvents += len(rd.Events)
	}
	if dumpPath != "" {
		f, err := os.Create(dumpPath)
		if err != nil {
			return nil, err
		}
		if err := dump.WriteJSON(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}

	rep.Failures = flightGate(rep)
	rep.Pass = len(rep.Failures) == 0
	return rep, nil
}

// collectFlightDump runs the collective collection protocol on the
// lockstep goroutines (each rank's ring must be snapshotted by the
// goroutine that owns it) and returns rank 0's merged dump.
func collectFlightDump(lw *hotpathLockstep, wrapped []comm.Comm) (*flight.Dump, error) {
	var dump *flight.Dump
	fns := make([]func(c comm.Comm) error, len(wrapped))
	for r := range wrapped {
		cc := wrapped[r]
		isRoot := r == 0
		fns[r] = func(comm.Comm) error {
			d, err := flight.Collect(cc, flight.RecorderOf(cc), flight.CollectOptions{})
			if err != nil {
				return err
			}
			if isRoot {
				dump = d
			}
			return nil
		}
	}
	if err := lw.run(fns); err != nil {
		return nil, fmt.Errorf("flight collect: %w", err)
	}
	if dump == nil {
		return nil, fmt.Errorf("flight collect: no dump on rank 0")
	}
	return dump, nil
}

// flightGate applies the overhead acceptance bars. The latency ratio and
// the allocation delta are both machine-relative, so they hold on noisy
// CI runners where absolute thresholds would not.
func flightGate(rep *FlightReport) []string {
	var fails []string
	if rep.Metrics.OverheadRatio >= maxFlightOverheadRatio {
		fails = append(fails, fmt.Sprintf(
			"recording adds %.3fx to per-rank allreduce latency (%.0f ns over %.0f ns bare), want < %.2fx",
			rep.Metrics.OverheadRatio, rep.Metrics.PerRankOverheadNs, rep.Metrics.BareNsOp,
			maxFlightOverheadRatio))
	}
	if rep.Metrics.AllocDeltaOp > 0 {
		fails = append(fails, fmt.Sprintf(
			"recording adds %.0f allocs/op (bare %.0f, recorded %.0f), want 0",
			rep.Metrics.AllocDeltaOp, rep.Metrics.BareAllocsOp, rep.Metrics.RecordedAllocsOp))
	}
	if rep.Metrics.DumpEvents == 0 {
		fails = append(fails, "sample dump contains no events")
	}
	return fails
}
