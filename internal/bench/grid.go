package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Grid holds one figure's data: a swept x axis and one y series per line.
type Grid struct {
	// Title names the figure (e.g. "fig8b: recursive multiplying
	// MPI_Allreduce, 128 nodes, frontier").
	Title string
	// XName labels the x axis ("bytes" or "k").
	XName string
	// YName labels the y axis ("latency_us" or "speedup").
	YName string
	// Xs are the swept x values.
	Xs []int
	// Series are the lines.
	Series []Series
}

// Series is one line of a figure.
type Series struct {
	Name string
	Ys   []float64
}

// AddSeries appends a line; its length must match Xs.
func (g *Grid) AddSeries(name string, ys []float64) error {
	if len(ys) != len(g.Xs) {
		return fmt.Errorf("bench: series %q has %d points, want %d", name, len(ys), len(g.Xs))
	}
	g.Series = append(g.Series, Series{Name: name, Ys: ys})
	return nil
}

// WriteTSV emits the grid as a tab-separated table with a header row, the
// format EXPERIMENTS.md records and plotting tools consume.
func (g *Grid) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", g.Title); err != nil {
		return err
	}
	header := []string{g.XName}
	for _, s := range g.Series {
		header = append(header, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, "\t")); err != nil {
		return err
	}
	for i, x := range g.Xs {
		row := []string{fmt.Sprintf("%d", x)}
		for _, s := range g.Series {
			row = append(row, fmt.Sprintf("%.6g", s.Ys[i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// RenderASCII draws a compact log-scale chart for terminal inspection: one
// row per x value, one column block per series, with a bar proportional to
// log(y/min). It is intentionally crude — the TSV is the real artifact.
func (g *Grid) RenderASCII(w io.Writer) error {
	if len(g.Series) == 0 || len(g.Xs) == 0 {
		_, err := fmt.Fprintf(w, "%s: (empty)\n", g.Title)
		return err
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, s := range g.Series {
		for _, y := range s.Ys {
			if y > 0 {
				min = math.Min(min, y)
				max = math.Max(max, y)
			}
		}
	}
	if math.IsInf(min, 1) {
		min, max = 1, 1
	}
	span := math.Log(max/min) + 1e-12
	const width = 40
	if _, err := fmt.Fprintf(w, "%s  [%s vs %s]\n", g.Title, g.YName, g.XName); err != nil {
		return err
	}
	for si, s := range g.Series {
		if _, err := fmt.Fprintf(w, "  series %c = %s\n", 'A'+si, s.Name); err != nil {
			return err
		}
	}
	for i, x := range g.Xs {
		for si, s := range g.Series {
			y := s.Ys[i]
			bar := 0
			if y > 0 {
				bar = int(math.Log(y/min) / span * float64(width))
			}
			if _, err := fmt.Fprintf(w, "%10d %c |%s %.4g\n", x, 'A'+si,
				strings.Repeat("#", bar), y); err != nil {
				return err
			}
		}
		if i < len(g.Xs)-1 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// BestSeries returns, per x index, the name and value of the minimum
// (lower-is-better) series — used to pick "optimal algorithm per message
// size" in Fig. 9.
func (g *Grid) BestSeries() ([]string, []float64) {
	names := make([]string, len(g.Xs))
	vals := make([]float64, len(g.Xs))
	for i := range g.Xs {
		best := math.Inf(1)
		for _, s := range g.Series {
			if s.Ys[i] < best {
				best = s.Ys[i]
				names[i] = s.Name
				vals[i] = s.Ys[i]
			}
		}
	}
	return names, vals
}
