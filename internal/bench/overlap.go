package bench

import (
	"fmt"
	"time"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
	"exacoll/internal/nbc"
	"exacoll/internal/transport/mem"
	"exacoll/internal/tuning"
)

// Overlap measures what nonblocking collectives buy a data-parallel
// training loop on the in-process transport (wall clock): per step, every
// rank runs a "device compute" phase — modeled as CPU-idle kernel time,
// the way a GPU computes gradients while the host drives communication —
// and allreduces the previous step's gradient. The blocking variant
// serializes compute then Allreduce, paying the straggler bound plus the
// full communication tail every step; the pipelined variant starts an
// IAllreduce and hides it under the next step's compute (lag-1 gradient
// pipelining, polling Test between kernel slices — the MPI_Test progress
// idiom). The compute imbalance is out of phase across ranks (rank r's
// step-s phase lasts 1+((r+s) mod p) units), so total compute per rank is
// identical in both variants while every step has a rotating straggler.
func (cfg Config) Overlap() (*Figure, error) {
	p, steps := 6, 10
	sizes := []int{64 << 10, 512 << 10}
	if cfg.Quick {
		p, steps = 4, 6
		sizes = []int{64 << 10}
	}
	tab := &tuning.Table{Machine: "bench", Ops: map[string][]tuning.Entry{
		core.OpAllreduce.String(): {{Alg: "allreduce_kring", K: 2}},
	}}

	g := &Grid{
		Title: fmt.Sprintf("training-step overlap on mem, p=%d, %d steps, allreduce_kring k=2", p, steps),
		XName: "bytes", YName: "wall_ms", Xs: sizes,
	}
	blocking := make([]float64, len(sizes))
	pipelined := make([]float64, len(sizes))
	for i, n := range sizes {
		// Warm-up run keeps scheduler/allocator jitter out of the numbers.
		if _, err := overlapRun(tab, p, steps, n, false); err != nil {
			return nil, err
		}
		tb, err := overlapRun(tab, p, steps, n, false)
		if err != nil {
			return nil, err
		}
		tp, err := overlapRun(tab, p, steps, n, true)
		if err != nil {
			return nil, err
		}
		blocking[i] = tb * 1e3
		pipelined[i] = tp * 1e3
	}
	if err := g.AddSeries("blocking_ms", blocking); err != nil {
		return nil, err
	}
	if err := g.AddSeries("pipelined_ms", pipelined); err != nil {
		return nil, err
	}
	return &Figure{
		ID:      "overlap",
		Caption: "compute/communication overlap: blocking Allreduce vs IAllreduce pipelined one step behind",
		Grids:   []*Grid{g},
		Notes: []string{
			"wall-clock on the in-process mem transport; compute modeled as device-kernel time (CPU idle), out-of-phase imbalance, identical total compute per rank",
			"pipelined variant polls CollRequest.Test between kernel slices (cooperative progress)",
		},
	}, nil
}

// kernelSlice is the granularity of the simulated device kernel: compute
// sleeps in these slices and the pipelined loop polls between them.
const kernelSlice = 500 * time.Microsecond

// overlapRun times one full training loop. Per step s, rank r "computes"
// for base·(1+((r+s) mod p)) kernel slices, then contributes its gradient
// to an allreduce — blocking in place, or started nonblocking and
// finished under the NEXT step's compute.
func overlapRun(tab *tuning.Table, p, steps, n int, pipelined bool) (float64, error) {
	const base = 3
	w := mem.NewWorld(p)
	defer w.Close()
	start := time.Now()
	err := w.Run(func(c comm.Comm) error {
		me := c.Rank()
		compute := func(s int, poll func()) {
			units := base * (1 + (me+s)%p)
			for u := 0; u < units; u++ {
				time.Sleep(kernelSlice)
				if poll != nil {
					poll()
				}
			}
		}
		args := func(grad, out []byte) core.Args {
			return core.Args{SendBuf: grad, RecvBuf: out, Op: datatype.Sum, Type: datatype.Float64}
		}

		if !pipelined {
			grad := make([]byte, n)
			out := make([]byte, n)
			for s := 0; s < steps; s++ {
				compute(s, nil)
				if err := tab.Run(c, core.OpAllreduce, args(grad, out)); err != nil {
					return err
				}
			}
			return nil
		}

		// Double-buffered lag-1 pipeline: step s's collective is in flight
		// while step s+1 computes into the other buffer.
		grads := [2][]byte{make([]byte, n), make([]byte, n)}
		outs := [2][]byte{make([]byte, n), make([]byte, n)}
		eng := nbc.NewEngine(c)
		var req *nbc.Request
		for s := 0; s < steps; s++ {
			compute(s, func() {
				if req != nil {
					req.Test()
				}
			})
			if req != nil {
				if err := req.Wait(); err != nil {
					return err
				}
			}
			prog, err := nbc.Compile(c, tab, core.OpAllreduce, args(grads[s%2], outs[s%2]))
			if err != nil {
				return err
			}
			if req, err = eng.Start(prog); err != nil {
				return err
			}
		}
		return req.Wait()
	})
	return time.Since(start).Seconds(), err
}
