package bench

import "testing"

// TestOverlapFigure runs the quick overlap benchmark and checks the
// pipelined (IAllreduce under next-step compute) loop beats the blocking
// loop on wall clock — the headline property of the nbc engine.
func TestOverlapFigure(t *testing.T) {
	fig, err := QuickConfig().Overlap()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Grids) != 1 || len(fig.Grids[0].Series) != 2 {
		t.Fatalf("unexpected figure shape: %+v", fig)
	}
	g := fig.Grids[0]
	if g.Series[0].Name != "blocking_ms" || g.Series[1].Name != "pipelined_ms" {
		t.Fatalf("unexpected series: %s, %s", g.Series[0].Name, g.Series[1].Name)
	}
	for i := range g.Xs {
		b, p := g.Series[0].Ys[i], g.Series[1].Ys[i]
		if !(p < b) {
			t.Errorf("%d bytes: pipelined %.2fms not below blocking %.2fms", g.Xs[i], p, b)
		}
	}
}
