package model

import "exacoll/internal/machine"

// FromSpec derives internode and intranode (α, β, γ) parameters from a
// machine description the way the paper's models would be calibrated on a
// real system: from the end-to-end ping-pong cost. On the simulator a
// ping-pong message of n bytes costs
//
//	o_send + n·β_port (sender NIC) + α_wire + n·β_port (receiver NIC) + o_recv
//
// so the model's α absorbs both overheads and the wire latency, and its β
// absorbs both port serializations.
func FromSpec(s machine.Spec) (inter, intra Params) {
	inter = Params{
		Alpha: s.AlphaInter + s.SendOverhead + s.RecvOverhead,
		Beta:  2 * s.BetaPort,
		Gamma: s.Gamma,
	}
	intra = Params{
		Alpha: s.AlphaIntra + s.SendOverhead + s.RecvOverhead,
		Beta:  s.BetaIntra,
		Gamma: s.Gamma,
	}
	return inter, intra
}
