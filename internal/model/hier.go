package model

import "fmt"

// Hier composes the flat models into two-level hierarchical predictions:
// an intranode phase over ppn ranks with the intranode (α, β, γ), an
// internode phase over the node count with the NIC-tier parameters, and
// (for rooted or personalized collectives) the reassembly broadcast. It
// is what lets the tuner rank "go hierarchical" against the flat tuned
// selection analytically, the same way eqs. (1)–(12) rank flat
// algorithms against each other.
type Hier struct {
	// Inter is the internode (leader-tier) cost model.
	Inter Params
	// Intra is the intranode cost model.
	Intra Params
}

// Bcast predicts the hierarchical broadcast of n bytes across nodes×ppn
// ranks: a k-nomial bcast over the leaders (radix kInter) followed by a
// k-nomial bcast within each node (radix kIntra, all nodes concurrent).
func (h Hier) Bcast(n, nodes, ppn, kIntra, kInter int) float64 {
	return h.Inter.BcastKnomial(n, nodes, kInter) + h.Intra.BcastKnomial(n, ppn, kIntra)
}

// Reduce predicts the mirror of Bcast: intranode k-nomial reduce to the
// leaders, then a k-nomial reduce across them.
func (h Hier) Reduce(n, nodes, ppn, kIntra, kInter int) float64 {
	return h.Intra.ReduceKnomial(n, ppn, kIntra) + h.Inter.ReduceKnomial(n, nodes, kInter)
}

// Allreduce predicts reduce-to-leader + leader recursive-multiplying
// allreduce + leader-to-node bcast — the shape internal/topo lowers
// allreduce into.
func (h Hier) Allreduce(n, nodes, ppn, kIntra, kInter int) float64 {
	return h.Intra.ReduceKnomial(n, ppn, kIntra) +
		h.Inter.AllreduceRecMul(n, nodes, kInter) +
		h.Intra.BcastKnomial(n, ppn, kIntra)
}

// Allgather predicts node gather (leader ends with ppn·n bytes), leader
// recursive-multiplying allgather of the node blocks (total nodes·ppn·n),
// and the broadcast of the assembled nodes·ppn·n result into each node.
func (h Hier) Allgather(n, nodes, ppn, kIntra, kInter int) float64 {
	total := nodes * ppn * n
	return h.Intra.GatherBinomial(ppn*n, ppn) +
		h.Inter.AllgatherRecMul(total, nodes, kInter) +
		h.Intra.BcastKnomial(total, ppn, kIntra)
}

// Predict returns the hierarchical prediction for a flat-collective name
// ("bcast", "reduce", "allgather", "allreduce"), so harnesses can rank
// hierarchical lowering against Params.Predict of flat algorithms.
func (h Hier) Predict(op string, n, nodes, ppn, kIntra, kInter int) (float64, error) {
	switch op {
	case "bcast":
		return h.Bcast(n, nodes, ppn, kIntra, kInter), nil
	case "reduce":
		return h.Reduce(n, nodes, ppn, kIntra, kInter), nil
	case "allgather":
		return h.Allgather(n, nodes, ppn, kIntra, kInter), nil
	case "allreduce":
		return h.Allreduce(n, nodes, ppn, kIntra, kInter), nil
	}
	return 0, fmt.Errorf("model: no hierarchical prediction for %q", op)
}
