// Package model implements the paper's analytical cost models (eqs. 1–14)
// in the (α, β, γ) framework: a point-to-point message of n bytes costs
// α + βn, and reductions add γ per byte. The models predict collective
// latency as a function of message size n, process count p, and — for the
// generalized algorithms — the radix k, and are compared against the
// simulator's "measured" results exactly as §VI compares models against
// Frontier (accurate for k-nomial, overtaken by hardware effects for
// recursive multiplying and k-ring).
package model

import (
	"fmt"
	"math"
)

// Params holds the cost-model constants. Seconds and seconds-per-byte.
type Params struct {
	// Alpha is the per-message latency.
	Alpha float64
	// Beta is the per-byte transfer cost.
	Beta float64
	// Gamma is the per-byte reduction (computation) cost.
	Gamma float64
}

// FromMachine derives (α, β, γ) for internode communication from a machine
// description's parameters: α includes both endpoints' per-message
// overheads, and β is the port serialization cost of both endpoints.
type MachineLike interface {
	ModelParams() Params
}

// logK returns log_k(p) as the paper's models use it (real-valued).
func logK(k float64, p int) float64 {
	if p <= 1 {
		return 0
	}
	return math.Log(float64(p)) / math.Log(k)
}

// log2 returns log2(p).
func log2(p int) float64 { return logK(2, p) }

// --- Eq. (1): binomial tree ---

// BcastBinomial is eq. (1): T = log2(p)·α + n·log2(p)·β.
func (m Params) BcastBinomial(n, p int) float64 {
	l := log2(p)
	return l*m.Alpha + float64(n)*l*m.Beta
}

// ReduceBinomial is eq. (1): bcast plus the γ term.
func (m Params) ReduceBinomial(n, p int) float64 {
	l := log2(p)
	return l*m.Alpha + float64(n)*l*(m.Beta+m.Gamma)
}

// GatherBinomial is eq. (1): T = log2(p)·α + n·(p−1)/p·β.
func (m Params) GatherBinomial(n, p int) float64 {
	return log2(p)*m.Alpha + float64(n)*frac(p)*m.Beta
}

// --- Eq. (2): binomial compositions ---

// AllgatherBinomial is eq. (2): gather + bcast.
func (m Params) AllgatherBinomial(n, p int) float64 {
	l := log2(p)
	return l*m.Alpha + float64(n)*(l+frac(p))*m.Beta
}

// AllreduceBinomial is eq. (2): reduce + bcast.
func (m Params) AllreduceBinomial(n, p int) float64 {
	l := log2(p)
	return l*m.Alpha + float64(n)*(l+frac(p))*m.Beta + float64(n)*l*m.Gamma
}

// --- Eq. (3): k-nomial tree ---

// BcastKnomial is eq. (3): T = log_k(p)·α + (k−1)·n·log_k(p)·β.
func (m Params) BcastKnomial(n, p, k int) float64 {
	l := logK(float64(k), p)
	return l*m.Alpha + float64(k-1)*float64(n)*l*m.Beta
}

// ReduceKnomial is eq. (3).
func (m Params) ReduceKnomial(n, p, k int) float64 {
	l := logK(float64(k), p)
	return l*m.Alpha + float64(k-1)*float64(n)*l*(m.Beta+m.Gamma)
}

// AllgatherKnomial is eq. (3).
func (m Params) AllgatherKnomial(n, p, k int) float64 {
	l := logK(float64(k), p)
	return l*m.Alpha + float64(k-1)*float64(n)*(l+frac(p))*m.Beta
}

// AllreduceKnomial is eq. (3).
func (m Params) AllreduceKnomial(n, p, k int) float64 {
	l := logK(float64(k), p)
	return l*m.Alpha + float64(k-1)*float64(n)*(l+frac(p))*m.Beta +
		float64(k-1)*float64(n)*l*m.Gamma
}

// --- Eq. (4)/(5): recursive doubling ---

// AllgatherRecDbl is eq. (4): T = α·log2(p) + β·n·(p−1)/p.
func (m Params) AllgatherRecDbl(n, p int) float64 {
	return m.Alpha*log2(p) + m.Beta*float64(n)*frac(p)
}

// BcastRecDbl is eq. (4) (scatter-allgather bcast).
func (m Params) BcastRecDbl(n, p int) float64 { return m.AllgatherRecDbl(n, p) }

// AllreduceRecDbl is eq. (4): T = log2(p)·(α + (β+γ)·n).
func (m Params) AllreduceRecDbl(n, p int) float64 {
	return log2(p) * (m.Alpha + (m.Beta+m.Gamma)*float64(n))
}

// RecDblRound is eq. (5): the cost of round i (1-based) of recursive
// doubling.
func (m Params) RecDblRound(n, p, i int, allreduce bool) float64 {
	if allreduce {
		return m.Alpha + (m.Beta+m.Gamma)*float64(n)
	}
	return m.Alpha + m.Beta*float64(n)*math.Pow(2, float64(i-1))/float64(p)
}

// --- Eq. (6)/(7): recursive multiplying ---

// AllgatherRecMul is eq. (6): T = α·log_k(p) + β·n·(p−1)/p.
func (m Params) AllgatherRecMul(n, p, k int) float64 {
	return m.Alpha*logK(float64(k), p) + m.Beta*float64(n)*frac(p)
}

// BcastRecMul is eq. (6) (scatter-allgather bcast).
func (m Params) BcastRecMul(n, p, k int) float64 { return m.AllgatherRecMul(n, p, k) }

// AllreduceRecMul is eq. (6): T = log_k(p)·(α + (β+γ)·(k−1)·n).
func (m Params) AllreduceRecMul(n, p, k int) float64 {
	return logK(float64(k), p) * (m.Alpha + (m.Beta+m.Gamma)*float64(k-1)*float64(n))
}

// RecMulRound is eq. (7): the cost of round i (1-based) of recursive
// multiplying.
func (m Params) RecMulRound(n, p, k, i int, allreduce bool) float64 {
	if allreduce {
		return m.Alpha + (m.Beta+m.Gamma)*float64(k-1)*float64(n)
	}
	return m.Alpha + m.Beta*float64(n)*float64(k-1)*math.Pow(float64(k), float64(i-1))/float64(p)
}

// --- Eq. (8)/(9)/(10): ring ---

// RingRound is eq. (9): the per-round cost of the ring algorithm.
func (m Params) RingRound(n, p int, allreduce bool) float64 {
	t := m.Alpha + m.Beta*float64(n)/float64(p)
	if allreduce {
		t += m.Gamma * float64(n) / float64(p)
	}
	return t
}

// AllgatherRing is eq. (8): T = (p−1)·T_i.
func (m Params) AllgatherRing(n, p int) float64 {
	return float64(p-1) * m.RingRound(n, p, false)
}

// BcastRing is eq. (8) for the allgather part of scatter-allgather bcast.
func (m Params) BcastRing(n, p int) float64 { return m.AllgatherRing(n, p) }

// AllreduceRing is eq. (8) with the reduce-scatter phase: 2(p−1) rounds,
// the first (p−1) carrying the γ term.
func (m Params) AllreduceRing(n, p int) float64 {
	return float64(p-1)*m.RingRound(n, p, true) + float64(p-1)*m.RingRound(n, p, false)
}

// RingAsymptotic is eq. (10): the large-n limit βn (+γn for allreduce).
func (m Params) RingAsymptotic(n int, allreduce bool) float64 {
	t := m.Beta * float64(n)
	if allreduce {
		t += m.Gamma * float64(n)
	}
	return t
}

// --- Eq. (11)/(12): k-ring ---

// KRingIntra is eq. (11): g(k−1) intra-group rounds with per-round cost Ti.
func (m Params) KRingIntra(n, p, k int, intra Params) float64 {
	g := float64(p) / float64(k)
	return g * float64(k-1) * intra.RingRound(n, p, false)
}

// KRingInter is eq. (11): (g−1) inter-group rounds.
func (m Params) KRingInter(n, p, k int) float64 {
	g := float64(p) / float64(k)
	return (g - 1) * m.RingRound(n, p, false)
}

// AllgatherKRing is eq. (12) refined with heterogeneous links: intra-group
// rounds use the intranode parameters, inter-group rounds the internode
// parameters. With intra == inter it reduces to eq. (12)'s (p−1)·Ti — the
// uniform cost that made the analytic model "not present a clear benefit"
// (§VI-C2) until hardware heterogeneity is accounted for.
func (m Params) AllgatherKRing(n, p, k int, intra Params) float64 {
	return m.KRingIntra(n, p, k, intra) + m.KRingInter(n, p, k)
}

// KRingDataInterGroup is eq. (13): D = 2n(p−k)/p.
func KRingDataInterGroup(n, p, k int) float64 {
	return 2 * float64(n) * float64(p-k) / float64(p)
}

// RingDataInterGroup is eq. (14): D = 2n(p−1)/p.
func RingDataInterGroup(n, p int) float64 {
	return 2 * float64(n) * float64(p-1) / float64(p)
}

func frac(p int) float64 { return float64(p-1) / float64(p) }

// MinPipelineSeg floors the derived pipeline segment size: below ~1 KiB the
// per-segment α dominates any overlap win on every machine we model.
const MinPipelineSeg = 1 << 10

// PipelineSegSize returns the model-optimal segment size for pipelining n
// bytes through a depth-d communication chain (tree depth for the segmented
// k-nomial algorithms, p−1 hops for the chain, 2(p−1) rounds for the
// pipelined ring allreduce). With m = n/S segments the pipeline completes
// in (d + m − 1) segment steps of cost α + βS each; minimizing over S gives
//
//	S* = sqrt(α·n / (β·(d−1)))
//
// — the standard segmentation rule production MPIs apply to large-message
// trees. The result is clamped to [MinPipelineSeg, n]; depth ≤ 1 or a
// degenerate β means nothing overlaps, so the whole message is one segment.
func (m Params) PipelineSegSize(n, depth int) int {
	if n <= 0 {
		return 0
	}
	if depth <= 1 || m.Beta <= 0 || m.Alpha <= 0 {
		return n
	}
	s := int(math.Sqrt(m.Alpha * float64(n) / (m.Beta * float64(depth-1))))
	if s < MinPipelineSeg {
		s = MinPipelineSeg
	}
	if s > n {
		s = n
	}
	return s
}

// OptimalK sweeps k in [2, kMax] and returns the radix minimizing cost(k).
func OptimalK(kMax int, cost func(k int) float64) (bestK int, bestT float64) {
	bestK, bestT = 2, math.Inf(1)
	for k := 2; k <= kMax; k++ {
		if t := cost(k); t < bestT {
			bestK, bestT = k, t
		}
	}
	return bestK, bestT
}

// Predict returns the modelled cost for a named algorithm, for harnesses
// that iterate the registry. intra is only used by k-ring.
func (m Params) Predict(alg string, n, p, k int, intra Params) (float64, error) {
	switch alg {
	case "bcast_binomial":
		return m.BcastBinomial(n, p), nil
	case "reduce_binomial":
		return m.ReduceBinomial(n, p), nil
	case "gather_binomial":
		return m.GatherBinomial(n, p), nil
	case "bcast_knomial":
		return m.BcastKnomial(n, p, k), nil
	case "reduce_knomial":
		return m.ReduceKnomial(n, p, k), nil
	case "allgather_knomial":
		return m.AllgatherKnomial(n, p, k), nil
	case "allreduce_knomial":
		return m.AllreduceKnomial(n, p, k), nil
	case "bcast_recdbl":
		return m.BcastRecDbl(n, p), nil
	case "allgather_recdbl":
		return m.AllgatherRecDbl(n, p), nil
	case "allreduce_recdbl":
		return m.AllreduceRecDbl(n, p), nil
	case "bcast_recmul":
		return m.BcastRecMul(n, p, k), nil
	case "allgather_recmul":
		return m.AllgatherRecMul(n, p, k), nil
	case "allreduce_recmul":
		return m.AllreduceRecMul(n, p, k), nil
	case "bcast_ring":
		return m.BcastRing(n, p), nil
	case "allgather_ring":
		return m.AllgatherRing(n, p), nil
	case "allreduce_ring":
		return m.AllreduceRing(n, p), nil
	case "bcast_kring", "allgather_kring":
		return m.AllgatherKRing(n, p, k, intra), nil
	case "allreduce_kring":
		return 2 * m.AllgatherKRing(n, p, k, intra), nil
	}
	return 0, fmt.Errorf("model: no prediction for algorithm %q", alg)
}
