package model

import (
	"math"
	"testing"

	"exacoll/internal/machine"
)

var m = Params{Alpha: 2e-6, Beta: 5e-11, Gamma: 2e-11}

func close(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// TestKnomialReducesToBinomial: eq. (3) at k=2 must equal eq. (1)/(2).
func TestKnomialReducesToBinomial(t *testing.T) {
	for _, p := range []int{2, 4, 16, 128, 1024} {
		for _, n := range []int{8, 1024, 1 << 20} {
			if !close(m.BcastKnomial(n, p, 2), m.BcastBinomial(n, p)) {
				t.Errorf("bcast: knomial(k=2) != binomial at p=%d n=%d", p, n)
			}
			if !close(m.ReduceKnomial(n, p, 2), m.ReduceBinomial(n, p)) {
				t.Errorf("reduce: knomial(k=2) != binomial at p=%d n=%d", p, n)
			}
			if !close(m.AllgatherKnomial(n, p, 2), m.AllgatherBinomial(n, p)) {
				t.Errorf("allgather: knomial(k=2) != binomial at p=%d n=%d", p, n)
			}
			if !close(m.AllreduceKnomial(n, p, 2), m.AllreduceBinomial(n, p)) {
				t.Errorf("allreduce: knomial(k=2) != binomial at p=%d n=%d", p, n)
			}
		}
	}
}

// TestRecMulReducesToRecDbl: eq. (6) at k=2 must equal eq. (4).
func TestRecMulReducesToRecDbl(t *testing.T) {
	for _, p := range []int{2, 8, 64, 1024} {
		for _, n := range []int{8, 4096, 1 << 22} {
			if !close(m.AllgatherRecMul(n, p, 2), m.AllgatherRecDbl(n, p)) {
				t.Errorf("allgather: recmul(k=2) != recdbl at p=%d n=%d", p, n)
			}
			if !close(m.AllreduceRecMul(n, p, 2), m.AllreduceRecDbl(n, p)) {
				t.Errorf("allreduce: recmul(k=2) != recdbl at p=%d n=%d", p, n)
			}
		}
	}
}

// TestKRingReducesToRing: eq. (12) with homogeneous links must equal the
// classic ring cost, and eq. (13) at k=1 must equal eq. (14).
func TestKRingReducesToRing(t *testing.T) {
	for _, p := range []int{4, 8, 64} {
		n := 1 << 20
		if got, want := m.AllgatherKRing(n, p, 1, m), m.AllgatherRing(n, p); !close(got, want) {
			t.Errorf("kring(k=1, homo) = %g, want ring %g at p=%d", got, want, p)
		}
		if got, want := KRingDataInterGroup(n, p, 1), RingDataInterGroup(n, p); !close(got, want) {
			t.Errorf("eq13(k=1) = %g, want eq14 %g", got, want)
		}
	}
}

// TestRoundSumsMatchClosedForm: summing eq. (5) rounds reproduces eq. (4),
// and summing eq. (7) rounds reproduces eq. (6), for power-of-k sizes.
func TestRoundSumsMatchClosedForm(t *testing.T) {
	for _, tc := range []struct{ p, k int }{{16, 2}, {64, 2}, {27, 3}, {256, 4}} {
		n := 1 << 18
		rounds := int(math.Round(math.Log(float64(tc.p)) / math.Log(float64(tc.k))))
		// Allreduce: every round costs the same.
		sum := 0.0
		for i := 1; i <= rounds; i++ {
			sum += m.RecMulRound(n, tc.p, tc.k, i, true)
		}
		if want := m.AllreduceRecMul(n, tc.p, tc.k); !close(sum, want) {
			t.Errorf("p=%d k=%d: allreduce round sum %g != closed form %g", tc.p, tc.k, sum, want)
		}
		// Allgather: the geometric series sums to n(p-1)/p·β.
		sum = 0.0
		for i := 1; i <= rounds; i++ {
			sum += m.RecMulRound(n, tc.p, tc.k, i, false)
		}
		if want := m.AllgatherRecMul(n, tc.p, tc.k); !close(sum, want) {
			t.Errorf("p=%d k=%d: allgather round sum %g != closed form %g", tc.p, tc.k, sum, want)
		}
	}
}

// TestRingRoundsSum: (p−1) rounds of eq. (9) equal eq. (8).
func TestRingRoundsSum(t *testing.T) {
	p, n := 32, 1<<20
	sum := 0.0
	for i := 0; i < p-1; i++ {
		sum += m.RingRound(n, p, false)
	}
	if want := m.AllgatherRing(n, p); !close(sum, want) {
		t.Errorf("ring round sum %g != %g", sum, want)
	}
}

// TestRingAsymptotic: for large n the ring cost approaches eq. (10).
func TestRingAsymptotic(t *testing.T) {
	p := 64
	n := 1 << 28
	full := m.AllgatherRing(n, p)
	asym := m.RingAsymptotic(n, false)
	if math.Abs(full-asym)/asym > 0.05 {
		t.Errorf("ring %g vs asymptotic %g differ by >5%% at n=%d", full, asym, n)
	}
}

// TestKnomialOptimalKTrend reproduces §III-D's intuition: for tiny
// messages the best k is at or near p; for large messages it shrinks
// toward 2.
func TestKnomialOptimalKTrend(t *testing.T) {
	p := 128
	kSmall, _ := OptimalK(p, func(k int) float64 { return m.ReduceKnomial(8, p, k) })
	kLarge, _ := OptimalK(p, func(k int) float64 { return m.ReduceKnomial(1<<22, p, k) })
	if kSmall < p/2 {
		t.Errorf("tiny-message optimal k = %d, want near p=%d", kSmall, p)
	}
	if kLarge != 2 {
		t.Errorf("large-message optimal k = %d, want 2", kLarge)
	}
}

// TestRecMulOptimalKTrend: the pure model favors moderate k for small
// messages (fewer rounds) and k=2 for large (less redundant data).
func TestRecMulOptimalKTrend(t *testing.T) {
	p := 128
	kSmall, _ := OptimalK(p, func(k int) float64 { return m.AllreduceRecMul(8, p, k) })
	kLarge, _ := OptimalK(p, func(k int) float64 { return m.AllreduceRecMul(1<<22, p, k) })
	if kSmall <= 2 {
		t.Errorf("tiny-message optimal k = %d, want > 2", kSmall)
	}
	if kLarge != 2 {
		t.Errorf("large-message optimal k = %d, want 2", kLarge)
	}
}

// TestKRingHeterogeneousBenefit: with intranode links much faster than
// internode, k-ring at k=PPN beats the homogeneous ring model — the §V-D
// motivation.
func TestKRingHeterogeneousBenefit(t *testing.T) {
	inter, intra := FromSpec(machine.Frontier().WithPPN(8))
	p, n := 128, 1<<24
	kring := inter.AllgatherKRing(n, p, 8, intra)
	ring := inter.AllgatherRing(n, p)
	if kring >= ring {
		t.Errorf("k-ring (k=8) %g should beat homogeneous ring %g with fast intranode links", kring, ring)
	}
}

// TestPredictCoversRegistryNames spot-checks the Predict dispatcher.
func TestPredictCoversRegistryNames(t *testing.T) {
	names := []string{
		"bcast_binomial", "reduce_binomial", "gather_binomial",
		"bcast_knomial", "reduce_knomial", "allgather_knomial", "allreduce_knomial",
		"bcast_recdbl", "allgather_recdbl", "allreduce_recdbl",
		"bcast_recmul", "allgather_recmul", "allreduce_recmul",
		"bcast_ring", "allgather_ring", "allreduce_ring",
		"bcast_kring", "allgather_kring", "allreduce_kring",
	}
	for _, name := range names {
		v, err := m.Predict(name, 4096, 64, 4, m)
		if err != nil {
			t.Errorf("Predict(%s): %v", name, err)
		}
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("Predict(%s) = %g", name, v)
		}
	}
	if _, err := m.Predict("nope", 1, 2, 2, m); err == nil {
		t.Error("want error for unknown algorithm")
	}
}

// TestFromSpecPingPong: FromSpec's α/β reproduce the simulator's ping-pong
// cost model by construction.
func TestFromSpecPingPong(t *testing.T) {
	s := machine.Testbox()
	inter, intra := FromSpec(s)
	n := 4096
	wantInter := s.SendOverhead + 2*float64(n)*s.BetaPort + s.AlphaInter + s.RecvOverhead
	if got := inter.Alpha + float64(n)*inter.Beta; !close(got, wantInter) {
		t.Errorf("inter ping-pong: model %g, sim %g", got, wantInter)
	}
	wantIntra := s.SendOverhead + float64(n)*s.BetaIntra + s.AlphaIntra + s.RecvOverhead
	if got := intra.Alpha + float64(n)*intra.Beta; !close(got, wantIntra) {
		t.Errorf("intra ping-pong: model %g, sim %g", got, wantIntra)
	}
}
