package datatype

import (
	"math"
	"testing"
	"testing/quick"
)

// TestSizes checks element sizes and names.
func TestSizes(t *testing.T) {
	cases := []struct {
		t    Type
		size int
		name string
	}{
		{Uint8, 1, "uint8"},
		{Int32, 4, "int32"},
		{Int64, 8, "int64"},
		{Float32, 4, "float32"},
		{Float64, 8, "float64"},
	}
	for _, tc := range cases {
		if tc.t.Size() != tc.size {
			t.Errorf("%v size = %d, want %d", tc.t, tc.t.Size(), tc.size)
		}
		if tc.t.String() != tc.name {
			t.Errorf("%v name = %q", tc.t, tc.t.String())
		}
	}
}

// TestApplyFloat64 checks every float op.
func TestApplyFloat64(t *testing.T) {
	a := []float64{1, -2, 3.5, 0}
	b := []float64{4, 5, -1.5, 0}
	cases := []struct {
		op   Op
		want []float64
	}{
		{Sum, []float64{5, 3, 2, 0}},
		{Prod, []float64{4, -10, -5.25, 0}},
		{Max, []float64{4, 5, 3.5, 0}},
		{Min, []float64{1, -2, -1.5, 0}},
	}
	for _, tc := range cases {
		dst := EncodeFloat64(a)
		if err := Apply(tc.op, Float64, dst, EncodeFloat64(b)); err != nil {
			t.Fatalf("%v: %v", tc.op, err)
		}
		got := DecodeFloat64(dst)
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%v[%d] = %g, want %g", tc.op, i, got[i], tc.want[i])
			}
		}
	}
}

// TestApplyIntOps checks integer and bitwise ops on int64.
func TestApplyIntOps(t *testing.T) {
	a := []int64{6, -3, 255}
	b := []int64{10, 4, 15}
	cases := []struct {
		op   Op
		want []int64
	}{
		{Sum, []int64{16, 1, 270}},
		{Prod, []int64{60, -12, 3825}},
		{Max, []int64{10, 4, 255}},
		{Min, []int64{6, -3, 15}},
		{BAnd, []int64{2, 4, 15}},
		{BOr, []int64{14, -3, 255}},
	}
	for _, tc := range cases {
		dst := EncodeInt64(a)
		if err := Apply(tc.op, Int64, dst, EncodeInt64(b)); err != nil {
			t.Fatalf("%v: %v", tc.op, err)
		}
		got := DecodeInt64(dst)
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%v[%d] = %d, want %d", tc.op, i, got[i], tc.want[i])
			}
		}
	}
}

// TestApplyErrors checks validation.
func TestApplyErrors(t *testing.T) {
	if err := Apply(Sum, Float64, make([]byte, 8), make([]byte, 16)); err == nil {
		t.Error("want length-mismatch error")
	}
	if err := Apply(Sum, Float64, make([]byte, 7), make([]byte, 7)); err == nil {
		t.Error("want alignment error")
	}
	if _, err := MakeReducer(BAnd, Float64); err == nil {
		t.Error("want error for bitwise op on float")
	}
	if _, err := MakeReducer(Sum, Float64); err != nil {
		t.Errorf("MakeReducer(Sum, Float64): %v", err)
	}
}

// TestQuickSumAssociative: testing/quick — float64 integer-valued sums are
// associative and commutative, the property the tree/ring reductions rely
// on for exact cross-algorithm agreement.
func TestQuickSumAssociative(t *testing.T) {
	prop := func(xs [3]int32) bool {
		a := []float64{float64(xs[0])}
		b := []float64{float64(xs[1])}
		c := []float64{float64(xs[2])}
		// (a+b)+c
		d1 := EncodeFloat64(a)
		Apply(Sum, Float64, d1, EncodeFloat64(b))
		Apply(Sum, Float64, d1, EncodeFloat64(c))
		// (c+a)+b
		d2 := EncodeFloat64(c)
		Apply(Sum, Float64, d2, EncodeFloat64(a))
		Apply(Sum, Float64, d2, EncodeFloat64(b))
		return DecodeFloat64(d1)[0] == DecodeFloat64(d2)[0]
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickEncodeDecodeRoundTrip: testing/quick over the codecs.
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	propF := func(vals []float64) bool {
		got := DecodeFloat64(EncodeFloat64(vals))
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] && !(math.IsNaN(got[i]) && math.IsNaN(vals[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(propF, nil); err != nil {
		t.Error(err)
	}
	propI := func(vals []int64) bool {
		got := DecodeInt64(EncodeInt64(vals))
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(propI, nil); err != nil {
		t.Error(err)
	}
}

// TestUint8Ops covers the byte path.
func TestUint8Ops(t *testing.T) {
	dst := []byte{200, 3, 0xF0}
	src := []byte{100, 4, 0x0F}
	if err := Apply(Sum, Uint8, dst, src); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 44 /* wraps */ || dst[1] != 7 || dst[2] != 0xFF {
		t.Errorf("uint8 sum = %v", dst)
	}
}
