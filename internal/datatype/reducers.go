package datatype

import (
	"encoding/binary"
	"math"
)

// kernel combines src into dst element-wise with lengths already validated
// (equal, multiple of the element size). One monomorphic loop per (op, type)
// pair: the operator is inlined into the loop body, so there is no
// per-element dispatch and no widening through int64/float64. Loads and
// stores go through encoding/binary's little-endian views, which the
// compiler lowers to single moves on little-endian targets — the fast path
// needs no unsafe. Loops advance the slices instead of indexing so the
// compiler can prove bounds, and the sum/prod kernels unroll 4x to expose
// independent element chains.
type kernel func(dst, src []byte)

// kernels is indexed [op][type]. A nil entry means the combination is
// undefined (bitwise ops on floating-point types).
var kernels = [...][5]kernel{
	Sum:  {Uint8: sumU8, Int32: sumI32, Int64: sumI64, Float32: sumF32, Float64: sumF64},
	Prod: {Uint8: prodU8, Int32: prodI32, Int64: prodI64, Float32: prodF32, Float64: prodF64},
	Max:  {Uint8: maxU8, Int32: maxI32, Int64: maxI64, Float32: maxF32, Float64: maxF64},
	Min:  {Uint8: minU8, Int32: minI32, Int64: minI64, Float32: minF32, Float64: minF64},
	BAnd: {Uint8: bandU8, Int32: bandI32, Int64: bandI64},
	BOr:  {Uint8: borU8, Int32: borI32, Int64: borI64},
}

// kernelFor returns the monomorphic kernel for (op, t), or nil if the
// combination is undefined or out of range.
func kernelFor(op Op, t Type) kernel {
	if op < 0 || int(op) >= len(kernels) || t < 0 || int(t) >= len(kernels[op]) {
		return nil
	}
	return kernels[op][t]
}

func sumU8(dst, src []byte) {
	src = src[:len(dst)]
	for i := range dst {
		dst[i] += src[i]
	}
}

func prodU8(dst, src []byte) {
	src = src[:len(dst)]
	for i := range dst {
		dst[i] *= src[i]
	}
}

func maxU8(dst, src []byte) {
	src = src[:len(dst)]
	for i := range dst {
		if src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}

func minU8(dst, src []byte) {
	src = src[:len(dst)]
	for i := range dst {
		if src[i] < dst[i] {
			dst[i] = src[i]
		}
	}
}

func bandU8(dst, src []byte) {
	src = src[:len(dst)]
	for i := range dst {
		dst[i] &= src[i]
	}
}

func borU8(dst, src []byte) {
	src = src[:len(dst)]
	for i := range dst {
		dst[i] |= src[i]
	}
}

func sumI32(dst, src []byte) {
	n := len(dst) &^ 3
	dst, src = dst[:n], src[:n]
	for len(dst) >= 16 && len(src) >= 16 {
		a0 := int32(binary.LittleEndian.Uint32(dst[0:4]))
		b0 := int32(binary.LittleEndian.Uint32(src[0:4]))
		a1 := int32(binary.LittleEndian.Uint32(dst[4:8]))
		b1 := int32(binary.LittleEndian.Uint32(src[4:8]))
		a2 := int32(binary.LittleEndian.Uint32(dst[8:12]))
		b2 := int32(binary.LittleEndian.Uint32(src[8:12]))
		a3 := int32(binary.LittleEndian.Uint32(dst[12:16]))
		b3 := int32(binary.LittleEndian.Uint32(src[12:16]))
		binary.LittleEndian.PutUint32(dst[0:4], uint32(a0+b0))
		binary.LittleEndian.PutUint32(dst[4:8], uint32(a1+b1))
		binary.LittleEndian.PutUint32(dst[8:12], uint32(a2+b2))
		binary.LittleEndian.PutUint32(dst[12:16], uint32(a3+b3))
		dst, src = dst[16:], src[16:]
	}
	for len(dst) >= 4 && len(src) >= 4 {
		a := int32(binary.LittleEndian.Uint32(dst))
		b := int32(binary.LittleEndian.Uint32(src))
		binary.LittleEndian.PutUint32(dst, uint32(a+b))
		dst, src = dst[4:], src[4:]
	}
}

func prodI32(dst, src []byte) {
	n := len(dst) &^ 3
	dst, src = dst[:n], src[:n]
	for len(dst) >= 4 && len(src) >= 4 {
		a := int32(binary.LittleEndian.Uint32(dst))
		b := int32(binary.LittleEndian.Uint32(src))
		binary.LittleEndian.PutUint32(dst, uint32(a*b))
		dst, src = dst[4:], src[4:]
	}
}

func maxI32(dst, src []byte) {
	n := len(dst) &^ 3
	dst, src = dst[:n], src[:n]
	for len(dst) >= 4 && len(src) >= 4 {
		a := int32(binary.LittleEndian.Uint32(dst))
		b := int32(binary.LittleEndian.Uint32(src))
		if b > a {
			a = b
		}
		binary.LittleEndian.PutUint32(dst, uint32(a))
		dst, src = dst[4:], src[4:]
	}
}

func minI32(dst, src []byte) {
	n := len(dst) &^ 3
	dst, src = dst[:n], src[:n]
	for len(dst) >= 4 && len(src) >= 4 {
		a := int32(binary.LittleEndian.Uint32(dst))
		b := int32(binary.LittleEndian.Uint32(src))
		if b < a {
			a = b
		}
		binary.LittleEndian.PutUint32(dst, uint32(a))
		dst, src = dst[4:], src[4:]
	}
}

func bandI32(dst, src []byte) {
	n := len(dst) &^ 3
	dst, src = dst[:n], src[:n]
	for len(dst) >= 4 && len(src) >= 4 {
		binary.LittleEndian.PutUint32(dst, binary.LittleEndian.Uint32(dst)&binary.LittleEndian.Uint32(src))
		dst, src = dst[4:], src[4:]
	}
}

func borI32(dst, src []byte) {
	n := len(dst) &^ 3
	dst, src = dst[:n], src[:n]
	for len(dst) >= 4 && len(src) >= 4 {
		binary.LittleEndian.PutUint32(dst, binary.LittleEndian.Uint32(dst)|binary.LittleEndian.Uint32(src))
		dst, src = dst[4:], src[4:]
	}
}

func sumI64(dst, src []byte) {
	n := len(dst) &^ 7
	dst, src = dst[:n], src[:n]
	for len(dst) >= 32 && len(src) >= 32 {
		a0 := binary.LittleEndian.Uint64(dst[0:8])
		b0 := binary.LittleEndian.Uint64(src[0:8])
		a1 := binary.LittleEndian.Uint64(dst[8:16])
		b1 := binary.LittleEndian.Uint64(src[8:16])
		a2 := binary.LittleEndian.Uint64(dst[16:24])
		b2 := binary.LittleEndian.Uint64(src[16:24])
		a3 := binary.LittleEndian.Uint64(dst[24:32])
		b3 := binary.LittleEndian.Uint64(src[24:32])
		binary.LittleEndian.PutUint64(dst[0:8], a0+b0)
		binary.LittleEndian.PutUint64(dst[8:16], a1+b1)
		binary.LittleEndian.PutUint64(dst[16:24], a2+b2)
		binary.LittleEndian.PutUint64(dst[24:32], a3+b3)
		dst, src = dst[32:], src[32:]
	}
	for len(dst) >= 8 && len(src) >= 8 {
		binary.LittleEndian.PutUint64(dst, binary.LittleEndian.Uint64(dst)+binary.LittleEndian.Uint64(src))
		dst, src = dst[8:], src[8:]
	}
}

func prodI64(dst, src []byte) {
	n := len(dst) &^ 7
	dst, src = dst[:n], src[:n]
	for len(dst) >= 8 && len(src) >= 8 {
		a := int64(binary.LittleEndian.Uint64(dst))
		b := int64(binary.LittleEndian.Uint64(src))
		binary.LittleEndian.PutUint64(dst, uint64(a*b))
		dst, src = dst[8:], src[8:]
	}
}

func maxI64(dst, src []byte) {
	n := len(dst) &^ 7
	dst, src = dst[:n], src[:n]
	for len(dst) >= 8 && len(src) >= 8 {
		a := int64(binary.LittleEndian.Uint64(dst))
		b := int64(binary.LittleEndian.Uint64(src))
		if b > a {
			a = b
		}
		binary.LittleEndian.PutUint64(dst, uint64(a))
		dst, src = dst[8:], src[8:]
	}
}

func minI64(dst, src []byte) {
	n := len(dst) &^ 7
	dst, src = dst[:n], src[:n]
	for len(dst) >= 8 && len(src) >= 8 {
		a := int64(binary.LittleEndian.Uint64(dst))
		b := int64(binary.LittleEndian.Uint64(src))
		if b < a {
			a = b
		}
		binary.LittleEndian.PutUint64(dst, uint64(a))
		dst, src = dst[8:], src[8:]
	}
}

func bandI64(dst, src []byte) {
	n := len(dst) &^ 7
	dst, src = dst[:n], src[:n]
	for len(dst) >= 8 && len(src) >= 8 {
		binary.LittleEndian.PutUint64(dst, binary.LittleEndian.Uint64(dst)&binary.LittleEndian.Uint64(src))
		dst, src = dst[8:], src[8:]
	}
}

func borI64(dst, src []byte) {
	n := len(dst) &^ 7
	dst, src = dst[:n], src[:n]
	for len(dst) >= 8 && len(src) >= 8 {
		binary.LittleEndian.PutUint64(dst, binary.LittleEndian.Uint64(dst)|binary.LittleEndian.Uint64(src))
		dst, src = dst[8:], src[8:]
	}
}

// Float32 sum/prod operate directly in float32. This is bit-identical to
// the previous widen-to-float64-then-narrow path: with float64's 53-bit
// mantissa (>= 2*24+2), the double rounding of one add or mul of float32
// operands is innocuous.
func sumF32(dst, src []byte) {
	n := len(dst) &^ 3
	dst, src = dst[:n], src[:n]
	for len(dst) >= 16 && len(src) >= 16 {
		a0 := math.Float32frombits(binary.LittleEndian.Uint32(dst[0:4]))
		b0 := math.Float32frombits(binary.LittleEndian.Uint32(src[0:4]))
		a1 := math.Float32frombits(binary.LittleEndian.Uint32(dst[4:8]))
		b1 := math.Float32frombits(binary.LittleEndian.Uint32(src[4:8]))
		a2 := math.Float32frombits(binary.LittleEndian.Uint32(dst[8:12]))
		b2 := math.Float32frombits(binary.LittleEndian.Uint32(src[8:12]))
		a3 := math.Float32frombits(binary.LittleEndian.Uint32(dst[12:16]))
		b3 := math.Float32frombits(binary.LittleEndian.Uint32(src[12:16]))
		binary.LittleEndian.PutUint32(dst[0:4], math.Float32bits(a0+b0))
		binary.LittleEndian.PutUint32(dst[4:8], math.Float32bits(a1+b1))
		binary.LittleEndian.PutUint32(dst[8:12], math.Float32bits(a2+b2))
		binary.LittleEndian.PutUint32(dst[12:16], math.Float32bits(a3+b3))
		dst, src = dst[16:], src[16:]
	}
	for len(dst) >= 4 && len(src) >= 4 {
		a := math.Float32frombits(binary.LittleEndian.Uint32(dst))
		b := math.Float32frombits(binary.LittleEndian.Uint32(src))
		binary.LittleEndian.PutUint32(dst, math.Float32bits(a+b))
		dst, src = dst[4:], src[4:]
	}
}

func prodF32(dst, src []byte) {
	n := len(dst) &^ 3
	dst, src = dst[:n], src[:n]
	for len(dst) >= 4 && len(src) >= 4 {
		a := math.Float32frombits(binary.LittleEndian.Uint32(dst))
		b := math.Float32frombits(binary.LittleEndian.Uint32(src))
		binary.LittleEndian.PutUint32(dst, math.Float32bits(a*b))
		dst, src = dst[4:], src[4:]
	}
}

// Float min/max keep math.Max/math.Min semantics (NaN and signed-zero
// handling) so results match the pre-specialization implementation.
func maxF32(dst, src []byte) {
	n := len(dst) &^ 3
	dst, src = dst[:n], src[:n]
	for len(dst) >= 4 && len(src) >= 4 {
		a := math.Float32frombits(binary.LittleEndian.Uint32(dst))
		b := math.Float32frombits(binary.LittleEndian.Uint32(src))
		binary.LittleEndian.PutUint32(dst, math.Float32bits(float32(math.Max(float64(a), float64(b)))))
		dst, src = dst[4:], src[4:]
	}
}

func minF32(dst, src []byte) {
	n := len(dst) &^ 3
	dst, src = dst[:n], src[:n]
	for len(dst) >= 4 && len(src) >= 4 {
		a := math.Float32frombits(binary.LittleEndian.Uint32(dst))
		b := math.Float32frombits(binary.LittleEndian.Uint32(src))
		binary.LittleEndian.PutUint32(dst, math.Float32bits(float32(math.Min(float64(a), float64(b)))))
		dst, src = dst[4:], src[4:]
	}
}

func sumF64(dst, src []byte) {
	n := len(dst) &^ 7
	dst, src = dst[:n], src[:n]
	for len(dst) >= 32 && len(src) >= 32 {
		a0 := math.Float64frombits(binary.LittleEndian.Uint64(dst[0:8]))
		b0 := math.Float64frombits(binary.LittleEndian.Uint64(src[0:8]))
		a1 := math.Float64frombits(binary.LittleEndian.Uint64(dst[8:16]))
		b1 := math.Float64frombits(binary.LittleEndian.Uint64(src[8:16]))
		a2 := math.Float64frombits(binary.LittleEndian.Uint64(dst[16:24]))
		b2 := math.Float64frombits(binary.LittleEndian.Uint64(src[16:24]))
		a3 := math.Float64frombits(binary.LittleEndian.Uint64(dst[24:32]))
		b3 := math.Float64frombits(binary.LittleEndian.Uint64(src[24:32]))
		binary.LittleEndian.PutUint64(dst[0:8], math.Float64bits(a0+b0))
		binary.LittleEndian.PutUint64(dst[8:16], math.Float64bits(a1+b1))
		binary.LittleEndian.PutUint64(dst[16:24], math.Float64bits(a2+b2))
		binary.LittleEndian.PutUint64(dst[24:32], math.Float64bits(a3+b3))
		dst, src = dst[32:], src[32:]
	}
	for len(dst) >= 8 && len(src) >= 8 {
		a := math.Float64frombits(binary.LittleEndian.Uint64(dst))
		b := math.Float64frombits(binary.LittleEndian.Uint64(src))
		binary.LittleEndian.PutUint64(dst, math.Float64bits(a+b))
		dst, src = dst[8:], src[8:]
	}
}

func prodF64(dst, src []byte) {
	n := len(dst) &^ 7
	dst, src = dst[:n], src[:n]
	for len(dst) >= 32 && len(src) >= 32 {
		a0 := math.Float64frombits(binary.LittleEndian.Uint64(dst[0:8]))
		b0 := math.Float64frombits(binary.LittleEndian.Uint64(src[0:8]))
		a1 := math.Float64frombits(binary.LittleEndian.Uint64(dst[8:16]))
		b1 := math.Float64frombits(binary.LittleEndian.Uint64(src[8:16]))
		a2 := math.Float64frombits(binary.LittleEndian.Uint64(dst[16:24]))
		b2 := math.Float64frombits(binary.LittleEndian.Uint64(src[16:24]))
		a3 := math.Float64frombits(binary.LittleEndian.Uint64(dst[24:32]))
		b3 := math.Float64frombits(binary.LittleEndian.Uint64(src[24:32]))
		binary.LittleEndian.PutUint64(dst[0:8], math.Float64bits(a0*b0))
		binary.LittleEndian.PutUint64(dst[8:16], math.Float64bits(a1*b1))
		binary.LittleEndian.PutUint64(dst[16:24], math.Float64bits(a2*b2))
		binary.LittleEndian.PutUint64(dst[24:32], math.Float64bits(a3*b3))
		dst, src = dst[32:], src[32:]
	}
	for len(dst) >= 8 && len(src) >= 8 {
		a := math.Float64frombits(binary.LittleEndian.Uint64(dst))
		b := math.Float64frombits(binary.LittleEndian.Uint64(src))
		binary.LittleEndian.PutUint64(dst, math.Float64bits(a*b))
		dst, src = dst[8:], src[8:]
	}
}

func maxF64(dst, src []byte) {
	n := len(dst) &^ 7
	dst, src = dst[:n], src[:n]
	for len(dst) >= 8 && len(src) >= 8 {
		a := math.Float64frombits(binary.LittleEndian.Uint64(dst))
		b := math.Float64frombits(binary.LittleEndian.Uint64(src))
		binary.LittleEndian.PutUint64(dst, math.Float64bits(math.Max(a, b)))
		dst, src = dst[8:], src[8:]
	}
}

func minF64(dst, src []byte) {
	n := len(dst) &^ 7
	dst, src = dst[:n], src[:n]
	for len(dst) >= 8 && len(src) >= 8 {
		a := math.Float64frombits(binary.LittleEndian.Uint64(dst))
		b := math.Float64frombits(binary.LittleEndian.Uint64(src))
		binary.LittleEndian.PutUint64(dst, math.Float64bits(math.Min(a, b)))
		dst, src = dst[8:], src[8:]
	}
}
