package datatype

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// refElem is the reference scalar semantics the specialized kernels must
// match: per-element dispatch with widening, i.e. the pre-specialization
// Apply implementation.
func refElem(op Op, t Type, dst, src []byte, i int) {
	switch t {
	case Uint8:
		a, b := int64(dst[i]), int64(src[i])
		dst[i] = uint8(refI64(op, a, b))
	case Int32:
		a := int64(int32(binary.LittleEndian.Uint32(dst[i:])))
		b := int64(int32(binary.LittleEndian.Uint32(src[i:])))
		binary.LittleEndian.PutUint32(dst[i:], uint32(refI64(op, a, b)))
	case Int64:
		a := int64(binary.LittleEndian.Uint64(dst[i:]))
		b := int64(binary.LittleEndian.Uint64(src[i:]))
		binary.LittleEndian.PutUint64(dst[i:], uint64(refI64(op, a, b)))
	case Float32:
		a := float64(math.Float32frombits(binary.LittleEndian.Uint32(dst[i:])))
		b := float64(math.Float32frombits(binary.LittleEndian.Uint32(src[i:])))
		binary.LittleEndian.PutUint32(dst[i:], math.Float32bits(float32(refF64(op, a, b))))
	case Float64:
		a := math.Float64frombits(binary.LittleEndian.Uint64(dst[i:]))
		b := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
		binary.LittleEndian.PutUint64(dst[i:], math.Float64bits(refF64(op, a, b)))
	}
}

func refI64(op Op, a, b int64) int64 {
	switch op {
	case Sum:
		return a + b
	case Prod:
		return a * b
	case Max:
		if a > b {
			return a
		}
		return b
	case Min:
		if a < b {
			return a
		}
		return b
	case BAnd:
		return a & b
	case BOr:
		return a | b
	}
	panic("unreachable")
}

func refF64(op Op, a, b float64) float64 {
	switch op {
	case Sum:
		return a + b
	case Prod:
		return a * b
	case Max:
		return math.Max(a, b)
	case Min:
		return math.Min(a, b)
	}
	panic("unreachable")
}

// TestKernelsMatchReference cross-checks every defined (op, type) kernel,
// via both Apply and MakeReducer, against the reference per-element
// semantics on random data (bit-exact, including odd lengths per type).
func TestKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	types := []Type{Uint8, Int32, Int64, Float32, Float64}
	ops := []Op{Sum, Prod, Max, Min, BAnd, BOr}
	for _, ty := range types {
		for _, op := range ops {
			if (op == BAnd || op == BOr) && (ty == Float32 || ty == Float64) {
				continue
			}
			es := ty.Size()
			for _, elems := range []int{0, 1, 3, 17, 257} {
				n := elems * es
				dst := make([]byte, n)
				src := make([]byte, n)
				rng.Read(dst)
				rng.Read(src)
				// Keep float bit patterns finite so reference and kernel
				// only diverge on real bugs, not NaN payload propagation
				// (NaN handling is covered separately below).
				if ty == Float32 || ty == Float64 {
					sanitizeFloats(ty, dst)
					sanitizeFloats(ty, src)
				}
				want := append([]byte(nil), dst...)
				for i := 0; i < n; i += es {
					refElem(op, ty, want, src, i)
				}

				got := append([]byte(nil), dst...)
				if err := Apply(op, ty, got, src); err != nil {
					t.Fatalf("Apply(%v,%v): %v", op, ty, err)
				}
				if string(got) != string(want) {
					t.Fatalf("Apply(%v,%v) n=%d diverges from reference", op, ty, elems)
				}

				r, err := MakeReducer(op, ty)
				if err != nil {
					t.Fatalf("MakeReducer(%v,%v): %v", op, ty, err)
				}
				got2 := append([]byte(nil), dst...)
				if err := r(got2, src); err != nil {
					t.Fatalf("reducer(%v,%v): %v", op, ty, err)
				}
				if string(got2) != string(want) {
					t.Fatalf("MakeReducer(%v,%v) n=%d diverges from reference", op, ty, elems)
				}
			}
		}
	}
}

func sanitizeFloats(ty Type, buf []byte) {
	switch ty {
	case Float32:
		for i := 0; i+4 <= len(buf); i += 4 {
			if f := math.Float32frombits(binary.LittleEndian.Uint32(buf[i:])); math.IsNaN(float64(f)) || math.IsInf(float64(f), 0) {
				binary.LittleEndian.PutUint32(buf[i:], math.Float32bits(1.5))
			}
		}
	case Float64:
		for i := 0; i+8 <= len(buf); i += 8 {
			if f := math.Float64frombits(binary.LittleEndian.Uint64(buf[i:])); math.IsNaN(f) || math.IsInf(f, 0) {
				binary.LittleEndian.PutUint64(buf[i:], math.Float64bits(2.5))
			}
		}
	}
}

// TestFloatMinMaxNaN pins math.Max/math.Min NaN semantics in the
// specialized float kernels.
func TestFloatMinMaxNaN(t *testing.T) {
	dst := EncodeFloat64([]float64{math.NaN(), 1})
	src := EncodeFloat64([]float64{2, math.NaN()})
	if err := Apply(Max, Float64, dst, src); err != nil {
		t.Fatal(err)
	}
	got := DecodeFloat64(dst)
	if !math.IsNaN(got[0]) || !math.IsNaN(got[1]) {
		t.Errorf("Max with NaN = %v, want NaN propagation (math.Max semantics)", got)
	}
}

// TestApplyBitwiseFloatError is the regression test for the panic path:
// a bitwise op reaching a float buffer through the exported Apply must
// return the same error MakeReducer gives, not crash the rank.
func TestApplyBitwiseFloatError(t *testing.T) {
	for _, op := range []Op{BAnd, BOr} {
		for _, ty := range []Type{Float32, Float64} {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Apply(%v,%v) panicked: %v", op, ty, r)
				}
			}()
			err := Apply(op, ty, make([]byte, 8), make([]byte, 8))
			if err == nil {
				t.Fatalf("Apply(%v,%v) = nil, want error", op, ty)
			}
			_, werr := MakeReducer(op, ty)
			if werr == nil || err.Error() != werr.Error() {
				t.Errorf("Apply(%v,%v) error %q does not match MakeReducer error %q", op, ty, err, werr)
			}
		}
	}
}

// TestApplyUnknownOpType: out-of-range ops and types error instead of
// panicking.
func TestApplyUnknownOpType(t *testing.T) {
	if err := Apply(Op(99), Float64, make([]byte, 8), make([]byte, 8)); err == nil {
		t.Error("unknown op: want error")
	}
	if err := Apply(Sum, Type(99), make([]byte, 8), make([]byte, 8)); err == nil {
		t.Error("unknown type: want error")
	}
	if _, err := MakeReducer(Op(-1), Uint8); err == nil {
		t.Error("negative op: want error")
	}
}

// TestReducerZeroAlloc: the specialized reducer itself must not allocate.
func TestReducerZeroAlloc(t *testing.T) {
	r, err := MakeReducer(Sum, Float64)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 4096)
	src := make([]byte, 4096)
	allocs := testing.AllocsPerRun(100, func() {
		if err := r(dst, src); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("reducer allocs/op = %g, want 0", allocs)
	}
}
