// Package datatype defines the element types and reduction operators that
// reduction collectives (Reduce, Allreduce, Reduce-scatter) operate on.
//
// Collective algorithms move opaque byte buffers; only the reduction
// operator needs to interpret them. This mirrors MPI, where datatypes and
// MPI_Op are orthogonal to the communication algorithm.
package datatype

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Type enumerates the supported element types.
type Type int

// Supported element types.
const (
	Uint8 Type = iota
	Int32
	Int64
	Float32
	Float64
)

// Size returns the size in bytes of one element.
func (t Type) Size() int {
	switch t {
	case Uint8:
		return 1
	case Int32, Float32:
		return 4
	case Int64, Float64:
		return 8
	default:
		panic(fmt.Sprintf("datatype: unknown type %d", int(t)))
	}
}

// String returns the type's name.
func (t Type) String() string {
	switch t {
	case Uint8:
		return "uint8"
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Op enumerates the supported reduction operators. All are associative and
// commutative, which the recursive and ring algorithms rely on.
type Op int

// Supported reduction operators.
const (
	Sum Op = iota
	Prod
	Max
	Min
	BAnd // bitwise and (integer types only)
	BOr  // bitwise or (integer types only)
)

// String returns the operator's name.
func (o Op) String() string {
	switch o {
	case Sum:
		return "sum"
	case Prod:
		return "prod"
	case Max:
		return "max"
	case Min:
		return "min"
	case BAnd:
		return "band"
	case BOr:
		return "bor"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Reducer combines src into dst element-wise: dst[i] = dst[i] OP src[i].
// Buffers must have equal length, a multiple of the element size.
type Reducer func(dst, src []byte) error

// MakeReducer returns the Reducer for (op, t), or an error for unsupported
// combinations (bitwise ops on floating-point types, unknown ops or types).
// The returned Reducer is a single monomorphic loop specialized to the
// (op, t) pair — there is no per-element operator or type dispatch.
func MakeReducer(op Op, t Type) (Reducer, error) {
	k := kernelFor(op, t)
	if k == nil {
		return nil, opTypeError(op, t)
	}
	es := t.Size()
	return func(dst, src []byte) error {
		if err := checkBufs(dst, src, es); err != nil {
			return err
		}
		k(dst, src)
		return nil
	}, nil
}

// Apply combines src into dst element-wise: dst[i] = dst[i] OP src[i].
// Undefined (op, t) combinations return the same error MakeReducer gives
// rather than panicking mid-collective.
func Apply(op Op, t Type, dst, src []byte) error {
	k := kernelFor(op, t)
	if k == nil {
		return opTypeError(op, t)
	}
	if err := checkBufs(dst, src, t.Size()); err != nil {
		return err
	}
	k(dst, src)
	return nil
}

func checkBufs(dst, src []byte, es int) error {
	if len(dst) != len(src) {
		return fmt.Errorf("datatype: length mismatch dst=%d src=%d", len(dst), len(src))
	}
	if len(dst)%es != 0 {
		return fmt.Errorf("datatype: buffer length %d not a multiple of element size %d", len(dst), es)
	}
	return nil
}

func opTypeError(op Op, t Type) error {
	return fmt.Errorf("datatype: %v not defined for %v", op, t)
}

// EncodeFloat64 serializes vals into a fresh byte buffer.
func EncodeFloat64(vals []float64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

// DecodeFloat64 deserializes a buffer produced by EncodeFloat64.
func DecodeFloat64(buf []byte) []float64 {
	vals := make([]float64, len(buf)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return vals
}

// EncodeInt64 serializes vals into a fresh byte buffer.
func EncodeInt64(vals []int64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	return buf
}

// DecodeInt64 deserializes a buffer produced by EncodeInt64.
func DecodeInt64(buf []byte) []int64 {
	vals := make([]int64, len(buf)/8)
	for i := range vals {
		vals[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return vals
}
