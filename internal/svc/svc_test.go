package svc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"exacoll/gca"
	"exacoll/internal/metrics"
)

// TestQoSTablesValid proves every class's table passes the registry
// validation (ladders ascending, unbounded final rung, generalized
// algorithms with k >= 1) across world sizes including 1, odd, and
// non-powers of two.
func TestQoSTablesValid(t *testing.T) {
	for _, q := range []QoS{QoSLatency, QoSThroughput} {
		for _, p := range []int{1, 2, 3, 4, 7, 8, 16, 33, 100} {
			if err := tableFor(q, p).Validate(); err != nil {
				t.Errorf("tableFor(%s, %d): %v", q, p, err)
			}
		}
	}
	if err := QoS("batch").validate(); err == nil {
		t.Error("unknown QoS class accepted")
	}
}

func sumF64(t *testing.T, tn *Tenant) {
	t.Helper()
	p := tn.Size()
	want := float64(p*(p+1)) / 2
	err := tn.Run(func(rank int, s *gca.Session) error {
		send := make([]byte, 8)
		recv := make([]byte, 8)
		binary.LittleEndian.PutUint64(send, math.Float64bits(float64(rank+1)))
		if err := s.Allreduce(send, recv, gca.Sum, gca.Float64); err != nil {
			return err
		}
		if got := math.Float64frombits(binary.LittleEndian.Uint64(recv)); got != want {
			t.Errorf("tenant %s rank %d: allreduce = %v, want %v", tn.ID(), rank, got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOpenRunClose is the basic lifecycle: admit, run a collective on
// every rank, observe per-tenant metrics, retire.
func TestOpenRunClose(t *testing.T) {
	srv := NewServer(Config{OpTimeout: 5 * time.Second})
	defer srv.Close()

	tn, err := srv.Open("alpha", QoSLatency, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tn.ID() != "alpha" || tn.QoS() != QoSLatency || tn.Size() != 4 {
		t.Fatalf("tenant identity = (%s, %s, %d)", tn.ID(), tn.QoS(), tn.Size())
	}
	sumF64(t, tn)

	snap := tn.Snapshot()
	if snap.Tenant != "alpha" || snap.QoS != "latency" {
		t.Fatalf("snapshot identity = (%s, %s)", snap.Tenant, snap.QoS)
	}
	var sends uint64
	for _, r := range snap.Snapshot.Ranks {
		sends += r.Sends
	}
	if sends == 0 {
		t.Fatal("allreduce recorded no sends in the tenant registry")
	}

	st := srv.Stats()
	if st.Live != 1 || st.Opened != 1 || st.Worlds != 1 {
		t.Fatalf("stats = %+v", st)
	}
	tn.Close()
	tn.Close() // idempotent
	if st := srv.Stats(); st.Live != 0 || st.Opened != 1 {
		t.Fatalf("stats after close = %+v", st)
	}
}

// TestWorldSharingAndSlotRecycling pins the pooling contract: same-size
// tenants share one host world under distinct namespace slots, a retired
// tenant's slot is recycled, and a different size gets its own world.
func TestWorldSharingAndSlotRecycling(t *testing.T) {
	srv := NewServer(Config{})
	defer srv.Close()

	t1, err := srv.Open("t1", QoSLatency, 4)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := srv.Open("t2", QoSThroughput, 4)
	if err != nil {
		t.Fatal(err)
	}
	if t1.hw != t2.hw {
		t.Fatal("same-size tenants did not share a host world")
	}
	if t1.slot == t2.slot {
		t.Fatalf("cotenants share namespace slot %d", t1.slot)
	}
	t3, err := srv.Open("t3", QoSLatency, 8)
	if err != nil {
		t.Fatal(err)
	}
	if t3.hw == t1.hw {
		t.Fatal("different-size tenants share a host world")
	}

	slot1 := t1.slot
	t1.Close()
	t4, err := srv.Open("t4", QoSLatency, 4)
	if err != nil {
		t.Fatal(err)
	}
	if t4.hw != t2.hw || t4.slot != slot1 {
		t.Fatalf("retired slot not recycled: world shared=%v slot=%d want %d",
			t4.hw == t2.hw, t4.slot, slot1)
	}
	sumF64(t, t4) // the recycled window is clean
}

// TestWorldOverflow: the ninth same-size tenant overflows
// maxTenantsPerWorld and lands on a second world.
func TestWorldOverflow(t *testing.T) {
	srv := NewServer(Config{})
	defer srv.Close()
	var tenants []*Tenant
	for i := 0; i < maxTenantsPerWorld+1; i++ {
		tn, err := srv.Open(string(rune('a'+i)), QoSLatency, 2)
		if err != nil {
			t.Fatal(err)
		}
		tenants = append(tenants, tn)
	}
	if got := srv.Stats().Worlds; got != 2 {
		t.Fatalf("worlds = %d, want 2 after overflow", got)
	}
	for _, tn := range tenants {
		if tn != tenants[0] && tn.hw != tenants[0].hw {
			if tn != tenants[len(tenants)-1] {
				t.Errorf("tenant %s left world 0 before it filled", tn.ID())
			}
		}
	}
}

// TestAdmissionBusy: with no queue a full server fails fast.
func TestAdmissionBusy(t *testing.T) {
	srv := NewServer(Config{MaxSessions: 1})
	defer srv.Close()

	t1, err := srv.Open("t1", QoSLatency, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Open("t2", QoSLatency, 2); !errors.Is(err, ErrBusy) {
		t.Fatalf("open on full server = %v, want ErrBusy", err)
	}
	if st := srv.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	t1.Close()
	t2, err := srv.Open("t2", QoSLatency, 2)
	if err != nil {
		t.Fatalf("open after slot freed: %v", err)
	}
	t2.Close()
}

// TestAdmissionQueue: a parked open is admitted when a slot frees; a
// waiter beyond the queue bound bounces; a waiter that outlives
// AdmitTimeout expires.
func TestAdmissionQueue(t *testing.T) {
	srv := NewServer(Config{MaxSessions: 1, QueueLen: 1, AdmitTimeout: 30 * time.Second})
	defer srv.Close()

	t1, err := srv.Open("t1", QoSLatency, 2)
	if err != nil {
		t.Fatal(err)
	}
	parked := make(chan error, 1)
	go func() {
		tn, err := srv.Open("t2", QoSLatency, 2)
		if tn != nil {
			defer tn.Close()
		}
		parked <- err
	}()
	waitQueued(t, srv, 1)

	// Queue full: the third open bounces immediately.
	if _, err := srv.Open("t3", QoSLatency, 2); !errors.Is(err, ErrBusy) {
		t.Fatalf("open with full queue = %v, want ErrBusy", err)
	}

	t1.Close()
	if err := <-parked; err != nil {
		t.Fatalf("parked open after slot freed: %v", err)
	}

	// Expiry: park an open behind a tenant nobody closes.
	exp := NewServer(Config{MaxSessions: 1, QueueLen: 1, AdmitTimeout: 50 * time.Millisecond})
	defer exp.Close()
	hold, err := exp.Open("hold", QoSLatency, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()
	if _, err := exp.Open("late", QoSLatency, 2); !errors.Is(err, ErrAdmissionTimeout) {
		t.Fatalf("expired open = %v, want ErrAdmissionTimeout", err)
	}
	if st := exp.Stats(); st.Expired != 1 {
		t.Fatalf("expired = %d, want 1", st.Expired)
	}
}

func waitQueued(t *testing.T, srv *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Queued < n {
		if time.Now().After(deadline) {
			t.Fatalf("queued never reached %d", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOpenValidation covers the argument checks and duplicate ids.
func TestOpenValidation(t *testing.T) {
	srv := NewServer(Config{MaxRanks: 8})
	defer srv.Close()

	if _, err := srv.Open("", QoSLatency, 2); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := srv.Open("t", QoS("bulk"), 2); err == nil {
		t.Error("unknown QoS accepted")
	}
	if _, err := srv.Open("t", QoSLatency, 0); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := srv.Open("t", QoSLatency, 9); err == nil {
		t.Error("ranks beyond MaxRanks accepted")
	}
	t1, err := srv.Open("t", QoSLatency, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Open("t", QoSLatency, 2); err == nil {
		t.Error("duplicate live id accepted")
	}
	t1.Close()
	t2, err := srv.Open("t", QoSLatency, 2)
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	t2.Close()
}

// TestServerClose: close releases parked opens with ErrClosed, closes
// every live tenant, and rejects later opens.
func TestServerClose(t *testing.T) {
	srv := NewServer(Config{MaxSessions: 1, QueueLen: 1, AdmitTimeout: 30 * time.Second})
	if _, err := srv.Open("t1", QoSLatency, 2); err != nil {
		t.Fatal(err)
	}
	parked := make(chan error, 1)
	go func() {
		_, err := srv.Open("t2", QoSLatency, 2)
		parked <- err
	}()
	waitQueued(t, srv, 1)
	srv.Close()
	if err := <-parked; !errors.Is(err, ErrClosed) {
		t.Fatalf("parked open on close = %v, want ErrClosed", err)
	}
	if _, err := srv.Open("t3", QoSLatency, 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("open after close = %v, want ErrClosed", err)
	}
	if st := srv.Stats(); st.Live != 0 {
		t.Fatalf("live = %d after close", st.Live)
	}
	srv.Close() // idempotent
}

// TestTenantsExport: Tenants() feeds the multi-tenant Prometheus exporter
// with sorted identities.
func TestTenantsExport(t *testing.T) {
	srv := NewServer(Config{})
	defer srv.Close()
	tb, err := srv.Open("bravo", QoSThroughput, 2)
	if err != nil {
		t.Fatal(err)
	}
	ta, err := srv.Open("alpha", QoSLatency, 2)
	if err != nil {
		t.Fatal(err)
	}
	sumF64(t, ta)
	sumF64(t, tb)

	tns := srv.Tenants()
	if len(tns) != 2 || tns[0].Tenant != "alpha" || tns[1].Tenant != "bravo" {
		t.Fatalf("tenants = %+v", tns)
	}
	var buf bytes.Buffer
	if err := metrics.WritePrometheusTenants(&buf, tns); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`{tenant="alpha",qos="latency",rank="0"}`,
		`{tenant="bravo",qos="throughput",rank="0"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %s:\n%s", want, out)
		}
	}
}
