package svc

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"exacoll/gca"
)

func isoEnc(vals ...float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

func isoDec(buf []byte) []float64 {
	out := make([]float64, len(buf)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out
}

// batterySeeded runs every Table I collective with tenant-specific data
// (everything derived from seed) and checks bit-exact results. Any
// cross-tenant tag match would mix another tenant's seed into a result
// and fail the comparison.
func batterySeeded(s *gca.Session, seed int) error {
	p, me := s.Size(), s.Rank()
	base := float64(seed)
	total := base*float64(p) + float64(p*(p+1))/2 // sum of base + rank+1

	buf := make([]byte, 16)
	if me == 0 {
		for i := range buf {
			buf[i] = byte(seed + i + 1)
		}
	}
	if err := s.Bcast(buf, 0); err != nil {
		return fmt.Errorf("bcast: %w", err)
	}
	for i := range buf {
		if buf[i] != byte(seed+i+1) {
			return fmt.Errorf("bcast[%d] = %d, want %d", i, buf[i], byte(seed+i+1))
		}
	}

	red := make([]byte, 8)
	if err := s.Reduce(isoEnc(base+float64(me+1)), red, gca.Sum, gca.Float64, 0); err != nil {
		return fmt.Errorf("reduce: %w", err)
	}
	if me == 0 && isoDec(red)[0] != total {
		return fmt.Errorf("reduce = %v, want %v", isoDec(red)[0], total)
	}

	ar := make([]byte, 8)
	if err := s.Allreduce(isoEnc(base+float64(me+1)), ar, gca.Sum, gca.Float64); err != nil {
		return fmt.Errorf("allreduce: %w", err)
	}
	if isoDec(ar)[0] != total {
		return fmt.Errorf("allreduce = %v, want %v", isoDec(ar)[0], total)
	}

	gat := make([]byte, 4*p)
	blk := []byte{byte(seed + me), byte(seed + me), byte(seed + me), byte(seed + me)}
	if err := s.Gather(blk, gat, 0); err != nil {
		return fmt.Errorf("gather: %w", err)
	}
	if me == 0 {
		for j := 0; j < p; j++ {
			if gat[4*j] != byte(seed+j) {
				return fmt.Errorf("gather block %d = %d, want %d", j, gat[4*j], byte(seed+j))
			}
		}
	}

	var scat []byte
	if me == 0 {
		scat = make([]byte, 4*p)
		for j := 0; j < p; j++ {
			for k := 0; k < 4; k++ {
				scat[4*j+k] = byte(seed + j)
			}
		}
	}
	mine := make([]byte, 4)
	if err := s.Scatter(scat, mine, 0); err != nil {
		return fmt.Errorf("scatter: %w", err)
	}
	if mine[0] != byte(seed+me) {
		return fmt.Errorf("scatter block = %d, want %d", mine[0], byte(seed+me))
	}

	ag := make([]byte, 4*p)
	if err := s.Allgather(blk, ag); err != nil {
		return fmt.Errorf("allgather: %w", err)
	}
	for j := 0; j < p; j++ {
		if ag[4*j] != byte(seed+j) {
			return fmt.Errorf("allgather block %d = %d, want %d", j, ag[4*j], byte(seed+j))
		}
	}

	vec := make([]float64, p)
	for i := range vec {
		vec[i] = base + float64(me+1)
	}
	rs := make([]byte, s.ReduceScatterBlockSize(8*p, gca.Float64))
	if err := s.ReduceScatter(isoEnc(vec...), rs, gca.Sum, gca.Float64); err != nil {
		return fmt.Errorf("reduce_scatter: %w", err)
	}
	for i, v := range isoDec(rs) {
		if v != total {
			return fmt.Errorf("reduce_scatter[%d] = %v, want %v", i, v, total)
		}
	}

	a2aSend := make([]byte, 8*p)
	for j := 0; j < p; j++ {
		for k := 0; k < 8; k++ {
			a2aSend[8*j+k] = byte(seed + me*p + j)
		}
	}
	a2aRecv := make([]byte, 8*p)
	if err := s.Alltoall(a2aSend, a2aRecv); err != nil {
		return fmt.Errorf("alltoall: %w", err)
	}
	for j := 0; j < p; j++ {
		if a2aRecv[8*j] != byte(seed+j*p+me) {
			return fmt.Errorf("alltoall block %d = %d, want %d", j, a2aRecv[8*j], byte(seed+j*p+me))
		}
	}

	scan := make([]byte, 8)
	if err := s.Scan(isoEnc(base+float64(me+1)), scan, gca.Sum, gca.Float64); err != nil {
		return fmt.Errorf("scan: %w", err)
	}
	if want := base*float64(me+1) + float64((me+1)*(me+2))/2; isoDec(scan)[0] != want {
		return fmt.Errorf("scan = %v, want %v", isoDec(scan)[0], want)
	}

	return s.Barrier()
}

// nbcInterleaved starts a nonblocking schedule, runs the full blocking
// battery while it is in flight, then completes and checks it — so the
// two tenants' schedules interleave arbitrarily on the shared endpoints.
func nbcInterleaved(s *gca.Session, seed int) error {
	p, me := s.Size(), s.Rank()
	base := float64(seed)
	total := base*float64(p) + float64(p*(p+1))/2

	bb := make([]byte, 8)
	if me == 0 {
		for i := range bb {
			bb[i] = byte(seed + 7 + i)
		}
	}
	ibr, err := s.IBcast(bb, 0)
	if err != nil {
		return fmt.Errorf("ibcast start: %w", err)
	}
	arIn, arOut := isoEnc(base+float64(me+1)), make([]byte, 8)
	iar, err := s.IAllreduce(arIn, arOut, gca.Sum, gca.Float64)
	if err != nil {
		return fmt.Errorf("iallreduce start: %w", err)
	}
	agIn := []byte{byte(seed + me), byte(seed + me)}
	agOut := make([]byte, 2*p)
	iag, err := s.IAllgather(agIn, agOut)
	if err != nil {
		return fmt.Errorf("iallgather start: %w", err)
	}
	vec := make([]float64, p)
	for i := range vec {
		vec[i] = base + float64(me+1)
	}
	rsOut := make([]byte, s.ReduceScatterBlockSize(8*p, gca.Float64))
	irs, err := s.IReduceScatter(isoEnc(vec...), rsOut, gca.Sum, gca.Float64)
	if err != nil {
		return fmt.Errorf("ireducescatter start: %w", err)
	}
	rdOut := make([]byte, 8)
	ird, err := s.IReduce(isoEnc(base+float64(me+1)), rdOut, gca.Sum, gca.Float64, 0)
	if err != nil {
		return fmt.Errorf("ireduce start: %w", err)
	}

	// The whole blocking battery runs while five collectives are in
	// flight on the same session.
	if err := batterySeeded(s, seed); err != nil {
		return fmt.Errorf("blocking battery under nbc load: %w", err)
	}

	for _, r := range []gca.CollRequest{ibr, iar, iag, irs, ird} {
		if err := r.Wait(); err != nil {
			return fmt.Errorf("nbc wait: %w", err)
		}
	}
	for i := range bb {
		if bb[i] != byte(seed+7+i) {
			return fmt.Errorf("ibcast[%d] = %d, want %d", i, bb[i], byte(seed+7+i))
		}
	}
	if isoDec(arOut)[0] != total {
		return fmt.Errorf("iallreduce = %v, want %v", isoDec(arOut)[0], total)
	}
	for j := 0; j < p; j++ {
		if agOut[2*j] != byte(seed+j) {
			return fmt.Errorf("iallgather block %d = %d, want %d", j, agOut[2*j], byte(seed+j))
		}
	}
	for i, v := range isoDec(rsOut) {
		if v != total {
			return fmt.Errorf("ireducescatter[%d] = %v, want %v", i, v, total)
		}
	}
	if me == 0 && isoDec(rdOut)[0] != total {
		return fmt.Errorf("ireduce = %v, want %v", isoDec(rdOut)[0], total)
	}
	return nil
}

// TestTagWindowIsolation is the cross-tenant isolation proof: two tenants
// sharing one host world (same endpoints, same wire) run every Table I
// collective plus interleaved nonblocking schedules concurrently, each
// over tenant-specific data. Bit-exact results on both sides mean no
// message of one tenant ever matched a receive of the other — the
// namespace windows held under full concurrent load (run with -race).
func TestTagWindowIsolation(t *testing.T) {
	srv := NewServer(Config{})
	defer srv.Close()

	const p = 4
	t1, err := srv.Open("iso-1", QoSLatency, p)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := srv.Open("iso-2", QoSThroughput, p)
	if err != nil {
		t.Fatal(err)
	}
	if t1.hw != t2.hw {
		t.Fatal("tenants must share a host world for this test to mean anything")
	}

	const iters = 3
	done := make(chan error, 2)
	for i, tn := range []*Tenant{t1, t2} {
		seed := 1000 * (i + 1)
		go func(tn *Tenant, seed int) {
			done <- tn.Run(func(rank int, s *gca.Session) error {
				for it := 0; it < iters; it++ {
					if err := nbcInterleaved(s, seed+17*it); err != nil {
						return fmt.Errorf("iter %d: %w", it, err)
					}
				}
				return nil
			})
		}(tn, seed)
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}

	// Sanity: the two tenants really did record disjoint telemetry.
	s1, s2 := t1.Snapshot(), t2.Snapshot()
	if len(s1.Snapshot.Ranks) == 0 || len(s2.Snapshot.Ranks) == 0 {
		t.Fatal("a tenant recorded no traffic")
	}
	var b1, b2 bytes.Buffer
	fmt.Fprintf(&b1, "%+v", s1.Snapshot.Collectives)
	fmt.Fprintf(&b2, "%+v", s2.Snapshot.Collectives)
	if b1.String() == b2.String() {
		t.Log("note: tenants recorded identical collective mixes (expected: different QoS tables)")
	}
}
