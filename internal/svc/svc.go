// Package svc is the long-lived collective service: one process hosting
// many concurrent tenants, each running its own world of collective
// sessions, with hard isolation between them.
//
// The isolation stack, bottom to top:
//
//   - Tag namespaces (comm.Namespace): cotenants sharing a host world each
//     see the full canonical tag layout, translated into a private window
//     of the real tag space — a message sent in one tenant's namespace can
//     never match a receive posted in another's, whatever tags, epochs, or
//     nonblocking schedules either runs. Windows are recycled only after a
//     purge, so a dead tenant's stragglers die with it.
//   - Admission control: a semaphore of Config.MaxSessions live tenants
//     plus a bounded queue of Config.QueueLen parked opens; beyond that,
//     Open fails fast with ErrBusy rather than letting load grow unbounded.
//   - QoS classes: each tenant picks a selection-table class — latency
//     (fewest rounds, high radices) or throughput (bandwidth-optimal
//     rings and pipelines) — so one tenant's tuning never bleeds into
//     another's.
//   - Per-tenant metrics: every tenant records into its own registry,
//     exported with {tenant, qos} labels (metrics.WritePrometheusTenants).
//
// Host worlds are pooled: tenants of the same size share a world (bounded
// by maxTenantsPerWorld) instead of each paying for their own, and an idle
// world per size is kept warm for the next arrival. The same pooling idea
// applies across processes — transport/tcp.Pool shares one mesh of TCP
// links between sessions on the same host pair.
package svc

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"exacoll/gca"
	"exacoll/internal/comm"
	"exacoll/internal/metrics"
	"exacoll/internal/transport/mem"
)

var (
	// ErrBusy means the server is at capacity and its admission queue is
	// full; the caller may retry later.
	ErrBusy = errors.New("svc: server at capacity")
	// ErrAdmissionTimeout means the open was parked in the admission queue
	// but no slot freed within Config.AdmitTimeout.
	ErrAdmissionTimeout = errors.New("svc: admission wait timed out")
	// ErrClosed means the server is shut down.
	ErrClosed = errors.New("svc: server closed")
	// ErrBreakerOpen means the tenant's circuit breaker tripped after
	// repeated failures: work is refused until the cooldown elapses, then
	// one trial run is allowed through to probe recovery.
	ErrBreakerOpen = errors.New("svc: tenant circuit breaker open")
)

// maxTenantsPerWorld bounds cotenancy on one host world: enough sharing
// to amortize the world, little enough that endpoint contention stays low.
const maxTenantsPerWorld = 8

// Config parameterizes a Server. Zero values select the defaults.
type Config struct {
	// MaxSessions caps concurrently live tenants (default 64).
	MaxSessions int
	// QueueLen caps opens parked waiting for a slot (default 0: full
	// servers fail fast with ErrBusy).
	QueueLen int
	// AdmitTimeout bounds a parked open's wait (default 5s).
	AdmitTimeout time.Duration
	// MaxRanks caps one tenant's world size (default 512).
	MaxRanks int
	// OpTimeout, when non-zero, bounds every blocking operation of every
	// tenant session, so one wedged tenant cannot hold its goroutines
	// forever.
	OpTimeout time.Duration
	// BreakerThreshold is how many consecutive Run failures trip a
	// tenant's circuit breaker (default 3; negative disables).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker refuses work before
	// letting one trial run probe recovery (default 5s).
	BreakerCooldown time.Duration
	// DrainTimeout bounds how long Close waits for in-flight tenant runs
	// to finish before tearing worlds down under them (default 5s;
	// negative skips draining).
	DrainTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.AdmitTimeout <= 0 {
		c.AdmitTimeout = 5 * time.Second
	}
	if c.MaxRanks <= 0 {
		c.MaxRanks = 512
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 5 * time.Second
	}
	return c
}

// hostWorld is one pooled mem world and its namespace-slot allocator.
type hostWorld struct {
	w        *mem.World
	size     int
	tenants  int   // live tenants on this world
	nextSlot int   // first never-used slot
	free     []int // purged slots ready for reuse
	dead     bool  // a rank died: evicted from placement, never kept warm
}

// checkDead probes the world's failure detector: any killed rank makes
// the whole pooled world unusable for placement (cotenants share every
// rank, so one dead rank poisons all of them).
func (hw *hostWorld) checkDead() bool {
	if hw.dead {
		return true
	}
	if fd, ok := hw.w.Comm(0).(comm.FailureDetector); ok && len(fd.Failed()) > 0 {
		hw.dead = true
	}
	return hw.dead
}

// takeSlot allocates a namespace slot, preferring recycled ones.
func (hw *hostWorld) takeSlot() (int, bool) {
	if n := len(hw.free); n > 0 {
		s := hw.free[n-1]
		hw.free = hw.free[:n-1]
		return s, true
	}
	if hw.nextSlot < comm.NamespaceSlots {
		s := hw.nextSlot
		hw.nextSlot++
		return s, true
	}
	return 0, false
}

// Server hosts tenants. Safe for concurrent use.
type Server struct {
	cfg     Config
	sem     chan struct{}
	stop    chan struct{}
	waiters atomic.Int64

	rejected atomic.Uint64
	expired  atomic.Uint64
	evicted  atomic.Uint64
	inflight atomic.Int64 // tenant Runs currently executing (drain gate)

	mu      sync.Mutex
	closed  bool
	worlds  map[int][]*hostWorld // by world size
	tenants map[string]*Tenant
	opened  uint64
}

// NewServer starts an empty server.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxSessions),
		stop:    make(chan struct{}),
		worlds:  map[int][]*hostWorld{},
		tenants: map[string]*Tenant{},
	}
}

// admit takes one live-tenant slot, parking in the bounded queue when the
// server is full.
func (s *Server) admit() error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	if s.cfg.QueueLen <= 0 {
		s.rejected.Add(1)
		return ErrBusy
	}
	if s.waiters.Add(1) > int64(s.cfg.QueueLen) {
		s.waiters.Add(-1)
		s.rejected.Add(1)
		return ErrBusy
	}
	defer s.waiters.Add(-1)
	timer := time.NewTimer(s.cfg.AdmitTimeout)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-timer.C:
		s.expired.Add(1)
		return ErrAdmissionTimeout
	case <-s.stop:
		return ErrClosed
	}
}

// Open admits a new tenant: a world of `ranks` collective sessions under
// the given QoS class, isolated from every cotenant. The id must be
// unique among live tenants (it becomes the tenant metrics label).
func (s *Server) Open(id string, qos QoS, ranks int) (*Tenant, error) {
	if id == "" {
		return nil, fmt.Errorf("svc: empty tenant id")
	}
	if err := qos.validate(); err != nil {
		return nil, err
	}
	if ranks < 1 || ranks > s.cfg.MaxRanks {
		return nil, fmt.Errorf("svc: ranks %d outside [1, %d]", ranks, s.cfg.MaxRanks)
	}
	if err := s.admit(); err != nil {
		return nil, err
	}
	release := func() { <-s.sem }

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		release()
		return nil, ErrClosed
	}
	if _, dup := s.tenants[id]; dup {
		s.mu.Unlock()
		release()
		return nil, fmt.Errorf("svc: tenant %q already live", id)
	}
	hw, slot, err := s.placeLocked(ranks)
	if err != nil {
		s.mu.Unlock()
		release()
		return nil, err
	}
	t := &Tenant{id: id, qos: qos, srv: s, hw: hw, slot: slot, reg: metrics.NewRegistry()}
	s.tenants[id] = t
	s.opened++
	s.mu.Unlock()

	// Build the per-rank stack outside the server lock: namespace over a
	// fresh per-tenant handle, then a session under the QoS class's table.
	t.nss = make([]*comm.Namespace, ranks)
	t.sessions = make([]*gca.Session, ranks)
	tab := tableFor(qos, ranks)
	for r := 0; r < ranks; r++ {
		ns, err := comm.NewNamespace(hw.w.Comm(r), slot)
		if err != nil {
			t.teardown()
			return nil, err
		}
		t.nss[r] = ns
		opts := []gca.SessionOption{gca.WithTable(tab), gca.WithMetrics(t.reg)}
		if s.cfg.OpTimeout > 0 {
			opts = append(opts, gca.WithTimeout(s.cfg.OpTimeout))
		}
		t.sessions[r] = gca.NewSession(ns, opts...)
	}
	return t, nil
}

// placeLocked finds (or creates) a host world with room for one more
// tenant of the given size and allocates its namespace slot.
// deadCheckLocked probes a world's liveness, counting the false→true
// transition as an eviction (the moment the world leaves the placement
// pool, even if lingering tenants keep its memory alive a little longer).
func (s *Server) deadCheckLocked(hw *hostWorld) bool {
	was := hw.dead
	if hw.checkDead() && !was {
		s.evicted.Add(1)
	}
	return hw.dead
}

func (s *Server) placeLocked(ranks int) (*hostWorld, int, error) {
	for _, hw := range s.worlds[ranks] {
		if hw.tenants >= maxTenantsPerWorld || s.deadCheckLocked(hw) {
			continue
		}
		if slot, ok := hw.takeSlot(); ok {
			hw.tenants++
			return hw, slot, nil
		}
	}
	hw := &hostWorld{w: mem.NewWorld(ranks), size: ranks}
	slot, _ := hw.takeSlot() // a fresh world always has slot 0
	hw.tenants = 1
	s.worlds[ranks] = append(s.worlds[ranks], hw)
	return hw, slot, nil
}

// removeLocked returns a tenant's slot to its world, keeping one idle
// world per size warm and closing surplus ones. A dead world is never
// kept warm: once its last tenant leaves it is evicted and torn down.
func (s *Server) removeLocked(t *Tenant) {
	hw := t.hw
	hw.tenants--
	hw.free = append(hw.free, t.slot)
	if hw.tenants > 0 {
		return
	}
	if !s.deadCheckLocked(hw) {
		idle := 0
		for _, o := range s.worlds[hw.size] {
			if o.tenants == 0 && !o.dead {
				idle++
			}
		}
		if idle <= 1 {
			return
		}
	}
	ws := s.worlds[hw.size]
	for i, o := range ws {
		if o == hw {
			ws[i] = ws[len(ws)-1]
			s.worlds[hw.size] = ws[:len(ws)-1]
			break
		}
	}
	hw.w.Close()
}

// Stats is a point-in-time accounting of the server.
type Stats struct {
	Live     int    `json:"live"`      // live tenants
	Queued   int    `json:"queued"`    // opens parked in the admission queue
	Worlds   int    `json:"worlds"`    // pooled host worlds (incl. idle)
	Opened   uint64 `json:"opened"`    // tenants admitted since start
	Rejected uint64 `json:"rejected"`  // opens bounced with ErrBusy
	Expired  uint64 `json:"timed_out"` // opens expired in the queue
}

// Stats returns current totals.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	worlds := 0
	for _, ws := range s.worlds {
		worlds += len(ws)
	}
	return Stats{
		Live:     len(s.tenants),
		Queued:   int(s.waiters.Load()),
		Worlds:   worlds,
		Opened:   s.opened,
		Rejected: s.rejected.Load(),
		Expired:  s.expired.Load(),
	}
}

// Health is the server's degradation report: the /healthz payload.
type Health struct {
	// Status is "ok", or "degraded" when the server is closing, a dead
	// world still hosts tenants, or any tenant's breaker is open.
	Status string `json:"status"`
	// Pools is the number of pooled host worlds (including idle and dead).
	Pools int `json:"pools"`
	// Evicted counts worlds evicted from placement after a rank died.
	Evicted uint64 `json:"evicted"`
	// BreakerOpen counts live tenants currently refused by their breaker.
	BreakerOpen int `json:"breaker_open"`
}

// Health reports the server's current degradation state.
func (s *Server) Health() Health {
	s.mu.Lock()
	pools, deadHosting := 0, 0
	for _, ws := range s.worlds {
		for _, hw := range ws {
			pools++
			if s.deadCheckLocked(hw) && hw.tenants > 0 {
				deadHosting++
			}
		}
	}
	open := 0
	for _, t := range s.tenants {
		if t.BreakerOpen() {
			open++
		}
	}
	closed := s.closed
	s.mu.Unlock()
	h := Health{Status: "ok", Pools: pools, Evicted: s.evicted.Load(), BreakerOpen: open}
	if closed || deadHosting > 0 || open > 0 {
		h.Status = "degraded"
	}
	return h
}

// Tenant returns a live tenant by id.
func (s *Server) Tenant(id string) (*Tenant, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[id]
	return t, ok
}

// Tenants snapshots every live tenant's metrics under its identity,
// sorted by id — the payload for metrics.WritePrometheusTenants.
func (s *Server) Tenants() []metrics.TenantSnapshot {
	s.mu.Lock()
	live := make([]*Tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		live = append(live, t)
	}
	s.mu.Unlock()
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })
	out := make([]metrics.TenantSnapshot, len(live))
	for i, t := range live {
		out[i] = t.Snapshot()
	}
	return out
}

// Close shuts the server down gracefully: admission stops immediately
// (parked opens release with ErrClosed), in-flight tenant runs get up to
// Config.DrainTimeout to finish, then every live tenant is closed and
// every pooled world torn down.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	live := make([]*Tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		live = append(live, t)
	}
	s.mu.Unlock()
	close(s.stop)
	if d := s.cfg.DrainTimeout; d > 0 {
		deadline := time.Now().Add(d)
		for s.inflight.Load() > 0 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
	}
	for _, t := range live {
		t.Close()
	}
	s.mu.Lock()
	for _, ws := range s.worlds {
		for _, hw := range ws {
			hw.w.Close()
		}
	}
	s.worlds = map[int][]*hostWorld{}
	s.mu.Unlock()
}

// Tenant is one admitted session world: `ranks` gca.Sessions over a
// private tag namespace of a pooled host world.
type Tenant struct {
	id   string
	qos  QoS
	srv  *Server
	hw   *hostWorld
	slot int
	reg  *metrics.Registry

	nss      []*comm.Namespace
	sessions []*gca.Session
	closed   atomic.Bool

	// Circuit breaker: BreakerThreshold consecutive Run failures open it
	// for BreakerCooldown; after the cooldown one trial run probes
	// recovery (half-open), and a success resets the strike count.
	bkMu      sync.Mutex
	strikes   int
	openUntil time.Time
	halfOpen  bool
}

// breakerAllow gates a Run: nil when work may proceed, ErrBreakerOpen
// while the breaker refuses.
func (t *Tenant) breakerAllow() error {
	th := t.srv.cfg.BreakerThreshold
	if th < 0 {
		return nil
	}
	t.bkMu.Lock()
	defer t.bkMu.Unlock()
	if t.strikes < th {
		return nil
	}
	if time.Now().Before(t.openUntil) || t.halfOpen {
		return ErrBreakerOpen
	}
	t.halfOpen = true // cooldown elapsed: admit exactly one trial
	return nil
}

// breakerRecord folds a Run outcome into the breaker.
func (t *Tenant) breakerRecord(err error) {
	th := t.srv.cfg.BreakerThreshold
	if th < 0 {
		return
	}
	t.bkMu.Lock()
	defer t.bkMu.Unlock()
	t.halfOpen = false
	if err == nil {
		t.strikes = 0
		return
	}
	t.strikes++
	if t.strikes >= th {
		t.openUntil = time.Now().Add(t.srv.cfg.BreakerCooldown)
	}
}

// BreakerOpen reports whether the tenant's breaker currently refuses work.
func (t *Tenant) BreakerOpen() bool {
	th := t.srv.cfg.BreakerThreshold
	if th < 0 {
		return false
	}
	t.bkMu.Lock()
	defer t.bkMu.Unlock()
	return t.strikes >= th && (time.Now().Before(t.openUntil) || t.halfOpen)
}

// ID returns the tenant id.
func (t *Tenant) ID() string { return t.id }

// QoS returns the tenant's class.
func (t *Tenant) QoS() QoS { return t.qos }

// Size returns the tenant's world size.
func (t *Tenant) Size() int { return len(t.sessions) }

// Session returns rank r's collective session (drive each rank from one
// goroutine, as always).
func (t *Tenant) Session(r int) *gca.Session { return t.sessions[r] }

// Run executes fn once per rank concurrently and returns the first error.
// Failures feed the tenant's circuit breaker and the host world's death
// check: repeated failures trip the breaker (ErrBreakerOpen until the
// cooldown), and a failure on a world with a dead rank evicts that world
// from the placement pool.
func (t *Tenant) Run(fn func(rank int, s *gca.Session) error) error {
	if err := t.breakerAllow(); err != nil {
		return err
	}
	t.srv.inflight.Add(1)
	defer t.srv.inflight.Add(-1)
	errs := make([]error, len(t.sessions))
	var wg sync.WaitGroup
	for r := range t.sessions {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(r, t.sessions[r])
		}(r)
	}
	wg.Wait()
	var first error
	for r, err := range errs {
		if err != nil {
			first = fmt.Errorf("svc: tenant %s rank %d: %w", t.id, r, err)
			break
		}
	}
	t.breakerRecord(first)
	if first != nil {
		s := t.srv
		s.mu.Lock()
		s.deadCheckLocked(t.hw)
		s.mu.Unlock()
	}
	return first
}

// Snapshot returns the tenant's telemetry under its identity labels.
func (t *Tenant) Snapshot() metrics.TenantSnapshot {
	return metrics.TenantSnapshot{Tenant: t.id, QoS: string(t.qos), Snapshot: t.reg.Snapshot()}
}

// Close retires the tenant: its namespace window is purged on every rank —
// buffered stragglers dropped, posted receives cancelled — before the slot
// returns to the pool, so the next tenant in this window starts clean.
// Idempotent.
func (t *Tenant) Close() {
	if t.closed.Swap(true) {
		return
	}
	t.teardown()
}

// teardown is Close minus the idempotence guard (also the Open failure
// path, before the tenant was ever visible).
func (t *Tenant) teardown() {
	for _, ns := range t.nss {
		if ns != nil {
			ns.PurgeTags(0, math.MaxInt32)
		}
	}
	s := t.srv
	s.mu.Lock()
	if s.tenants[t.id] == t {
		delete(s.tenants, t.id)
	}
	s.removeLocked(t)
	s.mu.Unlock()
	<-s.sem
}
