package svc

import (
	"fmt"

	"exacoll/internal/core"
	"exacoll/internal/tuning"
)

// QoS names a tenant's service class; it selects the tuning table every
// session of the tenant runs under.
type QoS string

const (
	// QoSLatency optimizes for small messages and fast completion:
	// high-radix trees (fewest rounds), Bruck-style exchanges, no
	// pipelining. The default.
	QoSLatency QoS = "latency"
	// QoSThroughput optimizes for bulk transfers: rings, chains, and
	// segmented pipelines that approach the bandwidth bound at the cost
	// of more rounds.
	QoSThroughput QoS = "throughput"
)

func (q QoS) validate() error {
	switch q {
	case QoSLatency, QoSThroughput:
		return nil
	}
	return fmt.Errorf("svc: unknown QoS class %q", q)
}

// tableFor builds the selection table of a QoS class for a world of p
// ranks. The tables are static policy, not measurements: latency picks
// the fewest-round generalized algorithms at the largest useful radix,
// throughput the bandwidth-optimal ladders the paper falls back to for
// bulk payloads. Both validate against the algorithm registry (see
// TestQoSTablesValid).
func tableFor(q QoS, p int) *tuning.Table {
	t := &tuning.Table{Machine: "svc/" + string(q), P: p, PPN: 1, Ops: map[string][]tuning.Entry{}}
	if q == QoSLatency {
		// Radix at or near p collapses trees to one or two rounds; cap it
		// so fan-in stays manageable on bigger tenants.
		k := p
		if k > 16 {
			k = 16
		}
		if k < 2 {
			k = 2
		}
		t.Ops[core.OpBcast.String()] = []tuning.Entry{{Alg: "bcast_knomial", K: k}}
		t.Ops[core.OpReduce.String()] = []tuning.Entry{{Alg: "reduce_knomial", K: k}}
		t.Ops[core.OpGather.String()] = []tuning.Entry{{Alg: "gather_knomial", K: k}}
		t.Ops[core.OpScatter.String()] = []tuning.Entry{{Alg: "scatter_knomial", K: k}}
		t.Ops[core.OpAllgather.String()] = []tuning.Entry{{Alg: "allgather_bruck"}}
		t.Ops[core.OpAllreduce.String()] = []tuning.Entry{{Alg: "allreduce_recmul", K: minInt(p, 8)}}
		t.Ops[core.OpReduceScatter.String()] = []tuning.Entry{{Alg: "reducescatter_ring"}}
		t.Ops[core.OpAlltoall.String()] = []tuning.Entry{{Alg: "alltoall_bruck"}}
		t.Ops[core.OpScan.String()] = []tuning.Entry{{Alg: "scan_hillissteele"}}
		return t
	}
	t.Ops[core.OpBcast.String()] = []tuning.Entry{
		{MaxBytes: 8 << 10, Alg: "bcast_knomial", K: minInt(p, 4)},
		{Alg: "bcast_chain"},
	}
	t.Ops[core.OpReduce.String()] = []tuning.Entry{
		{MaxBytes: 8 << 10, Alg: "reduce_knomial", K: minInt(p, 4)},
		{Alg: "reduce_knomial_segmented", K: 2},
	}
	t.Ops[core.OpGather.String()] = []tuning.Entry{{Alg: "gather_binomial"}}
	t.Ops[core.OpScatter.String()] = []tuning.Entry{{Alg: "scatter_binomial"}}
	t.Ops[core.OpAllgather.String()] = []tuning.Entry{
		{MaxBytes: 8 << 10, Alg: "allgather_recmul", K: 2},
		{Alg: "allgather_ring"},
	}
	t.Ops[core.OpAllreduce.String()] = []tuning.Entry{
		{MaxBytes: 8 << 10, Alg: "allreduce_recmul", K: 2},
		{Alg: "allreduce_ring_pipelined"},
	}
	t.Ops[core.OpReduceScatter.String()] = []tuning.Entry{{Alg: "reducescatter_ring"}}
	t.Ops[core.OpAlltoall.String()] = []tuning.Entry{
		{MaxBytes: 1 << 10, Alg: "alltoall_bruck"},
		{Alg: "alltoall_pairwise"},
	}
	t.Ops[core.OpScan.String()] = []tuning.Entry{{Alg: "scan_linear"}}
	return t
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
