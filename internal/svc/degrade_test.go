package svc

import (
	"errors"
	"sync"
	"testing"
	"time"

	"exacoll/gca"
)

// TestBreakerTripAndRecover: consecutive Run failures trip the tenant's
// circuit breaker, the breaker refuses work through the cooldown, shows
// up in Health as degraded, and a successful trial after the cooldown
// closes it again.
func TestBreakerTripAndRecover(t *testing.T) {
	s := NewServer(Config{BreakerThreshold: 2, BreakerCooldown: 50 * time.Millisecond})
	defer s.Close()
	tn, err := s.Open("flaky", QoSLatency, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Close()

	boom := errors.New("boom")
	failing := func(rank int, sess *gca.Session) error { return boom }
	for i := 0; i < 2; i++ {
		if err := tn.Run(failing); !errors.Is(err, boom) {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if err := tn.Run(failing); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("after %d failures: %v, want ErrBreakerOpen", 2, err)
	}
	if !tn.BreakerOpen() {
		t.Fatal("BreakerOpen() = false with breaker tripped")
	}
	if h := s.Health(); h.Status != "degraded" || h.BreakerOpen != 1 {
		t.Fatalf("health = %+v, want degraded with 1 breaker open", h)
	}

	time.Sleep(60 * time.Millisecond)
	// Cooldown elapsed: one trial run goes through and its success resets.
	if err := tn.Run(func(rank int, sess *gca.Session) error { return sess.Barrier() }); err != nil {
		t.Fatalf("trial run: %v", err)
	}
	if tn.BreakerOpen() {
		t.Fatal("breaker still open after successful trial")
	}
	if h := s.Health(); h.Status != "ok" {
		t.Fatalf("health after recovery = %+v", h)
	}
}

// TestDeadWorldEviction: a rank death inside a pooled world is detected
// on the next failed Run; the world leaves the placement pool (new
// tenants land elsewhere), Health reports degraded while the dead world
// still hosts tenants, and the world is torn down — never kept warm —
// once its last tenant closes.
func TestDeadWorldEviction(t *testing.T) {
	s := NewServer(Config{OpTimeout: 2 * time.Second})
	defer s.Close()
	tn, err := s.Open("victim", QoSLatency, 2)
	if err != nil {
		t.Fatal(err)
	}
	deadWorld := tn.hw

	tn.hw.w.Kill(1)
	err = tn.Run(func(rank int, sess *gca.Session) error { return sess.Barrier() })
	if err == nil {
		t.Fatal("barrier over a killed rank succeeded")
	}
	if h := s.Health(); h.Status != "degraded" || h.Evicted != 1 {
		t.Fatalf("health = %+v, want degraded with 1 eviction", h)
	}

	// Placement must avoid the dead world.
	tn2, err := s.Open("fresh", QoSLatency, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tn2.hw == deadWorld {
		t.Fatal("new tenant placed on the dead world")
	}
	if err := tn2.Run(func(rank int, sess *gca.Session) error { return sess.Barrier() }); err != nil {
		t.Fatalf("fresh tenant: %v", err)
	}

	// Closing the dead world's last tenant tears it down instead of
	// keeping it warm; health clears (the eviction count is history).
	tn.Close()
	s.mu.Lock()
	for _, ws := range s.worlds {
		for _, hw := range ws {
			if hw == deadWorld {
				s.mu.Unlock()
				t.Fatal("dead world still pooled after last tenant left")
			}
		}
	}
	s.mu.Unlock()
	if h := s.Health(); h.Status != "ok" || h.Evicted != 1 {
		t.Fatalf("health after cleanup = %+v", h)
	}
	tn2.Close()
}

// TestCloseDrains: Close waits for in-flight Runs (up to DrainTimeout)
// before tearing worlds down, so a run that was healthy when it started
// finishes healthy.
func TestCloseDrains(t *testing.T) {
	s := NewServer(Config{DrainTimeout: 2 * time.Second})
	tn, err := s.Open("slow", QoSLatency, 2)
	if err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	var once sync.Once
	var runErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		runErr = tn.Run(func(rank int, sess *gca.Session) error {
			once.Do(func() { close(started) })
			time.Sleep(100 * time.Millisecond)
			return sess.Barrier()
		})
	}()
	<-started
	s.Close() // must not yank the world out from under the run
	<-done
	if runErr != nil {
		t.Fatalf("drained run failed: %v", runErr)
	}
}
