package svc

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"exacoll/gca"
	"exacoll/internal/metrics"
)

// TestSoakChurn is the service-layer soak from the acceptance criteria:
// one server sustains >= 1000 session creations across >= 64 concurrent
// tenants with bounded memory and per-tenant metrics. Every tenant opens,
// runs a collective on every rank, verifies its registry saw the traffic,
// and closes; worlds and namespace slots recycle throughout. Run with
// -race in CI; -short scales the churn down.
func TestSoakChurn(t *testing.T) {
	workers, creations := 64, 1000
	if testing.Short() {
		workers, creations = 16, 128
	}

	srv := NewServer(Config{
		MaxSessions:  workers,
		QueueLen:     workers,
		AdmitTimeout: 30 * time.Second,
		OpTimeout:    10 * time.Second,
	})
	defer srv.Close()

	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				n := next.Add(1)
				if n > int64(creations) {
					return
				}
				qos := QoSLatency
				if n%2 == 0 {
					qos = QoSThroughput
				}
				ranks := 2 + 2*int(n%2) // alternate 2- and 4-rank worlds
				id := fmt.Sprintf("soak-%d-%d", w, n)
				tn, err := srv.Open(id, qos, ranks)
				if err != nil {
					errs <- fmt.Errorf("open %s: %w", id, err)
					return
				}
				want := float64(ranks*(ranks+1)) / 2
				err = tn.Run(func(rank int, s *gca.Session) error {
					send, recv := make([]byte, 8), make([]byte, 8)
					binary.LittleEndian.PutUint64(send, math.Float64bits(float64(rank+1)))
					if err := s.Allreduce(send, recv, gca.Sum, gca.Float64); err != nil {
						return err
					}
					if got := math.Float64frombits(binary.LittleEndian.Uint64(recv)); got != want {
						return fmt.Errorf("allreduce = %v, want %v", got, want)
					}
					return nil
				})
				if err == nil {
					snap := tn.Snapshot()
					var sends uint64
					for _, r := range snap.Snapshot.Ranks {
						sends += r.Sends
					}
					if ranks > 1 && sends == 0 {
						err = fmt.Errorf("%s: no sends in tenant registry", id)
					}
				}
				tn.Close()
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := srv.Stats()
	if st.Live != 0 {
		t.Errorf("live = %d after churn, want 0", st.Live)
	}
	if st.Opened < uint64(creations) {
		t.Errorf("opened = %d, want >= %d", st.Opened, creations)
	}
	// Pooling bound: two world sizes, each pool capped by the concurrency
	// the semaphore allows, plus at most one idle world retained per size.
	maxWorlds := 2 * (workers/maxTenantsPerWorld + 2)
	if st.Worlds > maxWorlds {
		t.Errorf("worlds = %d, want <= %d (pool not recycling)", st.Worlds, maxWorlds)
	}

	// Bounded memory: after the churn the heap must not retain the
	// thousand dead tenants (each held sessions, registries, worlds).
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 256<<20 {
		t.Errorf("heap after churn = %d MiB, want bounded", ms.HeapAlloc>>20)
	}

	// The exporter still renders a valid exposition for whatever is live
	// (nothing, here) without error.
	var buf bytes.Buffer
	if err := metrics.WritePrometheusTenants(&buf, srv.Tenants()); err != nil {
		t.Fatal(err)
	}
}
