//go:build !race

package buf

// Poisoning is disabled in regular builds: the memset would tax the hot
// path the pool exists to slim down.
const Poisoning = false

func poison([]byte) {}
