//go:build race

package buf

// Poisoning is enabled under the race detector so tier-1's -race runs
// surface use-after-Put bugs as wrong data.
const Poisoning = true

// poisonByte is the fill pattern written over recycled buffers. 0xDB reads
// as garbage for every element type, so a consumer that touches a buffer
// after Put fails loudly instead of silently seeing stale-but-plausible
// data.
const poisonByte = 0xDB

func poison(b []byte) {
	for i := range b {
		b[i] = poisonByte
	}
}
