package buf

import (
	"testing"
)

func TestClassIndex(t *testing.T) {
	cases := []struct {
		n, want int
	}{
		{1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{4096, 6}, {4097, 7},
		{1 << 24, maxBits - minBits}, {1<<24 + 1, -1},
	}
	for _, tc := range cases {
		if got := classIndex(tc.n); got != tc.want {
			t.Errorf("classIndex(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	defer Drain()
	for _, n := range []int{1, 63, 64, 65, 1000, 4096, 1 << 20} {
		b := Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d): len = %d", n, len(b))
		}
		for i := range b {
			b[i] = byte(i)
		}
		Put(b)
		b2 := Get(n)
		if len(b2) != n {
			t.Fatalf("Get(%d) after Put: len = %d", n, len(b2))
		}
		Put(b2)
	}
}

func TestGetReusesBuffer(t *testing.T) {
	defer Drain()
	Drain()
	b := Get(100)
	b[0] = 42
	Put(b)
	b2 := Get(80)
	// Same class (128 B): must come back from the free list.
	if cap(b2) != cap(b) || &b2[0] != &b[0] {
		t.Error("Get after Put did not reuse the pooled buffer")
	}
	if Poisoning && b2[0] == 42 {
		t.Error("race build: pooled buffer not poisoned on Put")
	}
}

func TestGetZeroed(t *testing.T) {
	defer Drain()
	b := Get(256)
	for i := range b {
		b[i] = 0xFF
	}
	Put(b)
	z := GetZeroed(200)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetZeroed: byte %d = %#x, want 0", i, v)
		}
	}
	Put(z)
}

func TestZeroAndOversize(t *testing.T) {
	if Get(0) != nil {
		t.Error("Get(0) != nil")
	}
	if Get(-5) != nil {
		t.Error("Get(-5) != nil")
	}
	Put(nil) // must not panic
	big := Get(1<<24 + 1)
	if len(big) != 1<<24+1 {
		t.Fatalf("oversize Get: len = %d", len(big))
	}
	Put(big) // dropped, must not panic or corrupt
}

func TestPutForeignCapacityDropped(t *testing.T) {
	defer Drain()
	Drain()
	// A buffer whose capacity is not an exact class size must be dropped,
	// not pooled at the wrong class.
	odd := make([]byte, 100) // cap 100, not a class size
	Put(odd)
	b := Get(100)
	if cap(b) == 100 {
		t.Error("foreign-capacity buffer was pooled")
	}
	Put(b)
	// A resliced head keeps a class-size capacity only if it starts at
	// offset 0; offset slices lose it and must be dropped.
	c := Get(128)
	Put(c[2:])
	d := Get(120)
	if len(d) != 120 {
		t.Fatalf("Get after offset Put: len = %d", len(d))
	}
	Put(d)
}

func TestRetentionCap(t *testing.T) {
	defer Drain()
	Drain()
	ci := classIndex(1 << 20)
	max := classes[ci].max
	bufs := make([][]byte, max+10)
	for i := range bufs {
		bufs[i] = Get(1 << 20)
	}
	for _, b := range bufs {
		Put(b)
	}
	classes[ci].mu.Lock()
	got := len(classes[ci].free)
	classes[ci].mu.Unlock()
	if got > max {
		t.Errorf("class retained %d buffers, cap %d", got, max)
	}
}

func TestAllocsSteadyState(t *testing.T) {
	if Poisoning {
		t.Skip("allocs accounting unreliable under -race")
	}
	defer Drain()
	allocs := testing.AllocsPerRun(200, func() {
		b := Get(4096)
		Put(b)
	})
	if allocs != 0 {
		t.Errorf("steady-state Get/Put allocs = %g, want 0", allocs)
	}
}

func TestConcurrentGetPut(t *testing.T) {
	defer Drain()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 2000; i++ {
				b := Get(64 << (g % 6))
				b[0] = byte(g)
				Put(b)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
