// Package buf provides size-classed pooling of scratch byte buffers for
// the collective hot path.
//
// Collective algorithms allocate staging space on every invocation
// (receive staging, accumulators, packed blocks, transport payload
// copies). Allocating fresh slices per call makes the garbage collector a
// hidden term in the (α, β, γ) cost model; this pool recycles them.
//
// Buffers are grouped in power-of-two size classes from 64 B to 16 MiB.
// Each class keeps a small LIFO free list behind a mutex — deliberately
// not sync.Pool, which would box the slice header into an interface and
// cost one allocation per Put, defeating the purpose on the small-message
// path. The per-class retention cap bounds pinned memory and returns the
// excess to the GC.
//
// Ownership rules:
//   - Get(n) returns a buffer of length n with UNDEFINED contents. Callers
//     that need zeroed scratch must clear it (or use GetZeroed).
//   - Put(b) recycles a buffer previously returned by Get. Pass back the
//     same slice Get returned (same backing array, full capacity); resliced
//     heads/tails are silently dropped rather than corrupting the pool.
//   - Never Put a buffer that an in-flight operation (posted receive,
//     pending send, outstanding schedule) may still read or write. When an
//     error path cannot prove the buffer is quiescent, leaking it to the
//     GC is correct; recycling it is not.
//   - Put is idempotent-unsafe: double-Put is a caller bug. Race-detector
//     builds poison buffers on Put so use-after-Put reads surface in tests.
package buf

import (
	"sync"
	"sync/atomic"
)

const (
	minBits = 6  // smallest class: 64 B
	maxBits = 24 // largest class: 16 MiB

	// retainBytes bounds the memory each class may pin on its free list.
	// Small classes keep many buffers, large classes only a couple.
	retainBytes = 4 << 20
	// retainMin keeps at least a few buffers per class even when the
	// class size exceeds retainBytes.
	retainMin = 2
)

type class struct {
	mu   sync.Mutex
	free [][]byte
	max  int
}

var classes = func() []*class {
	cs := make([]*class, maxBits-minBits+1)
	for i := range cs {
		n := retainBytes >> (uint(i) + minBits)
		if n < retainMin {
			n = retainMin
		}
		cs[i] = &class{max: n}
	}
	return cs
}()

// gets and puts count ownership transfers: every Get of a non-empty
// buffer and every Put of a non-empty buffer, whether or not the bytes
// came from (or return to) a free list. Their difference is the number of
// buffers currently owned by callers, so leak tests can assert it returns
// to a baseline.
var gets, puts atomic.Uint64

// PoolStats is a snapshot of the pool's ownership counters.
type PoolStats struct {
	// Gets counts Get calls that handed a non-empty buffer to a caller.
	Gets uint64
	// Puts counts Put calls that returned a non-empty buffer (including
	// buffers the pool then dropped for being off-class).
	Puts uint64
}

// Outstanding is the number of buffers currently held by callers.
func (s PoolStats) Outstanding() uint64 { return s.Gets - s.Puts }

// Stats returns the current ownership counters. The snapshot is only
// meaningfully quiescent when no collective is in flight.
func Stats() PoolStats {
	return PoolStats{Gets: gets.Load(), Puts: puts.Load()}
}

// classIndex returns the index of the smallest class holding n bytes, or
// -1 if n exceeds the largest class.
func classIndex(n int) int {
	if n > 1<<maxBits {
		return -1
	}
	c := 0
	for 1<<(uint(c)+minBits) < n {
		c++
	}
	return c
}

// Get returns a buffer of length n with undefined contents. Buffers larger
// than the biggest size class are freshly allocated and will be dropped on
// Put. Get(0) returns nil.
func Get(n int) []byte {
	if n <= 0 {
		return nil
	}
	gets.Add(1)
	ci := classIndex(n)
	if ci < 0 {
		return make([]byte, n)
	}
	c := classes[ci]
	c.mu.Lock()
	if last := len(c.free) - 1; last >= 0 {
		b := c.free[last]
		c.free[last] = nil
		c.free = c.free[:last]
		c.mu.Unlock()
		return b[:n]
	}
	c.mu.Unlock()
	return make([]byte, n, 1<<(uint(ci)+minBits))
}

// GetZeroed returns a buffer of length n with all bytes zero.
func GetZeroed(n int) []byte {
	b := Get(n)
	clear(b)
	return b
}

// Put recycles a buffer returned by Get. Buffers whose capacity is not an
// exact class size (resliced, or oversized from Get) are dropped. Put(nil)
// is a no-op.
func Put(b []byte) {
	if cap(b) == 0 {
		return
	}
	puts.Add(1)
	ci := classIndex(cap(b))
	if ci < 0 || cap(b) != 1<<(uint(ci)+minBits) {
		return
	}
	b = b[:cap(b)]
	poison(b)
	c := classes[ci]
	c.mu.Lock()
	if len(c.free) < c.max {
		c.free = append(c.free, b)
	}
	c.mu.Unlock()
}

// Drain empties every free list, returning all pooled memory to the GC.
// Intended for tests and benchmarks that need a cold pool.
func Drain() {
	for _, c := range classes {
		c.mu.Lock()
		c.free = nil
		c.mu.Unlock()
	}
}
