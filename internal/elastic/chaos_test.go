package elastic

import (
	"errors"
	"testing"
	"time"

	"exacoll/internal/comm"
	"exacoll/internal/ft"
	"exacoll/internal/transport/tcp"
)

// TestAnchorRestartMidLifecycle is the anchor-recovery scenario: the
// anchor process dies with a joiner parked, restarts from its persisted
// AnchorState, and the joiner — retrying through the downtime — lands in
// the world the restarted anchor forms. The state handoff is what makes
// this safe: the restart resumes past every epoch the dead incarnation
// retired, so no formation is ever reopened.
func TestAnchorRestartMidLifecycle(t *testing.T) {
	addr := freeAddr(t)
	opts := tcp.Options{Timeout: 8 * time.Second, Heartbeat: 100 * time.Millisecond}

	m0, err := Host(addr, 1, 4, opts)
	if err != nil {
		t.Fatal(err)
	}

	// A joiner parks, outliving the anchor it parked at: its retry loop
	// must carry it across the bounce (anchor closing) and the downtime
	// (dials refused until the restarted anchor binds).
	joined := make(chan *Member, 1)
	go func() {
		m, jerr := Join(addr, tcp.Options{Timeout: 20 * time.Second})
		if jerr != nil {
			t.Errorf("join across restart: %v", jerr)
			joined <- nil
			return
		}
		joined <- m
	}()
	for i := 0; m0.PendingJoins() < 1 && i < 500; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if m0.PendingJoins() < 1 {
		t.Fatalf("joiner never parked")
	}

	// Snapshot the anchor's rendezvous position, then kill it.
	st, ok := m0.AnchorState()
	if !ok || !st.HasRun {
		t.Fatalf("anchor state = %+v, %v", st, ok)
	}
	m0.Close()
	time.Sleep(200 * time.Millisecond) // downtime: the joiner's dials refuse

	// Restart from the snapshot. The new incarnation's world forms past
	// everything the old one retired — never reopening a dead epoch.
	m1, err := HostWithState(addr, 1, 4, opts, st)
	if err != nil {
		t.Fatalf("restart from state: %v", err)
	}
	defer m1.Close()
	if m1.Epoch() <= st.DoneTo {
		t.Fatalf("restarted epoch %d not past retired %d", m1.Epoch(), st.DoneTo)
	}

	// The joiner re-requests against the restarted anchor; admit it and
	// grow the singleton world to 2.
	for i := 0; m1.PendingJoins() < 1 && i < 1000; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if m1.PendingJoins() < 1 {
		t.Fatalf("joiner never re-parked after restart")
	}
	target, joiners, err := m1.BeginGrow(1)
	if err != nil || joiners != 1 {
		t.Fatalf("begin grow: target %d joiners %d err %v", target, joiners, err)
	}
	if n, aerr := m1.AdmitJoiners(1, 1, 2); aerr != nil || n != 1 {
		t.Fatalf("admit: %d, %v", n, aerr)
	}
	if err := m1.RegroupTo(0, 2, target); err != nil {
		t.Fatalf("regroup: %v", err)
	}
	j := <-joined
	if j == nil {
		t.FailNow()
	}
	defer j.Close()
	if j.Epoch() != target || j.Rank() != 1 || j.Size() != 2 {
		t.Fatalf("joiner landed epoch %d rank %d size %d, want epoch %d rank 1 size 2",
			j.Epoch(), j.Rank(), j.Size(), target)
	}
	allreduceCheck(t, []*Member{m1, j})
}

// TestEpochFencingStraggler pins the fence contract under pressure: a
// member left behind by two membership changes cannot inject anything —
// not on user tags, not on any fenced epoch's ft window — and its own
// attempts to regroup into retired epochs are refused with a clean
// retryable wrong-epoch answer, never a hang.
func TestEpochFencingStraggler(t *testing.T) {
	addr := freeAddr(t)
	var m0, m1, m2 *Member
	errCh := make(chan error, 3)
	go func() { var e error; m0, e = Host(addr, 3, 0, testOpts); errCh <- e }()
	go func() { var e error; m1, e = Dial(addr, 1, 3, testOpts); errCh <- e }()
	go func() { var e error; m2, e = Dial(addr, 2, 3, testOpts); errCh <- e }()
	if e0, e1, e2 := <-errCh, <-errCh, <-errCh; e0 != nil || e1 != nil || e2 != nil {
		t.Fatalf("founding: %v / %v / %v", e0, e1, e2)
	}
	defer m0.Close()
	defer m1.Close()
	allreduceCheck(t, []*Member{m0, m1, m2})

	// Two membership changes m2 never hears about: the survivors move to
	// epoch 1, then epoch 2, leaving m2 stranded at epoch 0.
	for _, target := range []uint64{1, 2} {
		done := make(chan error, 2)
		go func() { done <- m0.RegroupTo(0, 2, target) }()
		go func() { done <- m1.RegroupTo(1, 2, target) }()
		if e1, e2 := <-done, <-done; e1 != nil || e2 != nil {
			t.Fatalf("regroup to %d: %v / %v", target, e1, e2)
		}
	}
	allreduceCheck(t, []*Member{m0, m1})

	// The straggler's sends — on a user tag and on the first tag of every
	// fenced epoch's collective window — must all fail. Its connections
	// are gone and its entire tag space was purged; a send that keeps
	// "succeeding" means fenced traffic could still land somewhere.
	m2.SetOpTimeout(time.Second)
	tags := []comm.Tag{7}
	for e := int64(0); e <= 2; e++ {
		lo, _ := ft.EpochWindow(e)
		tags = append(tags, lo)
	}
	for _, tag := range tags {
		var serr error
		for i := 0; i < 100; i++ {
			if serr = m2.Send(0, tag, []byte("straggler")); serr != nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if serr == nil {
			t.Fatalf("straggler sends on tag %d kept succeeding after the fence", tag)
		}
	}

	// Its regroup into either retired epoch is refused — a clean,
	// classified wrong-epoch, not a hang or a mystery failure.
	for _, target := range []uint64{1, 2} {
		err := m2.RegroupTo(2, 3, target)
		if !errors.Is(err, tcp.ErrWrongEpoch) {
			t.Fatalf("straggler regroup to %d: %v, want ErrWrongEpoch", target, err)
		}
		if !tcp.Retryable(err) {
			t.Fatalf("wrong-epoch refusal must be retryable, got %v", err)
		}
	}
	m2.Close()
}
