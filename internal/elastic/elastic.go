// Package elastic adds membership changes to the tcp transport: a world
// that can grow, shrink, and re-admit ranks across its lifetime.
//
// The design is re-rendezvous, not in-place surgery. Each membership is an
// epoch; every epoch's world is a brand-new tcp mesh formed through one
// persistent Anchor (the rank-0 process's listener, which outlives any
// single mesh). A membership change — admitting joiners, dropping the
// dead, or both — moves every continuing member through Regroup: form the
// epoch-(e+1) mesh, then fence the old incarnation by purging its entire
// tag space (comm.Purger) and closing it. Stragglers of the old epoch can
// reach nothing: their connections are gone, their tags purged, and a
// late re-dial of a retired epoch is answered wrong-epoch by the anchor.
//
// Outsiders enter through the anchor's admission queue: RequestJoin parks
// a connection until the anchor's owner grants a Ticket naming the rank,
// size, and epoch of the next formation — at which point the joiner is
// just another member of the new mesh, with a virgin tag space (epochs
// re-key rendezvous, so joiners and survivors agree trivially on tag
// state: there is none).
//
// One member hosts the anchor and must be rank 0 of every epoch; the
// anchor host cannot be dropped or die without dissolving the world (the
// same single-coordinator limitation as plain tcp rendezvous, extended
// over time).
package elastic

import (
	"fmt"
	"math"
	"sync"
	"time"

	"exacoll/internal/comm"
	"exacoll/internal/transport/tcp"
)

// Member is one rank's handle on an elastic world. It implements
// comm.Comm (plus Deadliner, FailureDetector, Purger, Locator) by
// delegating to the current epoch's tcp endpoint, and swaps that endpoint
// on Regroup. A Member must not be used for communication concurrently
// with its own Regroup — a membership change is collective, like the
// collectives themselves.
type Member struct {
	addr   string
	opts   tcp.Options
	anchor *tcp.Anchor // non-nil on the anchor host (rank 0)

	mu    sync.RWMutex
	proc  *tcp.Proc
	epoch uint64
}

// Host starts the anchor-owning member (rank 0 of every epoch): it opens
// the persistent listener at addr, forms the first world of p ranks at
// opts.Epoch, and keeps accepting join requests (up to joinCap queued)
// across all later epochs.
func Host(addr string, p, joinCap int, opts tcp.Options) (*Member, error) {
	a, err := tcp.NewAnchor(addr, joinCap, opts)
	if err != nil {
		return nil, err
	}
	proc, err := a.Rendezvous(p, opts.Epoch)
	if err != nil {
		a.Close()
		return nil, err
	}
	return &Member{addr: addr, opts: opts, anchor: a, proc: proc, epoch: opts.Epoch}, nil
}

// Dial starts a founding non-anchor member: rank (>= 1) of the first
// p-rank world at opts.Epoch, rendezvousing at the anchor's addr.
func Dial(addr string, rank, p int, opts tcp.Options) (*Member, error) {
	if rank < 1 {
		return nil, fmt.Errorf("elastic: rank 0 must Host the anchor")
	}
	proc, err := tcp.Rendezvous(rank, p, addr, opts)
	if err != nil {
		return nil, err
	}
	return &Member{addr: addr, opts: opts, proc: proc, epoch: opts.Epoch}, nil
}

// Join enters an existing world from outside: it asks the anchor for
// admission (blocking up to opts.Timeout for the next growth decision),
// then rendezvouses into the epoch its ticket names. The returned member
// is indistinguishable from one that was present from the start. A
// process whose earlier incarnation died re-enters the same way — under a
// new rank, in a new epoch, with nothing shared with its old self.
func Join(addr string, opts tcp.Options) (*Member, error) {
	ticket, err := tcp.RequestJoin(addr, opts)
	if err != nil {
		return nil, err
	}
	topts := opts
	topts.Epoch = ticket.Epoch
	proc, err := tcp.Rendezvous(ticket.Rank, ticket.Size, addr, topts)
	if err != nil {
		return nil, err
	}
	return &Member{addr: addr, opts: opts, proc: proc, epoch: ticket.Epoch}, nil
}

// Epoch returns the member's current membership epoch.
func (m *Member) Epoch() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.epoch
}

// IsAnchor reports whether this member hosts the anchor (rank 0).
func (m *Member) IsAnchor() bool { return m.anchor != nil }

// PendingJoins reports how many outsiders are queued for admission.
// Always 0 on non-anchor members — only rank 0 can see or admit joiners;
// the count becomes collective knowledge by broadcasting it (gca does).
func (m *Member) PendingJoins() int {
	if m.anchor == nil {
		return 0
	}
	return m.anchor.PendingJoins()
}

// AdmitJoiners grants the next n queued join requests tickets for the
// upcoming epoch: ranks firstRank..firstRank+n-1 of a newSize-rank world
// at Epoch()+1. Anchor host only. The admitted joiners immediately dial
// into the next formation, so the caller must follow with Regroup. It
// returns the number actually admitted (fewer than n when the queue
// drained or a joiner hung up while parked).
func (m *Member) AdmitJoiners(n, firstRank, newSize int) (int, error) {
	if m.anchor == nil {
		return 0, fmt.Errorf("elastic: only the anchor host admits joiners")
	}
	next := m.Epoch() + 1
	admitted := 0
	for admitted < n {
		select {
		case req := <-m.anchor.Joins():
			t := tcp.Ticket{Epoch: next, Rank: firstRank + admitted, Size: newSize}
			if err := req.Admit(t, 5*time.Second); err != nil {
				// The joiner hung up while parked; its slot stays empty and
				// the caller learns the real admitted count.
				continue
			}
			admitted++
		default:
			return admitted, nil
		}
	}
	return admitted, nil
}

// Regroup moves this member into the next epoch's world: rank newRank of
// newSize ranks. Every continuing member and every admitted joiner must
// converge on the same geometry (the decision is collective input, agreed
// before calling — gca runs it through the ft agreement). On success the
// old endpoint is fenced — its entire tag space purged, so no straggler
// of the old epoch can ever match a posted receive — and closed. On
// failure the old endpoint remains usable.
//
// The anchor host must keep newRank 0; a membership change that would
// drop or re-rank it is unsupported (dissolve and restart instead).
func (m *Member) Regroup(newRank, newSize int) error {
	m.mu.RLock()
	old, next := m.proc, m.epoch+1
	m.mu.RUnlock()
	var proc *tcp.Proc
	var err error
	if m.anchor != nil {
		if newRank != 0 {
			return fmt.Errorf("elastic: anchor host must stay rank 0, got %d", newRank)
		}
		proc, err = m.anchor.Rendezvous(newSize, next)
	} else {
		topts := m.opts
		topts.Epoch = next
		proc, err = tcp.Rendezvous(newRank, newSize, m.addr, topts)
	}
	if err != nil {
		return fmt.Errorf("elastic: regroup to epoch %d: %w", next, err)
	}
	m.mu.Lock()
	m.proc, m.epoch = proc, next
	m.mu.Unlock()
	// Fence the dead incarnation: no tag of the old epoch's world — user,
	// collective, nbc, ft, flight — may survive into the new one.
	old.PurgeTags(0, math.MaxInt32)
	old.Close()
	return nil
}

// Close shuts down the current endpoint and, on the anchor host, the
// persistent listener (bouncing any queued joiners).
func (m *Member) Close() error {
	m.mu.RLock()
	proc := m.proc
	m.mu.RUnlock()
	err := proc.Close()
	if m.anchor != nil {
		if aerr := m.anchor.Close(); err == nil {
			err = aerr
		}
	}
	return err
}

// cur returns the current epoch's endpoint.
func (m *Member) cur() *tcp.Proc {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.proc
}

// Unwrap reveals the current endpoint (the errors.Unwrap convention), so
// capability probes — flight.RecorderOf in particular — walk through.
func (m *Member) Unwrap() comm.Comm { return m.cur() }

// Rank implements comm.Comm.
func (m *Member) Rank() int { return m.cur().Rank() }

// Size implements comm.Comm.
func (m *Member) Size() int { return m.cur().Size() }

// ChargeCompute implements comm.Comm.
func (m *Member) ChargeCompute(n int) { m.cur().ChargeCompute(n) }

// Send implements comm.Comm.
func (m *Member) Send(to int, tag comm.Tag, buf []byte) error {
	return m.cur().Send(to, tag, buf)
}

// Recv implements comm.Comm.
func (m *Member) Recv(from int, tag comm.Tag, buf []byte) (int, error) {
	return m.cur().Recv(from, tag, buf)
}

// Isend implements comm.Comm.
func (m *Member) Isend(to int, tag comm.Tag, buf []byte) (comm.Request, error) {
	return m.cur().Isend(to, tag, buf)
}

// Irecv implements comm.Comm.
func (m *Member) Irecv(from int, tag comm.Tag, buf []byte) (comm.Request, error) {
	return m.cur().Irecv(from, tag, buf)
}

// SetOpTimeout implements comm.Deadliner on the current endpoint. The
// setting does not survive Regroup (a fresh epoch starts unbounded, like
// a fresh world); fault-tolerant sessions re-apply their timeout when
// they rebuild, exactly as they do after a Shrink.
func (m *Member) SetOpTimeout(d time.Duration) { m.cur().SetOpTimeout(d) }

// Failed implements comm.FailureDetector.
func (m *Member) Failed() []int { return m.cur().Failed() }

// PurgeTags implements comm.Purger.
func (m *Member) PurgeTags(lo, hi comm.Tag) { m.cur().PurgeTags(lo, hi) }

// Locality implements comm.Locator.
func (m *Member) Locality(rank int) (comm.Locality, bool) { return m.cur().Locality(rank) }
