// Package elastic adds membership changes to the tcp transport: a world
// that can grow, shrink, and re-admit ranks across its lifetime.
//
// The design is re-rendezvous, not in-place surgery. Each membership is an
// epoch; every epoch's world is a brand-new tcp mesh formed through one
// persistent Anchor (the rank-0 process's listener, which outlives any
// single mesh). A membership change — admitting joiners, dropping the
// dead, or both — moves every continuing member through Regroup: form the
// epoch-(e+1) mesh, then fence the old incarnation by purging its entire
// tag space (comm.Purger) and closing it. Stragglers of the old epoch can
// reach nothing: their connections are gone, their tags purged, and a
// late re-dial of a retired epoch is answered wrong-epoch by the anchor.
//
// Outsiders enter through the anchor's admission queue: RequestJoin parks
// a connection until the anchor's owner grants a Ticket naming the rank,
// size, and epoch of the next formation — at which point the joiner is
// just another member of the new mesh, with a virgin tag space (epochs
// re-key rendezvous, so joiners and survivors agree trivially on tag
// state: there is none).
//
// One member hosts the anchor and must be rank 0 of every epoch. The
// anchor is no longer a permanent single point of failure: its rendezvous
// position (AnchorState) is a two-field snapshot a restarted process can
// resume from (HostWithState), and when the rank-0 process dies outright
// a survivor binds the address and takes over (Promote). Membership
// changes themselves are journaled transitions (BeginGrow / AdmitJoiners
// / RegroupTo / AbortGrow): a failure at any step leaves the old epoch
// intact, and a retry resumes the pending transition or cleanly restarts
// it at a later epoch.
package elastic

import (
	"fmt"
	"math"
	"sync"
	"time"

	"exacoll/internal/comm"
	"exacoll/internal/transport/tcp"
)

// growTxn journals one in-flight membership transition on the anchor
// host: the target epoch, the survivor count the transition was planned
// against, and how many joiners were planned and already ticketed. The
// journal is what makes Grow resumable — a retry after a failure before
// mesh formation picks up exactly where the last attempt stopped (the
// already-admitted joiners keep their tickets), while a retry after the
// survivor set changed aborts the stale transition (bouncing its ticket
// holders to re-request admission) and starts a fresh one at the next
// epoch.
type growTxn struct {
	target    uint64 // epoch the transition forms
	survivors int    // survivor count the plan assumed
	joiners   int    // joiners planned into the new world
	admitted  int    // joiners already holding tickets for target
}

// Member is one rank's handle on an elastic world. It implements
// comm.Comm (plus Deadliner, FailureDetector, Purger, Locator) by
// delegating to the current epoch's tcp endpoint, and swaps that endpoint
// on Regroup. A Member must not be used for communication concurrently
// with its own Regroup — a membership change is collective, like the
// collectives themselves.
type Member struct {
	addr   string
	opts   tcp.Options
	anchor *tcp.Anchor // non-nil on the anchor host (rank 0)

	mu    sync.RWMutex
	proc  *tcp.Proc
	epoch uint64

	pending *growTxn // in-flight transition journal (anchor host only)
}

// Host starts the anchor-owning member (rank 0 of every epoch): it opens
// the persistent listener at addr, forms the first world of p ranks at
// opts.Epoch, and keeps accepting join requests (up to joinCap queued)
// across all later epochs.
func Host(addr string, p, joinCap int, opts tcp.Options) (*Member, error) {
	return HostWithState(addr, p, joinCap, opts, tcp.AnchorState{})
}

// HostWithState restarts the anchor-owning member from a persisted anchor
// position — the anchor-recovery entry point. The world re-forms at the
// first epoch after everything the previous incarnation retired (or at
// opts.Epoch if that is later), so survivors and joiners retrying through
// the downtime land on a live formation instead of a retired epoch. A
// zero state is a fresh anchor.
func HostWithState(addr string, p, joinCap int, opts tcp.Options, st tcp.AnchorState) (*Member, error) {
	if st.HasRun && opts.Epoch <= st.DoneTo {
		opts.Epoch = st.DoneTo + 1
	}
	a, err := tcp.NewAnchorWithState(addr, joinCap, opts, st)
	if err != nil {
		return nil, err
	}
	proc, err := a.Rendezvous(p, opts.Epoch)
	if err != nil {
		a.Close()
		return nil, err
	}
	return &Member{addr: addr, opts: opts, anchor: a, proc: proc, epoch: opts.Epoch}, nil
}

// Dial starts a founding non-anchor member: rank (>= 1) of the first
// p-rank world at opts.Epoch, rendezvousing at the anchor's addr.
func Dial(addr string, rank, p int, opts tcp.Options) (*Member, error) {
	if rank < 1 {
		return nil, fmt.Errorf("elastic: rank 0 must Host the anchor")
	}
	proc, err := tcp.Rendezvous(rank, p, addr, opts)
	if err != nil {
		return nil, err
	}
	return &Member{addr: addr, opts: opts, proc: proc, epoch: opts.Epoch}, nil
}

// Join enters an existing world from outside: it asks the anchor for
// admission (blocking up to opts.Timeout for the next growth decision),
// then rendezvouses into the epoch its ticket names. The returned member
// is indistinguishable from one that was present from the start. A
// process whose earlier incarnation died re-enters the same way — under a
// new rank, in a new epoch, with nothing shared with its old self.
//
// Join retries through transient failure until opts.Timeout elapses:
// anchor downtime (dial refused until a restarted anchor re-binds),
// retryable bounces (the admission aged out, the transition the ticket
// named was aborted), and connection faults mid-protocol all restart the
// request from the top with backoff. The returned error is the last
// attempt's, so a persistent cause is visible.
func Join(addr string, opts tcp.Options) (*Member, error) {
	total := opts.Timeout
	if total <= 0 {
		total = 30 * time.Second
	}
	deadline := time.Now().Add(total)
	var lastErr error
	for attempt := 0; ; attempt++ {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, fmt.Errorf("elastic: join timed out: %w", lastErr)
		}
		aopts := opts
		aopts.Timeout = remain
		ticket, err := tcp.RequestJoin(addr, aopts)
		if err == nil {
			topts := aopts
			topts.Epoch = ticket.Epoch
			var proc *tcp.Proc
			proc, err = tcp.Rendezvous(ticket.Rank, ticket.Size, addr, topts)
			if err == nil {
				return &Member{addr: addr, opts: opts, proc: proc, epoch: ticket.Epoch}, nil
			}
		}
		lastErr = err
		if d := tcp.JoinBackoff(attempt); d > 0 {
			time.Sleep(d)
		}
	}
}

// Epoch returns the member's current membership epoch.
func (m *Member) Epoch() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.epoch
}

// IsAnchor reports whether this member hosts the anchor (rank 0).
func (m *Member) IsAnchor() bool { return m.anchor != nil }

// PendingJoins reports how many outsiders are queued for admission.
// Always 0 on non-anchor members — only rank 0 can see or admit joiners;
// the count becomes collective knowledge by broadcasting it (gca does).
func (m *Member) PendingJoins() int {
	if m.anchor == nil {
		return 0
	}
	return m.anchor.PendingJoins()
}

// BeginGrow opens (or resumes) a growth transition on the anchor host.
// It returns the target epoch the new world will form at and the joiner
// count planned into it — the two values every member must agree on
// before admission and regroup (gca broadcasts them over the fenced
// agreement window).
//
// The journal makes this idempotent: a retry after a failed attempt with
// the same survivor count resumes the pending transition — same target,
// same joiner count, already-issued tickets still valid. A retry after
// the survivor set changed aborts the pending transition first (its
// ticket geometry can no longer form): parked ticket holders are bounced
// retryably, and a fresh transition opens at the next unretired epoch.
func (m *Member) BeginGrow(survivors int) (target uint64, joiners int, err error) {
	if m.anchor == nil {
		return 0, 0, fmt.Errorf("elastic: only the anchor host begins a grow")
	}
	if m.pending != nil && m.pending.survivors == survivors {
		return m.pending.target, m.pending.joiners, nil
	}
	if m.pending != nil {
		m.anchor.AbortEpoch(m.pending.target)
		m.pending = nil
	}
	target = m.Epoch() + 1
	if st := m.anchor.State(); st.HasRun && st.DoneTo+1 > target {
		target = st.DoneTo + 1
	}
	joiners = m.anchor.PendingJoins()
	m.pending = &growTxn{target: target, survivors: survivors, joiners: joiners}
	return target, joiners, nil
}

// AbortGrow abandons the pending transition, if any: its target epoch is
// retired and every parked hello there — admitted joiners, early-dialing
// survivors — is bounced with a retryable status. Safe to call when no
// transition is pending.
func (m *Member) AbortGrow() {
	if m.anchor == nil || m.pending == nil {
		return
	}
	m.anchor.AbortEpoch(m.pending.target)
	m.pending = nil
}

// AdmitJoiners grants queued join requests tickets until n joiners in
// total hold one: ranks firstRank..firstRank+n-1 of a newSize-rank world
// at the pending transition's target epoch (Epoch()+1 when no transition
// is journaled). Anchor host only. Resuming a transition that already
// admitted k joiners admits only the remaining n-k — the earlier tickets
// stay valid. The admitted joiners immediately dial into the next
// formation, so the caller must follow with Regroup. It returns the
// total holding tickets (fewer than n when the queue drained or a joiner
// hung up while parked — the caller must then abort rather than form a
// world missing ranks) and any injected admission-step error.
func (m *Member) AdmitJoiners(n, firstRank, newSize int) (int, error) {
	if m.anchor == nil {
		return 0, fmt.Errorf("elastic: only the anchor host admits joiners")
	}
	next := m.Epoch() + 1
	admitted := 0
	if m.pending != nil {
		next = m.pending.target
		admitted = m.pending.admitted
	}
	for admitted < n {
		select {
		case req := <-m.anchor.Joins():
			t := tcp.Ticket{Epoch: next, Rank: firstRank + admitted, Size: newSize}
			if err := req.Admit(t, 5*time.Second); err != nil {
				if req.Bounced() {
					// Injected admission fault: the joiner was bounced to
					// re-request; surface the fault so the caller aborts.
					return admitted, err
				}
				// The joiner hung up while parked; its slot stays empty and
				// the caller learns the real admitted count.
				continue
			}
			admitted++
			if m.pending != nil {
				m.pending.admitted = admitted
			}
		default:
			return admitted, nil
		}
	}
	return admitted, nil
}

// Regroup moves this member into the next epoch's world: rank newRank of
// newSize ranks, at the pending transition's target epoch on the anchor
// host (Epoch()+1 otherwise). See RegroupTo.
func (m *Member) Regroup(newRank, newSize int) error {
	target := m.Epoch() + 1
	if m.anchor != nil && m.pending != nil {
		target = m.pending.target
	}
	return m.RegroupTo(newRank, newSize, target)
}

// RegroupTo moves this member into the world of epoch target: rank
// newRank of newSize ranks. Every continuing member and every admitted
// joiner must converge on the same geometry and target (the decision is
// collective input, agreed before calling — gca runs it through the ft
// agreement and broadcasts the anchor's journaled target). On success the
// old endpoint is fenced — its entire tag space purged, so no straggler
// of the old epoch can ever match a posted receive — and closed. On
// failure the old endpoint remains usable; the anchor host additionally
// aborts the target epoch (bouncing everything parked there retryably)
// and clears its journal, so the next attempt starts a fresh transition
// at a later epoch instead of resuming against stale tickets.
//
// The anchor host must keep newRank 0; a membership change that would
// drop or re-rank it promotes a survivor instead (see Promote).
func (m *Member) RegroupTo(newRank, newSize int, target uint64) error {
	m.mu.RLock()
	old := m.proc
	m.mu.RUnlock()
	var proc *tcp.Proc
	var err error
	if m.anchor != nil {
		if newRank != 0 {
			return fmt.Errorf("elastic: anchor host must stay rank 0, got %d", newRank)
		}
		proc, err = m.anchor.Rendezvous(newSize, target)
		if err != nil {
			m.anchor.AbortEpoch(target)
			m.pending = nil
		} else {
			m.pending = nil
		}
	} else {
		topts := m.opts
		topts.Epoch = target
		proc, err = tcp.Rendezvous(newRank, newSize, m.addr, topts)
	}
	if err != nil {
		return fmt.Errorf("elastic: regroup to epoch %d: %w", target, err)
	}
	m.mu.Lock()
	m.proc, m.epoch = proc, target
	m.mu.Unlock()
	// Fence the dead incarnation: no tag of the old epoch's world — user,
	// collective, nbc, ft, flight — may survive into the new one.
	old.PurgeTags(0, math.MaxInt32)
	old.Close()
	return nil
}

// Promote turns this member into the anchor host — the recovery path
// after the rank-0 process died. The survivor the collective elects (gca
// picks the lowest surviving rank) binds the anchor's address and seeds
// the new anchor's state from its own epoch, so retired-epoch stragglers
// still bounce correctly; the very next Regroup must then give this
// member rank 0. Binding fails while the true anchor is alive — exactly
// one process can own the address — so a mistaken promotion (the old
// anchor was partitioned, not dead) is refused here and the caller must
// eject itself and rejoin instead.
func (m *Member) Promote(joinCap int) error {
	if m.anchor != nil {
		return nil
	}
	st := tcp.AnchorState{DoneTo: m.Epoch(), HasRun: true}
	a, err := tcp.NewAnchorWithState(m.addr, joinCap, m.opts, st)
	if err != nil {
		return fmt.Errorf("elastic: promote: anchor address still owned: %w", err)
	}
	m.anchor = a
	return nil
}

// AnchorState snapshots the anchor's persistent rendezvous position for
// recovery (see HostWithState). The second return is false on non-anchor
// members.
func (m *Member) AnchorState() (tcp.AnchorState, bool) {
	if m.anchor == nil {
		return tcp.AnchorState{}, false
	}
	return m.anchor.State(), true
}

// Close shuts down the current endpoint and, on the anchor host, the
// persistent listener (bouncing any queued joiners).
func (m *Member) Close() error {
	m.mu.RLock()
	proc := m.proc
	m.mu.RUnlock()
	err := proc.Close()
	if m.anchor != nil {
		if aerr := m.anchor.Close(); err == nil {
			err = aerr
		}
	}
	return err
}

// cur returns the current epoch's endpoint.
func (m *Member) cur() *tcp.Proc {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.proc
}

// Unwrap reveals the current endpoint (the errors.Unwrap convention), so
// capability probes — flight.RecorderOf in particular — walk through.
func (m *Member) Unwrap() comm.Comm { return m.cur() }

// Rank implements comm.Comm.
func (m *Member) Rank() int { return m.cur().Rank() }

// Size implements comm.Comm.
func (m *Member) Size() int { return m.cur().Size() }

// ChargeCompute implements comm.Comm.
func (m *Member) ChargeCompute(n int) { m.cur().ChargeCompute(n) }

// Send implements comm.Comm.
func (m *Member) Send(to int, tag comm.Tag, buf []byte) error {
	return m.cur().Send(to, tag, buf)
}

// Recv implements comm.Comm.
func (m *Member) Recv(from int, tag comm.Tag, buf []byte) (int, error) {
	return m.cur().Recv(from, tag, buf)
}

// Isend implements comm.Comm.
func (m *Member) Isend(to int, tag comm.Tag, buf []byte) (comm.Request, error) {
	return m.cur().Isend(to, tag, buf)
}

// Irecv implements comm.Comm.
func (m *Member) Irecv(from int, tag comm.Tag, buf []byte) (comm.Request, error) {
	return m.cur().Irecv(from, tag, buf)
}

// SetOpTimeout implements comm.Deadliner on the current endpoint. The
// setting does not survive Regroup (a fresh epoch starts unbounded, like
// a fresh world); fault-tolerant sessions re-apply their timeout when
// they rebuild, exactly as they do after a Shrink.
func (m *Member) SetOpTimeout(d time.Duration) { m.cur().SetOpTimeout(d) }

// Failed implements comm.FailureDetector.
func (m *Member) Failed() []int { return m.cur().Failed() }

// PurgeTags implements comm.Purger.
func (m *Member) PurgeTags(lo, hi comm.Tag) { m.cur().PurgeTags(lo, hi) }

// Locality implements comm.Locator.
func (m *Member) Locality(rank int) (comm.Locality, bool) { return m.cur().Locality(rank) }
