package elastic

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
	"exacoll/internal/transport/tcp"
)

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

var testOpts = tcp.Options{Timeout: 10 * time.Second, Heartbeat: 100 * time.Millisecond}

// allreduceCheck runs a real collective over the members and verifies the
// bit-exact integer result — the strongest signal that a mesh formed
// correctly after a membership change.
func allreduceCheck(t *testing.T, members []*Member) {
	t.Helper()
	p := len(members)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, c comm.Comm) {
			defer wg.Done()
			vals := []float64{float64(c.Rank() + 1)}
			sendbuf := datatype.EncodeFloat64(vals)
			recvbuf := make([]byte, len(sendbuf))
			if p == 1 {
				copy(recvbuf, sendbuf)
			} else if err := core.AllreduceRecMul(c, sendbuf, recvbuf, datatype.Sum, datatype.Float64, 2); err != nil {
				errs[i] = err
				return
			}
			want := float64(p*(p+1)) / 2
			if got := datatype.DecodeFloat64(recvbuf)[0]; got != want {
				errs[i] = fmt.Errorf("allreduce = %v, want %v", got, want)
			}
		}(i, m)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
	}
}

// TestElasticLifecycle walks a world through grow, grow, death, shrink,
// and rejoin — verifying collectives at every epoch and the tag fence
// between epochs.
func TestElasticLifecycle(t *testing.T) {
	addr := freeAddr(t)

	// Epoch 0: a singleton world.
	host, err := Host(addr, 1, 8, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	if host.Epoch() != 0 || host.Size() != 1 || !host.IsAnchor() {
		t.Fatalf("host state: epoch %d size %d", host.Epoch(), host.Size())
	}
	allreduceCheck(t, []*Member{host})

	// Grow 1 -> 2: admit one queued joiner, regroup together.
	grow := func(members []*Member, joiners int) []*Member {
		t.Helper()
		old := len(members)
		next := old + joiners
		joined := make(chan *Member, joiners)
		for i := 0; i < joiners; i++ {
			go func() {
				m, err := Join(addr, testOpts)
				if err != nil {
					t.Errorf("join: %v", err)
					joined <- nil
					return
				}
				joined <- m
			}()
		}
		for i := 0; host.PendingJoins() < joiners && i < 200; i++ {
			time.Sleep(10 * time.Millisecond)
		}
		n, err := host.AdmitJoiners(joiners, old, next)
		if err != nil || n != joiners {
			t.Fatalf("admit: %d, %v", n, err)
		}
		var wg sync.WaitGroup
		for r, m := range members {
			wg.Add(1)
			go func(r int, m *Member) {
				defer wg.Done()
				if err := m.Regroup(r, next); err != nil {
					t.Errorf("regroup rank %d: %v", r, err)
				}
			}(r, m)
		}
		wg.Wait()
		for i := 0; i < joiners; i++ {
			m := <-joined
			if m == nil {
				t.FailNow()
			}
			members = append(members, m)
		}
		return members
	}
	members := grow([]*Member{host}, 1)
	if members[1].Epoch() != 1 || members[1].Rank() != 1 {
		t.Fatalf("joiner state: epoch %d rank %d", members[1].Epoch(), members[1].Rank())
	}
	allreduceCheck(t, members)

	// Plant a straggler: a message sent in epoch 1 that nobody receives.
	// The fence must keep it from ever matching in a later epoch.
	if err := members[1].Send(0, 7, []byte("ghost of epoch 1")); err != nil {
		t.Fatal(err)
	}

	// Grow 2 -> 3.
	members = grow(members, 1)
	allreduceCheck(t, members)

	// The epoch-1 straggler is gone: a receive on its tag times out
	// instead of matching cross-epoch traffic.
	host.SetOpTimeout(300 * time.Millisecond)
	if _, err := host.Recv(1, 7, make([]byte, 32)); !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("cross-epoch straggler matched: %v", err)
	}
	host.SetOpTimeout(0)

	// Kill rank 2 without ceremony, then shrink 3 -> 2 by regrouping the
	// survivors. The survivors need no agreement here (the test script is
	// the oracle); gca's Grow runs the real ft agreement first.
	members[2].Close()
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if err := members[r].Regroup(r, 2); err != nil {
				t.Errorf("shrink regroup rank %d: %v", r, err)
			}
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	members = members[:2]
	if host.Epoch() != 3 {
		t.Fatalf("epoch after shrink = %d, want 3", host.Epoch())
	}
	allreduceCheck(t, members)

	// Rejoin after death: a fresh incarnation of the dead process comes
	// back through the same join door and lands in a 3-rank world again.
	members = grow(members, 1)
	if members[2].Epoch() != 4 || members[2].Size() != 3 {
		t.Fatalf("rejoined state: epoch %d size %d", members[2].Epoch(), members[2].Size())
	}
	allreduceCheck(t, members)
	for _, m := range members[1:] {
		m.Close()
	}
}

// TestElasticValidation covers the guard rails: non-anchor admission,
// anchor re-ranking, and Dial's rank-0 rejection.
func TestElasticValidation(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 0, 2, testOpts); err == nil {
		t.Error("Dial must reject rank 0")
	}
	addr := freeAddr(t)
	host, err := Host(addr, 1, 0, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	if err := host.Regroup(1, 2); err == nil {
		t.Error("anchor host must stay rank 0")
	}
	if _, err := host.AdmitJoiners(1, 1, 2); err != nil {
		t.Errorf("admitting from an empty queue should drain quietly: %v", err)
	}

	// With joinCap 0, a join request bounces immediately.
	if _, err := Join(addr, tcp.Options{Timeout: 3 * time.Second}); !errors.Is(err, tcp.ErrBusy) {
		t.Errorf("join with no queue: want ErrBusy, got %v", err)
	}
}
