// Package transporttest is the transport-independent conformance suite:
// it runs every Table I generalized algorithm over a candidate transport
// and demands byte-identical results to the same pinned schedule run
// over the mem reference world.
//
// Because reference and candidate execute the identical algorithm,
// radix, and rank count, floating-point reductions combine in the same
// association order — so even rounding-sensitive float64 payloads must
// match bit for bit. A transport that reorders matched messages,
// truncates a payload, corrupts a byte, or mishandles zero-count
// messages fails loudly here.
package transporttest

import (
	"bytes"
	"fmt"
	"testing"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
	"exacoll/internal/transport/mem"
	"exacoll/internal/tuning"
)

// World is the minimal harness surface a transport under test provides.
// Comm may attach ranks lazily; each rank's handle is driven from its
// own goroutine.
type World interface {
	Comm(rank int) comm.Comm
	Close()
}

// Factory builds a fresh p-rank world on the transport under test.
type Factory func(t *testing.T, p int) World

// Case is one Table I conformance case: a pinned (algorithm, radix).
type Case struct {
	Op  core.CollOp
	Alg string
	K   int
}

// TableICases enumerates the paper's 10 generalized algorithms, each at
// its baseline-equivalent radix and one genuinely generalized radix.
func TableICases() []Case {
	var cases []Case
	for _, a := range core.TableIAlgorithms() {
		ks := []int{a.DefaultK, 3}
		if a.DefaultK == 3 {
			ks = []int{2, 3}
		}
		for _, k := range ks {
			cases = append(cases, Case{Op: a.Op, Alg: a.Name, K: k})
		}
	}
	return cases
}

// pinned returns a one-rung table that always selects (alg, k).
func pinned(c Case) *tuning.Table {
	return &tuning.Table{Machine: "transporttest", Ops: map[string][]tuning.Entry{
		c.Op.String(): {{Alg: c.Alg, K: c.K}},
	}}
}

// messyVector is rank r's float64 contribution with rounding-sensitive
// values: a transport that perturbs the combine order cannot match the
// reference bit for bit.
func messyVector(r, elems int) []byte {
	v := make([]float64, elems)
	for i := range v {
		v[i] = 0.1*float64(r+1) + 0.3*float64(i) + float64(i%7)/3.0
	}
	return datatype.EncodeFloat64(v)
}

// intVector is rank r's int64 contribution (exact under any
// association — isolates data integrity from rounding).
func intVector(r, elems int) []byte {
	v := make([]int64, elems)
	for i := range v {
		v[i] = int64(r+1)*1000 + int64(i) - 37
	}
	return datatype.EncodeInt64(v)
}

// buildArgs returns rank's Args for (op, elems) plus the buffer the
// result lands in.
func buildArgs(op core.CollOp, rank, p, elems, root int, ints bool) (core.Args, []byte) {
	payload := messyVector
	dt := datatype.Float64
	if ints {
		payload = intVector
		dt = datatype.Int64
	}
	a := core.Args{Op: datatype.Sum, Type: dt, Root: root}
	n := elems * 8
	switch op {
	case core.OpBcast:
		a.SendBuf = make([]byte, n)
		if rank == root {
			copy(a.SendBuf, payload(root, elems))
		}
		return a, a.SendBuf
	case core.OpReduce:
		a.SendBuf = payload(rank, elems)
		if rank == root {
			a.RecvBuf = make([]byte, n)
		}
		return a, a.RecvBuf
	case core.OpAllgather:
		a.SendBuf = payload(rank, elems)
		a.RecvBuf = make([]byte, n*p)
		return a, a.RecvBuf
	case core.OpAllreduce:
		a.SendBuf = payload(rank, elems)
		a.RecvBuf = make([]byte, n)
		return a, a.RecvBuf
	}
	panic(fmt.Sprintf("transporttest: unhandled op %v", op))
}

// runWorld executes the pinned collective on every rank of w and
// returns each rank's result buffer.
func runWorld(t *testing.T, w World, tab *tuning.Table, c Case, p, elems, root int, ints bool) [][]byte {
	t.Helper()
	out := make([][]byte, p)
	errs := make([]error, p)
	done := make(chan int, p)
	for r := 0; r < p; r++ {
		go func(r int, cm comm.Comm) {
			defer func() { done <- r }()
			a, res := buildArgs(c.Op, r, p, elems, root, ints)
			errs[r] = tab.Run(cm, c.Op, a)
			out[r] = res
		}(r, w.Comm(r))
	}
	for i := 0; i < p; i++ {
		<-done
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("%s k=%d p=%d elems=%d root=%d rank %d: %v",
				c.Alg, c.K, p, elems, root, r, err)
		}
	}
	return out
}

// memWorld adapts the reference substrate.
type memWorld struct{ w *mem.World }

func (m memWorld) Comm(rank int) comm.Comm { return m.w.Comm(rank) }
func (m memWorld) Close()                  { m.w.Close() }

// RunTableI drives the full Table I conformance matrix over the
// transport built by factory: all 10 generalized algorithms at two
// radixes each, world sizes {2, 5, 8, 16} (trimmed under -short),
// zero-count and multi-KiB payloads, both float64 (bit-exactness under
// identical association) and int64, and both endpoints of the root
// range for rooted collectives.
func RunTableI(t *testing.T, factory Factory) {
	ps := []int{2, 5, 8, 16}
	elemsSet := []int{0, 1, 33, 1024}
	if testing.Short() {
		ps = []int{2, 8}
		elemsSet = []int{0, 33}
	}
	for _, c := range TableICases() {
		c := c
		t.Run(fmt.Sprintf("%s_k%d", c.Alg, c.K), func(t *testing.T) {
			t.Parallel()
			tab := pinned(c)
			for _, p := range ps {
				// One reference and one candidate world per (case, p):
				// collectives run back to back on the same pair, which
				// also checks the transport leaves no residue (a stray
				// buffered message would mismatch the next run).
				ref := mem.NewWorld(p)
				w := factory(t, p)
				for _, elems := range elemsSet {
					roots := []int{0}
					if (c.Op == core.OpBcast || c.Op == core.OpReduce) && elems > 0 {
						roots = []int{0, p - 1}
					}
					for _, root := range roots {
						for _, ints := range []bool{false, true} {
							if ints && (c.Op == core.OpBcast || c.Op == core.OpAllgather) {
								// Data moves verbatim: the payload type
								// cannot change the bytes on the wire.
								continue
							}
							want := runWorld(t, memWorld{ref}, tab, c, p, elems, root, ints)
							got := runWorld(t, w, tab, c, p, elems, root, ints)
							for r := 0; r < p; r++ {
								if !bytes.Equal(want[r], got[r]) {
									t.Fatalf("%s k=%d p=%d elems=%d root=%d ints=%v rank %d: transport result differs from mem reference",
										c.Alg, c.K, p, elems, root, ints, r)
								}
							}
						}
					}
				}
				w.Close()
				ref.Close()
			}
		})
	}
}
