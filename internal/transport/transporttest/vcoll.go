package transporttest

import (
	"bytes"
	"fmt"
	"testing"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
	"exacoll/internal/transport/mem"
	"exacoll/internal/tuning"
)

// VCollCase is one vector-collective conformance case: a pinned
// (algorithm, radix) driven through the tuning dispatch layer.
type VCollCase struct {
	Op  core.CollOp
	Alg string
	K   int
}

// VCollCases enumerates the vector/irregular workload class: both
// allgatherv algorithms, the ring reduce-scatterv, both alltoallv
// algorithms, and the Kolmakov–Zhang generalized allreduce that rides
// along with them (k=2 is the Rabenseifner-equivalent baseline radix).
func VCollCases() []VCollCase {
	return []VCollCase{
		{core.OpAllgatherv, "allgatherv_ring", 0},
		{core.OpAllgatherv, "allgatherv_knomial_bruck", 2},
		{core.OpAllgatherv, "allgatherv_knomial_bruck", 3},
		{core.OpReduceScatterv, "reducescatterv_ring", 0},
		{core.OpAlltoallv, "alltoallv_linear", 0},
		{core.OpAlltoallv, "alltoallv_bruck", 0},
		{core.OpAllreduce, "allreduce_gkz", 2},
		{core.OpAllreduce, "allreduce_gkz", 3},
	}
}

// vcollDist is one count-skew shape, parameterized by a unit block size
// (a multiple of 8 so reductions stay element-aligned).
type vcollDist struct {
	name string
	// counts returns the shared per-rank byte-count vector.
	counts func(p, unit int) []int
	// matrix returns the shared p×p alltoallv byte-count matrix.
	matrix func(p, unit int) []int
}

// vcollDists covers the three shapes the workload class must survive:
// uniform (the degenerate regular case), ragged with per-rank zeros, and
// one-hot (a single contributor — the hardest skew, every other count
// zero).
func vcollDists() []vcollDist {
	return []vcollDist{
		{
			name:   "uniform",
			counts: func(p, unit int) []int { return repeatCount(p, unit) },
			matrix: func(p, unit int) []int { return repeatCount(p*p, unit) },
		},
		{
			name: "ragged",
			counts: func(p, unit int) []int {
				c := make([]int, p)
				for r := range c {
					c[r] = ((r * 37) % 5) * unit // zeros at r ≡ 0 (mod 5)
				}
				return c
			},
			matrix: func(p, unit int) []int {
				m := make([]int, p*p)
				for i := 0; i < p; i++ {
					for j := 0; j < p; j++ {
						m[i*p+j] = ((i*31 + j*17) % 5) * unit
					}
				}
				return m
			},
		},
		{
			name: "onehot",
			counts: func(p, unit int) []int {
				c := make([]int, p)
				c[p/2] = unit * p
				return c
			},
			matrix: func(p, unit int) []int {
				m := make([]int, p*p)
				for i := 0; i < p; i++ {
					m[i*p+(i+1)%p] = unit * p
				}
				return m
			},
		},
	}
}

func repeatCount(n, v int) []int {
	c := make([]int, n)
	for i := range c {
		c[i] = v
	}
	return c
}

// buildVCollArgs returns rank's Args for a case over one distribution
// plus the buffer the result lands in. counts is the shared p-vector
// (allgatherv/reduce-scatterv, and the total for the allreduce rider);
// m the shared p×p matrix (alltoallv).
func buildVCollArgs(op core.CollOp, rank, p int, counts, m []int, ints bool) (core.Args, []byte) {
	payload := messyVector
	dt := datatype.Float64
	if ints {
		payload = intVector
		dt = datatype.Int64
	}
	a := core.Args{Op: datatype.Sum, Type: dt}
	switch op {
	case core.OpAllgatherv:
		total := sumInts(counts)
		a.Counts = counts
		a.SendBuf = payload(rank, counts[rank]/8)
		a.RecvBuf = make([]byte, total)
		return a, a.RecvBuf
	case core.OpReduceScatterv:
		total := sumInts(counts)
		a.Counts = counts
		a.SendBuf = payload(rank, total/8)
		a.RecvBuf = make([]byte, counts[rank])
		return a, a.RecvBuf
	case core.OpAlltoallv:
		sendTotal, recvTotal := 0, 0
		for q := 0; q < p; q++ {
			sendTotal += m[rank*p+q]
			recvTotal += m[q*p+rank]
		}
		a.Counts = m
		a.SendBuf = payload(rank, sendTotal/8)
		a.RecvBuf = make([]byte, recvTotal)
		return a, a.RecvBuf
	case core.OpAllreduce:
		total := sumInts(counts)
		a.SendBuf = payload(rank, total/8)
		a.RecvBuf = make([]byte, total)
		return a, a.RecvBuf
	}
	panic(fmt.Sprintf("transporttest: unhandled vcoll op %v", op))
}

func sumInts(v []int) int {
	t := 0
	for _, n := range v {
		t += n
	}
	return t
}

// runVCollWorld executes the pinned vector collective on every rank of w
// and returns each rank's result buffer.
func runVCollWorld(t *testing.T, w World, tab *tuning.Table, c VCollCase, p int, counts, m []int, ints bool) [][]byte {
	t.Helper()
	out := make([][]byte, p)
	errs := make([]error, p)
	done := make(chan int, p)
	for r := 0; r < p; r++ {
		go func(r int, cm comm.Comm) {
			defer func() { done <- r }()
			a, res := buildVCollArgs(c.Op, r, p, counts, m, ints)
			errs[r] = tab.Run(cm, c.Op, a)
			out[r] = res
		}(r, w.Comm(r))
	}
	for i := 0; i < p; i++ {
		<-done
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("%s k=%d p=%d ints=%v rank %d: %v", c.Alg, c.K, p, ints, r, err)
		}
	}
	return out
}

// RunVColl drives the skewed-size conformance matrix over the transport
// built by factory: every vector-collective algorithm (plus the
// generalized allreduce) over uniform, ragged-with-zeros, and one-hot
// count distributions, unit block sizes from one element up to a
// stripe-threshold-straddling 1032 bytes (the striped TCP transport
// splits payloads above 1 KiB, so those blocks cross the
// segment-reassembly path), with both rounding-sensitive float64 and
// exact int64 payloads — all compared bit for bit against the mem
// reference running the identical pinned (algorithm, radix).
func RunVColl(t *testing.T, factory Factory) {
	ps := []int{2, 5, 8, 16}
	units := []int{8, 264, 1032}
	if testing.Short() {
		ps = []int{2, 8}
		units = []int{8, 1032}
	}
	for _, c := range VCollCases() {
		c := c
		t.Run(fmt.Sprintf("%s_k%d", c.Alg, c.K), func(t *testing.T) {
			t.Parallel()
			tab := pinned(Case{Op: c.Op, Alg: c.Alg, K: c.K})
			for _, p := range ps {
				// One reference and one candidate world per (case, p):
				// distributions run back to back on the same pair, so
				// transport residue from a skewed run would corrupt the
				// next (see RunTableI).
				ref := mem.NewWorld(p)
				w := factory(t, p)
				for _, d := range vcollDists() {
					for _, unit := range units {
						counts := d.counts(p, unit)
						m := d.matrix(p, unit)
						for _, ints := range []bool{false, true} {
							want := runVCollWorld(t, memWorld{ref}, tab, c, p, counts, m, ints)
							got := runVCollWorld(t, w, tab, c, p, counts, m, ints)
							for r := 0; r < p; r++ {
								if !bytes.Equal(want[r], got[r]) {
									t.Fatalf("%s k=%d p=%d dist=%s unit=%d ints=%v rank %d: transport result differs from mem reference",
										c.Alg, c.K, p, d.name, unit, ints, r)
								}
							}
						}
					}
				}
				w.Close()
				ref.Close()
			}
		})
	}
}
