package transporttest

import (
	"testing"

	"exacoll/internal/transport/mem"
)

// TestVCollMem runs the skewed-size matrix with mem as both candidate
// and reference: a self-check that every (algorithm, distribution, unit,
// datatype) combination the harness generates is well-formed and
// deterministic on the reference substrate itself.
func TestVCollMem(t *testing.T) {
	RunVColl(t, func(t *testing.T, p int) World {
		return memWorld{mem.NewWorld(p)}
	})
}
