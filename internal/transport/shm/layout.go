// Package shm implements comm.Comm across OS processes on one node over
// a shared mmap'd region — the intranode transport of the topo
// composition engine, where the paper's processes-per-node term of the
// machine model stops being synthetic.
//
// The region holds, for every ordered rank pair (s → d), two
// single-producer/single-consumer byte rings: a small control ring
// carrying 16-byte frames with inline payloads, and a big handoff ring
// through which large payloads stream. A per-source reader goroutine on
// the destination demultiplexes frames into the shared matching engine
// (internal/transport/match); when a receive is already posted, a large
// payload is copied exactly once — shared memory straight into the
// user's buffer (match.Engine.DeliverTo).
//
// All cross-process synchronization is lock-free: ring head/tail cursors
// and per-rank liveness slots are 8-byte words in the region accessed
// through sync/atomic, so the rings carry proper happens-before edges —
// visible to the race detector when the region is shared in-process
// (World) and correct across processes via the same seq-cst atomics.
//
// Fencing on process death: every rank owns a liveness slot (state +
// heartbeat counter). A rank that dies silently stops bumping its
// heartbeat and is declared dead by the first peer to notice
// (compare-and-swap on the state word, so all survivors agree); a rank
// that leaves cleanly marks itself departed. Readers drain everything a
// dead peer fully published — eager sends were "on the wire" — then
// surface comm.ErrPeerDead, matching the mem and tcp transports.
package shm

import (
	"encoding/binary"
	"fmt"
	"os"
	"syscall"
)

const (
	// magic stamps an initialized region; the creator stores it last
	// (atomically), so attachers polling for it never observe a
	// half-initialized header.
	magic = uint64(0x47434153484d3031) // "GCASHM01"

	headerBytes = 64  // magic(8) p(4) ringCap(4) bigCap(4) pad
	slotBytes   = 64  // state(8) heartbeat(8), padded to a cache line
	ringHdr     = 128 // head(8) and tail(8) on separate cache lines

	// Per-rank liveness states (the state word of a slot).
	slotEmpty    = 0 // never attached
	slotAttached = 1
	slotDeparted = 2 // clean Close: peers drain, then ErrPeerDead
	slotDead     = 3 // killed, crashed, or declared by staleness CAS
)

// geometry is the compile-time-independent shape of a region.
type geometry struct {
	p       int
	ringCap int // control ring bytes (power of two)
	bigCap  int // big handoff ring bytes (power of two)
}

func (g geometry) pairBytes() int { return 2*ringHdr + g.ringCap + g.bigCap }

func (g geometry) totalBytes() int {
	return headerBytes + g.p*slotBytes + g.p*g.p*g.pairBytes()
}

// pairBase returns the offset of ordered pair (s → d)'s region.
func (g geometry) pairBase(s, d int) int {
	return headerBytes + g.p*slotBytes + (s*g.p+d)*g.pairBytes()
}

// region is one mapping of the shared file.
type region struct {
	data []byte
	geo  geometry
	own  bool // munmap on close (cross-process mappings own theirs)
}

func (rg *region) slotState(r int) *uint64 {
	return u64at(rg.data, headerBytes+r*slotBytes)
}

func (rg *region) slotHB(r int) *uint64 {
	return u64at(rg.data, headerBytes+r*slotBytes+8)
}

// ctrl returns the control ring of pair (s → d).
func (rg *region) ctrl(s, d int) ring {
	base := rg.geo.pairBase(s, d)
	return ring{
		head: u64at(rg.data, base),
		tail: u64at(rg.data, base+64),
		data: rg.data[base+ringHdr : base+ringHdr+rg.geo.ringCap],
	}
}

// big returns the big handoff ring of pair (s → d).
func (rg *region) big(s, d int) ring {
	base := rg.geo.pairBase(s, d) + ringHdr + rg.geo.ringCap
	return ring{
		head: u64at(rg.data, base),
		tail: u64at(rg.data, base+64),
		data: rg.data[base+ringHdr : base+ringHdr+rg.geo.bigCap],
	}
}

func (rg *region) close() {
	if rg.own && rg.data != nil {
		syscall.Munmap(rg.data)
	}
	rg.data = nil
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// initFile sizes and initializes the region file: geometry header first,
// magic last. The file must be fresh (all zero).
func initFile(f *os.File, geo geometry) error {
	if err := f.Truncate(int64(geo.totalBytes())); err != nil {
		return fmt.Errorf("shm: truncate: %w", err)
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[8:], uint32(geo.p))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(geo.ringCap))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(geo.bigCap))
	if _, err := f.WriteAt(hdr[8:], 8); err != nil {
		return fmt.Errorf("shm: write header: %w", err)
	}
	binary.LittleEndian.PutUint64(hdr[:8], magic)
	if _, err := f.WriteAt(hdr[:8], 0); err != nil {
		return fmt.Errorf("shm: write magic: %w", err)
	}
	return nil
}

// mapFile maps an initialized region file, validating its header.
func mapFile(f *os.File, wantP int) (*region, error) {
	var hdr [24]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("shm: read header: %w", err)
	}
	if binary.LittleEndian.Uint64(hdr[:8]) != magic {
		return nil, fmt.Errorf("shm: region not initialized")
	}
	geo := geometry{
		p:       int(binary.LittleEndian.Uint32(hdr[8:])),
		ringCap: int(binary.LittleEndian.Uint32(hdr[12:])),
		bigCap:  int(binary.LittleEndian.Uint32(hdr[16:])),
	}
	if geo.p < 1 || !isPow2(geo.ringCap) || !isPow2(geo.bigCap) {
		return nil, fmt.Errorf("shm: corrupt region header (p=%d ring=%d big=%d)",
			geo.p, geo.ringCap, geo.bigCap)
	}
	if wantP > 0 && geo.p != wantP {
		return nil, fmt.Errorf("shm: region is a %d-rank world, want %d", geo.p, wantP)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, geo.totalBytes(),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("shm: mmap: %w", err)
	}
	return &region{data: data, geo: geo, own: true}, nil
}
