package shm

import (
	"bytes"
	"errors"
	"os"
	"sync"
	"testing"
	"time"

	"exacoll/internal/comm"
)

// TestBasicSendRecv: small inline, big streamed, zero-length, and FIFO
// per (source, tag) over real shared-memory rings.
func TestBasicSendRecv(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	c0, c1 := w.Comm(0), w.Comm(1)

	big := make([]byte, 300<<10) // past InlineMax, past BigBytes/4: streams
	for i := range big {
		big[i] = byte(i * 13)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := c1.Send(0, 5, []byte("hello")); err != nil {
			t.Errorf("send small: %v", err)
		}
		if err := c1.Send(0, 5, big); err != nil {
			t.Errorf("send big: %v", err)
		}
		if err := c1.Send(0, 5, nil); err != nil {
			t.Errorf("send zero: %v", err)
		}
		if err := c1.Send(0, 5, []byte("bye")); err != nil {
			t.Errorf("send tail: %v", err)
		}
	}()
	buf := make([]byte, len(big))
	n, err := c0.Recv(1, 5, buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("first recv: n=%d err=%v", n, err)
	}
	n, err = c0.Recv(1, 5, buf)
	if err != nil || n != len(big) || !bytes.Equal(buf[:n], big) {
		t.Fatalf("big recv: n=%d err=%v", n, err)
	}
	n, err = c0.Recv(1, 5, buf)
	if err != nil || n != 0 {
		t.Fatalf("zero recv: n=%d err=%v", n, err)
	}
	n, err = c0.Recv(1, 5, buf)
	if err != nil || string(buf[:n]) != "bye" {
		t.Fatalf("tail recv: n=%d err=%v", n, err)
	}
	wg.Wait()
}

// TestPayloadLargerThanBigRing: a payload bigger than the big ring
// streams through it (producer and consumer overlap).
func TestPayloadLargerThanBigRing(t *testing.T) {
	w := NewWorldOpts(2, Options{RingBytes: 4 << 10, BigBytes: 16 << 10})
	defer w.Close()
	c0, c1 := w.Comm(0), w.Comm(1)

	msg := make([]byte, 1<<20) // 64x the big ring
	for i := range msg {
		msg[i] = byte(i ^ (i >> 9))
	}
	errc := make(chan error, 1)
	go func() { errc <- c1.Send(0, 9, msg) }()
	buf := make([]byte, len(msg))
	n, err := c0.Recv(1, 9, buf)
	if err != nil || n != len(msg) {
		t.Fatalf("recv: n=%d err=%v", n, err)
	}
	if serr := <-errc; serr != nil {
		t.Fatalf("send: %v", serr)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatal("streamed payload corrupt")
	}
}

// TestManyMessages: a storm of interleaved small and large messages on
// multiple tags between 3 ranks.
func TestManyMessages(t *testing.T) {
	w := NewWorld(3)
	defer w.Close()
	const rounds = 50
	payload := func(src, i int) []byte {
		n := 48
		if i%6 == 0 {
			n = 100 << 10 // big-ring path
		}
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(src*29 + i*11 + j)
		}
		return b
	}
	errs := w.RunAll(func(c comm.Comm) error {
		r := c.Rank()
		var inner sync.WaitGroup
		var firstErr error
		var mu sync.Mutex
		fail := func(err error) {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
		for peer := 0; peer < 3; peer++ {
			if peer == r {
				continue
			}
			inner.Add(2)
			go func(peer int) {
				defer inner.Done()
				for i := 0; i < rounds; i++ {
					if err := c.Send(peer, comm.Tag(r), payload(r, i)); err != nil {
						fail(err)
						return
					}
				}
			}(peer)
			go func(peer int) {
				defer inner.Done()
				buf := make([]byte, 100<<10)
				for i := 0; i < rounds; i++ {
					n, err := c.Recv(peer, comm.Tag(peer), buf)
					if err != nil {
						fail(err)
						return
					}
					if want := payload(peer, i); !bytes.Equal(buf[:n], want) {
						fail(errors.New("corrupt payload"))
						return
					}
				}
			}(peer)
		}
		inner.Wait()
		return firstErr
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestKillSymmetric: killing a rank mid-life surfaces ErrPeerDead on
// survivors — pending receives release, new operations fail, the
// detector reports it — while messages already published stay
// deliverable.
func TestKillSymmetric(t *testing.T) {
	w := NewWorld(3)
	defer w.Close()
	c0, c1 := w.Comm(0), w.Comm(1)
	c2 := w.Comm(2)

	// A message published before the kill is "on the wire".
	if err := c1.Send(0, 7, []byte{42}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c0.Recv(1, 3, make([]byte, 4)) // never sent: must release on kill
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	w.Kill(1)

	select {
	case err := <-done:
		if !errors.Is(err, comm.ErrPeerDead) {
			t.Fatalf("pending recv: want ErrPeerDead, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending recv not released by kill")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if f := c0.(*Proc).Failed(); len(f) == 1 && f[0] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("Failed() = %v, want [1]", c0.(*Proc).Failed())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The pre-kill message was drained before the fence: still matchable.
	buf := make([]byte, 4)
	if n, err := c0.Recv(1, 7, buf); err != nil || n != 1 || buf[0] != 42 {
		t.Fatalf("on-the-wire recv: n=%d err=%v", n, err)
	}
	if _, err := c0.Recv(1, 8, buf); !errors.Is(err, comm.ErrPeerDead) {
		t.Fatalf("new recv from dead rank: want ErrPeerDead, got %v", err)
	}
	if err := c0.Send(1, 8, []byte{1}); !errors.Is(err, comm.ErrPeerDead) {
		t.Fatalf("send to dead rank: want ErrPeerDead, got %v", err)
	}
	// Survivors still talk.
	if err := c2.Send(0, 9, []byte{9}); err != nil {
		t.Fatalf("survivor send: %v", err)
	}
	if n, err := c0.Recv(2, 9, buf); err != nil || n != 1 || buf[0] != 9 {
		t.Fatalf("survivor recv: n=%d err=%v", n, err)
	}
}

// TestHeartbeatDetectsWedgedRank: a rank that stops publishing
// heartbeats (but never transitions its state) is declared dead by the
// staleness CAS, and all survivors agree.
func TestHeartbeatDetectsWedgedRank(t *testing.T) {
	w := NewWorldOpts(2, Options{
		RingBytes: 16 << 10, BigBytes: 64 << 10,
		Heartbeat: 10 * time.Millisecond, SuspectAfter: 80 * time.Millisecond,
	})
	defer w.Close()
	c0 := w.Comm(0).(*Proc)
	c1 := w.Comm(1).(*Proc)
	c1.mute.Store(true) // stop publishing: rank 1 looks wedged
	deadline := time.Now().Add(5 * time.Second)
	for {
		if f := c0.Failed(); len(f) == 1 && f[0] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("wedged rank never suspected; Failed() = %v", c0.Failed())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c0.Recv(1, 3, make([]byte, 4)); !errors.Is(err, comm.ErrPeerDead) {
		t.Fatalf("recv from wedged rank: want ErrPeerDead, got %v", err)
	}
}

// TestOpTimeout: Deadliner semantics — a receive with no sender times
// out, and its buffer is never written by a late message.
func TestOpTimeout(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	c0 := w.Comm(0).(*Proc)
	c1 := w.Comm(1)

	c0.SetOpTimeout(50 * time.Millisecond)
	if _, err := c0.Recv(1, 7, make([]byte, 8)); !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	// A late message must match a fresh receive, not the cancelled one.
	if err := c1.Send(0, 7, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	c0.SetOpTimeout(5 * time.Second)
	buf := make([]byte, 8)
	n, err := c0.Recv(1, 7, buf)
	if err != nil || n != 3 || buf[0] != 1 {
		t.Fatalf("fresh recv: n=%d err=%v buf=%v", n, err, buf)
	}
}

// TestPurgeTags: buffered messages in the window vanish, posted receives
// cancel with ErrTimeout, traffic outside survives.
func TestPurgeTags(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	c0 := w.Comm(0).(*Proc)
	c1 := w.Comm(1)

	if err := c1.Send(0, 100, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := c1.Send(0, 200, []byte{2}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c0.engine.UnexpectedCount() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("frames never arrived")
		}
		time.Sleep(2 * time.Millisecond)
	}
	req, err := c0.Irecv(1, 150, make([]byte, 1))
	if err != nil {
		t.Fatal(err)
	}
	c0.PurgeTags(100, 151)
	if err := req.Wait(); !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("purged posted recv: want ErrTimeout, got %v", err)
	}
	buf := make([]byte, 1)
	if n, err := c0.Recv(1, 200, buf); err != nil || n != 1 || buf[0] != 2 {
		t.Fatalf("tag outside window: n=%d err=%v", n, err)
	}
	c0.SetOpTimeout(30 * time.Millisecond)
	if _, err := c0.Recv(1, 100, buf); !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("purged tag still matched: err=%v", err)
	}
}

// TestLocality: native single-node view, then the synthetic override.
func TestLocality(t *testing.T) {
	w := NewWorld(4)
	defer w.Close()
	c0 := w.Comm(0).(*Proc)
	loc, ok := c0.Locality(3)
	if !ok || loc.Node != 0 || loc.LocalRank != 3 || loc.PPN != 4 {
		t.Fatalf("native Locality(3) = %+v, %v", loc, ok)
	}
	w.SetLocality(2, 4)
	loc, ok = c0.Locality(3)
	if !ok || loc.Node != 1 || loc.LocalRank != 1 || loc.PPN != 2 || loc.Ports != 4 {
		t.Fatalf("synthetic Locality(3) = %+v, %v", loc, ok)
	}
}

// TestCloseIsDeparted: a clean Close drains like a departure — peers get
// everything published first, then ErrPeerDead; the closer's own handle
// reports ErrClosed.
func TestCloseIsDeparted(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	c0, c1 := w.Comm(0).(*Proc), w.Comm(1).(*Proc)

	if err := c1.Send(0, 4, []byte("last words")); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	buf := make([]byte, 16)
	n, err := c0.Recv(1, 4, buf)
	if err != nil || string(buf[:n]) != "last words" {
		t.Fatalf("drain after close: n=%d err=%v", n, err)
	}
	if _, err := c0.Recv(1, 4, buf); !errors.Is(err, comm.ErrPeerDead) {
		t.Fatalf("post-close recv: want ErrPeerDead, got %v", err)
	}
	if _, err := c1.Recv(0, 4, buf); !errors.Is(err, comm.ErrClosed) {
		t.Fatalf("closed handle recv: want ErrClosed, got %v", err)
	}
}

// TestCrossProcessAttach exercises the Create/Attach file path inside
// one process: two Procs with separate mappings of the same region file.
func TestCrossProcessAttach(t *testing.T) {
	path := DefaultPath("gcashm-test-attach")
	os.Remove(path)
	t.Cleanup(func() { os.Remove(path) })
	if err := Create(path, 2, Options{RingBytes: 16 << 10, BigBytes: 64 << 10}); err != nil {
		t.Fatal(err)
	}
	procs := make([]*Proc, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			procs[r], errs[r] = Attach(path, r, 2, Options{Timeout: 10 * time.Second})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d attach: %v", r, err)
		}
	}
	defer procs[0].Close()
	defer procs[1].Close()

	msg := make([]byte, 50<<10)
	for i := range msg {
		msg[i] = byte(i * 3)
	}
	errc := make(chan error, 1)
	go func() { errc <- procs[1].Send(0, 11, msg) }()
	buf := make([]byte, len(msg))
	n, err := procs[0].Recv(1, 11, buf)
	if err != nil || n != len(msg) || !bytes.Equal(buf[:n], msg) {
		t.Fatalf("attach-path recv: n=%d err=%v", n, err)
	}
	if serr := <-errc; serr != nil {
		t.Fatal(serr)
	}
}
