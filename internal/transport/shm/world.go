package shm

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"exacoll/internal/comm"
)

// World is the in-process harness over the shm transport, mirroring
// mem.World's surface (NewWorld, Comm, Run, RunAll, Kill, SetLocality,
// Close) so the same test and benchmark drivers run over real
// shared-memory rings. All ranks share one mapping of an unlinked
// region file, which keeps every cross-rank access visible to the race
// detector — the same code paths a multi-process gcarun run exercises,
// minus only the process boundary.
type World struct {
	rg   *region
	opts Options

	mu     sync.Mutex
	procs  []*Proc
	closed bool

	synPPN   atomic.Int64
	synPorts atomic.Int64
	synSet   atomic.Bool
}

// NewWorld creates a p-rank in-process shared-memory world with
// test-sized rings (64 KiB control, 1 MiB big per pair).
func NewWorld(p int) *World {
	return NewWorldOpts(p, Options{RingBytes: 64 << 10, BigBytes: 1 << 20})
}

// NewWorldOpts creates a world with explicit options.
func NewWorldOpts(p int, opts Options) *World {
	if p < 1 {
		panic(fmt.Sprintf("shm: world size %d", p))
	}
	f, err := os.CreateTemp(tempDir(), "gcashm-world-*")
	if err != nil {
		panic(fmt.Sprintf("shm: temp region: %v", err))
	}
	path := f.Name()
	if err := initFile(f, opts.geometry(p)); err != nil {
		f.Close()
		os.Remove(path)
		panic(fmt.Sprintf("shm: init region: %v", err))
	}
	rg, err := mapFile(f, p)
	// The mapping outlives both the descriptor and the directory entry;
	// unlinking now means no cleanup path can ever leak the file.
	f.Close()
	os.Remove(path)
	if err != nil {
		panic(fmt.Sprintf("shm: map region: %v", err))
	}
	return &World{rg: rg, opts: opts, procs: make([]*Proc, p)}
}

func tempDir() string {
	if st, err := os.Stat("/dev/shm"); err == nil && st.IsDir() {
		return "/dev/shm"
	}
	return os.TempDir()
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.rg.geo.p }

// Comm returns rank's communicator, attaching it on first use (lazy,
// like mem.World — no barrier). Each rank's handle must be driven from
// its own goroutine.
func (w *World) Comm(rank int) comm.Comm {
	w.mu.Lock()
	defer w.mu.Unlock()
	if rank < 0 || rank >= len(w.procs) {
		panic(fmt.Sprintf("shm: rank %d outside world of %d", rank, len(w.procs)))
	}
	if w.closed {
		panic("shm: world closed")
	}
	if w.procs[rank] == nil {
		pr, err := newProc(w.rg, rank, w.opts, false)
		if err != nil {
			panic(fmt.Sprintf("shm: attach rank %d: %v", rank, err))
		}
		if w.synSet.Load() {
			pr.SetLocality(int(w.synPPN.Load()), int(w.synPorts.Load()))
		}
		w.procs[rank] = pr
	}
	return w.procs[rank]
}

// SetLocality declares a synthetic layout for all ranks (current and
// future handles), mirroring mem.World.SetLocality.
func (w *World) SetLocality(ppn, ports int) {
	w.synPPN.Store(int64(ppn))
	w.synPorts.Store(int64(ports))
	w.synSet.Store(true)
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, pr := range w.procs {
		if pr != nil {
			pr.SetLocality(ppn, ports)
		}
	}
}

// Kill fail-stops a rank: its slot goes dead immediately and survivors
// fence it after draining what it already published. A rank never
// attached is killed in the region directly, so it can never join.
func (w *World) Kill(rank int) {
	w.mu.Lock()
	pr := w.procs[rank]
	w.mu.Unlock()
	if pr != nil {
		pr.Kill()
		return
	}
	st := w.rg.slotState(rank)
	atomic.StoreUint64(st, slotDead)
}

// Close tears down all ranks and unmaps the region.
func (w *World) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	procs := append([]*Proc(nil), w.procs...)
	w.mu.Unlock()
	for _, pr := range procs {
		if pr != nil {
			pr.Close()
		}
	}
	w.rg.close()
}

// Run executes fn once per rank, each on its own goroutine, and returns
// the first non-nil error.
func (w *World) Run(fn func(c comm.Comm) error) error {
	for _, err := range w.RunAll(fn) {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunAll executes fn once per rank and returns every rank's error.
func (w *World) RunAll(fn func(c comm.Comm) error) []error {
	p := w.Size()
	comms := make([]comm.Comm, p)
	for r := 0; r < p; r++ {
		comms[r] = w.Comm(r)
	}
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(comms[r])
		}(r)
	}
	wg.Wait()
	return errs
}
