package shm

import (
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"
)

// u64at views an 8-byte-aligned offset of the mapped region as a
// *uint64 for sync/atomic access. Region layout guarantees 64-byte
// alignment of every cursor and slot word, and mmap returns
// page-aligned memory, so the cast is always aligned.
func u64at(b []byte, off int) *uint64 {
	return (*uint64)(unsafe.Pointer(&b[off]))
}

// ring is one single-producer/single-consumer byte stream in the shared
// region. head is the consumer cursor (bytes consumed), tail the
// producer cursor (bytes published); both grow monotonically and are
// never wrapped — the data index is cursor & mask. The producer copies
// payload first and then atomically advances tail (release), the
// consumer loads tail (acquire) before reading, so payload bytes are
// ordered by the cursor atomics for both the hardware and the race
// detector.
type ring struct {
	head *uint64
	tail *uint64
	data []byte
}

// spinBudget is how many empty polls a ring side burns on
// runtime.Gosched before sleeping. Shared-memory latencies are sub-µs,
// so a short spin catches the common case; the sleep keeps a blocked
// collective from melting a core.
const spinBudget = 64

// backoff yields the scheduler for the first spinBudget rounds, then
// sleeps with escalation (20µs doubling to ~1.3ms), so an idle world of
// p·(p-1) reader goroutines costs a trickle of wakeups while an active
// transfer stays in the spin zone (the round counter resets on every
// byte of progress). Returns the next round counter.
func backoff(round int) int {
	if round < spinBudget {
		runtime.Gosched()
	} else {
		k := (round - spinBudget) / 8
		if k > 6 {
			k = 6
		}
		time.Sleep(time.Duration(20<<k) * time.Microsecond)
	}
	return round + 1
}

// writeAll publishes all of b into the ring, blocking while the
// consumer lags. abort is polled while blocked; its error aborts the
// write mid-stream (the stream is then corrupt — callers must fence the
// peer, mirroring tcp's sendError contract).
func (r ring) writeAll(b []byte, abort func() error) error {
	capacity := uint64(len(r.data))
	tail := atomic.LoadUint64(r.tail)
	round := 0
	for len(b) > 0 {
		head := atomic.LoadUint64(r.head)
		space := capacity - (tail - head)
		if space == 0 {
			if err := abort(); err != nil {
				return err
			}
			round = backoff(round)
			continue
		}
		round = 0
		n := uint64(len(b))
		if n > space {
			n = space
		}
		idx := tail & (capacity - 1)
		first := capacity - idx
		if first > n {
			first = n
		}
		copy(r.data[idx:idx+first], b[:first])
		copy(r.data[:n-first], b[first:n])
		tail += n
		atomic.StoreUint64(r.tail, tail)
		b = b[n:]
	}
	return nil
}

// readFull consumes exactly len(dst) bytes from the ring into dst,
// blocking while the producer lags. abort is polled while blocked.
func (r ring) readFull(dst []byte, abort func() error) error {
	capacity := uint64(len(r.data))
	head := atomic.LoadUint64(r.head)
	round := 0
	for len(dst) > 0 {
		tail := atomic.LoadUint64(r.tail)
		avail := tail - head
		if avail == 0 {
			if err := abort(); err != nil {
				return err
			}
			round = backoff(round)
			continue
		}
		round = 0
		n := uint64(len(dst))
		if n > avail {
			n = avail
		}
		idx := head & (capacity - 1)
		first := capacity - idx
		if first > n {
			first = n
		}
		copy(dst[:first], r.data[idx:idx+first])
		copy(dst[first:n], r.data[:n-first])
		head += n
		atomic.StoreUint64(r.head, head)
		dst = dst[n:]
	}
	return nil
}

// readable reports how many published bytes are waiting (consumer side).
func (r ring) readable() uint64 {
	return atomic.LoadUint64(r.tail) - atomic.LoadUint64(r.head)
}
