package shm

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"exacoll/internal/buf"
	"exacoll/internal/comm"
	"exacoll/internal/transport/match"
)

// Options configures a shared-memory world. The zero value is usable.
type Options struct {
	// RingBytes is the per-pair control-ring capacity (rounded up to a
	// power of two; default 256 KiB). Small messages travel inline here.
	RingBytes int
	// BigBytes is the per-pair big-handoff-ring capacity (rounded up to
	// a power of two; default 4 MiB). Payloads above InlineMax stream
	// through it, so it bounds in-flight bytes, not message size.
	BigBytes int
	// InlineMax is the largest payload carried inline in the control
	// ring (default min(RingBytes/4, 32 KiB)).
	InlineMax int
	// Heartbeat is the liveness publish interval (default 25ms).
	// Negative disables publishing — a test hook that makes this rank
	// look wedged to its peers' staleness detectors.
	Heartbeat time.Duration
	// SuspectAfter is how long a peer's heartbeat counter may stand
	// still before it is declared dead (default 2s).
	SuspectAfter time.Duration
	// Timeout bounds Attach: how long to wait for the region file to
	// appear and for all ranks to arrive (default 30s).
	Timeout time.Duration
	// NoWait skips the all-ranks-attached barrier in Attach. The
	// in-process World always attaches NoWait, matching mem's lazy
	// rank startup.
	NoWait bool
	// Ports is reported as Locality.Ports (0 = unknown); SetLocality
	// overrides it.
	Ports int
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func (o Options) geometry(p int) geometry {
	ring := o.RingBytes
	if ring <= 0 {
		ring = 256 << 10
	}
	big := o.BigBytes
	if big <= 0 {
		big = 4 << 20
	}
	if ring < 4096 {
		ring = 4096
	}
	if big < 4096 {
		big = 4096
	}
	return geometry{p: p, ringCap: ceilPow2(ring), bigCap: ceilPow2(big)}
}

func (o Options) inlineMax(geo geometry) int {
	if o.InlineMax > 0 {
		return o.InlineMax
	}
	im := geo.ringCap / 4
	if im > 32<<10 {
		im = 32 << 10
	}
	return im
}

func (o Options) heartbeat() time.Duration {
	if o.Heartbeat != 0 {
		return o.Heartbeat
	}
	return 25 * time.Millisecond
}

func (o Options) suspectAfter() time.Duration {
	if o.SuspectAfter > 0 {
		return o.SuspectAfter
	}
	return 2 * time.Second
}

func (o Options) timeout() time.Duration {
	if o.Timeout > 0 {
		return o.Timeout
	}
	return 30 * time.Second
}

// frameSize is the control-ring frame header: tag u32, n u32, flags u32,
// reserved u32. Inline payload follows immediately; big payloads stream
// through the pair's big ring in the same order frames were published.
const frameSize = 16

const flagBig = 1 << 0

// maxMsgBytes bounds a single message (sanity check against a corrupt
// region; matches the tcp transport's ceiling).
const maxMsgBytes = 1 << 30

// Proc is one rank's endpoint in a shared-memory world. It implements
// comm.Comm plus the Deadliner, FailureDetector, Purger, and Locator
// capability interfaces, so every wrapper in the repo — nbc, ft, flight,
// topo, svc — composes over it unchanged.
type Proc struct {
	rg    *region
	ownRg bool // this Proc owns the mapping (cross-process Attach)
	rank  int
	size  int

	engine    *match.Engine
	sendMu    []sync.Mutex // per-destination: serialize frame+payload publishes
	inlineMax int
	opTimeout atomic.Int64 // nanoseconds; 0 = unbounded

	basePorts int
	synPPN    atomic.Int64 // SetLocality override (0 = native single-node view)
	synPorts  atomic.Int64

	hb      time.Duration
	suspect time.Duration
	mute    atomic.Bool // test hook: stop publishing heartbeats

	stop      chan struct{}
	stopped   atomic.Bool
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// newProc builds a rank endpoint over an already-mapped region, marks its
// slot attached, and starts the per-source readers and the liveness
// monitor. ownRg hands the mapping's lifetime to this Proc.
func newProc(rg *region, rank int, opts Options, ownRg bool) (*Proc, error) {
	p := &Proc{
		rg:        rg,
		ownRg:     ownRg,
		rank:      rank,
		size:      rg.geo.p,
		engine:    match.New(),
		sendMu:    make([]sync.Mutex, rg.geo.p),
		inlineMax: opts.inlineMax(rg.geo),
		basePorts: opts.Ports,
		hb:        opts.Heartbeat,
		suspect:   opts.suspectAfter(),
		stop:      make(chan struct{}),
	}
	if p.hb == 0 {
		p.hb = opts.heartbeat()
	}
	if p.hb < 0 {
		p.mute.Store(true)
		p.hb = 25 * time.Millisecond
	}
	if !atomic.CompareAndSwapUint64(rg.slotState(rank), slotEmpty, slotAttached) {
		return nil, fmt.Errorf("shm: rank %d slot already claimed (state %d)",
			rank, atomic.LoadUint64(rg.slotState(rank)))
	}
	for s := 0; s < p.size; s++ {
		if s == rank {
			continue
		}
		p.wg.Add(1)
		go p.readLoop(s)
	}
	p.wg.Add(1)
	go p.monitor()
	return p, nil
}

func (p *Proc) Rank() int         { return p.rank }
func (p *Proc) Size() int         { return p.size }
func (p *Proc) ChargeCompute(int) {}

// SetOpTimeout implements comm.Deadliner for this handle.
func (p *Proc) SetOpTimeout(d time.Duration) { p.opTimeout.Store(int64(d)) }

// Failed implements comm.FailureDetector.
func (p *Proc) Failed() []int { return p.engine.FailedPeers() }

// PurgeTags implements comm.Purger.
func (p *Proc) PurgeTags(lo, hi comm.Tag) { p.engine.PurgeTags(lo, hi) }

// SetLocality declares a synthetic layout (rank r on node r/ppn), the
// same test hook mem and tcp expose; it overrides the native
// single-node view.
func (p *Proc) SetLocality(ppn, ports int) {
	p.synPPN.Store(int64(ppn))
	p.synPorts.Store(int64(ports))
}

// Locality implements comm.Locator. Natively every rank of a
// shared-memory world lives on one node: Node 0, LocalRank = rank,
// PPN = world size — the intranode leaf the topo composition engine
// builds its hierarchy on.
func (p *Proc) Locality(rank int) (comm.Locality, bool) {
	if rank < 0 || rank >= p.size {
		return comm.Locality{}, false
	}
	if ppn := int(p.synPPN.Load()); ppn >= 1 {
		return comm.Locality{
			Node:      rank / ppn,
			LocalRank: rank % ppn,
			PPN:       ppn,
			Ports:     int(p.synPorts.Load()),
		}, true
	}
	return comm.Locality{Node: 0, LocalRank: rank, PPN: p.size, Ports: p.basePorts}, true
}

func (p *Proc) deadline() time.Time {
	if d := time.Duration(p.opTimeout.Load()); d > 0 {
		return time.Now().Add(d)
	}
	return time.Time{}
}

// sendAbort is polled by a blocked ring write: it fails the publish when
// this rank is closing, the destination is gone, or the op deadline
// passed. An abort can leave a partial frame in the stream, so the
// caller must fence the peer afterwards (same contract as tcp's
// sendError).
func (p *Proc) sendAbort(to int, deadline time.Time) func() error {
	return func() error {
		if p.stopped.Load() {
			return comm.ErrClosed
		}
		switch atomic.LoadUint64(p.rg.slotState(to)) {
		case slotDead, slotDeparted:
			return fmt.Errorf("shm: rank %d gone: %w", to, comm.ErrPeerDead)
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return fmt.Errorf("shm: send to rank %d: %w", to, comm.ErrTimeout)
		}
		return nil
	}
}

func (p *Proc) Send(to int, tag comm.Tag, b []byte) error {
	if err := comm.CheckPeer(p.rank, to, p.size); err != nil {
		return err
	}
	if p.stopped.Load() {
		return comm.ErrClosed
	}
	if err := p.engine.PeerError(to); err != nil {
		return err
	}
	if len(b) > maxMsgBytes {
		return fmt.Errorf("shm: message of %d bytes exceeds %d-byte limit", len(b), maxMsgBytes)
	}
	switch atomic.LoadUint64(p.rg.slotState(to)) {
	case slotDead, slotDeparted:
		err := fmt.Errorf("shm: send to dead rank %d: %w", to, comm.ErrPeerDead)
		p.engine.FailPeer(to, err)
		return err
	}
	abort := p.sendAbort(to, p.deadline())

	var hdr [frameSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(tag))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(b)))

	p.sendMu[to].Lock()
	defer p.sendMu[to].Unlock()
	ctrl := p.rg.ctrl(p.rank, to)
	var err error
	if len(b) <= p.inlineMax {
		// One publish: header and payload coalesced through a scratch
		// frame, so the consumer sees them appear together.
		frame := buf.Get(frameSize + len(b))
		copy(frame, hdr[:])
		copy(frame[frameSize:], b)
		err = ctrl.writeAll(frame[:frameSize+len(b)], abort)
		buf.Put(frame)
	} else {
		binary.LittleEndian.PutUint32(hdr[8:], flagBig)
		if err = ctrl.writeAll(hdr[:], abort); err == nil {
			err = p.rg.big(p.rank, to).writeAll(b, abort)
		}
	}
	if err != nil {
		// The pair stream may hold a partial publish; nothing sent to
		// this peer can be trusted again.
		p.engine.FailPeer(to, err)
		return err
	}
	return nil
}

// sentReq is the shared immediately-complete send request (eager
// semantics, like mem and tcp).
type sentReq struct{}

func (*sentReq) Wait() error         { return nil }
func (*sentReq) Len() int            { return 0 }
func (*sentReq) Test() (bool, error) { return true, nil }

var eagerSent = &sentReq{}

func (p *Proc) Isend(to int, tag comm.Tag, b []byte) (comm.Request, error) {
	if err := p.Send(to, tag, b); err != nil {
		return nil, err
	}
	return eagerSent, nil
}

func (p *Proc) Irecv(from int, tag comm.Tag, b []byte) (comm.Request, error) {
	if err := comm.CheckPeer(p.rank, from, p.size); err != nil {
		return nil, err
	}
	pr, err := p.engine.Post(from, tag, b)
	if err != nil {
		return nil, err
	}
	return p.engine.Request(pr, from, tag, time.Duration(p.opTimeout.Load())), nil
}

func (p *Proc) Recv(from int, tag comm.Tag, b []byte) (int, error) {
	req, err := p.Irecv(from, tag, b)
	if err != nil {
		return 0, err
	}
	if err := req.Wait(); err != nil {
		return 0, err
	}
	return req.Len(), nil
}

// readAbort is polled by a blocked payload read. readFull only invokes
// it when the ring is empty, so "peer dead and nothing published" is
// exactly the case where the remaining bytes can never arrive.
func (p *Proc) readAbort(src int) func() error {
	return func() error {
		if p.stopped.Load() {
			return comm.ErrClosed
		}
		switch atomic.LoadUint64(p.rg.slotState(src)) {
		case slotDead, slotDeparted:
			return fmt.Errorf("shm: rank %d died mid-message: %w", src, comm.ErrPeerDead)
		}
		return nil
	}
}

// readLoop drains the control ring of one source rank, demultiplexing
// frames into the matching engine. Payloads are copied exactly once:
// DeliverTo hands the posted receive's buffer straight to the ring read
// when a matching receive is already posted.
func (p *Proc) readLoop(src int) {
	defer p.wg.Done()
	ctrl := p.rg.ctrl(src, p.rank)
	big := p.rg.big(src, p.rank)
	abort := p.readAbort(src)
	var hdr [frameSize]byte
	round := 0
	for {
		if p.stopped.Load() {
			return
		}
		if ctrl.readable() < frameSize {
			// A dead or departed peer can never complete another frame
			// once the readable residue is below a header. Everything it
			// fully published has been drained — those sends were "on
			// the wire" and stay deliverable — so now the failure
			// surfaces.
			switch atomic.LoadUint64(p.rg.slotState(src)) {
			case slotDead, slotDeparted:
				p.engine.FailPeer(src, fmt.Errorf("shm: rank %d gone: %w", src, comm.ErrPeerDead))
				return
			}
			round = backoff(round)
			continue
		}
		round = 0
		if err := ctrl.readFull(hdr[:], abort); err != nil {
			p.finishPeer(src, err)
			return
		}
		tag := comm.Tag(int32(binary.LittleEndian.Uint32(hdr[0:])))
		n := int(binary.LittleEndian.Uint32(hdr[4:]))
		flags := binary.LittleEndian.Uint32(hdr[8:])
		if n > maxMsgBytes {
			p.finishPeer(src, fmt.Errorf("shm: rank %d sent corrupt frame (%d bytes): %w",
				src, n, comm.ErrPeerDead))
			return
		}
		payload := &ctrl
		if flags&flagBig != 0 {
			payload = &big
		}
		err := p.engine.DeliverTo(src, tag, n, func(dst []byte) error {
			return payload.readFull(dst, abort)
		})
		if err != nil {
			p.finishPeer(src, err)
			return
		}
	}
}

// finishPeer ends a read loop: a local close just exits (the engine is
// already poisoned with ErrClosed); anything else fences the source.
func (p *Proc) finishPeer(src int, err error) {
	if p.stopped.Load() {
		return
	}
	p.engine.FailPeer(src, err)
}

// monitor publishes this rank's heartbeat and watches peers for silent
// death: a peer whose state says attached but whose heartbeat counter
// stands still past the suspicion window is declared dead with a CAS on
// its state word — first noticer wins, every survivor then agrees.
// Explicit state transitions (Kill, clean Close) are noticed by the
// read loops themselves, after they drain what was already published.
func (p *Proc) monitor() {
	defer p.wg.Done()
	lastHB := make([]uint64, p.size)
	lastBeat := make([]time.Time, p.size)
	ticker := time.NewTicker(p.hb)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
		}
		if !p.mute.Load() {
			atomic.AddUint64(p.rg.slotHB(p.rank), 1)
		}
		now := time.Now()
		for r := 0; r < p.size; r++ {
			if r == p.rank {
				continue
			}
			if atomic.LoadUint64(p.rg.slotState(r)) != slotAttached {
				lastBeat[r] = time.Time{} // restart the clock if it ever attaches
				continue
			}
			hb := atomic.LoadUint64(p.rg.slotHB(r))
			if lastBeat[r].IsZero() || hb != lastHB[r] {
				lastHB[r] = hb
				lastBeat[r] = now
				continue
			}
			if now.Sub(lastBeat[r]) > p.suspect {
				// Declared dead for everyone; this rank's read loop
				// notices the state change, drains, and fences.
				atomic.CompareAndSwapUint64(p.rg.slotState(r), slotAttached, slotDead)
			}
		}
	}
}

// shutdown moves this rank's slot to the given terminal state (unless a
// peer already declared it dead), poisons the engine, and stops the
// goroutines. Idempotent.
func (p *Proc) shutdown(state uint64) {
	p.closeOnce.Do(func() {
		atomic.CompareAndSwapUint64(p.rg.slotState(p.rank), slotAttached, state)
		p.stopped.Store(true)
		close(p.stop)
		p.engine.Fail(comm.ErrClosed)
		p.wg.Wait()
		if p.ownRg {
			p.rg.close()
		}
	})
}

// Close leaves the world cleanly: peers drain everything this rank
// published, then see ErrPeerDead.
func (p *Proc) Close() error {
	p.shutdown(slotDeparted)
	return nil
}

// Kill simulates a fail-stop crash: the slot goes dead immediately, and
// in-flight publishes are abandoned where they stand — peers drain what
// was fully framed and fence the rest, exactly like a real process death
// caught by the heartbeat monitor (just promptly).
func (p *Proc) Kill() {
	p.shutdown(slotDead)
}

// Create initializes a region file for a p-rank world. The launcher
// calls it once before spawning ranks; ranks then Attach. The file must
// not already exist (a stale region would alias live cursors).
func Create(path string, p int, opts Options) error {
	if p < 1 {
		return fmt.Errorf("shm: world size %d", p)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return fmt.Errorf("shm: create region: %w", err)
	}
	defer f.Close()
	if err := initFile(f, opts.geometry(p)); err != nil {
		os.Remove(path)
		return err
	}
	return nil
}

// Attach joins rank `rank` of the p-rank world whose region lives at
// path, waiting (bounded by Options.Timeout) for the file to be created
// and — unless NoWait — for all ranks to arrive.
func Attach(path string, rank, p int, opts Options) (*Proc, error) {
	if rank < 0 || rank >= p {
		return nil, fmt.Errorf("shm: rank %d outside world of %d", rank, p)
	}
	deadline := time.Now().Add(opts.timeout())
	var rg *region
	for {
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err == nil {
			rg, err = mapFile(f, p)
			f.Close()
			if err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("shm: region %s not ready: %v", path, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	pr, err := newProc(rg, rank, opts, true)
	if err != nil {
		rg.close()
		return nil, err
	}
	if !opts.NoWait {
		if err := pr.waitAllAttached(deadline); err != nil {
			pr.Close()
			return nil, err
		}
	}
	return pr, nil
}

// waitAllAttached blocks until every slot has left the empty state.
func (p *Proc) waitAllAttached(deadline time.Time) error {
	for r := 0; r < p.size; r++ {
		for atomic.LoadUint64(p.rg.slotState(r)) == slotEmpty {
			if time.Now().After(deadline) {
				return fmt.Errorf("shm: rank %d never attached: %w", r, comm.ErrTimeout)
			}
			time.Sleep(time.Millisecond)
		}
	}
	return nil
}

// DefaultPath returns a region path under /dev/shm when available
// (memory-backed on Linux), falling back to the OS temp dir.
func DefaultPath(name string) string {
	if st, err := os.Stat("/dev/shm"); err == nil && st.IsDir() {
		return filepath.Join("/dev/shm", name)
	}
	return filepath.Join(os.TempDir(), name)
}
