package shm_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
	"exacoll/internal/transport/shm"
	"exacoll/internal/transport/transporttest"
	"exacoll/internal/tuning"
)

// TestTableIConformance runs the full Table I matrix over real
// shared-memory rings, comparing every rank's buffer bit for bit
// against the mem reference.
func TestTableIConformance(t *testing.T) {
	transporttest.RunTableI(t, func(t *testing.T, p int) transporttest.World {
		return shm.NewWorld(p)
	})
}

// TestVCollConformance runs the skewed-size vector-collective matrix
// (ragged and zero-count vectors, one-hot skew, int64 and float64) over
// shared-memory rings against the mem reference.
func TestVCollConformance(t *testing.T) {
	transporttest.RunVColl(t, func(t *testing.T, p int) transporttest.World {
		return shm.NewWorld(p)
	})
}

// TestKillMidCollective: a rank fail-stops while a collective is in
// flight. Every survivor's collective must surface ErrPeerDead — no
// hangs, no wrong answers silently delivered — and the outcome must be
// symmetric across survivors round after round.
func TestKillMidCollective(t *testing.T) {
	const p = 4
	w := shm.NewWorld(p)
	defer w.Close()
	tab := &tuning.Table{Machine: "chaos", Ops: map[string][]tuning.Entry{
		core.OpAllreduce.String(): {{Alg: "allreduce_kring", K: 2}},
	}}
	const victim = 2
	payload := datatype.EncodeFloat64(make([]float64, 4096))

	comms := make([]comm.Comm, p)
	for r := 0; r < p; r++ {
		comms[r] = w.Comm(r)
		if r != victim {
			// A survivor can end up waiting on another survivor that
			// already aborted its round; the deadline turns that into
			// ErrTimeout instead of a hang (the ft agreement layer is
			// what resolves this properly — here we only test the
			// transport's fencing).
			comms[r].(comm.Deadliner).SetOpTimeout(2 * time.Second)
		}
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		w.Kill(victim)
	}()

	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		if r == victim {
			continue
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := comms[r]
			recv := make([]byte, len(payload))
			for round := 0; ; round++ {
				a := core.Args{SendBuf: payload, RecvBuf: recv,
					Op: datatype.Sum, Type: datatype.Float64}
				if err := tab.Run(c, core.OpAllreduce, a); err != nil {
					errs[r] = err
					return
				}
				if round > 10000 {
					errs[r] = errors.New("kill never observed")
					return
				}
			}
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("survivors hung after mid-collective kill")
	}
	sawPeerDead := false
	for r := 0; r < p; r++ {
		if r == victim {
			continue
		}
		if errors.Is(errs[r], comm.ErrPeerDead) {
			sawPeerDead = true
		} else if !errors.Is(errs[r], comm.ErrTimeout) {
			t.Fatalf("rank %d: want ErrPeerDead or ErrTimeout, got %v", r, errs[r])
		}
	}
	if !sawPeerDead {
		t.Fatalf("no survivor observed ErrPeerDead; errs=%v", errs)
	}
	// The fence is sticky and symmetric: every survivor's detector
	// reports exactly the victim.
	for r := 0; r < p; r++ {
		if r == victim {
			continue
		}
		fd := comms[r].(comm.FailureDetector)
		deadline := time.Now().Add(5 * time.Second)
		for {
			f := fd.Failed()
			if len(f) == 1 && f[0] == victim {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("rank %d: Failed() = %v, want [%d]", r, f, victim)
			}
			time.Sleep(5 * time.Millisecond)
		}
		// And every survivor's direct operations on the victim agree.
		if err := comms[r].Send(victim, 99, []byte{1}); !errors.Is(err, comm.ErrPeerDead) {
			t.Fatalf("rank %d send to victim: want ErrPeerDead, got %v", r, err)
		}
		if _, err := comms[r].Recv(victim, 99, make([]byte, 8)); !errors.Is(err, comm.ErrPeerDead) {
			t.Fatalf("rank %d recv from victim: want ErrPeerDead, got %v", r, err)
		}
	}
}
