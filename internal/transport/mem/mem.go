// Package mem provides an in-process implementation of comm.Comm: every
// rank is a goroutine inside one OS process, and messages travel through a
// matching engine with MPI point-to-point semantics — exact (source, tag)
// matching, FIFO ordering per (source, tag) pair, eager buffering, and an
// unexpected-message queue.
//
// This substrate provides real parallelism and real data movement, so it is
// the primary vehicle for correctness tests, property tests, and wall-clock
// testing.B benchmarks. For fault-tolerance testing it also implements the
// comm capability interfaces: Deadliner (per-op timeouts with full
// cancellation), FailureDetector (driven by World.Kill, the test harness's
// rank-kill switch), and Purger (tag-window quiesce).
package mem

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"exacoll/internal/comm"
)

// matchKey identifies a message stream: exact source rank and tag.
type matchKey struct {
	src int
	tag comm.Tag
}

// message is an eagerly-buffered in-flight message.
type message struct {
	payload []byte // owned copy
}

// postedRecv is a receive waiting for its match.
type postedRecv struct {
	buf  []byte
	done chan struct{}
	n    int
	err  error
}

// endpoint holds one rank's incoming-message state.
type endpoint struct {
	mu         sync.Mutex
	unexpected map[matchKey][]*message
	posted     map[matchKey][]*postedRecv
	peerErr    map[int]error // per-peer failure (World.Kill), sticky
	closed     bool
}

func newEndpoint() *endpoint {
	return &endpoint{
		unexpected: make(map[matchKey][]*message),
		posted:     make(map[matchKey][]*postedRecv),
		peerErr:    make(map[int]error),
	}
}

// deliver hands a message to this endpoint: completes the oldest posted
// receive for the key if one exists, otherwise queues the message.
func (e *endpoint) deliver(key matchKey, payload []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return comm.ErrClosed
	}
	if prs := e.posted[key]; len(prs) > 0 {
		pr := prs[0]
		if len(prs) == 1 {
			delete(e.posted, key)
		} else {
			e.posted[key] = prs[1:]
		}
		pr.complete(payload)
		return nil
	}
	e.unexpected[key] = append(e.unexpected[key], &message{payload: payload})
	return nil
}

// complete finishes a posted receive with the given payload.
func (pr *postedRecv) complete(payload []byte) {
	if len(payload) > len(pr.buf) {
		pr.err = fmt.Errorf("%w: have %d bytes, message is %d",
			comm.ErrTruncated, len(pr.buf), len(payload))
	} else {
		copy(pr.buf, payload)
		pr.n = len(payload)
	}
	close(pr.done)
}

// post registers a receive, matching an already-queued message if present.
// A message buffered before the sender died is still deliverable (it was
// "on the wire"); only once the queue is empty does the peer's death fail
// the receive.
func (e *endpoint) post(key matchKey, buf []byte) (*postedRecv, error) {
	pr := &postedRecv{buf: buf, done: make(chan struct{})}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, comm.ErrClosed
	}
	if msgs := e.unexpected[key]; len(msgs) > 0 {
		m := msgs[0]
		if len(msgs) == 1 {
			delete(e.unexpected, key)
		} else {
			e.unexpected[key] = msgs[1:]
		}
		pr.complete(m.payload)
		return pr, nil
	}
	if err := e.peerErr[key.src]; err != nil {
		return nil, err
	}
	e.posted[key] = append(e.posted[key], pr)
	return pr, nil
}

// cancel removes a still-pending posted receive and fails it with err. It
// reports false when the receive already completed (or was removed)
// concurrently, in which case its recorded result stands.
func (e *endpoint) cancel(key matchKey, pr *postedRecv, err error) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	prs := e.posted[key]
	for i, q := range prs {
		if q != pr {
			continue
		}
		if len(prs) == 1 {
			delete(e.posted, key)
		} else {
			e.posted[key] = append(prs[:i:i], prs[i+1:]...)
		}
		pr.err = err
		close(pr.done)
		return true
	}
	return false
}

// failPeer marks one peer dead for this endpoint: receives pending on that
// peer error out and future posts for it fail fast, but already-buffered
// messages remain matchable and traffic with other peers continues.
func (e *endpoint) failPeer(peer int, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || e.peerErr[peer] != nil {
		return
	}
	e.peerErr[peer] = err
	for key, prs := range e.posted {
		if key.src != peer {
			continue
		}
		for _, pr := range prs {
			pr.err = err
			close(pr.done)
		}
		delete(e.posted, key)
	}
}

// purgeTags implements the quiesce: buffered messages with tags in [lo, hi)
// are dropped and receives still posted there are cancelled with
// ErrTimeout (they belong to an aborted collective no one will complete).
func (e *endpoint) purgeTags(lo, hi comm.Tag) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for key := range e.unexpected {
		if key.tag >= lo && key.tag < hi {
			delete(e.unexpected, key)
		}
	}
	for key, prs := range e.posted {
		if key.tag < lo || key.tag >= hi {
			continue
		}
		for _, pr := range prs {
			pr.err = fmt.Errorf("%w: receive purged with its tag window", comm.ErrTimeout)
			close(pr.done)
		}
		delete(e.posted, key)
	}
}

// World is a set of p endpoints sharing an address space.
type World struct {
	endpoints []*endpoint
	dead      []atomic.Bool // set by Kill; read by every handle

	ppn   atomic.Int64 // synthetic ranks-per-node; 0 = no locality declared
	ports atomic.Int64 // synthetic NIC ports per node
}

// NewWorld creates a world with p ranks. p must be >= 1.
func NewWorld(p int) *World {
	if p < 1 {
		panic("mem: world size must be >= 1")
	}
	w := &World{endpoints: make([]*endpoint, p), dead: make([]atomic.Bool, p)}
	for i := range w.endpoints {
		w.endpoints[i] = newEndpoint()
	}
	return w
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return len(w.endpoints) }

// Comm returns rank r's communicator handle. Each rank must drive its own
// handle from a single goroutine (MPI semantics); distinct ranks may run
// concurrently.
func (w *World) Comm(rank int) comm.Comm {
	if rank < 0 || rank >= len(w.endpoints) {
		panic(fmt.Sprintf("mem: rank %d out of range [0,%d)", rank, len(w.endpoints)))
	}
	return &memComm{world: w, rank: rank}
}

// SetLocality declares a synthetic node layout for the world: contiguous
// blocks of ppn ranks per "node", with the given NIC port count (0 =
// unknown). All ranks of a mem world share one process, so locality here
// is a test/benchmark fiction — but it makes every handle implement
// comm.Locator exactly like the distributed transports, so the
// topology-aware composition path is exercisable in-process. ppn < 1
// withdraws the declaration.
func (w *World) SetLocality(ppn, ports int) {
	if ppn < 1 {
		ppn = 0
	}
	w.ppn.Store(int64(ppn))
	w.ports.Store(int64(ports))
}

// Kill simulates the fail-stop death of one rank: its own subsequent
// operations fail with ErrClosed (the process is gone), every other rank's
// receives pending on it fail with ErrPeerDead, and future receives from it
// fail fast once its already-buffered messages are drained. Sends addressed
// to it fail with ErrPeerDead. Kill is the mem world's failure-injection
// switch for the chaos tests; it is safe to call from any goroutine and is
// idempotent.
func (w *World) Kill(rank int) {
	if rank < 0 || rank >= len(w.endpoints) {
		panic(fmt.Sprintf("mem: kill rank %d out of range [0,%d)", rank, len(w.endpoints)))
	}
	if w.dead[rank].Swap(true) {
		return
	}
	// The dying rank's own pending receives release with ErrClosed.
	ep := w.endpoints[rank]
	ep.mu.Lock()
	ep.closed = true
	for key, prs := range ep.posted {
		for _, pr := range prs {
			pr.err = comm.ErrClosed
			close(pr.done)
		}
		delete(ep.posted, key)
	}
	ep.mu.Unlock()
	err := fmt.Errorf("%w: rank %d killed", comm.ErrPeerDead, rank)
	for r, e := range w.endpoints {
		if r != rank {
			e.failPeer(rank, err)
		}
	}
}

// Close shuts the world down; subsequent operations return ErrClosed and
// blocked receives are released with ErrClosed.
func (w *World) Close() {
	for _, e := range w.endpoints {
		e.mu.Lock()
		e.closed = true
		for key, prs := range e.posted {
			for _, pr := range prs {
				pr.err = comm.ErrClosed
				close(pr.done)
			}
			delete(e.posted, key)
		}
		e.mu.Unlock()
	}
}

// Run executes fn once per rank, each on its own goroutine, and returns the
// first non-nil error (all goroutines are joined first). If any rank fails,
// the world is closed so peers blocked on receives from the failed rank are
// released with ErrClosed instead of hanging (the moral equivalent of
// MPI_Abort).
func (w *World) Run(fn func(c comm.Comm) error) error {
	errs := make([]error, w.Size())
	var wg sync.WaitGroup
	for r := 0; r < w.Size(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(w.Comm(r))
			if errs[r] != nil {
				w.Close()
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("rank %d: %w", r, err)
		}
	}
	return nil
}

// RunAll executes fn once per rank like Run, but never closes the world on
// a rank's error and returns every rank's terminal error. Fault-tolerance
// tests use it: a failing collective must not take the world down, because
// the surviving ranks go on to agree, shrink, and continue.
func (w *World) RunAll(fn func(c comm.Comm) error) []error {
	errs := make([]error, w.Size())
	var wg sync.WaitGroup
	for r := 0; r < w.Size(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(w.Comm(r))
		}(r)
	}
	wg.Wait()
	return errs
}

// memComm is one rank's view of a World.
type memComm struct {
	world     *World
	rank      int
	opTimeout time.Duration // per-op deadline; 0 = unbounded
}

func (c *memComm) Rank() int         { return c.rank }
func (c *memComm) Size() int         { return c.world.Size() }
func (c *memComm) ChargeCompute(int) {}

// SetOpTimeout implements comm.Deadliner for this handle.
func (c *memComm) SetOpTimeout(d time.Duration) { c.opTimeout = d }

// Failed implements comm.FailureDetector: the ranks killed so far. The mem
// world's detector is a perfect oracle (kills are instantly visible), the
// strongest detector the agreement layer can be tested against.
func (c *memComm) Failed() []int {
	var out []int
	for r := range c.world.dead {
		if r != c.rank && c.world.dead[r].Load() {
			out = append(out, r)
		}
	}
	return out
}

// PurgeTags implements comm.Purger for this rank's endpoint.
func (c *memComm) PurgeTags(lo, hi comm.Tag) {
	c.world.endpoints[c.rank].purgeTags(lo, hi)
}

// Locality implements comm.Locator once SetLocality has declared a
// synthetic layout: rank r lives on node r/ppn at local rank r%ppn.
func (c *memComm) Locality(rank int) (comm.Locality, bool) {
	ppn := int(c.world.ppn.Load())
	if ppn < 1 || rank < 0 || rank >= c.Size() {
		return comm.Locality{}, false
	}
	return comm.Locality{
		Node:      rank / ppn,
		LocalRank: rank % ppn,
		PPN:       ppn,
		Ports:     int(c.world.ports.Load()),
	}, true
}

func (c *memComm) Send(to int, tag comm.Tag, buf []byte) error {
	if err := comm.CheckPeer(c.rank, to, c.Size()); err != nil {
		return err
	}
	if c.world.dead[c.rank].Load() {
		return comm.ErrClosed
	}
	if c.world.dead[to].Load() {
		return fmt.Errorf("%w: send to killed rank %d", comm.ErrPeerDead, to)
	}
	payload := make([]byte, len(buf))
	copy(payload, buf)
	return c.world.endpoints[to].deliver(matchKey{src: c.rank, tag: tag}, payload)
}

func (c *memComm) Recv(from int, tag comm.Tag, buf []byte) (int, error) {
	req, err := c.Irecv(from, tag, buf)
	if err != nil {
		return 0, err
	}
	if err := req.Wait(); err != nil {
		return 0, err
	}
	return req.Len(), nil
}

// sentRequest is an immediately-complete send request (eager semantics).
type sentRequest struct {
	n   int
	err error
}

func (r *sentRequest) Wait() error { return r.err }
func (r *sentRequest) Len() int    { return r.n }

// Test implements comm.Tester: eager sends complete at post time.
func (r *sentRequest) Test() (bool, error) { return true, r.err }

func (c *memComm) Isend(to int, tag comm.Tag, buf []byte) (comm.Request, error) {
	err := c.Send(to, tag, buf)
	if err != nil {
		return nil, err
	}
	return &sentRequest{n: len(buf)}, nil
}

// recvRequest wraps a postedRecv as a comm.Request, carrying the handle's
// per-op timeout captured at post time.
type recvRequest struct {
	pr      *postedRecv
	ep      *endpoint
	key     matchKey
	timeout time.Duration
}

func (r *recvRequest) Wait() error {
	if r.timeout <= 0 {
		<-r.pr.done
		return r.pr.err
	}
	timer := time.NewTimer(r.timeout)
	defer timer.Stop()
	select {
	case <-r.pr.done:
		return r.pr.err
	case <-timer.C:
		terr := fmt.Errorf("%w: no message from rank %d tag %d within %v",
			comm.ErrTimeout, r.key.src, r.key.tag, r.timeout)
		if r.ep.cancel(r.key, r.pr, terr) {
			return terr
		}
		// Completed concurrently with the timer; the result stands.
		<-r.pr.done
		return r.pr.err
	}
}

func (r *recvRequest) Len() int { return r.pr.n }

// Test implements comm.Tester: a nonblocking completion poll.
func (r *recvRequest) Test() (bool, error) {
	select {
	case <-r.pr.done:
		return true, r.pr.err
	default:
		return false, nil
	}
}

func (c *memComm) Irecv(from int, tag comm.Tag, buf []byte) (comm.Request, error) {
	if err := comm.CheckPeer(c.rank, from, c.Size()); err != nil {
		return nil, err
	}
	if c.world.dead[c.rank].Load() {
		return nil, comm.ErrClosed
	}
	pr, err := c.world.endpoints[c.rank].post(matchKey{src: from, tag: tag}, buf)
	if err != nil {
		return nil, err
	}
	return &recvRequest{pr: pr, ep: c.world.endpoints[c.rank], key: matchKey{src: from, tag: tag}, timeout: c.opTimeout}, nil
}
