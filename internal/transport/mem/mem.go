// Package mem provides an in-process implementation of comm.Comm: every
// rank is a goroutine inside one OS process, and messages travel through a
// matching engine with MPI point-to-point semantics — exact (source, tag)
// matching, FIFO ordering per (source, tag) pair, eager buffering, and an
// unexpected-message queue.
//
// This substrate provides real parallelism and real data movement, so it is
// the primary vehicle for correctness tests, property tests, and wall-clock
// testing.B benchmarks. For fault-tolerance testing it also implements the
// comm capability interfaces: Deadliner (per-op timeouts with full
// cancellation), FailureDetector (driven by World.Kill, the test harness's
// rank-kill switch), and Purger (tag-window quiesce).
//
// The hot path is allocation-slim: eager payload copies come from the
// internal/buf pool and return to it once consumed (matched into a posted
// buffer, purged, or dropped at teardown); successful sends share one
// immutable request; and a receive is a single allocation whose completion
// is signalled through the endpoint's condition variable — a channel and
// timer exist only when a per-op deadline is armed.
package mem

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"exacoll/internal/buf"
	"exacoll/internal/comm"
)

// matchKey identifies a message stream: exact source rank and tag.
type matchKey struct {
	src int
	tag comm.Tag
}

// endpoint holds one rank's incoming-message state. All fields are guarded
// by mu; cond (with L = &mu) is broadcast whenever any receive posted on
// this endpoint completes.
type endpoint struct {
	mu         sync.Mutex
	cond       sync.Cond
	unexpected map[matchKey][][]byte // eager payload copies, pool-owned
	posted     map[matchKey][]*recvReq
	peerErr    map[int]error // per-peer failure (World.Kill), sticky
	freeReqs   []*recvReq    // settled receives recycled by the Recv path
	closed     bool
}

// maxFreeReqs bounds the per-endpoint receive-request free list.
const maxFreeReqs = 64

func newEndpoint() *endpoint {
	e := &endpoint{
		unexpected: make(map[matchKey][][]byte),
		posted:     make(map[matchKey][]*recvReq),
		peerErr:    make(map[int]error),
	}
	e.cond.L = &e.mu
	return e
}

// deliver hands a message to this endpoint, taking ownership of payload
// (a pool buffer): it completes the oldest posted receive for the key if
// one exists, otherwise queues the payload on the unexpected queue.
func (e *endpoint) deliver(key matchKey, payload []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		buf.Put(payload)
		return comm.ErrClosed
	}
	if prs := e.posted[key]; len(prs) > 0 {
		pr := prs[0]
		// Pop by shifting down so the map entry keeps its backing array:
		// steady-state traffic on a key then appends without allocating.
		copy(prs, prs[1:])
		prs[len(prs)-1] = nil
		e.posted[key] = prs[:len(prs)-1]
		pr.complete(payload)
		return nil
	}
	e.unexpected[key] = append(e.unexpected[key], payload)
	return nil
}

// post registers a receive, matching an already-queued message if present.
// A message buffered before the sender died is still deliverable (it was
// "on the wire"); only once the queue is empty does the peer's death fail
// the receive.
func (e *endpoint) post(key matchKey, recvBuf []byte, timeout time.Duration) (*recvReq, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, comm.ErrClosed
	}
	var pr *recvReq
	if n := len(e.freeReqs); n > 0 && timeout <= 0 {
		pr = e.freeReqs[n-1]
		e.freeReqs[n-1] = nil
		e.freeReqs = e.freeReqs[:n-1]
		*pr = recvReq{ep: e, key: key, buf: recvBuf}
	} else {
		pr = &recvReq{ep: e, key: key, buf: recvBuf, timeout: timeout}
		if timeout > 0 {
			// Only deadline-armed receives need a channel: Wait must be
			// able to select against a timer. The common path completes
			// through the endpoint's condition variable instead.
			pr.done = make(chan struct{})
		}
	}
	if msgs := e.unexpected[key]; len(msgs) > 0 {
		m := msgs[0]
		// Shift-down pop, retaining the entry's backing array (see deliver).
		copy(msgs, msgs[1:])
		msgs[len(msgs)-1] = nil
		e.unexpected[key] = msgs[:len(msgs)-1]
		pr.complete(m)
		return pr, nil
	}
	if err := e.peerErr[key.src]; err != nil {
		return nil, err
	}
	e.posted[key] = append(e.posted[key], pr)
	return pr, nil
}

// release returns a settled receive to the endpoint's free list. Only the
// synchronous Recv path may call it: Irecv hands the request to the caller,
// who may retain it indefinitely. Deadline-armed receives carry a closed
// channel that cannot be reused, so they go to the GC instead.
func (e *endpoint) release(r *recvReq) {
	if r.done != nil {
		return
	}
	e.mu.Lock()
	if len(e.freeReqs) < maxFreeReqs {
		*r = recvReq{}
		e.freeReqs = append(e.freeReqs, r)
	}
	e.mu.Unlock()
}

// cancel removes a still-pending posted receive and fails it with err. It
// reports false when the receive already completed (or was removed)
// concurrently, in which case its recorded result stands.
func (e *endpoint) cancel(key matchKey, pr *recvReq, err error) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	prs := e.posted[key]
	for i, q := range prs {
		if q != pr {
			continue
		}
		copy(prs[i:], prs[i+1:])
		prs[len(prs)-1] = nil
		e.posted[key] = prs[:len(prs)-1]
		pr.fail(err)
		return true
	}
	return false
}

// failPeer marks one peer dead for this endpoint: receives pending on that
// peer error out and future posts for it fail fast, but already-buffered
// messages remain matchable and traffic with other peers continues.
func (e *endpoint) failPeer(peer int, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || e.peerErr[peer] != nil {
		return
	}
	e.peerErr[peer] = err
	for key, prs := range e.posted {
		if key.src != peer {
			continue
		}
		for _, pr := range prs {
			pr.fail(err)
		}
		delete(e.posted, key)
	}
}

// purgeTags implements the quiesce: buffered messages with tags in [lo, hi)
// are dropped (their pool buffers recycled) and receives still posted there
// are cancelled with ErrTimeout (they belong to an aborted collective no
// one will complete).
func (e *endpoint) purgeTags(lo, hi comm.Tag) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for key, msgs := range e.unexpected {
		if key.tag >= lo && key.tag < hi {
			for _, m := range msgs {
				buf.Put(m)
			}
			delete(e.unexpected, key)
		}
	}
	for key, prs := range e.posted {
		if key.tag < lo || key.tag >= hi {
			continue
		}
		for _, pr := range prs {
			pr.fail(fmt.Errorf("%w: receive purged with its tag window", comm.ErrTimeout))
		}
		delete(e.posted, key)
	}
}

// shutdown marks the endpoint closed, failing every pending receive with
// ErrClosed and recycling the unexpected queue (nothing can match it once
// closed). Caller must not hold e.mu.
func (e *endpoint) shutdown() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	for key, prs := range e.posted {
		for _, pr := range prs {
			pr.fail(comm.ErrClosed)
		}
		delete(e.posted, key)
	}
	for key, msgs := range e.unexpected {
		for _, m := range msgs {
			buf.Put(m)
		}
		delete(e.unexpected, key)
	}
}

// World is a set of p endpoints sharing an address space.
type World struct {
	endpoints []*endpoint
	dead      []atomic.Bool // set by Kill; read by every handle

	ppn   atomic.Int64 // synthetic ranks-per-node; 0 = no locality declared
	ports atomic.Int64 // synthetic NIC ports per node
}

// NewWorld creates a world with p ranks. p must be >= 1.
func NewWorld(p int) *World {
	if p < 1 {
		panic("mem: world size must be >= 1")
	}
	w := &World{endpoints: make([]*endpoint, p), dead: make([]atomic.Bool, p)}
	for i := range w.endpoints {
		w.endpoints[i] = newEndpoint()
	}
	return w
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return len(w.endpoints) }

// Comm returns rank r's communicator handle. Each rank must drive its own
// handle from a single goroutine (MPI semantics); distinct ranks may run
// concurrently.
func (w *World) Comm(rank int) comm.Comm {
	if rank < 0 || rank >= len(w.endpoints) {
		panic(fmt.Sprintf("mem: rank %d out of range [0,%d)", rank, len(w.endpoints)))
	}
	return &memComm{world: w, rank: rank}
}

// SetLocality declares a synthetic node layout for the world: contiguous
// blocks of ppn ranks per "node", with the given NIC port count (0 =
// unknown). All ranks of a mem world share one process, so locality here
// is a test/benchmark fiction — but it makes every handle implement
// comm.Locator exactly like the distributed transports, so the
// topology-aware composition path is exercisable in-process. ppn < 1
// withdraws the declaration.
func (w *World) SetLocality(ppn, ports int) {
	if ppn < 1 {
		ppn = 0
	}
	w.ppn.Store(int64(ppn))
	w.ports.Store(int64(ports))
}

// Kill simulates the fail-stop death of one rank: its own subsequent
// operations fail with ErrClosed (the process is gone), every other rank's
// receives pending on it fail with ErrPeerDead, and future receives from it
// fail fast once its already-buffered messages are drained. Sends addressed
// to it fail with ErrPeerDead. Kill is the mem world's failure-injection
// switch for the chaos tests; it is safe to call from any goroutine and is
// idempotent.
func (w *World) Kill(rank int) {
	if rank < 0 || rank >= len(w.endpoints) {
		panic(fmt.Sprintf("mem: kill rank %d out of range [0,%d)", rank, len(w.endpoints)))
	}
	if w.dead[rank].Swap(true) {
		return
	}
	// The dying rank's own pending receives release with ErrClosed.
	w.endpoints[rank].shutdown()
	err := fmt.Errorf("%w: rank %d killed", comm.ErrPeerDead, rank)
	for r, e := range w.endpoints {
		if r != rank {
			e.failPeer(rank, err)
		}
	}
}

// Close shuts the world down; subsequent operations return ErrClosed and
// blocked receives are released with ErrClosed.
func (w *World) Close() {
	for _, e := range w.endpoints {
		e.shutdown()
	}
}

// Run executes fn once per rank, each on its own goroutine, and returns the
// first non-nil error (all goroutines are joined first). If any rank fails,
// the world is closed so peers blocked on receives from the failed rank are
// released with ErrClosed instead of hanging (the moral equivalent of
// MPI_Abort).
func (w *World) Run(fn func(c comm.Comm) error) error {
	errs := make([]error, w.Size())
	var wg sync.WaitGroup
	for r := 0; r < w.Size(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(w.Comm(r))
			if errs[r] != nil {
				w.Close()
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("rank %d: %w", r, err)
		}
	}
	return nil
}

// RunAll executes fn once per rank like Run, but never closes the world on
// a rank's error and returns every rank's terminal error. Fault-tolerance
// tests use it: a failing collective must not take the world down, because
// the surviving ranks go on to agree, shrink, and continue.
func (w *World) RunAll(fn func(c comm.Comm) error) []error {
	errs := make([]error, w.Size())
	var wg sync.WaitGroup
	for r := 0; r < w.Size(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(w.Comm(r))
		}(r)
	}
	wg.Wait()
	return errs
}

// memComm is one rank's view of a World.
type memComm struct {
	world     *World
	rank      int
	opTimeout time.Duration // per-op deadline; 0 = unbounded
}

func (c *memComm) Rank() int         { return c.rank }
func (c *memComm) Size() int         { return c.world.Size() }
func (c *memComm) ChargeCompute(int) {}

// SetOpTimeout implements comm.Deadliner for this handle.
func (c *memComm) SetOpTimeout(d time.Duration) { c.opTimeout = d }

// Failed implements comm.FailureDetector: the ranks killed so far. The mem
// world's detector is a perfect oracle (kills are instantly visible), the
// strongest detector the agreement layer can be tested against.
func (c *memComm) Failed() []int {
	var out []int
	for r := range c.world.dead {
		if r != c.rank && c.world.dead[r].Load() {
			out = append(out, r)
		}
	}
	return out
}

// PurgeTags implements comm.Purger for this rank's endpoint.
func (c *memComm) PurgeTags(lo, hi comm.Tag) {
	c.world.endpoints[c.rank].purgeTags(lo, hi)
}

// Locality implements comm.Locator once SetLocality has declared a
// synthetic layout: rank r lives on node r/ppn at local rank r%ppn.
func (c *memComm) Locality(rank int) (comm.Locality, bool) {
	ppn := int(c.world.ppn.Load())
	if ppn < 1 || rank < 0 || rank >= c.Size() {
		return comm.Locality{}, false
	}
	return comm.Locality{
		Node:      rank / ppn,
		LocalRank: rank % ppn,
		PPN:       ppn,
		Ports:     int(c.world.ports.Load()),
	}, true
}

func (c *memComm) Send(to int, tag comm.Tag, b []byte) error {
	if err := comm.CheckPeer(c.rank, to, c.Size()); err != nil {
		return err
	}
	if c.world.dead[c.rank].Load() {
		return comm.ErrClosed
	}
	if c.world.dead[to].Load() {
		return fmt.Errorf("%w: send to killed rank %d", comm.ErrPeerDead, to)
	}
	payload := buf.Get(len(b))
	copy(payload, b)
	return c.world.endpoints[to].deliver(matchKey{src: c.rank, tag: tag}, payload)
}

func (c *memComm) Recv(from int, tag comm.Tag, buf []byte) (int, error) {
	req, err := c.Irecv(from, tag, buf)
	if err != nil {
		return 0, err
	}
	// The request never escapes this frame, so after Wait settles it the
	// endpoint can recycle it.
	pr := req.(*recvReq)
	werr := pr.Wait()
	n := pr.n // stable once settled; Wait's lock ordered this read
	c.world.endpoints[c.rank].release(pr)
	if werr != nil {
		return 0, werr
	}
	return n, nil
}

// sentRequest is an immediately-complete send request (eager semantics).
// Every successful Isend returns the same shared instance: the operation
// finished at post time and carries no per-send state. Len reports 0,
// which the comm.Request contract permits for sends.
type sentRequest struct{}

func (*sentRequest) Wait() error { return nil }
func (*sentRequest) Len() int    { return 0 }

// Test implements comm.Tester: eager sends complete at post time.
func (*sentRequest) Test() (bool, error) { return true, nil }

var eagerSent = &sentRequest{}

func (c *memComm) Isend(to int, tag comm.Tag, buf []byte) (comm.Request, error) {
	err := c.Send(to, tag, buf)
	if err != nil {
		return nil, err
	}
	return eagerSent, nil
}

// recvReq is a posted receive and its comm.Request handle in one object.
// Mutable state (n, err, completed) is guarded by ep.mu; completion is
// announced on ep.cond, plus the done channel when a deadline armed it.
type recvReq struct {
	ep      *endpoint
	key     matchKey
	buf     []byte
	n       int
	err     error
	settled bool
	done    chan struct{} // non-nil only when timeout > 0
	timeout time.Duration
}

// complete finishes the receive with the given payload, taking ownership
// of it (a pool buffer). Caller holds ep.mu.
func (r *recvReq) complete(payload []byte) {
	if len(payload) > len(r.buf) {
		r.err = fmt.Errorf("%w: have %d bytes, message is %d",
			comm.ErrTruncated, len(r.buf), len(payload))
	} else {
		copy(r.buf, payload)
		r.n = len(payload)
	}
	buf.Put(payload)
	r.finish()
}

// fail finishes the receive with err. Caller holds ep.mu.
func (r *recvReq) fail(err error) {
	r.err = err
	r.finish()
}

func (r *recvReq) finish() {
	r.settled = true
	if r.done != nil {
		close(r.done)
	}
	r.ep.cond.Broadcast()
}

func (r *recvReq) Wait() error {
	if r.done == nil {
		r.ep.mu.Lock()
		for !r.settled {
			r.ep.cond.Wait()
		}
		r.ep.mu.Unlock()
		return r.err
	}
	timer := time.NewTimer(r.timeout)
	defer timer.Stop()
	select {
	case <-r.done:
		return r.err
	case <-timer.C:
		terr := fmt.Errorf("%w: no message from rank %d tag %d within %v",
			comm.ErrTimeout, r.key.src, r.key.tag, r.timeout)
		if r.ep.cancel(r.key, r, terr) {
			return terr
		}
		// Completed concurrently with the timer; the result stands.
		<-r.done
		return r.err
	}
}

func (r *recvReq) Len() int {
	if r.done != nil {
		<-r.done
		return r.n
	}
	r.ep.mu.Lock()
	n := r.n
	r.ep.mu.Unlock()
	return n
}

// Test implements comm.Tester: a nonblocking completion poll.
func (r *recvReq) Test() (bool, error) {
	if r.done != nil {
		select {
		case <-r.done:
			return true, r.err
		default:
			return false, nil
		}
	}
	r.ep.mu.Lock()
	settled, err := r.settled, r.err
	r.ep.mu.Unlock()
	return settled, err
}

func (c *memComm) Irecv(from int, tag comm.Tag, buf []byte) (comm.Request, error) {
	if err := comm.CheckPeer(c.rank, from, c.Size()); err != nil {
		return nil, err
	}
	if c.world.dead[c.rank].Load() {
		return nil, comm.ErrClosed
	}
	pr, err := c.world.endpoints[c.rank].post(matchKey{src: from, tag: tag}, buf, c.opTimeout)
	if err != nil {
		return nil, err
	}
	return pr, nil
}
