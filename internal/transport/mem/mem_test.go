package mem

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"exacoll/internal/comm"
)

// TestSendRecvBasic checks payload integrity and lengths.
func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c comm.Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 5, []byte("abcdef"))
		}
		buf := make([]byte, 16)
		n, err := c.Recv(0, 5, buf)
		if err != nil {
			return err
		}
		if n != 6 || !bytes.Equal(buf[:6], []byte("abcdef")) {
			return fmt.Errorf("got %q (%d)", buf[:n], n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFIFOPerSourceTag checks ordering within a (source, tag) stream and
// independence across tags.
func TestFIFOPerSourceTag(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c comm.Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 100; i++ {
				if err := c.Send(1, comm.Tag(i%2), []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		// Receive tag-1 stream first: cross-tag order must not matter.
		for i := 1; i < 100; i += 2 {
			var b [1]byte
			if _, err := c.Recv(0, 1, b[:]); err != nil {
				return err
			}
			if b[0] != byte(i) {
				return fmt.Errorf("tag1: got %d want %d", b[0], i)
			}
		}
		for i := 0; i < 100; i += 2 {
			var b [1]byte
			if _, err := c.Recv(0, 0, b[:]); err != nil {
				return err
			}
			if b[0] != byte(i) {
				return fmt.Errorf("tag0: got %d want %d", b[0], i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestUnexpectedThenPosted covers both match orders.
func TestUnexpectedThenPosted(t *testing.T) {
	w := NewWorld(2)
	var once sync.WaitGroup
	once.Add(1)
	err := w.Run(func(c comm.Comm) error {
		if c.Rank() == 0 {
			// Send before the receiver posts (unexpected queue path).
			if err := c.Send(1, 1, []byte{1}); err != nil {
				return err
			}
			once.Done()
			return nil
		}
		once.Wait() // ensure the message is queued as unexpected
		var b [1]byte
		if _, err := c.Recv(0, 1, b[:]); err != nil {
			return err
		}
		// Posted-first path.
		req, err := c.Irecv(0, 2, b[:])
		if err != nil {
			return err
		}
		_ = req
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTruncationError checks the short-buffer path.
func TestTruncationError(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c comm.Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, make([]byte, 100))
		}
		_, err := c.Recv(0, 1, make([]byte, 10))
		if !errors.Is(err, comm.ErrTruncated) {
			return fmt.Errorf("want ErrTruncated, got %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPeerValidation checks rank bounds and self-messaging.
func TestPeerValidation(t *testing.T) {
	w := NewWorld(2)
	c := w.Comm(0)
	if err := c.Send(2, 0, nil); !errors.Is(err, comm.ErrRankOutOfRange) {
		t.Errorf("want ErrRankOutOfRange, got %v", err)
	}
	if err := c.Send(0, 0, nil); !errors.Is(err, comm.ErrSelfMessage) {
		t.Errorf("want ErrSelfMessage, got %v", err)
	}
	if _, err := c.Irecv(-1, 0, nil); !errors.Is(err, comm.ErrRankOutOfRange) {
		t.Errorf("want ErrRankOutOfRange, got %v", err)
	}
}

// TestCloseReleasesBlocked checks shutdown semantics.
func TestCloseReleasesBlocked(t *testing.T) {
	w := NewWorld(2)
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 8)
		_, err := w.Comm(0).Recv(1, 9, buf)
		done <- err
	}()
	w.Close()
	if err := <-done; !errors.Is(err, comm.ErrClosed) {
		t.Errorf("want ErrClosed, got %v", err)
	}
	if err := w.Comm(0).Send(1, 0, nil); !errors.Is(err, comm.ErrClosed) {
		t.Errorf("send after close: want ErrClosed, got %v", err)
	}
}

// TestRunPropagatesError checks failing-rank behaviour: the error is
// reported and peers blocked on the failed rank are released.
func TestRunPropagatesError(t *testing.T) {
	w := NewWorld(3)
	sentinel := errors.New("boom")
	err := w.Run(func(c comm.Comm) error {
		if c.Rank() == 1 {
			return sentinel
		}
		// Ranks 0 and 2 wait for a message rank 1 never sends; Run must
		// not hang.
		buf := make([]byte, 1)
		_, err := c.Recv(1, 0, buf)
		if err != nil {
			return nil // released by Close — not an error for this test
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("want sentinel error, got %v", err)
	}
}

// TestSendRecvHelper checks the comm.SendRecv exchange idiom.
func TestSendRecvHelper(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c comm.Comm) error {
		me := c.Rank()
		peer := 1 - me
		out := []byte{byte(10 + me)}
		in := make([]byte, 1)
		if _, err := comm.SendRecv(c, peer, out, peer, in, 3); err != nil {
			return err
		}
		if in[0] != byte(10+peer) {
			return fmt.Errorf("got %d", in[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestZeroLengthMessages checks empty payloads flow through matching.
func TestZeroLengthMessages(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c comm.Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, nil)
		}
		n, err := c.Recv(0, 1, nil)
		if err != nil || n != 0 {
			return fmt.Errorf("n=%d err=%v", n, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
