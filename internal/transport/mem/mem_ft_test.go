package mem

import (
	"errors"
	"testing"
	"time"

	"exacoll/internal/comm"
)

// TestOpTimeout: a receive with no matching sender fails with ErrTimeout
// within the configured deadline instead of hanging, and the cancelled
// receive's buffer is never written afterwards.
func TestOpTimeout(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	c := w.Comm(0)
	c.(comm.Deadliner).SetOpTimeout(30 * time.Millisecond)

	buf := make([]byte, 8)
	start := time.Now()
	_, err := c.Recv(1, 7, buf)
	if !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v, want ~30ms", elapsed)
	}
	// A message sent after the timeout must not land in the cancelled
	// receive's buffer.
	if err := w.Comm(1).Send(0, 7, []byte{9, 9, 9, 9, 9, 9, 9, 9}); err != nil {
		t.Fatalf("late send: %v", err)
	}
	time.Sleep(10 * time.Millisecond)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("cancelled receive buffer written at %d: %v", i, buf)
		}
	}
	// The late message is buffered and matches a fresh receive.
	n, err := c.Recv(1, 7, buf)
	if err != nil || n != 8 || buf[0] != 9 {
		t.Fatalf("fresh recv after timeout: n=%d err=%v buf=%v", n, err, buf)
	}
}

// TestKill: killing a rank releases pending receives on it with
// ErrPeerDead, fails future sends/receives addressed to it, reports it
// through the failure detector — and still delivers messages it had
// already buffered ("on the wire") before dying.
func TestKill(t *testing.T) {
	w := NewWorld(3)
	defer w.Close()
	c0 := w.Comm(0)

	// Rank 2 buffers one message, then dies.
	if err := w.Comm(2).Send(0, 5, []byte{42}); err != nil {
		t.Fatalf("pre-kill send: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := c0.Recv(1, 3, make([]byte, 4))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	w.Kill(1)
	select {
	case err := <-done:
		if !errors.Is(err, comm.ErrPeerDead) {
			t.Fatalf("pending recv on killed rank: want ErrPeerDead, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending recv not released by Kill")
	}

	if err := c0.Send(1, 3, []byte{1}); !errors.Is(err, comm.ErrPeerDead) {
		t.Fatalf("send to killed rank: want ErrPeerDead, got %v", err)
	}
	if _, err := c0.Recv(1, 3, make([]byte, 4)); !errors.Is(err, comm.ErrPeerDead) {
		t.Fatalf("recv from killed rank: want ErrPeerDead, got %v", err)
	}
	fd := c0.(comm.FailureDetector)
	if failed := fd.Failed(); len(failed) != 1 || failed[0] != 1 {
		t.Fatalf("Failed() = %v, want [1]", failed)
	}

	// Rank 2's pre-kill message is still deliverable after rank 2 dies too.
	w.Kill(2)
	buf := make([]byte, 1)
	if n, err := c0.Recv(2, 5, buf); err != nil || n != 1 || buf[0] != 42 {
		t.Fatalf("buffered message from dead rank: n=%d err=%v buf=%v", n, err, buf)
	}
	// Once drained, the peer's death surfaces.
	if _, err := c0.Recv(2, 5, buf); !errors.Is(err, comm.ErrPeerDead) {
		t.Fatalf("drained recv from dead rank: want ErrPeerDead, got %v", err)
	}
}

// TestPurgeTags: buffered messages inside the purged window vanish; those
// outside survive; posted receives in the window cancel with ErrTimeout.
func TestPurgeTags(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	c0, c1 := w.Comm(0), w.Comm(1)

	if err := c1.Send(0, 100, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := c1.Send(0, 200, []byte{2}); err != nil {
		t.Fatal(err)
	}
	req, err := c0.Irecv(1, 150, make([]byte, 1))
	if err != nil {
		t.Fatal(err)
	}

	c0.(comm.Purger).PurgeTags(100, 151) // drops tag 100, cancels tag 150, keeps tag 200

	if err := req.Wait(); !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("purged posted recv: want ErrTimeout, got %v", err)
	}
	buf := make([]byte, 1)
	if n, err := c0.Recv(1, 200, buf); err != nil || n != 1 || buf[0] != 2 {
		t.Fatalf("tag outside window: n=%d err=%v buf=%v", n, err, buf)
	}
	// Tag 100 was dropped: a fresh receive for it must time out, not match.
	c0.(comm.Deadliner).SetOpTimeout(20 * time.Millisecond)
	if _, err := c0.Recv(1, 100, buf); !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("purged tag still matched: err=%v", err)
	}
}
