package tcp

import (
	"bytes"
	"fmt"
	"testing"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
)

// TestRegistrySoakOverTCP runs one of every registered collective
// back-to-back across real sockets — the full registry exercised on the
// third substrate. p=5 covers the non-power-of-two fold paths.
func TestRegistrySoakOverTCP(t *testing.T) {
	const p = 5
	const n = 128
	world(t, p, func(c comm.Comm) error {
		for _, alg := range core.Algorithms(-1) {
			if alg.Pow2Only {
				continue
			}
			k := 3
			if !alg.Generalized {
				k = 0
			}
			if err := runVerified(c, alg, n, 1, k); err != nil {
				return fmt.Errorf("%s: %w", alg.Name, err)
			}
		}
		return nil
	})
}

// runVerified executes and checks one collective on a live communicator.
func runVerified(c comm.Comm, alg *core.Algorithm, n, root, k int) error {
	p := c.Size()
	me := c.Rank()
	pattern := func(seed int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte((seed*89 + i*17 + 7) % 251)
		}
		return b
	}
	vector := func(r int) []float64 {
		v := make([]float64, n/8)
		for i := range v {
			v[i] = float64((r + 2) * (i + 1))
		}
		return v
	}
	sum := make([]float64, n/8)
	for r := 0; r < p; r++ {
		for i, x := range vector(r) {
			sum[i] += x
		}
	}

	a := core.Args{Op: datatype.Sum, Type: datatype.Float64, Root: root, K: k}
	switch alg.Op {
	case core.OpBcast:
		a.SendBuf = make([]byte, n)
		if me == root {
			copy(a.SendBuf, pattern(root))
		}
		if err := alg.Run(c, a); err != nil {
			return err
		}
		if !bytes.Equal(a.SendBuf, pattern(root)) {
			return fmt.Errorf("bcast mismatch")
		}
	case core.OpReduce, core.OpAllreduce:
		a.SendBuf = datatype.EncodeFloat64(vector(me))
		a.RecvBuf = make([]byte, n)
		if err := alg.Run(c, a); err != nil {
			return err
		}
		if alg.Op == core.OpAllreduce || me == root {
			if !bytes.Equal(a.RecvBuf, datatype.EncodeFloat64(sum)) {
				return fmt.Errorf("reduction mismatch")
			}
		}
	case core.OpGather, core.OpAllgather:
		a.SendBuf = pattern(me)
		a.RecvBuf = make([]byte, n*p)
		if err := alg.Run(c, a); err != nil {
			return err
		}
		if alg.Op == core.OpAllgather || me == root {
			for r := 0; r < p; r++ {
				if !bytes.Equal(a.RecvBuf[r*n:(r+1)*n], pattern(r)) {
					return fmt.Errorf("block %d mismatch", r)
				}
			}
		}
	case core.OpScatter:
		if me == root {
			for r := 0; r < p; r++ {
				a.SendBuf = append(a.SendBuf, pattern(r)...)
			}
		}
		a.RecvBuf = make([]byte, n)
		if err := alg.Run(c, a); err != nil {
			return err
		}
		if !bytes.Equal(a.RecvBuf, pattern(me)) {
			return fmt.Errorf("scatter mismatch")
		}
	case core.OpReduceScatter:
		a.SendBuf = datatype.EncodeFloat64(vector(me))
		off, sz := core.FairLayoutAligned(n, p, 8)(me)
		a.RecvBuf = make([]byte, sz)
		if err := alg.Run(c, a); err != nil {
			return err
		}
		want := datatype.EncodeFloat64(sum)[off : off+sz]
		if !bytes.Equal(a.RecvBuf, want) {
			return fmt.Errorf("reduce-scatter mismatch")
		}
	case core.OpScan:
		a.SendBuf = datatype.EncodeFloat64(vector(me))
		a.RecvBuf = make([]byte, n)
		if err := alg.Run(c, a); err != nil {
			return err
		}
		pref := make([]float64, n/8)
		for r := 0; r <= me; r++ {
			for i, x := range vector(r) {
				pref[i] += x
			}
		}
		if !bytes.Equal(a.RecvBuf, datatype.EncodeFloat64(pref)) {
			return fmt.Errorf("scan mismatch")
		}
	case core.OpAlltoall:
		for dst := 0; dst < p; dst++ {
			a.SendBuf = append(a.SendBuf, pattern(me*100+dst)...)
		}
		a.RecvBuf = make([]byte, n*p)
		if err := alg.Run(c, a); err != nil {
			return err
		}
		for src := 0; src < p; src++ {
			if !bytes.Equal(a.RecvBuf[src*n:(src+1)*n], pattern(src*100+me)) {
				return fmt.Errorf("alltoall block %d mismatch", src)
			}
		}
	case core.OpAllgatherv:
		counts := make([]int, p)
		total := 0
		for r := range counts {
			counts[r] = ((r*37 + 1) % 5) * n
			total += counts[r]
		}
		a.Counts = counts
		a.SendBuf = bytes.Repeat(pattern(me), (counts[me]+n-1)/n+1)[:counts[me]]
		a.RecvBuf = make([]byte, total)
		if err := alg.Run(c, a); err != nil {
			return err
		}
		pos := 0
		for r := 0; r < p; r++ {
			want := bytes.Repeat(pattern(r), (counts[r]+n-1)/n+1)[:counts[r]]
			if !bytes.Equal(a.RecvBuf[pos:pos+counts[r]], want) {
				return fmt.Errorf("allgatherv block %d mismatch", r)
			}
			pos += counts[r]
		}
	case core.OpReduceScatterv:
		counts := make([]int, p)
		total := 0
		for r := range counts {
			counts[r] = ((r*37 + 1) % 5) * n
			total += counts[r]
		}
		a.Counts = counts
		fullElems := total / 8
		full := func(r int) []float64 {
			v := make([]float64, fullElems)
			for i := range v {
				v[i] = float64((r + 2) * (i%31 + 1))
			}
			return v
		}
		fullSum := make([]float64, fullElems)
		for r := 0; r < p; r++ {
			for i, x := range full(r) {
				fullSum[i] += x
			}
		}
		a.SendBuf = datatype.EncodeFloat64(full(me))
		a.RecvBuf = make([]byte, counts[me])
		if err := alg.Run(c, a); err != nil {
			return err
		}
		off := 0
		for r := 0; r < me; r++ {
			off += counts[r]
		}
		want := datatype.EncodeFloat64(fullSum)[off : off+counts[me]]
		if !bytes.Equal(a.RecvBuf, want) {
			return fmt.Errorf("reduce-scatterv mismatch")
		}
	case core.OpAlltoallv:
		m := make([]int, p*p)
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				m[i*p+j] = ((i*31 + j*17 + 1) % 5) * n
			}
		}
		a.Counts = m
		blk := func(i, j int) []byte {
			sz := m[i*p+j]
			return bytes.Repeat(pattern(i*100+j), (sz+n-1)/n+1)[:sz]
		}
		recvTotal := 0
		for q := 0; q < p; q++ {
			a.SendBuf = append(a.SendBuf, blk(me, q)...)
			recvTotal += m[q*p+me]
		}
		a.RecvBuf = make([]byte, recvTotal)
		if err := alg.Run(c, a); err != nil {
			return err
		}
		pos := 0
		for src := 0; src < p; src++ {
			sz := m[src*p+me]
			if !bytes.Equal(a.RecvBuf[pos:pos+sz], blk(src, me)) {
				return fmt.Errorf("alltoallv block %d mismatch", src)
			}
			pos += sz
		}
	}
	return nil
}
