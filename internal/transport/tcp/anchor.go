package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"exacoll/internal/comm"
)

// Hello kinds (protocol v3). A world hello is one rank of a known world
// formation presenting itself at an epoch; a join hello is an outsider
// asking to be admitted into a future epoch.
const (
	helloWorld = 0
	helloJoin  = 1
)

// Status words opening every coordinator reply.
const (
	statusOK         = 0 // world hello accepted: address list follows
	statusWrongEpoch = 1 // the presented epoch is already retired
	statusBusy       = 2 // join queue full (admission control)
	statusAdmit      = 3 // join granted: (epoch, rank, size) ticket follows
	statusRetry      = 4 // parked past deadline or transition aborted: retry
)

// Errors surfaced by epoch-keyed rendezvous and join admission.
var (
	// ErrWrongEpoch reports a rendezvous attempt at an epoch the anchor
	// has already completed and retired — the dialer raced a membership
	// change and must re-learn the current epoch before retrying.
	ErrWrongEpoch = errors.New("tcp: rendezvous epoch already retired")
	// ErrBusy reports a join request bounced by admission control: the
	// anchor's join queue was full.
	ErrBusy = errors.New("tcp: join queue full")
)

// helloSize is the fixed prefix of a v3 hello:
// ver(4) kind(4) rank(4) epoch(8) alen(4).
const helloSize = 24

// writeHello sends one v3 hello frame.
func writeHello(conn net.Conn, kind, rank int, epoch uint64, addr string) error {
	b := make([]byte, helloSize+len(addr))
	binary.LittleEndian.PutUint32(b[0:], protoVersion)
	binary.LittleEndian.PutUint32(b[4:], uint32(kind))
	binary.LittleEndian.PutUint32(b[8:], uint32(rank))
	binary.LittleEndian.PutUint64(b[12:], epoch)
	binary.LittleEndian.PutUint32(b[20:], uint32(len(addr)))
	copy(b[helloSize:], addr)
	_, err := conn.Write(b)
	return err
}

// readStatus consumes a coordinator reply's status word, mapping the
// failure statuses onto their sentinel errors.
func readStatus(conn net.Conn, epoch uint64) error {
	var sb [4]byte
	if _, err := io.ReadFull(conn, sb[:]); err != nil {
		return fmt.Errorf("tcp: rendezvous status: %w", err)
	}
	switch binary.LittleEndian.Uint32(sb[:]) {
	case statusOK:
		return nil
	case statusWrongEpoch:
		return fmt.Errorf("%w (epoch %d)", ErrWrongEpoch, epoch)
	case statusBusy:
		return ErrBusy
	case statusRetry:
		return fmt.Errorf("%w (epoch %d)", ErrBounced, epoch)
	default:
		return fmt.Errorf("tcp: unexpected rendezvous status %d", binary.LittleEndian.Uint32(sb[:]))
	}
}

// writeStatus sends a bare status reply.
func writeStatus(conn net.Conn, status uint32, deadline time.Time) error {
	var sb [4]byte
	binary.LittleEndian.PutUint32(sb[:], status)
	conn.SetWriteDeadline(deadline)
	_, err := conn.Write(sb[:])
	return err
}

// Ticket is an admission grant: the joiner becomes rank Rank of the
// Size-rank world that will form at Epoch. The joiner redeems it by
// calling Rendezvous(Rank, Size, anchorAddr, Options{Epoch: Epoch}).
type Ticket struct {
	Epoch uint64
	Rank  int
	Size  int
}

// parkedHello is one world hello waiting for its epoch's formation.
type parkedHello struct {
	conn  net.Conn
	addr  string
	since time.Time // when it parked — the admission-deadline clock
}

// JoinRequest is a parked join hello: an outsider holding a connection
// open, waiting to be admitted into a future world formation or bounced.
type JoinRequest struct {
	conn    net.Conn
	opts    Options
	replied bool
	bounced bool
}

// Bounced reports whether the request was answered with a retryable
// bounce (an injected admission fault) rather than a ticket — the joiner
// is already retrying, so its rank slot may be reused.
func (j *JoinRequest) Bounced() bool { return j.bounced }

// Admit grants the join: the ticket travels back on the held connection
// and the connection closes (the joiner re-dials as a world member when it
// redeems the ticket). Admit and Reject may each be called at most once.
func (j *JoinRequest) Admit(t Ticket, timeout time.Duration) error {
	if j.replied {
		return fmt.Errorf("tcp: join request already answered")
	}
	if err := j.opts.step("anchor.admit", t.Epoch, 0, t.Rank); err != nil {
		// The admission step failed: bounce the joiner retryably so it
		// re-requests instead of parking against a ticket never sent.
		j.replied, j.bounced = true, true
		writeStatus(j.conn, statusRetry, time.Now().Add(2*time.Second))
		j.conn.Close()
		return err
	}
	j.replied = true
	defer j.conn.Close()
	b := make([]byte, 4+16)
	binary.LittleEndian.PutUint32(b[0:], statusAdmit)
	binary.LittleEndian.PutUint64(b[4:], t.Epoch)
	binary.LittleEndian.PutUint32(b[12:], uint32(t.Rank))
	binary.LittleEndian.PutUint32(b[16:], uint32(t.Size))
	j.conn.SetWriteDeadline(time.Now().Add(timeout))
	if _, err := j.conn.Write(b); err != nil {
		return fmt.Errorf("tcp: admit reply: %w", err)
	}
	return nil
}

// Reject bounces the join with a busy status.
func (j *JoinRequest) Reject() {
	if j.replied {
		return
	}
	j.replied = true
	writeStatus(j.conn, statusBusy, time.Now().Add(2*time.Second))
	j.conn.Close()
}

// RequestJoin asks the anchor at addr for admission into a future world.
// It blocks — up to opts.Timeout — until the anchor's owner admits or
// rejects the request (admission happens at the next Grow, so callers
// should size the timeout to how long they are willing to wait for one).
// On success the returned ticket names the joiner's rank, the new world
// size, and the epoch to rendezvous at.
func RequestJoin(addr string, opts Options) (Ticket, error) {
	deadline := time.Now().Add(opts.timeout())
	if err := opts.step("join.dial", 0, -1, 0); err != nil {
		return Ticket{}, err
	}
	conn, err := opts.dialRetry(addr, deadline)
	if err != nil {
		return Ticket{}, fmt.Errorf("tcp: dial anchor: %w", err)
	}
	defer conn.Close()
	conn.SetDeadline(deadline)
	if err := opts.step("join.hello", 0, -1, 0); err != nil {
		return Ticket{}, err
	}
	if err := writeHello(conn, helloJoin, 0, 0, ""); err != nil {
		return Ticket{}, fmt.Errorf("tcp: join hello: %w", err)
	}
	if err := opts.step("join.ticket", 0, -1, 0); err != nil {
		return Ticket{}, err
	}
	var sb [4]byte
	if _, err := io.ReadFull(conn, sb[:]); err != nil {
		return Ticket{}, fmt.Errorf("tcp: join status: %w", err)
	}
	switch binary.LittleEndian.Uint32(sb[:]) {
	case statusAdmit:
		var tb [16]byte
		if _, err := io.ReadFull(conn, tb[:]); err != nil {
			return Ticket{}, fmt.Errorf("tcp: join ticket: %w", err)
		}
		return Ticket{
			Epoch: binary.LittleEndian.Uint64(tb[0:]),
			Rank:  int(binary.LittleEndian.Uint32(tb[8:])),
			Size:  int(binary.LittleEndian.Uint32(tb[12:])),
		}, nil
	case statusBusy:
		return Ticket{}, ErrBusy
	case statusRetry:
		return Ticket{}, fmt.Errorf("%w (join request aged out)", ErrBounced)
	case statusWrongEpoch:
		return Ticket{}, fmt.Errorf("%w (join raced a membership change)", ErrWrongEpoch)
	default:
		return Ticket{}, fmt.Errorf("tcp: unexpected join status %d", binary.LittleEndian.Uint32(sb[:]))
	}
}

// Anchor is the long-lived coordinator of an elastic world: a persistent
// listener at the rendezvous address, owned by the rank-0 process across
// every membership epoch. It parks world hellos per epoch (arrival order
// does not matter — survivors and admitted joiners may dial before the
// anchor's own Rendezvous starts), queues join requests for admission
// control, and answers retired-epoch stragglers with a wrong-epoch status
// instead of letting them wedge a formation.
//
// A second dial from the same (rank, epoch) replaces the first parked
// connection — the dialer gave up on it, so rendezvous is idempotent on
// reconnect.
type Anchor struct {
	ln    net.Listener
	opts  Options
	joinQ chan *JoinRequest
	kick  chan struct{}
	stop  chan struct{}

	mu      sync.Mutex
	world   map[uint64]map[int]parkedHello
	doneTo  uint64 // epochs <= doneTo (when any) are retired
	hasRun  bool
	closed  bool
	forming uint64 // epoch with a Rendezvous in flight (admission-deadline exempt)
	inForm  bool
}

// AnchorState is the anchor's persistent rendezvous position: which
// epochs are retired. A restarted anchor seeded with the state of its
// previous incarnation answers stale-epoch dials with wrong-epoch instead
// of parking them against a formation that already happened, and forms
// its next world at the right epoch — the recovery path for an anchor
// process that crashed and came back, or for a survivor promoted to
// anchor duty after rank 0 died.
type AnchorState struct {
	DoneTo uint64 `json:"done_to"`
	HasRun bool   `json:"has_run"`
}

// NewAnchor opens the persistent rendezvous listener. joinCap bounds the
// admission queue: further join requests are answered Busy immediately
// (0 disables joining — the one-shot Rendezvous case).
func NewAnchor(addr string, joinCap int, opts Options) (*Anchor, error) {
	return NewAnchorWithState(addr, joinCap, opts, AnchorState{})
}

// NewAnchorWithState opens the rendezvous listener resuming from a
// persisted position — the anchor-recovery entry point. A zero state is a
// fresh anchor.
func NewAnchorWithState(addr string, joinCap int, opts Options, st AnchorState) (*Anchor, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: listen: %w", err)
	}
	a := &Anchor{
		ln:     ln,
		opts:   opts,
		joinQ:  make(chan *JoinRequest, joinCap),
		kick:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		world:  make(map[uint64]map[int]parkedHello),
		doneTo: st.DoneTo,
		hasRun: st.HasRun,
	}
	go a.acceptLoop()
	if d := opts.admitDeadline(); d > 0 {
		go a.janitorLoop(d)
	}
	return a, nil
}

// State snapshots the anchor's rendezvous position for persistence.
func (a *Anchor) State() AnchorState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AnchorState{DoneTo: a.doneTo, HasRun: a.hasRun}
}

// janitorLoop enforces the admission deadline: a world hello parked
// longer than d — an admitted joiner whose formation never ran, or a
// survivor of an abandoned transition — is bounced with a retryable
// status instead of holding its connection (and its ticket's rank slot)
// forever. Hellos at the epoch currently being formed are exempt: their
// wait is bounded by the formation's own timeout.
func (a *Anchor) janitorLoop(d time.Duration) {
	interval := d / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-ticker.C:
		}
		now := time.Now()
		var expired []parkedHello
		a.mu.Lock()
		for e, ranks := range a.world {
			if a.inForm && e == a.forming {
				continue
			}
			for r, ph := range ranks {
				if now.Sub(ph.since) > d {
					expired = append(expired, ph)
					delete(ranks, r)
				}
			}
			if len(ranks) == 0 {
				delete(a.world, e)
			}
		}
		a.mu.Unlock()
		deadline := now.Add(2 * time.Second)
		for _, ph := range expired {
			writeStatus(ph.conn, statusRetry, deadline)
			ph.conn.Close()
		}
	}
}

// Addr returns the listener's concrete address (useful with ":0").
func (a *Anchor) Addr() string { return a.ln.Addr().String() }

// Joins exposes the admission queue. The anchor's owner drains it when it
// decides to grow, answering each request with Admit or Reject.
func (a *Anchor) Joins() <-chan *JoinRequest { return a.joinQ }

// PendingJoins reports how many join requests are currently queued.
func (a *Anchor) PendingJoins() int { return len(a.joinQ) }

// acceptLoop fields every inbound connection: the hello decides whether it
// parks as a world member, queues as a join request, or bounces.
func (a *Anchor) acceptLoop() {
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go a.handleConn(conn)
	}
}

// handleConn reads one hello and files the connection.
func (a *Anchor) handleConn(conn net.Conn) {
	deadline := time.Now().Add(a.opts.timeout())
	conn.SetDeadline(deadline)
	var hb [helloSize]byte
	if _, err := io.ReadFull(conn, hb[:]); err != nil {
		conn.Close()
		return
	}
	ver := int(binary.LittleEndian.Uint32(hb[0:]))
	kind := int(binary.LittleEndian.Uint32(hb[4:]))
	rank := int(binary.LittleEndian.Uint32(hb[8:]))
	epoch := binary.LittleEndian.Uint64(hb[12:])
	alen := int(binary.LittleEndian.Uint32(hb[20:]))
	if ver != protoVersion || alen > 256 {
		conn.Close()
		return
	}
	ab := make([]byte, alen)
	if _, err := io.ReadFull(conn, ab); err != nil {
		conn.Close()
		return
	}
	switch kind {
	case helloWorld:
		if rank < 1 {
			conn.Close()
			return
		}
		conn.SetDeadline(time.Time{})
		a.mu.Lock()
		if a.closed || (a.hasRun && epoch <= a.doneTo) {
			a.mu.Unlock()
			writeStatus(conn, statusWrongEpoch, deadline)
			conn.Close()
			return
		}
		ranks := a.world[epoch]
		if ranks == nil {
			ranks = make(map[int]parkedHello)
			a.world[epoch] = ranks
		}
		if old, dup := ranks[rank]; dup {
			old.conn.Close() // reconnect replaces the stale parked dial
		}
		ranks[rank] = parkedHello{conn: conn, addr: string(ab), since: time.Now()}
		a.mu.Unlock()
		select {
		case a.kick <- struct{}{}:
		default:
		}
	case helloJoin:
		req := &JoinRequest{conn: conn, opts: a.opts}
		select {
		case a.joinQ <- req:
			conn.SetDeadline(time.Time{}) // parked until the owner answers
		default:
			req.Reject()
		}
	default:
		conn.Close()
	}
}

// Rendezvous forms the p-rank world of one epoch: it waits for ranks
// 1..p-1 to present world hellos at that epoch, replies to each with the
// mesh address list, and returns the anchor owner's rank-0 endpoint. One
// formation runs at a time. Completing a formation retires every epoch
// <= epoch: parked and future hellos there are answered wrong-epoch.
func (a *Anchor) Rendezvous(p int, epoch uint64) (*Proc, error) {
	if p < 1 {
		return nil, fmt.Errorf("tcp: bad world size %d", p)
	}
	if err := a.opts.step("anchor.rv.begin", epoch, 0, -1); err != nil {
		return nil, err
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil, fmt.Errorf("tcp: anchor closed")
	}
	if a.hasRun && epoch <= a.doneTo {
		a.mu.Unlock()
		return nil, fmt.Errorf("%w (epoch %d)", ErrWrongEpoch, epoch)
	}
	a.forming, a.inForm = epoch, true
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		a.inForm = false
		a.mu.Unlock()
	}()
	if p == 1 {
		proc := newProc(0, 1, a.opts)
		proc.keyHosts([]string{hostOf(a.Addr())})
		a.retire(epoch)
		return proc, nil
	}
	deadline := time.Now().Add(a.opts.timeout())
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	var joiners map[int]parkedHello
	for joiners == nil {
		a.mu.Lock()
		ranks := a.world[epoch]
		complete := len(ranks) >= p-1
		for r := 1; r < p && complete; r++ {
			_, complete = ranks[r]
		}
		if complete {
			joiners = ranks
			delete(a.world, epoch) // consumed: Close must not touch these
		}
		a.mu.Unlock()
		if joiners != nil {
			break
		}
		select {
		case <-a.kick:
		case <-timer.C:
			// Not every member showed up: the missing ones are failing their
			// own rendezvous, so this formation may simply be retried —
			// classify as a timeout, which membership-change retry loops
			// treat as transient.
			return nil, fmt.Errorf("%w: rendezvous epoch %d (have %d of %d members)",
				comm.ErrTimeout, epoch, a.parkedCount(epoch)+1, p)
		case <-a.stop:
			return nil, fmt.Errorf("tcp: anchor closed")
		}
	}
	// A hello from a rank outside [1, p) at this epoch is a geometry
	// disagreement — fail loudly rather than form a mismatched world.
	for r := range joiners {
		if r >= p {
			for _, ph := range joiners {
				ph.conn.Close()
			}
			return nil, fmt.Errorf("tcp: rank %d outside world of size %d at epoch %d", r, p, epoch)
		}
	}
	proc := newProc(0, p, a.opts)
	// A striped world needs extra connections from every member to rank 0,
	// but the members' stripe-0 links are the parked rendezvous connections
	// themselves — so rank 0 opens a dedicated stripe listener whose
	// address travels at the end of the reply, and accepts the extra dials
	// after the replies go out.
	var stripeLn net.Listener
	if proc.stripes > 1 {
		var err error
		stripeLn, err = net.Listen("tcp", net.JoinHostPort(hostOf(a.Addr()), "0"))
		if err != nil {
			for _, ph := range joiners {
				ph.conn.Close()
			}
			return nil, fmt.Errorf("tcp: stripe listen: %w", err)
		}
		defer stripeLn.Close()
	}
	var list []byte
	appendAddr := func(addr string) {
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(addr)))
		list = append(list, l[:]...)
		list = append(list, addr...)
	}
	for r := 1; r < p; r++ {
		appendAddr(joiners[r].addr)
	}
	if stripeLn != nil {
		appendAddr(stripeLn.Addr().String())
	}
	reply := make([]byte, 4, 4+len(list))
	binary.LittleEndian.PutUint32(reply, statusOK)
	reply = append(reply, list...)
	for r := 1; r < p; r++ {
		conn := joiners[r].conn
		conn.SetWriteDeadline(deadline)
		err := a.opts.step("anchor.rv.reply", epoch, 0, r)
		if err == nil {
			_, err = conn.Write(reply)
		}
		if err != nil {
			for _, ph := range joiners {
				ph.conn.Close()
			}
			return nil, fmt.Errorf("tcp: address list to %d: %w", r, err)
		}
		conn.SetDeadline(time.Time{})
		proc.conns[r] = conn
	}
	if stripeLn != nil {
		if err := proc.acceptStripes(stripeLn, deadline); err != nil {
			proc.closeConns()
			return nil, err
		}
	}
	hosts := make([]string, p)
	hosts[0] = hostOf(a.Addr())
	for r := 1; r < p; r++ {
		hosts[r] = hostOf(joiners[r].addr)
	}
	proc.keyHosts(hosts)
	proc.startLoops(a.opts)
	a.retire(epoch)
	return proc, nil
}

// acceptStripes collects the (p-1)·(S-1) extra stripe connections of a
// striped rendezvous: every member dials rank 0's stripe listener once
// per stripe 1..S-1, identifying itself with an 8-byte (rank, stripe)
// hello. A duplicate (rank, stripe) replaces the earlier connection, so
// member-side redials stay idempotent.
func (p *Proc) acceptStripes(ln net.Listener, deadline time.Time) error {
	for remaining := (p.size - 1) * (p.stripes - 1); remaining > 0; {
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("tcp: stripe accept: %w", err)
		}
		conn.SetDeadline(deadline)
		r, s, err := p.readMeshHello(conn)
		if err != nil {
			conn.Close() // the dialer redials
			continue
		}
		if r < 1 || r >= p.size || s < 1 || s >= p.stripes {
			conn.Close()
			return fmt.Errorf("tcp: bad stripe dialer rank %d stripe %d", r, s)
		}
		slot := p.stripeSlot(r, s)
		if old := *slot; old != nil {
			old.Close()
		} else {
			remaining--
		}
		conn.SetDeadline(time.Time{})
		*slot = conn
	}
	return nil
}

// retire marks every epoch <= epoch completed, bouncing their parked
// hellos with a wrong-epoch status.
func (a *Anchor) retire(epoch uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.hasRun || epoch > a.doneTo {
		a.hasRun = true
		a.doneTo = epoch
	}
	deadline := time.Now().Add(2 * time.Second)
	for e, ranks := range a.world {
		if e > a.doneTo {
			continue
		}
		for _, ph := range ranks {
			writeStatus(ph.conn, statusWrongEpoch, deadline)
			ph.conn.Close()
		}
		delete(a.world, e)
	}
}

// AbortEpoch abandons a half-formed transition: every hello parked at an
// epoch <= e is bounced with a retryable status — survivors re-enter
// their membership change from the top, admitted joiners re-request
// admission — and e is retired, so stragglers re-dialing it are answered
// instead of parking against a formation that will never run. The
// anchor's owner calls this when it abandons a transition whose tickets
// named a geometry that can no longer form (a joiner died holding one, a
// survivor count changed between attempts). No-op for epochs already
// retired.
func (a *Anchor) AbortEpoch(e uint64) {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	if !a.hasRun || e > a.doneTo {
		a.hasRun = true
		a.doneTo = e
	}
	var bounced []parkedHello
	for ep, ranks := range a.world {
		if ep > a.doneTo {
			continue
		}
		for _, ph := range ranks {
			bounced = append(bounced, ph)
		}
		delete(a.world, ep)
	}
	a.mu.Unlock()
	deadline := time.Now().Add(2 * time.Second)
	for _, ph := range bounced {
		writeStatus(ph.conn, statusRetry, deadline)
		ph.conn.Close()
	}
}

// parkedCount reports how many hellos are parked at an epoch.
func (a *Anchor) parkedCount(epoch uint64) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.world[epoch])
}

// Close shuts the listener, bounces every parked hello and queued join,
// and wakes any in-flight Rendezvous. Connections already handed to a
// formed Proc are not touched.
func (a *Anchor) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	worlds := a.world
	a.world = make(map[uint64]map[int]parkedHello)
	a.mu.Unlock()
	close(a.stop)
	err := a.ln.Close()
	deadline := time.Now().Add(2 * time.Second)
	for _, ranks := range worlds {
		for _, ph := range ranks {
			writeStatus(ph.conn, statusWrongEpoch, deadline)
			ph.conn.Close()
		}
	}
	for {
		select {
		case req := <-a.joinQ:
			req.Reject()
		default:
			return err
		}
	}
}
