// Package tcp implements comm.Comm across OS processes connected by TCP —
// the multi-process substrate behind cmd/gcarun. Rank 0 listens; every
// other rank dials it, learns the full address list, then the ranks build
// a full mesh (rank i dials rank j for i > j). Messages are framed as
// (src, tag, length, payload) and demultiplexed into the same
// (source, tag) FIFO matching engine semantics as the in-memory transport.
//
// Fault tolerance: after rendezvous every connection carries periodic
// heartbeat frames, and a per-peer liveness monitor marks a silent peer
// dead (comm.ErrPeerDead) — so a crashed rank is detected even when no
// data traffic touches it. Per-operation deadlines (comm.Deadliner) bound
// every blocking Send and Recv, surfacing comm.ErrTimeout instead of
// hanging on a dead or wedged peer; before this, connections cleared
// their deadlines after rendezvous and a crashed peer could block
// Send/Recv forever.
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	scratch "exacoll/internal/buf"
	"exacoll/internal/comm"
)

// frame header: src(4) tag(4) len(4).
const headerSize = 12

// wire protocol version for the rendezvous handshake. Version 3 re-keys
// rendezvous by epoch: the hello carries a kind (world-member vs join
// request) and the epoch the dialer wants to rendezvous at, and every
// reply starts with a status word — the pieces elastic membership needs
// (see anchor.go).
const protoVersion = 3

// hbTag is the reserved tag value of a heartbeat frame (never a valid
// comm.Tag, which is non-negative in practice: collective and user tags
// are all >= 0).
const hbTag = ^uint32(0)

// Options configures Dial/Listen.
type Options struct {
	// Timeout bounds the whole rendezvous (default 30s).
	Timeout time.Duration
	// Heartbeat is the interval between liveness frames on every
	// connection. 0 selects the default (500ms); a negative value
	// disables heartbeats and the liveness monitor entirely.
	Heartbeat time.Duration
	// SuspectAfter is how long a peer may stay silent (no data frames, no
	// heartbeats) before the monitor declares it dead. 0 selects the
	// default (4 × Heartbeat). Ignored when heartbeats are disabled.
	SuspectAfter time.Duration
	// Epoch keys the rendezvous: every member of one world formation must
	// present the same epoch, and an Anchor parks hellos per epoch so the
	// worlds of successive membership changes can never mix (a straggling
	// dial from a retired epoch is answered with a wrong-epoch status
	// instead of wedging the mesh). 0 — the default — is the first world.
	Epoch uint64
	// AdmitDeadline bounds how long a world hello may stay parked at an
	// anchor before it is bounced with a retryable status (the admitted
	// joiner whose formation never ran, the survivor of an aborted
	// transition). 0 selects the default (2 × Timeout); a negative value
	// disables the deadline. Epochs with a formation in flight are exempt.
	AdmitDeadline time.Duration
	// Hook, when non-nil, is consulted at every rendezvous/join/admission
	// protocol boundary before the step executes; a non-nil return aborts
	// the step with that error. The chaos layer's injection point —
	// production configurations leave it nil.
	Hook FaultHook
	// Dialer replaces net.DialTimeout for every outbound rendezvous and
	// mesh dial, so connection-level fault injectors (transport/faulty's
	// Net) can refuse, reset, partition, or throttle real TCP links.
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
}

func (o Options) timeout() time.Duration {
	if o.Timeout == 0 {
		return 30 * time.Second
	}
	return o.Timeout
}

func (o Options) heartbeat() time.Duration {
	if o.Heartbeat == 0 {
		return 500 * time.Millisecond
	}
	if o.Heartbeat < 0 {
		return 0
	}
	return o.Heartbeat
}

func (o Options) suspectAfter() time.Duration {
	hb := o.heartbeat()
	if hb == 0 {
		return 0
	}
	if o.SuspectAfter > 0 {
		return o.SuspectAfter
	}
	return 4 * hb
}

func (o Options) admitDeadline() time.Duration {
	if o.AdmitDeadline < 0 {
		return 0
	}
	if o.AdmitDeadline == 0 {
		return 2 * o.timeout()
	}
	return o.AdmitDeadline
}

// Proc is one rank's endpoint in a TCP world. It implements comm.Comm,
// comm.Deadliner, comm.FailureDetector, and comm.Purger.
type Proc struct {
	rank  int
	size  int
	conns []net.Conn // conns[peer], nil at self

	engine *engine

	sendMu []sync.Mutex // per-peer write locks

	opTimeout atomic.Int64   // per-op deadline in nanoseconds; 0 = unbounded
	lastSeen  []atomic.Int64 // unix nanos of the last frame from each peer
	hbStop    chan struct{}
	hbWG      sync.WaitGroup

	// Host-keyed locality, derived once during rendezvous from the same
	// address list every rank already receives (no extra wire traffic):
	// ranks whose mesh listeners share a host string share a node.
	nodeOf  []int        // rank -> node id (first-appearance order), nil if unknown
	localOf []int        // rank -> index among its host's ranks
	ppn     int          // max ranks per host
	synPPN  atomic.Int64 // SetLocality override: contiguous blocks of ppn
	synPort atomic.Int64

	closeOnce sync.Once
	closeErr  error
}

// newProc allocates an unconnected endpoint of a p-rank world.
func newProc(rank, p int) *Proc {
	return &Proc{
		rank:     rank,
		size:     p,
		conns:    make([]net.Conn, p),
		engine:   newEngine(),
		sendMu:   make([]sync.Mutex, p),
		lastSeen: make([]atomic.Int64, p),
		hbStop:   make(chan struct{}),
	}
}

// startLoops launches the demultiplexing readers and the liveness
// machinery once every mesh connection is in place.
func (p *Proc) startLoops(opts Options) {
	now := time.Now().UnixNano()
	for peer, conn := range p.conns {
		if conn != nil {
			p.lastSeen[peer].Store(now)
			go p.readLoop(peer, conn)
		}
	}
	if hb := opts.heartbeat(); hb > 0 {
		p.hbWG.Add(2)
		go p.heartbeatLoop(hb)
		go p.monitorLoop(hb, opts.suspectAfter())
	}
}

// Rendezvous establishes the world. Rank 0 must call with listenAddr
// (e.g. "127.0.0.1:7777"); other ranks pass the same address they dial.
// Every rank must know p and its own rank (as mpirun would provide), and
// all ranks must present the same opts.Epoch.
//
// Rank 0's listener lives only for this one formation. A long-lived
// coordinator that can also field join requests between formations — what
// elastic membership needs — is an Anchor (NewAnchor + Anchor.Rendezvous),
// which this function wraps for the one-shot case.
func Rendezvous(rank, p int, addr string, opts Options) (*Proc, error) {
	if p < 1 || rank < 0 || rank >= p {
		return nil, fmt.Errorf("tcp: bad rank/size %d/%d", rank, p)
	}
	if rank == 0 {
		if p == 1 {
			proc := newProc(0, 1)
			proc.keyHosts([]string{hostOf(addr)})
			return proc, nil
		}
		a, err := NewAnchor(addr, 0, opts)
		if err != nil {
			return nil, err
		}
		defer a.Close()
		return a.Rendezvous(p, opts.Epoch)
	}
	proc := newProc(rank, p)
	if err := proc.join(addr, opts, time.Now().Add(opts.timeout())); err != nil {
		proc.closeConns()
		return nil, err
	}
	proc.startLoops(opts)
	return proc, nil
}

// closeConns tears down whatever connections a failed join left behind,
// so an aborted formation leaks no sockets.
func (p *Proc) closeConns() {
	for _, c := range p.conns {
		if c != nil {
			c.Close()
		}
	}
}

// join is a non-zero rank's rendezvous: open a mesh listener, dial the
// coordinator, send a world hello (version, kind, rank, epoch, mesh
// address), read the status + address list, then dial every lower-ranked
// peer and accept every higher-ranked one. Every dial backs off with
// jitter until the deadline, and every protocol boundary consults the
// fault hook, so a chaos sweep can fail the formation at any point.
func (p *Proc) join(addr string, opts Options, deadline time.Time) error {
	epoch := opts.Epoch
	// The coordinator handshake retries through connection-level failure
	// (handshake drops, resets before the address list) until the
	// deadline: a redial re-parks an identical hello and the anchor's
	// dup-replace keeps that idempotent. Protocol answers — wrong-epoch,
	// busy, bounce — and injected hook faults return immediately.
	var conn0 net.Conn
	var mesh net.Listener
	var addrs []string
	for attempt := 0; ; attempt++ {
		if err := opts.step("rv.dial", epoch, p.rank, 0); err != nil {
			return err
		}
		c, err := opts.dialRetry(addr, deadline)
		if err != nil {
			return fmt.Errorf("tcp: dial rank 0: %w", err)
		}
		// Bind the mesh listener on the interface that reaches rank 0, so
		// the advertised address works across hosts and carries the host
		// string that locality keying groups ranks by (on one host this is
		// the loopback address, exactly as before).
		if mesh == nil {
			mesh, err = net.Listen("tcp", net.JoinHostPort(hostOf(c.LocalAddr().String()), "0"))
			if err != nil {
				c.Close()
				return fmt.Errorf("tcp: mesh listen: %w", err)
			}
			defer mesh.Close()
		}
		addrs, err = p.anchorHandshake(c, mesh.Addr().String(), opts, deadline)
		if err == nil {
			conn0 = c
			break
		}
		c.Close()
		if isHookErr(err) || errors.Is(err, ErrWrongEpoch) ||
			errors.Is(err, ErrBusy) || errors.Is(err, ErrBounced) {
			return err
		}
		if time.Until(deadline) <= 0 {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				// Parked at the anchor until the formation deadline ran out:
				// the formation stalled on some other rank (which is failing
				// its own rendezvous) and the anchor is aborting this epoch.
				// Transient — the caller retries the membership change.
				return fmt.Errorf("%w: rendezvous reply: %v", comm.ErrTimeout, err)
			}
			return err
		}
		if d := backoffDelay(attempt); d > 0 {
			time.Sleep(d)
		}
	}
	p.conns[0] = conn0

	// Mesh: dial lower ranks (1..rank-1), accept higher ranks. Each mesh
	// connection starts with the dialer's rank (4 bytes). A duplicate dial
	// from a rank that is already connected replaces the earlier connection
	// (the dialer gave up on it — keeping the stale socket would wedge the
	// mesh), so reconnect during formation is idempotent.
	var wg sync.WaitGroup
	var acceptErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for remaining := p.size - 1 - p.rank; remaining > 0; {
			if tl, ok := mesh.(*net.TCPListener); ok {
				tl.SetDeadline(deadline)
			}
			if err := opts.step("rv.mesh.accept", epoch, p.rank, -1); err != nil {
				acceptErr = err
				return
			}
			conn, err := mesh.Accept()
			if err != nil {
				acceptErr = err
				return
			}
			var rb [4]byte
			conn.SetDeadline(deadline)
			if _, err := io.ReadFull(conn, rb[:]); err != nil {
				// An inbound connection that died before delivering its rank
				// header (a handshake-dropped or reset dial) is the dialer's
				// problem — it will redial. Keep accepting.
				conn.Close()
				continue
			}
			r := int(binary.LittleEndian.Uint32(rb[:]))
			if r <= p.rank || r >= p.size {
				acceptErr = fmt.Errorf("tcp: bad mesh dialer rank %d", r)
				conn.Close()
				return
			}
			if old := p.conns[r]; old != nil {
				old.Close()
			} else {
				remaining--
			}
			conn.SetDeadline(time.Time{})
			p.conns[r] = conn
		}
	}()
	// On any dial-side failure the accept goroutine must be stopped before
	// returning — it writes p.conns, which the caller tears down on error.
	// Closing the listener wakes Accept; a conn mid-header is bounded by its
	// own deadline.
	meshFail := func(err error) error {
		mesh.Close()
		wg.Wait()
		return err
	}
	for r := 1; r < p.rank; r++ {
		if err := opts.step("rv.mesh.dial", epoch, p.rank, r); err != nil {
			return meshFail(err)
		}
		// Dial + rank header as one retried unit: a write that fails (the
		// link reset mid-handshake) redials, and the acceptor's dup-replace
		// keeps the retry idempotent.
		for attempt := 0; ; attempt++ {
			conn, err := opts.dialRetry(addrs[r], deadline)
			if err != nil {
				return meshFail(fmt.Errorf("tcp: mesh dial %d: %w", r, err))
			}
			var rb [4]byte
			binary.LittleEndian.PutUint32(rb[:], uint32(p.rank))
			_, werr := conn.Write(rb[:])
			if werr == nil {
				p.conns[r] = conn
				break
			}
			conn.Close()
			if time.Until(deadline) <= 0 {
				return meshFail(fmt.Errorf("tcp: mesh hello to %d: %w", r, werr))
			}
			if d := backoffDelay(attempt); d > 0 {
				time.Sleep(d)
			}
		}
	}
	wg.Wait()
	if acceptErr != nil {
		var nerr net.Error
		if errors.As(acceptErr, &nerr) && nerr.Timeout() {
			// A higher rank never dialed in before the deadline: the
			// formation is transient roadkill (that rank is failing its own
			// rendezvous), so classify it as a timeout the caller may retry.
			return fmt.Errorf("%w: mesh accept: %v", comm.ErrTimeout, acceptErr)
		}
		return fmt.Errorf("tcp: mesh accept: %w", acceptErr)
	}
	return nil
}

// anchorHandshake runs one attempt of the coordinator exchange on an
// established connection: hello out, status and address list back.
func (p *Proc) anchorHandshake(conn0 net.Conn, meshAddr string, opts Options, deadline time.Time) ([]string, error) {
	epoch := opts.Epoch
	conn0.SetDeadline(deadline)
	if err := opts.step("rv.hello", epoch, p.rank, 0); err != nil {
		return nil, err
	}
	if err := writeHello(conn0, helloWorld, p.rank, epoch, meshAddr); err != nil {
		return nil, fmt.Errorf("tcp: hello: %w", err)
	}
	if err := opts.step("rv.status", epoch, p.rank, 0); err != nil {
		return nil, err
	}
	if err := readStatus(conn0, epoch); err != nil {
		return nil, err
	}
	if err := opts.step("rv.addrs", epoch, p.rank, 0); err != nil {
		return nil, err
	}
	addrs := make([]string, p.size) // addrs[0] unused
	for r := 1; r < p.size; r++ {
		var l [4]byte
		if _, err := io.ReadFull(conn0, l[:]); err != nil {
			return nil, fmt.Errorf("tcp: address list: %w", err)
		}
		ab := make([]byte, binary.LittleEndian.Uint32(l[:]))
		if _, err := io.ReadFull(conn0, ab); err != nil {
			return nil, fmt.Errorf("tcp: address list: %w", err)
		}
		addrs[r] = string(ab)
	}
	conn0.SetDeadline(time.Time{})
	return addrs, nil
}

// heartbeatLoop sends one liveness frame per interval on every connection
// until Close. Heartbeats share each connection's write lock with data
// frames, so they also double as a probe: a send-side failure surfaces as
// failPeer long before the peer's silence would.
func (p *Proc) heartbeatLoop(interval time.Duration) {
	defer p.hbWG.Done()
	hdr := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(p.rank))
	binary.LittleEndian.PutUint32(hdr[4:], hbTag)
	binary.LittleEndian.PutUint32(hdr[8:], 0)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.hbStop:
			return
		case <-ticker.C:
		}
		for peer := range p.conns {
			if peer == p.rank || p.engine.peerFailed(peer) {
				continue
			}
			p.sendMu[peer].Lock()
			conn := p.conns[peer]
			if conn != nil {
				conn.SetWriteDeadline(time.Now().Add(interval * 2))
				if _, err := conn.Write(hdr); err != nil {
					p.failPeerConn(peer, fmt.Errorf("%w: rank %d heartbeat write: %v", comm.ErrPeerDead, peer, err))
				}
			}
			p.sendMu[peer].Unlock()
		}
	}
}

// monitorLoop declares a peer dead when nothing (data or heartbeat) has
// arrived from it for suspectAfter.
func (p *Proc) monitorLoop(interval, suspectAfter time.Duration) {
	defer p.hbWG.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.hbStop:
			return
		case <-ticker.C:
		}
		now := time.Now().UnixNano()
		for peer := range p.conns {
			if peer == p.rank || p.conns[peer] == nil || p.engine.peerFailed(peer) {
				continue
			}
			if now-p.lastSeen[peer].Load() > int64(suspectAfter) {
				p.failPeerConn(peer, fmt.Errorf("%w: rank %d silent for %v", comm.ErrPeerDead, peer, suspectAfter))
			}
		}
	}
}

// failPeerConn records a peer failure and closes its connection so any
// reader or writer blocked on it wakes immediately.
func (p *Proc) failPeerConn(peer int, err error) {
	p.engine.failPeer(peer, err)
	if conn := p.conns[peer]; conn != nil {
		conn.Close()
	}
}

// readLoop demultiplexes inbound frames from one peer into the matching
// engine.
func (p *Proc) readLoop(peer int, conn net.Conn) {
	for {
		var hdr [headerSize]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			p.engine.failPeer(peer, peerDeadErr(peer, err))
			return
		}
		p.lastSeen[peer].Store(time.Now().UnixNano())
		src := int(binary.LittleEndian.Uint32(hdr[0:]))
		rawTag := binary.LittleEndian.Uint32(hdr[4:])
		n := int(binary.LittleEndian.Uint32(hdr[8:]))
		if rawTag == hbTag && src == peer && n == 0 {
			continue // liveness frame; lastSeen already updated
		}
		tag := comm.Tag(rawTag)
		if src != peer || n < 0 || n > 1<<30 {
			p.engine.failPeer(peer, fmt.Errorf("tcp: bad frame from %d (src %d, len %d)", peer, src, n))
			return
		}
		payload := scratch.Get(n)
		if _, err := io.ReadFull(conn, payload); err != nil {
			scratch.Put(payload)
			p.engine.failPeer(peer, peerDeadErr(peer, err))
			return
		}
		p.engine.deliver(src, tag, payload)
	}
}

// peerDeadErr classifies a connection-level read/write failure: the remote
// end of this link is gone (process exit, reset, or our monitor closed the
// socket after silence), so it reports comm.ErrPeerDead.
func peerDeadErr(peer int, err error) error {
	return fmt.Errorf("%w: rank %d connection: %v", comm.ErrPeerDead, peer, err)
}

// Rank implements comm.Comm.
func (p *Proc) Rank() int { return p.rank }

// Size implements comm.Comm.
func (p *Proc) Size() int { return p.size }

// ChargeCompute implements comm.Comm (no-op on a real transport).
func (p *Proc) ChargeCompute(int) {}

// SetOpTimeout implements comm.Deadliner: each subsequent blocking Send,
// Recv, or receive Wait is bounded by d (0 restores unbounded blocking).
func (p *Proc) SetOpTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.opTimeout.Store(int64(d))
}

// Failed implements comm.FailureDetector: peers whose connection dropped,
// whose heartbeats stopped, or that sent garbage, in ascending order.
func (p *Proc) Failed() []int {
	failed := p.engine.failedPeers()
	sort.Ints(failed)
	return failed
}

// PurgeTags implements comm.Purger.
func (p *Proc) PurgeTags(lo, hi comm.Tag) { p.engine.purgeTags(lo, hi) }

// hostOf extracts the host part of a listen address, falling back to the
// whole string when it has no port (so equal strings still key together).
func hostOf(s string) string {
	host, _, err := net.SplitHostPort(s)
	if err != nil {
		return s
	}
	return host
}

// keyHosts derives the locality tables from the per-rank host strings that
// rendezvous already circulates: node ids in first-appearance order, local
// ranks by ascending world rank within a host, and PPN as the maximum
// ranks on any host. Every rank computes the same tables from the same
// list, so no extra agreement round is needed.
func (p *Proc) keyHosts(hosts []string) {
	nodeID := make(map[string]int)
	count := make(map[string]int)
	p.nodeOf = make([]int, len(hosts))
	p.localOf = make([]int, len(hosts))
	p.ppn = 0
	for r, h := range hosts {
		id, ok := nodeID[h]
		if !ok {
			id = len(nodeID)
			nodeID[h] = id
		}
		p.nodeOf[r] = id
		p.localOf[r] = count[h]
		count[h]++
		if count[h] > p.ppn {
			p.ppn = count[h]
		}
	}
}

// SetLocality overrides host-keyed locality with a synthetic contiguous
// layout (ranks [i*ppn, (i+1)*ppn) share node i) — the single-host analogue
// of launching one rank block per node, for exercising hierarchical
// collectives when every process really lives on one machine. ppn < 1
// withdraws the override and restores host-keyed data.
func (p *Proc) SetLocality(ppn, ports int) {
	if ppn < 1 {
		ppn = 0
	}
	p.synPPN.Store(int64(ppn))
	p.synPort.Store(int64(ports))
}

// Locality implements comm.Locator. A synthetic SetLocality override wins;
// otherwise the host-keyed tables derived during rendezvous answer. Ports
// is unknown to this transport unless the override supplies it.
func (p *Proc) Locality(rank int) (comm.Locality, bool) {
	if rank < 0 || rank >= p.size {
		return comm.Locality{}, false
	}
	if ppn := int(p.synPPN.Load()); ppn >= 1 {
		if ppn > p.size {
			ppn = p.size
		}
		return comm.Locality{
			Node:      rank / ppn,
			LocalRank: rank % ppn,
			PPN:       ppn,
			Ports:     int(p.synPort.Load()),
		}, true
	}
	if p.nodeOf == nil {
		return comm.Locality{}, false
	}
	return comm.Locality{
		Node:      p.nodeOf[rank],
		LocalRank: p.localOf[rank],
		PPN:       p.ppn,
		Ports:     int(p.synPort.Load()),
	}, true
}

// coalesceMax bounds the payload size that Send folds into the header's
// frame buffer: one pooled copy trades for one fewer socket write, which
// wins on the latency-bound small-message path and loses past tens of KiB.
const coalesceMax = 16 << 10

// Send implements comm.Comm. With a per-op timeout configured the socket
// write is bounded: a peer that stopped draining (dead but connection
// half-open, kernel buffer full) surfaces comm.ErrTimeout instead of
// blocking forever. The frame header (and, for small messages, the
// payload) is staged in a pooled buffer; the write is synchronous, so the
// buffer is quiescent on every return path.
func (p *Proc) Send(to int, tag comm.Tag, buf []byte) error {
	return p.send(to, tag, buf, time.Duration(p.opTimeout.Load()))
}

// send is Send with the deadline made explicit, so pooled handles
// (Shared) can carry per-handle timeouts over one shared Proc.
func (p *Proc) send(to int, tag comm.Tag, buf []byte, d time.Duration) error {
	if err := comm.CheckPeer(p.rank, to, p.size); err != nil {
		return err
	}
	fn := headerSize
	if len(buf) <= coalesceMax {
		fn += len(buf)
	}
	frame := scratch.Get(fn)
	defer scratch.Put(frame)
	copy(frame[headerSize:], buf)
	binary.LittleEndian.PutUint32(frame[0:], uint32(p.rank))
	binary.LittleEndian.PutUint32(frame[4:], uint32(tag))
	binary.LittleEndian.PutUint32(frame[8:], uint32(len(buf)))
	p.sendMu[to].Lock()
	defer p.sendMu[to].Unlock()
	if err := p.engine.peerError(to); err != nil {
		return err
	}
	conn := p.conns[to]
	if conn == nil {
		return comm.ErrClosed
	}
	if d > 0 {
		conn.SetWriteDeadline(time.Now().Add(d))
	} else {
		conn.SetWriteDeadline(time.Time{})
	}
	if _, err := conn.Write(frame); err != nil {
		return p.sendError(to, err)
	}
	if len(frame) == headerSize && len(buf) > 0 {
		if _, err := conn.Write(buf); err != nil {
			return p.sendError(to, err)
		}
	}
	return nil
}

// sendError classifies a failed frame write. The frame may be partially
// written, so the connection's stream is corrupt either way: the peer is
// marked failed and the connection closed.
func (p *Proc) sendError(to int, err error) error {
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		err = fmt.Errorf("%w: send to rank %d: %v", comm.ErrTimeout, to, err)
	} else {
		err = fmt.Errorf("%w: send to rank %d: %v", comm.ErrPeerDead, to, err)
	}
	p.engine.failPeer(to, err)
	if conn := p.conns[to]; conn != nil {
		conn.Close()
	}
	return err
}

// sendReq is an eagerly-completed send request: Send returns once the
// frame is written to the socket (the kernel buffers it), matching the
// eager-send semantics of the other transports.
type sendReq struct {
	n   int
	err error
}

func (r *sendReq) Wait() error { return r.err }
func (r *sendReq) Len() int    { return r.n }

// Test implements comm.Tester: the frame was written at post time.
func (r *sendReq) Test() (bool, error) { return true, r.err }

// Isend implements comm.Comm. The write happens synchronously (kernel
// socket buffers provide the eager behaviour), so the returned request is
// already complete.
func (p *Proc) Isend(to int, tag comm.Tag, buf []byte) (comm.Request, error) {
	return p.isend(to, tag, buf, time.Duration(p.opTimeout.Load()))
}

func (p *Proc) isend(to int, tag comm.Tag, buf []byte, d time.Duration) (comm.Request, error) {
	if err := p.send(to, tag, buf, d); err != nil {
		return nil, err
	}
	return &sendReq{n: len(buf)}, nil
}

// Irecv implements comm.Comm.
func (p *Proc) Irecv(from int, tag comm.Tag, buf []byte) (comm.Request, error) {
	return p.irecv(from, tag, buf, time.Duration(p.opTimeout.Load()))
}

// irecv is Irecv with the per-op deadline made explicit (captured at post
// time, exactly as Irecv captures the Proc-wide one).
func (p *Proc) irecv(from int, tag comm.Tag, buf []byte, d time.Duration) (comm.Request, error) {
	if err := comm.CheckPeer(p.rank, from, p.size); err != nil {
		return nil, err
	}
	pr, err := p.engine.post(from, tag, buf)
	if err != nil {
		return nil, err
	}
	return &tcpRecvReq{pr: pr, e: p.engine, key: engineKey{from, tag}, timeout: d}, nil
}

// Recv implements comm.Comm.
func (p *Proc) Recv(from int, tag comm.Tag, buf []byte) (int, error) {
	return p.recv(from, tag, buf, time.Duration(p.opTimeout.Load()))
}

func (p *Proc) recv(from int, tag comm.Tag, buf []byte, d time.Duration) (int, error) {
	req, err := p.irecv(from, tag, buf, d)
	if err != nil {
		return 0, err
	}
	if err := req.Wait(); err != nil {
		return 0, err
	}
	return req.Len(), nil
}

// Close tears down all connections.
func (p *Proc) Close() error {
	p.closeOnce.Do(func() {
		close(p.hbStop)
		p.hbWG.Wait()
		for _, c := range p.conns {
			if c != nil {
				c.Close()
			}
		}
		p.engine.fail(comm.ErrClosed)
	})
	return p.closeErr
}

// engine is the (source, tag) FIFO matching engine shared with the mem
// transport's semantics. Failures are tracked per peer so one peer's
// orderly shutdown does not poison receives still pending from others.
type engine struct {
	mu         sync.Mutex
	unexpected map[engineKey][][]byte
	posted     map[engineKey][]*tcpRecv
	peerErr    map[int]error
	closed     error
}

type engineKey struct {
	src int
	tag comm.Tag
}

type tcpRecv struct {
	buf  []byte
	done chan struct{}
	n    int
	err  error
}

func (r *tcpRecv) wait() error {
	<-r.done
	return r.err
}

// tcpRecvReq is the comm.Request handle of a posted receive, carrying the
// per-op timeout captured at post time.
type tcpRecvReq struct {
	pr      *tcpRecv
	e       *engine
	key     engineKey
	timeout time.Duration
}

func (r *tcpRecvReq) Wait() error {
	if r.timeout <= 0 {
		return r.pr.wait()
	}
	timer := time.NewTimer(r.timeout)
	defer timer.Stop()
	select {
	case <-r.pr.done:
		return r.pr.err
	case <-timer.C:
		terr := fmt.Errorf("%w: no message from rank %d tag %d within %v",
			comm.ErrTimeout, r.key.src, r.key.tag, r.timeout)
		if r.e.cancel(r.key, r.pr, terr) {
			return terr
		}
		return r.pr.wait()
	}
}

func (r *tcpRecvReq) Len() int { return r.pr.n }

// Test implements comm.Tester: a nonblocking completion poll.
func (r *tcpRecvReq) Test() (bool, error) {
	select {
	case <-r.pr.done:
		return true, r.pr.err
	default:
		return false, nil
	}
}

func newEngine() *engine {
	return &engine{
		unexpected: make(map[engineKey][][]byte),
		posted:     make(map[engineKey][]*tcpRecv),
		peerErr:    make(map[int]error),
	}
}

// deliver hands an inbound payload — a pool-owned buffer — to its matching
// receive, or parks it on the unexpected queue. The engine owns the buffer
// from here: it is recycled once copied into a receive (or dropped).
func (e *engine) deliver(src int, tag comm.Tag, payload []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed != nil || e.peerErr[src] != nil {
		scratch.Put(payload)
		return
	}
	key := engineKey{src, tag}
	if prs := e.posted[key]; len(prs) > 0 {
		pr := prs[0]
		if len(prs) == 1 {
			delete(e.posted, key)
		} else {
			e.posted[key] = prs[1:]
		}
		pr.complete(payload)
		scratch.Put(payload)
		return
	}
	e.unexpected[key] = append(e.unexpected[key], payload)
}

func (pr *tcpRecv) complete(payload []byte) {
	if len(payload) > len(pr.buf) {
		pr.err = fmt.Errorf("%w: have %d bytes, message is %d",
			comm.ErrTruncated, len(pr.buf), len(payload))
	} else {
		copy(pr.buf, payload)
		pr.n = len(payload)
	}
	close(pr.done)
}

func (e *engine) post(src int, tag comm.Tag, buf []byte) (*tcpRecv, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed != nil {
		return nil, e.closed
	}
	pr := &tcpRecv{buf: buf, done: make(chan struct{})}
	key := engineKey{src, tag}
	// Already-buffered messages are deliverable even if the peer has since
	// disconnected (TCP flushed them before the close).
	if msgs := e.unexpected[key]; len(msgs) > 0 {
		m := msgs[0]
		if len(msgs) == 1 {
			delete(e.unexpected, key)
		} else {
			e.unexpected[key] = msgs[1:]
		}
		pr.complete(m)
		scratch.Put(m)
		return pr, nil
	}
	if err := e.peerErr[src]; err != nil {
		return nil, err
	}
	e.posted[key] = append(e.posted[key], pr)
	return pr, nil
}

// cancel removes a still-pending posted receive and fails it with err,
// reporting false when it already completed concurrently.
func (e *engine) cancel(key engineKey, pr *tcpRecv, err error) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	prs := e.posted[key]
	for i, q := range prs {
		if q != pr {
			continue
		}
		if len(prs) == 1 {
			delete(e.posted, key)
		} else {
			e.posted[key] = append(prs[:i:i], prs[i+1:]...)
		}
		pr.err = err
		close(pr.done)
		return true
	}
	return false
}

// peerError returns the recorded failure of a peer (nil while healthy).
func (e *engine) peerError(peer int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed != nil {
		return e.closed
	}
	return e.peerErr[peer]
}

// peerFailed reports whether a peer has a recorded failure.
func (e *engine) peerFailed(peer int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.peerErr[peer] != nil
}

// failedPeers lists peers with recorded failures.
func (e *engine) failedPeers() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []int
	for peer := range e.peerErr {
		out = append(out, peer)
	}
	return out
}

// purgeTags drops buffered messages with tags in [lo, hi) and cancels
// receives still posted there with ErrTimeout (the quiesce of a retired
// collective epoch).
func (e *engine) purgeTags(lo, hi comm.Tag) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for key, msgs := range e.unexpected {
		if key.tag >= lo && key.tag < hi {
			for _, m := range msgs {
				scratch.Put(m)
			}
			delete(e.unexpected, key)
		}
	}
	for key, prs := range e.posted {
		if key.tag < lo || key.tag >= hi {
			continue
		}
		for _, pr := range prs {
			pr.err = fmt.Errorf("%w: receive purged with its tag window", comm.ErrTimeout)
			close(pr.done)
		}
		delete(e.posted, key)
	}
}

// failPeer marks one peer dead: receives pending on that peer error out,
// and future posts for it fail, but traffic with other peers continues.
func (e *engine) failPeer(peer int, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed != nil || e.peerErr[peer] != nil {
		return
	}
	e.peerErr[peer] = err
	for key, prs := range e.posted {
		if key.src != peer {
			continue
		}
		for _, pr := range prs {
			pr.err = err
			close(pr.done)
		}
		delete(e.posted, key)
	}
}

// fail poisons the whole engine (local Close): all pending and future
// receives error.
func (e *engine) fail(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed != nil {
		return
	}
	if errors.Is(err, io.EOF) {
		err = comm.ErrClosed
	}
	e.closed = err
	for key, prs := range e.posted {
		for _, pr := range prs {
			pr.err = err
			close(pr.done)
		}
		delete(e.posted, key)
	}
}
