// Package tcp implements comm.Comm across OS processes connected by TCP —
// the multi-process substrate behind cmd/gcarun. Rank 0 listens; every
// other rank dials it, learns the full address list, then the ranks build
// a full mesh (rank i dials rank j for i > j). Messages are framed as
// (src, tag, length, payload) and demultiplexed into the same
// (source, tag) FIFO matching engine semantics as the in-memory transport.
//
// Fault tolerance: after rendezvous every connection carries periodic
// heartbeat frames, and a per-peer liveness monitor marks a silent peer
// dead (comm.ErrPeerDead) — so a crashed rank is detected even when no
// data traffic touches it. Per-operation deadlines (comm.Deadliner) bound
// every blocking Send and Recv, surfacing comm.ErrTimeout instead of
// hanging on a dead or wedged peer; before this, connections cleared
// their deadlines after rendezvous and a crashed peer could block
// Send/Recv forever.
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	scratch "exacoll/internal/buf"
	"exacoll/internal/comm"
	"exacoll/internal/transport/match"
)

// frame header: src(4) tag(4) len(4).
const headerSize = 12

// wire protocol version for the rendezvous handshake. Version 3 re-keys
// rendezvous by epoch: the hello carries a kind (world-member vs join
// request) and the epoch the dialer wants to rendezvous at, and every
// reply starts with a status word — the pieces elastic membership needs
// (see anchor.go).
const protoVersion = 3

// hbTag is the reserved tag value of a heartbeat frame (never a valid
// comm.Tag, which is non-negative in practice: collective and user tags
// are all >= 0).
const hbTag = ^uint32(0)

// Options configures Dial/Listen.
type Options struct {
	// Timeout bounds the whole rendezvous (default 30s).
	Timeout time.Duration
	// Heartbeat is the interval between liveness frames on every
	// connection. 0 selects the default (500ms); a negative value
	// disables heartbeats and the liveness monitor entirely.
	Heartbeat time.Duration
	// SuspectAfter is how long a peer may stay silent (no data frames, no
	// heartbeats) before the monitor declares it dead. 0 selects the
	// default (4 × Heartbeat). Ignored when heartbeats are disabled.
	SuspectAfter time.Duration
	// Epoch keys the rendezvous: every member of one world formation must
	// present the same epoch, and an Anchor parks hellos per epoch so the
	// worlds of successive membership changes can never mix (a straggling
	// dial from a retired epoch is answered with a wrong-epoch status
	// instead of wedging the mesh). 0 — the default — is the first world.
	Epoch uint64
	// AdmitDeadline bounds how long a world hello may stay parked at an
	// anchor before it is bounced with a retryable status (the admitted
	// joiner whose formation never ran, the survivor of an aborted
	// transition). 0 selects the default (2 × Timeout); a negative value
	// disables the deadline. Epochs with a formation in flight are exempt.
	AdmitDeadline time.Duration
	// Hook, when non-nil, is consulted at every rendezvous/join/admission
	// protocol boundary before the step executes; a non-nil return aborts
	// the step with that error. The chaos layer's injection point —
	// production configurations leave it nil.
	Hook FaultHook
	// Dialer replaces net.DialTimeout for every outbound rendezvous and
	// mesh dial, so connection-level fault injectors (transport/faulty's
	// Net) can refuse, reset, partition, or throttle real TCP links.
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
	// Stripes opens N parallel connections per peer and stripes large
	// sends across them (see tcp_stripe.go) — the multi-port NIC model of
	// the paper made concrete: aggregate bandwidth scales with connection
	// count, and Locality.Ports reports it so tuning picks k ≈ #ports.
	// 0 or 1 is the classic single-connection wire protocol; every member
	// of a world must present the same value. Clamped to 16.
	Stripes int
	// StripeThreshold is the smallest payload that is split across
	// stripes; smaller messages travel whole on stripe 0 (in order, low
	// latency). 0 selects the default (64 KiB). Only meaningful when
	// Stripes > 1.
	StripeThreshold int
	// Ports is an alias for Stripes kept for callers that think in the
	// paper's vocabulary; when both are set Stripes wins.
	Ports int
}

func (o Options) timeout() time.Duration {
	if o.Timeout == 0 {
		return 30 * time.Second
	}
	return o.Timeout
}

func (o Options) heartbeat() time.Duration {
	if o.Heartbeat == 0 {
		return 500 * time.Millisecond
	}
	if o.Heartbeat < 0 {
		return 0
	}
	return o.Heartbeat
}

func (o Options) suspectAfter() time.Duration {
	hb := o.heartbeat()
	if hb == 0 {
		return 0
	}
	if o.SuspectAfter > 0 {
		return o.SuspectAfter
	}
	return 4 * hb
}

func (o Options) admitDeadline() time.Duration {
	if o.AdmitDeadline < 0 {
		return 0
	}
	if o.AdmitDeadline == 0 {
		return 2 * o.timeout()
	}
	return o.AdmitDeadline
}

func (o Options) stripes() int {
	s := o.Stripes
	if s < 1 {
		s = o.Ports
	}
	if s < 1 {
		return 1
	}
	if s > 16 {
		return 16
	}
	return s
}

func (o Options) stripeThreshold() int {
	if o.StripeThreshold > 0 {
		return o.StripeThreshold
	}
	return 64 << 10
}

// Proc is one rank's endpoint in a TCP world. It implements comm.Comm,
// comm.Deadliner, comm.FailureDetector, and comm.Purger.
type Proc struct {
	rank  int
	size  int
	conns []net.Conn // conns[peer] (stripe 0), nil at self

	engine *match.Engine

	sendMu []sync.Mutex // per-peer stripe-0 write locks

	// Striping state (tcp_stripe.go); empty when stripes == 1.
	stripes     int
	stripeThres int
	sconns      [][]net.Conn   // sconns[peer][s-1] is stripe s of a peer
	ssendMu     [][]sync.Mutex // matching write locks
	txSeq       []atomic.Uint32
	rx          []rxReasm

	opTimeout atomic.Int64   // per-op deadline in nanoseconds; 0 = unbounded
	lastSeen  []atomic.Int64 // unix nanos of the last frame from each peer
	hbStop    chan struct{}
	hbWG      sync.WaitGroup

	// Host-keyed locality, derived once during rendezvous from the same
	// address list every rank already receives (no extra wire traffic):
	// ranks whose mesh listeners share a host string share a node.
	nodeOf  []int        // rank -> node id (first-appearance order), nil if unknown
	localOf []int        // rank -> index among its host's ranks
	ppn     int          // max ranks per host
	synPPN  atomic.Int64 // SetLocality override: contiguous blocks of ppn
	synPort atomic.Int64

	closeOnce sync.Once
	closeErr  error
}

// newProc allocates an unconnected endpoint of a p-rank world.
func newProc(rank, p int, opts Options) *Proc {
	pr := &Proc{
		rank:        rank,
		size:        p,
		conns:       make([]net.Conn, p),
		engine:      match.New(),
		sendMu:      make([]sync.Mutex, p),
		stripes:     opts.stripes(),
		stripeThres: opts.stripeThreshold(),
		lastSeen:    make([]atomic.Int64, p),
		hbStop:      make(chan struct{}),
	}
	if p == 1 {
		pr.stripes = 1
	}
	if pr.stripes > 1 {
		pr.sconns = make([][]net.Conn, p)
		pr.ssendMu = make([][]sync.Mutex, p)
		pr.txSeq = make([]atomic.Uint32, p)
		pr.rx = make([]rxReasm, p)
		for peer := 0; peer < p; peer++ {
			if peer == rank {
				continue
			}
			pr.sconns[peer] = make([]net.Conn, pr.stripes-1)
			pr.ssendMu[peer] = make([]sync.Mutex, pr.stripes-1)
			pr.rx[peer].pend = make(map[uint32]*pendMsg)
		}
	}
	return pr
}

// startLoops launches the demultiplexing readers and the liveness
// machinery once every mesh connection is in place.
func (p *Proc) startLoops(opts Options) {
	now := time.Now().UnixNano()
	for peer, conn := range p.conns {
		if conn == nil {
			continue
		}
		p.lastSeen[peer].Store(now)
		if p.stripes > 1 {
			go p.readLoopStriped(peer, conn)
			for _, sc := range p.sconns[peer] {
				go p.readLoopStriped(peer, sc)
			}
		} else {
			go p.readLoop(peer, conn)
		}
	}
	if hb := opts.heartbeat(); hb > 0 {
		p.hbWG.Add(2)
		go p.heartbeatLoop(hb)
		go p.monitorLoop(hb, opts.suspectAfter())
	}
}

// Rendezvous establishes the world. Rank 0 must call with listenAddr
// (e.g. "127.0.0.1:7777"); other ranks pass the same address they dial.
// Every rank must know p and its own rank (as mpirun would provide), and
// all ranks must present the same opts.Epoch.
//
// Rank 0's listener lives only for this one formation. A long-lived
// coordinator that can also field join requests between formations — what
// elastic membership needs — is an Anchor (NewAnchor + Anchor.Rendezvous),
// which this function wraps for the one-shot case.
func Rendezvous(rank, p int, addr string, opts Options) (*Proc, error) {
	if p < 1 || rank < 0 || rank >= p {
		return nil, fmt.Errorf("tcp: bad rank/size %d/%d", rank, p)
	}
	if rank == 0 {
		if p == 1 {
			proc := newProc(0, 1, opts)
			proc.keyHosts([]string{hostOf(addr)})
			return proc, nil
		}
		a, err := NewAnchor(addr, 0, opts)
		if err != nil {
			return nil, err
		}
		defer a.Close()
		return a.Rendezvous(p, opts.Epoch)
	}
	proc := newProc(rank, p, opts)
	if err := proc.join(addr, opts, time.Now().Add(opts.timeout())); err != nil {
		proc.closeConns()
		return nil, err
	}
	proc.startLoops(opts)
	return proc, nil
}

// closeConns tears down whatever connections a failed join left behind,
// so an aborted formation leaks no sockets.
func (p *Proc) closeConns() {
	for _, c := range p.conns {
		if c != nil {
			c.Close()
		}
	}
	for _, scs := range p.sconns {
		for _, c := range scs {
			if c != nil {
				c.Close()
			}
		}
	}
}

// join is a non-zero rank's rendezvous: open a mesh listener, dial the
// coordinator, send a world hello (version, kind, rank, epoch, mesh
// address), read the status + address list, then dial every lower-ranked
// peer and accept every higher-ranked one. Every dial backs off with
// jitter until the deadline, and every protocol boundary consults the
// fault hook, so a chaos sweep can fail the formation at any point.
func (p *Proc) join(addr string, opts Options, deadline time.Time) error {
	epoch := opts.Epoch
	// The coordinator handshake retries through connection-level failure
	// (handshake drops, resets before the address list) until the
	// deadline: a redial re-parks an identical hello and the anchor's
	// dup-replace keeps that idempotent. Protocol answers — wrong-epoch,
	// busy, bounce — and injected hook faults return immediately.
	var conn0 net.Conn
	var mesh net.Listener
	var addrs []string
	var stripe0Addr string
	for attempt := 0; ; attempt++ {
		if err := opts.step("rv.dial", epoch, p.rank, 0); err != nil {
			return err
		}
		c, err := opts.dialRetry(addr, deadline)
		if err != nil {
			return fmt.Errorf("tcp: dial rank 0: %w", err)
		}
		// Bind the mesh listener on the interface that reaches rank 0, so
		// the advertised address works across hosts and carries the host
		// string that locality keying groups ranks by (on one host this is
		// the loopback address, exactly as before).
		if mesh == nil {
			mesh, err = net.Listen("tcp", net.JoinHostPort(hostOf(c.LocalAddr().String()), "0"))
			if err != nil {
				c.Close()
				return fmt.Errorf("tcp: mesh listen: %w", err)
			}
			defer mesh.Close()
		}
		addrs, stripe0Addr, err = p.anchorHandshake(c, mesh.Addr().String(), opts, deadline)
		if err == nil {
			conn0 = c
			break
		}
		c.Close()
		if isHookErr(err) || errors.Is(err, ErrWrongEpoch) ||
			errors.Is(err, ErrBusy) || errors.Is(err, ErrBounced) {
			return err
		}
		if time.Until(deadline) <= 0 {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				// Parked at the anchor until the formation deadline ran out:
				// the formation stalled on some other rank (which is failing
				// its own rendezvous) and the anchor is aborting this epoch.
				// Transient — the caller retries the membership change.
				return fmt.Errorf("%w: rendezvous reply: %v", comm.ErrTimeout, err)
			}
			return err
		}
		if d := backoffDelay(attempt); d > 0 {
			time.Sleep(d)
		}
	}
	p.conns[0] = conn0

	// Mesh: dial lower ranks (1..rank-1), accept higher ranks. Each mesh
	// connection starts with the dialer's rank (4 bytes) — or, when the
	// world stripes, (rank, stripe) as 8 bytes, and each peer pair builds
	// one connection per stripe. A duplicate dial from a (rank, stripe)
	// that is already connected replaces the earlier connection (the
	// dialer gave up on it — keeping the stale socket would wedge the
	// mesh), so reconnect during formation is idempotent.
	var wg sync.WaitGroup
	var acceptErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for remaining := (p.size - 1 - p.rank) * p.stripes; remaining > 0; {
			if tl, ok := mesh.(*net.TCPListener); ok {
				tl.SetDeadline(deadline)
			}
			if err := opts.step("rv.mesh.accept", epoch, p.rank, -1); err != nil {
				acceptErr = err
				return
			}
			conn, err := mesh.Accept()
			if err != nil {
				acceptErr = err
				return
			}
			conn.SetDeadline(deadline)
			r, s, err := p.readMeshHello(conn)
			if err != nil {
				// An inbound connection that died before delivering its rank
				// header (a handshake-dropped or reset dial) is the dialer's
				// problem — it will redial. Keep accepting.
				conn.Close()
				continue
			}
			if r <= p.rank || r >= p.size || s < 0 || s >= p.stripes {
				acceptErr = fmt.Errorf("tcp: bad mesh dialer rank %d stripe %d", r, s)
				conn.Close()
				return
			}
			slot := p.stripeSlot(r, s)
			if old := *slot; old != nil {
				old.Close()
			} else {
				remaining--
			}
			conn.SetDeadline(time.Time{})
			*slot = conn
		}
	}()
	// On any dial-side failure the accept goroutine must be stopped before
	// returning — it writes p.conns, which the caller tears down on error.
	// Closing the listener wakes Accept; a conn mid-header is bounded by its
	// own deadline.
	meshFail := func(err error) error {
		mesh.Close()
		wg.Wait()
		return err
	}
	for r := 1; r < p.rank; r++ {
		if err := opts.step("rv.mesh.dial", epoch, p.rank, r); err != nil {
			return meshFail(err)
		}
		for s := 0; s < p.stripes; s++ {
			if err := p.dialMeshStripe(addrs[r], r, s, opts, deadline); err != nil {
				return meshFail(err)
			}
		}
	}
	// Extra stripes to rank 0 dial its dedicated stripe listener (the
	// stripe-0 connection to rank 0 is the rendezvous connection itself).
	for s := 1; s < p.stripes; s++ {
		if err := p.dialMeshStripe(stripe0Addr, 0, s, opts, deadline); err != nil {
			return meshFail(err)
		}
	}
	wg.Wait()
	if acceptErr != nil {
		var nerr net.Error
		if errors.As(acceptErr, &nerr) && nerr.Timeout() {
			// A higher rank never dialed in before the deadline: the
			// formation is transient roadkill (that rank is failing its own
			// rendezvous), so classify it as a timeout the caller may retry.
			return fmt.Errorf("%w: mesh accept: %v", comm.ErrTimeout, acceptErr)
		}
		return fmt.Errorf("tcp: mesh accept: %w", acceptErr)
	}
	// Key locality from the circulated address list, mirroring what the
	// anchor computes for rank 0: the mesh addresses carry every member's
	// host, and rank 0's host is the anchor address the caller dialed.
	hosts := make([]string, p.size)
	hosts[0] = hostOf(addr)
	for r := 1; r < p.size; r++ {
		hosts[r] = hostOf(addrs[r])
	}
	p.keyHosts(hosts)
	return nil
}

// anchorHandshake runs one attempt of the coordinator exchange on an
// established connection: hello out, status and address list back. When
// the world stripes, one extra address follows the list — rank 0's
// stripe listener (both sides key this on their own Options.Stripes,
// which every member of a world must agree on).
func (p *Proc) anchorHandshake(conn0 net.Conn, meshAddr string, opts Options, deadline time.Time) ([]string, string, error) {
	epoch := opts.Epoch
	conn0.SetDeadline(deadline)
	if err := opts.step("rv.hello", epoch, p.rank, 0); err != nil {
		return nil, "", err
	}
	if err := writeHello(conn0, helloWorld, p.rank, epoch, meshAddr); err != nil {
		return nil, "", fmt.Errorf("tcp: hello: %w", err)
	}
	if err := opts.step("rv.status", epoch, p.rank, 0); err != nil {
		return nil, "", err
	}
	if err := readStatus(conn0, epoch); err != nil {
		return nil, "", err
	}
	if err := opts.step("rv.addrs", epoch, p.rank, 0); err != nil {
		return nil, "", err
	}
	readAddr := func() (string, error) {
		var l [4]byte
		if _, err := io.ReadFull(conn0, l[:]); err != nil {
			return "", fmt.Errorf("tcp: address list: %w", err)
		}
		ab := make([]byte, binary.LittleEndian.Uint32(l[:]))
		if _, err := io.ReadFull(conn0, ab); err != nil {
			return "", fmt.Errorf("tcp: address list: %w", err)
		}
		return string(ab), nil
	}
	addrs := make([]string, p.size) // addrs[0] unused
	for r := 1; r < p.size; r++ {
		a, err := readAddr()
		if err != nil {
			return nil, "", err
		}
		addrs[r] = a
	}
	var stripe0Addr string
	if p.stripes > 1 {
		a, err := readAddr()
		if err != nil {
			return nil, "", err
		}
		stripe0Addr = a
	}
	conn0.SetDeadline(time.Time{})
	return addrs, stripe0Addr, nil
}

// heartbeatLoop sends one liveness frame per interval on every connection
// until Close. Heartbeats share each connection's write lock with data
// frames, so they also double as a probe: a send-side failure surfaces as
// failPeer long before the peer's silence would.
func (p *Proc) heartbeatLoop(interval time.Duration) {
	defer p.hbWG.Done()
	// Heartbeats ride stripe 0 only; in a striped world they wear the
	// striped header (same size as data frames, tag = hbTag).
	hn := headerSize
	if p.stripes > 1 {
		hn = stripedHeaderSize
	}
	hdr := make([]byte, hn)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(p.rank))
	binary.LittleEndian.PutUint32(hdr[4:], hbTag)
	binary.LittleEndian.PutUint32(hdr[8:], 0)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.hbStop:
			return
		case <-ticker.C:
		}
		for peer := range p.conns {
			if peer == p.rank || p.engine.PeerFailed(peer) {
				continue
			}
			p.sendMu[peer].Lock()
			conn := p.conns[peer]
			if conn != nil {
				conn.SetWriteDeadline(time.Now().Add(interval * 2))
				if _, err := conn.Write(hdr); err != nil {
					p.failPeerConn(peer, fmt.Errorf("%w: rank %d heartbeat write: %v", comm.ErrPeerDead, peer, err))
				}
			}
			p.sendMu[peer].Unlock()
		}
	}
}

// monitorLoop declares a peer dead when nothing (data or heartbeat) has
// arrived from it for suspectAfter.
func (p *Proc) monitorLoop(interval, suspectAfter time.Duration) {
	defer p.hbWG.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.hbStop:
			return
		case <-ticker.C:
		}
		now := time.Now().UnixNano()
		for peer := range p.conns {
			if peer == p.rank || p.conns[peer] == nil || p.engine.PeerFailed(peer) {
				continue
			}
			if now-p.lastSeen[peer].Load() > int64(suspectAfter) {
				p.failPeerConn(peer, fmt.Errorf("%w: rank %d silent for %v", comm.ErrPeerDead, peer, suspectAfter))
			}
		}
	}
}

// failPeerConn records a peer failure and closes its connections (all
// stripes — one corrupt or dead stripe condemns the peer) so any reader
// or writer blocked on them wakes immediately.
func (p *Proc) failPeerConn(peer int, err error) {
	p.engine.FailPeer(peer, err)
	if conn := p.conns[peer]; conn != nil {
		conn.Close()
	}
	if p.sconns != nil {
		for _, sc := range p.sconns[peer] {
			if sc != nil {
				sc.Close()
			}
		}
	}
}

// readLoop demultiplexes inbound frames from one peer into the matching
// engine.
func (p *Proc) readLoop(peer int, conn net.Conn) {
	for {
		var hdr [headerSize]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			p.engine.FailPeer(peer, peerDeadErr(peer, err))
			return
		}
		p.lastSeen[peer].Store(time.Now().UnixNano())
		src := int(binary.LittleEndian.Uint32(hdr[0:]))
		rawTag := binary.LittleEndian.Uint32(hdr[4:])
		n := int(binary.LittleEndian.Uint32(hdr[8:]))
		if rawTag == hbTag && src == peer && n == 0 {
			continue // liveness frame; lastSeen already updated
		}
		tag := comm.Tag(rawTag)
		if src != peer || n < 0 || n > 1<<30 {
			p.engine.FailPeer(peer, fmt.Errorf("tcp: bad frame from %d (src %d, len %d)", peer, src, n))
			return
		}
		payload := scratch.Get(n)
		if _, err := io.ReadFull(conn, payload); err != nil {
			scratch.Put(payload)
			p.engine.FailPeer(peer, peerDeadErr(peer, err))
			return
		}
		p.engine.Deliver(src, tag, payload)
	}
}

// peerDeadErr classifies a connection-level read/write failure: the remote
// end of this link is gone (process exit, reset, or our monitor closed the
// socket after silence), so it reports comm.ErrPeerDead.
func peerDeadErr(peer int, err error) error {
	return fmt.Errorf("%w: rank %d connection: %v", comm.ErrPeerDead, peer, err)
}

// Rank implements comm.Comm.
func (p *Proc) Rank() int { return p.rank }

// Size implements comm.Comm.
func (p *Proc) Size() int { return p.size }

// ChargeCompute implements comm.Comm (no-op on a real transport).
func (p *Proc) ChargeCompute(int) {}

// SetOpTimeout implements comm.Deadliner: each subsequent blocking Send,
// Recv, or receive Wait is bounded by d (0 restores unbounded blocking).
func (p *Proc) SetOpTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.opTimeout.Store(int64(d))
}

// Failed implements comm.FailureDetector: peers whose connection dropped,
// whose heartbeats stopped, or that sent garbage, in ascending order.
func (p *Proc) Failed() []int {
	failed := p.engine.FailedPeers()
	sort.Ints(failed)
	return failed
}

// PurgeTags implements comm.Purger.
func (p *Proc) PurgeTags(lo, hi comm.Tag) { p.engine.PurgeTags(lo, hi) }

// hostOf extracts the host part of a listen address, falling back to the
// whole string when it has no port (so equal strings still key together).
func hostOf(s string) string {
	host, _, err := net.SplitHostPort(s)
	if err != nil {
		return s
	}
	return host
}

// keyHosts derives the locality tables from the per-rank host strings that
// rendezvous already circulates: node ids in first-appearance order, local
// ranks by ascending world rank within a host, and PPN as the maximum
// ranks on any host. Every rank computes the same tables from the same
// list, so no extra agreement round is needed.
func (p *Proc) keyHosts(hosts []string) {
	nodeID := make(map[string]int)
	count := make(map[string]int)
	p.nodeOf = make([]int, len(hosts))
	p.localOf = make([]int, len(hosts))
	p.ppn = 0
	for r, h := range hosts {
		id, ok := nodeID[h]
		if !ok {
			id = len(nodeID)
			nodeID[h] = id
		}
		p.nodeOf[r] = id
		p.localOf[r] = count[h]
		count[h]++
		if count[h] > p.ppn {
			p.ppn = count[h]
		}
	}
}

// SetLocality overrides host-keyed locality with a synthetic contiguous
// layout (ranks [i*ppn, (i+1)*ppn) share node i) — the single-host analogue
// of launching one rank block per node, for exercising hierarchical
// collectives when every process really lives on one machine. ppn < 1
// withdraws the override and restores host-keyed data.
func (p *Proc) SetLocality(ppn, ports int) {
	if ppn < 1 {
		ppn = 0
	}
	p.synPPN.Store(int64(ppn))
	p.synPort.Store(int64(ports))
}

// Locality implements comm.Locator. A synthetic SetLocality override wins;
// otherwise the host-keyed tables derived during rendezvous answer. Ports
// is unknown to this transport unless the override supplies it.
func (p *Proc) Locality(rank int) (comm.Locality, bool) {
	if rank < 0 || rank >= p.size {
		return comm.Locality{}, false
	}
	// A synthetic SetLocality port count wins; otherwise a striped world
	// reports its stripe count — the transport's real parallel-connection
	// fan-out, which is exactly what the tuning model means by "ports".
	ports := int(p.synPort.Load())
	if ports == 0 && p.stripes > 1 {
		ports = p.stripes
	}
	if ppn := int(p.synPPN.Load()); ppn >= 1 {
		if ppn > p.size {
			ppn = p.size
		}
		return comm.Locality{
			Node:      rank / ppn,
			LocalRank: rank % ppn,
			PPN:       ppn,
			Ports:     ports,
		}, true
	}
	if p.nodeOf == nil {
		return comm.Locality{}, false
	}
	return comm.Locality{
		Node:      p.nodeOf[rank],
		LocalRank: p.localOf[rank],
		PPN:       p.ppn,
		Ports:     ports,
	}, true
}

// coalesceMax bounds the payload size that Send folds into the header's
// frame buffer: one pooled copy trades for one fewer socket write, which
// wins on the latency-bound small-message path and loses past tens of KiB.
const coalesceMax = 16 << 10

// Send implements comm.Comm. With a per-op timeout configured the socket
// write is bounded: a peer that stopped draining (dead but connection
// half-open, kernel buffer full) surfaces comm.ErrTimeout instead of
// blocking forever. The frame header (and, for small messages, the
// payload) is staged in a pooled buffer; the write is synchronous, so the
// buffer is quiescent on every return path.
func (p *Proc) Send(to int, tag comm.Tag, buf []byte) error {
	return p.send(to, tag, buf, time.Duration(p.opTimeout.Load()))
}

// send is Send with the deadline made explicit, so pooled handles
// (Shared) can carry per-handle timeouts over one shared Proc.
func (p *Proc) send(to int, tag comm.Tag, buf []byte, d time.Duration) error {
	if err := comm.CheckPeer(p.rank, to, p.size); err != nil {
		return err
	}
	if p.stripes > 1 {
		return p.sendStriped(to, tag, buf, d)
	}
	fn := headerSize
	if len(buf) <= coalesceMax {
		fn += len(buf)
	}
	frame := scratch.Get(fn)
	defer scratch.Put(frame)
	copy(frame[headerSize:], buf)
	binary.LittleEndian.PutUint32(frame[0:], uint32(p.rank))
	binary.LittleEndian.PutUint32(frame[4:], uint32(tag))
	binary.LittleEndian.PutUint32(frame[8:], uint32(len(buf)))
	p.sendMu[to].Lock()
	defer p.sendMu[to].Unlock()
	if err := p.engine.PeerError(to); err != nil {
		return err
	}
	conn := p.conns[to]
	if conn == nil {
		return comm.ErrClosed
	}
	if d > 0 {
		conn.SetWriteDeadline(time.Now().Add(d))
	} else {
		conn.SetWriteDeadline(time.Time{})
	}
	if _, err := conn.Write(frame); err != nil {
		return p.sendError(to, err)
	}
	if len(frame) == headerSize && len(buf) > 0 {
		if _, err := conn.Write(buf); err != nil {
			return p.sendError(to, err)
		}
	}
	return nil
}

// sendError classifies a failed frame write. The frame may be partially
// written, so the connection's stream is corrupt either way: the peer is
// marked failed and its connections closed.
func (p *Proc) sendError(to int, err error) error {
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		err = fmt.Errorf("%w: send to rank %d: %v", comm.ErrTimeout, to, err)
	} else {
		err = fmt.Errorf("%w: send to rank %d: %v", comm.ErrPeerDead, to, err)
	}
	p.failPeerConn(to, err)
	return err
}

// sendReq is an eagerly-completed send request: Send returns once the
// frame is written to the socket (the kernel buffers it), matching the
// eager-send semantics of the other transports.
type sendReq struct {
	n   int
	err error
}

func (r *sendReq) Wait() error { return r.err }
func (r *sendReq) Len() int    { return r.n }

// Test implements comm.Tester: the frame was written at post time.
func (r *sendReq) Test() (bool, error) { return true, r.err }

// Isend implements comm.Comm. The write happens synchronously (kernel
// socket buffers provide the eager behaviour), so the returned request is
// already complete.
func (p *Proc) Isend(to int, tag comm.Tag, buf []byte) (comm.Request, error) {
	return p.isend(to, tag, buf, time.Duration(p.opTimeout.Load()))
}

func (p *Proc) isend(to int, tag comm.Tag, buf []byte, d time.Duration) (comm.Request, error) {
	if err := p.send(to, tag, buf, d); err != nil {
		return nil, err
	}
	return &sendReq{n: len(buf)}, nil
}

// Irecv implements comm.Comm.
func (p *Proc) Irecv(from int, tag comm.Tag, buf []byte) (comm.Request, error) {
	return p.irecv(from, tag, buf, time.Duration(p.opTimeout.Load()))
}

// irecv is Irecv with the per-op deadline made explicit (captured at post
// time, exactly as Irecv captures the Proc-wide one).
func (p *Proc) irecv(from int, tag comm.Tag, buf []byte, d time.Duration) (comm.Request, error) {
	if err := comm.CheckPeer(p.rank, from, p.size); err != nil {
		return nil, err
	}
	pr, err := p.engine.Post(from, tag, buf)
	if err != nil {
		return nil, err
	}
	return p.engine.Request(pr, from, tag, d), nil
}

// Recv implements comm.Comm.
func (p *Proc) Recv(from int, tag comm.Tag, buf []byte) (int, error) {
	return p.recv(from, tag, buf, time.Duration(p.opTimeout.Load()))
}

func (p *Proc) recv(from int, tag comm.Tag, buf []byte, d time.Duration) (int, error) {
	req, err := p.irecv(from, tag, buf, d)
	if err != nil {
		return 0, err
	}
	if err := req.Wait(); err != nil {
		return 0, err
	}
	return req.Len(), nil
}

// Close tears down all connections (all stripes).
func (p *Proc) Close() error {
	p.closeOnce.Do(func() {
		close(p.hbStop)
		p.hbWG.Wait()
		for _, c := range p.conns {
			if c != nil {
				c.Close()
			}
		}
		for _, scs := range p.sconns {
			for _, c := range scs {
				if c != nil {
					c.Close()
				}
			}
		}
		p.engine.Fail(comm.ErrClosed)
	})
	return p.closeErr
}
