package tcp

// Multi-connection striping: with Options.Stripes = S > 1, every peer
// pair holds S parallel TCP connections and large sends are split into S
// contiguous segments written concurrently, one per connection — the
// software analogue of a multi-port NIC, where aggregate bandwidth scales
// with the number of ports and the tuned collective radix should track it
// (k ≈ #ports, the paper's central machine parameter).
//
// Wire format: every frame (heartbeats included) wears a 24-byte header
//
//	src(4) tag(4) msgLen(4) seq(4) off(4) segLen(4)
//
// where seq is a per-(sender, receiver) monotone message counter assigned
// at send time. Independent connections reorder freely, so the receiver
// reassembles segments by seq — scratch-pooled message buffers filled at
// disjoint offsets by concurrent stripe readers, no extra copies — and
// delivers completed messages to the matching engine strictly in seq
// order, which restores the per-(source, tag) FIFO that MPI semantics
// (and the matching engine) require. Messages at or below
// Options.StripeThreshold travel whole on stripe 0: one segment, no
// split, latency unharmed.
//
// Failure is all-or-nothing per peer: any stripe's read or write error
// condemns the peer and closes every stripe (a surviving subset would
// deliver a gapped seq stream, which can never flush).

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	scratch "exacoll/internal/buf"
	"exacoll/internal/comm"
)

// striped frame header: src(4) tag(4) msgLen(4) seq(4) off(4) segLen(4).
const stripedHeaderSize = 24

// pendMsg is one partially-reassembled inbound message.
type pendMsg struct {
	tag  comm.Tag
	buf  []byte // scratch-pooled, len == msgLen; engine-owned once delivered
	got  int    // bytes received so far
	done bool
}

// rxReasm is the per-peer reassembly state shared by that peer's stripe
// readers. Segment socket reads happen outside mu (concurrent readers
// fill disjoint ranges of one message buffer); only the bookkeeping and
// the in-order flush hold it.
type rxReasm struct {
	mu   sync.Mutex
	next uint32 // seq of the next message to deliver
	pend map[uint32]*pendMsg
}

// stripeSlot returns the connection slot of (peer, stripe).
func (p *Proc) stripeSlot(peer, s int) *net.Conn {
	if s == 0 {
		return &p.conns[peer]
	}
	return &p.sconns[peer][s-1]
}

// stripeLock returns the write lock of (peer, stripe).
func (p *Proc) stripeLock(peer, s int) *sync.Mutex {
	if s == 0 {
		return &p.sendMu[peer]
	}
	return &p.ssendMu[peer][s-1]
}

// readMeshHello consumes one inbound mesh identification header: the
// dialer's rank (4 bytes), plus its stripe (4 more) in a striped world.
func (p *Proc) readMeshHello(conn net.Conn) (rank, stripe int, err error) {
	n := 4
	if p.stripes > 1 {
		n = 8
	}
	var hb [8]byte
	if _, err := io.ReadFull(conn, hb[:n]); err != nil {
		return 0, 0, err
	}
	rank = int(binary.LittleEndian.Uint32(hb[0:]))
	if p.stripes > 1 {
		stripe = int(binary.LittleEndian.Uint32(hb[4:]))
	}
	return rank, stripe, nil
}

// dialMeshStripe dials one (peer, stripe) mesh connection, retrying with
// backoff until deadline. Dial + hello form one retried unit: a write
// that fails redials, and the acceptor's dup-replace keeps that
// idempotent.
func (p *Proc) dialMeshStripe(addr string, peer, s int, opts Options, deadline time.Time) error {
	hn := 4
	if p.stripes > 1 {
		hn = 8
	}
	var hb [8]byte
	binary.LittleEndian.PutUint32(hb[0:], uint32(p.rank))
	binary.LittleEndian.PutUint32(hb[4:], uint32(s))
	for attempt := 0; ; attempt++ {
		conn, err := opts.dialRetry(addr, deadline)
		if err != nil {
			return fmt.Errorf("tcp: mesh dial %d stripe %d: %w", peer, s, err)
		}
		_, werr := conn.Write(hb[:hn])
		if werr == nil {
			*p.stripeSlot(peer, s) = conn
			return nil
		}
		conn.Close()
		if time.Until(deadline) <= 0 {
			return fmt.Errorf("tcp: mesh hello to %d stripe %d: %w", peer, s, werr)
		}
		if d := backoffDelay(attempt); d > 0 {
			time.Sleep(d)
		}
	}
}

// sendStriped is the striped-world send path: assign the message its
// per-peer seq, then write it as one segment on stripe 0 (small) or as
// one concurrent segment per stripe (large).
func (p *Proc) sendStriped(to int, tag comm.Tag, buf []byte, d time.Duration) error {
	if err := p.engine.PeerError(to); err != nil {
		return err
	}
	seq := p.txSeq[to].Add(1) - 1
	n := len(buf)
	if n <= p.stripeThres {
		return p.writeSegment(to, 0, tag, seq, uint32(n), 0, buf, d)
	}
	// Split into p.stripes contiguous near-equal segments and write them
	// concurrently; every stripe write is independently deadline-bounded.
	chunk := (n + p.stripes - 1) / p.stripes
	var wg sync.WaitGroup
	errs := make([]error, p.stripes)
	for s := 0; s < p.stripes; s++ {
		off := s * chunk
		if off >= n {
			break
		}
		end := off + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, off, end int) {
			defer wg.Done()
			errs[s] = p.writeSegment(to, s, tag, seq, uint32(n), uint32(off), buf[off:end], d)
		}(s, off, end)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// writeSegment frames and writes one segment on one stripe. Small
// segments coalesce into the pooled header buffer (one socket write);
// the write is synchronous, so the staging buffer is quiescent on every
// return path.
func (p *Proc) writeSegment(to, s int, tag comm.Tag, seq, msgLen, off uint32, seg []byte, d time.Duration) error {
	fn := stripedHeaderSize
	if len(seg) <= coalesceMax {
		fn += len(seg)
	}
	frame := scratch.Get(fn)
	defer scratch.Put(frame)
	copy(frame[stripedHeaderSize:], seg)
	binary.LittleEndian.PutUint32(frame[0:], uint32(p.rank))
	binary.LittleEndian.PutUint32(frame[4:], uint32(tag))
	binary.LittleEndian.PutUint32(frame[8:], msgLen)
	binary.LittleEndian.PutUint32(frame[12:], seq)
	binary.LittleEndian.PutUint32(frame[16:], off)
	binary.LittleEndian.PutUint32(frame[20:], uint32(len(seg)))
	mu := p.stripeLock(to, s)
	mu.Lock()
	defer mu.Unlock()
	if err := p.engine.PeerError(to); err != nil {
		return err
	}
	conn := *p.stripeSlot(to, s)
	if conn == nil {
		return comm.ErrClosed
	}
	if d > 0 {
		conn.SetWriteDeadline(time.Now().Add(d))
	} else {
		conn.SetWriteDeadline(time.Time{})
	}
	if len(frame) == stripedHeaderSize && len(seg) > 0 {
		// writev: header and large payload leave in one syscall without
		// copying the payload through the staging buffer.
		bufs := net.Buffers{frame, seg}
		if _, err := bufs.WriteTo(conn); err != nil {
			return p.sendError(to, err)
		}
		return nil
	}
	if _, err := conn.Write(frame); err != nil {
		return p.sendError(to, err)
	}
	return nil
}

// readLoopStriped demultiplexes one stripe connection of one peer:
// segments land at their offset in the pooled reassembly buffer, and
// completed messages flush to the matching engine in strict seq order.
func (p *Proc) readLoopStriped(peer int, conn net.Conn) {
	rx := &p.rx[peer]
	for {
		var hdr [stripedHeaderSize]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			p.failPeerConn(peer, peerDeadErr(peer, err))
			return
		}
		p.lastSeen[peer].Store(time.Now().UnixNano())
		src := int(binary.LittleEndian.Uint32(hdr[0:]))
		rawTag := binary.LittleEndian.Uint32(hdr[4:])
		msgLen := int(binary.LittleEndian.Uint32(hdr[8:]))
		seq := binary.LittleEndian.Uint32(hdr[12:])
		off := int(binary.LittleEndian.Uint32(hdr[16:]))
		segLen := int(binary.LittleEndian.Uint32(hdr[20:]))
		if rawTag == hbTag && src == peer && msgLen == 0 {
			continue // liveness frame; lastSeen already updated
		}
		if src != peer || msgLen < 0 || msgLen > 1<<30 || off+segLen > msgLen {
			p.failPeerConn(peer, fmt.Errorf("tcp: bad striped frame from %d (src %d, len %d, seg %d@%d)",
				peer, src, msgLen, segLen, off))
			return
		}
		rx.mu.Lock()
		pm := rx.pend[seq]
		if pm == nil {
			pm = &pendMsg{tag: comm.Tag(rawTag), buf: scratch.Get(msgLen)}
			rx.pend[seq] = pm
		}
		rx.mu.Unlock()
		if segLen > 0 {
			// Outside the lock: sibling stripe readers fill disjoint ranges
			// of the same message buffer concurrently.
			if _, err := io.ReadFull(conn, pm.buf[off:off+segLen]); err != nil {
				// Sibling readers may still be mid-write into pending buffers,
				// so none can be proven quiescent: leak them to the GC.
				p.failPeerConn(peer, peerDeadErr(peer, err))
				return
			}
		}
		rx.mu.Lock()
		pm.got += segLen
		if pm.got >= msgLen {
			pm.done = true
		}
		for {
			nm := rx.pend[rx.next]
			if nm == nil || !nm.done {
				break
			}
			delete(rx.pend, rx.next)
			rx.next++
			p.engine.Deliver(peer, nm.tag, nm.buf)
		}
		rx.mu.Unlock()
	}
}
