package tcp

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"
)

// Step identifies one protocol boundary of rendezvous, join admission, or
// mesh formation — the granularity at which the chaos layer injects
// failures. Every boundary the elastic lifecycle crosses is named, so a
// fault sweep can place exactly one failure at each and assert the
// transition either completes or fails retryably.
type Step struct {
	// Point names the boundary, e.g. "rv.dial", "anchor.rv.reply",
	// "join.ticket". The full set is whatever the current protocol
	// crosses; chaos tests discover it by counting a fault-free run.
	Point string
	// Epoch is the membership epoch the step serves (0 when unknown).
	Epoch uint64
	// Rank is the acting rank (-1 when not yet assigned — a joiner).
	Rank int
	// Peer is the remote rank involved (-1 for none/unknown).
	Peer int
}

func (s Step) String() string {
	return fmt.Sprintf("%s(epoch=%d rank=%d peer=%d)", s.Point, s.Epoch, s.Rank, s.Peer)
}

// FaultHook observes every protocol step before it executes; a non-nil
// return aborts the step with that error. Hooks must be safe for
// concurrent use (rendezvous runs protocol steps from several goroutines).
type FaultHook func(Step) error

// hookErr marks an error as injected by the fault hook, so retry loops
// can tell a deliberate fault (fail now — the sweep is measuring this
// boundary) from an organic connection error (redial). It is transparent
// to errors.Is/As via Unwrap.
type hookErr struct{ err error }

func (e hookErr) Error() string { return e.err.Error() }
func (e hookErr) Unwrap() error { return e.err }

// isHookErr reports whether err came from the fault hook.
func isHookErr(err error) bool {
	var he hookErr
	return errors.As(err, &he)
}

// step consults the configured hook at one protocol boundary.
func (o Options) step(point string, epoch uint64, rank, peer int) error {
	if o.Hook == nil {
		return nil
	}
	if err := o.Hook(Step{Point: point, Epoch: epoch, Rank: rank, Peer: peer}); err != nil {
		return hookErr{err}
	}
	return nil
}

// ErrBounced reports a rendezvous or join attempt the anchor answered
// with a retryable bounce: the hello was parked past its admission
// deadline, or the transition it belonged to was aborted. The dialer
// should back off and retry from the top (a joiner re-requests admission;
// a member re-runs its membership change).
var ErrBounced = errors.New("tcp: rendezvous bounced; retry")

// Retryable reports whether a rendezvous/join error is transient — the
// caller may back off and retry the whole operation. Wrong-epoch answers
// count: the dialer raced a membership change and retrying re-learns the
// current epoch (elastic joiners re-request admission; members re-agree).
func Retryable(err error) bool {
	return errors.Is(err, ErrBounced) || errors.Is(err, ErrBusy) || errors.Is(err, ErrWrongEpoch)
}

// Dial parameters: bounded exponential backoff with jitter between
// redial attempts, so a thundering herd of rendezvousing ranks does not
// hammer an anchor that is down or restarting.
const (
	dialBackoffBase = 25 * time.Millisecond
	dialBackoffMax  = time.Second
)

// backoffDelay returns the sleep before redial attempt (attempt counts
// from 0): min(base<<attempt, max), jittered to [50%, 100%] of that.
func backoffDelay(attempt int) time.Duration {
	d := dialBackoffBase
	for i := 0; i < attempt && d < dialBackoffMax; i++ {
		d *= 2
	}
	if d > dialBackoffMax {
		d = dialBackoffMax
	}
	half := int64(d / 2)
	return time.Duration(half + rand.Int63n(half+1))
}

// JoinBackoff returns the jittered sleep before retry attempt (counted
// from 0) of a higher-level join or membership-change operation — the
// same bounded-exponential curve the transport uses between redials, so
// every retry loop in the stack thunders at the same civilized rate.
func JoinBackoff(attempt int) time.Duration { return backoffDelay(attempt) }

// dialOne performs one dial attempt through the configured dialer.
func (o Options) dialOne(addr string, timeout time.Duration) (net.Conn, error) {
	if o.Dialer != nil {
		return o.Dialer(addr, timeout)
	}
	return net.DialTimeout("tcp", addr, timeout)
}

// dialRetry dials addr until success or deadline, backing off between
// attempts. The rendezvous pattern: listeners come and go across anchor
// restarts and membership changes, so refusal is retried, not fatal.
func (o Options) dialRetry(addr string, deadline time.Time) (net.Conn, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		remain := time.Until(deadline)
		if remain <= 0 {
			if lastErr == nil {
				lastErr = fmt.Errorf("deadline exceeded")
			}
			return nil, fmt.Errorf("tcp: dial %s: %w", addr, lastErr)
		}
		conn, err := o.dialOne(addr, remain)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		delay := backoffDelay(attempt)
		if rest := time.Until(deadline); delay > rest {
			delay = rest
		}
		if delay > 0 {
			time.Sleep(delay)
		}
	}
}
