package tcp

import (
	"errors"
	"sync"
	"testing"
	"time"

	"exacoll/internal/comm"
)

// poolWorld forms a 2-rank world and wraps each end in a pool.
func poolWorld(t *testing.T) (pools [2]*Pool) {
	t.Helper()
	addr := freeAddr(t)
	var procs [2]*Proc
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			procs[r], errs[r] = Rendezvous(r, 2, addr, Options{Timeout: 10 * time.Second})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r := 0; r < 2; r++ {
		pools[r] = NewPool(procs[r])
		t.Cleanup(func() { pools[r].Close() })
	}
	return pools
}

// TestPoolPerHandleDeadlines pins the reason Shared exists: two handles on
// one Proc carry independent per-op timeouts, so one tenant's aggressive
// deadline cannot time out another tenant's patient receive.
func TestPoolPerHandleDeadlines(t *testing.T) {
	pools := poolWorld(t)
	fast, err := pools[0].Acquire()
	if err != nil {
		t.Fatal(err)
	}
	slow, err := pools[0].Acquire()
	if err != nil {
		t.Fatal(err)
	}
	peer, err := pools[1].Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Release()
	defer slow.Release()
	defer peer.Release()

	fast.SetOpTimeout(100 * time.Millisecond)
	// The fast handle times out on silence...
	if _, err := fast.Recv(1, 100, make([]byte, 8)); !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("fast handle: want ErrTimeout, got %v", err)
	}
	// ...while the slow handle, with no deadline, waits out a late sender.
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 8)
		_, err := slow.Recv(1, 101, buf)
		done <- err
	}()
	time.Sleep(300 * time.Millisecond) // well past the fast handle's deadline
	if err := peer.Send(0, 101, []byte("late")); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("slow handle: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("slow handle never completed")
	}
}

// TestPoolRefcount checks that the Proc outlives the pool while handles
// remain and dies with the last release.
func TestPoolRefcount(t *testing.T) {
	pools := poolWorld(t)
	h0, err := pools[0].Acquire()
	if err != nil {
		t.Fatal(err)
	}
	h1, err := pools[1].Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if pools[0].Refs() != 1 {
		t.Fatalf("refs = %d, want 1", pools[0].Refs())
	}

	// Closing the pool must not tear down links still in use by a handle.
	pools[0].Close()
	if err := h0.Send(1, 9, []byte("x")); err != nil {
		t.Fatalf("send after pool close: %v", err)
	}
	if _, err := h1.Recv(0, 9, make([]byte, 4)); err != nil {
		t.Fatalf("recv: %v", err)
	}

	// The last release closes the Proc; new operations fail closed.
	h0.Release()
	h0.Release() // idempotent
	if err := h0.Send(1, 9, []byte("x")); !errors.Is(err, comm.ErrClosed) {
		t.Fatalf("send after close: want ErrClosed, got %v", err)
	}
	if _, err := pools[0].Acquire(); err == nil {
		t.Fatal("acquire after close + drain must fail")
	}
	h1.Release()
	pools[1].Close()
}

// TestSharedCapabilities checks the wrapper forwards capabilities and
// reveals the Proc through Unwrap.
func TestSharedCapabilities(t *testing.T) {
	pools := poolWorld(t)
	h, err := pools[0].Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if h.Rank() != 0 || h.Size() != 2 {
		t.Fatalf("geometry %d/%d", h.Rank(), h.Size())
	}
	if h.Unwrap() != comm.Comm(pools[0].proc) {
		t.Fatal("Unwrap must reveal the pooled Proc")
	}
	if _, ok := h.Locality(1); !ok {
		t.Fatal("locality not forwarded")
	}
	if got := h.Failed(); len(got) != 0 {
		t.Fatalf("failed = %v", got)
	}
	// Purger: a posted receive inside the purged window cancels.
	req, err := h.Irecv(1, 50, make([]byte, 4))
	if err != nil {
		t.Fatal(err)
	}
	h.PurgeTags(0, 100)
	if err := req.Wait(); !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("purged receive: want ErrTimeout, got %v", err)
	}
}
