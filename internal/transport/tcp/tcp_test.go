package tcp

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"exacoll/internal/comm"
	"exacoll/internal/core"
	"exacoll/internal/datatype"
)

// freeAddr reserves a loopback port for rank 0's rendezvous listener.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// world spins up p ranks (goroutines in this process, each with its own
// Proc over real sockets) and runs fn on each.
func world(t *testing.T, p int, fn func(c comm.Comm) error) {
	t.Helper()
	addr := freeAddr(t)
	errs := make([]error, p)
	procs := make([]*Proc, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			proc, err := Rendezvous(r, p, addr, Options{Timeout: 10 * time.Second})
			if err != nil {
				errs[r] = fmt.Errorf("rendezvous: %w", err)
				return
			}
			procs[r] = proc
			errs[r] = fn(proc)
		}(r)
	}
	wg.Wait()
	for _, proc := range procs {
		if proc != nil {
			proc.Close()
		}
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestPingPong checks framing and matching over real sockets.
func TestPingPong(t *testing.T) {
	msg := []byte("over the wire")
	world(t, 2, func(c comm.Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 42, msg); err != nil {
				return err
			}
			buf := make([]byte, 64)
			n, err := c.Recv(1, 43, buf)
			if err != nil {
				return err
			}
			if string(buf[:n]) != "pong" {
				return fmt.Errorf("got %q", buf[:n])
			}
			return nil
		}
		buf := make([]byte, len(msg))
		if _, err := c.Recv(0, 42, buf); err != nil {
			return err
		}
		if !bytes.Equal(buf, msg) {
			return fmt.Errorf("got %q", buf)
		}
		return c.Send(0, 43, []byte("pong"))
	})
}

// TestMeshAllToAll exercises every connection in a 5-rank mesh.
func TestMeshAllToAll(t *testing.T) {
	const p = 5
	world(t, p, func(c comm.Comm) error {
		r := c.Rank()
		reqs := make([]comm.Request, 0, 2*(p-1))
		inbox := make([][]byte, p)
		for q := 0; q < p; q++ {
			if q == r {
				continue
			}
			inbox[q] = make([]byte, 8)
			req, err := c.Irecv(q, 7, inbox[q])
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		for q := 0; q < p; q++ {
			if q == r {
				continue
			}
			msg := []byte(fmt.Sprintf("from %03d", r))
			req, err := c.Isend(q, 7, msg)
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		if err := comm.WaitAll(reqs...); err != nil {
			return err
		}
		for q := 0; q < p; q++ {
			if q == r {
				continue
			}
			if want := fmt.Sprintf("from %03d", q); string(inbox[q]) != want {
				return fmt.Errorf("from %d: got %q want %q", q, inbox[q], want)
			}
		}
		return nil
	})
}

// TestFIFOOrdering checks per-(source, tag) ordering over TCP.
func TestFIFOOrdering(t *testing.T) {
	world(t, 2, func(c comm.Comm) error {
		const k = 50
		if c.Rank() == 0 {
			for i := 0; i < k; i++ {
				if err := c.Send(1, 9, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < k; i++ {
			var b [1]byte
			if _, err := c.Recv(0, 9, b[:]); err != nil {
				return err
			}
			if int(b[0]) != i {
				return fmt.Errorf("message %d arrived out of order (got %d)", i, b[0])
			}
		}
		return nil
	})
}

// TestCollectivesOverTCP runs real collective algorithms across the TCP
// substrate — allreduce, bcast and allgather with generalized radices.
func TestCollectivesOverTCP(t *testing.T) {
	const p = 6
	world(t, p, func(c comm.Comm) error {
		// Allreduce (recursive multiplying, k=3).
		vals := []float64{float64(c.Rank() + 1), 10}
		sendbuf := datatype.EncodeFloat64(vals)
		recvbuf := make([]byte, len(sendbuf))
		if err := core.AllreduceRecMul(c, sendbuf, recvbuf, datatype.Sum, datatype.Float64, 3); err != nil {
			return fmt.Errorf("allreduce: %w", err)
		}
		got := datatype.DecodeFloat64(recvbuf)
		if got[0] != 21 || got[1] != 60 {
			return fmt.Errorf("allreduce = %v", got)
		}
		// Bcast (k-nomial, k=3, root 2).
		buf := make([]byte, 100)
		if c.Rank() == 2 {
			for i := range buf {
				buf[i] = byte(i * 3)
			}
		}
		if err := core.BcastKnomial(c, buf, 2, 3); err != nil {
			return fmt.Errorf("bcast: %w", err)
		}
		for i := range buf {
			if buf[i] != byte(i*3) {
				return fmt.Errorf("bcast byte %d = %d", i, buf[i])
			}
		}
		// Allgather (k-ring, k=2).
		mine := []byte{byte(c.Rank()), byte(c.Rank() * 2)}
		all := make([]byte, 2*p)
		if err := core.AllgatherKRing(c, mine, all, 2); err != nil {
			return fmt.Errorf("allgather: %w", err)
		}
		for r := 0; r < p; r++ {
			if all[2*r] != byte(r) || all[2*r+1] != byte(r*2) {
				return fmt.Errorf("allgather block %d = %v", r, all[2*r:2*r+2])
			}
		}
		return nil
	})
}

// TestLargePayload pushes a multi-megabyte frame through.
func TestLargePayload(t *testing.T) {
	n := 4 << 20
	world(t, 2, func(c comm.Comm) error {
		if c.Rank() == 0 {
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = byte(i * 31)
			}
			return c.Send(1, 1, buf)
		}
		buf := make([]byte, n)
		got, err := c.Recv(0, 1, buf)
		if err != nil {
			return err
		}
		if got != n {
			return fmt.Errorf("len %d", got)
		}
		for i := 0; i < n; i += 9973 {
			if buf[i] != byte(i*31) {
				return fmt.Errorf("byte %d corrupt", i)
			}
		}
		return nil
	})
}

// TestTruncationTCP checks the short-buffer error path.
func TestTruncationTCP(t *testing.T) {
	world(t, 2, func(c comm.Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 5, make([]byte, 100))
		}
		_, err := c.Recv(0, 5, make([]byte, 10))
		if !errors.Is(err, comm.ErrTruncated) {
			return fmt.Errorf("want ErrTruncated, got %v", err)
		}
		return nil
	})
}

// TestClosePoisonsReceives checks that Close releases blocked receivers.
func TestClosePoisonsReceives(t *testing.T) {
	addr := freeAddr(t)
	var procs [2]*Proc
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			proc, err := Rendezvous(r, 2, addr, Options{Timeout: 5 * time.Second})
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			procs[r] = proc
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 8)
		_, err := procs[0].Recv(1, 77, buf)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	procs[0].Close()
	procs[1].Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("blocked recv returned nil after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked recv not released by Close")
	}
}

// TestRendezvousValidation covers bad geometry.
func TestRendezvousValidation(t *testing.T) {
	if _, err := Rendezvous(-1, 2, "127.0.0.1:1", Options{}); err == nil {
		t.Error("want error for negative rank")
	}
	if _, err := Rendezvous(2, 2, "127.0.0.1:1", Options{}); err == nil {
		t.Error("want error for rank >= p")
	}
	p, err := Rendezvous(0, 1, "", Options{})
	if err != nil {
		t.Fatalf("singleton world: %v", err)
	}
	if p.Size() != 1 || p.Rank() != 0 {
		t.Errorf("singleton geometry %d/%d", p.Rank(), p.Size())
	}
}
