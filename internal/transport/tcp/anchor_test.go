package tcp

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// dialRawHello opens a raw connection to the anchor and writes a world
// hello without ever following through — the stale half-open dial of a
// rank that crashed or gave up mid-rendezvous.
func dialRawHello(t *testing.T, addr string, rank int, epoch uint64, meshAddr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	if err := writeHello(conn, helloWorld, rank, epoch, meshAddr); err != nil {
		t.Fatalf("raw hello: %v", err)
	}
	return conn
}

// TestRendezvousIdempotentReconnect is the reconnect satellite: a second
// dial from the same (rank, epoch) must replace the first parked hello
// instead of wedging the mesh. The stale dial advertises an unreachable
// mesh address, so the test only passes if the replacement — not the
// original — wins the formation.
func TestRendezvousIdempotentReconnect(t *testing.T) {
	a, err := NewAnchor("127.0.0.1:0", 0, Options{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	stale := dialRawHello(t, a.Addr(), 1, 0, "127.0.0.1:1")
	defer stale.Close()
	// Wait until the stale hello is parked so the replacement races nothing.
	for i := 0; a.parkedCount(0) == 0 && i < 100; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if a.parkedCount(0) != 1 {
		t.Fatal("stale hello never parked")
	}

	var joiner *Proc
	var joinErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		joiner, joinErr = Rendezvous(1, 2, a.Addr(), Options{Timeout: 10 * time.Second})
	}()
	// The anchor closes the stale connection the moment the reconnect
	// replaces it — wait for that before starting the formation, so the
	// test exercises replacement rather than racing it.
	stale.SetReadDeadline(time.Now().Add(10 * time.Second))
	var rb [1]byte
	if _, err := stale.Read(rb[:]); err == nil {
		t.Fatal("stale dial received data instead of being replaced")
	}
	root, err := a.Rendezvous(2, 0)
	if err != nil {
		t.Fatalf("anchor rendezvous: %v", err)
	}
	defer root.Close()
	wg.Wait()
	if joinErr != nil {
		t.Fatalf("reconnect rendezvous: %v", joinErr)
	}
	defer joiner.Close()

	// The formed world must be live end-to-end.
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 8)
		_, err := joiner.Recv(0, 7, buf)
		done <- err
	}()
	if err := root.Send(1, 7, []byte("hi")); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("mesh wedged after reconnect")
	}
}

// TestAnchorEpochRekey runs two successive world formations — different
// epochs, different sizes — through one persistent anchor, then checks
// that a straggler dialing a retired epoch is bounced with ErrWrongEpoch
// instead of being parked forever.
func TestAnchorEpochRekey(t *testing.T) {
	a, err := NewAnchor("127.0.0.1:0", 0, Options{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	form := func(p int, epoch uint64) []*Proc {
		t.Helper()
		procs := make([]*Proc, p)
		errs := make([]error, p)
		var wg sync.WaitGroup
		for r := 1; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				procs[r], errs[r] = Rendezvous(r, p, a.Addr(), Options{Timeout: 10 * time.Second, Epoch: epoch})
			}(r)
		}
		procs[0], errs[0] = a.Rendezvous(p, epoch)
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("epoch %d rank %d: %v", epoch, r, err)
			}
		}
		return procs
	}
	exchange := func(procs []*Proc) {
		t.Helper()
		p := len(procs)
		var wg sync.WaitGroup
		errs := make([]error, p)
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				c := procs[r]
				next, prev := (r+1)%p, (r+p-1)%p
				if err := c.Send(next, 5, []byte{byte(r)}); err != nil {
					errs[r] = err
					return
				}
				var b [1]byte
				if _, err := c.Recv(prev, 5, b[:]); err != nil {
					errs[r] = err
					return
				}
				if int(b[0]) != prev {
					errs[r] = fmt.Errorf("got token %d want %d", b[0], prev)
				}
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d: %v", r, err)
			}
		}
	}

	w0 := form(2, 0)
	exchange(w0)
	for _, proc := range w0 {
		proc.Close()
	}
	w1 := form(3, 1)
	exchange(w1)
	for _, proc := range w1 {
		proc.Close()
	}

	// A straggler presenting the retired epoch is told so immediately.
	if _, err := Rendezvous(1, 3, a.Addr(), Options{Timeout: 3 * time.Second, Epoch: 1}); !errors.Is(err, ErrWrongEpoch) {
		t.Fatalf("retired-epoch dial: want ErrWrongEpoch, got %v", err)
	}
	if _, err := a.Rendezvous(3, 1); !errors.Is(err, ErrWrongEpoch) {
		t.Fatalf("retired-epoch anchor rendezvous: want ErrWrongEpoch, got %v", err)
	}
}

// TestJoinAdmission covers the ticket flow — request, admit, redeem — and
// the bounded-queue Busy path.
func TestJoinAdmission(t *testing.T) {
	a, err := NewAnchor("127.0.0.1:0", 1, Options{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Joiner asks for admission, then redeems its ticket as a world member.
	var joiner *Proc
	joinErr := make(chan error, 1)
	go func() {
		ticket, err := RequestJoin(a.Addr(), Options{Timeout: 10 * time.Second})
		if err != nil {
			joinErr <- err
			return
		}
		if ticket != (Ticket{Epoch: 1, Rank: 1, Size: 2}) {
			joinErr <- fmt.Errorf("ticket %+v", ticket)
			return
		}
		joiner, err = Rendezvous(ticket.Rank, ticket.Size, a.Addr(),
			Options{Timeout: 10 * time.Second, Epoch: ticket.Epoch})
		joinErr <- err
	}()

	var req *JoinRequest
	select {
	case req = <-a.Joins():
	case <-time.After(5 * time.Second):
		t.Fatal("join request never queued")
	}
	if err := req.Admit(Ticket{Epoch: 1, Rank: 1, Size: 2}, 5*time.Second); err != nil {
		t.Fatalf("admit: %v", err)
	}
	root, err := a.Rendezvous(2, 1)
	if err != nil {
		t.Fatalf("grow rendezvous: %v", err)
	}
	defer root.Close()
	if err := <-joinErr; err != nil {
		t.Fatalf("joiner: %v", err)
	}
	defer joiner.Close()
	if err := root.Send(1, 3, []byte("welcome")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if n, err := joiner.Recv(0, 3, buf); err != nil || string(buf[:n]) != "welcome" {
		t.Fatalf("recv: %q, %v", buf[:n], err)
	}

	// Queue capacity is 1: with one request parked, the next bounces Busy.
	parked := make(chan error, 1)
	go func() {
		_, err := RequestJoin(a.Addr(), Options{Timeout: 10 * time.Second})
		parked <- err
	}()
	for i := 0; a.PendingJoins() == 0 && i < 100; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if a.PendingJoins() != 1 {
		t.Fatal("first join request never parked")
	}
	if _, err := RequestJoin(a.Addr(), Options{Timeout: 5 * time.Second}); !errors.Is(err, ErrBusy) {
		t.Fatalf("overflow join: want ErrBusy, got %v", err)
	}
	(<-a.Joins()).Reject()
	if err := <-parked; !errors.Is(err, ErrBusy) {
		t.Fatalf("rejected join: want ErrBusy, got %v", err)
	}
}
