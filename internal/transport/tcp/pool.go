package tcp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"exacoll/internal/comm"
)

// Pool shares one Proc — one set of TCP links — among many sessions of a
// single process. Cotenant sessions between the same host pair would
// otherwise each hold a full mesh of sockets; through a pool they share
// the links and the demultiplexing engine, and keep themselves apart with
// disjoint tag windows (comm.Namespace over an acquired handle).
//
// The pool owns the Proc: it closes it when the last handle is released
// and the pool itself is closed, whichever comes last.
type Pool struct {
	proc *Proc

	mu     sync.Mutex
	refs   int
	closed bool
}

// NewPool takes ownership of proc.
func NewPool(proc *Proc) *Pool {
	return &Pool{proc: proc, refs: 1} // the pool's own reference
}

// Acquire returns a new shared handle. Handles are independent
// comm.Comms over the same links: each carries its own per-op deadline
// (comm.Deadliner), so one tenant's timeout choice never leaks into
// another's operations.
func (pl *Pool) Acquire() (*Shared, error) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.closed && pl.refs == 0 {
		return nil, fmt.Errorf("tcp: pool closed: %w", comm.ErrClosed)
	}
	pl.refs++
	return &Shared{proc: pl.proc, pool: pl}, nil
}

// Refs reports the number of live handles (excluding the pool's own
// reference).
func (pl *Pool) Refs() int {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	n := pl.refs
	if !pl.closed {
		n--
	}
	return n
}

// Close drops the pool's own reference; the Proc shuts down once every
// acquired handle has been released too.
func (pl *Pool) Close() error {
	pl.mu.Lock()
	if pl.closed {
		pl.mu.Unlock()
		return nil
	}
	pl.closed = true
	pl.mu.Unlock()
	pl.release()
	return nil
}

func (pl *Pool) release() {
	pl.mu.Lock()
	pl.refs--
	last := pl.refs == 0
	pl.mu.Unlock()
	if last {
		pl.proc.Close()
	}
}

// Shared is one session's handle on a pooled Proc. It implements
// comm.Comm, comm.Deadliner (per-handle), comm.FailureDetector,
// comm.Purger, and comm.Locator, and reveals the Proc through Unwrap so
// capability probes (flight.RecorderOf) walk through it.
type Shared struct {
	proc *Proc
	pool *Pool

	opTimeout atomic.Int64
	released  atomic.Bool
}

// Release returns the handle to the pool. Operations after Release fail
// once the underlying Proc closes; Release is idempotent.
func (s *Shared) Release() {
	if !s.released.Swap(true) {
		s.pool.release()
	}
}

// Unwrap reveals the pooled Proc (the errors.Unwrap convention for
// wrapper chains).
func (s *Shared) Unwrap() comm.Comm { return s.proc }

// Rank implements comm.Comm.
func (s *Shared) Rank() int { return s.proc.Rank() }

// Size implements comm.Comm.
func (s *Shared) Size() int { return s.proc.Size() }

// ChargeCompute implements comm.Comm.
func (s *Shared) ChargeCompute(n int) { s.proc.ChargeCompute(n) }

// Send implements comm.Comm with this handle's deadline.
func (s *Shared) Send(to int, tag comm.Tag, buf []byte) error {
	return s.proc.send(to, tag, buf, time.Duration(s.opTimeout.Load()))
}

// Recv implements comm.Comm with this handle's deadline.
func (s *Shared) Recv(from int, tag comm.Tag, buf []byte) (int, error) {
	return s.proc.recv(from, tag, buf, time.Duration(s.opTimeout.Load()))
}

// Isend implements comm.Comm with this handle's deadline.
func (s *Shared) Isend(to int, tag comm.Tag, buf []byte) (comm.Request, error) {
	return s.proc.isend(to, tag, buf, time.Duration(s.opTimeout.Load()))
}

// Irecv implements comm.Comm with this handle's deadline.
func (s *Shared) Irecv(from int, tag comm.Tag, buf []byte) (comm.Request, error) {
	return s.proc.irecv(from, tag, buf, time.Duration(s.opTimeout.Load()))
}

// SetOpTimeout implements comm.Deadliner for this handle only — the whole
// point of the pooled handle over a bare *Proc, whose deadline is global.
func (s *Shared) SetOpTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.opTimeout.Store(int64(d))
}

// Failed implements comm.FailureDetector.
func (s *Shared) Failed() []int { return s.proc.Failed() }

// PurgeTags implements comm.Purger. The engine is shared, so callers are
// expected to purge only tag windows they own (a session purges inside
// its namespace slot; the slot recycler purges a whole window).
func (s *Shared) PurgeTags(lo, hi comm.Tag) { s.proc.PurgeTags(lo, hi) }

// Locality implements comm.Locator.
func (s *Shared) Locality(rank int) (comm.Locality, bool) { return s.proc.Locality(rank) }
