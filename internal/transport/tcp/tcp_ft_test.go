package tcp

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"exacoll/internal/comm"
)

// ftWorld spins up p ranks with the given options and hands the caller the
// live Procs; it does NOT close them (tests exercising failures manage
// lifetimes themselves).
func ftWorld(t *testing.T, p int, opts Options) []*Proc {
	t.Helper()
	addr := freeAddr(t)
	procs := make([]*Proc, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int, o Options) {
			defer wg.Done()
			procs[r], errs[r] = Rendezvous(r, p, addr, o)
		}(r, opts)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d rendezvous: %v", r, err)
		}
	}
	return procs
}

// TestRecvOpTimeout: with a per-op deadline, a receive with no sender
// returns ErrTimeout promptly instead of hanging forever — the
// post-rendezvous hang fix.
func TestRecvOpTimeout(t *testing.T) {
	procs := ftWorld(t, 2, Options{Timeout: 10 * time.Second})
	defer procs[0].Close()
	defer procs[1].Close()

	procs[0].SetOpTimeout(50 * time.Millisecond)
	start := time.Now()
	_, err := procs[0].Recv(1, 7, make([]byte, 8))
	if !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, want ~50ms", elapsed)
	}
	// The cancelled receive's buffer must not swallow a late message: a
	// fresh receive still matches it.
	if err := procs[1].Send(0, 7, []byte{1, 2, 3}); err != nil {
		t.Fatalf("late send: %v", err)
	}
	procs[0].SetOpTimeout(5 * time.Second)
	buf := make([]byte, 8)
	n, err := procs[0].Recv(1, 7, buf)
	if err != nil || n != 3 || buf[0] != 1 {
		t.Fatalf("fresh recv: n=%d err=%v buf=%v", n, err, buf)
	}
}

// TestRemoteCloseIsPeerDead: when a peer's process goes away (its Proc is
// closed), survivors see ErrPeerDead — on receives already pending, on new
// receives, and through the failure detector. Local Close keeps ErrClosed.
func TestRemoteCloseIsPeerDead(t *testing.T) {
	procs := ftWorld(t, 3, Options{Timeout: 10 * time.Second})
	defer procs[0].Close()
	defer procs[2].Close()

	done := make(chan error, 1)
	go func() {
		_, err := procs[0].Recv(1, 3, make([]byte, 4))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	procs[1].Close() // "crash" of rank 1

	select {
	case err := <-done:
		if !errors.Is(err, comm.ErrPeerDead) {
			t.Fatalf("pending recv on dead peer: want ErrPeerDead, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending recv not released by peer death")
	}

	// The failure is sticky and reported by the detector.
	deadline := time.Now().Add(5 * time.Second)
	for {
		failed := procs[0].Failed()
		if len(failed) == 1 && failed[0] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("Failed() = %v, want [1]", failed)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := procs[0].Recv(1, 3, make([]byte, 4)); !errors.Is(err, comm.ErrPeerDead) {
		t.Fatalf("new recv from dead peer: want ErrPeerDead, got %v", err)
	}

	// Ranks 0 and 2 can still talk.
	if err := procs[2].Send(0, 9, []byte{42}); err != nil {
		t.Fatalf("survivor send: %v", err)
	}
	buf := make([]byte, 1)
	if n, err := procs[0].Recv(2, 9, buf); err != nil || n != 1 || buf[0] != 42 {
		t.Fatalf("survivor recv: n=%d err=%v", n, err)
	}
}

// TestHeartbeatDetectsSilentPeer: a peer that stays connected but falls
// silent (no heartbeats — e.g. a wedged process) is declared dead by the
// liveness monitor without any data traffic.
func TestHeartbeatDetectsSilentPeer(t *testing.T) {
	addr := freeAddr(t)
	procs := make([]*Proc, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			opts := Options{Timeout: 10 * time.Second, Heartbeat: 20 * time.Millisecond, SuspectAfter: 150 * time.Millisecond}
			if r == 1 {
				opts.Heartbeat = -1 // rank 1 never heartbeats: it looks wedged
			}
			procs[r], errs[r] = Rendezvous(r, 2, addr, opts)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d rendezvous: %v", r, err)
		}
	}
	defer procs[0].Close()
	defer procs[1].Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if failed := procs[0].Failed(); len(failed) == 1 && failed[0] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("silent peer never suspected; Failed() = %v", procs[0].Failed())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := procs[0].Recv(1, 3, make([]byte, 4)); !errors.Is(err, comm.ErrPeerDead) {
		t.Fatalf("recv from suspected peer: want ErrPeerDead, got %v", err)
	}
}

// TestPurgeTagsTCP: buffered messages in the purged window vanish, posted
// receives there cancel with ErrTimeout, traffic outside survives.
func TestPurgeTagsTCP(t *testing.T) {
	procs := ftWorld(t, 2, Options{Timeout: 10 * time.Second})
	defer procs[0].Close()
	defer procs[1].Close()

	if err := procs[1].Send(0, 100, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := procs[1].Send(0, 200, []byte{2}); err != nil {
		t.Fatal(err)
	}
	// Wait until both frames are buffered at rank 0 before purging.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if procs[0].engine.UnexpectedCount() == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("frames never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
	req, err := procs[0].Irecv(1, 150, make([]byte, 1))
	if err != nil {
		t.Fatal(err)
	}

	procs[0].PurgeTags(100, 151)

	if err := req.Wait(); !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("purged posted recv: want ErrTimeout, got %v", err)
	}
	buf := make([]byte, 1)
	if n, err := procs[0].Recv(1, 200, buf); err != nil || n != 1 || buf[0] != 2 {
		t.Fatalf("tag outside window: n=%d err=%v buf=%v", n, err, buf)
	}
	procs[0].SetOpTimeout(30 * time.Millisecond)
	if _, err := procs[0].Recv(1, 100, buf); !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("purged tag still matched: err=%v", err)
	}
}

// TestSendAfterPeerDeath: sends to a failed peer return the sticky peer
// error instead of writing into a dead socket.
func TestSendAfterPeerDeath(t *testing.T) {
	procs := ftWorld(t, 2, Options{Timeout: 10 * time.Second})
	defer procs[0].Close()

	procs[1].Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if failed := procs[0].Failed(); len(failed) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("peer death never detected")
		}
		time.Sleep(10 * time.Millisecond)
	}
	err := procs[0].Send(1, 3, []byte{1})
	if !errors.Is(err, comm.ErrPeerDead) {
		t.Fatalf("send to dead peer: want ErrPeerDead, got %v", err)
	}
	if err2 := procs[0].Send(1, 3, []byte{1}); !errors.Is(err2, comm.ErrPeerDead) {
		t.Fatalf("second send: want sticky ErrPeerDead, got %v", err2)
	}
	_ = fmt.Sprintf("%v", err) // error strings must format cleanly
}
